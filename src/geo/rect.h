// Axis-aligned rectangles in D dimensions with the min/max distance
// computations required for spatial pruning (Section 6 of the paper) and the
// geometric primitives required by the R*-tree (margin, area, overlap,
// enlargement).
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "geo/point.h"

namespace ust {

/// \brief Axis-aligned box in D dimensions: [lo[i], hi[i]] per axis.
///
/// An empty box (default constructed) has lo > hi on every axis and acts as
/// the identity for Extend/Union.
template <int D>
struct Rect {
  std::array<double, D> lo;
  std::array<double, D> hi;

  Rect() {
    lo.fill(std::numeric_limits<double>::infinity());
    hi.fill(-std::numeric_limits<double>::infinity());
  }

  bool empty() const {
    for (int i = 0; i < D; ++i) {
      if (lo[i] > hi[i]) return true;
    }
    return false;
  }

  /// Grow to cover the point `p`.
  void Extend(const std::array<double, D>& p) {
    for (int i = 0; i < D; ++i) {
      lo[i] = std::min(lo[i], p[i]);
      hi[i] = std::max(hi[i], p[i]);
    }
  }

  /// Grow to cover `other`.
  void Extend(const Rect& other) {
    for (int i = 0; i < D; ++i) {
      lo[i] = std::min(lo[i], other.lo[i]);
      hi[i] = std::max(hi[i], other.hi[i]);
    }
  }

  static Rect Union(const Rect& a, const Rect& b) {
    Rect r = a;
    r.Extend(b);
    return r;
  }

  bool Intersects(const Rect& other) const {
    for (int i = 0; i < D; ++i) {
      if (lo[i] > other.hi[i] || hi[i] < other.lo[i]) return false;
    }
    return true;
  }

  bool Contains(const std::array<double, D>& p) const {
    for (int i = 0; i < D; ++i) {
      if (p[i] < lo[i] || p[i] > hi[i]) return false;
    }
    return true;
  }

  bool Contains(const Rect& other) const {
    for (int i = 0; i < D; ++i) {
      if (other.lo[i] < lo[i] || other.hi[i] > hi[i]) return false;
    }
    return true;
  }

  /// Product of side lengths (R* "area").
  double Area() const {
    if (empty()) return 0.0;
    double a = 1.0;
    for (int i = 0; i < D; ++i) a *= hi[i] - lo[i];
    return a;
  }

  /// Sum of side lengths (R* "margin").
  double Margin() const {
    if (empty()) return 0.0;
    double m = 0.0;
    for (int i = 0; i < D; ++i) m += hi[i] - lo[i];
    return m;
  }

  /// Area of the intersection with `other` (0 when disjoint).
  double OverlapArea(const Rect& other) const {
    double a = 1.0;
    for (int i = 0; i < D; ++i) {
      double side = std::min(hi[i], other.hi[i]) - std::max(lo[i], other.lo[i]);
      if (side <= 0.0) return 0.0;
      a *= side;
    }
    return a;
  }

  /// Area increase caused by extending this box to cover `other`.
  double Enlargement(const Rect& other) const {
    return Union(*this, other).Area() - Area();
  }

  std::array<double, D> Center() const {
    std::array<double, D> c;
    for (int i = 0; i < D; ++i) c[i] = 0.5 * (lo[i] + hi[i]);
    return c;
  }
};

using Rect2 = Rect<2>;
using Rect3 = Rect<3>;  ///< (x, y, time) boxes stored in the UST-tree.

/// Build a 2-D rectangle from explicit bounds.
inline Rect2 MakeRect2(double x_lo, double y_lo, double x_hi, double y_hi) {
  Rect2 r;
  r.lo = {x_lo, y_lo};
  r.hi = {x_hi, y_hi};
  return r;
}

/// Minimum Euclidean distance from point `p` to rectangle `r` (0 if inside).
double MinDistance(const Point2& p, const Rect2& r);

/// Maximum Euclidean distance from point `p` to any point of rectangle `r`.
double MaxDistance(const Point2& p, const Rect2& r);

/// Minimum distance between two rectangles (0 when intersecting).
double MinDistance(const Rect2& a, const Rect2& b);

/// Maximum distance between two rectangles.
double MaxDistance(const Rect2& a, const Rect2& b);

/// The spatial (x, y) footprint of a 3-D (x, y, t) box.
inline Rect2 SpatialPart(const Rect3& r) {
  Rect2 s;
  s.lo = {r.lo[0], r.lo[1]};
  s.hi = {r.hi[0], r.hi[1]};
  return s;
}

/// Assemble an (x, y, t) box from a spatial box and a time interval.
inline Rect3 WithTimeInterval(const Rect2& space, double t_lo, double t_hi) {
  Rect3 r;
  r.lo = {space.lo[0], space.lo[1], t_lo};
  r.hi = {space.hi[0], space.hi[1], t_hi};
  return r;
}

}  // namespace ust
