// 2-D points and Euclidean distance — the spatial domain of the paper's
// state space S ⊂ R².
#pragma once

#include <cmath>

namespace ust {

/// \brief Point in the 2-D Euclidean plane.
struct Point2 {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point2& a, const Point2& b) {
    return a.x == b.x && a.y == b.y;
  }
};

/// Squared Euclidean distance (cheaper; monotone in the true distance).
inline double SquaredDistance(const Point2& a, const Point2& b) {
  double dx = a.x - b.x, dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Euclidean distance d(x, y) used by all query definitions.
inline double Distance(const Point2& a, const Point2& b) {
  return std::sqrt(SquaredDistance(a, b));
}

}  // namespace ust
