#include "geo/rect.h"

namespace ust {

double MinDistance(const Point2& p, const Rect2& r) {
  double dx = std::max({r.lo[0] - p.x, 0.0, p.x - r.hi[0]});
  double dy = std::max({r.lo[1] - p.y, 0.0, p.y - r.hi[1]});
  return std::sqrt(dx * dx + dy * dy);
}

double MaxDistance(const Point2& p, const Rect2& r) {
  double dx = std::max(std::abs(p.x - r.lo[0]), std::abs(p.x - r.hi[0]));
  double dy = std::max(std::abs(p.y - r.lo[1]), std::abs(p.y - r.hi[1]));
  return std::sqrt(dx * dx + dy * dy);
}

double MinDistance(const Rect2& a, const Rect2& b) {
  double dx = std::max({b.lo[0] - a.hi[0], 0.0, a.lo[0] - b.hi[0]});
  double dy = std::max({b.lo[1] - a.hi[1], 0.0, a.lo[1] - b.hi[1]});
  return std::sqrt(dx * dx + dy * dy);
}

double MaxDistance(const Rect2& a, const Rect2& b) {
  double dx = std::max(std::abs(a.hi[0] - b.lo[0]), std::abs(b.hi[0] - a.lo[0]));
  double dy = std::max(std::abs(a.hi[1] - b.lo[1]), std::abs(b.hi[1] - a.lo[1]));
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace ust
