#include "gen/workload.h"

#include <algorithm>

#include "model/samplers.h"
#include "util/check.h"

namespace ust {

QueryTrajectory RandomQueryState(const StateSpace& space, Rng& rng) {
  StateId s = static_cast<StateId>(rng.UniformInt(space.size()));
  return QueryTrajectory::FromPoint(space.coord(s));
}

QueryTrajectory RandomQueryTrajectory(const StateSpace& space,
                                      const TransitionMatrix& matrix,
                                      Tic start, size_t length, Rng& rng) {
  UST_CHECK(length >= 1);
  std::vector<Point2> points;
  points.reserve(length);
  StateId cur = static_cast<StateId>(rng.UniformInt(space.size()));
  points.push_back(space.coord(cur));
  for (size_t i = 1; i < length; ++i) {
    cur = SampleTransition(matrix, cur, rng);
    points.push_back(space.coord(cur));
  }
  return QueryTrajectory::FromPoints(start, std::move(points));
}

TimeInterval RandomInterval(Tic horizon, size_t length, Rng& rng) {
  UST_CHECK(length >= 1);
  Tic max_start = std::max<Tic>(0, horizon - static_cast<Tic>(length) + 1);
  Tic start =
      static_cast<Tic>(rng.UniformInt(static_cast<uint64_t>(max_start) + 1));
  return {start, start + static_cast<Tic>(length) - 1};
}

TimeInterval BusiestInterval(const TrajectoryDatabase& db, size_t length) {
  UST_CHECK(length >= 1);
  Tic horizon = 0;
  for (size_t i = 0; i < db.size(); ++i) {
    horizon = std::max(horizon, db.object(static_cast<ObjectId>(i)).last_tic());
  }
  TimeInterval best{0, static_cast<Tic>(length) - 1};
  size_t best_count = 0;
  for (Tic start = 0; start + static_cast<Tic>(length) - 1 <= horizon;
       ++start) {
    TimeInterval T{start, start + static_cast<Tic>(length) - 1};
    size_t count = db.AliveThroughout(T.start, T.end).size();
    if (count > best_count) {
      best_count = count;
      best = T;
    }
  }
  return best;
}

}  // namespace ust
