// Query workload helpers shared by the experiment harnesses: query reference
// states are drawn uniformly from the underlying state space (Section 7) and
// query intervals are placed where the database is populated.
#pragma once

#include <vector>

#include "model/trajectory_database.h"
#include "query/query.h"
#include "util/rng.h"

namespace ust {

/// Uniformly drawn query state (the paper's default query shape).
QueryTrajectory RandomQueryState(const StateSpace& space, Rng& rng);

/// A random query trajectory of `length` tics following the motion model
/// support (one graph hop per tic), starting at tic `start`.
QueryTrajectory RandomQueryTrajectory(const StateSpace& space,
                                      const TransitionMatrix& matrix,
                                      Tic start, size_t length, Rng& rng);

/// Query interval of `length` tics placed uniformly inside [0, horizon].
TimeInterval RandomInterval(Tic horizon, size_t length, Rng& rng);

/// Query interval of `length` tics maximizing the number of objects alive
/// throughout (deterministic; used to make experiments comparable).
TimeInterval BusiestInterval(const TrajectoryDatabase& db, size_t length);

}  // namespace ust
