// Synthetic workload generator (Section 7, "Artificial Data"):
//  1. N states drawn uniformly from [0,1]^2.
//  2. Edges between states within distance r = sqrt(b / (N * pi)), giving an
//     average branching factor b independent of N.
//  3. Transition probabilities indirectly proportional to edge length
//     (plus a self-loop absorbing slack time).
//  4. Objects: a sequence of waypoints connected by shortest paths; every
//     l-th path node (l = round(i * v)) becomes an observation, spaced i
//     tics apart — v < 1 leaves slack for deviations from the shortest path.
#pragma once

#include <memory>
#include <vector>

#include "graph/csr_graph.h"
#include "markov/transition_matrix.h"
#include "model/trajectory_database.h"
#include "state/grid_index.h"
#include "state/state_space.h"
#include "util/rng.h"
#include "util/status.h"

namespace ust {

/// \brief Parameters of the synthetic world (paper defaults in comments).
struct SyntheticConfig {
  size_t num_states = 10000;      ///< N (paper default 100k)
  double branching = 8.0;         ///< b, average node degree
  size_t num_objects = 100;       ///< |D| (paper default 10k)
  int lifetime = 100;             ///< tics between first and last observation
  int obs_interval = 10;          ///< i, tics between consecutive observations
  double lag = 0.5;               ///< v in (0,1]: path nodes per interval l = round(i*v)
  Tic horizon = 1000;             ///< database time horizon
  double self_loop = 0.1;         ///< self-loop probability mass per state
  /// Waypoints are drawn within this radius of the current position (objects
  /// move locally instead of teleporting across the map); <= 0 draws
  /// waypoints uniformly from the whole space.
  double waypoint_radius = 0.15;
  uint64_t seed = 7;
};

/// \brief A generated world: space, network, shared a-priori model, database.
struct SyntheticWorld {
  std::shared_ptr<const StateSpace> space;
  CsrGraph graph;
  TransitionMatrixPtr matrix;
  std::shared_ptr<TrajectoryDatabase> db;
};

/// Build the state space and network only (steps 1-2).
std::shared_ptr<const StateSpace> GenerateStates(size_t num_states, Rng& rng);

/// Connect states within radius r = sqrt(b / (N pi)); bidirectional edges
/// weighted by Euclidean length.
CsrGraph ConnectByRadius(const StateSpace& space, double branching);

/// Generate the full world (steps 1-4). Observation sequences are consistent
/// with the generated model by construction.
Result<SyntheticWorld> GenerateSyntheticWorld(const SyntheticConfig& config);

/// \brief Generate one object's observations: waypoint walk via shortest
/// paths starting at `start_tic`. `grid` (optional) enables local waypoint
/// selection per config.waypoint_radius. Returns kNotFound if the network
/// region is too disconnected to produce enough path nodes.
Result<ObservationSeq> GenerateObjectObservations(const StateSpace& space,
                                                  const CsrGraph& graph,
                                                  const GridIndex* grid,
                                                  const SyntheticConfig& config,
                                                  Tic start_tic, Rng& rng);

}  // namespace ust
