// Real-data substitute (Section 7, "Real Data"). The paper map-matches
// T-Drive taxi GPS logs onto a reduced OpenStreetMap graph of Beijing
// (68 902 states), learns one shared transition matrix from turning
// statistics, takes every l-th point as an observation, and uses the
// discarded points as ground truth.
//
// We reproduce that pipeline on synthetic inputs (substitution documented in
// DESIGN.md):
//  * a center-dense road network — node density decays with the distance
//    from the city center, reproducing the paper's observation that queries
//    near the center see more candidates/influencers;
//  * a trip simulator whose vehicles follow shortest paths with random
//    pauses (standing taxis!), so the true motion is NOT the first-order
//    Markov model used for querying — the same out-of-model relationship
//    real GPS data has;
//  * a transition matrix learned by aggregating turning counts of training
//    trips, disjoint from the evaluation trips (the paper's leave-one-out).
#pragma once

#include <memory>
#include <vector>

#include "gen/synthetic.h"
#include "graph/csr_graph.h"
#include "markov/transition_matrix.h"
#include "model/trajectory_database.h"
#include "state/state_space.h"
#include "util/rng.h"
#include "util/status.h"

namespace ust {

/// \brief Parameters of the road-network world.
struct RoadnetConfig {
  size_t num_states = 8000;      ///< intersections (paper: 68902)
  double center_decay = 0.30;    ///< radial density scale (smaller = denser core)
  size_t knn_edges = 4;          ///< road connections per intersection
  size_t num_objects = 100;      ///< evaluation taxis
  size_t num_training_trips = 300;  ///< trips used to learn the matrix
  int lifetime = 100;            ///< tics per taxi (paper: capped at 100)
  int obs_interval = 8;          ///< l: keep every l-th point (paper: l = 8)
  Tic horizon = 1000;
  double pause_prob = 0.25;      ///< probability a taxi stands still per tic
  double smoothing = 0.5;        ///< Laplace smoothing of learned matrix
  uint64_t seed = 11;
};

/// \brief A generated road-network world; ground-truth trajectories are kept
/// for the model-effectiveness experiments (Figure 12).
struct RoadnetWorld {
  std::shared_ptr<const StateSpace> space;
  CsrGraph graph;
  TransitionMatrixPtr matrix;                ///< learned from training trips
  std::shared_ptr<TrajectoryDatabase> db;    ///< observations of eval taxis
  std::vector<Trajectory> ground_truth;      ///< aligned with db object ids
};

/// Sample intersections with density exp(-r / center_decay) around (0.5,0.5).
std::shared_ptr<const StateSpace> GenerateRoadStates(size_t num_states,
                                                     double center_decay,
                                                     Rng& rng);

/// Symmetric k-nearest-neighbor road connections.
CsrGraph ConnectKnn(const StateSpace& space, size_t k);

/// Simulate one taxi trip of `lifetime` tics starting at `start_tic`:
/// shortest-path driving with per-tic pauses; re-routes to fresh
/// destinations until the lifetime is exhausted.
Result<Trajectory> SimulateTrip(const StateSpace& space, const CsrGraph& graph,
                                int lifetime, double pause_prob, Tic start_tic,
                                Rng& rng);

/// Build the full world: network, training trips, learned matrix, evaluation
/// taxis with thinned observations plus ground truth.
Result<RoadnetWorld> GenerateRoadnetWorld(const RoadnetConfig& config);

}  // namespace ust
