#include "gen/roadnet.h"

#include <algorithm>
#include <cmath>

#include "graph/dijkstra.h"
#include "markov/builders.h"
#include "state/grid_index.h"
#include "util/check.h"

namespace ust {

std::shared_ptr<const StateSpace> GenerateRoadStates(size_t num_states,
                                                     double center_decay,
                                                     Rng& rng) {
  std::vector<Point2> coords;
  coords.reserve(num_states);
  const Point2 center{0.5, 0.5};
  while (coords.size() < num_states) {
    Point2 p{rng.Uniform(), rng.Uniform()};
    double r = Distance(p, center);
    double keep = std::exp(-r / center_decay);
    if (rng.Uniform() < keep) coords.push_back(p);
  }
  return std::make_shared<const StateSpace>(std::move(coords));
}

CsrGraph ConnectKnn(const StateSpace& space, size_t k) {
  const size_t n = space.size();
  GridIndex grid = GridIndex::Build(space);
  std::vector<std::vector<Edge>> adj(n);
  // Expand the search radius until k neighbors are found; edges are made
  // symmetric afterwards so roads are drivable in both directions.
  const double base_radius = 2.0 / std::sqrt(static_cast<double>(n) + 1.0);
  for (StateId s = 0; s < n; ++s) {
    std::vector<StateId> nearby;
    double radius = base_radius;
    while (true) {
      nearby = grid.WithinRadius(space.coord(s), radius);
      if (nearby.size() > k) break;  // > k: includes s itself
      radius *= 2.0;
      if (radius > 4.0) break;
    }
    std::sort(nearby.begin(), nearby.end(), [&](StateId a, StateId b) {
      return SquaredDistance(space.coord(s), space.coord(a)) <
             SquaredDistance(space.coord(s), space.coord(b));
    });
    size_t added = 0;
    for (StateId nb : nearby) {
      if (nb == s) continue;
      adj[s].push_back({nb, space.Distance(s, nb)});
      if (++added >= k) break;
    }
  }
  // Symmetrize.
  std::vector<std::vector<Edge>> sym(n);
  for (StateId s = 0; s < n; ++s) {
    for (const Edge& e : adj[s]) {
      sym[s].push_back(e);
      sym[e.to].push_back({s, e.weight});
    }
  }
  for (auto& edges : sym) {
    std::sort(edges.begin(), edges.end(),
              [](const Edge& a, const Edge& b) { return a.to < b.to; });
    edges.erase(std::unique(edges.begin(), edges.end(),
                            [](const Edge& a, const Edge& b) {
                              return a.to == b.to;
                            }),
                edges.end());
  }
  return CsrGraph::FromAdjacency(sym);
}

Result<Trajectory> SimulateTrip(const StateSpace& space, const CsrGraph& graph,
                                int lifetime, double pause_prob, Tic start_tic,
                                Rng& rng) {
  UST_CHECK(lifetime >= 1);
  Trajectory traj;
  traj.start = start_tic;
  traj.states.reserve(static_cast<size_t>(lifetime));
  StateId cur = static_cast<StateId>(rng.UniformInt(space.size()));
  traj.states.push_back(cur);
  std::vector<StateId> route;  // remaining nodes to drive, in order
  size_t route_pos = 0;
  int failures = 0;
  while (traj.states.size() < static_cast<size_t>(lifetime)) {
    if (route_pos >= route.size()) {
      // Pick a fresh destination and route to it.
      StateId dest = static_cast<StateId>(rng.UniformInt(space.size()));
      if (dest == cur) continue;
      auto sp = ShortestPath(graph, cur, dest);
      if (!sp.ok()) {
        ++failures;
        if (failures > 256) {
          return Status::NotFound("road network too disconnected for a trip");
        }
        if (failures % 8 == 0) {
          // The taxi spawned in (or drove into) a small disconnected pocket
          // of the kNN road graph; restart the trip from a fresh state.
          cur = static_cast<StateId>(rng.UniformInt(space.size()));
          traj.states.clear();
          traj.states.push_back(cur);
          route.clear();
          route_pos = 0;
        }
        continue;
      }
      route.assign(sp.value().begin() + 1, sp.value().end());
      route_pos = 0;
      continue;
    }
    if (rng.Uniform() < pause_prob) {
      traj.states.push_back(cur);  // taxi stands still this tic
    } else {
      cur = route[route_pos++];
      traj.states.push_back(cur);
    }
  }
  return traj;
}

Result<RoadnetWorld> GenerateRoadnetWorld(const RoadnetConfig& config) {
  if (config.num_states == 0 || config.num_objects == 0) {
    return Status::InvalidArgument("empty world requested");
  }
  if (config.obs_interval < 1 || config.lifetime <= config.obs_interval) {
    return Status::InvalidArgument("lifetime must cover one obs interval");
  }
  Rng rng(config.seed);
  RoadnetWorld world;
  world.space =
      GenerateRoadStates(config.num_states, config.center_decay, rng);
  world.graph = ConnectKnn(*world.space, config.knn_edges);

  // Training phase: simulate trips and learn turning probabilities
  // (the map-matching + aggregation step of the paper).
  std::vector<std::vector<StateId>> training;
  training.reserve(config.num_training_trips);
  for (size_t i = 0; i < config.num_training_trips; ++i) {
    auto trip = SimulateTrip(*world.space, world.graph, config.lifetime,
                             config.pause_prob, 0, rng);
    if (!trip.ok()) return trip.status();
    training.push_back(std::move(trip.value().states));
  }
  auto learned = LearnTransitionMatrix(*world.space, world.graph, training,
                                       config.smoothing);
  if (!learned.ok()) return learned.status();
  world.matrix =
      std::make_shared<const TransitionMatrix>(learned.MoveValue());

  // Evaluation phase: fresh trips (disjoint from training), thinned to
  // observations; the discarded tics are the ground truth.
  world.db = std::make_shared<TrajectoryDatabase>(world.space);
  const Tic max_start = std::max<Tic>(0, config.horizon - config.lifetime);
  for (size_t o = 0; o < config.num_objects; ++o) {
    const Tic start =
        static_cast<Tic>(rng.UniformInt(static_cast<uint64_t>(max_start) + 1));
    auto trip = SimulateTrip(*world.space, world.graph, config.lifetime,
                             config.pause_prob, start, rng);
    if (!trip.ok()) return trip.status();
    const Trajectory& truth = trip.value();
    std::vector<Observation> observations;
    for (size_t k = 0; k < truth.states.size(); k += config.obs_interval) {
      observations.push_back(
          {truth.start + static_cast<Tic>(k), truth.states[k]});
    }
    // Always observe the final position so the alive span covers the trip.
    if ((truth.states.size() - 1) % config.obs_interval != 0) {
      observations.push_back({truth.end(), truth.states.back()});
    }
    auto seq = ObservationSeq::Create(std::move(observations));
    if (!seq.ok()) return seq.status();
    world.db->AddObject(seq.MoveValue(), world.matrix);
    world.ground_truth.push_back(truth);
  }
  return world;
}

}  // namespace ust
