#include "gen/synthetic.h"

#include <algorithm>
#include <cmath>

#include "graph/dijkstra.h"
#include "markov/builders.h"
#include "state/grid_index.h"
#include "util/check.h"

namespace ust {

std::shared_ptr<const StateSpace> GenerateStates(size_t num_states, Rng& rng) {
  std::vector<Point2> coords;
  coords.reserve(num_states);
  for (size_t i = 0; i < num_states; ++i) {
    coords.push_back({rng.Uniform(), rng.Uniform()});
  }
  return std::make_shared<const StateSpace>(std::move(coords));
}

CsrGraph ConnectByRadius(const StateSpace& space, double branching) {
  const size_t n = space.size();
  UST_CHECK(n > 0);
  const double radius =
      std::sqrt(branching / (static_cast<double>(n) * M_PI));
  GridIndex grid = GridIndex::Build(space);
  std::vector<std::vector<Edge>> adj(n);
  for (StateId s = 0; s < n; ++s) {
    for (StateId nb : grid.WithinRadius(space.coord(s), radius)) {
      if (nb == s) continue;
      adj[s].push_back({nb, space.Distance(s, nb)});
    }
  }
  return CsrGraph::FromAdjacency(adj);
}

Result<ObservationSeq> GenerateObjectObservations(const StateSpace& space,
                                                  const CsrGraph& graph,
                                                  const GridIndex* grid,
                                                  const SyntheticConfig& config,
                                                  Tic start_tic, Rng& rng) {
  const int i = config.obs_interval;
  UST_CHECK(i >= 1);
  const int l = std::max(1, static_cast<int>(std::lround(i * config.lag)));
  const size_t num_obs = static_cast<size_t>(config.lifetime / i) + 1;
  const size_t path_nodes_needed = (num_obs - 1) * static_cast<size_t>(l) + 1;

  // Waypoint walk: concatenate shortest paths until enough nodes exist.
  // Random geometric graphs can contain small disconnected pockets; after a
  // few unroutable waypoints the walk restarts from a fresh random state,
  // which lands in the giant component with overwhelming probability.
  std::vector<StateId> path;
  StateId cur = static_cast<StateId>(rng.UniformInt(space.size()));
  path.push_back(cur);
  int failures = 0;
  auto draw_waypoint = [&](StateId from) -> StateId {
    if (grid != nullptr && config.waypoint_radius > 0.0) {
      auto nearby =
          grid->WithinRadius(space.coord(from), config.waypoint_radius);
      if (nearby.size() > 1) {
        return nearby[rng.UniformInt(nearby.size())];
      }
    }
    return static_cast<StateId>(rng.UniformInt(space.size()));
  };
  while (path.size() < path_nodes_needed) {
    StateId waypoint = draw_waypoint(cur);
    if (waypoint == cur) continue;
    auto sp = ShortestPath(graph, cur, waypoint);
    if (!sp.ok()) {
      ++failures;
      if (failures > 256) {
        return Status::NotFound(
            "network too disconnected to route an object");
      }
      if (failures % 8 == 0) {
        // The current state is likely stuck in a small component.
        path.clear();
        cur = static_cast<StateId>(rng.UniformInt(space.size()));
        path.push_back(cur);
      }
      continue;
    }
    const auto& nodes = sp.value();
    path.insert(path.end(), nodes.begin() + 1, nodes.end());
    cur = waypoint;
  }

  // Every l-th node becomes an observation, spaced obs_interval tics apart.
  // Since l <= i and the model keeps a self-loop, a path of exactly i tics
  // between consecutive observed states always has nonzero probability.
  std::vector<Observation> observations;
  observations.reserve(num_obs);
  for (size_t k = 0; k < num_obs; ++k) {
    observations.push_back({start_tic + static_cast<Tic>(k) * i,
                            path[k * static_cast<size_t>(l)]});
  }
  return ObservationSeq::Create(std::move(observations));
}

Result<SyntheticWorld> GenerateSyntheticWorld(const SyntheticConfig& config) {
  if (config.num_states == 0 || config.num_objects == 0) {
    return Status::InvalidArgument("empty world requested");
  }
  if (config.lag <= 0.0 || config.lag > 1.0) {
    return Status::InvalidArgument("lag v must be in (0, 1]");
  }
  if (config.lifetime < config.obs_interval || config.obs_interval < 1) {
    return Status::InvalidArgument("lifetime must cover one obs interval");
  }
  Rng rng(config.seed);
  SyntheticWorld world;
  world.space = GenerateStates(config.num_states, rng);
  world.graph = ConnectByRadius(*world.space, config.branching);
  auto matrix =
      DistanceInverseMatrix(*world.space, world.graph, config.self_loop);
  if (!matrix.ok()) return matrix.status();
  world.matrix =
      std::make_shared<const TransitionMatrix>(matrix.MoveValue());
  world.db = std::make_shared<TrajectoryDatabase>(world.space);
  GridIndex grid = GridIndex::Build(*world.space);
  const Tic max_start = std::max<Tic>(0, config.horizon - config.lifetime);
  for (size_t o = 0; o < config.num_objects; ++o) {
    const Tic start =
        static_cast<Tic>(rng.UniformInt(static_cast<uint64_t>(max_start) + 1));
    auto obs = GenerateObjectObservations(*world.space, world.graph, &grid,
                                          config, start, rng);
    if (!obs.ok()) return obs.status();
    world.db->AddObject(obs.MoveValue(), world.matrix);
  }
  return world;
}

}  // namespace ust
