// Plain-text serialization of the library's artifacts: state spaces,
// transition matrices, observation databases and certain trajectories.
// The format is line-based, versioned and diff-friendly, so generated worlds
// and learned models can be checked in, shared between experiments, or
// inspected by hand.
//
//   ustq-statespace v1        ustq-matrix v1         ustq-observations v1
//   <count>                   <states> <nnz>         <objects>
//   <x> <y>                   <from> <to> <prob>     <end_tic> <num_obs>
//   ...                       ...                    <t> <state>
//                                                    ...
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "markov/transition_matrix.h"
#include "model/trajectory_database.h"
#include "state/state_space.h"
#include "util/status.h"

namespace ust {

// ---------------------------------------------------------------- streams --

Status SaveStateSpace(const StateSpace& space, std::ostream& os);
Result<StateSpace> LoadStateSpace(std::istream& is);

Status SaveTransitionMatrix(const TransitionMatrix& matrix, std::ostream& os);
Result<TransitionMatrix> LoadTransitionMatrix(std::istream& is);

/// Saves every object's observations plus lifetime end (matrices are saved
/// separately; the paper's experiments share one matrix across objects).
Status SaveObservations(const TrajectoryDatabase& db, std::ostream& os);

/// Rebuilds a database over `space`, attaching `matrix` to every object.
Result<TrajectoryDatabase> LoadObservations(
    std::istream& is, std::shared_ptr<const StateSpace> space,
    TransitionMatrixPtr matrix);

/// Certain trajectories (e.g. ground truth of the road-network generator).
Status SaveTrajectories(const std::vector<Trajectory>& trajectories,
                        std::ostream& os);
Result<std::vector<Trajectory>> LoadTrajectories(std::istream& is);

// ------------------------------------------------------------------ files --

Status SaveStateSpaceFile(const StateSpace& space, const std::string& path);
Result<StateSpace> LoadStateSpaceFile(const std::string& path);
Status SaveTransitionMatrixFile(const TransitionMatrix& matrix,
                                const std::string& path);
Result<TransitionMatrix> LoadTransitionMatrixFile(const std::string& path);
Status SaveObservationsFile(const TrajectoryDatabase& db,
                            const std::string& path);
Result<TrajectoryDatabase> LoadObservationsFile(
    const std::string& path, std::shared_ptr<const StateSpace> space,
    TransitionMatrixPtr matrix);

}  // namespace ust
