#include "io/text_io.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace ust {

namespace {

constexpr char kStateSpaceHeader[] = "ustq-statespace v1";
constexpr char kMatrixHeader[] = "ustq-matrix v1";
constexpr char kObservationsHeader[] = "ustq-observations v1";
constexpr char kTrajectoriesHeader[] = "ustq-trajectories v1";

// Reads one non-empty, non-comment line.
bool NextLine(std::istream& is, std::string* line) {
  while (std::getline(is, *line)) {
    if (!line->empty() && (*line)[0] != '#') return true;
  }
  return false;
}

Status ExpectHeader(std::istream& is, const char* header) {
  std::string line;
  if (!NextLine(is, &line) || line != header) {
    return Status::InvalidArgument(std::string("missing header '") + header +
                                   "'");
  }
  return Status::OK();
}

}  // namespace

Status SaveStateSpace(const StateSpace& space, std::ostream& os) {
  os << kStateSpaceHeader << "\n" << space.size() << "\n";
  os.precision(17);
  for (const Point2& p : space.coords()) {
    os << p.x << " " << p.y << "\n";
  }
  return os.good() ? Status::OK() : Status::Internal("stream write failed");
}

Result<StateSpace> LoadStateSpace(std::istream& is) {
  UST_RETURN_NOT_OK(ExpectHeader(is, kStateSpaceHeader));
  std::string line;
  if (!NextLine(is, &line)) {
    return Status::InvalidArgument("missing state count");
  }
  size_t count = 0;
  try {
    count = std::stoull(line);
  } catch (...) {
    return Status::InvalidArgument("malformed state count: " + line);
  }
  std::vector<Point2> coords;
  coords.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    if (!NextLine(is, &line)) {
      return Status::InvalidArgument("truncated state space file");
    }
    std::istringstream ls(line);
    Point2 p;
    if (!(ls >> p.x >> p.y)) {
      return Status::InvalidArgument("malformed coordinate line: " + line);
    }
    coords.push_back(p);
  }
  return StateSpace(std::move(coords));
}

Status SaveTransitionMatrix(const TransitionMatrix& matrix, std::ostream& os) {
  os << kMatrixHeader << "\n"
     << matrix.num_states() << " " << matrix.num_nonzeros() << "\n";
  os.precision(17);
  for (StateId s = 0; s < matrix.num_states(); ++s) {
    for (const auto* e = matrix.begin(s); e != matrix.end(s); ++e) {
      os << s << " " << e->first << " " << e->second << "\n";
    }
  }
  return os.good() ? Status::OK() : Status::Internal("stream write failed");
}

Result<TransitionMatrix> LoadTransitionMatrix(std::istream& is) {
  UST_RETURN_NOT_OK(ExpectHeader(is, kMatrixHeader));
  std::string line;
  if (!NextLine(is, &line)) {
    return Status::InvalidArgument("missing matrix size line");
  }
  size_t num_states = 0, nnz = 0;
  {
    std::istringstream ls(line);
    if (!(ls >> num_states >> nnz)) {
      return Status::InvalidArgument("malformed matrix size line: " + line);
    }
  }
  std::vector<std::vector<TransitionMatrix::Entry>> rows(num_states);
  for (size_t i = 0; i < nnz; ++i) {
    if (!NextLine(is, &line)) {
      return Status::InvalidArgument("truncated matrix file");
    }
    std::istringstream ls(line);
    StateId from = 0, to = 0;
    double prob = 0;
    if (!(ls >> from >> to >> prob)) {
      return Status::InvalidArgument("malformed matrix entry: " + line);
    }
    if (from >= num_states) {
      return Status::InvalidArgument("matrix entry row out of range");
    }
    rows[from].push_back({to, prob});
  }
  return TransitionMatrix::FromRows(num_states, std::move(rows));
}

Status SaveObservations(const TrajectoryDatabase& db, std::ostream& os) {
  os << kObservationsHeader << "\n" << db.size() << "\n";
  for (size_t i = 0; i < db.size(); ++i) {
    const UncertainObject& obj = db.object(static_cast<ObjectId>(i));
    os << obj.last_tic() << " " << obj.observations().size() << "\n";
    for (const Observation& o : obj.observations().items()) {
      os << o.time << " " << o.state << "\n";
    }
  }
  return os.good() ? Status::OK() : Status::Internal("stream write failed");
}

Result<TrajectoryDatabase> LoadObservations(
    std::istream& is, std::shared_ptr<const StateSpace> space,
    TransitionMatrixPtr matrix) {
  UST_RETURN_NOT_OK(ExpectHeader(is, kObservationsHeader));
  std::string line;
  if (!NextLine(is, &line)) {
    return Status::InvalidArgument("missing object count");
  }
  size_t count = 0;
  try {
    count = std::stoull(line);
  } catch (...) {
    return Status::InvalidArgument("malformed object count: " + line);
  }
  TrajectoryDatabase db(std::move(space));
  for (size_t i = 0; i < count; ++i) {
    if (!NextLine(is, &line)) {
      return Status::InvalidArgument("truncated observations file");
    }
    Tic end_tic = 0;
    size_t num_obs = 0;
    {
      std::istringstream ls(line);
      if (!(ls >> end_tic >> num_obs)) {
        return Status::InvalidArgument("malformed object header: " + line);
      }
    }
    std::vector<Observation> observations;
    observations.reserve(num_obs);
    for (size_t k = 0; k < num_obs; ++k) {
      if (!NextLine(is, &line)) {
        return Status::InvalidArgument("truncated observation list");
      }
      std::istringstream ls(line);
      Observation o;
      if (!(ls >> o.time >> o.state)) {
        return Status::InvalidArgument("malformed observation: " + line);
      }
      observations.push_back(o);
    }
    auto seq = ObservationSeq::Create(std::move(observations));
    if (!seq.ok()) return seq.status();
    if (db.space().size() > 0) {
      for (const Observation& o : seq.value().items()) {
        if (o.state >= db.space().size()) {
          return Status::InvalidArgument(
              "observation state outside the state space");
        }
      }
    }
    db.AddObject(seq.MoveValue(), matrix, end_tic);
  }
  return db;
}

Status SaveTrajectories(const std::vector<Trajectory>& trajectories,
                        std::ostream& os) {
  os << kTrajectoriesHeader << "\n" << trajectories.size() << "\n";
  for (const Trajectory& t : trajectories) {
    os << t.start << " " << t.states.size() << "\n";
    for (size_t i = 0; i < t.states.size(); ++i) {
      os << t.states[i] << (i + 1 < t.states.size() ? ' ' : '\n');
    }
  }
  return os.good() ? Status::OK() : Status::Internal("stream write failed");
}

Result<std::vector<Trajectory>> LoadTrajectories(std::istream& is) {
  UST_RETURN_NOT_OK(ExpectHeader(is, kTrajectoriesHeader));
  std::string line;
  if (!NextLine(is, &line)) {
    return Status::InvalidArgument("missing trajectory count");
  }
  size_t count = 0;
  try {
    count = std::stoull(line);
  } catch (...) {
    return Status::InvalidArgument("malformed trajectory count: " + line);
  }
  std::vector<Trajectory> result;
  result.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    if (!NextLine(is, &line)) {
      return Status::InvalidArgument("truncated trajectory file");
    }
    Trajectory t;
    size_t len = 0;
    {
      std::istringstream ls(line);
      if (!(ls >> t.start >> len) || len == 0) {
        return Status::InvalidArgument("malformed trajectory header: " + line);
      }
    }
    if (!NextLine(is, &line)) {
      return Status::InvalidArgument("truncated trajectory states");
    }
    std::istringstream ls(line);
    t.states.reserve(len);
    for (size_t k = 0; k < len; ++k) {
      StateId s;
      if (!(ls >> s)) {
        return Status::InvalidArgument("malformed trajectory states: " + line);
      }
      t.states.push_back(s);
    }
    result.push_back(std::move(t));
  }
  return result;
}

// ------------------------------------------------------------------ files --

namespace {

template <typename SaveFn>
Status SaveToFile(const std::string& path, SaveFn&& save) {
  std::ofstream os(path);
  if (!os) return Status::NotFound("cannot open for writing: " + path);
  return save(os);
}

}  // namespace

Status SaveStateSpaceFile(const StateSpace& space, const std::string& path) {
  return SaveToFile(path, [&](std::ostream& os) {
    return SaveStateSpace(space, os);
  });
}

Result<StateSpace> LoadStateSpaceFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) return Status::NotFound("cannot open: " + path);
  return LoadStateSpace(is);
}

Status SaveTransitionMatrixFile(const TransitionMatrix& matrix,
                                const std::string& path) {
  return SaveToFile(path, [&](std::ostream& os) {
    return SaveTransitionMatrix(matrix, os);
  });
}

Result<TransitionMatrix> LoadTransitionMatrixFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) return Status::NotFound("cannot open: " + path);
  return LoadTransitionMatrix(is);
}

Status SaveObservationsFile(const TrajectoryDatabase& db,
                            const std::string& path) {
  return SaveToFile(path, [&](std::ostream& os) {
    return SaveObservations(db, os);
  });
}

Result<TrajectoryDatabase> LoadObservationsFile(
    const std::string& path, std::shared_ptr<const StateSpace> space,
    TransitionMatrixPtr matrix) {
  std::ifstream is(path);
  if (!is) return Status::NotFound("cannot open: " + path);
  return LoadObservations(is, std::move(space), std::move(matrix));
}

}  // namespace ust
