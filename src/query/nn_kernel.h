// Nearest-neighbor kernel over *certain* trajectories: given one sampled
// possible world, decide per tic which objects are among the k nearest
// neighbors of q. This is the classical certain-trajectory NN machinery
// ([5, 6, 8]) that the Monte-Carlo estimators run in every sampled world.
#pragma once

#include <limits>
#include <vector>

#include "query/query.h"
#include "state/state_space.h"

namespace ust {

/// \brief One participant's trajectory within a sampled world. The window may
/// cover only part of T when the object is alive for part of it.
struct WorldTrajectory {
  Trajectory traj;       ///< states over [traj.start, traj.end()] ⊆ T
  bool alive = true;     ///< false: object exists nowhere in T

  bool CoversTic(Tic t) const { return alive && traj.Covers(t); }
};

/// \brief Per-tic k-nearest-neighbor decision for one world.
///
/// Writes `is_nn[i * T.length() + rel_t] = 1` iff participant `i` is alive at
/// `t` and its distance to q(t) is <= the k-th smallest distance among alive
/// participants (ties count for every tied object, matching the paper's `<=`
/// semantics). `is_nn` must have size participants.size() * T.length().
void MarkNearestNeighbors(const StateSpace& space,
                          const std::vector<WorldTrajectory>& participants,
                          const QueryTrajectory& q, const TimeInterval& T,
                          int k, uint8_t* is_nn);

/// \brief Squared distance of a world trajectory to q at tic t;
/// +infinity when the object does not cover t.
inline double WorldSquaredDistance(const StateSpace& space,
                                   const WorldTrajectory& wt,
                                   const QueryTrajectory& q, Tic t) {
  if (!wt.CoversTic(t)) return std::numeric_limits<double>::infinity();
  return SquaredDistance(space.coord(wt.traj.At(t)), q.At(t));
}

}  // namespace ust
