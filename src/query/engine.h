// High-level query engine: combines UST-tree pruning (filter step) with the
// Monte-Carlo estimators (refinement step) for all three query semantics —
// the full evaluation pipeline of Section 3.3.
#pragma once

#include <vector>

#include "index/ust_tree.h"
#include "model/trajectory_database.h"
#include "query/monte_carlo.h"
#include "query/pcnn.h"
#include "query/query.h"
#include "util/status.h"

namespace ust {

/// \brief One qualifying object with its estimated probability.
struct PnnResultEntry {
  ObjectId object;
  double prob;
};

/// \brief Result of a P∃NNQ / P∀NNQ evaluation plus work statistics.
struct PnnQueryResult {
  std::vector<PnnResultEntry> results;  ///< objects with prob >= tau
  size_t num_candidates = 0;            ///< |C(q)| after pruning
  size_t num_influencers = 0;           ///< |I(q)| after pruning
  double prune_millis = 0.0;
  double sampling_millis = 0.0;
};

/// \brief PCNNQ result plus work statistics.
struct PcnnQueryResult {
  PcnnResult pcnn;
  size_t num_candidates = 0;
  size_t num_influencers = 0;
  double prune_millis = 0.0;
  double sampling_millis = 0.0;
};

/// \brief Query evaluation framework over a database and an optional index.
///
/// Without an index, pruning degenerates to alive-time filtering (every alive
/// object is a candidate/influencer).
class QueryEngine {
 public:
  explicit QueryEngine(const TrajectoryDatabase& db,
                       const UstTree* index = nullptr)
      : db_(&db), index_(index) {}

  /// P∀(k)NNQ(q, D, T, tau) — Definition 2 (Section 8 for k > 1).
  Result<PnnQueryResult> Forall(const QueryTrajectory& q, const TimeInterval& T,
                                double tau,
                                const MonteCarloOptions& options) const;

  /// P∃(k)NNQ(q, D, T, tau) — Definition 1.
  Result<PnnQueryResult> Exists(const QueryTrajectory& q, const TimeInterval& T,
                                double tau,
                                const MonteCarloOptions& options) const;

  /// PC(k)NNQ(q, D, T, tau) — Definition 3 via Algorithm 1.
  Result<PcnnQueryResult> Continuous(const QueryTrajectory& q,
                                     const TimeInterval& T, double tau,
                                     const MonteCarloOptions& options) const;

 private:
  PruneResult PruneOrFallback(const QueryTrajectory& q, const TimeInterval& T,
                              int k, bool forall) const;

  const TrajectoryDatabase* db_;
  const UstTree* index_;
};

}  // namespace ust
