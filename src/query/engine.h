// High-level single-query façade: combines UST-tree pruning (filter step)
// with the Monte-Carlo estimators (refinement step) for all three query
// semantics — the full evaluation pipeline of Section 3.3.
//
// QueryEngine is the compatibility shim over the plan-based pipeline in
// query/session.h: every call constructs a throwaway single-threaded
// QuerySession pinned to the Monte-Carlo backend, so results (seed included)
// match the historical engine bit for bit. Code running many queries against
// one database should hold a QuerySession instead — it amortizes posterior
// warm-up, index slabs and sampling scratch across the batch and unlocks the
// planner and the thread pool (see bench/micro_engine for the difference).
#pragma once

#include <vector>

#include "index/ust_tree.h"
#include "model/trajectory_database.h"
#include "query/monte_carlo.h"
#include "query/pcnn.h"
#include "query/query.h"
#include "query/session.h"
#include "util/status.h"

namespace ust {

/// \brief Query evaluation framework over a database and an optional index.
///
/// Without an index, pruning degenerates to alive-time filtering (every alive
/// object is a candidate/influencer).
class QueryEngine {
 public:
  explicit QueryEngine(const TrajectoryDatabase& db,
                       const UstTree* index = nullptr)
      : db_(&db), index_(index) {}

  /// P∀(k)NNQ(q, D, T, tau) — Definition 2 (Section 8 for k > 1).
  Result<PnnQueryResult> Forall(const QueryTrajectory& q, const TimeInterval& T,
                                double tau,
                                const MonteCarloOptions& options) const;

  /// P∃(k)NNQ(q, D, T, tau) — Definition 1.
  Result<PnnQueryResult> Exists(const QueryTrajectory& q, const TimeInterval& T,
                                double tau,
                                const MonteCarloOptions& options) const;

  /// PC(k)NNQ(q, D, T, tau) — Definition 3 via Algorithm 1.
  Result<PcnnQueryResult> Continuous(const QueryTrajectory& q,
                                     const TimeInterval& T, double tau,
                                     const MonteCarloOptions& options) const;

 private:
  const TrajectoryDatabase* db_;
  const UstTree* index_;
};

}  // namespace ust
