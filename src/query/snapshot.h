// The snapshot competitor (Section 7.1, adapted from Xu et al. [19]):
// evaluates an independent snapshot query P∀NNQ(q, D, {t}) per tic and
// aggregates under a (wrong) temporal-independence assumption:
//   P∀NN(o, T) ≈ Π_t P_NN(o, {t}),
//   P∃NN(o, T) ≈ 1 - Π_t (1 - P_NN(o, {t})).
// Each snapshot probability is computed *exactly* from the posterior
// marginals (objects are mutually independent at a fixed tic), so the
// remaining error is exactly the ignored temporal correlation — the bias the
// paper's Figure 11 demonstrates.
#pragma once

#include <vector>

#include "model/trajectory_database.h"
#include "query/monte_carlo.h"
#include "query/query.h"
#include "util/status.h"

namespace ust {

/// \brief Exact single-tic NN probabilities P(o is NN of q at t) for every
/// participant (0 for objects not alive at t), from posterior marginals.
Result<std::vector<double>> SnapshotNnProbabilities(
    const TrajectoryDatabase& db, const std::vector<ObjectId>& participants,
    const QueryTrajectory& q, Tic t);

/// \brief Snapshot-based P∀NN / P∃NN estimates over T for every participant.
Result<std::vector<PnnEstimate>> SnapshotEstimatePnn(
    const TrajectoryDatabase& db, const std::vector<ObjectId>& participants,
    const QueryTrajectory& q, const TimeInterval& T);

}  // namespace ust
