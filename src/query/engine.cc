#include "query/engine.h"

namespace ust {

namespace {

// One throwaway single-query session: single-threaded, Monte-Carlo pinned
// (the historical engine semantics — no planner surprises for old callers).
QueryOutcome RunSingle(const TrajectoryDatabase& db, const UstTree* index,
                       QueryKind kind, const QueryTrajectory& q,
                       const TimeInterval& T, double tau,
                       const MonteCarloOptions& options) {
  QuerySession session(db, index, SessionOptions{});
  QuerySpec spec;
  spec.kind = kind;
  spec.q = q;
  spec.T = T;
  spec.tau = tau;
  spec.mc = options;
  spec.backend = ExecutorKind::kMonteCarlo;
  return session.Run(spec);
}

}  // namespace

Result<PnnQueryResult> QueryEngine::Forall(
    const QueryTrajectory& q, const TimeInterval& T, double tau,
    const MonteCarloOptions& options) const {
  QueryOutcome out =
      RunSingle(*db_, index_, QueryKind::kForall, q, T, tau, options);
  if (!out.status.ok()) return out.status;
  return std::move(out.pnn);
}

Result<PnnQueryResult> QueryEngine::Exists(
    const QueryTrajectory& q, const TimeInterval& T, double tau,
    const MonteCarloOptions& options) const {
  QueryOutcome out =
      RunSingle(*db_, index_, QueryKind::kExists, q, T, tau, options);
  if (!out.status.ok()) return out.status;
  return std::move(out.pnn);
}

Result<PcnnQueryResult> QueryEngine::Continuous(
    const QueryTrajectory& q, const TimeInterval& T, double tau,
    const MonteCarloOptions& options) const {
  QueryOutcome out =
      RunSingle(*db_, index_, QueryKind::kContinuous, q, T, tau, options);
  if (!out.status.ok()) return out.status;
  return std::move(out.pcnn);
}

}  // namespace ust
