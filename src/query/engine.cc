#include "query/engine.h"

#include <algorithm>

#include "util/timer.h"

namespace ust {

namespace {

// Union of two id sets (inputs need not be sorted).
std::vector<ObjectId> UnionIds(std::vector<ObjectId> a,
                               const std::vector<ObjectId>& b) {
  a.insert(a.end(), b.begin(), b.end());
  std::sort(a.begin(), a.end());
  a.erase(std::unique(a.begin(), a.end()), a.end());
  return a;
}

}  // namespace

PruneResult QueryEngine::PruneOrFallback(const QueryTrajectory& q,
                                         const TimeInterval& T, int k,
                                         bool forall) const {
  if (index_ != nullptr) {
    return forall ? index_->PruneForall(q, T, k) : index_->PruneExists(q, T, k);
  }
  PruneResult result;
  result.influencers = db_->AliveSometime(T.start, T.end);
  result.candidates =
      forall ? db_->AliveThroughout(T.start, T.end) : result.influencers;
  return result;
}

Result<PnnQueryResult> QueryEngine::Forall(
    const QueryTrajectory& q, const TimeInterval& T, double tau,
    const MonteCarloOptions& options) const {
  PnnQueryResult out;
  Timer prune_timer;
  PruneResult pruned = PruneOrFallback(q, T, options.k, /*forall=*/true);
  out.prune_millis = prune_timer.Millis();
  out.num_candidates = pruned.candidates.size();
  out.num_influencers = pruned.influencers.size();
  if (pruned.candidates.empty()) return out;
  Timer sample_timer;
  std::vector<ObjectId> participants =
      UnionIds(pruned.candidates, pruned.influencers);
  auto estimates =
      EstimatePnn(*db_, participants, pruned.candidates, q, T, options);
  if (!estimates.ok()) return estimates.status();
  for (const PnnEstimate& e : estimates.value()) {
    if (e.forall_prob >= tau) out.results.push_back({e.object, e.forall_prob});
  }
  out.sampling_millis = sample_timer.Millis();
  return out;
}

Result<PnnQueryResult> QueryEngine::Exists(
    const QueryTrajectory& q, const TimeInterval& T, double tau,
    const MonteCarloOptions& options) const {
  PnnQueryResult out;
  Timer prune_timer;
  PruneResult pruned = PruneOrFallback(q, T, options.k, /*forall=*/false);
  out.prune_millis = prune_timer.Millis();
  out.num_candidates = pruned.candidates.size();
  out.num_influencers = pruned.influencers.size();
  if (pruned.candidates.empty()) return out;
  Timer sample_timer;
  auto estimates = EstimatePnn(*db_, pruned.influencers, pruned.candidates, q,
                               T, options);
  if (!estimates.ok()) return estimates.status();
  for (const PnnEstimate& e : estimates.value()) {
    if (e.exists_prob >= tau) out.results.push_back({e.object, e.exists_prob});
  }
  out.sampling_millis = sample_timer.Millis();
  return out;
}

Result<PcnnQueryResult> QueryEngine::Continuous(
    const QueryTrajectory& q, const TimeInterval& T, double tau,
    const MonteCarloOptions& options) const {
  PcnnQueryResult out;
  Timer prune_timer;
  // Any object that can be NN at some tic can hold a singleton result set, so
  // PCNN candidates are the P∃NN candidates.
  PruneResult pruned = PruneOrFallback(q, T, options.k, /*forall=*/false);
  out.prune_millis = prune_timer.Millis();
  out.num_candidates = pruned.candidates.size();
  out.num_influencers = pruned.influencers.size();
  if (pruned.candidates.empty()) return out;
  Timer sample_timer;
  auto pcnn = PcnnQuery(*db_, pruned.influencers, pruned.candidates, q, T, tau,
                        options);
  if (!pcnn.ok()) return pcnn.status();
  out.pcnn = pcnn.MoveValue();
  out.sampling_millis = sample_timer.Millis();
  return out;
}

}  // namespace ust
