#include "query/world_arena.h"

#include <algorithm>

#include "model/posterior_model.h"
#include "query/monte_carlo.h"
#include "util/thread_pool.h"

namespace ust {

Result<WorldArena> WorldArena::Build(const DbSnapshot& db,
                                     const std::vector<ObjectId>& objects,
                                     const TimeInterval& T, uint64_t seed,
                                     size_t num_worlds, ThreadPool* pool) {
  if (!T.valid()) return Status::InvalidArgument("empty arena interval");
  WorldArena arena;
  arena.interval_ = T;
  arena.seed_ = seed;
  arena.num_worlds_ = num_worlds;

  std::vector<ObjectId> sorted = objects;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  std::vector<std::shared_ptr<const PosteriorModel>> models;
  size_t off = 0;
  for (ObjectId id : sorted) {
    auto posterior = db.object(id).Posterior();
    // Unresolvable posteriors don't poison the whole group: the object is
    // simply not realized, and any spec naming it samples live instead.
    if (!posterior.ok()) continue;
    const auto& model = posterior.value();
    const Tic ws = std::max(T.start, model->first_tic());
    const Tic we = std::min(T.end, model->last_tic());
    if (ws > we) continue;  // never alive within T: samplers skip it too
    model->EnsureSamplers();  // warm before the (possibly parallel) fill
    Entry e;
    e.id = id;
    e.ws = ws;
    e.we = we;
    e.wlen = static_cast<uint32_t>(we - ws) + 1;
    e.slab_off = off;
    // Round each slab up to 8 uint32s = 32 bytes: per-object slabs start on
    // vector-lane boundaries of the aligned backing store.
    off += (num_worlds * e.wlen + 7) & ~size_t{7};
    arena.entries_.push_back(e);
    models.push_back(model);
  }
  arena.slab_.assign(off, 0);

  // Fill slabs: per object, one batch walk over all worlds. The stream is
  // the object's WorldStreamSeed stream — the same one WorldSampler::Create
  // hands each participant — and one walk of `num_worlds` windows consumes
  // it exactly like any chunked sequence of walks (one parent draw per
  // world, in world order), so slab contents equal per-spec sampling at any
  // chunking. Objects are independent (own stream, disjoint slab), so the
  // parallel fill is deterministic.
  auto fill = [&arena, &models, seed, num_worlds](size_t i) {
    const Entry& e = arena.entries_[i];
    uint32_t* slab = arena.slab_.data() + e.slab_off;
    const uint32_t wlen = e.wlen;
    Rng rng(WorldStreamSeed(seed, e.id));
    models[i]->SampleWindowBatchVisit(
        e.ws, e.we, num_worlds, rng,
        [slab, wlen](size_t w, size_t rel, uint32_t local, StateId) {
          slab[w * wlen + rel] = local;
        });
  };
  if (pool != nullptr && pool->num_threads() > 1 && arena.entries_.size() > 1) {
    pool->ParallelFor(arena.entries_.size(),
                      [&fill](size_t i, int) { fill(i); });
  } else {
    for (size_t i = 0; i < arena.entries_.size(); ++i) fill(i);
  }
  return arena;
}

const WorldArena::Entry* WorldArena::Find(ObjectId id) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), id,
      [](const Entry& e, ObjectId v) { return e.id < v; });
  if (it != entries_.end() && it->id == id) return &*it;
  return nullptr;
}

}  // namespace ust
