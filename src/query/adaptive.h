// Sequential (adaptive) Monte-Carlo estimation. The paper sizes its sample
// count a priori with Hoeffding's inequality [29]; sequential sampling goes
// further: it draws worlds in batches and stops as soon as the estimates are
// provably good enough, which for threshold queries (P >= tau) is usually
// orders of magnitude earlier than the worst-case Hoeffding count —
// probabilities far from tau are decided after a few hundred worlds.
#pragma once

#include <cstdint>
#include <vector>

#include "model/trajectory_database.h"
#include "query/monte_carlo.h"
#include "query/query.h"
#include "util/status.h"

namespace ust {

/// \brief Which probability a threshold decision is about.
enum class PnnSemantics {
  kForall,  ///< P∀NN (Definition 2)
  kExists,  ///< P∃NN (Definition 1)
};

/// \brief Stopping parameters of the sequential estimators.
struct SequentialOptions {
  double epsilon = 0.01;       ///< absolute error target (estimate variant)
  double delta = 0.05;         ///< failure probability
  size_t batch_size = 256;     ///< worlds sampled between stopping checks
  size_t max_worlds = 1 << 20; ///< hard cap
  int k = 1;                   ///< kNN parameter
  uint64_t seed = 42;
};

/// \brief Estimates with the achieved (Hoeffding) error bound.
struct SequentialPnnResult {
  std::vector<PnnEstimate> estimates;
  size_t worlds_used = 0;
  double epsilon_achieved = 0.0;  ///< two-sided bound at confidence 1-delta
};

/// \brief Sample until the Hoeffding bound reaches `options.epsilon` (or
/// max_worlds). Equivalent in distribution to EstimatePnn with the matching
/// world count, but self-sizing.
Result<SequentialPnnResult> EstimatePnnSequential(
    const TrajectoryDatabase& db, const std::vector<ObjectId>& participants,
    const std::vector<ObjectId>& targets, const QueryTrajectory& q,
    const TimeInterval& T, const SequentialOptions& options);

/// \brief Per-object outcome of a sequential threshold query.
struct ThresholdDecision {
  ObjectId object;
  bool qualifies;      ///< estimate of [P >= tau] (exact when decided)
  bool decided;        ///< confidence interval cleared tau before max_worlds
  double estimate;     ///< point estimate of the probability
  size_t worlds_used;  ///< worlds drawn when this object was decided
};

struct ThresholdQueryResult {
  std::vector<ThresholdDecision> decisions;
  size_t worlds_used = 0;  ///< total worlds drawn
};

/// \brief Decide `P(o) >= tau` per target with Wilson confidence intervals
/// (confidence 1 - delta, Bonferroni-corrected across targets): an object is
/// decided once its interval lies entirely above or below tau. Undecided
/// objects (probability ~ tau) fall back to the point estimate at
/// max_worlds with decided = false.
Result<ThresholdQueryResult> DecideThresholdSequential(
    const TrajectoryDatabase& db, const std::vector<ObjectId>& participants,
    const std::vector<ObjectId>& targets, const QueryTrajectory& q,
    const TimeInterval& T, double tau, PnnSemantics semantics,
    const SequentialOptions& options);

}  // namespace ust
