// Sequential (adaptive) Monte-Carlo estimation. The paper sizes its sample
// count a priori with Hoeffding's inequality [29]; sequential sampling goes
// further: it draws worlds in batches and stops as soon as the estimates are
// provably good enough, which for threshold queries (P >= tau) is usually
// orders of magnitude earlier than the worst-case Hoeffding count —
// probabilities far from tau are decided after a few hundred worlds.
//
// Two tiers live here:
//   * the standalone sequential estimators (EstimatePnnSequential /
//     DecideThresholdSequential) — the original sketch, kept as the simple
//     reference implementation over a DbSnapshot;
//   * EstimatePnnAdaptive — the production entry point the Monte-Carlo
//     executor (query/executor.cc) routes to when a QuerySpec carries a
//     non-fixed PrecisionTarget. It is chunk-deterministic, pool-sharded
//     and arena-aware (DESIGN.md section 8).
#pragma once

#include <cstdint>
#include <vector>

#include "model/db_snapshot.h"
#include "query/monte_carlo.h"
#include "query/query.h"
#include "util/status.h"

namespace ust {

class ThreadPool;
class WorldArena;

/// \brief Which probability a threshold decision is about.
enum class PnnSemantics {
  kForall,  ///< P∀NN (Definition 2)
  kExists,  ///< P∃NN (Definition 1)
};

/// \brief Stopping parameters of the sequential estimators.
///
/// Invariant: `batch_size` defaults to WorldSampler::kWorldChunk and must be
/// a multiple of it whenever results are compared against the executor tier —
/// the executor checks stopping conditions only at 512-world chunk
/// boundaries (the sampler's sharding granule), so a stop decision is a pure
/// function of (snapshot, spec) and lands on the same world count at any
/// thread count or lane schedule. A batch size off the chunk grid is still
/// statistically valid for the standalone estimators, but its stop counts
/// are not comparable with the production pipeline's.
struct SequentialOptions {
  double epsilon = 0.01;       ///< absolute error target (estimate variant)
  double delta = 0.05;         ///< failure probability
  size_t batch_size = WorldSampler::kWorldChunk;  ///< worlds per stop check
  size_t max_worlds = 1 << 20; ///< hard cap
  int k = 1;                   ///< kNN parameter
  uint64_t seed = 42;
};

/// \brief Estimates with the achieved (Hoeffding) error bound.
struct SequentialPnnResult {
  std::vector<PnnEstimate> estimates;
  size_t worlds_used = 0;
  double epsilon_achieved = 0.0;  ///< two-sided bound at confidence 1-delta
};

/// \brief Sample until the Hoeffding bound reaches `options.epsilon` (or
/// max_worlds). Equivalent in distribution to EstimatePnn with the matching
/// world count, but self-sizing.
Result<SequentialPnnResult> EstimatePnnSequential(
    const DbSnapshot& db, const std::vector<ObjectId>& participants,
    const std::vector<ObjectId>& targets, const QueryTrajectory& q,
    const TimeInterval& T, const SequentialOptions& options);

/// \brief Per-object outcome of a sequential threshold query.
struct ThresholdDecision {
  ObjectId object;
  bool qualifies;      ///< estimate of [P >= tau] (exact when decided)
  bool decided;        ///< confidence interval cleared tau before max_worlds
  double estimate;     ///< point estimate of the probability
  size_t worlds_used;  ///< worlds drawn when this object was decided
};

struct ThresholdQueryResult {
  std::vector<ThresholdDecision> decisions;
  size_t worlds_used = 0;  ///< total worlds drawn
};

/// \brief Decide `P(o) >= tau` per target with Wilson confidence intervals
/// (confidence 1 - delta, Bonferroni-corrected across targets): an object is
/// decided once its interval lies entirely above or below tau. Undecided
/// objects (probability ~ tau) fall back to the point estimate at
/// max_worlds with decided = false.
Result<ThresholdQueryResult> DecideThresholdSequential(
    const DbSnapshot& db, const std::vector<ObjectId>& participants,
    const std::vector<ObjectId>& targets, const QueryTrajectory& q,
    const TimeInterval& T, double tau, PnnSemantics semantics,
    const SequentialOptions& options);

/// \brief Result of the production adaptive estimator.
struct AdaptivePnnResult {
  /// Per-target estimates, in target order. In threshold mode the estimates
  /// of a decided target are *frozen* at its decision boundary: the Wilson
  /// interval brackets the point estimate (lo <= p̂ <= hi), so the frozen
  /// estimate passes or fails a `p >= tau` filter exactly as the interval
  /// decision dictates — downstream threshold filters and the CI decisions
  /// can never disagree.
  std::vector<PnnEstimate> estimates;
  size_t worlds_used = 0;    ///< chunk-aligned stop count (<= mc.num_worlds)
  bool early_stopped = false;  ///< stopped before the num_worlds cap
  /// Threshold mode: targets still straddling tau at the cap (their
  /// estimates are point estimates at the cap, not interval decisions).
  size_t undecided = 0;
};

/// \brief The executor-tier adaptive estimator: sample worlds in
/// WorldSampler::kWorldChunk chunks, check the PrecisionTarget's stopping
/// rule at every chunk boundary *in prefix order*, and stop at the first
/// boundary where every target is decided (kThreshold) or every estimate is
/// within epsilon (kEpsilon). `mc.num_worlds` is the hard cap.
///
/// Determinism: worlds are the same id-keyed streams ComputeNnTable draws,
/// chunk boundaries are fixed, and the stopping rule only reads prefix
/// hit counts — so the stop count and every estimate are a pure function of
/// (db, spec), at any `pool` size. A pool samples chunks ahead
/// speculatively (waves of one chunk per worker); chunks past the stop
/// boundary are discarded unaccumulated.
///
/// When `arena` covers (T, seed, num_worlds) and every alive participant,
/// chunks are *evaluated* against the arena prefix instead of sampled —
/// bit-identical marks, so identical stop decisions — and `*used_arena` is
/// set. The arena prefix property makes an arena built for N worlds serve
/// any early-stopped prefix <= N. `precision.mode` must not be kFixedWorlds
/// (that is ComputeNnTable's job).
Result<AdaptivePnnResult> EstimatePnnAdaptive(
    const DbSnapshot& db, const std::vector<ObjectId>& participants,
    const std::vector<ObjectId>& targets, const QueryTrajectory& q,
    const TimeInterval& T, PnnSemantics semantics, double tau,
    const MonteCarloOptions& mc, const PrecisionTarget& precision,
    ThreadPool* pool, WorldSampler::Scratch* scratch,
    std::vector<uint8_t>* rows, const WorldArena* arena = nullptr,
    bool* used_arena = nullptr);

}  // namespace ust
