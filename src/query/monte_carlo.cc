#include "query/monte_carlo.h"

#include <algorithm>

#include "util/check.h"

namespace ust {

size_t NnTable::IndexOf(ObjectId o) const {
  for (size_t i = 0; i < objects_.size(); ++i) {
    if (objects_[i] == o) return i;
  }
  return npos;
}

double NnTable::ForallProb(size_t obj_index,
                           const std::vector<Tic>& tics) const {
  UST_CHECK(obj_index < objects_.size());
  if (num_worlds_ == 0) return 0.0;
  size_t count = 0;
  for (size_t w = 0; w < num_worlds_; ++w) {
    bool all = true;
    for (Tic t : tics) {
      UST_DCHECK(interval_.Contains(t));
      if (!IsNn(obj_index, w, t)) {
        all = false;
        break;
      }
    }
    count += all ? 1 : 0;
  }
  return static_cast<double>(count) / static_cast<double>(num_worlds_);
}

double NnTable::ExistsProb(size_t obj_index,
                           const std::vector<Tic>& tics) const {
  UST_CHECK(obj_index < objects_.size());
  if (num_worlds_ == 0) return 0.0;
  size_t count = 0;
  for (size_t w = 0; w < num_worlds_; ++w) {
    for (Tic t : tics) {
      UST_DCHECK(interval_.Contains(t));
      if (IsNn(obj_index, w, t)) {
        ++count;
        break;
      }
    }
  }
  return static_cast<double>(count) / static_cast<double>(num_worlds_);
}

Result<WorldSampler> WorldSampler::Create(const TrajectoryDatabase& db,
                                          std::vector<ObjectId> participants,
                                          const QueryTrajectory& q,
                                          const TimeInterval& T, int k,
                                          uint64_t seed) {
  if (!T.valid()) return Status::InvalidArgument("empty query interval");
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  for (Tic t = T.start; t <= T.end; ++t) {
    if (!q.Covers(t)) {
      return Status::InvalidArgument(
          "query trajectory does not cover the query interval");
    }
  }
  WorldSampler sampler;
  sampler.db_ = &db;
  sampler.participants_ = std::move(participants);
  sampler.q_ = q;
  sampler.interval_ = T;
  sampler.k_ = k;
  sampler.rng_ = Rng(seed);
  sampler.resolved_.reserve(sampler.participants_.size());
  for (ObjectId id : sampler.participants_) {
    const UncertainObject& obj = db.object(id);
    auto posterior = obj.Posterior();
    if (!posterior.ok()) return posterior.status();
    Participant p;
    p.model = posterior.value();
    p.ws = std::max(T.start, p.model->first_tic());
    p.we = std::min(T.end, p.model->last_tic());
    p.alive = p.ws <= p.we;
    sampler.resolved_.push_back(std::move(p));
  }
  sampler.world_.resize(sampler.resolved_.size());
  return sampler;
}

void WorldSampler::NextWorld(uint8_t* is_nn) {
  for (size_t i = 0; i < resolved_.size(); ++i) {
    WorldTrajectory& wt = world_[i];
    if (!resolved_[i].alive) {
      wt.alive = false;
      continue;
    }
    auto traj =
        resolved_[i].model->SampleWindow(resolved_[i].ws, resolved_[i].we, rng_);
    UST_CHECK(traj.ok());  // window validated at Create()
    wt.alive = true;
    wt.traj = traj.MoveValue();
  }
  MarkNearestNeighbors(db_->space(), world_, q_, interval_, k_, is_nn);
}

Result<NnTable> ComputeNnTable(const TrajectoryDatabase& db,
                               const std::vector<ObjectId>& participants,
                               const QueryTrajectory& q, const TimeInterval& T,
                               const MonteCarloOptions& options) {
  auto sampler =
      WorldSampler::Create(db, participants, q, T, options.k, options.seed);
  if (!sampler.ok()) return sampler.status();
  NnTable table(participants, T, options.num_worlds);
  for (size_t w = 0; w < options.num_worlds; ++w) {
    sampler.value().NextWorld(table.WorldRow(w));
  }
  return table;
}

Result<std::vector<PnnEstimate>> EstimatePnn(
    const TrajectoryDatabase& db, const std::vector<ObjectId>& participants,
    const std::vector<ObjectId>& targets, const QueryTrajectory& q,
    const TimeInterval& T, const MonteCarloOptions& options) {
  auto table_result = ComputeNnTable(db, participants, q, T, options);
  if (!table_result.ok()) return table_result.status();
  const NnTable& table = table_result.value();
  std::vector<PnnEstimate> estimates;
  estimates.reserve(targets.size());
  for (ObjectId o : targets) {
    size_t idx = table.IndexOf(o);
    if (idx == NnTable::npos) {
      return Status::InvalidArgument("target not among participants");
    }
    estimates.push_back({o, table.ForallProb(idx), table.ExistsProb(idx)});
  }
  return estimates;
}

}  // namespace ust
