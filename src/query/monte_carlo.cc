#include "query/monte_carlo.h"

#include <algorithm>

#include "util/check.h"

namespace ust {

void NnTable::BuildIndex() {
  sorted_index_.reserve(objects_.size());
  for (size_t i = 0; i < objects_.size(); ++i) {
    sorted_index_.push_back({objects_[i], static_cast<uint32_t>(i)});
  }
  std::sort(sorted_index_.begin(), sorted_index_.end());
}

size_t NnTable::IndexOf(ObjectId o) const {
  auto it = std::lower_bound(
      sorted_index_.begin(), sorted_index_.end(), o,
      [](const std::pair<ObjectId, uint32_t>& e, ObjectId v) {
        return e.first < v;
      });
  if (it != sorted_index_.end() && it->first == o) return it->second;
  return npos;
}

double NnTable::ForallProb(size_t obj_index,
                           const std::vector<Tic>& tics) const {
  UST_CHECK(obj_index < objects_.size());
  if (num_worlds_ == 0) return 0.0;
  size_t count = 0;
  for (size_t w = 0; w < num_worlds_; ++w) {
    bool all = true;
    for (Tic t : tics) {
      UST_DCHECK(interval_.Contains(t));
      if (!IsNn(obj_index, w, t)) {
        all = false;
        break;
      }
    }
    count += all ? 1 : 0;
  }
  return static_cast<double>(count) / static_cast<double>(num_worlds_);
}

double NnTable::ExistsProb(size_t obj_index,
                           const std::vector<Tic>& tics) const {
  UST_CHECK(obj_index < objects_.size());
  if (num_worlds_ == 0) return 0.0;
  size_t count = 0;
  for (size_t w = 0; w < num_worlds_; ++w) {
    for (Tic t : tics) {
      UST_DCHECK(interval_.Contains(t));
      if (IsNn(obj_index, w, t)) {
        ++count;
        break;
      }
    }
  }
  return static_cast<double>(count) / static_cast<double>(num_worlds_);
}

Result<WorldSampler> WorldSampler::Create(const TrajectoryDatabase& db,
                                          std::vector<ObjectId> participants,
                                          const QueryTrajectory& q,
                                          const TimeInterval& T, int k,
                                          uint64_t seed) {
  if (!T.valid()) return Status::InvalidArgument("empty query interval");
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  for (Tic t = T.start; t <= T.end; ++t) {
    if (!q.Covers(t)) {
      return Status::InvalidArgument(
          "query trajectory does not cover the query interval");
    }
  }
  WorldSampler sampler;
  sampler.db_ = &db;
  sampler.participants_ = std::move(participants);
  sampler.q_ = q;
  sampler.interval_ = T;
  sampler.k_ = k;
  sampler.qpts_.reserve(T.length());
  for (Tic t = T.start; t <= T.end; ++t) sampler.qpts_.push_back(q.At(t));
  Rng root(seed);
  sampler.resolved_.reserve(sampler.participants_.size());
  for (ObjectId id : sampler.participants_) {
    const UncertainObject& obj = db.object(id);
    auto posterior = obj.Posterior();
    if (!posterior.ok()) return posterior.status();
    Participant p;
    p.model = posterior.value();
    p.ws = std::max(T.start, p.model->first_tic());
    p.we = std::min(T.end, p.model->last_tic());
    p.alive = p.ws <= p.we;
    p.rng = root.Fork();  // per-participant stream: chunking-independent
    if (p.alive) {
      // Validate the window once and warm the alias samplers here, so world
      // sampling is pure array lookups.
      UST_CHECK(p.model->CoversWindow(p.ws, p.we));
      p.model->EnsureSamplers();
      p.rel0 = static_cast<uint32_t>(p.ws - T.start);
      p.wlen = static_cast<uint32_t>(p.we - p.ws) + 1;
      p.doff = sampler.total_wlen_;
      sampler.total_wlen_ += p.wlen;
      // Precompute the support-state-to-q distances of every window slice:
      // one pass per query replaces a coord lookup per sampled state.
      p.dbase = sampler.dtab_.size();
      p.dtab_off.resize(p.wlen + 1);
      uint32_t cum = 0;
      for (uint32_t r = 0; r < p.wlen; ++r) {
        const PosteriorModel::Slice& slice =
            p.model->SliceAt(p.ws + static_cast<Tic>(r));
        p.dtab_off[r] = cum;
        const Point2& qt = sampler.qpts_[p.rel0 + r];
        for (StateId s : slice.support) {
          sampler.dtab_.push_back(SquaredDistance(db.space().coord(s), qt));
        }
        cum += static_cast<uint32_t>(slice.support.size());
      }
      p.dtab_off[p.wlen] = cum;
    }
    sampler.resolved_.push_back(std::move(p));
  }
  return sampler;
}

void WorldSampler::SampleWorlds(size_t count, uint8_t* is_nn,
                                size_t world_stride) {
  const size_t n = resolved_.size();
  const size_t len = interval_.length();
  const double kInf = std::numeric_limits<double>::infinity();
  for (size_t w0 = 0; w0 < count; w0 += kWorldChunk) {
    const size_t chunk = std::min(kWorldChunk, count - w0);
    dist2_.resize(total_wlen_ * chunk);
    min_scratch_.resize(chunk * len);
    if (k_ == 1) std::fill(min_scratch_.begin(), min_scratch_.end(), kInf);
    // ---- Phase 1: participant-major sampling straight into distances. ----
    // One participant's alias tables stay hot across the whole chunk and the
    // batch sampler keeps several walks in flight; the sampled windows are
    // converted to squared distances immediately (no trajectory ever escapes
    // this loop). For k == 1 the chunk's per-tic minima fold into the same
    // pass while the block is L1-resident.
    for (size_t i = 0; i < n; ++i) {
      Participant& p = resolved_[i];
      if (!p.alive) continue;
      const double* dtab = dtab_.data() + p.dbase;
      const uint32_t* doff = p.dtab_off.data();
      double* block = dist2_.data() + p.doff * chunk;
      const uint32_t wlen = p.wlen;
      if (k_ == 1) {
        double* mins = min_scratch_.data() + p.rel0;
        p.model->SampleWindowBatchVisit(
            p.ws, p.we, chunk, p.rng,
            [=](size_t w, size_t rel, uint32_t local, StateId) {
              const double d = dtab[doff[rel] + local];
              block[w * wlen + rel] = d;
              double& m = mins[w * len + rel];
              if (d < m) m = d;
            });
      } else {
        p.model->SampleWindowBatchVisit(
            p.ws, p.we, chunk, p.rng,
            [=](size_t w, size_t rel, uint32_t local, StateId) {
              block[w * wlen + rel] = dtab[doff[rel] + local];
            });
      }
    }
    // ---- Phase 2: k-th distances (k > 1 only; k == 1 folded above). ----
    if (k_ != 1) {
      for (size_t w = 0; w < chunk; ++w) {
        double* mb = min_scratch_.data() + w * len;
        for (size_t rel = 0; rel < len; ++rel) {
          kth_scratch_.clear();
          for (size_t i = 0; i < n; ++i) {
            const Participant& p = resolved_[i];
            if (!p.alive || rel < p.rel0 || rel >= p.rel0 + p.wlen) continue;
            kth_scratch_.push_back(
                dist2_[p.doff * chunk + w * p.wlen + (rel - p.rel0)]);
          }
          if (kth_scratch_.empty()) {
            mb[rel] = kInf;
            continue;
          }
          const size_t kk =
              std::min<size_t>(static_cast<size_t>(k_), kth_scratch_.size());
          std::nth_element(kth_scratch_.begin(), kth_scratch_.begin() + (kk - 1),
                           kth_scratch_.end());
          mb[rel] = kth_scratch_[kk - 1];
        }
      }
    }
    // Marking: every byte of a world row is written exactly once.
    for (size_t w = 0; w < chunk; ++w) {
      uint8_t* row = is_nn + (w0 + w) * world_stride;
      const double* mb = min_scratch_.data() + w * len;
      for (size_t i = 0; i < n; ++i) {
        const Participant& p = resolved_[i];
        uint8_t* prow = row + i * len;
        if (!p.alive) {
          std::fill(prow, prow + len, 0);
          continue;
        }
        const double* d = dist2_.data() + p.doff * chunk + w * p.wlen;
        std::fill(prow, prow + p.rel0, 0);
        for (uint32_t r = 0; r < p.wlen; ++r) {
          prow[p.rel0 + r] = d[r] <= mb[p.rel0 + r] ? 1 : 0;
        }
        std::fill(prow + p.rel0 + p.wlen, prow + len, 0);
      }
    }
  }
}

Result<NnTable> ComputeNnTable(const TrajectoryDatabase& db,
                               const std::vector<ObjectId>& participants,
                               const QueryTrajectory& q, const TimeInterval& T,
                               const MonteCarloOptions& options) {
  auto sampler =
      WorldSampler::Create(db, participants, q, T, options.k, options.seed);
  if (!sampler.ok()) return sampler.status();
  NnTable table(participants, T, options.num_worlds);
  // Fill the bitmap row-major per world in one batched pass.
  sampler.value().SampleWorlds(options.num_worlds, table.WorldRow(0),
                               participants.size() * T.length());
  return table;
}

Result<std::vector<PnnEstimate>> EstimatePnn(
    const TrajectoryDatabase& db, const std::vector<ObjectId>& participants,
    const std::vector<ObjectId>& targets, const QueryTrajectory& q,
    const TimeInterval& T, const MonteCarloOptions& options) {
  auto table_result = ComputeNnTable(db, participants, q, T, options);
  if (!table_result.ok()) return table_result.status();
  const NnTable& table = table_result.value();
  std::vector<PnnEstimate> estimates;
  estimates.reserve(targets.size());
  for (ObjectId o : targets) {
    size_t idx = table.IndexOf(o);
    if (idx == NnTable::npos) {
      return Status::InvalidArgument("target not among participants");
    }
    estimates.push_back({o, table.ForallProb(idx), table.ExistsProb(idx)});
  }
  return estimates;
}

}  // namespace ust
