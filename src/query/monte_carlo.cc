#include "query/monte_carlo.h"

#include <algorithm>
#include <atomic>

#include "query/world_arena.h"
#include "util/check.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace ust {

namespace {

/// Gather per-tic word-row pointers for the SIMD row folds. Tic counts are
/// tiny (interval lengths); a 64-pointer stack array covers every practical
/// query, with a heap fallback keeping the contract unconditional.
struct RowPtrs {
  const uint64_t* stack[64];
  std::vector<const uint64_t*> heap;
  const uint64_t** Get(size_t n) {
    if (n <= 64) return stack;
    heap.resize(n);
    return heap.data();
  }
};

}  // namespace

void NnTable::BuildIndex() {
  sorted_index_.reserve(objects_.size());
  for (size_t i = 0; i < objects_.size(); ++i) {
    sorted_index_.push_back({objects_[i], static_cast<uint32_t>(i)});
  }
  std::sort(sorted_index_.begin(), sorted_index_.end());
}

size_t NnTable::IndexOf(ObjectId o) const {
  auto it = std::lower_bound(
      sorted_index_.begin(), sorted_index_.end(), o,
      [](const std::pair<ObjectId, uint32_t>& e, ObjectId v) {
        return e.first < v;
      });
  if (it != sorted_index_.end() && it->first == o) return it->second;
  return npos;
}

void NnTable::PackWorlds(size_t first_world, size_t count, const uint8_t* is_nn,
                         size_t world_stride) {
  UST_CHECK(first_world + count <= num_worlds_);
  UST_CHECK((first_world & 63) == 0 || count == 0);
  const size_t row_len = objects_.size() * interval_.length();
  // World-outer: the touched words (one per (object, tic), stride
  // words_per_tic_ apart) stay cache-resident across the 64 consecutive
  // worlds that share them.
  for (size_t w = 0; w < count; ++w) {
    const uint8_t* row = is_nn + w * world_stride;
    const size_t world = first_world + w;
    uint64_t* base = bits_.data() + (world >> 6);
    const uint64_t bit = uint64_t{1} << (world & 63);
    for (size_t idx = 0; idx < row_len; ++idx) {
      if (row[idx]) base[idx * words_per_tic_] |= bit;
    }
  }
}

double NnTable::ReduceProb(size_t obj_index, const Tic* tics, size_t num_tics,
                           bool forall) const {
  UST_CHECK(obj_index < objects_.size());
  if (num_worlds_ == 0) return 0.0;
  if (num_tics == 0) return forall ? 1.0 : 0.0;  // vacuous truth / falsity
  RowPtrs ptrs;
  const uint64_t** rows = ptrs.Get(num_tics);
  for (size_t ti = 0; ti < num_tics; ++ti) {
    UST_DCHECK(interval_.Contains(tics[ti]));
    rows[ti] = TicWords(obj_index, RelTic(tics[ti]));
  }
  // Dispatched word sweep (util/simd.h): popcount sums are integers, so
  // every dispatch level returns the same count — and thus the same double.
  const uint64_t count =
      forall ? AndRowsPopcount(rows, num_tics, words_per_tic_)
             : OrRowsPopcount(rows, num_tics, words_per_tic_);
  return static_cast<double>(count) / static_cast<double>(num_worlds_);
}

double NnTable::ForallProb(size_t obj_index,
                           const std::vector<Tic>& tics) const {
  return ReduceProb(obj_index, tics.data(), tics.size(), /*forall=*/true);
}

double NnTable::ExistsProb(size_t obj_index,
                           const std::vector<Tic>& tics) const {
  return ReduceProb(obj_index, tics.data(), tics.size(), /*forall=*/false);
}

double NnTable::ProbAt(size_t obj_index, Tic t) const {
  UST_CHECK(obj_index < objects_.size());
  UST_DCHECK(interval_.Contains(t));
  if (num_worlds_ == 0) return 0.0;
  const uint64_t count =
      PopcountWords(TicWords(obj_index, RelTic(t)), words_per_tic_);
  return static_cast<double>(count) / static_cast<double>(num_worlds_);
}

double NnTable::ForallProb(size_t obj_index) const {
  UST_CHECK(obj_index < objects_.size());
  if (num_worlds_ == 0) return 0.0;
  const size_t len = interval_.length();
  RowPtrs ptrs;
  const uint64_t** rows = ptrs.Get(len);
  for (size_t rel = 0; rel < len; ++rel) {
    rows[rel] = TicWords(obj_index, rel);
  }
  const uint64_t count = AndRowsPopcount(rows, len, words_per_tic_);
  return static_cast<double>(count) / static_cast<double>(num_worlds_);
}

double NnTable::ExistsProb(size_t obj_index) const {
  UST_CHECK(obj_index < objects_.size());
  if (num_worlds_ == 0) return 0.0;
  const size_t len = interval_.length();
  RowPtrs ptrs;
  const uint64_t** rows = ptrs.Get(len);
  for (size_t rel = 0; rel < len; ++rel) {
    rows[rel] = TicWords(obj_index, rel);
  }
  const uint64_t count = OrRowsPopcount(rows, len, words_per_tic_);
  return static_cast<double>(count) / static_cast<double>(num_worlds_);
}

Result<WorldSampler> WorldSampler::Create(const DbSnapshot& db,
                                          std::vector<ObjectId> participants,
                                          const QueryTrajectory& q,
                                          const TimeInterval& T, int k,
                                          uint64_t seed) {
  if (!T.valid()) return Status::InvalidArgument("empty query interval");
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  for (Tic t = T.start; t <= T.end; ++t) {
    if (!q.Covers(t)) {
      return Status::InvalidArgument(
          "query trajectory does not cover the query interval");
    }
  }
  WorldSampler sampler;
  // Monotonic cursor ids (never reused, never 0) back the SampleNext guard.
  static std::atomic<uint64_t> next_cursor_id{1};
  sampler.cursor_id_ = next_cursor_id.fetch_add(1, std::memory_order_relaxed);
  sampler.participants_ = std::move(participants);
  sampler.q_ = q;
  sampler.interval_ = T;
  sampler.k_ = k;
  sampler.qpts_.reserve(T.length());
  for (Tic t = T.start; t <= T.end; ++t) sampler.qpts_.push_back(q.At(t));
  sampler.resolved_.reserve(sampler.participants_.size());
  for (ObjectId id : sampler.participants_) {
    const UncertainObject& obj = db.object(id);
    auto posterior = obj.Posterior();
    if (!posterior.ok()) return posterior.status();
    Participant p;
    p.model = posterior.value();
    p.ws = std::max(T.start, p.model->first_tic());
    p.we = std::min(T.end, p.model->last_tic());
    p.alive = p.ws <= p.we;
    // Id-keyed stream, not a positional fork: an object's worlds depend only
    // on (seed, id), never on which other participants the query kept, so a
    // shared arena over a superset serves any pruned subset bit-identically.
    p.rng0 = Rng(WorldStreamSeed(seed, id));
    if (p.alive) {
      // Validate the window once and warm the alias samplers here, so world
      // sampling is pure array lookups.
      UST_CHECK(p.model->CoversWindow(p.ws, p.we));
      p.model->EnsureSamplers();
      p.rel0 = static_cast<uint32_t>(p.ws - T.start);
      p.wlen = static_cast<uint32_t>(p.we - p.ws) + 1;
      p.doff = sampler.total_wlen_;
      sampler.total_wlen_ += p.wlen;
      // Precompute the support-state-to-q distances of every window slice:
      // one pass per query replaces a coord lookup per sampled state.
      p.dbase = sampler.dtab_.size();
      p.dtab_off.resize(p.wlen + 1);
      uint32_t cum = 0;
      for (uint32_t r = 0; r < p.wlen; ++r) {
        const PosteriorModel::Slice& slice =
            p.model->SliceAt(p.ws + static_cast<Tic>(r));
        p.dtab_off[r] = cum;
        const Point2& qt = sampler.qpts_[p.rel0 + r];
        for (StateId s : slice.support) {
          sampler.dtab_.push_back(SquaredDistance(db.space().coord(s), qt));
        }
        cum += static_cast<uint32_t>(slice.support.size());
      }
      p.dtab_off[p.wlen] = cum;
    }
    sampler.resolved_.push_back(std::move(p));
  }
  sampler.live_rngs_.reserve(sampler.resolved_.size());
  for (const Participant& p : sampler.resolved_) {
    sampler.live_rngs_.push_back(p.rng0);
  }
  return sampler;
}

void WorldSampler::SampleWorlds(size_t count, uint8_t* is_nn,
                                size_t world_stride) {
  SampleCore(count, is_nn, world_stride, live_rngs_.data(), &scratch_);
}

std::vector<Rng> WorldSampler::InitialRngs() const {
  std::vector<Rng> rngs;
  rngs.reserve(resolved_.size());
  for (const Participant& p : resolved_) rngs.push_back(p.rng0);
  return rngs;
}

void WorldSampler::AdvanceWorlds(std::vector<Rng>* rngs, size_t worlds) {
  // One Fork (== one parent draw) is consumed per world, so advancing a
  // stream by `worlds` raw draws reproduces the serial state at that world.
  for (Rng& r : *rngs) {
    for (size_t w = 0; w < worlds; ++w) (void)r();
  }
}

void WorldSampler::SampleWorldsFrom(const std::vector<Rng>& rng_starts,
                                    size_t count, uint8_t* is_nn,
                                    size_t world_stride,
                                    Scratch* scratch) const {
  UST_CHECK(rng_starts.size() == resolved_.size());
  scratch->rngs = rng_starts;
  // The cursor now holds this sampler's streams; keep the owner tag honest
  // so a later SampleNext cannot continue foreign positions unchecked.
  scratch->cursor_owner = cursor_id_;
  SampleCore(count, is_nn, world_stride, scratch->rngs.data(), scratch);
}

void WorldSampler::ResetCursor(Scratch* scratch) const {
  scratch->rngs = InitialRngs();
  scratch->cursor_owner = cursor_id_;
}

void WorldSampler::SampleNext(size_t count, uint8_t* is_nn,
                              size_t world_stride, Scratch* scratch) const {
  // A cursor positioned on another sampler must not silently continue here:
  // the worlds would depend on whatever query ran before, not on the seed.
  UST_CHECK(cursor_id_ != 0 && scratch->cursor_owner == cursor_id_ &&
            scratch->rngs.size() == resolved_.size());
  SampleCore(count, is_nn, world_stride, scratch->rngs.data(), scratch);
}

void WorldSampler::SampleCore(size_t count, uint8_t* is_nn,
                              size_t world_stride, Rng* rngs,
                              Scratch* scratch) const {
  const size_t n = resolved_.size();
  const size_t len = interval_.length();
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<double>& dist2 = scratch->dist2;
  std::vector<double>& min_scratch = scratch->min_scratch;
  for (size_t w0 = 0; w0 < count; w0 += kWorldChunk) {
    const size_t chunk = std::min(kWorldChunk, count - w0);
    dist2.resize(total_wlen_ * chunk);
    min_scratch.resize(chunk * len);
    if (k_ == 1) std::fill(min_scratch.begin(), min_scratch.end(), kInf);
    // ---- Phase 1: participant-major sampling straight into distances. ----
    // One participant's alias tables stay hot across the whole chunk and the
    // batch sampler keeps several walks in flight; the sampled windows are
    // converted to squared distances immediately (no trajectory ever escapes
    // this loop). For k == 1 the chunk's per-tic minima fold into the same
    // pass while the block is L1-resident.
    for (size_t i = 0; i < n; ++i) {
      const Participant& p = resolved_[i];
      if (!p.alive) continue;
      const double* dtab = dtab_.data() + p.dbase;
      const uint32_t* doff = p.dtab_off.data();
      double* block = dist2.data() + p.doff * chunk;
      const uint32_t wlen = p.wlen;
      if (k_ == 1) {
        double* mins = min_scratch.data() + p.rel0;
        p.model->SampleWindowBatchVisit(
            p.ws, p.we, chunk, rngs[i],
            [=](size_t w, size_t rel, uint32_t local, StateId) {
              const double d = dtab[doff[rel] + local];
              block[w * wlen + rel] = d;
              double& m = mins[w * len + rel];
              if (d < m) m = d;
            });
      } else {
        p.model->SampleWindowBatchVisit(
            p.ws, p.we, chunk, rngs[i],
            [=](size_t w, size_t rel, uint32_t local, StateId) {
              block[w * wlen + rel] = dtab[doff[rel] + local];
            });
      }
    }
    ReduceChunk(w0, chunk, is_nn, world_stride, scratch);
  }
}

void WorldSampler::ReduceChunk(size_t row0, size_t chunk, uint8_t* is_nn,
                               size_t world_stride, Scratch* scratch) const {
  const size_t n = resolved_.size();
  const size_t len = interval_.length();
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<double>& dist2 = scratch->dist2;
  std::vector<double>& min_scratch = scratch->min_scratch;
  std::vector<double>& kth_scratch = scratch->kth_scratch;
  // ---- Phase 2: k-th distances (k > 1 only; k == 1 folded in phase 1). ----
  if (k_ != 1) {
    for (size_t w = 0; w < chunk; ++w) {
      double* mb = min_scratch.data() + w * len;
      for (size_t rel = 0; rel < len; ++rel) {
        kth_scratch.clear();
        for (size_t i = 0; i < n; ++i) {
          const Participant& p = resolved_[i];
          if (!p.alive || rel < p.rel0 || rel >= p.rel0 + p.wlen) continue;
          kth_scratch.push_back(
              dist2[p.doff * chunk + w * p.wlen + (rel - p.rel0)]);
        }
        if (kth_scratch.empty()) {
          mb[rel] = kInf;
          continue;
        }
        const size_t kk =
            std::min<size_t>(static_cast<size_t>(k_), kth_scratch.size());
        std::nth_element(kth_scratch.begin(), kth_scratch.begin() + (kk - 1),
                         kth_scratch.end());
        mb[rel] = kth_scratch[kk - 1];
      }
    }
  }
  // Marking: every byte of a world row is written exactly once.
  for (size_t w = 0; w < chunk; ++w) {
    uint8_t* row = is_nn + (row0 + w) * world_stride;
    const double* mb = min_scratch.data() + w * len;
    for (size_t i = 0; i < n; ++i) {
      const Participant& p = resolved_[i];
      uint8_t* prow = row + i * len;
      if (!p.alive) {
        std::fill(prow, prow + len, 0);
        continue;
      }
      const double* d = dist2.data() + p.doff * chunk + w * p.wlen;
      std::fill(prow, prow + p.rel0, 0);
      for (uint32_t r = 0; r < p.wlen; ++r) {
        prow[p.rel0 + r] = d[r] <= mb[p.rel0 + r] ? 1 : 0;
      }
      std::fill(prow + p.rel0 + p.wlen, prow + len, 0);
    }
  }
}

bool WorldSampler::CoveredBy(const WorldArena& arena) const {
  for (size_t i = 0; i < resolved_.size(); ++i) {
    const Participant& p = resolved_[i];
    if (!p.alive) continue;  // never sampled, nothing to cover
    const WorldArena::Entry* e = arena.Find(participants_[i]);
    if (e == nullptr || e->ws != p.ws || e->we != p.we) return false;
  }
  return true;
}

void WorldSampler::EvalArenaWorlds(const WorldArena& arena, size_t first_world,
                                   size_t count, uint8_t* is_nn,
                                   size_t world_stride,
                                   Scratch* scratch) const {
  UST_CHECK(first_world + count <= arena.num_worlds());
  const size_t n = resolved_.size();
  const size_t len = interval_.length();
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<const uint32_t*>& slabs = scratch->arena_slabs;
  slabs.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const Participant& p = resolved_[i];
    if (!p.alive) {
      slabs[i] = nullptr;
      continue;
    }
    const WorldArena::Entry* e = arena.Find(participants_[i]);
    UST_CHECK(e != nullptr && e->ws == p.ws && e->we == p.we);
    slabs[i] = arena.slab(*e);
  }
  std::vector<double>& dist2 = scratch->dist2;
  std::vector<double>& min_scratch = scratch->min_scratch;
  // Same chunk structure as SampleCore, with phase 1's alias walk replaced
  // by slab reads: the slab holds the exact support indices the walk would
  // have produced, the distance lookups and the min fold are the same
  // operations on the same values, and ReduceChunk is shared — so the
  // emitted rows are bit-identical to sampling these worlds live.
  for (size_t w0 = 0; w0 < count; w0 += kWorldChunk) {
    const size_t chunk = std::min(kWorldChunk, count - w0);
    dist2.resize(total_wlen_ * chunk);
    min_scratch.resize(chunk * len);
    if (k_ == 1) std::fill(min_scratch.begin(), min_scratch.end(), kInf);
    for (size_t i = 0; i < n; ++i) {
      const Participant& p = resolved_[i];
      if (!p.alive) continue;
      const double* dtab = dtab_.data() + p.dbase;
      const uint32_t* doff = p.dtab_off.data();
      double* block = dist2.data() + p.doff * chunk;
      const uint32_t wlen = p.wlen;
      const uint32_t* slab = slabs[i] + (first_world + w0) * wlen;
      if (k_ == 1) {
        double* mins = min_scratch.data() + p.rel0;
        for (size_t w = 0; w < chunk; ++w) {
          const uint32_t* srow = slab + w * wlen;
          double* brow = block + w * wlen;
          double* mrow = mins + w * len;
          for (uint32_t r = 0; r < wlen; ++r) {
            const double d = dtab[doff[r] + srow[r]];
            brow[r] = d;
            if (d < mrow[r]) mrow[r] = d;
          }
        }
      } else {
        for (size_t w = 0; w < chunk; ++w) {
          const uint32_t* srow = slab + w * wlen;
          double* brow = block + w * wlen;
          for (uint32_t r = 0; r < wlen; ++r) {
            brow[r] = dtab[doff[r] + srow[r]];
          }
        }
      }
    }
    ReduceChunk(w0, chunk, is_nn, world_stride, scratch);
  }
}

Result<NnTable> ComputeNnTable(const DbSnapshot& db,
                               const std::vector<ObjectId>& participants,
                               const QueryTrajectory& q, const TimeInterval& T,
                               const MonteCarloOptions& options,
                               ThreadPool* pool) {
  return ComputeNnTableScratch(db, participants, q, T, options, pool,
                               /*scratch=*/nullptr, /*rows=*/nullptr);
}

Result<NnTable> ComputeNnTableScratch(
    const DbSnapshot& db, const std::vector<ObjectId>& participants,
    const QueryTrajectory& q, const TimeInterval& T,
    const MonteCarloOptions& options, ThreadPool* pool,
    WorldSampler::Scratch* scratch, std::vector<uint8_t>* rows,
    const WorldArena* arena, bool* used_arena) {
  auto sampler =
      WorldSampler::Create(db, participants, q, T, options.k, options.seed);
  if (!sampler.ok()) return sampler.status();
  const WorldSampler& ws = sampler.value();
  NnTable table(participants, T, options.num_worlds);
  const size_t stride = participants.size() * T.length();
  const bool arena_ok = arena != nullptr &&
                        arena->Matches(T, options.seed, options.num_worlds) &&
                        ws.CoveredBy(*arena);
  if (used_arena != nullptr) *used_arena = arena_ok;
  if (arena_ok) {
    if (pool != nullptr && pool->num_threads() > 1 &&
        options.num_worlds > WorldSampler::kWorldChunk) {
      // Evaluation needs no RNG prefix pass: any world range reads its
      // slab rows directly, so sharding is embarrassingly parallel and
      // still byte-identical (disjoint 64-aligned packing, as below).
      const int workers = pool->num_threads();
      std::vector<WorldSampler::Scratch> scratches(workers);
      std::vector<std::vector<uint8_t>> bufs(workers);
      NnTable* table_ptr = &table;
      pool->ParallelForChunked(
          options.num_worlds, WorldSampler::kWorldChunk,
          [&, table_ptr](size_t begin, size_t end, int worker) {
            std::vector<uint8_t>& buf = bufs[worker];
            buf.resize((end - begin) * stride);
            ws.EvalArenaWorlds(*arena, begin, end - begin, buf.data(),
                               stride, &scratches[worker]);
            table_ptr->PackWorlds(begin, end - begin, buf.data(), stride);
          });
    } else {
      WorldSampler::Scratch local_scratch;
      std::vector<uint8_t> local_rows;
      if (scratch == nullptr) scratch = &local_scratch;
      if (rows == nullptr) rows = &local_rows;
      rows->resize(std::min(options.num_worlds, WorldSampler::kWorldChunk) *
                   stride);
      for (size_t w0 = 0; w0 < options.num_worlds;
           w0 += WorldSampler::kWorldChunk) {
        const size_t chunk =
            std::min(WorldSampler::kWorldChunk, options.num_worlds - w0);
        ws.EvalArenaWorlds(*arena, w0, chunk, rows->data(), stride, scratch);
        table.PackWorlds(w0, chunk, rows->data(), stride);
      }
    }
    return table;
  }
  if (pool != nullptr && pool->num_threads() > 1 &&
      options.num_worlds > WorldSampler::kWorldChunk) {
    // Shard world chunks across the pool. Chunk boundaries are fixed
    // (multiples of kWorldChunk, itself a multiple of 64), shards pack into
    // disjoint bitmap words, and every chunk starts from an RNG state
    // precomputed by one serial O(W) prefix pass below — so the table is
    // bit-identical to serial at any thread count, without each shard
    // replaying the stream from world 0 (which would be O(W²) overall).
    const size_t num_chunks =
        (options.num_worlds + WorldSampler::kWorldChunk - 1) /
        WorldSampler::kWorldChunk;
    std::vector<std::vector<Rng>> chunk_rngs(num_chunks);
    std::vector<Rng> cursor = ws.InitialRngs();
    for (size_t c = 0; c < num_chunks; ++c) {
      chunk_rngs[c] = cursor;
      if (c + 1 < num_chunks) {
        WorldSampler::AdvanceWorlds(&cursor, WorldSampler::kWorldChunk);
      }
    }
    const int workers = pool->num_threads();
    std::vector<WorldSampler::Scratch> scratches(workers);
    std::vector<std::vector<uint8_t>> bufs(workers);
    NnTable* table_ptr = &table;
    pool->ParallelForChunked(
        options.num_worlds, WorldSampler::kWorldChunk,
        [&, table_ptr](size_t begin, size_t end, int worker) {
          std::vector<uint8_t>& buf = bufs[worker];
          buf.resize((end - begin) * stride);
          ws.SampleWorldsFrom(chunk_rngs[begin / WorldSampler::kWorldChunk],
                              end - begin, buf.data(), stride,
                              &scratches[worker]);
          table_ptr->PackWorlds(begin, end - begin, buf.data(), stride);
        });
  } else {
    // Serial: sample chunk-wise into a reused byte buffer, then pack. The
    // stream continues across chunks (no repositioning cost).
    WorldSampler::Scratch local_scratch;
    std::vector<uint8_t> local_rows;
    if (scratch == nullptr) scratch = &local_scratch;
    if (rows == nullptr) rows = &local_rows;
    ws.ResetCursor(scratch);
    rows->resize(std::min(options.num_worlds, WorldSampler::kWorldChunk) *
                 stride);
    for (size_t w0 = 0; w0 < options.num_worlds;
         w0 += WorldSampler::kWorldChunk) {
      const size_t chunk =
          std::min(WorldSampler::kWorldChunk, options.num_worlds - w0);
      ws.SampleNext(chunk, rows->data(), stride, scratch);
      table.PackWorlds(w0, chunk, rows->data(), stride);
    }
  }
  return table;
}

Result<std::vector<PnnEstimate>> EstimatePnn(
    const DbSnapshot& db, const std::vector<ObjectId>& participants,
    const std::vector<ObjectId>& targets, const QueryTrajectory& q,
    const TimeInterval& T, const MonteCarloOptions& options, ThreadPool* pool) {
  auto table_result = ComputeNnTable(db, participants, q, T, options, pool);
  if (!table_result.ok()) return table_result.status();
  const NnTable& table = table_result.value();
  std::vector<PnnEstimate> estimates;
  estimates.reserve(targets.size());
  for (ObjectId o : targets) {
    size_t idx = table.IndexOf(o);
    if (idx == NnTable::npos) {
      return Status::InvalidArgument("target not among participants");
    }
    estimates.push_back({o, table.ForallProb(idx), table.ExistsProb(idx)});
  }
  return estimates;
}

}  // namespace ust
