// Shared world arena (DESIGN.md section 7): the possible worlds of one hot
// (epoch, interval) group, sampled once and evaluated by every spec.
//
// World realizations are query-independent — only the distance tables and
// the NnTable reductions depend on q — so a session serving many specs over
// the same (interval, seed, num_worlds) resamples the exact same
// trajectories per spec. The arena materializes them once: for every object
// alive within T, a participant-major SoA slab of sampled *support indices*
// (`slab[w * wlen + rel]` = index into SliceAt(ws + rel).support), drawn
// from the object's id-keyed stream (WorldStreamSeed). Because streams are
// keyed by object id, not by participant position, the slab holds exactly
// the indices any spec's batch walk would have produced — a spec over any
// pruned subset of the arena's objects evaluates bit-identically against it
// (WorldSampler::EvalArenaWorlds).
//
// Slabs store support indices, not distances: indices are q-independent
// (one arena serves every query trajectory) and k-independent (k only
// changes the reduction). uint32 indices also halve the footprint of a
// double-distance layout.
#pragma once

#include <cstdint>
#include <vector>

#include "model/db_snapshot.h"
#include "query/query.h"
#include "util/aligned.h"
#include "util/status.h"

namespace ust {

class ThreadPool;

class WorldArena {
 public:
  /// One realized object: its sampling window within T and its slab.
  struct Entry {
    ObjectId id = 0;
    Tic ws = 0, we = 0;    // sampling window = alive span ∩ T
    uint32_t wlen = 0;     // we - ws + 1
    size_t slab_off = 0;   // into slab(): [world][rel], world-major
  };

  /// Sample `num_worlds` worlds of every object of `objects` alive within
  /// `T` (others are skipped — a spec referencing one falls back to live
  /// sampling, as does one referencing an object whose posterior cannot be
  /// built). With a pool, objects are sampled in parallel; the slabs are
  /// bit-identical at any thread count because each object owns an
  /// id-keyed stream and a disjoint slab.
  static Result<WorldArena> Build(const DbSnapshot& db,
                                  const std::vector<ObjectId>& objects,
                                  const TimeInterval& T, uint64_t seed,
                                  size_t num_worlds,
                                  ThreadPool* pool = nullptr);

  /// True when this arena can serve a query over (T, seed) wanting
  /// `num_worlds` worlds: identity on (T, seed), prefix on worlds (world w
  /// consumes exactly the w-th parent draw of each stream, so the first W'
  /// arena worlds are the W'-world sample).
  bool Matches(const TimeInterval& T, uint64_t seed,
               size_t num_worlds) const {
    return T.start == interval_.start && T.end == interval_.end &&
           seed == seed_ && num_worlds <= num_worlds_;
  }

  /// Entry of `id`, or nullptr when the arena does not realize it.
  const Entry* Find(ObjectId id) const;

  const uint32_t* slab(const Entry& e) const {
    return slab_.data() + e.slab_off;
  }

  const TimeInterval& interval() const { return interval_; }
  uint64_t seed() const { return seed_; }
  size_t num_worlds() const { return num_worlds_; }
  size_t num_objects() const { return entries_.size(); }

  /// Resident slab bytes (the observability counter's currency).
  size_t bytes() const { return slab_.size() * sizeof(uint32_t); }

 private:
  TimeInterval interval_{0, 0};
  uint64_t seed_ = 0;
  size_t num_worlds_ = 0;
  std::vector<Entry> entries_;  // sorted by id (Find binary-searches)
  // Per-object slabs start on 32-byte boundaries (offsets rounded to 8
  // uint32s) so vectorized consumers never straddle slab ends.
  AlignedVector<uint32_t> slab_;
};

}  // namespace ust
