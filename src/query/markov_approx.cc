#include "query/markov_approx.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/thread_pool.h"

namespace ust {

namespace {

// Pseudo-state marking tics where a competitor does not exist: it never
// undercuts anybody (the domination predicate is vacuously true there).
constexpr StateId kDead = kInvalidState;

// Augment a competitor's posterior to the window [ts, te]: outside its alive
// span it occupies the single pseudo-state; it enters its real chain through
// its marginal at the first alive tic and leaves into the pseudo-state.
ModelStrip AugmentToWindow(const PosteriorModel& model, Tic ts, Tic te) {
  ModelStrip strip;
  strip.start = ts;
  const size_t len = static_cast<size_t>(te - ts) + 1;
  strip.slices.resize(len);
  for (size_t rel = 0; rel < len; ++rel) {
    const Tic t = ts + static_cast<Tic>(rel);
    PosteriorModel::Slice& slice = strip.slices[rel];
    const bool alive_now = model.AliveAt(t);
    const bool alive_next =
        rel + 1 < len && model.AliveAt(t + 1);
    if (alive_now) {
      slice = model.SliceAt(t);
      slice.row_offsets.clear();
      slice.targets.clear();
      slice.tprobs.clear();
    } else {
      slice.support = {kDead};
      slice.marginal = {1.0};
    }
    if (rel + 1 == len) continue;
    // Transition rows into the next (possibly pseudo) slice.
    slice.row_offsets.push_back(0);
    if (alive_now && alive_next) {
      const PosteriorModel::Slice& real = model.SliceAt(t);
      slice.row_offsets = real.row_offsets;
      slice.targets = real.targets;
      slice.tprobs = real.tprobs;
    } else if (alive_now && !alive_next) {
      for (size_t i = 0; i < slice.support.size(); ++i) {
        slice.targets.push_back(0);  // everyone dies into kDead
        slice.tprobs.push_back(1.0);
        slice.row_offsets.push_back(
            static_cast<uint32_t>(slice.targets.size()));
      }
    } else if (!alive_now && alive_next) {
      // Entry: pseudo-state fans out into the competitor's first marginal.
      const PosteriorModel::Slice& entry = model.SliceAt(t + 1);
      for (uint32_t j = 0; j < entry.support.size(); ++j) {
        if (entry.marginal[j] > 0.0) {
          slice.targets.push_back(j);
          slice.tprobs.push_back(entry.marginal[j]);
        }
      }
      slice.row_offsets.push_back(
          static_cast<uint32_t>(slice.targets.size()));
    } else {
      slice.targets.push_back(0);  // stay dead
      slice.tprobs.push_back(1.0);
      slice.row_offsets.push_back(1);
    }
  }
  return strip;
}

}  // namespace

Result<ModelStrip> StripFromPosterior(const PosteriorModel& model, Tic ts,
                                      Tic te) {
  if (!model.CoversWindow(ts, te)) {
    return Status::OutOfRange("strip window outside alive span");
  }
  ModelStrip strip;
  strip.start = ts;
  strip.slices.reserve(static_cast<size_t>(te - ts) + 1);
  for (Tic t = ts; t <= te; ++t) {
    strip.slices.push_back(model.SliceAt(t));
  }
  // The final slice carries no transitions within the window.
  strip.slices.back().row_offsets.clear();
  strip.slices.back().targets.clear();
  strip.slices.back().tprobs.clear();
  return strip;
}

Result<std::pair<double, ModelStrip>> ConditionOnDomination(
    const StateSpace& space, const ModelStrip& o_strip,
    const ModelStrip& other_strip, const QueryTrajectory& q,
    DominationWorkspace* workspace) {
  if (o_strip.start != other_strip.start ||
      o_strip.slices.size() != other_strip.slices.size()) {
    return Status::InvalidArgument("strips must share the window");
  }
  const size_t L = o_strip.slices.size();
  if (L == 0) return Status::InvalidArgument("empty strips");

  // Buffers come from the caller's workspace when given (resized, then
  // fully overwritten below — stale contents never survive into the math).
  DominationWorkspace local;
  DominationWorkspace& ws = workspace != nullptr ? *workspace : local;

  // Domination predicate at tic index rel: o at state i (of o's support),
  // other at state j (of the augmented support). Ties favor o (<=).
  auto satisfied = [&](size_t rel, StateId so, StateId sa) {
    if (sa == kDead) return true;
    const Point2& qt = q.At(o_strip.start + static_cast<Tic>(rel));
    return SquaredDistance(space.coord(so), qt) <=
           SquaredDistance(space.coord(sa), qt);
  };

  // ---- Forward pass: alpha[rel](i, j), unnormalized filtered joints. ----
  std::vector<std::vector<double>>& alpha = ws.alpha;
  alpha.resize(L);
  for (size_t rel = 0; rel < L; ++rel) {
    alpha[rel].assign(o_strip.slices[rel].support.size() *
                          other_strip.slices[rel].support.size(),
                      0.0);
  }
  {
    const auto& so = o_strip.slices[0];
    const auto& sa = other_strip.slices[0];
    for (size_t i = 0; i < so.support.size(); ++i) {
      for (size_t j = 0; j < sa.support.size(); ++j) {
        if (!satisfied(0, so.support[i], sa.support[j])) continue;
        alpha[0][i * sa.support.size() + j] = so.marginal[i] * sa.marginal[j];
      }
    }
  }
  for (size_t rel = 0; rel + 1 < L; ++rel) {
    const auto& so = o_strip.slices[rel];
    const auto& sa = other_strip.slices[rel];
    const auto& no = o_strip.slices[rel + 1];
    const auto& na = other_strip.slices[rel + 1];
    const size_t wa = sa.support.size();
    const size_t nwa = na.support.size();
    for (size_t i = 0; i < so.support.size(); ++i) {
      for (size_t j = 0; j < wa; ++j) {
        const double mass = alpha[rel][i * wa + j];
        if (mass <= 0.0) continue;
        for (uint32_t eo = so.row_offsets[i]; eo < so.row_offsets[i + 1];
             ++eo) {
          const uint32_t ni = so.targets[eo];
          const double po = so.tprobs[eo];
          for (uint32_t ea = sa.row_offsets[j]; ea < sa.row_offsets[j + 1];
               ++ea) {
            const uint32_t nj = sa.targets[ea];
            const double pa = sa.tprobs[ea];
            if (!satisfied(rel + 1, no.support[ni], na.support[nj])) continue;
            alpha[rel + 1][ni * nwa + nj] += mass * po * pa;
          }
        }
      }
    }
  }
  double prob = 0.0;
  for (double v : alpha[L - 1]) prob += v;
  if (prob <= 0.0) {
    return std::make_pair(0.0, ModelStrip{});  // domination impossible
  }

  // ---- Backward pass: beta[rel](i, j) = survival probability. ----
  std::vector<std::vector<double>>& beta = ws.beta;
  beta.resize(L);
  beta[L - 1].assign(alpha[L - 1].size(), 1.0);
  for (size_t rel = L - 1; rel-- > 0;) {
    const auto& so = o_strip.slices[rel];
    const auto& sa = other_strip.slices[rel];
    const auto& no = o_strip.slices[rel + 1];
    const auto& na = other_strip.slices[rel + 1];
    const size_t wa = sa.support.size();
    const size_t nwa = na.support.size();
    beta[rel].assign(so.support.size() * wa, 0.0);
    for (size_t i = 0; i < so.support.size(); ++i) {
      for (size_t j = 0; j < wa; ++j) {
        double sum = 0.0;
        for (uint32_t eo = so.row_offsets[i]; eo < so.row_offsets[i + 1];
             ++eo) {
          const uint32_t ni = so.targets[eo];
          const double po = so.tprobs[eo];
          for (uint32_t ea = sa.row_offsets[j]; ea < sa.row_offsets[j + 1];
               ++ea) {
            const uint32_t nj = sa.targets[ea];
            const double pa = sa.tprobs[ea];
            if (!satisfied(rel + 1, no.support[ni], na.support[nj])) continue;
            sum += po * pa * beta[rel + 1][ni * nwa + nj];
          }
        }
        beta[rel][i * wa + j] = sum;
      }
    }
  }

  // ---- Reduce: marginals + Markov-reimposed transitions for o alone. ----
  // gamma(i, j) ∝ alpha * beta is the conditioned joint at each tic.
  ModelStrip adapted;
  adapted.start = o_strip.start;
  adapted.slices.resize(L);
  // Per tic: conditioned marginal of o (over the old support).
  std::vector<std::vector<double>>& marginal = ws.marginal;
  marginal.resize(L);
  for (size_t rel = 0; rel < L; ++rel) {
    const auto& so = o_strip.slices[rel];
    const size_t wa = other_strip.slices[rel].support.size();
    marginal[rel].assign(so.support.size(), 0.0);
    double z = 0.0;
    for (size_t i = 0; i < so.support.size(); ++i) {
      for (size_t j = 0; j < wa; ++j) {
        double g = alpha[rel][i * wa + j] * beta[rel][i * wa + j];
        marginal[rel][i] += g;
        z += g;
      }
    }
    UST_CHECK(z > 0.0);
    for (double& m : marginal[rel]) m /= z;
  }
  // Keep only states with positive conditioned marginal.
  std::vector<std::vector<uint32_t>>& remap = ws.remap;
  remap.resize(L);
  for (size_t rel = 0; rel < L; ++rel) {
    const auto& so = o_strip.slices[rel];
    auto& slice = adapted.slices[rel];
    remap[rel].assign(so.support.size(), static_cast<uint32_t>(-1));
    for (size_t i = 0; i < so.support.size(); ++i) {
      if (marginal[rel][i] <= 1e-15) continue;
      remap[rel][i] = static_cast<uint32_t>(slice.support.size());
      slice.support.push_back(so.support[i]);
      slice.marginal.push_back(marginal[rel][i]);
    }
    // Renormalize after dropping numerically extinct states.
    double z = 0.0;
    for (double m : slice.marginal) z += m;
    for (double& m : slice.marginal) m /= z;
  }
  // Transitions (the Lemma-3 reduction):
  //   M'_{k,i'}(t) = sum_l P(other=l | o=k, dom)
  //                  sum_j Fo_{k,i'} Fa_{l,j} [pred] beta_{t+1}(i',j) / beta_t(k,l)
  for (size_t rel = 0; rel + 1 < L; ++rel) {
    const auto& so = o_strip.slices[rel];
    const auto& sa = other_strip.slices[rel];
    const auto& no = o_strip.slices[rel + 1];
    const auto& na = other_strip.slices[rel + 1];
    const size_t wa = sa.support.size();
    const size_t nwa = na.support.size();
    auto& slice = adapted.slices[rel];
    slice.row_offsets.assign(1, 0);
    std::vector<double>& row = ws.row;
    row.assign(no.support.size(), 0.0);
    for (size_t k = 0; k < so.support.size(); ++k) {
      if (remap[rel][k] == static_cast<uint32_t>(-1)) continue;
      std::fill(row.begin(), row.end(), 0.0);
      // Conditional weight of the competitor position given o's position.
      double z_k = 0.0;
      for (size_t l = 0; l < wa; ++l) {
        z_k += alpha[rel][k * wa + l] * beta[rel][k * wa + l];
      }
      UST_CHECK(z_k > 0.0);
      for (size_t l = 0; l < wa; ++l) {
        const double g = alpha[rel][k * wa + l] * beta[rel][k * wa + l];
        if (g <= 0.0) continue;
        const double weight = g / z_k / beta[rel][k * wa + l];
        for (uint32_t eo = so.row_offsets[k]; eo < so.row_offsets[k + 1];
             ++eo) {
          const uint32_t ni = so.targets[eo];
          const double po = so.tprobs[eo];
          double inner = 0.0;
          for (uint32_t ea = sa.row_offsets[l]; ea < sa.row_offsets[l + 1];
               ++ea) {
            const uint32_t nj = sa.targets[ea];
            const double pa = sa.tprobs[ea];
            if (!satisfied(rel + 1, no.support[ni], na.support[nj])) continue;
            inner += pa * beta[rel + 1][ni * nwa + nj];
          }
          row[ni] += weight * po * inner;
        }
      }
      // Emit the row over surviving next-slice states, normalized.
      double row_sum = 0.0;
      for (size_t ni = 0; ni < row.size(); ++ni) {
        if (remap[rel + 1][ni] != static_cast<uint32_t>(-1)) {
          row_sum += row[ni];
        }
      }
      UST_CHECK(row_sum > 0.0);
      for (size_t ni = 0; ni < row.size(); ++ni) {
        if (row[ni] <= 0.0) continue;
        const uint32_t target = remap[rel + 1][ni];
        if (target == static_cast<uint32_t>(-1)) continue;
        slice.targets.push_back(target);
        slice.tprobs.push_back(row[ni] / row_sum);
      }
      slice.row_offsets.push_back(
          static_cast<uint32_t>(slice.targets.size()));
    }
  }
  return std::make_pair(prob, std::move(adapted));
}

Result<double> ApproximateForallNnMarkov(
    const DbSnapshot& db, ObjectId target,
    const std::vector<ObjectId>& competitors, const QueryTrajectory& q,
    const TimeInterval& T) {
  if (!T.valid()) return Status::InvalidArgument("empty query interval");
  const UncertainObject& obj = db.object(target);
  if (!obj.AliveThroughout(T.start, T.end)) {
    return 0.0;  // cannot be the NN at tics where it does not exist
  }
  auto posterior = obj.Posterior();
  if (!posterior.ok()) return posterior.status();
  auto strip = StripFromPosterior(*posterior.value(), T.start, T.end);
  if (!strip.ok()) return strip.status();
  ModelStrip current = strip.MoveValue();
  double result = 1.0;
  for (ObjectId other_id : competitors) {
    if (other_id == target) continue;
    const UncertainObject& other = db.object(other_id);
    if (other.last_tic() < T.start || other.first_tic() > T.end) {
      continue;  // never alive inside T: vacuous factor
    }
    auto other_posterior = other.Posterior();
    if (!other_posterior.ok()) return other_posterior.status();
    ModelStrip augmented =
        AugmentToWindow(*other_posterior.value(), T.start, T.end);
    auto conditioned =
        ConditionOnDomination(db.space(), current, augmented, q);
    if (!conditioned.ok()) return conditioned.status();
    result *= conditioned.value().first;
    if (result <= 0.0) return 0.0;
    current = std::move(conditioned.value().second);
  }
  return result;
}

Result<std::vector<double>> ApproximateForallNnMarkovBatch(
    const DbSnapshot& db, const std::vector<ObjectId>& targets,
    const std::vector<ObjectId>& participants, const QueryTrajectory& q,
    const TimeInterval& T, ThreadPool* pool) {
  if (!T.valid()) return Status::InvalidArgument("empty query interval");

  // Serial prologue. Posterior() lazily adapts shared per-object caches —
  // exactly one thread may cold-warm an object — so every resolution
  // happens here, before any sharding. The augmented competitor strips are
  // target-independent, so each is built once and shared read-only by all
  // chains (the former per-target path rebuilt them per target).
  struct Competitor {
    ObjectId id;
    bool vacuous;  // never alive inside T
    ModelStrip strip;
  };
  std::vector<Competitor> competitors;
  competitors.reserve(participants.size());
  for (ObjectId id : participants) {
    const UncertainObject& other = db.object(id);
    Competitor competitor;
    competitor.id = id;
    competitor.vacuous =
        other.last_tic() < T.start || other.first_tic() > T.end;
    if (!competitor.vacuous) {
      auto posterior = other.Posterior();
      if (!posterior.ok()) return posterior.status();
      competitor.strip = AugmentToWindow(*posterior.value(), T.start, T.end);
    }
    competitors.push_back(std::move(competitor));
  }
  // Targets outside the participant set still need their posteriors warm
  // before the chains fan out (alive targets inside it were resolved above).
  for (ObjectId t : targets) {
    const UncertainObject& obj = db.object(t);
    if (!obj.AliveThroughout(T.start, T.end)) continue;  // scores 0 below
    auto posterior = obj.Posterior();
    if (!posterior.ok()) return posterior.status();
  }

  // One chain per target: reads only the shared strips and its worker's
  // workspace, writes only its own slot — bit-identical at any schedule.
  std::vector<double> out(targets.size(), 0.0);
  std::vector<Status> errors(targets.size());
  const int workers = pool != nullptr ? pool->num_threads() : 1;
  std::vector<DominationWorkspace> workspaces(
      static_cast<size_t>(workers));
  auto run_target = [&](size_t i, int worker) {
    const ObjectId target = targets[i];
    const UncertainObject& obj = db.object(target);
    if (!obj.AliveThroughout(T.start, T.end)) {
      out[i] = 0.0;  // cannot be the NN at tics where it does not exist
      return;
    }
    auto posterior = obj.Posterior();
    if (!posterior.ok()) {
      errors[i] = posterior.status();
      return;
    }
    auto strip = StripFromPosterior(*posterior.value(), T.start, T.end);
    if (!strip.ok()) {
      errors[i] = strip.status();
      return;
    }
    DominationWorkspace& workspace = workspaces[static_cast<size_t>(worker)];
    ModelStrip current = strip.MoveValue();
    double result = 1.0;
    for (const Competitor& competitor : competitors) {
      if (competitor.id == target || competitor.vacuous) continue;
      auto conditioned = ConditionOnDomination(db.space(), current,
                                               competitor.strip, q,
                                               &workspace);
      if (!conditioned.ok()) {
        errors[i] = conditioned.status();
        return;
      }
      result *= conditioned.value().first;
      if (result <= 0.0) {
        out[i] = 0.0;
        return;
      }
      current = std::move(conditioned.value().second);
    }
    out[i] = result;
  };
  if (pool != nullptr && pool->num_threads() > 1 && targets.size() > 1) {
    pool->ParallelFor(targets.size(), run_target);
  } else {
    for (size_t i = 0; i < targets.size(); ++i) run_target(i, 0);
  }
  // Deterministic error surfacing: the first failing target in target
  // order, independent of which worker hit it first.
  for (size_t i = 0; i < targets.size(); ++i) {
    if (!errors[i].ok()) return errors[i];
  }
  return out;
}

}  // namespace ust
