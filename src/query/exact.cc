#include "query/exact.h"

#include <algorithm>
#include <unordered_map>

#include "util/check.h"

namespace ust {

Result<std::vector<WeightedTrajectory>> EnumerateWindowTrajectories(
    const PosteriorModel& model, Tic ts, Tic te, size_t max_worlds) {
  if (!model.CoversWindow(ts, te)) {
    return Status::OutOfRange("window outside alive span");
  }
  std::vector<WeightedTrajectory> result;
  // Iterative DFS over (tic, local support index) with the running prefix.
  struct Frame {
    Tic t;
    uint32_t local;
    double prob;
  };
  // Each work item carries its depth; `states` holds the current DFS path
  // (ancestors of the frame being expanded are never overwritten before all
  // of its descendants have been emitted, by LIFO order).
  std::vector<std::pair<Frame, size_t>> work;
  const PosteriorModel::Slice& first = model.SliceAt(ts);
  for (size_t i = first.support.size(); i-- > 0;) {
    if (first.marginal[i] > 0.0) {
      work.push_back({{ts, static_cast<uint32_t>(i), first.marginal[i]}, 0});
    }
  }
  std::vector<StateId> states(static_cast<size_t>(te - ts) + 1);
  while (!work.empty()) {
    auto [frame, depth] = work.back();
    work.pop_back();
    states[depth] = model.SliceAt(frame.t).support[frame.local];
    if (frame.t == te) {
      if (result.size() >= max_worlds) {
        return Status::ResourceLimit("trajectory enumeration exceeded cap");
      }
      Trajectory traj;
      traj.start = ts;
      traj.states.assign(states.begin(), states.begin() + depth + 1);
      result.push_back({std::move(traj), frame.prob});
      continue;
    }
    const PosteriorModel::Slice& slice = model.SliceAt(frame.t);
    for (uint32_t e = slice.row_offsets[frame.local];
         e < slice.row_offsets[frame.local + 1]; ++e) {
      const uint32_t next_local = slice.targets[e];
      const double p = slice.tprobs[e];
      if (p <= 0.0) continue;
      work.push_back(
          {{frame.t + 1, next_local, frame.prob * p}, depth + 1});
    }
  }
  return result;
}

Result<std::vector<PnnEstimate>> ExactPnnByEnumeration(
    const DbSnapshot& db, const std::vector<ObjectId>& participants,
    const QueryTrajectory& q, const TimeInterval& T, int k,
    size_t max_worlds) {
  if (!T.valid()) return Status::InvalidArgument("empty query interval");
  // Per-object window trajectory sets (empty marker = not alive during T).
  std::vector<std::vector<WeightedTrajectory>> worlds(participants.size());
  double total_combinations = 1.0;
  for (size_t i = 0; i < participants.size(); ++i) {
    const UncertainObject& obj = db.object(participants[i]);
    auto posterior = obj.Posterior();
    if (!posterior.ok()) return posterior.status();
    const PosteriorModel& model = *posterior.value();
    Tic ws = std::max(T.start, model.first_tic());
    Tic we = std::min(T.end, model.last_tic());
    if (ws > we) continue;  // not alive in T: zero possible positions
    auto enumerated = EnumerateWindowTrajectories(model, ws, we, max_worlds);
    if (!enumerated.ok()) return enumerated.status();
    worlds[i] = enumerated.MoveValue();
    total_combinations *= static_cast<double>(std::max<size_t>(
        worlds[i].size(), 1));
    if (total_combinations > static_cast<double>(max_worlds)) {
      return Status::ResourceLimit("possible-world cross product too large");
    }
  }

  const size_t n = participants.size();
  const size_t len = T.length();
  std::vector<double> forall(n, 0.0), exists(n, 0.0);
  std::vector<size_t> choice(n, 0);
  std::vector<WorldTrajectory> world(n);
  std::vector<uint8_t> is_nn(n * len);
  while (true) {
    double world_prob = 1.0;
    for (size_t i = 0; i < n; ++i) {
      if (worlds[i].empty()) {
        world[i].alive = false;
      } else {
        world[i].alive = true;
        world[i].traj = worlds[i][choice[i]].traj;
        world_prob *= worlds[i][choice[i]].prob;
      }
    }
    MarkNearestNeighbors(db.space(), world, q, T, k, is_nn.data());
    for (size_t i = 0; i < n; ++i) {
      bool all = true, any = false;
      for (size_t r = 0; r < len; ++r) {
        if (is_nn[i * len + r]) {
          any = true;
        } else {
          all = false;
        }
      }
      if (all) forall[i] += world_prob;
      if (any) exists[i] += world_prob;
    }
    // Advance the mixed-radix counter over per-object choices.
    size_t pos = 0;
    while (pos < n) {
      if (worlds[pos].empty() || ++choice[pos] >= worlds[pos].size()) {
        choice[pos] = 0;
        ++pos;
      } else {
        break;
      }
    }
    if (pos == n) break;
  }
  std::vector<PnnEstimate> estimates;
  estimates.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    estimates.push_back({participants[i], forall[i], exists[i]});
  }
  return estimates;
}

Result<double> DominationProbability(const StateSpace& space,
                                     const PosteriorModel& a,
                                     const PosteriorModel& b,
                                     const QueryTrajectory& q,
                                     const TimeInterval& T, bool strict) {
  if (!T.valid()) return Status::InvalidArgument("empty query interval");
  if (!a.CoversWindow(T.start, T.end) || !b.CoversWindow(T.start, T.end)) {
    return Status::OutOfRange("objects must be alive throughout T");
  }
  auto satisfies = [&](StateId sa, StateId sb, Tic t) {
    double da = SquaredDistance(space.coord(sa), q.At(t));
    double db2 = SquaredDistance(space.coord(sb), q.At(t));
    return strict ? da < db2 : da <= db2;
  };
  auto pack = [](uint32_t ia, uint32_t ib) {
    return (static_cast<uint64_t>(ia) << 32) | ib;
  };
  // Joint distribution over (local index in a's slice, local index in b's
  // slice), filtered by the domination predicate at each tic.
  std::unordered_map<uint64_t, double> joint;
  {
    const auto& sa = a.SliceAt(T.start);
    const auto& sb = b.SliceAt(T.start);
    for (uint32_t i = 0; i < sa.support.size(); ++i) {
      for (uint32_t j = 0; j < sb.support.size(); ++j) {
        if (!satisfies(sa.support[i], sb.support[j], T.start)) continue;
        double p = sa.marginal[i] * sb.marginal[j];
        if (p > 0.0) joint[pack(i, j)] = p;
      }
    }
  }
  for (Tic t = T.start; t < T.end; ++t) {
    const auto& sa = a.SliceAt(t);
    const auto& sb = b.SliceAt(t);
    const auto& na = a.SliceAt(t + 1);
    const auto& nb = b.SliceAt(t + 1);
    std::unordered_map<uint64_t, double> next;
    next.reserve(joint.size() * 2);
    for (const auto& [key, p] : joint) {
      const uint32_t ia = static_cast<uint32_t>(key >> 32);
      const uint32_t ib = static_cast<uint32_t>(key & 0xffffffffu);
      for (uint32_t ea = sa.row_offsets[ia]; ea < sa.row_offsets[ia + 1];
           ++ea) {
        for (uint32_t eb = sb.row_offsets[ib]; eb < sb.row_offsets[ib + 1];
             ++eb) {
          const uint32_t ja = sa.targets[ea];
          const double pa = sa.tprobs[ea];
          const uint32_t jb = sb.targets[eb];
          const double pb = sb.tprobs[eb];
          if (!satisfies(na.support[ja], nb.support[jb], t + 1)) continue;
          next[pack(ja, jb)] += p * pa * pb;
        }
      }
    }
    joint = std::move(next);
    if (joint.empty()) return 0.0;
  }
  double total = 0.0;
  for (const auto& [key, p] : joint) total += p;
  return total;
}

}  // namespace ust
