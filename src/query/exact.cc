#include "query/exact.h"

#include <algorithm>
#include <unordered_map>

#include "util/check.h"
#include "util/thread_pool.h"

namespace ust {

Result<std::vector<WeightedTrajectory>> EnumerateWindowTrajectories(
    const PosteriorModel& model, Tic ts, Tic te, size_t max_worlds) {
  if (!model.CoversWindow(ts, te)) {
    return Status::OutOfRange("window outside alive span");
  }
  std::vector<WeightedTrajectory> result;
  // Iterative DFS over (tic, local support index) with the running prefix.
  struct Frame {
    Tic t;
    uint32_t local;
    double prob;
  };
  // Each work item carries its depth; `states` holds the current DFS path
  // (ancestors of the frame being expanded are never overwritten before all
  // of its descendants have been emitted, by LIFO order).
  std::vector<std::pair<Frame, size_t>> work;
  const PosteriorModel::Slice& first = model.SliceAt(ts);
  for (size_t i = first.support.size(); i-- > 0;) {
    if (first.marginal[i] > 0.0) {
      work.push_back({{ts, static_cast<uint32_t>(i), first.marginal[i]}, 0});
    }
  }
  std::vector<StateId> states(static_cast<size_t>(te - ts) + 1);
  while (!work.empty()) {
    auto [frame, depth] = work.back();
    work.pop_back();
    states[depth] = model.SliceAt(frame.t).support[frame.local];
    if (frame.t == te) {
      if (result.size() >= max_worlds) {
        return Status::ResourceLimit("trajectory enumeration exceeded cap");
      }
      Trajectory traj;
      traj.start = ts;
      traj.states.assign(states.begin(), states.begin() + depth + 1);
      result.push_back({std::move(traj), frame.prob});
      continue;
    }
    const PosteriorModel::Slice& slice = model.SliceAt(frame.t);
    for (uint32_t e = slice.row_offsets[frame.local];
         e < slice.row_offsets[frame.local + 1]; ++e) {
      const uint32_t next_local = slice.targets[e];
      const double p = slice.tprobs[e];
      if (p <= 0.0) continue;
      work.push_back(
          {{frame.t + 1, next_local, frame.prob * p}, depth + 1});
    }
  }
  return result;
}

Result<std::vector<PnnEstimate>> ExactPnnByEnumeration(
    const DbSnapshot& db, const std::vector<ObjectId>& participants,
    const QueryTrajectory& q, const TimeInterval& T, int k,
    size_t max_worlds, ThreadPool* pool) {
  if (!T.valid()) return Status::InvalidArgument("empty query interval");
  // Per-object window trajectory sets (empty marker = not alive during T).
  // This phase stays serial: Posterior() lazily adapts shared per-object
  // caches, which exactly one thread may cold-warm at a time.
  std::vector<std::vector<WeightedTrajectory>> worlds(participants.size());
  double total_combinations = 1.0;
  for (size_t i = 0; i < participants.size(); ++i) {
    const UncertainObject& obj = db.object(participants[i]);
    auto posterior = obj.Posterior();
    if (!posterior.ok()) return posterior.status();
    const PosteriorModel& model = *posterior.value();
    Tic ws = std::max(T.start, model.first_tic());
    Tic we = std::min(T.end, model.last_tic());
    if (ws > we) continue;  // not alive in T: zero possible positions
    auto enumerated = EnumerateWindowTrajectories(model, ws, we, max_worlds);
    if (!enumerated.ok()) return enumerated.status();
    worlds[i] = enumerated.MoveValue();
    total_combinations *= static_cast<double>(std::max<size_t>(
        worlds[i].size(), 1));
    if (total_combinations > static_cast<double>(max_worlds)) {
      return Status::ResourceLimit("possible-world cross product too large");
    }
  }

  const size_t n = participants.size();
  const size_t len = T.length();
  // The cross product linearizes to world indices [0, total): object i's
  // choice is digit i of a mixed-radix number (radix = its world count,
  // dead objects contribute radix 1), least-significant first — the same
  // order the former serial counter visited. Each fixed-size block of that
  // index space accumulates its own partial sums; blocks then reduce in
  // block order, so the float addition tree depends only on the (fixed)
  // block size — never on the thread count.
  std::vector<size_t> radix(n), stride(n);
  size_t total = 1;
  for (size_t i = 0; i < n; ++i) {
    radix[i] = std::max<size_t>(worlds[i].size(), 1);
    stride[i] = total;
    total *= radix[i];
  }
  const size_t num_blocks = (total + kEnumWorldBlock - 1) / kEnumWorldBlock;

  // One enumeration workspace per worker: the decoded choice vector, the
  // assembled world, and the NN indicator row.
  struct Workspace {
    std::vector<size_t> choice;
    std::vector<WorldTrajectory> world;
    std::vector<uint8_t> is_nn;
  };
  const int workers = pool != nullptr ? pool->num_threads() : 1;
  std::vector<Workspace> workspaces(static_cast<size_t>(workers));
  for (Workspace& ws : workspaces) {
    ws.choice.assign(n, 0);
    ws.world.resize(n);
    ws.is_nn.resize(n * len);
  }
  // Per-block partial sums, committed into disjoint slots.
  std::vector<std::vector<double>> partial_forall(num_blocks);
  std::vector<std::vector<double>> partial_exists(num_blocks);

  auto run_block = [&](size_t block, int worker) {
    Workspace& ws = workspaces[static_cast<size_t>(worker)];
    const size_t w0 = block * kEnumWorldBlock;
    const size_t w1 = std::min(w0 + kEnumWorldBlock, total);
    for (size_t i = 0; i < n; ++i) {
      ws.choice[i] = (w0 / stride[i]) % radix[i];
    }
    std::vector<double>& forall = partial_forall[block];
    std::vector<double>& exists = partial_exists[block];
    forall.assign(n, 0.0);
    exists.assign(n, 0.0);
    for (size_t w = w0; w < w1; ++w) {
      double world_prob = 1.0;
      for (size_t i = 0; i < n; ++i) {
        if (worlds[i].empty()) {
          ws.world[i].alive = false;
        } else {
          ws.world[i].alive = true;
          ws.world[i].traj = worlds[i][ws.choice[i]].traj;
          world_prob *= worlds[i][ws.choice[i]].prob;
        }
      }
      MarkNearestNeighbors(db.space(), ws.world, q, T, k, ws.is_nn.data());
      for (size_t i = 0; i < n; ++i) {
        bool all = true, any = false;
        for (size_t r = 0; r < len; ++r) {
          if (ws.is_nn[i * len + r]) {
            any = true;
          } else {
            all = false;
          }
        }
        if (all) forall[i] += world_prob;
        if (any) exists[i] += world_prob;
      }
      // Advance the mixed-radix counter over per-object choices.
      size_t pos = 0;
      while (pos < n) {
        if (worlds[pos].empty() || ++ws.choice[pos] >= worlds[pos].size()) {
          ws.choice[pos] = 0;
          ++pos;
        } else {
          break;
        }
      }
    }
  };
  if (pool != nullptr && pool->num_threads() > 1 && num_blocks > 1) {
    pool->ParallelFor(num_blocks, run_block);
  } else {
    for (size_t block = 0; block < num_blocks; ++block) run_block(block, 0);
  }

  std::vector<PnnEstimate> estimates;
  estimates.reserve(n);
  for (size_t i = 0; i < n; ++i) estimates.push_back({participants[i], 0, 0});
  for (size_t block = 0; block < num_blocks; ++block) {  // deterministic order
    for (size_t i = 0; i < n; ++i) {
      estimates[i].forall_prob += partial_forall[block][i];
      estimates[i].exists_prob += partial_exists[block][i];
    }
  }
  return estimates;
}

Result<double> DominationProbability(const StateSpace& space,
                                     const PosteriorModel& a,
                                     const PosteriorModel& b,
                                     const QueryTrajectory& q,
                                     const TimeInterval& T, bool strict) {
  if (!T.valid()) return Status::InvalidArgument("empty query interval");
  if (!a.CoversWindow(T.start, T.end) || !b.CoversWindow(T.start, T.end)) {
    return Status::OutOfRange("objects must be alive throughout T");
  }
  auto satisfies = [&](StateId sa, StateId sb, Tic t) {
    double da = SquaredDistance(space.coord(sa), q.At(t));
    double db2 = SquaredDistance(space.coord(sb), q.At(t));
    return strict ? da < db2 : da <= db2;
  };
  auto pack = [](uint32_t ia, uint32_t ib) {
    return (static_cast<uint64_t>(ia) << 32) | ib;
  };
  // Joint distribution over (local index in a's slice, local index in b's
  // slice), filtered by the domination predicate at each tic.
  std::unordered_map<uint64_t, double> joint;
  {
    const auto& sa = a.SliceAt(T.start);
    const auto& sb = b.SliceAt(T.start);
    for (uint32_t i = 0; i < sa.support.size(); ++i) {
      for (uint32_t j = 0; j < sb.support.size(); ++j) {
        if (!satisfies(sa.support[i], sb.support[j], T.start)) continue;
        double p = sa.marginal[i] * sb.marginal[j];
        if (p > 0.0) joint[pack(i, j)] = p;
      }
    }
  }
  for (Tic t = T.start; t < T.end; ++t) {
    const auto& sa = a.SliceAt(t);
    const auto& sb = b.SliceAt(t);
    const auto& na = a.SliceAt(t + 1);
    const auto& nb = b.SliceAt(t + 1);
    std::unordered_map<uint64_t, double> next;
    next.reserve(joint.size() * 2);
    for (const auto& [key, p] : joint) {
      const uint32_t ia = static_cast<uint32_t>(key >> 32);
      const uint32_t ib = static_cast<uint32_t>(key & 0xffffffffu);
      for (uint32_t ea = sa.row_offsets[ia]; ea < sa.row_offsets[ia + 1];
           ++ea) {
        for (uint32_t eb = sb.row_offsets[ib]; eb < sb.row_offsets[ib + 1];
             ++eb) {
          const uint32_t ja = sa.targets[ea];
          const double pa = sa.tprobs[ea];
          const uint32_t jb = sb.targets[eb];
          const double pb = sb.tprobs[eb];
          if (!satisfies(na.support[ja], nb.support[jb], t + 1)) continue;
          next[pack(ja, jb)] += p * pa * pb;
        }
      }
    }
    joint = std::move(next);
    if (joint.empty()) return 0.0;
  }
  double total = 0.0;
  for (const auto& [key, p] : joint) total += p;
  return total;
}

}  // namespace ust
