#include "query/pcnn.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/check.h"

namespace ust {

namespace {

// Checks whether every (k-1)-subset of `candidate` is in the previous level.
bool AllSubsetsQualify(const std::vector<Tic>& candidate,
                       const std::set<std::vector<Tic>>& prev_level) {
  std::vector<Tic> subset;
  subset.reserve(candidate.size() - 1);
  for (size_t skip = 0; skip < candidate.size(); ++skip) {
    subset.clear();
    for (size_t i = 0; i < candidate.size(); ++i) {
      if (i != skip) subset.push_back(candidate[i]);
    }
    if (prev_level.find(subset) == prev_level.end()) return false;
  }
  return true;
}

}  // namespace

PcnnResult PcnnForObject(const NnTable& table, size_t obj_index, double tau) {
  PcnnResult result;
  // Level 1: single timestamps (line 1 of Algorithm 1). Direct tic iteration
  // and the single-tic popcount probe keep this loop allocation-free.
  std::set<std::vector<Tic>> level;
  const TimeInterval& T = table.interval();
  for (Tic t = T.start; t <= T.end; ++t) {
    ++result.validations;
    ++result.candidates_generated;
    double p = table.ProbAt(obj_index, t);
    if (p >= tau) {
      level.insert({t});
      result.entries.push_back({table.objects()[obj_index], {t}, p});
    }
  }
  // Levels k >= 2 (lines 2-5): join sets sharing a (k-2)-prefix, prune by
  // the Apriori property, then validate with the shared sampled worlds.
  while (level.size() >= 2) {
    std::set<std::vector<Tic>> next_level;
    std::vector<std::vector<Tic>> sets(level.begin(), level.end());
    for (size_t a = 0; a < sets.size(); ++a) {
      for (size_t b = a + 1; b < sets.size(); ++b) {
        // Sets are sorted lexicographically; join requires equal prefixes
        // except the last element (classical Apriori candidate generation).
        if (!std::equal(sets[a].begin(), sets[a].end() - 1, sets[b].begin(),
                        sets[b].end() - 1)) {
          continue;
        }
        std::vector<Tic> candidate = sets[a];
        candidate.push_back(sets[b].back());
        UST_DCHECK(std::is_sorted(candidate.begin(), candidate.end()));
        if (!AllSubsetsQualify(candidate, level)) continue;
        ++result.candidates_generated;
        ++result.validations;
        double p = table.ForallProb(obj_index, candidate);
        if (p >= tau) {
          result.entries.push_back(
              {table.objects()[obj_index], candidate, p});
          next_level.insert(std::move(candidate));
        }
      }
    }
    level = std::move(next_level);
  }
  return result;
}

Result<PcnnResult> PcnnOnTable(const NnTable& table,
                               const std::vector<ObjectId>& candidates,
                               double tau) {
  PcnnResult result;
  for (ObjectId o : candidates) {
    size_t idx = table.IndexOf(o);
    if (idx == NnTable::npos) {
      return Status::InvalidArgument("candidate not among participants");
    }
    PcnnResult per_object = PcnnForObject(table, idx, tau);
    result.validations += per_object.validations;
    result.candidates_generated += per_object.candidates_generated;
    result.entries.insert(result.entries.end(), per_object.entries.begin(),
                          per_object.entries.end());
  }
  return result;
}

Result<PcnnResult> PcnnQuery(const TrajectoryDatabase& db,
                             const std::vector<ObjectId>& participants,
                             const std::vector<ObjectId>& candidates,
                             const QueryTrajectory& q, const TimeInterval& T,
                             double tau, const MonteCarloOptions& options,
                             ThreadPool* pool) {
  auto table_result = ComputeNnTable(db, participants, q, T, options, pool);
  if (!table_result.ok()) return table_result.status();
  return PcnnOnTable(table_result.value(), candidates, tau);
}

std::vector<PcnnEntry> FilterMaximal(const std::vector<PcnnEntry>& entries) {
  std::vector<PcnnEntry> maximal;
  for (size_t i = 0; i < entries.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < entries.size() && !dominated; ++j) {
      if (i == j || entries[i].object != entries[j].object) continue;
      if (entries[j].tics.size() <= entries[i].tics.size()) continue;
      dominated = std::includes(entries[j].tics.begin(), entries[j].tics.end(),
                                entries[i].tics.begin(), entries[i].tics.end());
    }
    if (!dominated) maximal.push_back(entries[i]);
  }
  return maximal;
}

}  // namespace ust
