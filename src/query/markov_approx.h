// The Lemma-3 pipeline of Section 4.2: computing
//   P∀NN(o, q, D, T) = P(∧_a o ≺_q^T o_a)
// by the chain rule — one exact pairwise domination (Lemma 2) at a time,
// re-adapting o's model to each domination event before conditioning on the
// next. The paper proves that the reduced single-object model LOSES the
// Markov property, so treating it as a Markov chain (which keeps the
// computation polynomial) yields an *approximation*, not the true
// probability. This module implements that approximation:
//
//  * with a single competitor the result is exact (it is just Lemma 2);
//  * with several competitors it is generally biased — the bias the paper
//    uses to motivate the sampling approach (see
//    bench/ablation_markov_assumption and markov_approx_test).
#pragma once

#include <vector>

#include "model/posterior_model.h"
#include "model/trajectory_database.h"
#include "query/query.h"
#include "util/status.h"

namespace ust {

class ThreadPool;

/// \brief A windowed single-object model: one slice per tic of [start,
/// start + slices.size() - 1], with transitions targeting the next slice
/// (same layout as PosteriorModel slices).
struct ModelStrip {
  Tic start = 0;
  std::vector<PosteriorModel::Slice> slices;

  Tic end() const { return start + static_cast<Tic>(slices.size()) - 1; }
};

/// Restrict a posterior model to the window [ts, te] ⊆ alive span.
Result<ModelStrip> StripFromPosterior(const PosteriorModel& model, Tic ts,
                                      Tic te);

/// \brief Reusable buffers of one conditioning chain: the forward/backward
/// joints and reduction scratch of ConditionOnDomination. A worker running
/// many chain-rule factors threads one workspace through all of them (every
/// buffer is fully overwritten per call, so reuse never changes a bit);
/// workspaces must not be shared across concurrent chains.
struct DominationWorkspace {
  std::vector<std::vector<double>> alpha;
  std::vector<std::vector<double>> beta;
  std::vector<std::vector<double>> marginal;
  std::vector<std::vector<uint32_t>> remap;
  std::vector<double> row;
};

/// \brief One conditioning step: the probability that `o` dominates `other`
/// throughout the strip window (d(q, o(t)) <= d(q, other(t)) for all t),
/// plus o's model conditioned on that event *with the Markov property
/// forcibly re-imposed* (the Lemma-3 reduction).
/// Both strips must share the same window. `workspace` (optional) provides
/// the scratch buffers; results are identical with or without one.
Result<std::pair<double, ModelStrip>> ConditionOnDomination(
    const StateSpace& space, const ModelStrip& o_strip,
    const ModelStrip& other_strip, const QueryTrajectory& q,
    DominationWorkspace* workspace = nullptr);

/// \brief The full approximation: multiply the per-competitor domination
/// probabilities, re-adapting o's model after each factor.
/// `target` must be alive throughout T; competitors not alive throughout T
/// are conditioned only over their alive sub-window (they cannot undercut o
/// while they do not exist).
Result<double> ApproximateForallNnMarkov(
    const DbSnapshot& db, ObjectId target,
    const std::vector<ObjectId>& competitors, const QueryTrajectory& q,
    const TimeInterval& T);

/// \brief The refinement-job variant (DESIGN.md section 4.2): one
/// approximation per target of `targets`, each conditioned against every
/// other object of `participants`, in participant order.
///
/// The serial prologue resolves every posterior once (lazy adaptation
/// mutates shared per-object caches — the single-warmer rule) and augments
/// each participant to the window once: the augmented competitor strip
/// depends only on the competitor, so all per-target chains share it
/// read-only. The chains themselves — one per target, writing only its own
/// output slot, with one DominationWorkspace per worker — then shard over
/// `pool` (nullptr = serial). Results are bit-identical at any thread
/// count, and identical to per-target ApproximateForallNnMarkov calls.
Result<std::vector<double>> ApproximateForallNnMarkovBatch(
    const DbSnapshot& db, const std::vector<ObjectId>& targets,
    const std::vector<ObjectId>& participants, const QueryTrajectory& q,
    const TimeInterval& T, ThreadPool* pool = nullptr);

}  // namespace ust
