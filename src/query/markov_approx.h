// The Lemma-3 pipeline of Section 4.2: computing
//   P∀NN(o, q, D, T) = P(∧_a o ≺_q^T o_a)
// by the chain rule — one exact pairwise domination (Lemma 2) at a time,
// re-adapting o's model to each domination event before conditioning on the
// next. The paper proves that the reduced single-object model LOSES the
// Markov property, so treating it as a Markov chain (which keeps the
// computation polynomial) yields an *approximation*, not the true
// probability. This module implements that approximation:
//
//  * with a single competitor the result is exact (it is just Lemma 2);
//  * with several competitors it is generally biased — the bias the paper
//    uses to motivate the sampling approach (see
//    bench/ablation_markov_assumption and markov_approx_test).
#pragma once

#include <vector>

#include "model/posterior_model.h"
#include "model/trajectory_database.h"
#include "query/query.h"
#include "util/status.h"

namespace ust {

/// \brief A windowed single-object model: one slice per tic of [start,
/// start + slices.size() - 1], with transitions targeting the next slice
/// (same layout as PosteriorModel slices).
struct ModelStrip {
  Tic start = 0;
  std::vector<PosteriorModel::Slice> slices;

  Tic end() const { return start + static_cast<Tic>(slices.size()) - 1; }
};

/// Restrict a posterior model to the window [ts, te] ⊆ alive span.
Result<ModelStrip> StripFromPosterior(const PosteriorModel& model, Tic ts,
                                      Tic te);

/// \brief One conditioning step: the probability that `o` dominates `other`
/// throughout the strip window (d(q, o(t)) <= d(q, other(t)) for all t),
/// plus o's model conditioned on that event *with the Markov property
/// forcibly re-imposed* (the Lemma-3 reduction).
/// Both strips must share the same window.
Result<std::pair<double, ModelStrip>> ConditionOnDomination(
    const StateSpace& space, const ModelStrip& o_strip,
    const ModelStrip& other_strip, const QueryTrajectory& q);

/// \brief The full approximation: multiply the per-competitor domination
/// probabilities, re-adapting o's model after each factor.
/// `target` must be alive throughout T; competitors not alive throughout T
/// are conditioned only over their alive sub-window (they cannot undercut o
/// while they do not exist).
Result<double> ApproximateForallNnMarkov(
    const DbSnapshot& db, ObjectId target,
    const std::vector<ObjectId>& competitors, const QueryTrajectory& q,
    const TimeInterval& T);

}  // namespace ust
