// The refinement-step executors of the plan-based query pipeline: the three
// probability backends of the codebase — exact possible-world enumeration
// (query/exact.h), the Lemma-3 Markov chain-rule approximation
// (query/markov_approx.h) and Monte-Carlo world sampling
// (query/monte_carlo.h) — behind one interface, plus the cost-based planner
// that picks among them per query from the pruning output.
//
// The split mirrors classical filter-then-refine engines: pruning (the
// filter) yields candidate/participant sets; the planner looks at their
// sizes, the interval length and the requested precision and routes the
// refinement to the cheapest backend that can honor the query semantics.
// An explicit override (per query or session-wide) bypasses the planner.
#pragma once

#include <vector>

#include "model/db_snapshot.h"
#include "query/monte_carlo.h"
#include "query/query.h"
#include "util/status.h"

namespace ust {

class ThreadPool;

/// \brief The query semantics an executor is asked to refine.
enum class QueryKind {
  kForall,      ///< P∀(k)NNQ — Definition 2
  kExists,      ///< P∃(k)NNQ — Definition 1
  kContinuous,  ///< PC(k)NNQ — Definition 3
};

/// \brief Refinement backend selector.
enum class ExecutorKind {
  kAuto = 0,      ///< let the planner decide
  kExact,         ///< possible-world enumeration; exact, tiny inputs only
  kMarkovApprox,  ///< chain-rule approximation; P∀NN only, biased (Lemma 3)
  kMonteCarlo,    ///< sampled worlds; any semantics, Hoeffding-bounded error
};

/// Stable lowercase name ("exact", "markov_approx", "monte_carlo", "auto").
const char* ExecutorKindName(ExecutorKind kind);

/// \brief One refinement job: estimate P∀NN and P∃NN of every target,
/// accounting for all participants (targets ⊆ participants).
struct PnnTask {
  const DbSnapshot* db = nullptr;
  const std::vector<ObjectId>* participants = nullptr;
  const std::vector<ObjectId>* targets = nullptr;
  const QueryTrajectory* q = nullptr;
  TimeInterval T{0, 0};
  MonteCarloOptions mc;               ///< precision knobs: worlds, k, seed
  /// Adaptive stopping target (query/adaptive.h); kFixedWorlds keeps the
  /// legacy always-num_worlds contract. Only the Monte-Carlo backend reads
  /// it — exact enumeration has no sampling error to bound.
  PrecisionTarget precision;
  /// Query semantics + threshold the adaptive stopping rule decides against
  /// (kThreshold mode); mirrors the QuerySpec that spawned the task.
  QueryKind kind = QueryKind::kForall;
  double tau = 0.0;
  size_t enum_max_worlds = 2000000;   ///< exact enumeration cross-product cap
};

/// \brief Reusable per-worker resources an executor may draw on. All fields
/// are optional; executors fall back to private locals.
struct ExecContext {
  ThreadPool* pool = nullptr;                  ///< world-chunk sharding
  WorldSampler::Scratch* sampler_scratch = nullptr;
  std::vector<uint8_t>* row_buffer = nullptr;  ///< byte staging for packing
  /// Pre-sampled world arena of the session's (interval, seed) group; the
  /// Monte-Carlo backend evaluates against it when it covers the task
  /// (bit-identical either way) and reports the decision in `arena_used`.
  const WorldArena* arena = nullptr;
  bool* arena_used = nullptr;
  /// Out-params of the adaptive Monte-Carlo path: worlds actually drawn
  /// (num_worlds on the fixed path) and whether the stopping rule fired
  /// before the cap. Left untouched by the non-sampling backends.
  size_t* worlds_used = nullptr;
  bool* early_stopped = nullptr;
};

/// \brief A refinement backend. Implementations are stateless (all mutable
/// state lives in ExecContext), so the singletons from GetExecutor can be
/// shared across sessions and threads.
class Executor {
 public:
  virtual ~Executor() = default;
  virtual ExecutorKind kind() const = 0;

  /// Whether this backend can evaluate `query` for `task` at all (e.g. the
  /// Markov approximation handles only P∀NN with k == 1 over targets alive
  /// throughout T). Cost is the planner's business, not Supports().
  virtual bool Supports(QueryKind query, const PnnTask& task) const = 0;

  /// Estimates for every target, in target order. Backends that do not
  /// compute one of the two probabilities set it to NaN (the Markov
  /// approximation computes only forall_prob).
  virtual Result<std::vector<PnnEstimate>> Estimate(
      const PnnTask& task, const ExecContext& ctx) const = 0;
};

/// The process-wide singleton for `kind` (must not be kAuto).
const Executor& GetExecutor(ExecutorKind kind);

/// \brief Planner thresholds. The defaults route only genuinely tiny
/// refinements to enumeration; everything else samples.
struct PlannerOptions {
  /// Session-wide override: when not kAuto every query without its own
  /// backend override runs on this executor.
  ExecutorKind force = ExecutorKind::kAuto;
  size_t exact_max_candidates = 3;   ///< |C(q)| at most this for enumeration
  size_t exact_max_participants = 3; ///< |participants| bound for enumeration
  size_t exact_max_interval = 6;     ///< |T| bound for enumeration
  /// Sampling below this many worlds never loses to enumeration in the
  /// planner's cost model; with a higher precision request, exact gets more
  /// attractive relative to MC (its cost does not depend on num_worlds).
  size_t exact_min_precision = 0;
  /// Cost-model input: how many workers the executing tier can realistically
  /// throw at one query (session threads × whatever the serving tier adds).
  /// Monte-Carlo shards fixed 512-world chunks, so its usable parallelism
  /// saturates at num_worlds/512; enumeration's block count is invisible to
  /// the planner (set sizes say nothing about per-object world counts), so
  /// parallel speedup is credited to sampling only — raising the precision
  /// bar enumeration must clear to win. Deliberately an explicit knob, NOT
  /// the runtime thread count: plans must stay a pure function of
  /// (spec, options) so that 1-vs-N-thread runs keep producing identical
  /// bits (the DESIGN.md section 4 determinism contract).
  size_t assumed_parallelism = 1;
};

/// \brief Pick the backend for one refinement. Pure function of the pruning
/// output sizes and options — the session applies runtime fallback (exact
/// hitting its enumeration cap falls back to Monte-Carlo) on top.
ExecutorKind PlanExecutor(QueryKind query, size_t num_candidates,
                          size_t num_participants, size_t interval_length,
                          size_t num_worlds, int k,
                          const PlannerOptions& options);

}  // namespace ust
