// The plan-based batched query pipeline (Section 3.3 industrialized):
//
//   QuerySession  — owns immutable shared state (a database's posteriors
//                   with warmed alias samplers, the UST-tree, cached
//                   per-interval index slabs) plus reusable per-worker
//                   scratch, so back-to-back queries stop paying allocation
//                   and warm-up costs;
//   planner       — picks the refinement backend per query from the pruning
//                   output (query/executor.h);
//   RunAll        — evaluates a batch, sharding across queries and across
//                   world chunks within a query over a thread pool.
//
// Determinism contract: a query's result is a pure function of the database
// contents and its QuerySpec (seed included). Run vs RunAll, 1 vs N threads,
// and batch order never change a single bit of the output — worker scratch
// carries no cross-query state, world shards re-derive their RNG positions
// from world indices, and per-query outputs occupy disjoint slots.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "index/ust_delta.h"
#include "index/ust_tree.h"
#include "model/trajectory_database.h"
#include "query/executor.h"
#include "query/monte_carlo.h"
#include "query/pcnn.h"
#include "query/query.h"
#include "query/world_arena.h"
#include "util/metrics.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace ust {

/// \brief Cross-session tally of world-arena activity (Counter instruments:
/// sessions are driven concurrently by serving-tier lanes). The serving tier
/// owns one, injects it via SessionOptions, and registers the instruments
/// with its MetricRegistry so they self-enumerate as arena_builds /
/// arena_spec_reuses / arena_bytes.
struct ArenaCounters {
  Counter builds;       ///< arenas materialized
  Counter spec_reuses;  ///< specs evaluated against an arena
  Counter bytes;        ///< slab bytes across built arenas
};

/// \brief Plain snapshot of one session's own arena activity.
struct ArenaStats {
  uint64_t builds = 0;
  uint64_t spec_reuses = 0;
  uint64_t bytes = 0;
};

/// \brief One qualifying object with its estimated probability.
struct PnnResultEntry {
  ObjectId object;
  double prob;
};

/// \brief Result of a P∃NNQ / P∀NNQ evaluation plus work statistics.
struct PnnQueryResult {
  std::vector<PnnResultEntry> results;  ///< objects with prob >= tau
  size_t num_candidates = 0;            ///< |C(q)| after pruning
  size_t num_influencers = 0;           ///< |I(q)| after pruning
  double prune_millis = 0.0;
  double sampling_millis = 0.0;
};

/// \brief PCNNQ result plus work statistics.
struct PcnnQueryResult {
  PcnnResult pcnn;
  size_t num_candidates = 0;
  size_t num_influencers = 0;
  double prune_millis = 0.0;
  double sampling_millis = 0.0;
};

/// \brief One query of a batch: semantics, reference trajectory, interval,
/// threshold, precision knobs, and an optional backend override.
struct QuerySpec {
  QueryKind kind = QueryKind::kForall;
  QueryTrajectory q = QueryTrajectory::FromPoint({0, 0});
  TimeInterval T{0, 0};
  double tau = 0.0;
  MonteCarloOptions mc;  ///< num_worlds (precision cap), k, seed
  /// Adaptive-precision target (query/monte_carlo.h): kFixedWorlds (the
  /// default) always samples mc.num_worlds; kEpsilon / kThreshold stop at
  /// the first 512-world chunk boundary where the target is met —
  /// deterministically, at any thread count or lane schedule. Continuous
  /// (PCNN) queries ignore it: Algorithm 1 validates timestamp sets against
  /// the full shared world table.
  PrecisionTarget precision;
  /// Explicit executor override; kAuto defers to the planner.
  ExecutorKind backend = ExecutorKind::kAuto;
  /// Latency budget relative to serving-tier admission, milliseconds; 0 = no
  /// deadline. The session itself ignores it — only the serving tier sheds
  /// expired specs, and only at request/morsel boundaries, so a spec that
  /// does execute is bit-identical at any deadline (DESIGN.md section 11).
  double deadline_ms = 0.0;
  /// Load-shedding class: under overload the serving tier rejects requests
  /// at or below its priority floor first. Does not affect execution order
  /// or results of admitted requests.
  int priority = 0;
};

/// \brief Per-query outcome. `status` isolates failures: one malformed query
/// does not abort the batch.
struct QueryOutcome {
  Status status;
  QueryKind kind = QueryKind::kForall;
  /// Backend that actually refined the query (after planning + fallback).
  ExecutorKind executor = ExecutorKind::kMonteCarlo;
  /// Whether the worlds were evaluated against the session's shared arena
  /// instead of sampled live. Purely observational: outcomes are
  /// bit-identical either way (the arena determinism contract).
  bool used_arena = false;
  /// Worlds the Monte-Carlo backend actually drew (mc.num_worlds on the
  /// fixed path, the chunk-aligned stop count on the adaptive path; 0 for
  /// the non-sampling backends and pruned-empty queries).
  size_t worlds_used = 0;
  /// The adaptive stopping rule fired before the num_worlds cap.
  bool early_stopped = false;
  PnnQueryResult pnn;    ///< kForall / kExists
  PcnnQueryResult pcnn;  ///< kContinuous
};

/// \brief Session-level knobs.
struct SessionOptions {
  /// Worker count for RunAll batches, per-query world sharding, and
  /// Prepare's parallel posterior adaptation. 1 = fully serial.
  int threads = 1;
  PlannerOptions planner;
  /// Shared world arena policy: build the arena of a (interval, seed) group
  /// once this many Monte-Carlo specs have hit it. 0 disables arenas
  /// entirely; 1 builds on first use (benches, tests); the default 2 means
  /// a group pays the build only once it has proven hot — a stream of
  /// unique (interval, seed) keys never regresses.
  int arena_min_uses = 2;
  /// Optional external tally (the serving tier's SessionCache injects one
  /// shared across its sessions); may be nullptr. The session also keeps
  /// its own ArenaStats either way.
  ArenaCounters* arena_counters = nullptr;
  /// Patch a stale index with an UstDelta over the change log instead of
  /// dropping it (bit-identical outcomes either way). false pins the legacy
  /// drop-to-fallback behavior.
  bool delta_index = true;
  /// Optional tally of stale indexes this session had to drop (no delta
  /// possible or delta build failed); may be nullptr.
  Counter* stale_index_drops = nullptr;
};

/// \brief Long-lived query façade over one database epoch + UST-tree.
///
/// The session pins a DbSnapshot at construction (a live TrajectoryDatabase
/// converts to its current epoch): every query it ever runs reads exactly
/// that epoch, bit-identically, regardless of concurrent writes to the live
/// database. An `index` built over an *older* epoch is patched with an
/// UstDelta covering the objects written since (probed alongside the base
/// tree, bit-identical to a rebuild); when that is impossible — delta layer
/// disabled, the change log was trimmed past the base, or the delta build
/// failed — the index is dropped and counted (pruning degenerates to
/// alive-time filtering, which is always correct).
///
/// Not safe for concurrent external use (one session = one request lane);
/// internally it parallelizes over its own pool.
class QuerySession {
 public:
  /// \brief Reusable per-lane scratch for morsel execution (`RunMorsel`):
  /// world-sampler buffers + the byte staging rows. A serving-tier lane owns
  /// one and reuses it across every morsel, group and session it executes —
  /// scratch is session-portable by construction (the sampler cursor rebinds
  /// per query).
  struct ExecScratch {
    WorldSampler::Scratch sampler;
    std::vector<uint8_t> rows;
  };

  explicit QuerySession(DbSnapshot db, const UstTree* index = nullptr,
                        SessionOptions options = {});

  /// Build the shared immutable artifacts once: adapts every posterior (one
  /// PropagateWorkspace per worker, objects sharded over the pool) and warms
  /// every alias sampler. Idempotent. Only RunAll batches that shard across
  /// queries (threads > 1 and more than one spec) call it implicitly — Run
  /// and serial batches stay lazy, resolving just their own participants —
  /// so call Prepare() up front to warm the whole database explicitly.
  Status Prepare();

  /// Evaluate one query, reusing session scratch.
  QueryOutcome Run(const QuerySpec& spec);

  /// Evaluate a batch: queries are sharded across the pool; a lone query
  /// instead shards its world chunks. outcome[i] corresponds to specs[i] and
  /// is bit-identical to Run(specs[i]) at any thread count.
  std::vector<QueryOutcome> RunAll(const std::vector<QuerySpec>& specs);

  /// Pre-build the index slab for `T` (no-op without an index), so a cached
  /// session starts warm for its keyed interval — the serving tier calls
  /// this once at insert instead of paying the R*-tree walk on the first
  /// request. Results are unaffected either way.
  void WarmInterval(const TimeInterval& T);

  /// Morsel execution for the serving tier (DESIGN.md section 5.6):
  /// evaluate specs[i] into outcomes[i] for every i in [begin, end), using
  /// only caller-owned resources — `pool` (may be nullptr: serial) shards
  /// each query's world chunks, `scratch` holds the sampling buffers.
  ///
  /// Unlike Run/RunAll this path is safe to call *concurrently* from
  /// several lanes on one shared session: it reads exclusively immutable
  /// session state (the snapshot, the index, already-cached slabs) and
  /// never touches the session's own pool, scratch lanes or slab cache.
  /// The caller must hold a shared lease contract: the session is
  /// Prepare()d (every posterior warm or deterministically failing, so no
  /// lane ever cold-writes shared caches) and intervals were warmed via
  /// WarmInterval (a missing slab is still correct — pruning traverses the
  /// R*-tree directly — just slower). Outcomes are bit-identical to
  /// Run(specs[i]) at any pool size, so any morsel partition of a batch
  /// reassembles the exact serial RunAll bytes.
  void RunMorsel(const std::vector<QuerySpec>& specs, size_t begin,
                 size_t end, QueryOutcome* outcomes, ThreadPool* pool,
                 ExecScratch* scratch) const;

  const SessionOptions& options() const { return options_; }
  const DbSnapshot& db() const { return db_; }
  ThreadPool& pool() { return pool_; }

  /// Snapshot of this session's own arena activity (thread-safe).
  ArenaStats arena_stats() const;

  /// Objects the attached delta carries (0 = probing the base alone).
  size_t delta_depth() const { return delta_.depth(); }

  /// A stale index was passed at construction and had to be dropped.
  bool dropped_stale_index() const { return dropped_stale_index_; }

 private:
  /// Pruning (filter step), via the index slab when one is cached for T;
  /// without an index, degenerates to alive-time filtering.
  PruneResult Prune(const QueryTrajectory& q, const TimeInterval& T, int k,
                    bool forall, const UstTree::TimeSlab* slab) const;

  /// Cached slab lookup; inserts on miss. Not thread-safe — called only
  /// from the serial sections (Run, RunAll's prebuild pass). Pointers stay
  /// valid until the next batch entry (TrimSlabCache).
  const UstTree::TimeSlab* SlabFor(const TimeInterval& T);

  /// Read-only slab lookup (never inserts): the morsel path's accessor,
  /// safe concurrently with other readers as long as nobody mutates the
  /// cache — the shared-lease contract of RunMorsel.
  const UstTree::TimeSlab* FindSlab(const TimeInterval& T) const;

  /// Evict the slab cache when it outgrew its bound; batch-entry only.
  void TrimSlabCache();

  /// Expected world count of an *adaptive* spec with cap `cap`: the frozen
  /// difficulty fraction scaled onto the cap, rounded up to a chunk and
  /// clamped to [min(cap, kWorldChunk), cap]. The planner's cost input
  /// (DESIGN.md section 8) — fixed-mode specs never go through this.
  size_t ExpectedWorlds(size_t cap) const;

  /// Feed one adaptive Monte-Carlo outcome into the difficulty EWMA. Called
  /// ONLY from the exclusive entry point Run() — never from RunAll workers
  /// or the const morsel path — so the fraction sequence is deterministic
  /// at any thread count, and the serving tier (which only ever calls
  /// RunAll/RunMorsel) plans with the frozen initial fraction regardless of
  /// its lane/steal schedule.
  void NoteAdaptiveOutcome(const QuerySpec& spec, const QueryOutcome& out);

  /// The per-query execution core: pure reads of session state plus writes
  /// to the caller's scratch and outcome — const so the shared-lease morsel
  /// path can prove it touches nothing a concurrent lane could race on.
  QueryOutcome RunOne(const QuerySpec& spec, const UstTree::TimeSlab* slab,
                      ThreadPool* world_pool, ExecScratch* scratch) const;
  void RunPnn(const QuerySpec& spec, const UstTree::TimeSlab* slab,
              ThreadPool* world_pool, ExecScratch* scratch,
              QueryOutcome* out) const;
  void RunContinuous(const QuerySpec& spec, const UstTree::TimeSlab* slab,
                     ThreadPool* world_pool, ExecScratch* scratch,
                     QueryOutcome* out) const;

  /// One (interval, seed) arena group and its build state. `building` is
  /// the non-blocking in-flight marker: while a build runs outside the
  /// lock, concurrent callers get nullptr and sample live — still
  /// bit-identical, just not yet amortized.
  struct ArenaSlot {
    TimeInterval T{0, 0};
    uint64_t seed = 0;
    size_t max_worlds = 0;  ///< largest num_worlds requested so far
    uint32_t uses = 0;      ///< Monte-Carlo specs seen for this key
    bool building = false;
    std::shared_ptr<const WorldArena> arena;
  };

  /// The shared arena serving (T, seed, num_worlds), building it (on the
  /// calling thread, `pool`-sharded) once the group reached arena_min_uses.
  /// Returns nullptr while cold, disabled, or mid-build by another lane.
  /// Thread-safe (the morsel path calls it concurrently); the returned
  /// shared_ptr keeps the arena alive past any cache trim or session churn.
  std::shared_ptr<const WorldArena> ArenaFor(const TimeInterval& T,
                                             uint64_t seed, size_t num_worlds,
                                             ThreadPool* pool) const;

  /// Tally one spec evaluated against an arena (own stats + injected).
  void NoteArenaUse() const;

  DbSnapshot db_;
  const UstTree* index_;
  /// Patch for a base index older than db_'s epoch; empty when the index is
  /// current (or absent). Probed by Prune alongside the base tree.
  UstDelta delta_;
  bool dropped_stale_index_ = false;
  SessionOptions options_;
  ThreadPool pool_;
  std::vector<ExecScratch> scratch_;  // one per worker
  /// Slab cache; unique_ptr keeps handed-out slab pointers stable as the
  /// cache grows.
  std::vector<std::unique_ptr<UstTree::TimeSlab>> slabs_;
  bool prepared_ = false;
  Status prepare_status_;
  /// Arena groups; mutable because arenas are a cache — RunMorsel is const
  /// and concurrent, so access is serialized by arena_mu_ (builds happen
  /// outside the lock; see ArenaFor).
  mutable std::mutex arena_mu_;
  mutable std::vector<ArenaSlot> arena_slots_;
  mutable ArenaCounters own_arena_counters_;
  /// Observed difficulty of this session's adaptive queries: EWMA of
  /// worlds_used / num_worlds, starting at 1.0 (assume worst case until
  /// evidence). Written only by NoteAdaptiveOutcome (exclusive Run path).
  double difficulty_ewma_ = 1.0;
  /// The fraction the planner reads (ExpectedWorlds). Atomic because the
  /// const morsel path loads it concurrently; stores happen only on the
  /// exclusive Run path, so readers always see a value frozen before their
  /// batch — plans stay a pure function of (spec, frozen fraction).
  std::atomic<double> planner_fraction_{1.0};
};

}  // namespace ust
