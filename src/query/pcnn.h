// Probabilistic continuous NN query (Definition 3) via the Apriori-style
// Algorithm 1: timestamp sets grow level-wise and the anti-monotonicity of
// P∀NN (T_i ⊆ T_j ⇒ P∀NN(T_i) ≥ P∀NN(T_j)) prunes the candidate lattice.
// Every validation reuses the same sampled worlds (one NnTable per query).
#pragma once

#include <cstdint>
#include <vector>

#include "model/trajectory_database.h"
#include "query/monte_carlo.h"
#include "query/query.h"
#include "util/status.h"

namespace ust {

/// \brief One qualifying (object, timestamp set) pair.
struct PcnnEntry {
  ObjectId object;
  std::vector<Tic> tics;  ///< sorted; not necessarily contiguous
  double prob;            ///< estimated P∀NN(o, q, D, tics)
};

/// \brief Result of a PCNN query plus work counters for the benchmarks.
struct PcnnResult {
  std::vector<PcnnEntry> entries;   ///< all qualifying timestamp sets (∪_k L_k)
  uint64_t validations = 0;         ///< probability evaluations performed
  uint64_t candidates_generated = 0;  ///< timestamp sets generated (X_k sizes)
};

/// \brief Algorithm 1 for a single object: all T_i ⊆ T with
/// P∀NN(o, q, D, T_i) >= tau, probabilities estimated from `table`.
/// `obj_index` addresses the object inside the table.
PcnnResult PcnnForObject(const NnTable& table, size_t obj_index, double tau);

/// \brief Algorithm 1 over every candidate against a prebuilt world table
/// (candidates must be among the table's objects). PcnnQuery and the
/// session's continuous executor share this aggregation.
Result<PcnnResult> PcnnOnTable(const NnTable& table,
                               const std::vector<ObjectId>& candidates,
                               double tau);

/// \brief Full PCNNQ(q, D, T, tau) over the given result candidates,
/// sampling worlds over `participants` (candidates ⊆ participants). With a
/// `pool`, world sampling is sharded across its workers (result unchanged).
Result<PcnnResult> PcnnQuery(const TrajectoryDatabase& db,
                             const std::vector<ObjectId>& participants,
                             const std::vector<ObjectId>& candidates,
                             const QueryTrajectory& q, const TimeInterval& T,
                             double tau, const MonteCarloOptions& options,
                             ThreadPool* pool = nullptr);

/// \brief Definition-3 post-processing: keep only entries whose timestamp set
/// is not a subset of another qualifying set of the same object.
std::vector<PcnnEntry> FilterMaximal(const std::vector<PcnnEntry>& entries);

}  // namespace ust
