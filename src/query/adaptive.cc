#include "query/adaptive.h"

#include <algorithm>

#include "query/world_arena.h"
#include "util/check.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace ust {

namespace {

// Indices of `targets` within `participants`; InvalidArgument when missing.
Result<std::vector<size_t>> ResolveTargets(
    const std::vector<ObjectId>& participants,
    const std::vector<ObjectId>& targets) {
  std::vector<size_t> indices;
  indices.reserve(targets.size());
  for (ObjectId t : targets) {
    auto it = std::find(participants.begin(), participants.end(), t);
    if (it == participants.end()) {
      return Status::InvalidArgument("target not among participants");
    }
    indices.push_back(static_cast<size_t>(it - participants.begin()));
  }
  return indices;
}

// Updates per-target forall/exists success counts from one world's marks.
void Accumulate(const uint8_t* is_nn, const std::vector<size_t>& target_index,
                size_t interval_length, std::vector<size_t>* forall_hits,
                std::vector<size_t>* exists_hits) {
  for (size_t ti = 0; ti < target_index.size(); ++ti) {
    const uint8_t* row = is_nn + target_index[ti] * interval_length;
    bool all = true, any = false;
    for (size_t r = 0; r < interval_length; ++r) {
      if (row[r]) {
        any = true;
      } else {
        all = false;
      }
    }
    (*forall_hits)[ti] += all ? 1 : 0;
    (*exists_hits)[ti] += any ? 1 : 0;
  }
}

}  // namespace

Result<SequentialPnnResult> EstimatePnnSequential(
    const DbSnapshot& db, const std::vector<ObjectId>& participants,
    const std::vector<ObjectId>& targets, const QueryTrajectory& q,
    const TimeInterval& T, const SequentialOptions& options) {
  if (options.epsilon <= 0.0 || options.delta <= 0.0 || options.delta >= 1.0) {
    return Status::InvalidArgument("epsilon/delta out of range");
  }
  if (options.batch_size == 0 || options.max_worlds == 0) {
    return Status::InvalidArgument("batch_size/max_worlds must be positive");
  }
  auto target_index = ResolveTargets(participants, targets);
  if (!target_index.ok()) return target_index.status();
  auto sampler =
      WorldSampler::Create(db, participants, q, T, options.k, options.seed);
  if (!sampler.ok()) return sampler.status();

  const size_t len = T.length();
  const size_t world_stride = participants.size() * len;
  std::vector<uint8_t> is_nn(options.batch_size * world_stride);
  std::vector<size_t> forall_hits(targets.size(), 0);
  std::vector<size_t> exists_hits(targets.size(), 0);
  size_t worlds = 0;
  while (worlds < options.max_worlds) {
    const size_t batch =
        std::min(options.batch_size, options.max_worlds - worlds);
    sampler.value().SampleWorlds(batch, is_nn.data(), world_stride);
    for (size_t b = 0; b < batch; ++b) {
      Accumulate(is_nn.data() + b * world_stride, target_index.value(), len,
                 &forall_hits, &exists_hits);
    }
    worlds += batch;
    if (HoeffdingEpsilon(worlds, options.delta) <= options.epsilon) break;
  }

  SequentialPnnResult result;
  result.worlds_used = worlds;
  result.epsilon_achieved = HoeffdingEpsilon(worlds, options.delta);
  result.estimates.reserve(targets.size());
  for (size_t ti = 0; ti < targets.size(); ++ti) {
    result.estimates.push_back(
        {targets[ti],
         static_cast<double>(forall_hits[ti]) / static_cast<double>(worlds),
         static_cast<double>(exists_hits[ti]) / static_cast<double>(worlds)});
  }
  return result;
}

Result<ThresholdQueryResult> DecideThresholdSequential(
    const DbSnapshot& db, const std::vector<ObjectId>& participants,
    const std::vector<ObjectId>& targets, const QueryTrajectory& q,
    const TimeInterval& T, double tau, PnnSemantics semantics,
    const SequentialOptions& options) {
  if (tau < 0.0 || tau > 1.0) {
    return Status::InvalidArgument("tau out of [0, 1]");
  }
  if (options.batch_size == 0 || options.max_worlds == 0) {
    return Status::InvalidArgument("batch_size/max_worlds must be positive");
  }
  if (options.delta <= 0.0 || options.delta >= 1.0) {
    return Status::InvalidArgument("delta out of range");
  }
  auto target_index = ResolveTargets(participants, targets);
  if (!target_index.ok()) return target_index.status();
  auto sampler =
      WorldSampler::Create(db, participants, q, T, options.k, options.seed);
  if (!sampler.ok()) return sampler.status();

  // Bonferroni: each per-object interval at confidence 1 - delta/#targets so
  // the joint decision holds at 1 - delta.
  const double per_object_delta =
      options.delta / static_cast<double>(std::max<size_t>(1, targets.size()));
  const size_t len = T.length();
  const size_t world_stride = participants.size() * len;
  std::vector<uint8_t> is_nn(options.batch_size * world_stride);
  std::vector<size_t> forall_hits(targets.size(), 0);
  std::vector<size_t> exists_hits(targets.size(), 0);

  ThresholdQueryResult result;
  result.decisions.resize(targets.size());
  std::vector<char> decided(targets.size(), 0);
  size_t undecided = targets.size();
  size_t worlds = 0;
  while (worlds < options.max_worlds && undecided > 0) {
    const size_t batch =
        std::min(options.batch_size, options.max_worlds - worlds);
    sampler.value().SampleWorlds(batch, is_nn.data(), world_stride);
    for (size_t b = 0; b < batch; ++b) {
      Accumulate(is_nn.data() + b * world_stride, target_index.value(), len,
                 &forall_hits, &exists_hits);
    }
    worlds += batch;
    for (size_t ti = 0; ti < targets.size(); ++ti) {
      if (decided[ti]) continue;
      const size_t hits = semantics == PnnSemantics::kForall
                              ? forall_hits[ti]
                              : exists_hits[ti];
      Interval ci = WilsonInterval(hits, worlds, per_object_delta);
      if (ci.lo >= tau || ci.hi < tau) {
        decided[ti] = 1;
        --undecided;
        result.decisions[ti] = {targets[ti], ci.lo >= tau, /*decided=*/true,
                                static_cast<double>(hits) / worlds, worlds};
      }
    }
  }
  // Undecided targets: fall back to the point estimate, flagged as such.
  for (size_t ti = 0; ti < targets.size(); ++ti) {
    if (decided[ti]) continue;
    const size_t hits = semantics == PnnSemantics::kForall ? forall_hits[ti]
                                                           : exists_hits[ti];
    const double estimate = static_cast<double>(hits) / worlds;
    result.decisions[ti] = {targets[ti], estimate >= tau, /*decided=*/false,
                            estimate, worlds};
  }
  result.worlds_used = worlds;
  return result;
}

Result<AdaptivePnnResult> EstimatePnnAdaptive(
    const DbSnapshot& db, const std::vector<ObjectId>& participants,
    const std::vector<ObjectId>& targets, const QueryTrajectory& q,
    const TimeInterval& T, PnnSemantics semantics, double tau,
    const MonteCarloOptions& mc, const PrecisionTarget& precision,
    ThreadPool* pool, WorldSampler::Scratch* scratch,
    std::vector<uint8_t>* rows, const WorldArena* arena, bool* used_arena) {
  if (precision.mode == PrecisionMode::kFixedWorlds) {
    return Status::InvalidArgument(
        "adaptive estimator requires a non-fixed precision mode");
  }
  if (precision.delta <= 0.0 || precision.delta >= 1.0) {
    return Status::InvalidArgument("delta out of range");
  }
  if (precision.mode == PrecisionMode::kEpsilon && precision.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (precision.mode == PrecisionMode::kThreshold &&
      (tau < 0.0 || tau > 1.0)) {
    return Status::InvalidArgument("tau out of [0, 1]");
  }
  if (mc.num_worlds == 0) {
    return Status::InvalidArgument("num_worlds must be positive");
  }
  auto target_index = ResolveTargets(participants, targets);
  if (!target_index.ok()) return target_index.status();
  auto sampler = WorldSampler::Create(db, participants, q, T, mc.k, mc.seed);
  if (!sampler.ok()) return sampler.status();
  const WorldSampler& ws = sampler.value();

  const size_t cap = mc.num_worlds;
  const size_t len = T.length();
  const size_t stride = participants.size() * len;
  constexpr size_t kChunk = WorldSampler::kWorldChunk;

  // Arena coverage is checked against the *cap*: the prefix property of the
  // id-keyed streams means an arena holding num_worlds >= cap serves any
  // early-stopped prefix bit-identically (world w is always the w-th draw).
  const bool arena_ok = arena != nullptr &&
                        arena->Matches(T, mc.seed, cap) &&
                        ws.CoveredBy(*arena);
  if (used_arena != nullptr) *used_arena = arena_ok;

  const size_t num_targets = targets.size();
  const double per_target_delta =
      precision.delta / static_cast<double>(std::max<size_t>(1, num_targets));

  std::vector<size_t> forall_hits(num_targets, 0);
  std::vector<size_t> exists_hits(num_targets, 0);
  AdaptivePnnResult result;
  result.estimates.resize(num_targets);
  std::vector<char> decided(num_targets, 0);
  size_t undecided = num_targets;

  // The stopping rule at prefix boundary `worlds`. Reads only the prefix hit
  // counts, so the decision is a pure function of (db, spec) — the
  // determinism contract of DESIGN.md section 8. Decisions are sticky: a
  // target decided at one boundary freezes its estimates there and is never
  // re-examined, so later chunks cannot flip an already-published decision.
  auto check_stop = [&](size_t worlds) {
    if (precision.mode == PrecisionMode::kThreshold) {
      for (size_t ti = 0; ti < num_targets; ++ti) {
        if (decided[ti]) continue;
        const size_t hits = semantics == PnnSemantics::kForall
                                ? forall_hits[ti]
                                : exists_hits[ti];
        Interval ci = WilsonInterval(hits, worlds, per_target_delta);
        if (ci.lo >= tau || ci.hi < tau) {
          decided[ti] = 1;
          --undecided;
          const double w = static_cast<double>(worlds);
          // Wilson brackets the point estimate (lo <= p̂ <= hi), so the
          // frozen estimate agrees with the interval decision under any
          // downstream `p >= tau` filter.
          result.estimates[ti] = {
              targets[ti], static_cast<double>(forall_hits[ti]) / w,
              static_cast<double>(exists_hits[ti]) / w};
        }
      }
      return undecided == 0;
    }
    // kEpsilon: the distribution-free Hoeffding bound caps the stop count at
    // the a-priori sizing rounded up to a chunk; the per-target Wilson
    // half-width stops far earlier when probabilities sit near 0 or 1.
    if (HoeffdingEpsilon(worlds, precision.delta) <= precision.epsilon) {
      return true;
    }
    for (size_t ti = 0; ti < num_targets; ++ti) {
      const size_t hits = semantics == PnnSemantics::kForall ? forall_hits[ti]
                                                             : exists_hits[ti];
      Interval ci = WilsonInterval(hits, worlds, per_target_delta);
      if (ci.hi - ci.lo > 2.0 * precision.epsilon) return false;
    }
    return true;
  };

  const size_t num_chunks = (cap + kChunk - 1) / kChunk;
  size_t worlds = 0;
  bool stopped = false;

  WorldSampler::Scratch local_scratch;
  std::vector<uint8_t> local_rows;
  if (scratch == nullptr) scratch = &local_scratch;
  if (rows == nullptr) rows = &local_rows;

  const int workers = pool != nullptr ? pool->num_threads() : 1;
  if (workers > 1 && num_chunks > 1) {
    // Speculative waves: sample up to one chunk per worker concurrently,
    // then accumulate and check boundaries serially *in chunk order*.
    // Chunks past the stop boundary are discarded unaccumulated, so the
    // published estimates and the stop count match the serial path exactly.
    // The first wave is a single chunk — easy queries stop right there and
    // never pay for speculation.
    const size_t wave_cap = static_cast<size_t>(workers);
    std::vector<WorldSampler::Scratch> scratches(wave_cap);
    std::vector<std::vector<uint8_t>> bufs(wave_cap);
    std::vector<std::vector<Rng>> starts(wave_cap);
    std::vector<Rng> cursor;
    if (!arena_ok) cursor = ws.InitialRngs();
    size_t c = 0;
    size_t wave_size = 1;
    while (c < num_chunks && !stopped) {
      const size_t wave_chunks = std::min(wave_size, num_chunks - c);
      if (!arena_ok) {
        // One serial O(W) RNG prefix pass, exactly as the fixed-count
        // sharded path derives its chunk starts.
        for (size_t j = 0; j < wave_chunks; ++j) {
          starts[j] = cursor;
          const size_t w0 = (c + j) * kChunk;
          const size_t n = std::min(kChunk, cap - w0);
          if (c + j + 1 < num_chunks) WorldSampler::AdvanceWorlds(&cursor, n);
        }
      }
      pool->ParallelFor(wave_chunks, [&](size_t j, int) {
        const size_t w0 = (c + j) * kChunk;
        const size_t n = std::min(kChunk, cap - w0);
        bufs[j].resize(n * stride);
        if (arena_ok) {
          ws.EvalArenaWorlds(*arena, w0, n, bufs[j].data(), stride,
                             &scratches[j]);
        } else {
          ws.SampleWorldsFrom(starts[j], n, bufs[j].data(), stride,
                              &scratches[j]);
        }
      });
      for (size_t j = 0; j < wave_chunks && !stopped; ++j) {
        const size_t w0 = (c + j) * kChunk;
        const size_t n = std::min(kChunk, cap - w0);
        for (size_t b = 0; b < n; ++b) {
          Accumulate(bufs[j].data() + b * stride, target_index.value(), len,
                     &forall_hits, &exists_hits);
        }
        worlds = w0 + n;
        stopped = check_stop(worlds);
      }
      c += wave_chunks;
      wave_size = wave_cap;
    }
  } else {
    if (!arena_ok) ws.ResetCursor(scratch);
    rows->resize(std::min(cap, kChunk) * stride);
    for (size_t w0 = 0; w0 < cap && !stopped; w0 += kChunk) {
      const size_t n = std::min(kChunk, cap - w0);
      if (arena_ok) {
        ws.EvalArenaWorlds(*arena, w0, n, rows->data(), stride, scratch);
      } else {
        ws.SampleNext(n, rows->data(), stride, scratch);
      }
      for (size_t b = 0; b < n; ++b) {
        Accumulate(rows->data() + b * stride, target_index.value(), len,
                   &forall_hits, &exists_hits);
      }
      worlds = w0 + n;
      stopped = check_stop(worlds);
    }
  }

  // Estimates not frozen by a threshold decision read the stop boundary:
  // epsilon-mode targets, and threshold targets still straddling tau at the
  // cap (their qualification falls back to the point estimate, flagged via
  // `undecided`).
  const double w = static_cast<double>(worlds);
  for (size_t ti = 0; ti < num_targets; ++ti) {
    if (precision.mode == PrecisionMode::kThreshold && decided[ti]) continue;
    result.estimates[ti] = {targets[ti],
                            static_cast<double>(forall_hits[ti]) / w,
                            static_cast<double>(exists_hits[ti]) / w};
  }
  result.worlds_used = worlds;
  result.early_stopped = stopped && worlds < cap;
  result.undecided =
      precision.mode == PrecisionMode::kThreshold ? undecided : 0;
  return result;
}

}  // namespace ust
