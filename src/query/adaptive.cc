#include "query/adaptive.h"

#include <algorithm>

#include "util/check.h"
#include "util/stats.h"

namespace ust {

namespace {

// Indices of `targets` within `participants`; InvalidArgument when missing.
Result<std::vector<size_t>> ResolveTargets(
    const std::vector<ObjectId>& participants,
    const std::vector<ObjectId>& targets) {
  std::vector<size_t> indices;
  indices.reserve(targets.size());
  for (ObjectId t : targets) {
    auto it = std::find(participants.begin(), participants.end(), t);
    if (it == participants.end()) {
      return Status::InvalidArgument("target not among participants");
    }
    indices.push_back(static_cast<size_t>(it - participants.begin()));
  }
  return indices;
}

// Updates per-target forall/exists success counts from one world's marks.
void Accumulate(const uint8_t* is_nn, const std::vector<size_t>& target_index,
                size_t interval_length, std::vector<size_t>* forall_hits,
                std::vector<size_t>* exists_hits) {
  for (size_t ti = 0; ti < target_index.size(); ++ti) {
    const uint8_t* row = is_nn + target_index[ti] * interval_length;
    bool all = true, any = false;
    for (size_t r = 0; r < interval_length; ++r) {
      if (row[r]) {
        any = true;
      } else {
        all = false;
      }
    }
    (*forall_hits)[ti] += all ? 1 : 0;
    (*exists_hits)[ti] += any ? 1 : 0;
  }
}

}  // namespace

Result<SequentialPnnResult> EstimatePnnSequential(
    const TrajectoryDatabase& db, const std::vector<ObjectId>& participants,
    const std::vector<ObjectId>& targets, const QueryTrajectory& q,
    const TimeInterval& T, const SequentialOptions& options) {
  if (options.epsilon <= 0.0 || options.delta <= 0.0 || options.delta >= 1.0) {
    return Status::InvalidArgument("epsilon/delta out of range");
  }
  if (options.batch_size == 0 || options.max_worlds == 0) {
    return Status::InvalidArgument("batch_size/max_worlds must be positive");
  }
  auto target_index = ResolveTargets(participants, targets);
  if (!target_index.ok()) return target_index.status();
  auto sampler =
      WorldSampler::Create(db, participants, q, T, options.k, options.seed);
  if (!sampler.ok()) return sampler.status();

  const size_t len = T.length();
  const size_t world_stride = participants.size() * len;
  std::vector<uint8_t> is_nn(options.batch_size * world_stride);
  std::vector<size_t> forall_hits(targets.size(), 0);
  std::vector<size_t> exists_hits(targets.size(), 0);
  size_t worlds = 0;
  while (worlds < options.max_worlds) {
    const size_t batch =
        std::min(options.batch_size, options.max_worlds - worlds);
    sampler.value().SampleWorlds(batch, is_nn.data(), world_stride);
    for (size_t b = 0; b < batch; ++b) {
      Accumulate(is_nn.data() + b * world_stride, target_index.value(), len,
                 &forall_hits, &exists_hits);
    }
    worlds += batch;
    if (HoeffdingEpsilon(worlds, options.delta) <= options.epsilon) break;
  }

  SequentialPnnResult result;
  result.worlds_used = worlds;
  result.epsilon_achieved = HoeffdingEpsilon(worlds, options.delta);
  result.estimates.reserve(targets.size());
  for (size_t ti = 0; ti < targets.size(); ++ti) {
    result.estimates.push_back(
        {targets[ti],
         static_cast<double>(forall_hits[ti]) / static_cast<double>(worlds),
         static_cast<double>(exists_hits[ti]) / static_cast<double>(worlds)});
  }
  return result;
}

Result<ThresholdQueryResult> DecideThresholdSequential(
    const TrajectoryDatabase& db, const std::vector<ObjectId>& participants,
    const std::vector<ObjectId>& targets, const QueryTrajectory& q,
    const TimeInterval& T, double tau, PnnSemantics semantics,
    const SequentialOptions& options) {
  if (tau < 0.0 || tau > 1.0) {
    return Status::InvalidArgument("tau out of [0, 1]");
  }
  if (options.batch_size == 0 || options.max_worlds == 0) {
    return Status::InvalidArgument("batch_size/max_worlds must be positive");
  }
  if (options.delta <= 0.0 || options.delta >= 1.0) {
    return Status::InvalidArgument("delta out of range");
  }
  auto target_index = ResolveTargets(participants, targets);
  if (!target_index.ok()) return target_index.status();
  auto sampler =
      WorldSampler::Create(db, participants, q, T, options.k, options.seed);
  if (!sampler.ok()) return sampler.status();

  // Bonferroni: each per-object interval at confidence 1 - delta/#targets so
  // the joint decision holds at 1 - delta.
  const double per_object_delta =
      options.delta / static_cast<double>(std::max<size_t>(1, targets.size()));
  const size_t len = T.length();
  const size_t world_stride = participants.size() * len;
  std::vector<uint8_t> is_nn(options.batch_size * world_stride);
  std::vector<size_t> forall_hits(targets.size(), 0);
  std::vector<size_t> exists_hits(targets.size(), 0);

  ThresholdQueryResult result;
  result.decisions.resize(targets.size());
  std::vector<char> decided(targets.size(), 0);
  size_t undecided = targets.size();
  size_t worlds = 0;
  while (worlds < options.max_worlds && undecided > 0) {
    const size_t batch =
        std::min(options.batch_size, options.max_worlds - worlds);
    sampler.value().SampleWorlds(batch, is_nn.data(), world_stride);
    for (size_t b = 0; b < batch; ++b) {
      Accumulate(is_nn.data() + b * world_stride, target_index.value(), len,
                 &forall_hits, &exists_hits);
    }
    worlds += batch;
    for (size_t ti = 0; ti < targets.size(); ++ti) {
      if (decided[ti]) continue;
      const size_t hits = semantics == PnnSemantics::kForall
                              ? forall_hits[ti]
                              : exists_hits[ti];
      Interval ci = WilsonInterval(hits, worlds, per_object_delta);
      if (ci.lo >= tau || ci.hi < tau) {
        decided[ti] = 1;
        --undecided;
        result.decisions[ti] = {targets[ti], ci.lo >= tau, /*decided=*/true,
                                static_cast<double>(hits) / worlds, worlds};
      }
    }
  }
  // Undecided targets: fall back to the point estimate, flagged as such.
  for (size_t ti = 0; ti < targets.size(); ++ti) {
    if (decided[ti]) continue;
    const size_t hits = semantics == PnnSemantics::kForall ? forall_hits[ti]
                                                           : exists_hits[ti];
    const double estimate = static_cast<double>(hits) / worlds;
    result.decisions[ti] = {targets[ti], estimate >= tau, /*decided=*/false,
                            estimate, worlds};
  }
  result.worlds_used = worlds;
  return result;
}

}  // namespace ust
