// Exact reference computations:
//  * Possible-world enumeration (Example 1 of the paper) — exponential, used
//    to validate the Monte-Carlo estimators on small inputs.
//  * Pairwise domination probability P(o ≺_q^T o_a) via the joint transition
//    matrix on S × S (Lemma 2) — PTIME, exact for two-object databases.
#pragma once

#include <cstdint>
#include <vector>

#include "model/posterior_model.h"
#include "model/trajectory_database.h"
#include "query/monte_carlo.h"
#include "query/query.h"
#include "util/status.h"

namespace ust {

class ThreadPool;

/// \brief A possible trajectory with its posterior probability.
struct WeightedTrajectory {
  Trajectory traj;
  double prob;
};

/// \brief Enumerate all posterior trajectories of `model` restricted to the
/// window [ts, te] (must lie inside the alive span). Fails with
/// kResourceLimit when more than `max_worlds` trajectories exist.
Result<std::vector<WeightedTrajectory>> EnumerateWindowTrajectories(
    const PosteriorModel& model, Tic ts, Tic te, size_t max_worlds = 100000);

/// \brief Exact P∀NN / P∃NN by full possible-world enumeration over
/// `participants` (probability estimates for the same objects).
/// The product of per-object world counts must not exceed `max_worlds`.
///
/// The cross-product sweep is evaluated in fixed blocks of
/// `kEnumWorldBlock` worlds — each block decodes its starting mixed-radix
/// choice vector from its world index, accumulates into its own partial
/// sums, and the partials are reduced *in block order* afterwards. Block
/// boundaries never depend on the thread count, so with a `pool` the blocks
/// shard across workers (one enumeration workspace per worker) and the
/// result is bit-identical to the serial sweep.
Result<std::vector<PnnEstimate>> ExactPnnByEnumeration(
    const DbSnapshot& db, const std::vector<ObjectId>& participants,
    const QueryTrajectory& q, const TimeInterval& T, int k = 1,
    size_t max_worlds = 2000000, ThreadPool* pool = nullptr);

/// Worlds per enumeration block (fixed: the determinism anchor above).
constexpr size_t kEnumWorldBlock = 1024;

/// \brief Lemma 2: P(∀t ∈ T: d(q(t), a(t)) OP d(q(t), b(t))) where OP is
/// `<=` (strict = false) or `<` (strict = true), computed exactly on the
/// joint chain of the two posterior models. Both objects must be alive
/// throughout T.
Result<double> DominationProbability(const StateSpace& space,
                                     const PosteriorModel& a,
                                     const PosteriorModel& b,
                                     const QueryTrajectory& q,
                                     const TimeInterval& T, bool strict);

}  // namespace ust
