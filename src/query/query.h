// Query-side types: the certain reference state/trajectory q and the query
// time interval T (Section 3.2). A query state is a trivial query trajectory.
#pragma once

#include <vector>

#include "geo/point.h"
#include "model/posterior_model.h"
#include "state/state_space.h"
#include "util/check.h"

namespace ust {

/// \brief Contiguous query time interval T = {start, ..., end}.
struct TimeInterval {
  Tic start = 0;
  Tic end = 0;

  size_t length() const { return static_cast<size_t>(end - start) + 1; }
  bool Contains(Tic t) const { return t >= start && t <= end; }
  bool valid() const { return start <= end; }

  /// All tics in the interval, ascending.
  std::vector<Tic> Tics() const {
    std::vector<Tic> tics;
    tics.reserve(length());
    for (Tic t = start; t <= end; ++t) tics.push_back(t);
    return tics;
  }

  friend bool operator==(const TimeInterval& a, const TimeInterval& b) {
    return a.start == b.start && a.end == b.end;
  }
};

/// \brief The certain query reference: a fixed point (e.g. the bank in the
/// paper's robbery scenario) or a full trajectory (the escape car).
class QueryTrajectory {
 public:
  /// Constant query state: q(t) = p for all t.
  static QueryTrajectory FromPoint(const Point2& p) {
    QueryTrajectory q;
    q.constant_ = true;
    q.points_ = {p};
    return q;
  }

  /// Per-tic query positions starting at `start`.
  static QueryTrajectory FromPoints(Tic start, std::vector<Point2> points) {
    UST_CHECK(!points.empty());
    QueryTrajectory q;
    q.constant_ = false;
    q.start_ = start;
    q.points_ = std::move(points);
    return q;
  }

  /// Map a certain state trajectory into the plane via `space`.
  static QueryTrajectory FromTrajectory(const StateSpace& space,
                                        const Trajectory& traj) {
    std::vector<Point2> points;
    points.reserve(traj.states.size());
    for (StateId s : traj.states) points.push_back(space.coord(s));
    return FromPoints(traj.start, std::move(points));
  }

  bool constant() const { return constant_; }

  bool Covers(Tic t) const {
    if (constant_) return true;
    return t >= start_ && t < start_ + static_cast<Tic>(points_.size());
  }

  /// Query position at tic `t`; must be covered.
  const Point2& At(Tic t) const {
    if (constant_) return points_[0];
    UST_DCHECK(Covers(t));
    return points_[static_cast<size_t>(t - start_)];
  }

 private:
  bool constant_ = true;
  Tic start_ = 0;
  std::vector<Point2> points_;
};

}  // namespace ust
