// Monte-Carlo estimation of PNN probabilities (Section 5): sample W possible
// worlds from the objects' a-posteriori models, run the certain-trajectory
// NN kernel in each world, and average. The per-world per-tic indicator table
// is kept so that P∃NN, P∀NN, P∀kNN, P∃kNN and every PCNN validation reuse
// the same W worlds (one consistent sample of possible worlds per query).
#pragma once

#include <cstdint>
#include <vector>

#include "model/trajectory_database.h"
#include "query/nn_kernel.h"
#include "query/query.h"
#include "util/rng.h"
#include "util/status.h"

namespace ust {

/// \brief Options of the Monte-Carlo engine.
struct MonteCarloOptions {
  size_t num_worlds = 1000;  ///< samples per query (paper default: 10000)
  int k = 1;                 ///< kNN parameter (Section 8)
  uint64_t seed = 42;        ///< RNG seed; same seed => same worlds
};

/// \brief The "is o a (k)NN of q at tic t in world w" table.
class NnTable {
 public:
  NnTable(std::vector<ObjectId> objects, TimeInterval T, size_t num_worlds)
      : objects_(std::move(objects)), interval_(T), num_worlds_(num_worlds),
        bits_(objects_.size() * num_worlds * T.length(), 0) {
    BuildIndex();
  }

  const std::vector<ObjectId>& objects() const { return objects_; }
  const TimeInterval& interval() const { return interval_; }
  size_t num_worlds() const { return num_worlds_; }

  /// Index of `o` within objects(), or npos. O(log n) via the sorted index
  /// built at construction (objects() keeps the caller's order).
  size_t IndexOf(ObjectId o) const;
  static constexpr size_t npos = static_cast<size_t>(-1);

  uint8_t* WorldRow(size_t world) {
    return bits_.data() + world * objects_.size() * interval_.length();
  }

  bool IsNn(size_t obj_index, size_t world, Tic t) const {
    const size_t len = interval_.length();
    return bits_[world * objects_.size() * len + obj_index * len +
                 static_cast<size_t>(t - interval_.start)] != 0;
  }

  /// Fraction of worlds where the object is NN at *every* tic of `tics`.
  /// `tics` must be a subset of the table interval.
  double ForallProb(size_t obj_index, const std::vector<Tic>& tics) const;

  /// Fraction of worlds where the object is NN at *some* tic of `tics`.
  double ExistsProb(size_t obj_index, const std::vector<Tic>& tics) const;

  /// P∀NN over the full table interval.
  double ForallProb(size_t obj_index) const {
    return ForallProb(obj_index, interval_.Tics());
  }
  /// P∃NN over the full table interval.
  double ExistsProb(size_t obj_index) const {
    return ExistsProb(obj_index, interval_.Tics());
  }

 private:
  void BuildIndex();

  std::vector<ObjectId> objects_;
  TimeInterval interval_;
  size_t num_worlds_;
  std::vector<uint8_t> bits_;  // [world][object][rel tic]
  /// (object id, position in objects_) sorted by id, for O(log n) IndexOf.
  std::vector<std::pair<ObjectId, uint32_t>> sorted_index_;
};

/// \brief Batched possible-world sampler: draws worlds (a trajectory per
/// participant, restricted to T) and marks which participants are (k)NNs of
/// q at each tic. ComputeNnTable and the sequential estimators
/// (query/adaptive.h) share this machinery.
///
/// Worlds are drawn participant-major in chunks: each posterior's alias
/// tables stay cache-hot across the whole chunk instead of being re-fetched
/// per world, and sampled states are converted to squared distances on the
/// spot (the NN decision never materializes trajectories). Each participant
/// owns a forked RNG stream, so the sampled worlds are independent of the
/// chunking and of the participant interleaving.
class WorldSampler {
 public:
  /// Validates inputs (including every sampling window), resolves the
  /// posterior models and warms their alias samplers.
  static Result<WorldSampler> Create(const TrajectoryDatabase& db,
                                     std::vector<ObjectId> participants,
                                     const QueryTrajectory& q,
                                     const TimeInterval& T, int k,
                                     uint64_t seed);

  /// Samples `count` worlds; world w's marks go to
  /// `is_nn + w * world_stride` (participant-major row, size
  /// num_participants() * interval().length(); layout as
  /// MarkNearestNeighbors). Allocation-free in steady state.
  void SampleWorlds(size_t count, uint8_t* is_nn, size_t world_stride);

  /// Samples the next single world (SampleWorlds of count 1).
  void NextWorld(uint8_t* is_nn) { SampleWorlds(1, is_nn, 0); }

  size_t num_participants() const { return participants_.size(); }
  const std::vector<ObjectId>& participants() const { return participants_; }
  const TimeInterval& interval() const { return interval_; }

 private:
  struct Participant {
    std::shared_ptr<const PosteriorModel> model;
    Tic ws, we;        // sampling window = alive span ∩ T
    bool alive;        // alive at some tic of T
    uint32_t rel0 = 0; // ws - T.start
    uint32_t wlen = 0; // window length in tics
    size_t doff = 0;   // block offset into dist2_, in per-world doubles
    Rng rng{0};        // per-participant stream
    // Precomputed per-slice distances to q: dtab_[dbase + dtab_off[r] + j]
    // is the squared distance of support state j (slice ws + r) to q(ws+r).
    size_t dbase = 0;
    std::vector<uint32_t> dtab_off;  // size wlen + 1
  };

  /// Worlds per chunk: bounds the distance-matrix working set
  /// (num_participants * interval * 8 bytes * kWorldChunk).
  static constexpr size_t kWorldChunk = 512;

  const TrajectoryDatabase* db_ = nullptr;
  std::vector<ObjectId> participants_;
  std::vector<Participant> resolved_;
  QueryTrajectory q_ = QueryTrajectory::FromPoint({0, 0});
  TimeInterval interval_{0, 0};
  int k_ = 1;
  std::vector<Point2> qpts_;        // q.At per tic of T, hoisted
  size_t total_wlen_ = 0;           // sum of alive windows, per world
  std::vector<double> dist2_;       // [participant block][world][rel - rel0]
  std::vector<double> dtab_;        // support-state-to-q distance tables
  std::vector<double> min_scratch_; // per-(world, rel) k-th distance of a chunk
  std::vector<double> kth_scratch_; // k>1: per-tic alive distances
};

/// \brief Sample `options.num_worlds` possible worlds over `participants` and
/// fill the NN indicator table.
///
/// Participants not alive at any tic of T are kept in the table but never
/// marked. Fails when a posterior model cannot be built (contradicting
/// observations) or T is invalid.
Result<NnTable> ComputeNnTable(const TrajectoryDatabase& db,
                               const std::vector<ObjectId>& participants,
                               const QueryTrajectory& q, const TimeInterval& T,
                               const MonteCarloOptions& options);

/// \brief Per-object probability estimates for the P∃NNQ / P∀NNQ queries.
struct PnnEstimate {
  ObjectId object;
  double forall_prob;
  double exists_prob;
};

/// \brief Estimate P∀NN and P∃NN for every object in `targets`, sampling
/// worlds over `participants` (targets ⊆ participants required).
Result<std::vector<PnnEstimate>> EstimatePnn(
    const TrajectoryDatabase& db, const std::vector<ObjectId>& participants,
    const std::vector<ObjectId>& targets, const QueryTrajectory& q,
    const TimeInterval& T, const MonteCarloOptions& options);

}  // namespace ust
