// Monte-Carlo estimation of PNN probabilities (Section 5): sample W possible
// worlds from the objects' a-posteriori models, run the certain-trajectory
// NN kernel in each world, and average. The per-world per-tic indicator table
// is kept so that P∃NN, P∀NN, P∀kNN, P∃kNN and every PCNN validation reuse
// the same W worlds (one consistent sample of possible worlds per query).
#pragma once

#include <cstdint>
#include <vector>

#include "model/db_snapshot.h"
#include "query/nn_kernel.h"
#include "query/query.h"
#include "util/aligned.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/status.h"

namespace ust {

class ThreadPool;
class WorldArena;

/// Seed of participant `id`'s world-sampling stream under query seed `seed`.
/// Keyed by the object id — not by the participant's *position* in the list —
/// so the worlds an object realizes are a pure function of (seed, id): two
/// queries over different participant subsets still sample identical
/// trajectories for their common objects, which is what lets one shared
/// world arena (query/world_arena.h) serve any pruned subset bit-identically.
/// splitmix64 finalizer over seed + golden-ratio stride: consecutive ids and
/// seeds land on decorrelated xoshiro seedings.
inline uint64_t WorldStreamSeed(uint64_t seed, ObjectId id) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ULL *
                          (static_cast<uint64_t>(id) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// \brief Options of the Monte-Carlo engine.
struct MonteCarloOptions {
  size_t num_worlds = 1000;  ///< samples per query (paper default: 10000)
  int k = 1;                 ///< kNN parameter (Section 8)
  uint64_t seed = 42;        ///< RNG seed; same seed => same worlds
};

/// \brief How a Monte-Carlo refinement decides it has sampled enough.
enum class PrecisionMode {
  /// Legacy contract: always draw exactly num_worlds (the paper's a-priori
  /// Hoeffding sizing). The default — nothing changes unless asked for.
  kFixedWorlds = 0,
  /// Stop once every target's estimate is within +-epsilon at confidence
  /// 1 - delta (Wilson per target, Bonferroni-corrected; the distribution-
  /// free Hoeffding bound is checked too, so the stop count never exceeds
  /// the a-priori sizing rounded up to a chunk).
  kEpsilon,
  /// Stop once every target's Wilson interval clears the query threshold
  /// tau ("is P >= tau?" is decided even though P itself is still coarse) —
  /// the PCNN-style threshold mode, usually decided orders of magnitude
  /// before the Hoeffding count when probabilities sit far from tau.
  kThreshold,
};

/// \brief Per-query precision target of the adaptive Monte-Carlo executor
/// (query/adaptive.h). num_worlds stays the hard cap in every mode; stopping
/// is only ever checked at WorldSampler::kWorldChunk boundaries, so stop
/// decisions are a pure function of (snapshot, spec) — never of the thread
/// count or the lane/steal schedule that executed the query.
struct PrecisionTarget {
  PrecisionMode mode = PrecisionMode::kFixedWorlds;
  double epsilon = 0.01;  ///< absolute error target (kEpsilon)
  double delta = 0.05;    ///< failure probability (kEpsilon / kThreshold)
};

/// \brief The "is o a (k)NN of q at tic t in world w" table.
///
/// Storage is a real bitmap: one bit per (object, tic, world), laid out
/// [object][tic][world-word] so that the per-tic world vectors of one object
/// are contiguous 64-bit words. ForallProb/ExistsProb then reduce with
/// word-wide AND/OR plus popcount — 64 worlds per instruction instead of the
/// former byte-per-indicator scan, which dominated PCNN validation.
class NnTable {
 public:
  NnTable(std::vector<ObjectId> objects, TimeInterval T, size_t num_worlds)
      : objects_(std::move(objects)), interval_(T), num_worlds_(num_worlds),
        words_per_tic_((num_worlds + 63) / 64),
        bits_(objects_.size() * T.length() * words_per_tic_, 0) {
    BuildIndex();
  }

  const std::vector<ObjectId>& objects() const { return objects_; }
  const TimeInterval& interval() const { return interval_; }
  size_t num_worlds() const { return num_worlds_; }
  size_t words_per_tic() const { return words_per_tic_; }

  /// Index of `o` within objects(), or npos. O(log n) via the sorted index
  /// built at construction (objects() keeps the caller's order).
  size_t IndexOf(ObjectId o) const;
  static constexpr size_t npos = static_cast<size_t>(-1);

  bool IsNn(size_t obj_index, size_t world, Tic t) const {
    const uint64_t* w = TicWords(obj_index, RelTic(t));
    return (w[world >> 6] >> (world & 63)) & 1u;
  }

  /// Scatter `count` sampled worlds — byte indicator rows as produced by
  /// WorldSampler, world w at `is_nn + w * world_stride`, participant-major —
  /// into the packed bitmap as worlds [first_world, first_world + count).
  /// Writers of disjoint 64-aligned world ranges touch disjoint words, so
  /// shards may pack concurrently when first_world is a multiple of 64.
  void PackWorlds(size_t first_world, size_t count, const uint8_t* is_nn,
                  size_t world_stride);

  /// Fraction of worlds where the object is NN at *every* tic of `tics`.
  /// `tics` must be a subset of the table interval.
  double ForallProb(size_t obj_index, const std::vector<Tic>& tics) const;

  /// Fraction of worlds where the object is NN at *some* tic of `tics`.
  double ExistsProb(size_t obj_index, const std::vector<Tic>& tics) const;

  /// Single-tic probability (P∀NN == P∃NN over one tic); allocation-free —
  /// hot-path replacement for ForallProb(i, {t}).
  double ProbAt(size_t obj_index, Tic t) const;

  /// P∀NN over the full table interval.
  double ForallProb(size_t obj_index) const;
  /// P∃NN over the full table interval.
  double ExistsProb(size_t obj_index) const;

 private:
  void BuildIndex();
  size_t RelTic(Tic t) const { return static_cast<size_t>(t - interval_.start); }
  const uint64_t* TicWords(size_t obj_index, size_t rel) const {
    UST_DCHECK(obj_index < objects_.size() &&
               rel < static_cast<size_t>(interval_.length()));
    return bits_.data() +
           (obj_index * interval_.length() + rel) * words_per_tic_;
  }
  /// AND (forall) or OR (exists) the per-tic world bitmaps of `tics`, then
  /// count the surviving worlds.
  double ReduceProb(size_t obj_index, const Tic* tics, size_t num_tics,
                    bool forall) const;

  std::vector<ObjectId> objects_;
  TimeInterval interval_;
  size_t num_worlds_;
  size_t words_per_tic_;
  // 32-byte-aligned so the SIMD word sweeps (util/simd.h) never straddle the
  // allocation: a 256-bit load starting inside the buffer stays inside it.
  AlignedVector<uint64_t> bits_;  // [object][rel tic][world word]
  /// (object id, position in objects_) sorted by id, for O(log n) IndexOf.
  std::vector<std::pair<ObjectId, uint32_t>> sorted_index_;
};

/// \brief Batched possible-world sampler: draws worlds (a trajectory per
/// participant, restricted to T) and marks which participants are (k)NNs of
/// q at each tic. ComputeNnTable and the sequential estimators
/// (query/adaptive.h) share this machinery.
///
/// Worlds are drawn participant-major in chunks: each posterior's alias
/// tables stay cache-hot across the whole chunk instead of being re-fetched
/// per world, and sampled states are converted to squared distances on the
/// spot (the NN decision never materializes trajectories). Each participant
/// owns a forked RNG stream, so the sampled worlds are independent of the
/// chunking and of the participant interleaving.
///
/// Worlds are also *position-addressable*: world w consumes exactly one draw
/// of each participant's stream, so InitialRngs + AdvanceWorlds rebuild the
/// stream state of any world index, and SampleWorldsFrom samples a range
/// from there. That is what lets a thread pool shard one query's worlds
/// across workers and still produce bit-identical tables (DESIGN.md §4).
class WorldSampler {
 public:
  /// Per-shard scratch: distance blocks, per-tic minima, and the advanced
  /// RNG copies. One per worker thread; reused across calls (and across
  /// samplers — ResetCursor rebinds it).
  struct Scratch {
    std::vector<double> dist2;        // [participant block][world][rel - rel0]
    std::vector<double> min_scratch;  // per-(world, rel) k-th distance
    std::vector<double> kth_scratch;  // k>1: per-tic alive distances
    std::vector<Rng> rngs;            // per-participant stream positions
    /// EvalArenaWorlds: resolved per-participant arena slab pointers.
    std::vector<const uint32_t*> arena_slabs;
    /// Id of the sampler the cursor is positioned on (0 = none). An id, not
    /// a pointer: ids are never reused, so a scratch outliving its sampler
    /// cannot false-match a new sampler allocated at the same address.
    uint64_t cursor_owner = 0;
  };

  /// Validates inputs (including every sampling window), resolves the
  /// posterior models and warms their alias samplers.
  static Result<WorldSampler> Create(const DbSnapshot& db,
                                     std::vector<ObjectId> participants,
                                     const QueryTrajectory& q,
                                     const TimeInterval& T, int k,
                                     uint64_t seed);

  /// Samples `count` worlds continuing the sampler's own stream; world w's
  /// marks go to `is_nn + w * world_stride` (participant-major row, size
  /// num_participants() * interval().length(); layout as
  /// MarkNearestNeighbors). Allocation-free in steady state.
  void SampleWorlds(size_t count, uint8_t* is_nn, size_t world_stride);

  /// Samples the next single world (SampleWorlds of count 1).
  void NextWorld(uint8_t* is_nn) { SampleWorlds(1, is_nn, 0); }

  /// Per-participant stream states at world 0 (the positions SampleWorlds
  /// starts from on a fresh sampler).
  std::vector<Rng> InitialRngs() const;

  /// Advance per-participant stream states by `worlds` worlds (one raw draw
  /// per world per stream — the per-world fork in the batch walk). Shards
  /// derive their start states this way: one serial O(W) prefix pass, then
  /// SampleWorldsFrom per shard — bit-identical to one serial pass.
  static void AdvanceWorlds(std::vector<Rng>* rngs, size_t worlds);

  /// Sample `count` worlds starting from explicit stream states (as built by
  /// InitialRngs + AdvanceWorlds). `rng_starts` is not modified; the cursor
  /// advances in `scratch`. Safe concurrently with distinct scratches.
  void SampleWorldsFrom(const std::vector<Rng>& rng_starts, size_t count,
                        uint8_t* is_nn, size_t world_stride,
                        Scratch* scratch) const;

  /// Rewind `scratch`'s cursor to this sampler's world 0. Required before
  /// the first SampleNext on this sampler — SampleNext refuses a cursor
  /// positioned on a different sampler (a reused scratch must never leak a
  /// stale stream position into a new query).
  void ResetCursor(Scratch* scratch) const;

  /// Continuation variant on caller-owned scratch: each call continues
  /// where the previous one left off (no repositioning cost). Streams are
  /// tracked in `scratch`, so distinct scratches hold independent cursors
  /// over the same sampler.
  void SampleNext(size_t count, uint8_t* is_nn, size_t world_stride,
                  Scratch* scratch) const;

  /// True when `arena` realizes every alive participant of this sampler over
  /// the exact sampling window (same interval, same seed-keyed streams are
  /// the arena's responsibility — this checks object coverage and windows).
  bool CoveredBy(const WorldArena& arena) const;

  /// Evaluate worlds [first_world, first_world + count) against `arena`
  /// instead of sampling them: per-world marks are bit-identical to
  /// Sample* of the same worlds (the arena stores the very state indices
  /// the batch walk would have produced), but the alias-walk cost is gone —
  /// only distance lookups and the NN reduction remain. Requires
  /// CoveredBy(arena) and first_world + count <= arena.num_worlds().
  /// Output layout matches SampleWorldsFrom; safe concurrently with
  /// distinct scratches.
  void EvalArenaWorlds(const WorldArena& arena, size_t first_world,
                       size_t count, uint8_t* is_nn, size_t world_stride,
                       Scratch* scratch) const;

  size_t num_participants() const { return participants_.size(); }
  const std::vector<ObjectId>& participants() const { return participants_; }
  const TimeInterval& interval() const { return interval_; }

  /// Worlds per sampling chunk. Shard boundaries must be multiples of this
  /// (it is a multiple of 64, so packed-bitmap words never straddle shards).
  static constexpr size_t kWorldChunk = 512;

 private:
  struct Participant {
    std::shared_ptr<const PosteriorModel> model;
    Tic ws, we;        // sampling window = alive span ∩ T
    bool alive;        // alive at some tic of T
    uint32_t rel0 = 0; // ws - T.start
    uint32_t wlen = 0; // window length in tics
    size_t doff = 0;   // block offset into dist2, in per-world doubles
    Rng rng0{0};       // stream state at world 0 (never advanced)
    // Precomputed per-slice distances to q: dtab_[dbase + dtab_off[r] + j]
    // is the squared distance of support state j (slice ws + r) to q(ws+r).
    size_t dbase = 0;
    std::vector<uint32_t> dtab_off;  // size wlen + 1
  };

  /// Shared core of both entry points: samples `count` worlds advancing
  /// `rngs` (aligned with participants), writing marks through `is_nn`.
  void SampleCore(size_t count, uint8_t* is_nn, size_t world_stride, Rng* rngs,
                  Scratch* scratch) const;

  /// Phase 2 + marking of one chunk: turns the distance blocks and (k == 1)
  /// folded minima already in `scratch` into indicator rows for worlds
  /// [row0, row0 + chunk) of `is_nn`. Shared by the sampling and the
  /// arena-evaluation paths — identical bytes by construction.
  void ReduceChunk(size_t row0, size_t chunk, uint8_t* is_nn,
                   size_t world_stride, Scratch* scratch) const;

  std::vector<ObjectId> participants_;
  std::vector<Participant> resolved_;
  QueryTrajectory q_ = QueryTrajectory::FromPoint({0, 0});
  TimeInterval interval_{0, 0};
  int k_ = 1;
  std::vector<Point2> qpts_;        // q.At per tic of T, hoisted
  size_t total_wlen_ = 0;           // sum of alive windows, per world
  std::vector<double> dtab_;        // support-state-to-q distance tables
  std::vector<Rng> live_rngs_;      // stream positions of SampleWorlds
  Scratch scratch_;                 // scratch of the mutating entry point
  uint64_t cursor_id_ = 0;          // unique per Create; 0 = not created
};

/// \brief Sample `options.num_worlds` possible worlds over `participants` and
/// fill the NN indicator table.
///
/// Participants not alive at any tic of T are kept in the table but never
/// marked. Fails when a posterior model cannot be built (contradicting
/// observations) or T is invalid.
///
/// With a `pool`, world chunks are sharded across its workers; the table is
/// bit-identical at any thread count (chunk boundaries are fixed and every
/// shard re-derives its RNG position from the world index).
Result<NnTable> ComputeNnTable(const DbSnapshot& db,
                               const std::vector<ObjectId>& participants,
                               const QueryTrajectory& q, const TimeInterval& T,
                               const MonteCarloOptions& options,
                               ThreadPool* pool = nullptr);

/// \brief ComputeNnTable with caller-owned scratch: on the serial path
/// (no pool, or num_worlds within one chunk) `scratch` and `rows` (the byte
/// staging buffer) are reused across calls, so a session running many
/// queries allocates the sampling scratch once per worker lane instead of
/// once per query. The world-sharded path allocates its per-worker scratch
/// internally (amortized over the multi-chunk sampling it implies). Either
/// pointer may be nullptr (private locals are used). The result is
/// identical to ComputeNnTable.
///
/// When `arena` is non-null, covers this query's (interval, seed,
/// num_worlds) and all alive participants, the worlds are *evaluated*
/// against the arena instead of sampled — same bytes, no alias walk — and
/// `*used_arena` (if given) is set to true. Otherwise the call falls back
/// to live sampling and sets `*used_arena` to false; the result is
/// identical either way.
Result<NnTable> ComputeNnTableScratch(
    const DbSnapshot& db, const std::vector<ObjectId>& participants,
    const QueryTrajectory& q, const TimeInterval& T,
    const MonteCarloOptions& options, ThreadPool* pool,
    WorldSampler::Scratch* scratch, std::vector<uint8_t>* rows,
    const WorldArena* arena = nullptr, bool* used_arena = nullptr);

/// \brief Per-object probability estimates for the P∃NNQ / P∀NNQ queries.
struct PnnEstimate {
  ObjectId object;
  double forall_prob;
  double exists_prob;
};

/// \brief Estimate P∀NN and P∃NN for every object in `targets`, sampling
/// worlds over `participants` (targets ⊆ participants required).
Result<std::vector<PnnEstimate>> EstimatePnn(
    const DbSnapshot& db, const std::vector<ObjectId>& participants,
    const std::vector<ObjectId>& targets, const QueryTrajectory& q,
    const TimeInterval& T, const MonteCarloOptions& options,
    ThreadPool* pool = nullptr);

}  // namespace ust
