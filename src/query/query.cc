#include "query/query.h"

// QueryTrajectory and TimeInterval are header-only; this translation unit
// exists to anchor the module and keep the build layout uniform.
