#include "query/session.h"

#include <algorithm>
#include <cmath>

#include "util/fault.h"
#include "util/timer.h"
#include "util/trace.h"

namespace ust {

namespace {

// Union of two id sets (inputs need not be sorted).
std::vector<ObjectId> UnionIds(std::vector<ObjectId> a,
                               const std::vector<ObjectId>& b) {
  a.insert(a.end(), b.begin(), b.end());
  std::sort(a.begin(), a.end());
  a.erase(std::unique(a.begin(), a.end()), a.end());
  return a;
}

}  // namespace

QuerySession::QuerySession(DbSnapshot db, const UstTree* index,
                           SessionOptions options)
    : db_(std::move(db)), index_(index), options_(options),
      pool_(options.threads),
      scratch_(static_cast<size_t>(pool_.num_threads())) {
  // An index over another epoch prunes against the wrong object set. Patch
  // the gap with a delta over the change log when possible; otherwise drop
  // the index rather than serve wrong results (alive-time filtering stays
  // correct) — and make the drop observable.
  if (index_ != nullptr && index_->built_version() != db_.version()) {
    bool patched = false;
    if (options_.delta_index && index_->built_version() < db_.version() &&
        db_.delta_floor() <= index_->built_version()) {
      auto delta = UstDelta::Build(db_, index_->built_version());
      if (delta.ok()) {
        delta_ = delta.MoveValue();
        patched = true;
      }
    }
    if (!patched) {
      index_ = nullptr;
      dropped_stale_index_ = true;
      trace::Instant("stale_index_drop", db_.version(), "epoch", "dropped");
      if (options_.stale_index_drops != nullptr) {
        options_.stale_index_drops->Increment();
      }
    }
  }
}

Status QuerySession::Prepare() {
  if (prepared_) return prepare_status_;
  prepared_ = true;
  // TS phase: adapt every posterior (sharded, one workspace per worker),
  // then warm every alias sampler. After this no query mutates shared state,
  // which is what makes the parallel paths race-free.
  prepare_status_ = db_.EnsureAllPosteriors(&pool_);
  if (!prepare_status_.ok()) return prepare_status_;
  pool_.ParallelFor(db_.size(), [&](size_t i, int) {
    auto posterior = db_.object(static_cast<ObjectId>(i)).Posterior();
    if (posterior.ok()) posterior.value()->EnsureSamplers();
  });
  return prepare_status_;
}

PruneResult QuerySession::Prune(const QueryTrajectory& q, const TimeInterval& T,
                                int k, bool forall,
                                const UstTree::TimeSlab* slab) const {
  if (index_ != nullptr) {
    if (!delta_.empty()) {
      UST_TRACE_SCOPE("delta_probe", delta_.depth(), "objects");
      return forall ? index_->PruneForall(q, T, k, slab, &delta_)
                    : index_->PruneExists(q, T, k, slab, &delta_);
    }
    return forall ? index_->PruneForall(q, T, k, slab)
                  : index_->PruneExists(q, T, k, slab);
  }
  PruneResult result;
  result.influencers = db_.AliveSometime(T.start, T.end);
  result.candidates =
      forall ? db_.AliveThroughout(T.start, T.end) : result.influencers;
  return result;
}

const UstTree::TimeSlab* QuerySession::SlabFor(const TimeInterval& T) {
  if (index_ == nullptr) return nullptr;
  for (const auto& slab : slabs_) {
    if (slab->T == T) return slab.get();
  }
  slabs_.push_back(
      std::make_unique<UstTree::TimeSlab>(index_->MakeTimeSlab(T)));
  return slabs_.back().get();
}

const UstTree::TimeSlab* QuerySession::FindSlab(const TimeInterval& T) const {
  if (index_ == nullptr) return nullptr;
  for (const auto& slab : slabs_) {
    if (slab->T == T) return slab.get();
  }
  return nullptr;
}

void QuerySession::WarmInterval(const TimeInterval& T) {
  TrimSlabCache();
  (void)SlabFor(T);
}

void QuerySession::TrimSlabCache() {
  // Bound the cache: a long-lived session over ever-changing intervals must
  // not grow without limit. Trimming only at batch entry — never from
  // SlabFor — keeps every pointer handed out during a batch valid, even
  // when one batch spans more than kMaxCachedSlabs distinct intervals.
  constexpr size_t kMaxCachedSlabs = 64;
  if (slabs_.size() >= kMaxCachedSlabs) slabs_.clear();
}

QueryOutcome QuerySession::Run(const QuerySpec& spec) {
  // Single-query path: stays lazy (posteriors of the participants resolve on
  // first use) and serial within the caller's thread; the session pool only
  // shards world chunks.
  TrimSlabCache();
  QueryOutcome out = RunOne(spec, SlabFor(spec.T), &pool_, &scratch_[0]);
  NoteAdaptiveOutcome(spec, out);
  return out;
}

size_t QuerySession::ExpectedWorlds(size_t cap) const {
  constexpr size_t kChunk = WorldSampler::kWorldChunk;
  const double fraction = planner_fraction_.load(std::memory_order_relaxed);
  // Round the scaled cap up to a chunk boundary (stops only land there) and
  // never predict below one chunk — the adaptive path always samples at
  // least min(cap, kChunk) worlds.
  const double scaled = fraction * static_cast<double>(cap);
  size_t expected = static_cast<size_t>(
                        std::ceil(scaled / static_cast<double>(kChunk))) *
                    kChunk;
  expected = std::max(expected, std::min(cap, kChunk));
  return std::min(expected, cap);
}

void QuerySession::NoteAdaptiveOutcome(const QuerySpec& spec,
                                       const QueryOutcome& out) {
  if (spec.precision.mode == PrecisionMode::kFixedWorlds) return;
  if (!out.status.ok() || out.executor != ExecutorKind::kMonteCarlo ||
      out.kind == QueryKind::kContinuous || spec.mc.num_worlds == 0 ||
      out.worlds_used == 0) {
    return;
  }
  // EWMA over the observed stop fractions: alpha 0.3 adapts within a handful
  // of queries yet smooths over one unusually hard (or easy) outlier.
  constexpr double kAlpha = 0.3;
  const double fraction = static_cast<double>(out.worlds_used) /
                          static_cast<double>(spec.mc.num_worlds);
  difficulty_ewma_ = (1.0 - kAlpha) * difficulty_ewma_ + kAlpha * fraction;
  planner_fraction_.store(difficulty_ewma_, std::memory_order_relaxed);
}

std::vector<QueryOutcome> QuerySession::RunAll(
    const std::vector<QuerySpec>& specs) {
  std::vector<QueryOutcome> outcomes(specs.size());
  if (specs.empty()) return outcomes;
  // Cross-query sharding shares the posterior and sampler caches, so they
  // must be sealed first. A 1-thread pool — or a lone query, which takes
  // the world-sharded path where WorldSampler::Create resolves its own
  // participants serially before any shard runs — can stay lazy like Run.
  // If sealing fails (one bad object anywhere in the database, possibly
  // unrelated to this batch), degrade to the serial lazy path instead of
  // failing the batch: per-query outcomes must match Run() bit for bit.
  bool share_across_queries = pool_.num_threads() > 1 && specs.size() > 1;
  if (share_across_queries && !Prepare().ok()) share_across_queries = false;
  // Index slabs are built serially up front (the cache is not locked).
  TrimSlabCache();
  std::vector<const UstTree::TimeSlab*> slabs(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) slabs[i] = SlabFor(specs[i].T);
  if (share_across_queries) {
    // Shard across queries: each worker owns its scratch lane, each query
    // writes its own outcome slot — schedule-independent by construction.
    pool_.ParallelFor(specs.size(), [&](size_t i, int worker) {
      outcomes[i] =
          RunOne(specs[i], slabs[i], /*world_pool=*/nullptr,
                 &scratch_[static_cast<size_t>(worker)]);
    });
  } else {
    // Serial batch (or a lone query): shard world chunks instead.
    for (size_t i = 0; i < specs.size(); ++i) {
      outcomes[i] = RunOne(specs[i], slabs[i], &pool_, &scratch_[0]);
    }
  }
  return outcomes;
}

ArenaStats QuerySession::arena_stats() const {
  ArenaStats s;
  s.builds = own_arena_counters_.builds.value();
  s.spec_reuses = own_arena_counters_.spec_reuses.value();
  s.bytes = own_arena_counters_.bytes.value();
  return s;
}

void QuerySession::NoteArenaUse() const {
  own_arena_counters_.spec_reuses.Increment();
  if (options_.arena_counters != nullptr) {
    options_.arena_counters->spec_reuses.Increment();
  }
}

std::shared_ptr<const WorldArena> QuerySession::ArenaFor(
    const TimeInterval& T, uint64_t seed, size_t num_worlds,
    ThreadPool* pool) const {
  if (options_.arena_min_uses <= 0 || !T.valid() || num_worlds == 0) {
    return nullptr;
  }
  if (fault::ShouldFail("alloc_limit")) {
    // Injected allocation refusal: behave as if the slab could not be
    // materialized — specs sample live, bit-identically, just unamortized.
    return nullptr;
  }
  size_t build_worlds = 0;
  {
    std::lock_guard<std::mutex> lock(arena_mu_);
    ArenaSlot* slot = nullptr;
    for (ArenaSlot& s : arena_slots_) {
      if (s.T.start == T.start && s.T.end == T.end && s.seed == seed) {
        slot = &s;
        break;
      }
    }
    if (slot == nullptr) {
      // Bound the group list: drop idle (non-building) groups front-first.
      // Handed-out arenas survive any trim — callers hold shared_ptrs.
      constexpr size_t kMaxArenaSlots = 16;
      if (arena_slots_.size() >= kMaxArenaSlots) {
        for (auto it = arena_slots_.begin(); it != arena_slots_.end();) {
          if (!it->building && arena_slots_.size() >= kMaxArenaSlots) {
            it = arena_slots_.erase(it);
          } else {
            ++it;
          }
        }
      }
      arena_slots_.push_back(ArenaSlot{T, seed, 0, 0, false, nullptr});
      slot = &arena_slots_.back();
    }
    slot->uses += 1;
    slot->max_worlds = std::max(slot->max_worlds, num_worlds);
    if (slot->arena != nullptr) return slot->arena;
    if (slot->building ||
        slot->uses < static_cast<uint32_t>(options_.arena_min_uses)) {
      return nullptr;  // cold, or another lane is building: sample live
    }
    slot->building = true;
    build_worlds = slot->max_worlds;
  }
  // Build outside the lock: sampling the whole group must not serialize the
  // other lanes (they sample live meanwhile — same bytes, the contract).
  // The group superset is everything alive within T: pruning only ever
  // yields subsets of it, so the arena covers any spec of the group.
  Result<WorldArena> built = [&] {
    UST_TRACE_SCOPE("arena_build", static_cast<uint64_t>(build_worlds),
                    "worlds");
    return WorldArena::Build(db_, db_.AliveSometime(T.start, T.end), T, seed,
                             build_worlds, pool);
  }();
  std::lock_guard<std::mutex> lock(arena_mu_);
  // Re-find by key: the slot vector may have been trimmed or reallocated
  // while we sampled.
  for (ArenaSlot& s : arena_slots_) {
    if (s.T.start == T.start && s.T.end == T.end && s.seed == seed) {
      s.building = false;
      if (!built.ok()) return nullptr;  // group unbuildable: stay live
      s.arena = std::make_shared<const WorldArena>(built.MoveValue());
      own_arena_counters_.builds.Increment();
      own_arena_counters_.bytes.Increment(s.arena->bytes());
      if (options_.arena_counters != nullptr) {
        options_.arena_counters->builds.Increment();
        options_.arena_counters->bytes.Increment(s.arena->bytes());
      }
      return s.arena;
    }
  }
  return nullptr;  // slot trimmed mid-build: drop the arena
}

void QuerySession::RunMorsel(const std::vector<QuerySpec>& specs,
                             size_t begin, size_t end, QueryOutcome* outcomes,
                             ThreadPool* pool, ExecScratch* scratch) const {
  // A missing slab (an interval never warmed) degrades to a direct R*-tree
  // traversal inside Prune — a pure read, identical pruning output. Every
  // other input of RunOne is immutable session state or caller-owned, so
  // concurrent morsels of one shared session never touch common bytes.
  for (size_t i = begin; i < end && i < specs.size(); ++i) {
    outcomes[i] = RunOne(specs[i], FindSlab(specs[i].T), pool, scratch);
  }
}

QueryOutcome QuerySession::RunOne(const QuerySpec& spec,
                                  const UstTree::TimeSlab* slab,
                                  ThreadPool* world_pool,
                                  ExecScratch* scratch) const {
  QueryOutcome out;
  out.kind = spec.kind;
  if (spec.kind == QueryKind::kContinuous) {
    RunContinuous(spec, slab, world_pool, scratch, &out);
  } else {
    RunPnn(spec, slab, world_pool, scratch, &out);
  }
  return out;
}

void QuerySession::RunPnn(const QuerySpec& spec, const UstTree::TimeSlab* slab,
                          ThreadPool* world_pool, ExecScratch* scratch,
                          QueryOutcome* out) const {
  const bool forall = spec.kind == QueryKind::kForall;
  Timer prune_timer;
  PruneResult pruned = Prune(spec.q, spec.T, spec.mc.k, forall, slab);
  out->pnn.prune_millis = prune_timer.Millis();
  out->pnn.num_candidates = pruned.candidates.size();
  out->pnn.num_influencers = pruned.influencers.size();
  if (pruned.candidates.empty()) return;

  Timer sample_timer;
  // P∀NN must account for every influencer; candidates outside the
  // influencer set (possible without an index) still need their own worlds.
  std::vector<ObjectId> participants =
      forall ? UnionIds(pruned.candidates, pruned.influencers)
             : pruned.influencers;
  PnnTask task;
  task.db = &db_;
  task.participants = &participants;
  task.targets = &pruned.candidates;
  task.q = &spec.q;
  task.T = spec.T;
  task.mc = spec.mc;
  task.precision = spec.precision;
  task.kind = spec.kind;
  task.tau = spec.tau;

  // An explicit override — per query or session-wide — is a user decision:
  // honoring it with a different backend would be silent data substitution,
  // so unsupported/overflowing forced backends error instead of degrading.
  const bool forced = spec.backend != ExecutorKind::kAuto ||
                      options_.planner.force != ExecutorKind::kAuto;
  ExecutorKind choice = spec.backend;
  if (choice == ExecutorKind::kAuto) {
    // Adaptive specs are costed at their *expected* world count (the
    // session's difficulty EWMA scaled onto the cap), not the worst-case
    // cap: a stream of easy early-stopping queries shifts the exact/MC
    // crossover toward sampling, because sampling got genuinely cheaper.
    const size_t plan_worlds =
        spec.precision.mode == PrecisionMode::kFixedWorlds
            ? spec.mc.num_worlds
            : ExpectedWorlds(spec.mc.num_worlds);
    choice = PlanExecutor(spec.kind, pruned.candidates.size(),
                          participants.size(), spec.T.length(),
                          plan_worlds, spec.mc.k, options_.planner);
  }
  if (!GetExecutor(choice).Supports(spec.kind, task)) {
    if (forced) {
      out->status = Status::InvalidArgument(
          std::string("executor '") + ExecutorKindName(choice) +
          "' does not support this query");
      return;
    }
    choice = ExecutorKind::kMonteCarlo;  // planner misfire: degrade gracefully
  }
  ExecContext ctx;
  ctx.pool = world_pool;
  ctx.sampler_scratch = &scratch->sampler;
  ctx.row_buffer = &scratch->rows;
  ctx.worlds_used = &out->worlds_used;
  ctx.early_stopped = &out->early_stopped;
  // Monte-Carlo specs consult the session's shared arena; the shared_ptr
  // keeps it alive for the whole estimate even if the cache trims it.
  std::shared_ptr<const WorldArena> arena;
  bool used_arena = false;
  if (choice == ExecutorKind::kMonteCarlo) {
    arena = ArenaFor(spec.T, spec.mc.seed, spec.mc.num_worlds, world_pool);
    ctx.arena = arena.get();
    ctx.arena_used = &used_arena;
  }
  auto estimates = GetExecutor(choice).Estimate(task, ctx);
  if (!estimates.ok() && choice == ExecutorKind::kExact && !forced &&
      estimates.status().code() == StatusCode::kResourceLimit) {
    // The planner under-estimated the enumeration cross product (it only
    // sees set sizes, not per-object world counts): fall back to sampling.
    choice = ExecutorKind::kMonteCarlo;
    arena = ArenaFor(spec.T, spec.mc.seed, spec.mc.num_worlds, world_pool);
    ctx.arena = arena.get();
    ctx.arena_used = &used_arena;
    estimates = GetExecutor(choice).Estimate(task, ctx);
  }
  if (!estimates.ok()) {
    out->status = estimates.status();
    return;
  }
  out->executor = choice;
  out->used_arena = used_arena;
  if (used_arena) NoteArenaUse();
  for (const PnnEstimate& e : estimates.value()) {
    const double p = forall ? e.forall_prob : e.exists_prob;
    if (p >= spec.tau) out->pnn.results.push_back({e.object, p});
  }
  out->pnn.sampling_millis = sample_timer.Millis();
}

void QuerySession::RunContinuous(const QuerySpec& spec,
                                 const UstTree::TimeSlab* slab,
                                 ThreadPool* world_pool, ExecScratch* scratch,
                                 QueryOutcome* out) const {
  // Algorithm 1 validates timestamp sets against one shared world sample,
  // which only the Monte-Carlo table provides — so a forced non-MC backend
  // is an error here, same contract as RunPnn.
  const ExecutorKind forced_backend = spec.backend != ExecutorKind::kAuto
                                          ? spec.backend
                                          : options_.planner.force;
  if (forced_backend != ExecutorKind::kAuto &&
      forced_backend != ExecutorKind::kMonteCarlo) {
    out->status = Status::InvalidArgument(
        std::string("executor '") + ExecutorKindName(forced_backend) +
        "' does not support continuous queries");
    return;
  }
  Timer prune_timer;
  // Any object that can be NN at some tic can hold a singleton result set,
  // so PCNN candidates are the P∃NN candidates.
  PruneResult pruned = Prune(spec.q, spec.T, spec.mc.k, /*forall=*/false, slab);
  out->pcnn.prune_millis = prune_timer.Millis();
  out->pcnn.num_candidates = pruned.candidates.size();
  out->pcnn.num_influencers = pruned.influencers.size();
  if (pruned.candidates.empty()) return;

  Timer sample_timer;
  out->executor = ExecutorKind::kMonteCarlo;
  std::shared_ptr<const WorldArena> arena =
      ArenaFor(spec.T, spec.mc.seed, spec.mc.num_worlds, world_pool);
  bool used_arena = false;
  auto table = ComputeNnTableScratch(db_, pruned.influencers, spec.q, spec.T,
                                     spec.mc, world_pool, &scratch->sampler,
                                     &scratch->rows, arena.get(), &used_arena);
  if (!table.ok()) {
    out->status = table.status();
    return;
  }
  out->used_arena = used_arena;
  // PCNN ignores any precision target: Algorithm 1 validates timestamp sets
  // against the one shared world table, which must be complete.
  out->worlds_used = spec.mc.num_worlds;
  if (used_arena) NoteArenaUse();
  auto pcnn = PcnnOnTable(table.value(), pruned.candidates, spec.tau);
  if (!pcnn.ok()) {
    out->status = pcnn.status();
    return;
  }
  out->pcnn.pcnn = pcnn.MoveValue();
  out->pcnn.sampling_millis = sample_timer.Millis();
}

}  // namespace ust
