#include "query/executor.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "query/adaptive.h"
#include "query/exact.h"
#include "query/markov_approx.h"
#include "util/check.h"
#include "util/trace.h"

namespace ust {

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

// ---- Exact: possible-world enumeration (Example 1 / Section 4.1). ----
class ExactExecutor : public Executor {
 public:
  ExecutorKind kind() const override { return ExecutorKind::kExact; }

  bool Supports(QueryKind query, const PnnTask&) const override {
    // Enumeration yields the full per-target P∀NN/P∃NN vector; PCNN would
    // additionally need per-timestamp-set probabilities over shared worlds.
    return query == QueryKind::kForall || query == QueryKind::kExists;
  }

  Result<std::vector<PnnEstimate>> Estimate(const PnnTask& task,
                                            const ExecContext& ctx)
      const override {
    UST_TRACE_SCOPE("exec_exact", task.targets->size(), "targets");
    // The cross-product sweep shards its fixed-size world blocks over the
    // pool (bit-identical at any thread count; see ExactPnnByEnumeration).
    auto all = ExactPnnByEnumeration(*task.db, *task.participants, *task.q,
                                     task.T, task.mc.k, task.enum_max_worlds,
                                     ctx.pool);
    if (!all.ok()) return all.status();
    // Enumeration estimates every participant; keep target order.
    std::vector<PnnEstimate> out;
    out.reserve(task.targets->size());
    for (ObjectId t : *task.targets) {
      auto it = std::find_if(
          all.value().begin(), all.value().end(),
          [t](const PnnEstimate& e) { return e.object == t; });
      if (it == all.value().end()) {
        return Status::InvalidArgument("target not among participants");
      }
      out.push_back(*it);
    }
    return out;
  }
};

// ---- Markov approximation: Lemma-3 chain rule (Section 4.2). ----
class MarkovApproxExecutor : public Executor {
 public:
  ExecutorKind kind() const override { return ExecutorKind::kMarkovApprox; }

  bool Supports(QueryKind query, const PnnTask& task) const override {
    if (query != QueryKind::kForall || task.mc.k != 1) return false;
    for (ObjectId t : *task.targets) {
      if (!task.db->object(t).AliveThroughout(task.T.start, task.T.end)) {
        return false;
      }
    }
    return true;
  }

  Result<std::vector<PnnEstimate>> Estimate(const PnnTask& task,
                                            const ExecContext& ctx)
      const override {
    UST_TRACE_SCOPE("exec_markov", task.targets->size(), "targets");
    // Per-target chain-rule factors shard over the pool: each target's
    // conditioning chain is independent and writes its own slot, so the
    // batch is bit-identical to per-target serial calls at any thread
    // count (the augmented competitor strips are shared read-only).
    auto probs = ApproximateForallNnMarkovBatch(*task.db, *task.targets,
                                                *task.participants, *task.q,
                                                task.T, ctx.pool);
    if (!probs.ok()) return probs.status();
    std::vector<PnnEstimate> out;
    out.reserve(task.targets->size());
    for (size_t i = 0; i < task.targets->size(); ++i) {
      // exists_prob: not computed by this backend.
      out.push_back({(*task.targets)[i], probs.value()[i], kNan});
    }
    return out;
  }
};

// ---- Monte-Carlo: sampled possible worlds (Section 5). ----
class MonteCarloExecutor : public Executor {
 public:
  ExecutorKind kind() const override { return ExecutorKind::kMonteCarlo; }

  bool Supports(QueryKind, const PnnTask&) const override { return true; }

  Result<std::vector<PnnEstimate>> Estimate(const PnnTask& task,
                                            const ExecContext& ctx)
      const override {
    UST_TRACE_SCOPE("exec_mc", task.mc.num_worlds, "worlds");
    if (task.precision.mode != PrecisionMode::kFixedWorlds) {
      // Adaptive stopping: the sequential estimator owns the chunk loop and
      // stops at the first boundary where every target is decided / within
      // epsilon (query/adaptive.h). Same worlds, same arena contract —
      // only fewer of them.
      auto adaptive = EstimatePnnAdaptive(
          *task.db, *task.participants, *task.targets, *task.q, task.T,
          task.kind == QueryKind::kExists ? PnnSemantics::kExists
                                          : PnnSemantics::kForall,
          task.tau, task.mc, task.precision, ctx.pool, ctx.sampler_scratch,
          ctx.row_buffer, ctx.arena, ctx.arena_used);
      if (!adaptive.ok()) return adaptive.status();
      if (ctx.worlds_used != nullptr) {
        *ctx.worlds_used = adaptive.value().worlds_used;
      }
      if (ctx.early_stopped != nullptr) {
        *ctx.early_stopped = adaptive.value().early_stopped;
      }
      return std::move(adaptive.value().estimates);
    }
    if (ctx.worlds_used != nullptr) *ctx.worlds_used = task.mc.num_worlds;
    if (ctx.early_stopped != nullptr) *ctx.early_stopped = false;
    auto table = ComputeNnTableScratch(*task.db, *task.participants, *task.q,
                                       task.T, task.mc, ctx.pool,
                                       ctx.sampler_scratch, ctx.row_buffer,
                                       ctx.arena, ctx.arena_used);
    if (!table.ok()) return table.status();
    std::vector<PnnEstimate> out;
    out.reserve(task.targets->size());
    for (ObjectId t : *task.targets) {
      const size_t idx = table.value().IndexOf(t);
      if (idx == NnTable::npos) {
        return Status::InvalidArgument("target not among participants");
      }
      out.push_back({t, table.value().ForallProb(idx),
                     table.value().ExistsProb(idx)});
    }
    return out;
  }
};

}  // namespace

const char* ExecutorKindName(ExecutorKind kind) {
  switch (kind) {
    case ExecutorKind::kAuto:
      return "auto";
    case ExecutorKind::kExact:
      return "exact";
    case ExecutorKind::kMarkovApprox:
      return "markov_approx";
    case ExecutorKind::kMonteCarlo:
      return "monte_carlo";
  }
  return "unknown";
}

const Executor& GetExecutor(ExecutorKind kind) {
  static const ExactExecutor exact;
  static const MarkovApproxExecutor markov;
  static const MonteCarloExecutor monte_carlo;
  switch (kind) {
    case ExecutorKind::kExact:
      return exact;
    case ExecutorKind::kMarkovApprox:
      return markov;
    case ExecutorKind::kAuto:
    case ExecutorKind::kMonteCarlo:
      break;
  }
  UST_CHECK(kind == ExecutorKind::kMonteCarlo);
  return monte_carlo;
}

ExecutorKind PlanExecutor(QueryKind query, size_t num_candidates,
                          size_t num_participants, size_t interval_length,
                          size_t num_worlds, int k,
                          const PlannerOptions& options) {
  if (options.force != ExecutorKind::kAuto) return options.force;
  // PCNN validates timestamp *sets* against one shared world sample
  // (Algorithm 1); only the sampling backend provides that table.
  if (query == QueryKind::kContinuous) return ExecutorKind::kMonteCarlo;
  (void)k;
  // Effective Monte-Carlo parallelism: chunks are a fixed 512 worlds, so
  // extra workers beyond num_worlds/512 have no chunk to run. Enumeration
  // gets no parallel credit here — its block count depends on per-object
  // world counts the planner cannot see — so a parallel tier scales the
  // precision bar exact must clear: MC that is `mc_par`× faster needs
  // `mc_par`× the worlds before enumeration breaks even again.
  const size_t mc_par =
      std::min<size_t>(std::max<size_t>(1, options.assumed_parallelism),
                       std::max<size_t>(1, num_worlds / 512));
  // Enumeration cost is exponential in the participant count and interval
  // length but independent of the requested precision; it wins only when the
  // filter output is tiny and the precision request is not trivially small.
  if (num_candidates <= options.exact_max_candidates &&
      num_participants <= options.exact_max_participants &&
      interval_length <= options.exact_max_interval &&
      num_worlds >= options.exact_min_precision * mc_par) {
    return ExecutorKind::kExact;
  }
  return ExecutorKind::kMonteCarlo;
}

}  // namespace ust
