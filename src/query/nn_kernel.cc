#include "query/nn_kernel.h"

#include <algorithm>

#include "util/check.h"

namespace ust {

void MarkNearestNeighbors(const StateSpace& space,
                          const std::vector<WorldTrajectory>& participants,
                          const QueryTrajectory& q, const TimeInterval& T,
                          int k, uint8_t* is_nn) {
  UST_CHECK(k >= 1);
  const size_t n = participants.size();
  const size_t len = T.length();
  std::vector<double> dists(n);
  std::vector<double> alive_dists;
  alive_dists.reserve(n);
  for (Tic t = T.start; t <= T.end; ++t) {
    const size_t rel = static_cast<size_t>(t - T.start);
    alive_dists.clear();
    for (size_t i = 0; i < n; ++i) {
      dists[i] = WorldSquaredDistance(space, participants[i], q, t);
      if (dists[i] != std::numeric_limits<double>::infinity()) {
        alive_dists.push_back(dists[i]);
      }
    }
    double kth = std::numeric_limits<double>::infinity();
    if (!alive_dists.empty()) {
      const size_t kk = std::min<size_t>(static_cast<size_t>(k),
                                         alive_dists.size());
      std::nth_element(alive_dists.begin(), alive_dists.begin() + (kk - 1),
                       alive_dists.end());
      kth = alive_dists[kk - 1];
    }
    for (size_t i = 0; i < n; ++i) {
      is_nn[i * len + rel] =
          (dists[i] <= kth &&
           dists[i] != std::numeric_limits<double>::infinity())
              ? 1
              : 0;
    }
  }
}

}  // namespace ust
