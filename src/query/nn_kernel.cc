#include "query/nn_kernel.h"

#include <algorithm>

#include "util/check.h"

namespace ust {

void MarkNearestNeighbors(const StateSpace& space,
                          const std::vector<WorldTrajectory>& participants,
                          const QueryTrajectory& q, const TimeInterval& T,
                          int k, uint8_t* is_nn) {
  UST_CHECK(k >= 1);
  const size_t n = participants.size();
  const size_t len = T.length();
  std::vector<double> dists(n);
  std::vector<double> alive_dists;
  if (k > 1) alive_dists.reserve(n);
  for (Tic t = T.start; t <= T.end; ++t) {
    const size_t rel = static_cast<size_t>(t - T.start);
    const Point2& qt = q.At(t);  // hoisted out of the participant loop
    auto dist2 = [&](const WorldTrajectory& wt) {
      if (!wt.CoversTic(t)) return std::numeric_limits<double>::infinity();
      return SquaredDistance(space.coord(wt.traj.At(t)), qt);
    };
    double kth = std::numeric_limits<double>::infinity();
    if (k == 1) {
      // Fast path: the k-th smallest is just the minimum.
      for (size_t i = 0; i < n; ++i) {
        dists[i] = dist2(participants[i]);
        if (dists[i] < kth) kth = dists[i];
      }
    } else {
      alive_dists.clear();
      for (size_t i = 0; i < n; ++i) {
        dists[i] = dist2(participants[i]);
        if (dists[i] != std::numeric_limits<double>::infinity()) {
          alive_dists.push_back(dists[i]);
        }
      }
      if (!alive_dists.empty()) {
        const size_t kk = std::min<size_t>(static_cast<size_t>(k),
                                           alive_dists.size());
        std::nth_element(alive_dists.begin(), alive_dists.begin() + (kk - 1),
                         alive_dists.end());
        kth = alive_dists[kk - 1];
      }
    }
    for (size_t i = 0; i < n; ++i) {
      is_nn[i * len + rel] =
          (dists[i] <= kth &&
           dists[i] != std::numeric_limits<double>::infinity())
              ? 1
              : 0;
    }
  }
}

}  // namespace ust
