#include "query/snapshot.h"

#include <algorithm>

#include "util/check.h"

namespace ust {

namespace {

// Distance distribution of one object at a fixed tic: sorted squared
// distances with suffix probability sums, supporting
// P(d >= x) = SurvivalAtLeast(x).
struct DistanceDistribution {
  std::vector<double> dist2;        // ascending
  std::vector<double> suffix_prob;  // suffix_prob[i] = P(dist2 >= dist2[i])
  bool alive = false;

  double SurvivalAtLeast(double x) const {
    if (!alive) return 1.0;  // a dead object never undercuts anyone
    auto it = std::lower_bound(dist2.begin(), dist2.end(), x);
    if (it == dist2.end()) return 0.0;
    return suffix_prob[static_cast<size_t>(it - dist2.begin())];
  }
};

}  // namespace

Result<std::vector<double>> SnapshotNnProbabilities(
    const TrajectoryDatabase& db, const std::vector<ObjectId>& participants,
    const QueryTrajectory& q, Tic t) {
  if (!q.Covers(t)) {
    return Status::InvalidArgument("query trajectory does not cover tic");
  }
  const Point2& qt = q.At(t);
  const size_t n = participants.size();
  std::vector<DistanceDistribution> dists(n);
  std::vector<SparseDist> marginals(n);
  for (size_t i = 0; i < n; ++i) {
    const UncertainObject& obj = db.object(participants[i]);
    if (!obj.AliveAt(t)) continue;
    auto posterior = obj.Posterior();
    if (!posterior.ok()) return posterior.status();
    marginals[i] = posterior.value()->MarginalAt(t);
    auto& dd = dists[i];
    dd.alive = true;
    std::vector<std::pair<double, double>> pairs;  // (dist2, prob)
    pairs.reserve(marginals[i].size());
    for (size_t j = 0; j < marginals[i].size(); ++j) {
      pairs.push_back({SquaredDistance(db.space().coord(marginals[i].ids()[j]),
                                       qt),
                       marginals[i].probs()[j]});
    }
    std::sort(pairs.begin(), pairs.end());
    dd.dist2.reserve(pairs.size());
    dd.suffix_prob.assign(pairs.size(), 0.0);
    for (const auto& [d2, p] : pairs) dd.dist2.push_back(d2);
    double acc = 0.0;
    for (size_t j = pairs.size(); j-- > 0;) {
      acc += pairs[j].second;
      dd.suffix_prob[j] = acc;
    }
  }
  std::vector<double> win(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    if (!dists[i].alive) continue;
    double total = 0.0;
    for (size_t m = 0; m < marginals[i].size(); ++m) {
      double d2 = SquaredDistance(db.space().coord(marginals[i].ids()[m]), qt);
      double others = 1.0;
      for (size_t j = 0; j < n && others > 0.0; ++j) {
        if (j == i) continue;
        others *= dists[j].SurvivalAtLeast(d2);
      }
      total += marginals[i].probs()[m] * others;
    }
    win[i] = total;
  }
  return win;
}

Result<std::vector<PnnEstimate>> SnapshotEstimatePnn(
    const TrajectoryDatabase& db, const std::vector<ObjectId>& participants,
    const QueryTrajectory& q, const TimeInterval& T) {
  if (!T.valid()) return Status::InvalidArgument("empty query interval");
  const size_t n = participants.size();
  std::vector<double> forall(n, 1.0), miss(n, 1.0);
  for (Tic t = T.start; t <= T.end; ++t) {
    auto win = SnapshotNnProbabilities(db, participants, q, t);
    if (!win.ok()) return win.status();
    for (size_t i = 0; i < n; ++i) {
      forall[i] *= win.value()[i];
      miss[i] *= 1.0 - win.value()[i];
    }
  }
  std::vector<PnnEstimate> estimates;
  estimates.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    estimates.push_back({participants[i], forall[i], 1.0 - miss[i]});
  }
  return estimates;
}

}  // namespace ust
