// Reusable dense scratch space for sparse-distribution propagation and the
// group-normalize kernel of the forward-backward adaptation.
//
// The previous implementation materialized a (key, member, value) triple
// vector per tic and sorted it (O(E log E) plus an allocation per tic). The
// workspace replaces this with epoch-tagged scatter-accumulate into arrays
// sized |S|: per-key sums and counts accumulate in O(E), only the touched
// keys (the diamond width W << |S|) are sorted, and the arrays persist
// across tics and across objects, so the steady-state propagation performs
// no allocation at all.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "state/state_space.h"

namespace ust {

/// \brief Epoch-tagged dense accumulator over state ids.
///
/// Usage: BeginScatter(num_states), Add(key, value) per nonzero, then
/// SortTouched() to obtain the sorted unique keys; per-key sums/counts are
/// read back with sum()/count(). BuildRanks() additionally records each
/// touched key's position in the sorted key list for O(1) id-to-index
/// remapping (replacing per-entry binary searches).
class PropagateWorkspace {
 public:
  static constexpr uint32_t kNoRank = static_cast<uint32_t>(-1);

  PropagateWorkspace() = default;
  explicit PropagateWorkspace(size_t num_states) { Reserve(num_states); }

  /// Grow the dense arrays to cover ids in [0, num_states).
  void Reserve(size_t num_states) {
    if (num_states > epoch_.size()) {
      sum_.resize(num_states, 0.0);
      cnt_.resize(num_states, 0);
      rank_.resize(num_states, kNoRank);
      epoch_.resize(num_states, 0);
    }
  }

  /// Start a new scatter round (invalidates previous sums in O(1)).
  void BeginScatter(size_t num_states) {
    Reserve(num_states);
    touched_.clear();
    if (++epoch_cur_ == 0) {  // epoch counter wrapped: hard reset tags
      std::fill(epoch_.begin(), epoch_.end(), 0);
      epoch_cur_ = 1;
    }
  }

  /// Accumulate `value` onto `key`.
  void Add(StateId key, double value) {
    if (epoch_[key] != epoch_cur_) {
      epoch_[key] = epoch_cur_;
      sum_[key] = value;
      cnt_[key] = 1;
      touched_.push_back(key);
    } else {
      sum_[key] += value;
      ++cnt_[key];
    }
  }

  /// Sort the touched keys ascending and return them. O(W log W) on the
  /// number of *unique* keys, not the number of scattered entries.
  const std::vector<StateId>& SortTouched() {
    std::sort(touched_.begin(), touched_.end());
    return touched_;
  }

  const std::vector<StateId>& touched() const { return touched_; }
  double sum(StateId key) const { return sum_[key]; }
  uint32_t count(StateId key) const { return cnt_[key]; }
  bool was_touched(StateId key) const { return epoch_[key] == epoch_cur_; }

  /// Record rank(key) = position within the sorted touched keys. Keys with
  /// non-positive sum get kNoRank (numerically extinct, dropped by
  /// GroupNormalize); ranks count only the kept keys.
  /// Returns the number of kept keys.
  uint32_t BuildRanks() {
    uint32_t next = 0;
    for (StateId key : touched_) {
      rank_[key] = sum_[key] > 0.0 ? next++ : kNoRank;
    }
    return next;
  }

  uint32_t rank(StateId key) const { return rank_[key]; }

 private:
  std::vector<double> sum_;
  std::vector<uint32_t> cnt_;
  std::vector<uint32_t> rank_;
  std::vector<uint32_t> epoch_;
  std::vector<StateId> touched_;
  uint32_t epoch_cur_ = 0;
  // Pass-2 cursors of GroupNormalize (sized by kept keys, reused).
  std::vector<uint32_t> fill_;

  template <typename MemberT>
  friend void GroupNormalize(const std::vector<StateId>&,
                             const std::vector<MemberT>&,
                             const std::vector<double>&, PropagateWorkspace*,
                             std::vector<StateId>*, std::vector<double>*,
                             std::vector<uint32_t>*, std::vector<MemberT>*,
                             std::vector<double>*);
};

/// \brief Group (key, member, value) triples (given as parallel arrays) by
/// key: emits the sorted unique keys, their value sums, and CSR rows of
/// members with values normalized per key. Keys whose sum is <= 0 are
/// dropped. Members keep their input order within each row.
///
/// Two O(E) passes over the input plus one O(W log W) sort of the unique
/// keys — replacing the former sort of all E triples.
template <typename MemberT>
void GroupNormalize(const std::vector<StateId>& keys,
                    const std::vector<MemberT>& members,
                    const std::vector<double>& values, PropagateWorkspace* ws,
                    std::vector<StateId>* out_keys,
                    std::vector<double>* out_sums,
                    std::vector<uint32_t>* out_offsets,
                    std::vector<MemberT>* out_members,
                    std::vector<double>* out_values) {
  out_keys->clear();
  out_sums->clear();
  out_offsets->clear();
  out_members->clear();
  out_values->clear();
  out_offsets->push_back(0);
  // Pass 1: per-key sums and counts.
  size_t max_key = 0;
  for (StateId key : keys) max_key = std::max<size_t>(max_key, key);
  ws->BeginScatter(keys.empty() ? 0 : max_key + 1);
  for (size_t i = 0; i < keys.size(); ++i) ws->Add(keys[i], values[i]);
  const std::vector<StateId>& sorted = ws->SortTouched();
  const uint32_t kept = ws->BuildRanks();
  out_keys->reserve(kept);
  out_sums->reserve(kept);
  out_offsets->reserve(kept + 1);
  uint32_t running = 0;
  for (StateId key : sorted) {
    if (ws->rank(key) == PropagateWorkspace::kNoRank) continue;
    out_keys->push_back(key);
    out_sums->push_back(ws->sum(key));
    running += ws->count(key);
    out_offsets->push_back(running);
  }
  // Pass 2: stable counting-sort scatter of the members into their rows.
  out_members->resize(running);
  out_values->resize(running);
  ws->fill_.assign(kept, 0);
  for (size_t i = 0; i < keys.size(); ++i) {
    const uint32_t r = ws->rank(keys[i]);
    if (r == PropagateWorkspace::kNoRank) continue;
    const uint32_t pos = (*out_offsets)[r] + ws->fill_[r]++;
    (*out_members)[pos] = members[i];
    (*out_values)[pos] = values[i] / (*out_sums)[r];
  }
}

}  // namespace ust
