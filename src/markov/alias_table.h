// Walker/Vose alias tables: O(n) preprocessing of a discrete distribution
// into two arrays, after which each sample costs one uniform draw and two
// array lookups. The Monte-Carlo estimators draw thousands of worlds from
// every posterior, so the build cost amortizes away and the per-step cost
// drops from a linear CDF scan to O(1).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace ust {

/// \brief Alias table over one discrete distribution of `size()` outcomes.
///
/// Build() accepts unnormalized non-negative weights (at least one > 0).
/// Sample() uses a single uniform draw: the integer part picks the slot, the
/// fractional part decides between the slot and its alias.
class AliasTable {
 public:
  AliasTable() = default;

  /// Preprocess `w[0..n)`; previous contents are discarded.
  void Build(const double* w, size_t n);
  void Build(const std::vector<double>& w) { Build(w.data(), w.size()); }

  size_t size() const { return prob_.size(); }
  bool empty() const { return prob_.empty(); }

  /// Draw an outcome index in [0, size()). Table must be non-empty.
  uint32_t Sample(Rng& rng) const {
    const size_t n = prob_.size();
    const double u = rng.Uniform() * static_cast<double>(n);
    uint32_t k = static_cast<uint32_t>(u);
    if (k >= n) k = static_cast<uint32_t>(n - 1);  // fp guard (u ~ n)
    return (u - static_cast<double>(k)) < prob_[k] ? k : alias_[k];
  }

 private:
  std::vector<double> prob_;     ///< acceptance threshold per slot
  std::vector<uint32_t> alias_;  ///< fallback outcome per slot
};

namespace internal {

/// Vose's algorithm over `w[0..n)` writing into `prob`/`alias` (both size n,
/// alias indices local to this span). `small_scratch`/`large_scratch` are
/// caller-provided work stacks, cleared on entry, so per-row builds (e.g.
/// PosteriorModel::EnsureSamplers fusing one table per CSR row) reuse them
/// across rows.
void BuildAliasSpan(const double* w, size_t n, double* prob, uint32_t* alias,
                    std::vector<uint32_t>* small_scratch,
                    std::vector<uint32_t>* large_scratch,
                    std::vector<double>* scaled_scratch);

}  // namespace internal

}  // namespace ust
