// Sparse probability distributions over states. Distribution vectors of
// uncertain objects are extremely sparse (their support is bounded by the
// reachability "diamond" between observations), so all model computations
// operate on sorted (state, probability) vectors rather than dense arrays.
//
// Layout: structure-of-arrays — a sorted id array and an aligned probability
// array — so probability-only passes (Mass, Normalize, L1Distance, CDF
// walks) stream over contiguous doubles without dragging the ids through
// the cache.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "state/state_space.h"
#include "util/rng.h"

namespace ust {

/// \brief Sparse distribution vector: ids sorted ascending, all
/// probabilities > 0 (zero entries are dropped by Normalize/Compact).
class SparseDist {
 public:
  /// Construction-time convenience pair (the storage itself is SoA).
  using Entry = std::pair<StateId, double>;

  SparseDist() = default;
  /// Entries need not be sorted; duplicates are merged.
  explicit SparseDist(std::vector<Entry> entries);

  /// Adopt parallel arrays that are already sorted by id with unique ids.
  static SparseDist FromSorted(std::vector<StateId> ids,
                               std::vector<double> probs);

  /// Point mass at `s`.
  static SparseDist Indicator(StateId s);

  /// Uniform distribution over `states` (must be non-empty unless empty dist
  /// is desired).
  static SparseDist Uniform(const std::vector<StateId>& states);

  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }

  /// Sorted state ids (aligned with probs()).
  const std::vector<StateId>& ids() const { return ids_; }
  /// Probabilities aligned with ids().
  const std::vector<double>& probs() const { return probs_; }

  /// Probability of state `s` (0 when absent).
  double Prob(StateId s) const;

  /// Sum of all probabilities.
  double Mass() const;

  /// Scale so the mass becomes 1. No-op on the empty distribution.
  void Normalize();

  /// Remove entries with probability <= eps, then renormalize.
  void Compact(double eps = 0.0);

  /// Support as a sorted state vector.
  std::vector<StateId> Support() const;

  /// Draw a state proportionally to probability. Mass must be > 0.
  StateId Sample(Rng& rng) const;

  /// L1 distance between two distributions (total variation * 2).
  static double L1Distance(const SparseDist& a, const SparseDist& b);

  /// Expected Euclidean distance from a fixed point under this distribution.
  double ExpectedDistanceTo(const StateSpace& space, const Point2& p) const;

 private:
  std::vector<StateId> ids_;
  std::vector<double> probs_;
};

}  // namespace ust
