#include "markov/sparse_dist.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace ust {

SparseDist::SparseDist(std::vector<Entry> entries) : entries_(std::move(entries)) {
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) { return a.first < b.first; });
  // Merge duplicates in place.
  size_t out = 0;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (out > 0 && entries_[out - 1].first == entries_[i].first) {
      entries_[out - 1].second += entries_[i].second;
    } else {
      entries_[out++] = entries_[i];
    }
  }
  entries_.resize(out);
}

SparseDist SparseDist::Indicator(StateId s) {
  SparseDist d;
  d.entries_.push_back({s, 1.0});
  return d;
}

SparseDist SparseDist::Uniform(const std::vector<StateId>& states) {
  SparseDist d;
  if (states.empty()) return d;
  double p = 1.0 / static_cast<double>(states.size());
  d.entries_.reserve(states.size());
  for (StateId s : states) d.entries_.push_back({s, p});
  std::sort(d.entries_.begin(), d.entries_.end());
  return d;
}

double SparseDist::Prob(StateId s) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), s,
      [](const Entry& e, StateId v) { return e.first < v; });
  if (it != entries_.end() && it->first == s) return it->second;
  return 0.0;
}

double SparseDist::Mass() const {
  double m = 0.0;
  for (const auto& [s, p] : entries_) m += p;
  return m;
}

void SparseDist::Normalize() {
  double m = Mass();
  if (m <= 0.0) return;
  for (auto& [s, p] : entries_) p /= m;
}

void SparseDist::Compact(double eps) {
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [eps](const Entry& e) { return e.second <= eps; }),
                 entries_.end());
  Normalize();
}

std::vector<StateId> SparseDist::Support() const {
  std::vector<StateId> support;
  support.reserve(entries_.size());
  for (const auto& [s, p] : entries_) support.push_back(s);
  return support;
}

StateId SparseDist::Sample(Rng& rng) const {
  UST_CHECK(!entries_.empty());
  double m = Mass();
  UST_CHECK(m > 0.0);
  double u = rng.Uniform() * m;
  double acc = 0.0;
  for (const auto& [s, p] : entries_) {
    acc += p;
    if (u < acc) return s;
  }
  return entries_.back().first;
}

double SparseDist::L1Distance(const SparseDist& a, const SparseDist& b) {
  double sum = 0.0;
  size_t i = 0, j = 0;
  while (i < a.entries_.size() || j < b.entries_.size()) {
    if (j >= b.entries_.size() ||
        (i < a.entries_.size() && a.entries_[i].first < b.entries_[j].first)) {
      sum += std::abs(a.entries_[i].second);
      ++i;
    } else if (i >= a.entries_.size() ||
               b.entries_[j].first < a.entries_[i].first) {
      sum += std::abs(b.entries_[j].second);
      ++j;
    } else {
      sum += std::abs(a.entries_[i].second - b.entries_[j].second);
      ++i;
      ++j;
    }
  }
  return sum;
}

double SparseDist::ExpectedDistanceTo(const StateSpace& space,
                                      const Point2& p) const {
  double sum = 0.0;
  for (const auto& [s, prob] : entries_) {
    sum += prob * Distance(p, space.coord(s));
  }
  return sum;
}

}  // namespace ust
