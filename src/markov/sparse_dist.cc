#include "markov/sparse_dist.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace ust {

SparseDist::SparseDist(std::vector<Entry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.first < b.first; });
  ids_.reserve(entries.size());
  probs_.reserve(entries.size());
  for (const auto& [s, p] : entries) {
    if (!ids_.empty() && ids_.back() == s) {
      probs_.back() += p;  // merge duplicates
    } else {
      ids_.push_back(s);
      probs_.push_back(p);
    }
  }
}

SparseDist SparseDist::FromSorted(std::vector<StateId> ids,
                                  std::vector<double> probs) {
  UST_DCHECK(ids.size() == probs.size());
  UST_DCHECK(std::is_sorted(ids.begin(), ids.end()));
  SparseDist d;
  d.ids_ = std::move(ids);
  d.probs_ = std::move(probs);
  return d;
}

SparseDist SparseDist::Indicator(StateId s) {
  SparseDist d;
  d.ids_.push_back(s);
  d.probs_.push_back(1.0);
  return d;
}

SparseDist SparseDist::Uniform(const std::vector<StateId>& states) {
  SparseDist d;
  if (states.empty()) return d;
  d.ids_ = states;
  std::sort(d.ids_.begin(), d.ids_.end());
  d.probs_.assign(d.ids_.size(), 1.0 / static_cast<double>(d.ids_.size()));
  return d;
}

double SparseDist::Prob(StateId s) const {
  auto it = std::lower_bound(ids_.begin(), ids_.end(), s);
  if (it != ids_.end() && *it == s) {
    return probs_[static_cast<size_t>(it - ids_.begin())];
  }
  return 0.0;
}

double SparseDist::Mass() const {
  double m = 0.0;
  for (double p : probs_) m += p;
  return m;
}

void SparseDist::Normalize() {
  double m = Mass();
  if (m <= 0.0) return;
  for (double& p : probs_) p /= m;
}

void SparseDist::Compact(double eps) {
  size_t out = 0;
  for (size_t i = 0; i < ids_.size(); ++i) {
    if (probs_[i] > eps) {
      ids_[out] = ids_[i];
      probs_[out] = probs_[i];
      ++out;
    }
  }
  ids_.resize(out);
  probs_.resize(out);
  Normalize();
}

std::vector<StateId> SparseDist::Support() const { return ids_; }

StateId SparseDist::Sample(Rng& rng) const {
  UST_CHECK(!ids_.empty());
  double m = Mass();
  UST_CHECK(m > 0.0);
  double u = rng.Uniform() * m;
  double acc = 0.0;
  for (size_t i = 0; i < probs_.size(); ++i) {
    acc += probs_[i];
    if (u < acc) return ids_[i];
  }
  return ids_.back();
}

double SparseDist::L1Distance(const SparseDist& a, const SparseDist& b) {
  double sum = 0.0;
  size_t i = 0, j = 0;
  while (i < a.size() || j < b.size()) {
    if (j >= b.size() || (i < a.size() && a.ids_[i] < b.ids_[j])) {
      sum += std::abs(a.probs_[i]);
      ++i;
    } else if (i >= a.size() || b.ids_[j] < a.ids_[i]) {
      sum += std::abs(b.probs_[j]);
      ++j;
    } else {
      sum += std::abs(a.probs_[i] - b.probs_[j]);
      ++i;
      ++j;
    }
  }
  return sum;
}

double SparseDist::ExpectedDistanceTo(const StateSpace& space,
                                      const Point2& p) const {
  double sum = 0.0;
  for (size_t i = 0; i < ids_.size(); ++i) {
    sum += probs_[i] * Distance(p, space.coord(ids_[i]));
  }
  return sum;
}

}  // namespace ust
