#include "markov/builders.h"

#include <algorithm>
#include <unordered_map>

#include "util/check.h"

namespace ust {

Result<TransitionMatrix> DistanceInverseMatrix(const StateSpace& space,
                                               const CsrGraph& graph,
                                               double self_loop_fraction) {
  if (graph.num_nodes() != space.size()) {
    return Status::InvalidArgument("graph/state-space size mismatch");
  }
  if (self_loop_fraction < 0.0 || self_loop_fraction >= 1.0) {
    return Status::InvalidArgument("self_loop_fraction must be in [0, 1)");
  }
  const size_t n = space.size();
  std::vector<std::vector<TransitionMatrix::Entry>> rows(n);
  for (StateId s = 0; s < n; ++s) {
    double total = 0.0;
    auto& row = rows[s];
    for (const Edge* e = graph.begin(s); e != graph.end(s); ++e) {
      if (e->to == s) continue;  // self-loop handled below
      double len = space.Distance(s, e->to);
      double w = 1.0 / std::max(len, 1e-9);
      row.push_back({e->to, w});
      total += w;
    }
    if (row.empty()) {
      row.push_back({s, 1.0});  // isolated node: stays put
      continue;
    }
    double edge_mass = 1.0 - self_loop_fraction;
    for (auto& [to, p] : row) p = p / total * edge_mass;
    if (self_loop_fraction > 0.0) row.push_back({s, self_loop_fraction});
  }
  return TransitionMatrix::FromRows(n, std::move(rows));
}

Result<TransitionMatrix> LearnTransitionMatrix(
    const StateSpace& space, const CsrGraph& graph,
    const std::vector<std::vector<StateId>>& trajectories, double alpha) {
  if (graph.num_nodes() != space.size()) {
    return Status::InvalidArgument("graph/state-space size mismatch");
  }
  if (alpha < 0.0) {
    return Status::InvalidArgument("smoothing alpha must be >= 0");
  }
  const size_t n = space.size();
  // Transition counts, keyed (from, to); kept sparse.
  std::vector<std::unordered_map<StateId, double>> counts(n);
  for (const auto& traj : trajectories) {
    for (size_t i = 0; i + 1 < traj.size(); ++i) {
      UST_CHECK(traj[i] < n && traj[i + 1] < n);
      counts[traj[i]][traj[i + 1]] += 1.0;
    }
  }
  std::vector<std::vector<TransitionMatrix::Entry>> rows(n);
  for (StateId s = 0; s < n; ++s) {
    auto& row = rows[s];
    // Support: graph neighbors plus self-loop.
    double total = 0.0;
    bool has_self = false;
    for (const Edge* e = graph.begin(s); e != graph.end(s); ++e) {
      if (e->to == s) has_self = true;
      auto it = counts[s].find(e->to);
      double c = (it == counts[s].end() ? 0.0 : it->second) + alpha;
      row.push_back({e->to, c});
      total += c;
    }
    if (!has_self) {
      auto it = counts[s].find(s);
      double c = (it == counts[s].end() ? 0.0 : it->second) + alpha;
      row.push_back({s, c});
      total += c;
    }
    if (total <= 0.0) {
      row.clear();
      row.push_back({s, 1.0});
      continue;
    }
    for (auto& [to, p] : row) p /= total;
  }
  return TransitionMatrix::FromRows(n, std::move(rows));
}

}  // namespace ust
