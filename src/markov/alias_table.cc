#include "markov/alias_table.h"

#include "util/check.h"

namespace ust {

namespace internal {

void BuildAliasSpan(const double* w, size_t n, double* prob, uint32_t* alias,
                    std::vector<uint32_t>* small_scratch,
                    std::vector<uint32_t>* large_scratch,
                    std::vector<double>* scaled_scratch) {
  UST_CHECK(n > 0);
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    UST_DCHECK(w[i] >= 0.0);
    sum += w[i];
  }
  UST_CHECK(sum > 0.0);

  scaled_scratch->resize(n);
  double* scaled = scaled_scratch->data();
  const double scale = static_cast<double>(n) / sum;
  for (size_t i = 0; i < n; ++i) scaled[i] = w[i] * scale;

  small_scratch->clear();
  large_scratch->clear();
  for (size_t i = n; i-- > 0;) {
    if (scaled[i] < 1.0) {
      small_scratch->push_back(static_cast<uint32_t>(i));
    } else {
      large_scratch->push_back(static_cast<uint32_t>(i));
    }
  }
  while (!small_scratch->empty() && !large_scratch->empty()) {
    const uint32_t s = small_scratch->back();
    small_scratch->pop_back();
    const uint32_t g = large_scratch->back();
    prob[s] = scaled[s];
    alias[s] = g;
    scaled[g] = (scaled[g] + scaled[s]) - 1.0;
    if (scaled[g] < 1.0) {
      large_scratch->pop_back();
      small_scratch->push_back(g);
    }
  }
  // Leftovers on either stack are 1 up to rounding: always accept.
  for (uint32_t g : *large_scratch) {
    prob[g] = 1.0;
    alias[g] = g;
  }
  for (uint32_t s : *small_scratch) {
    prob[s] = 1.0;
    alias[s] = s;
  }
}

}  // namespace internal

void AliasTable::Build(const double* w, size_t n) {
  prob_.resize(n);
  alias_.resize(n);
  std::vector<uint32_t> small_scratch, large_scratch;
  std::vector<double> scaled_scratch;
  internal::BuildAliasSpan(w, n, prob_.data(), alias_.data(), &small_scratch,
                           &large_scratch, &scaled_scratch);
}

}  // namespace ust
