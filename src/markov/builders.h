// Constructors of a-priori transition matrices:
//  * DistanceInverseMatrix — the synthetic-data model of Section 7: edge
//    probability indirectly proportional to edge length, plus a self-loop.
//  * LearnTransitionMatrix — the real-data model of Section 7: turning
//    probabilities aggregated from training trajectories.
#pragma once

#include <vector>

#include "graph/csr_graph.h"
#include "markov/transition_matrix.h"
#include "state/state_space.h"

namespace ust {

/// \brief Distance-inverse a-priori model over a spatial network.
///
/// For each node, every outgoing edge (u, v) receives weight 1/len(u, v)
/// (capped for degenerate zero-length edges) and the node receives a
/// self-loop with `self_loop_fraction` of the total probability mass.
/// Self-loops let objects absorb slack time (standing taxis, traffic), and
/// guarantee that any i >= shortest-path-length observation spacing is
/// consistent with the model.
Result<TransitionMatrix> DistanceInverseMatrix(const StateSpace& space,
                                               const CsrGraph& graph,
                                               double self_loop_fraction = 0.1);

/// \brief Learn turning probabilities from observed state sequences.
///
/// Counts transitions in `trajectories` (each a per-tic state sequence) and
/// normalizes per source state. Laplace smoothing `alpha` is applied over the
/// support of `graph` (plus self-loop) so unseen-but-possible turns keep
/// nonzero probability — without it, held-out trajectories would contradict
/// the learned model. States never visited fall back to the uniform
/// distribution over their graph neighbors.
Result<TransitionMatrix> LearnTransitionMatrix(
    const StateSpace& space, const CsrGraph& graph,
    const std::vector<std::vector<StateId>>& trajectories, double alpha = 0.5);

}  // namespace ust
