#include "markov/transition_matrix.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/check.h"

namespace ust {

Result<TransitionMatrix> TransitionMatrix::FromRows(
    size_t num_states, std::vector<std::vector<Entry>> rows, double tolerance) {
  if (rows.size() != num_states) {
    return Status::InvalidArgument("row count does not match state count");
  }
  TransitionMatrix m;
  m.row_offsets_.reserve(num_states + 1);
  m.row_offsets_.push_back(0);
  size_t total = 0;
  for (const auto& row : rows) total += std::max<size_t>(row.size(), 1);
  m.entries_.reserve(total);
  for (StateId s = 0; s < num_states; ++s) {
    auto& row = rows[s];
    if (row.empty()) {
      m.entries_.push_back({s, 1.0});  // absorbing state: implicit self-loop
      m.row_offsets_.push_back(m.entries_.size());
      continue;
    }
    std::sort(row.begin(), row.end());
    double sum = 0.0;
    for (size_t i = 0; i < row.size(); ++i) {
      if (row[i].first >= num_states) {
        return Status::InvalidArgument("transition target out of range");
      }
      if (row[i].second < 0.0) {
        return Status::InvalidArgument("negative transition probability");
      }
      if (i > 0 && row[i].first == row[i - 1].first) {
        return Status::InvalidArgument("duplicate transition target in row " +
                                       std::to_string(s));
      }
      sum += row[i].second;
    }
    if (std::abs(sum - 1.0) > tolerance) {
      return Status::InvalidArgument("row " + std::to_string(s) +
                                     " does not sum to 1 (sum=" +
                                     std::to_string(sum) + ")");
    }
    // Renormalize exactly to reduce drift over long chains.
    for (auto& [to, p] : row) p /= sum;
    m.entries_.insert(m.entries_.end(), row.begin(), row.end());
    m.row_offsets_.push_back(m.entries_.size());
  }
  return m;
}

double TransitionMatrix::Prob(StateId from, StateId to) const {
  const Entry* lo = begin(from);
  const Entry* hi = end(from);
  auto it = std::lower_bound(lo, hi, to, [](const Entry& e, StateId v) {
    return e.first < v;
  });
  if (it != hi && it->first == to) return it->second;
  return 0.0;
}

SparseDist TransitionMatrix::Propagate(const SparseDist& dist) const {
  PropagateWorkspace ws(num_states());
  return Propagate(dist, &ws);
}

SparseDist TransitionMatrix::Propagate(const SparseDist& dist,
                                       PropagateWorkspace* ws) const {
  ws->BeginScatter(num_states());
  const std::vector<StateId>& from_ids = dist.ids();
  const std::vector<double>& from_probs = dist.probs();
  for (size_t i = 0; i < from_ids.size(); ++i) {
    const double p = from_probs[i];
    for (const Entry* e = begin(from_ids[i]); e != end(from_ids[i]); ++e) {
      ws->Add(e->first, e->second * p);
    }
  }
  const std::vector<StateId>& touched = ws->SortTouched();
  std::vector<StateId> ids(touched);
  std::vector<double> probs;
  probs.reserve(ids.size());
  for (StateId s : ids) probs.push_back(ws->sum(s));
  return SparseDist::FromSorted(std::move(ids), std::move(probs));
}

CsrGraph TransitionMatrix::SupportGraph() const {
  std::vector<std::vector<Edge>> adj(num_states());
  for (StateId s = 0; s < num_states(); ++s) {
    adj[s].reserve(row_size(s));
    for (const Entry* e = begin(s); e != end(s); ++e) {
      adj[s].push_back({e->first, e->second});
    }
  }
  return CsrGraph::FromAdjacency(adj);
}

TransitionMatrix TransitionMatrix::Uniformized() const {
  TransitionMatrix m;
  m.row_offsets_ = row_offsets_;
  m.entries_ = entries_;
  for (StateId s = 0; s < num_states(); ++s) {
    size_t n = row_size(s);
    double p = 1.0 / static_cast<double>(n);
    for (size_t i = row_offsets_[s]; i < row_offsets_[s + 1]; ++i) {
      m.entries_[i].second = p;
    }
  }
  return m;
}

}  // namespace ust
