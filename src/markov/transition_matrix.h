// Row-sparse stochastic transition matrices M_ij = P(o(t+1) = s_j | o(t) = s_i)
// (Section 3.1 of the paper). The experiments of the paper use one
// time-homogeneous matrix shared by all objects; this class models that case.
// Time-inhomogeneity enters through the forward-backward adaptation, which
// produces per-tic matrices (see model/posterior_model.h).
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "graph/csr_graph.h"
#include "markov/propagate_workspace.h"
#include "markov/sparse_dist.h"
#include "state/state_space.h"
#include "util/status.h"

namespace ust {

/// \brief Immutable row-stochastic sparse matrix over a state space.
class TransitionMatrix {
 public:
  using Entry = std::pair<StateId, double>;  ///< (target state, probability)

  TransitionMatrix() = default;

  /// Build from per-row entry lists. Rows are sorted by target id.
  /// Fails unless every non-empty row sums to 1 within `tolerance`
  /// (empty rows are treated as absorbing and get an implicit self-loop).
  static Result<TransitionMatrix> FromRows(
      size_t num_states, std::vector<std::vector<Entry>> rows,
      double tolerance = 1e-9);

  size_t num_states() const {
    return row_offsets_.empty() ? 0 : row_offsets_.size() - 1;
  }
  size_t num_nonzeros() const { return entries_.size(); }

  /// Row of `s` as a contiguous span.
  const Entry* begin(StateId s) const {
    return entries_.data() + row_offsets_[s];
  }
  const Entry* end(StateId s) const {
    return entries_.data() + row_offsets_[s + 1];
  }
  size_t row_size(StateId s) const {
    return row_offsets_[s + 1] - row_offsets_[s];
  }

  /// P(o(t+1) = to | o(t) = from); 0 when no entry exists.
  double Prob(StateId from, StateId to) const;

  /// One forward time transition: returns M^T * dist (sparse).
  /// The overload without a workspace allocates a transient one; loops
  /// should pass a reused workspace to stay allocation-free.
  SparseDist Propagate(const SparseDist& dist) const;
  SparseDist Propagate(const SparseDist& dist, PropagateWorkspace* ws) const;

  /// Support graph: an edge per nonzero entry (weight = probability).
  CsrGraph SupportGraph() const;

  /// Same support, but probabilities replaced by a uniform distribution over
  /// each row (the paper's FBU ablation in Figure 12).
  TransitionMatrix Uniformized() const;

 private:
  std::vector<size_t> row_offsets_;
  std::vector<Entry> entries_;
};

/// Shared ownership alias: many objects reference one matrix.
using TransitionMatrixPtr = std::shared_ptr<const TransitionMatrix>;

}  // namespace ust
