#include "markov/transition_model.h"

#include <algorithm>

namespace ust {

Result<PiecewiseModel> PiecewiseModel::Create(
    std::vector<std::pair<Tic, TransitionMatrixPtr>> pieces) {
  if (pieces.empty()) {
    return Status::InvalidArgument("piecewise model needs >= 1 piece");
  }
  for (const auto& [tic, matrix] : pieces) {
    if (matrix == nullptr) {
      return Status::InvalidArgument("null matrix in piecewise model");
    }
  }
  const size_t n = pieces.front().second->num_states();
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (pieces[i].second->num_states() != n) {
      return Status::InvalidArgument(
          "piecewise model matrices disagree on the state space size");
    }
    if (i > 0 && pieces[i].first <= pieces[i - 1].first) {
      return Status::InvalidArgument(
          "piecewise model switch tics must be strictly increasing");
    }
  }
  PiecewiseModel model;
  model.pieces_ = std::move(pieces);
  return model;
}

const TransitionMatrix& PiecewiseModel::At(Tic t) const {
  // Last piece whose switch tic is <= t (first piece covers earlier tics).
  auto it = std::upper_bound(
      pieces_.begin(), pieces_.end(), t,
      [](Tic v, const auto& piece) { return v < piece.first; });
  if (it == pieces_.begin()) return *pieces_.front().second;
  return *(it - 1)->second;
}

}  // namespace ust
