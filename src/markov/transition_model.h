// Time-inhomogeneous a-priori models. The paper defines one transition
// matrix M^o(t) per object *and* tic (Section 3.1) — the NP-hardness proof
// of Lemma 1 explicitly builds time-inhomogeneous chains. The experiments
// use a single shared homogeneous matrix; both cases implement this
// interface, and the forward-backward adaptation accepts either.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "markov/transition_matrix.h"
#include "state/state_space.h"
#include "util/status.h"

namespace ust {

/// \brief A-priori motion model: which transition matrix governs the step
/// from tic `t` to `t + 1`.
class TransitionModel {
 public:
  virtual ~TransitionModel() = default;

  /// Matrix applied to the transition t -> t+1.
  virtual const TransitionMatrix& At(Tic t) const = 0;

  /// Size of the state space (identical for all tics).
  virtual size_t num_states() const = 0;
};

/// \brief The homogeneous case: one matrix for all tics.
class HomogeneousModel final : public TransitionModel {
 public:
  explicit HomogeneousModel(TransitionMatrixPtr matrix)
      : matrix_(std::move(matrix)) {}

  const TransitionMatrix& At(Tic) const override { return *matrix_; }
  size_t num_states() const override { return matrix_->num_states(); }

 private:
  TransitionMatrixPtr matrix_;
};

/// \brief Piecewise-constant inhomogeneous model: matrix `i` governs all
/// transitions from tics in [switch_tic[i], switch_tic[i+1]).
class PiecewiseModel final : public TransitionModel {
 public:
  /// `pieces` = (first tic the matrix applies to, matrix), strictly
  /// increasing tics, all matrices over the same state space. Transitions
  /// before the first switch tic use the first matrix.
  static Result<PiecewiseModel> Create(
      std::vector<std::pair<Tic, TransitionMatrixPtr>> pieces);

  const TransitionMatrix& At(Tic t) const override;
  size_t num_states() const override {
    return pieces_.front().second->num_states();
  }

  size_t num_pieces() const { return pieces_.size(); }

 private:
  std::vector<std::pair<Tic, TransitionMatrixPtr>> pieces_;
};

}  // namespace ust
