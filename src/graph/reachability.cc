#include "graph/reachability.h"

#include <algorithm>

#include "util/check.h"

namespace ust {

std::vector<std::vector<StateId>> ForwardReachability(const CsrGraph& graph,
                                                      StateId source,
                                                      int steps) {
  UST_CHECK(source < graph.num_nodes());
  UST_CHECK(steps >= 0);
  std::vector<std::vector<StateId>> result;
  result.reserve(steps + 1);
  result.push_back({source});
  std::vector<char> mark(graph.num_nodes(), 0);
  for (int k = 1; k <= steps; ++k) {
    std::vector<StateId> next;
    for (StateId v : result[k - 1]) {
      for (const Edge* e = graph.begin(v); e != graph.end(v); ++e) {
        if (!mark[e->to]) {
          mark[e->to] = 1;
          next.push_back(e->to);
        }
      }
    }
    std::sort(next.begin(), next.end());
    for (StateId v : next) mark[v] = 0;
    result.push_back(std::move(next));
  }
  return result;
}

std::vector<std::vector<StateId>> DiamondReachability(const CsrGraph& graph,
                                                      const CsrGraph& reversed,
                                                      StateId from, StateId to,
                                                      int steps) {
  auto fwd = ForwardReachability(graph, from, steps);
  auto bwd = ForwardReachability(reversed, to, steps);
  std::vector<std::vector<StateId>> diamond(steps + 1);
  for (int k = 0; k <= steps; ++k) {
    const auto& a = fwd[k];
    const auto& b = bwd[steps - k];
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(diamond[k]));
  }
  return diamond;
}

}  // namespace ust
