// Dijkstra shortest paths. The synthetic workload generator models object
// motion as shortest paths between waypoints (Section 7, "Artificial Data").
#pragma once

#include <vector>

#include "graph/csr_graph.h"
#include "util/status.h"

namespace ust {

/// \brief Shortest path from `source` to `target`.
///
/// Returns the node sequence including both endpoints, or NotFound when
/// `target` is unreachable. Edge weights must be non-negative.
Result<std::vector<StateId>> ShortestPath(const CsrGraph& graph, StateId source,
                                          StateId target);

/// \brief Single-source shortest path distances (hop count uses weight 1).
///
/// Entries unreachable from `source` hold +infinity.
std::vector<double> ShortestDistances(const CsrGraph& graph, StateId source);

}  // namespace ust
