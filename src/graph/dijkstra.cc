#include "graph/dijkstra.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/check.h"

namespace ust {

namespace {
struct QueueEntry {
  double dist;
  StateId node;
  bool operator>(const QueueEntry& other) const { return dist > other.dist; }
};
}  // namespace

Result<std::vector<StateId>> ShortestPath(const CsrGraph& graph,
                                          StateId source, StateId target) {
  const size_t n = graph.num_nodes();
  UST_CHECK(source < n && target < n);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(n, kInf);
  std::vector<StateId> parent(n, kInvalidState);
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> pq;
  dist[source] = 0.0;
  pq.push({0.0, source});
  while (!pq.empty()) {
    auto [d, v] = pq.top();
    pq.pop();
    if (d > dist[v]) continue;
    if (v == target) break;
    for (const Edge* e = graph.begin(v); e != graph.end(v); ++e) {
      UST_DCHECK(e->weight >= 0.0);
      double nd = d + e->weight;
      if (nd < dist[e->to]) {
        dist[e->to] = nd;
        parent[e->to] = v;
        pq.push({nd, e->to});
      }
    }
  }
  if (dist[target] == kInf) {
    return Status::NotFound("target unreachable from source");
  }
  std::vector<StateId> path;
  for (StateId v = target; v != kInvalidState; v = parent[v]) path.push_back(v);
  std::reverse(path.begin(), path.end());
  UST_DCHECK(path.front() == source);
  return path;
}

std::vector<double> ShortestDistances(const CsrGraph& graph, StateId source) {
  const size_t n = graph.num_nodes();
  UST_CHECK(source < n);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(n, kInf);
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> pq;
  dist[source] = 0.0;
  pq.push({0.0, source});
  while (!pq.empty()) {
    auto [d, v] = pq.top();
    pq.pop();
    if (d > dist[v]) continue;
    for (const Edge* e = graph.begin(v); e != graph.end(v); ++e) {
      double nd = d + e->weight;
      if (nd < dist[e->to]) {
        dist[e->to] = nd;
        pq.push({nd, e->to});
      }
    }
  }
  return dist;
}

}  // namespace ust
