#include "graph/csr_graph.h"

namespace ust {

CsrGraph CsrGraph::FromAdjacency(const std::vector<std::vector<Edge>>& adj) {
  CsrGraph g;
  g.row_offsets_.reserve(adj.size() + 1);
  g.row_offsets_.push_back(0);
  size_t total = 0;
  for (const auto& edges : adj) total += edges.size();
  g.edges_.reserve(total);
  for (const auto& edges : adj) {
    g.edges_.insert(g.edges_.end(), edges.begin(), edges.end());
    g.row_offsets_.push_back(g.edges_.size());
  }
  return g;
}

bool CsrGraph::HasEdge(StateId v, StateId u) const {
  for (const Edge* e = begin(v); e != end(v); ++e) {
    if (e->to == u) return true;
  }
  return false;
}

CsrGraph CsrGraph::Reversed() const {
  std::vector<std::vector<Edge>> adj(num_nodes());
  for (StateId v = 0; v < num_nodes(); ++v) {
    for (const Edge* e = begin(v); e != end(v); ++e) {
      adj[e->to].push_back({v, e->weight});
    }
  }
  return FromAdjacency(adj);
}

}  // namespace ust
