// Weighted directed graph in compressed-sparse-row form. This is the network
// substrate for both workload generators (objects move along edges, one hop
// per tic) and the support structure of the a-priori Markov chain: transition
// matrices have nonzeros exactly on graph edges (plus self-loops).
#pragma once

#include <cstdint>
#include <vector>

#include "state/state_space.h"
#include "util/status.h"

namespace ust {

/// \brief One outgoing edge.
struct Edge {
  StateId to;
  double weight;  ///< length/cost for shortest paths
};

/// \brief Immutable CSR adjacency structure over StateIds.
class CsrGraph {
 public:
  CsrGraph() = default;

  /// Build from per-node adjacency lists; `adj.size()` is the node count.
  static CsrGraph FromAdjacency(const std::vector<std::vector<Edge>>& adj);

  size_t num_nodes() const {
    return row_offsets_.empty() ? 0 : row_offsets_.size() - 1;
  }
  size_t num_edges() const { return edges_.size(); }

  /// Outgoing edges of `v` as a contiguous span.
  const Edge* begin(StateId v) const { return edges_.data() + row_offsets_[v]; }
  const Edge* end(StateId v) const {
    return edges_.data() + row_offsets_[v + 1];
  }
  size_t degree(StateId v) const {
    return row_offsets_[v + 1] - row_offsets_[v];
  }

  /// True when an edge v -> u exists.
  bool HasEdge(StateId v, StateId u) const;

  /// Average out-degree over all nodes.
  double AverageDegree() const {
    return num_nodes() == 0
               ? 0.0
               : static_cast<double>(num_edges()) / static_cast<double>(num_nodes());
  }

  /// The reverse graph (edge directions flipped, weights kept).
  CsrGraph Reversed() const;

 private:
  std::vector<size_t> row_offsets_;
  std::vector<Edge> edges_;
};

}  // namespace ust
