// Per-step reachability sets over a graph (transition-matrix support).
// These are the "diamonds" of the UST-tree (Section 6): the states an object
// can occupy at tic t between two observations are the intersection of the
// forward-reachable set from the earlier observation and the
// backward-reachable set from the later one.
#pragma once

#include <vector>

#include "graph/csr_graph.h"
#include "state/state_space.h"

namespace ust {

/// \brief Sets of states reachable in exactly 0, 1, ..., `steps` transitions
/// from `source` (index k holds the k-step set, each sorted ascending).
std::vector<std::vector<StateId>> ForwardReachability(const CsrGraph& graph,
                                                      StateId source,
                                                      int steps);

/// \brief The per-tic "diamond" between two observations:
/// result[k] = {states reachable from `from` in k steps AND able to reach
/// `to` in (steps - k) steps}, k = 0..steps. `reversed` must be
/// graph.Reversed(). Empty sets indicate contradicting observations.
std::vector<std::vector<StateId>> DiamondReachability(const CsrGraph& graph,
                                                      const CsrGraph& reversed,
                                                      StateId from, StateId to,
                                                      int steps);

}  // namespace ust
