// UST-tree (Emrich et al., CIKM 2012 [25]) as used for spatial pruning in
// Section 6: for every pair of consecutive observations of an object, the
// set of possibly visited (location, time) pairs — the reachability
// "diamond" — is bounded by a minimum bounding rectangle over the time
// interval, and all such rectangles are indexed in an R*-tree.
//
// Query-time pruning computes, per query tic t, each object's dmin/dmax to
// q(t) from its covering rectangles and derives:
//   C∀(q) = {o alive throughout T : ∀t ∈ T, dmin_o(t) <= min_o' dmax_o'(t)}
//   I∀(q) = {o : ∃t ∈ T, dmin_o(t) <= min_o' dmax_o'(t)}
// For P∃NNQ no candidate/influence distinction exists: every object in I may
// be a result. The pruning distance generalizes to the k-th smallest dmax
// for kNN queries (Section 8).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "index/rstar_tree.h"
#include "model/trajectory_database.h"
#include "query/query.h"
#include "util/status.h"

namespace ust {

/// \brief Pruning output: result candidates and influence objects.
struct PruneResult {
  std::vector<ObjectId> candidates;   ///< may satisfy the query predicate
  std::vector<ObjectId> influencers;  ///< may affect others' probabilities
};

/// \brief The UST-tree index over an uncertain trajectory database.
class UstTree {
 public:
  /// One leaf rectangle: an object's conservative (space x time) bound
  /// between two consecutive observations.
  struct SegmentEntry {
    ObjectId object;
    Tic t_lo, t_hi;
    Rect2 mbr;
  };

  /// Build diamonds for every observation segment of every object.
  /// Reachability is computed on the support of each object's a-priori
  /// matrix, so the bound is conservative (independent of probabilities).
  /// The tree pins the snapshot it was built over (a live database converts
  /// to its current epoch); built_version() identifies that epoch so serving
  /// code can detect a stale index after online writes.
  static Result<UstTree> Build(const DbSnapshot& db);
  static Result<UstTree> Build(const DbSnapshot& db,
                               RStarTree::Options options);

  /// Epoch of the snapshot this tree indexes. Pruning against a database at
  /// a different version may miss objects — callers must not pass this tree
  /// to sessions over other epochs (QuerySession drops a mismatched index).
  uint64_t built_version() const { return db_.version(); }

  /// \brief Reusable index-traversal state for one query time interval: the
  /// segment rectangles overlapping T, grouped per object (sorted by id).
  /// Pruning only depends on the query trajectory beyond this, so a batch of
  /// queries sharing T walks the R*-tree once and prunes from the slab.
  struct TimeSlab {
    TimeInterval T{0, 0};
    std::vector<std::pair<ObjectId, std::vector<const SegmentEntry*>>>
        per_object;
  };

  /// Collect the slab of `T` (one R*-tree traversal).
  TimeSlab MakeTimeSlab(const TimeInterval& T) const;

  /// Candidates and influencers for P∀(k)NN queries. When `slab` is given it
  /// must have been built for the same T; the traversal is then skipped.
  PruneResult PruneForall(const QueryTrajectory& q, const TimeInterval& T,
                          int k = 1, const TimeSlab* slab = nullptr) const;

  /// Candidates (== influencers) for P∃(k)NN queries.
  PruneResult PruneExists(const QueryTrajectory& q, const TimeInterval& T,
                          int k = 1, const TimeSlab* slab = nullptr) const;

  const std::vector<SegmentEntry>& entries() const { return entries_; }
  const RStarTree& rtree() const { return rtree_; }

  /// Per-object dmin/dmax profile over T, +inf where the object is not
  /// alive. Exposed for white-box tests; not part of the stable API.
  struct DistanceProfile {
    ObjectId object;
    Tic first_tic, last_tic;  // object alive span
    std::vector<double> dmin, dmax;  // indexed by t - T.start
  };

 private:
  UstTree(RStarTree::Options options) : rtree_(options) {}

  std::vector<DistanceProfile> BuildProfiles(const QueryTrajectory& q,
                                             const TimeInterval& T,
                                             const TimeSlab* slab) const;

  std::vector<SegmentEntry> entries_;
  RStarTree rtree_;
  Rect2 space_bounds_;
  /// The indexed epoch (snapshots are cheap: two shared_ptrs + a version).
  DbSnapshot db_;
};

}  // namespace ust
