// UST-tree (Emrich et al., CIKM 2012 [25]) as used for spatial pruning in
// Section 6: for every pair of consecutive observations of an object, the
// set of possibly visited (location, time) pairs — the reachability
// "diamond" — is bounded by a minimum bounding rectangle over the time
// interval, and all such rectangles are indexed in an R*-tree.
//
// Query-time pruning computes, per query tic t, each object's dmin/dmax to
// q(t) from its covering rectangles and derives:
//   C∀(q) = {o alive throughout T : ∀t ∈ T, dmin_o(t) <= min_o' dmax_o'(t)}
//   I∀(q) = {o : ∃t ∈ T, dmin_o(t) <= min_o' dmax_o'(t)}
// For P∃NNQ no candidate/influence distinction exists: every object in I may
// be a result. The pruning distance generalizes to the k-th smallest dmax
// for kNN queries (Section 8).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "graph/csr_graph.h"
#include "index/rstar_tree.h"
#include "model/trajectory_database.h"
#include "query/query.h"
#include "util/status.h"

namespace ust {

class UstDelta;

/// \brief Pruning output: result candidates and influence objects.
struct PruneResult {
  std::vector<ObjectId> candidates;   ///< may satisfy the query predicate
  std::vector<ObjectId> influencers;  ///< may affect others' probabilities
};

/// \brief Forward/reversed support-graph pair per transition matrix, shared
/// between objects using the same matrix while building segment entries
/// (computing the pair dominates build cost for shared-matrix databases).
struct SupportGraphCache {
  const std::pair<CsrGraph, CsrGraph>& For(const TransitionMatrix& matrix);

 private:
  std::map<const TransitionMatrix*, std::pair<CsrGraph, CsrGraph>> graphs_;
};

/// \brief The UST-tree index over an uncertain trajectory database.
class UstTree {
 public:
  /// One leaf rectangle: an object's conservative (space x time) bound
  /// between two consecutive observations.
  struct SegmentEntry {
    ObjectId object;
    Tic t_lo, t_hi;
    Rect2 mbr;
  };

  /// Build diamonds for every observation segment of every object.
  /// Reachability is computed on the support of each object's a-priori
  /// matrix, so the bound is conservative (independent of probabilities).
  /// The tree pins the snapshot it was built over (a live database converts
  /// to its current epoch); built_version() identifies that epoch so serving
  /// code can detect a stale index after online writes.
  static Result<UstTree> Build(const DbSnapshot& db);
  static Result<UstTree> Build(const DbSnapshot& db,
                               RStarTree::Options options);

  /// Epoch of the snapshot this tree indexes. Pruning against a database at
  /// a different version may miss objects — callers must not pass this tree
  /// to sessions over other epochs (QuerySession drops a mismatched index).
  uint64_t built_version() const { return db_.version(); }

  /// \brief Reusable index-traversal state for one query time interval: the
  /// segment rectangles overlapping T, grouped per object (sorted by id).
  /// Pruning only depends on the query trajectory beyond this, so a batch of
  /// queries sharing T walks the R*-tree once and prunes from the slab.
  struct TimeSlab {
    TimeInterval T{0, 0};
    std::vector<std::pair<ObjectId, std::vector<const SegmentEntry*>>>
        per_object;
  };

  /// Collect the slab of `T` (one R*-tree traversal).
  TimeSlab MakeTimeSlab(const TimeInterval& T) const;

  /// Candidates and influencers for P∀(k)NN queries. When `slab` is given it
  /// must have been built for the same T; the traversal is then skipped.
  /// When `delta` is given (an UstDelta over this tree's epoch), its objects
  /// are probed alongside the base slab — delta segment entries replace the
  /// base entries of rewritten objects, so the result is bit-identical to
  /// pruning with a tree rebuilt at the delta's epoch.
  PruneResult PruneForall(const QueryTrajectory& q, const TimeInterval& T,
                          int k = 1, const TimeSlab* slab = nullptr,
                          const UstDelta* delta = nullptr) const;

  /// Candidates (== influencers) for P∃(k)NN queries.
  PruneResult PruneExists(const QueryTrajectory& q, const TimeInterval& T,
                          int k = 1, const TimeSlab* slab = nullptr,
                          const UstDelta* delta = nullptr) const;

  const std::vector<SegmentEntry>& entries() const { return entries_; }
  const RStarTree& rtree() const { return rtree_; }

  /// Per-object dmin/dmax profile over T, +inf where the object is not
  /// alive. Exposed for white-box tests; not part of the stable API.
  struct DistanceProfile {
    ObjectId object;
    Tic first_tic, last_tic;  // object alive span
    std::vector<double> dmin, dmax;  // indexed by t - T.start
  };

 private:
  UstTree(RStarTree::Options options) : rtree_(options) {}

  std::vector<DistanceProfile> BuildProfiles(const QueryTrajectory& q,
                                             const TimeInterval& T,
                                             const TimeSlab* slab,
                                             const UstDelta* delta) const;

  std::vector<SegmentEntry> entries_;
  RStarTree rtree_;
  Rect2 space_bounds_;
  /// The indexed epoch (snapshots are cheap: two shared_ptrs + a version).
  /// Stored WithoutIndex(): a compacted tree must not transitively pin the
  /// base tree (and change log) of the snapshot it was built from.
  DbSnapshot db_;
};

/// \brief Append the segment entries (diamond MBRs, plus the forward cone for
/// a lifetime extension) of one object to `out`, in the same order
/// UstTree::Build produces them. Shared between full builds and the delta
/// layer so a delta's rectangles are bit-identical to a rebuilt tree's.
Status AppendObjectSegments(const DbSnapshot& db, const UncertainObject& obj,
                            SupportGraphCache* graphs,
                            std::vector<UstTree::SegmentEntry>* out);

}  // namespace ust
