#include "index/ust_tree.h"

#include <algorithm>
#include <limits>

#include "graph/reachability.h"
#include "index/ust_delta.h"

#include "util/check.h"

namespace ust {

const std::pair<CsrGraph, CsrGraph>& SupportGraphCache::For(
    const TransitionMatrix& matrix) {
  auto it = graphs_.find(&matrix);
  if (it == graphs_.end()) {
    CsrGraph forward = matrix.SupportGraph();
    CsrGraph reversed = forward.Reversed();
    it = graphs_
             .emplace(&matrix,
                      std::make_pair(std::move(forward), std::move(reversed)))
             .first;
  }
  return it->second;
}

Status AppendObjectSegments(const DbSnapshot& db, const UncertainObject& obj,
                            SupportGraphCache* graphs,
                            std::vector<UstTree::SegmentEntry>* out) {
  const auto& [forward, reversed] = graphs->For(obj.matrix());
  const auto& items = obj.observations().items();
  if (items.size() == 1 && obj.last_tic() == items[0].time) {
    UstTree::SegmentEntry entry;
    entry.object = obj.id();
    entry.t_lo = entry.t_hi = items[0].time;
    const Point2& p = db.space().coord(items[0].state);
    entry.mbr = MakeRect2(p.x, p.y, p.x, p.y);
    out->push_back(entry);
    return Status::OK();
  }
  for (size_t i = 0; i + 1 < items.size(); ++i) {
    const int steps = static_cast<int>(items[i + 1].time - items[i].time);
    auto diamond = DiamondReachability(forward, reversed, items[i].state,
                                       items[i + 1].state, steps);
    Rect2 mbr;
    bool contradiction = false;
    for (const auto& slice : diamond) {
      if (slice.empty()) {
        contradiction = true;
        break;
      }
      for (StateId s : slice) {
        const Point2& p = db.space().coord(s);
        mbr.Extend({p.x, p.y});
      }
    }
    if (contradiction) {
      return Status::Contradiction(
          "object " + std::to_string(obj.id()) +
          " has contradicting observations in segment " + std::to_string(i));
    }
    UstTree::SegmentEntry entry;
    entry.object = obj.id();
    entry.t_lo = items[i].time;
    entry.t_hi = items[i + 1].time;
    entry.mbr = mbr;
    out->push_back(entry);
  }
  // Lifetime extension past the last observation: the bound is the plain
  // forward-reachable cone (no later observation caps it).
  if (obj.last_tic() > items.back().time) {
    const int steps = static_cast<int>(obj.last_tic() - items.back().time);
    auto cone = ForwardReachability(forward, items.back().state, steps);
    Rect2 mbr;
    for (const auto& slice : cone) {
      for (StateId s : slice) {
        const Point2& p = db.space().coord(s);
        mbr.Extend({p.x, p.y});
      }
    }
    UstTree::SegmentEntry entry;
    entry.object = obj.id();
    entry.t_lo = items.back().time;
    entry.t_hi = obj.last_tic();
    entry.mbr = mbr;
    out->push_back(entry);
  }
  return Status::OK();
}

Result<UstTree> UstTree::Build(const DbSnapshot& db) {
  return Build(db, RStarTree::Options());
}

Result<UstTree> UstTree::Build(const DbSnapshot& db,
                               RStarTree::Options options) {
  UstTree tree(options);
  tree.db_ = db.WithoutIndex();
  tree.space_bounds_ = db.space().BoundingBox();
  // Support graphs are shared between objects using the same matrix.
  SupportGraphCache graphs;
  std::vector<SegmentEntry> segments;
  for (size_t obj_index = 0; obj_index < db.size(); ++obj_index) {
    const UncertainObject& obj = db.object(static_cast<ObjectId>(obj_index));
    segments.clear();
    UST_RETURN_NOT_OK(AppendObjectSegments(db, obj, &graphs, &segments));
    for (const SegmentEntry& entry : segments) {
      tree.rtree_.Insert(WithTimeInterval(entry.mbr, entry.t_lo, entry.t_hi),
                         tree.entries_.size());
      tree.entries_.push_back(entry);
    }
  }
  return tree;
}

UstTree::TimeSlab UstTree::MakeTimeSlab(const TimeInterval& T) const {
  // Fetch all segment rectangles overlapping the query time slab through the
  // R*-tree (prunes by time; space is left open since dmax bounds require
  // every alive object).
  Rect3 slab_box = WithTimeInterval(space_bounds_, static_cast<double>(T.start),
                                    static_cast<double>(T.end));
  std::vector<uint64_t> hits = rtree_.Query(slab_box);
  std::map<ObjectId, std::vector<const SegmentEntry*>> per_object;
  for (uint64_t idx : hits) {
    const SegmentEntry& e = entries_[idx];
    per_object[e.object].push_back(&e);
  }
  TimeSlab slab;
  slab.T = T;
  slab.per_object.reserve(per_object.size());
  for (auto& [object, segments] : per_object) {
    slab.per_object.emplace_back(object, std::move(segments));
  }
  return slab;
}

std::vector<UstTree::DistanceProfile> UstTree::BuildProfiles(
    const QueryTrajectory& q, const TimeInterval& T, const TimeSlab* slab,
    const UstDelta* delta) const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const size_t len = T.length();
  TimeSlab local;
  if (slab == nullptr) {
    local = MakeTimeSlab(T);
    slab = &local;
  }
  UST_DCHECK(slab->T == T);

  // Accumulate one covering rectangle into a profile (tighter bound wins
  // where rectangles overlap a tic).
  auto accumulate = [&](DistanceProfile* profile, const SegmentEntry& seg) {
    Tic lo = std::max(T.start, seg.t_lo);
    Tic hi = std::min(T.end, seg.t_hi);
    for (Tic t = lo; t <= hi; ++t) {
      const size_t rel = static_cast<size_t>(t - T.start);
      double dmin = MinDistance(q.At(t), seg.mbr);
      double dmax = MaxDistance(q.At(t), seg.mbr);
      // Multiple rectangles can cover an observation tic; both bounds hold,
      // so keep the tighter of each.
      if (profile->dmin[rel] == kInf) {
        profile->dmin[rel] = dmin;
        profile->dmax[rel] = dmax;
      } else {
        profile->dmin[rel] = std::max(profile->dmin[rel], dmin);
        profile->dmax[rel] = std::min(profile->dmax[rel], dmax);
      }
    }
  };

  std::vector<DistanceProfile> profiles;
  profiles.reserve(slab->per_object.size() +
                   (delta == nullptr ? 0 : delta->objects().size()));

  // Emit the profile of one delta object if its lifetime overlaps T. Delta
  // entries tile the whole lifetime, so the overlap test matches exactly the
  // set of objects a rebuilt tree's slab traversal would surface.
  auto emit_delta = [&](const UstDelta::DeltaObject& d) {
    if (d.first_tic > T.end || d.last_tic < T.start) return;
    DistanceProfile profile;
    profile.object = d.object;
    profile.first_tic = d.first_tic;
    profile.last_tic = d.last_tic;
    profile.dmin.assign(len, kInf);
    profile.dmax.assign(len, kInf);
    for (const SegmentEntry& seg : d.entries) {
      if (seg.t_lo > T.end || seg.t_hi < T.start) continue;
      accumulate(&profile, seg);
    }
    profiles.push_back(std::move(profile));
  };

  // Merge the (id-sorted) base slab with the (id-sorted) delta objects.
  // Delta objects replace their base counterparts outright: a rewritten
  // object's base rectangles describe its pre-write lifetime and are stale.
  size_t di = 0;
  const size_t dn = delta == nullptr ? 0 : delta->objects().size();
  for (const auto& [object, segments] : slab->per_object) {
    while (di < dn && delta->objects()[di].object < object) {
      emit_delta(delta->objects()[di++]);
    }
    if (di < dn && delta->objects()[di].object == object) {
      emit_delta(delta->objects()[di++]);
      continue;
    }
    DistanceProfile profile;
    profile.object = object;
    const UncertainObject& obj = db_.object(object);
    profile.first_tic = obj.first_tic();
    profile.last_tic = obj.last_tic();
    profile.dmin.assign(len, kInf);
    profile.dmax.assign(len, kInf);
    for (const SegmentEntry* seg : segments) accumulate(&profile, *seg);
    profiles.push_back(std::move(profile));
  }
  while (di < dn) emit_delta(delta->objects()[di++]);
  return profiles;
}

namespace {

// k-th smallest finite dmax at each tic; +inf where fewer than k objects are
// alive (then nothing can be pruned at that tic).
std::vector<double> PruningDistances(
    const std::vector<UstTree::DistanceProfile>& profiles, size_t len, int k) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> prune(len, kInf);
  std::vector<double> values;
  for (size_t rel = 0; rel < len; ++rel) {
    values.clear();
    for (const auto& p : profiles) {
      if (p.dmax[rel] != kInf) values.push_back(p.dmax[rel]);
    }
    if (values.size() >= static_cast<size_t>(k)) {
      std::nth_element(values.begin(), values.begin() + (k - 1), values.end());
      prune[rel] = values[k - 1];
    }
  }
  return prune;
}

}  // namespace

PruneResult UstTree::PruneForall(const QueryTrajectory& q,
                                 const TimeInterval& T, int k,
                                 const TimeSlab* slab,
                                 const UstDelta* delta) const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  auto profiles = BuildProfiles(q, T, slab, delta);
  const size_t len = T.length();
  auto prune = PruningDistances(profiles, len, k);
  PruneResult result;
  for (const auto& p : profiles) {
    bool influencer = false;
    bool candidate = p.first_tic <= T.start && p.last_tic >= T.end;
    for (size_t rel = 0; rel < len; ++rel) {
      if (p.dmin[rel] == kInf) continue;  // not alive at this tic
      if (p.dmin[rel] <= prune[rel]) {
        influencer = true;
      } else {
        candidate = false;  // beaten for sure at this tic
      }
    }
    if (candidate && influencer) result.candidates.push_back(p.object);
    if (influencer) result.influencers.push_back(p.object);
  }
  return result;
}

PruneResult UstTree::PruneExists(const QueryTrajectory& q,
                                 const TimeInterval& T, int k,
                                 const TimeSlab* slab,
                                 const UstDelta* delta) const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  auto profiles = BuildProfiles(q, T, slab, delta);
  const size_t len = T.length();
  auto prune = PruningDistances(profiles, len, k);
  PruneResult result;
  for (const auto& p : profiles) {
    for (size_t rel = 0; rel < len; ++rel) {
      if (p.dmin[rel] != kInf && p.dmin[rel] <= prune[rel]) {
        result.candidates.push_back(p.object);
        result.influencers.push_back(p.object);
        break;
      }
    }
  }
  return result;
}

}  // namespace ust
