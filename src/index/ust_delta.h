// Delta index layer for online writes (DESIGN.md section 10): the segment
// rectangles of every object written after a base UstTree's epoch, replayed
// from the database change log. A QuerySession whose admission epoch
// postdates the base tree probes base ∪ delta instead of dropping the index:
// delta entries replace the base entries of rewritten objects, so pruning is
// bit-identical to a tree rebuilt at the session's epoch — and therefore (by
// the pruning soundness argument) to the index-free alive-time fallback.
//
// A delta is a flat per-object list, not a tree: compaction (see
// QueryServer's compaction thread) keeps its depth bounded, so linear probing
// stays cheap while the base R*-tree carries the bulk of the database.
#pragma once

#include <cstdint>
#include <vector>

#include "index/ust_tree.h"
#include "model/db_snapshot.h"
#include "util/status.h"

namespace ust {

/// \brief Flat index over the objects written after a base tree's epoch.
class UstDelta {
 public:
  /// One written object: its post-write lifetime plus the full set of
  /// segment entries a rebuilt tree would hold for it.
  struct DeltaObject {
    ObjectId object;
    Tic first_tic, last_tic;
    std::vector<UstTree::SegmentEntry> entries;
  };

  /// Empty delta (probing it is a no-op).
  UstDelta() = default;

  /// Build the delta covering db's epoch from a base built at
  /// `base_version`. Requires base_version >= db.delta_floor() (older bases
  /// predate the retained change log; callers drop the index instead).
  /// Fails like a full build would (e.g. contradicting observations).
  static Result<UstDelta> Build(const DbSnapshot& db, uint64_t base_version);

  /// True when `id` was rewritten after the base epoch (its base entries are
  /// stale and this delta carries the replacement).
  bool Contains(ObjectId id) const;

  bool empty() const { return objects_.empty(); }
  /// Number of distinct rewritten objects carried.
  size_t depth() const { return objects_.size(); }

  /// Epoch of the base tree this delta patches.
  uint64_t base_version() const { return base_version_; }
  /// Epoch this delta brings the base up to (the snapshot it was built from).
  uint64_t version() const { return version_; }

  /// Rewritten objects, ascending by id.
  const std::vector<DeltaObject>& objects() const { return objects_; }

 private:
  std::vector<DeltaObject> objects_;
  uint64_t base_version_ = 0;
  uint64_t version_ = 0;
};

}  // namespace ust
