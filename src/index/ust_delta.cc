#include "index/ust_delta.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace ust {

Result<UstDelta> UstDelta::Build(const DbSnapshot& db, uint64_t base_version) {
  UstDelta delta;
  delta.base_version_ = base_version;
  delta.version_ = db.version();
  std::vector<ObjectId> ids = db.ChangedSince(base_version);
  delta.objects_.reserve(ids.size());
  SupportGraphCache graphs;
  for (ObjectId id : ids) {
    const UncertainObject& obj = db.object(id);
    DeltaObject d;
    d.object = id;
    d.first_tic = obj.first_tic();
    d.last_tic = obj.last_tic();
    UST_RETURN_NOT_OK(AppendObjectSegments(db, obj, &graphs, &d.entries));
    delta.objects_.push_back(std::move(d));
  }
  return delta;
}

bool UstDelta::Contains(ObjectId id) const {
  auto it = std::lower_bound(
      objects_.begin(), objects_.end(), id,
      [](const DeltaObject& d, ObjectId v) { return d.object < v; });
  return it != objects_.end() && it->object == id;
}

}  // namespace ust
