#include "index/rstar_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "util/check.h"

namespace ust {

RStarTree::RStarTree() : RStarTree(Options()) {}

RStarTree::RStarTree(Options options) : options_(options) {
  UST_CHECK(options_.max_entries >= 4);
  UST_CHECK(options_.min_entries >= 2 &&
            options_.min_entries <= options_.max_entries / 2 + 1);
  root_ = new Node();
}

RStarTree::~RStarTree() {
  if (root_ != nullptr) FreeSubtree(root_);
}

RStarTree::RStarTree(RStarTree&& other) noexcept
    : options_(other.options_), root_(other.root_), size_(other.size_) {
  other.root_ = nullptr;
  other.size_ = 0;
}

RStarTree& RStarTree::operator=(RStarTree&& other) noexcept {
  if (this != &other) {
    if (root_ != nullptr) FreeSubtree(root_);
    options_ = other.options_;
    root_ = other.root_;
    size_ = other.size_;
    other.root_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void RStarTree::FreeSubtree(Node* node) {
  if (!node->leaf()) {
    for (const Entry& e : node->entries) FreeSubtree(e.child);
  }
  delete node;
}

Rect3 RStarTree::NodeBox(const Node* node) {
  Rect3 box;
  for (const Entry& e : node->entries) box.Extend(e.box);
  return box;
}

RStarTree::Entry* RStarTree::ParentEntryOf(Node* node) const {
  Node* parent = node->parent;
  UST_CHECK(parent != nullptr);
  for (Entry& e : parent->entries) {
    if (e.child == node) return &e;
  }
  UST_CHECK(false && "node missing from its parent");
  return nullptr;
}

int RStarTree::height() const { return root_->level; }

RStarTree::Node* RStarTree::ChooseSubtree(const Rect3& box,
                                          int target_level) const {
  Node* node = root_;
  while (node->level > target_level) {
    const bool children_are_leaves = node->level == 1;
    size_t best = 0;
    if (children_are_leaves && target_level == 0) {
      // R* criterion: minimize overlap enlargement; ties by area
      // enlargement, then by area.
      double best_overlap = std::numeric_limits<double>::infinity();
      double best_enlarge = best_overlap, best_area = best_overlap;
      for (size_t i = 0; i < node->entries.size(); ++i) {
        Rect3 enlarged = Rect3::Union(node->entries[i].box, box);
        double overlap_delta = 0.0;
        for (size_t j = 0; j < node->entries.size(); ++j) {
          if (j == i) continue;
          overlap_delta += enlarged.OverlapArea(node->entries[j].box) -
                           node->entries[i].box.OverlapArea(node->entries[j].box);
        }
        double enlarge = node->entries[i].box.Enlargement(box);
        double area = node->entries[i].box.Area();
        if (overlap_delta < best_overlap ||
            (overlap_delta == best_overlap &&
             (enlarge < best_enlarge ||
              (enlarge == best_enlarge && area < best_area)))) {
          best_overlap = overlap_delta;
          best_enlarge = enlarge;
          best_area = area;
          best = i;
        }
      }
    } else {
      // Classic criterion: minimize area enlargement; ties by area.
      double best_enlarge = std::numeric_limits<double>::infinity();
      double best_area = best_enlarge;
      for (size_t i = 0; i < node->entries.size(); ++i) {
        double enlarge = node->entries[i].box.Enlargement(box);
        double area = node->entries[i].box.Area();
        if (enlarge < best_enlarge ||
            (enlarge == best_enlarge && area < best_area)) {
          best_enlarge = enlarge;
          best_area = area;
          best = i;
        }
      }
    }
    node = node->entries[best].child;
  }
  return node;
}

void RStarTree::Insert(const Rect3& box, uint64_t payload) {
  overflow_treated_.assign(static_cast<size_t>(root_->level) + 2, 0);
  Entry entry;
  entry.box = box;
  entry.payload = payload;
  InsertEntry(entry, 0);
  ++size_;
}

void RStarTree::InsertEntry(Entry entry, int target_level) {
  Node* node = ChooseSubtree(entry.box, target_level);
  UST_CHECK(node->level == target_level);
  if (entry.child != nullptr) entry.child->parent = node;
  node->entries.push_back(entry);
  UpdateBoxesUpward(node);
  if (node->entries.size() > options_.max_entries) HandleOverflow(node);
}

void RStarTree::HandleOverflow(Node* node) {
  while (node != nullptr && node->entries.size() > options_.max_entries) {
    const size_t level = static_cast<size_t>(node->level);
    if (node != root_ && options_.forced_reinsert &&
        level < overflow_treated_.size() && !overflow_treated_[level]) {
      overflow_treated_[level] = 1;
      ReinsertEntries(node);
      return;  // reinsertion handles any follow-up overflows recursively
    }
    Node* sibling = SplitNode(node);
    if (node == root_) {
      Node* new_root = new Node();
      new_root->level = node->level + 1;
      Entry left, right;
      left.box = NodeBox(node);
      left.child = node;
      right.box = NodeBox(sibling);
      right.child = sibling;
      new_root->entries = {left, right};
      node->parent = new_root;
      sibling->parent = new_root;
      root_ = new_root;
      if (overflow_treated_.size() < static_cast<size_t>(root_->level) + 2) {
        overflow_treated_.resize(static_cast<size_t>(root_->level) + 2, 0);
      }
      return;
    }
    Node* parent = node->parent;
    Entry* pe = ParentEntryOf(node);
    pe->box = NodeBox(node);
    Entry sibling_entry;
    sibling_entry.box = NodeBox(sibling);
    sibling_entry.child = sibling;
    sibling->parent = parent;
    parent->entries.push_back(sibling_entry);
    UpdateBoxesUpward(parent);
    node = parent;
  }
}

void RStarTree::ReinsertEntries(Node* node) {
  // Remove the p entries whose centers are farthest from the node center and
  // reinsert them (far-reinsert variant of the R* paper).
  const size_t p = std::max<size_t>(
      1, static_cast<size_t>(std::floor(options_.reinsert_fraction *
                                        static_cast<double>(node->entries.size()))));
  Rect3 box = NodeBox(node);
  auto center = box.Center();
  std::vector<std::pair<double, size_t>> by_distance;
  by_distance.reserve(node->entries.size());
  for (size_t i = 0; i < node->entries.size(); ++i) {
    auto c = node->entries[i].box.Center();
    double d2 = 0.0;
    for (int d = 0; d < 3; ++d) d2 += (c[d] - center[d]) * (c[d] - center[d]);
    by_distance.push_back({d2, i});
  }
  std::sort(by_distance.begin(), by_distance.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<Entry> removed;
  std::vector<char> remove_mark(node->entries.size(), 0);
  for (size_t i = 0; i < p; ++i) {
    remove_mark[by_distance[i].second] = 1;
    removed.push_back(node->entries[by_distance[i].second]);
  }
  std::vector<Entry> kept;
  kept.reserve(node->entries.size() - p);
  for (size_t i = 0; i < node->entries.size(); ++i) {
    if (!remove_mark[i]) kept.push_back(node->entries[i]);
  }
  node->entries = std::move(kept);
  UpdateBoxesUpward(node);
  const int level = node->level;
  for (Entry& e : removed) InsertEntry(e, level);
}

RStarTree::Node* RStarTree::SplitNode(Node* node) {
  // R* split: choose the axis minimizing the total margin over all
  // distributions, then the distribution minimizing overlap (ties: area).
  const size_t total = node->entries.size();
  const size_t m = options_.min_entries;
  UST_CHECK(total >= 2 * m);
  int best_axis = 0;
  bool best_axis_by_hi = false;
  double best_margin_sum = std::numeric_limits<double>::infinity();
  std::vector<size_t> order(total);
  for (int axis = 0; axis < 3; ++axis) {
    for (int by_hi = 0; by_hi < 2; ++by_hi) {
      for (size_t i = 0; i < total; ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        const Rect3& ra = node->entries[a].box;
        const Rect3& rb = node->entries[b].box;
        double ka = by_hi ? ra.hi[axis] : ra.lo[axis];
        double kb = by_hi ? rb.hi[axis] : rb.lo[axis];
        return ka < kb;
      });
      double margin_sum = 0.0;
      for (size_t split = m; split <= total - m; ++split) {
        Rect3 left, right;
        for (size_t i = 0; i < split; ++i) left.Extend(node->entries[order[i]].box);
        for (size_t i = split; i < total; ++i) {
          right.Extend(node->entries[order[i]].box);
        }
        margin_sum += left.Margin() + right.Margin();
      }
      if (margin_sum < best_margin_sum) {
        best_margin_sum = margin_sum;
        best_axis = axis;
        best_axis_by_hi = by_hi != 0;
      }
    }
  }
  // Sort along the chosen axis and pick the best distribution.
  for (size_t i = 0; i < total; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const Rect3& ra = node->entries[a].box;
    const Rect3& rb = node->entries[b].box;
    double ka = best_axis_by_hi ? ra.hi[best_axis] : ra.lo[best_axis];
    double kb = best_axis_by_hi ? rb.hi[best_axis] : rb.lo[best_axis];
    return ka < kb;
  });
  size_t best_split = m;
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_area = best_overlap;
  for (size_t split = m; split <= total - m; ++split) {
    Rect3 left, right;
    for (size_t i = 0; i < split; ++i) left.Extend(node->entries[order[i]].box);
    for (size_t i = split; i < total; ++i) {
      right.Extend(node->entries[order[i]].box);
    }
    double overlap = left.OverlapArea(right);
    double area = left.Area() + right.Area();
    if (overlap < best_overlap ||
        (overlap == best_overlap && area < best_area)) {
      best_overlap = overlap;
      best_area = area;
      best_split = split;
    }
  }
  Node* sibling = new Node();
  sibling->level = node->level;
  std::vector<Entry> left_entries, right_entries;
  left_entries.reserve(best_split);
  right_entries.reserve(total - best_split);
  for (size_t i = 0; i < best_split; ++i) {
    left_entries.push_back(node->entries[order[i]]);
  }
  for (size_t i = best_split; i < total; ++i) {
    right_entries.push_back(node->entries[order[i]]);
  }
  node->entries = std::move(left_entries);
  sibling->entries = std::move(right_entries);
  if (!sibling->leaf()) {
    for (Entry& e : sibling->entries) e.child->parent = sibling;
  }
  return sibling;
}

void RStarTree::UpdateBoxesUpward(Node* node) {
  while (node != root_) {
    Entry* pe = ParentEntryOf(node);
    pe->box = NodeBox(node);
    node = node->parent;
  }
}

std::vector<uint64_t> RStarTree::Query(const Rect3& box) const {
  std::vector<uint64_t> out;
  QueryVisit(box, [&out](const Rect3&, uint64_t payload) {
    out.push_back(payload);
  });
  return out;
}

void RStarTree::QueryVisit(
    const Rect3& box,
    const std::function<void(const Rect3&, uint64_t)>& visit) const {
  std::vector<const Node*> stack = {root_};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    for (const Entry& e : node->entries) {
      if (!e.box.Intersects(box)) continue;
      if (node->leaf()) {
        visit(e.box, e.payload);
      } else {
        stack.push_back(e.child);
      }
    }
  }
}

namespace {

// Squared Euclidean distance from a 3-D point to the closest point of a box.
double MinDist2(const std::array<double, 3>& p, const Rect3& box) {
  double d2 = 0.0;
  for (int i = 0; i < 3; ++i) {
    double d = std::max({box.lo[i] - p[i], 0.0, p[i] - box.hi[i]});
    d2 += d * d;
  }
  return d2;
}

}  // namespace

std::vector<std::pair<double, uint64_t>> RStarTree::Nearest(
    const std::array<double, 3>& point, size_t k) const {
  std::vector<std::pair<double, uint64_t>> result;
  if (k == 0 || size_ == 0) return result;
  // Best-first search: expand the frontier element with the smallest box
  // lower bound; a popped data entry is final (its bound is exact).
  struct Frontier {
    double dist2;
    const Node* node;      // nullptr for data entries
    uint64_t payload;
    bool operator>(const Frontier& other) const {
      return dist2 > other.dist2;
    }
  };
  std::priority_queue<Frontier, std::vector<Frontier>, std::greater<>> queue;
  queue.push({0.0, root_, 0});
  while (!queue.empty() && result.size() < k) {
    Frontier top = queue.top();
    queue.pop();
    if (top.node == nullptr) {
      result.push_back({std::sqrt(top.dist2), top.payload});
      continue;
    }
    for (const Entry& e : top.node->entries) {
      double d2 = MinDist2(point, e.box);
      if (top.node->leaf()) {
        queue.push({d2, nullptr, e.payload});
      } else {
        queue.push({d2, e.child, 0});
      }
    }
  }
  return result;
}

Status RStarTree::CheckNode(const Node* node, int expected_leaf_level) const {
  if (node->leaf() && node->level != expected_leaf_level) {
    return Status::Internal("leaves at differing depths");
  }
  if (node != root_ && node->entries.size() < options_.min_entries) {
    return Status::Internal("underfilled node");
  }
  if (node->entries.size() > options_.max_entries) {
    return Status::Internal("overfilled node");
  }
  if (node->leaf()) return Status::OK();
  for (const Entry& e : node->entries) {
    if (e.child->parent != node) {
      return Status::Internal("broken parent pointer");
    }
    if (e.child->level != node->level - 1) {
      return Status::Internal("level mismatch between parent and child");
    }
    Rect3 actual = NodeBox(e.child);
    for (int d = 0; d < 3; ++d) {
      if (actual.lo[d] != e.box.lo[d] || actual.hi[d] != e.box.hi[d]) {
        return Status::Internal("stale bounding box");
      }
    }
    UST_RETURN_NOT_OK(CheckNode(e.child, expected_leaf_level));
  }
  return Status::OK();
}

Status RStarTree::CheckInvariants() const {
  if (root_ == nullptr) return Status::Internal("missing root");
  return CheckNode(root_, 0);
}

}  // namespace ust
