// R*-tree (Beckmann, Kriegel, Schneider, Seeger, SIGMOD 1990) over 3-D
// (x, y, time) boxes — the index substrate of the UST-tree (Section 6).
// Implements the full R* insertion heuristics: ChooseSubtree with minimum
// overlap enlargement at the leaf level, margin-driven split axis selection,
// overlap-driven split distribution selection, and forced reinsertion.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "geo/rect.h"
#include "util/status.h"

namespace ust {

/// \brief R*-tree storing (Rect3, uint64 payload) pairs.
class RStarTree {
 public:
  struct Options {
    size_t max_entries = 16;       ///< node capacity M
    size_t min_entries = 6;        ///< minimum fill m (R*: ~40% of M)
    bool forced_reinsert = true;   ///< R* forced reinsertion on first overflow
    double reinsert_fraction = 0.3;  ///< p = 30% of M entries reinserted
  };

  RStarTree();  ///< default Options
  explicit RStarTree(Options options);
  ~RStarTree();

  RStarTree(const RStarTree&) = delete;
  RStarTree& operator=(const RStarTree&) = delete;
  RStarTree(RStarTree&&) noexcept;
  RStarTree& operator=(RStarTree&&) noexcept;

  /// Insert one data entry.
  void Insert(const Rect3& box, uint64_t payload);

  /// Payloads of all data entries whose box intersects `box`.
  std::vector<uint64_t> Query(const Rect3& box) const;

  /// Visit (box, payload) of intersecting data entries.
  void QueryVisit(const Rect3& box,
                  const std::function<void(const Rect3&, uint64_t)>& visit) const;

  /// The k data entries with smallest Euclidean min-distance between their
  /// box and `point`, ascending (best-first search with box lower bounds).
  /// Fewer than k pairs are returned when the tree is smaller than k.
  std::vector<std::pair<double, uint64_t>> Nearest(
      const std::array<double, 3>& point, size_t k) const;

  size_t size() const { return size_; }
  /// Leaf depth; 0 for a tree that only has the (leaf) root.
  int height() const;

  /// Structural checks for tests: parent boxes cover children exactly, all
  /// leaves at the same depth, fill factors respected (root excepted).
  Status CheckInvariants() const;

 private:
  struct Node;
  struct Entry {
    Rect3 box;
    Node* child = nullptr;   ///< internal nodes
    uint64_t payload = 0;    ///< leaf nodes
  };
  struct Node {
    int level = 0;           ///< 0 = leaf
    Node* parent = nullptr;
    std::vector<Entry> entries;
    bool leaf() const { return level == 0; }
  };

  Node* ChooseSubtree(const Rect3& box, int target_level) const;
  void InsertEntry(Entry entry, int target_level);
  void HandleOverflow(Node* node);
  void ReinsertEntries(Node* node);
  Node* SplitNode(Node* node);
  void UpdateBoxesUpward(Node* node);
  static Rect3 NodeBox(const Node* node);
  Entry* ParentEntryOf(Node* node) const;
  void FreeSubtree(Node* node);
  Status CheckNode(const Node* node, int expected_leaf_level) const;

  Options options_;
  Node* root_ = nullptr;
  size_t size_ = 0;
  std::vector<char> overflow_treated_;  ///< per level, reset per Insert
};

}  // namespace ust
