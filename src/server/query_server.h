// The serving tier's front-end (DESIGN.md section 5): many client threads
// submit single QuerySpecs; a dispatcher thread coalesces them into
// micro-batches under a latency deadline; a fixed pool of *execution lanes*
// runs the batches through the epoch-keyed SessionCache on the PR 2 session
// pipeline.
//
//   Submit(spec) -> future<QueryOutcome>
//     bounded admission: requests beyond `queue_capacity` in flight are
//     rejected immediately with kResourceLimit (backpressure, never
//     blocking).
//   dispatcher
//     flushes a batch when it holds max_batch_size specs or
//     max_batch_delay_ms elapsed since the batch opened, pins the database
//     epoch for the whole batch (db->Snapshot()), groups specs by query
//     interval — and *publishes* each group as a deque of fixed-size
//     spec-range morsels (`morsel_specs` specs each, results committed into
//     pre-sized per-spec slots), returning to the admission window
//     immediately. Flush cadence is therefore independent of batch
//     execution time: one oversized batch can no longer stall the deadline
//     of the batches behind it.
//   lanes (options.lanes threads) — the morsel scheduler (DESIGN.md §5.6)
//     a lane adopts the oldest unadopted group (checking its session out of
//     the SessionCache as a *shared*, refcounted lease) and pops morsels
//     off that group's deque; when its group drains and no group is
//     unadopted, an idle lane *steals the back half* of the most-loaded
//     group's remaining range and works it morsel by morsel. The worst case
//     of the group scheduler — one dominant (epoch, interval) serializing a
//     batch on a single lane while the others idle — thereby becomes its
//     best case: every lane ends up sampling the hot group. Set
//     `steal = false` for the PR 4 group-granularity scheduler (whole
//     groups, exclusive leases, session->RunAll).
//
// Because a query's result is a pure function of (epoch, spec) — the PR 2
// determinism contract — batching, the cache, the thread pool, the lane
// pool, the morsel size and the steal schedule never change a bit of any
// outcome: every spec is executed exactly once into its own slot by
// QuerySession::RunMorsel (itself bit-identical to Run at any pool size),
// so Submit(spec).get() equals a serial QuerySession::Run(spec) over the
// same epoch at ANY {lanes, morsel_specs, steal} configuration.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <condition_variable>

#include "model/trajectory_database.h"
#include "server/overload.h"
#include "server/session_cache.h"
#include "util/metrics.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace ust {

/// \brief Serving-tier knobs.
struct ServerOptions {
  /// Execution lanes: batches for distinct (epoch, interval) keys run
  /// concurrently on this many worker threads. 1 reproduces the PR 3
  /// behavior (single execution stream), just off the dispatcher thread.
  int lanes = 1;
  /// Worker threads of each executing session (RunAll sharding), and of
  /// each lane's world pool on the morsel path.
  int threads = 1;
  /// Specs per morsel: the scheduling granule of the lane tier. Small
  /// morsels spread a hot group across lanes faster but claim more often;
  /// 4 is the micro_server-tuned default (claiming is a short critical
  /// section, so the knob mostly trades steal latency against churn).
  size_t morsel_specs = 4;
  /// Idle lanes steal half-ranges from the most-loaded group. false
  /// restores the PR 4 group-granularity scheduler (the bench baseline the
  /// --skew workload is measured against).
  bool steal = true;
  /// Flush a micro-batch at this many specs...
  size_t max_batch_size = 64;
  /// ...or this many milliseconds after it opened, whichever first.
  double max_batch_delay_ms = 1.0;
  /// Admission bound on *in-flight* requests (admitted, not yet completed —
  /// queued, staged for a lane, or executing). Submits beyond it are
  /// rejected, so lane backlogs surface as backpressure exactly like
  /// dispatcher backlogs did pre-lanes.
  size_t queue_capacity = 4096;
  /// LRU capacity of the (epoch, interval) session cache.
  size_t session_cache_capacity = 8;
  /// Shared world-arena policy handed to every session (see
  /// SessionOptions::arena_min_uses): a hot (interval, seed) group's worlds
  /// are materialized once and every later Monte-Carlo spec on the group
  /// evaluates against them — bit-identically — instead of re-sampling.
  /// 0 disables arenas; the default 2 builds once a group proved hot.
  int arena_min_uses = 2;
  /// Enable the process-wide event tracer (util/trace.h) for this server's
  /// lifetime: every request is followed admission-to-finalize by the span
  /// taxonomy of DESIGN.md section 9. Stop() quiesces the recorders, after
  /// which DumpTrace() exports Chrome trace_event JSON. Off by default —
  /// a disabled probe is one relaxed load.
  bool trace = false;
  /// Ring capacity per traced thread (events; oldest overwritten on wrap,
  /// surfaced as the trace_dropped metric).
  size_t trace_events_per_thread = 1 << 16;
  /// Planner knobs handed to every session.
  PlannerOptions planner;
  /// Patch stale indexes with a per-epoch delta (see
  /// SessionOptions::delta_index) instead of dropping them. false restores
  /// the pre-delta behavior: post-write epochs serve unindexed.
  bool delta_index = true;
  /// Run the background compaction thread: periodically rebuild the base
  /// UstTree at the current epoch and publish it through the database
  /// (TrajectoryDatabase::PublishIndex), so session deltas stay shallow
  /// under sustained writes. Publication never bumps the epoch — outcomes
  /// are bit-identical whether a query lands before or after it.
  bool compaction = false;
  /// Compaction poll period. Each wake-up rebuilds only if the delta depth
  /// over the freshest base reached compaction_min_depth.
  double compaction_interval_ms = 10.0;
  /// Rewritten-object count that triggers a rebuild at the next poll.
  size_t compaction_min_depth = 1;
  /// Overload controller thresholds and degradation policy (DESIGN.md
  /// section 11): watermarks on in-flight utilization and queue-delay EWMA
  /// drive normal -> degrade -> shed. The defaults keep a server under the
  /// admission bound in kNormal — existing workloads see no behavior change.
  OverloadOptions overload;
};

/// \brief Per-lane execution counters and timing.
struct LaneStats {
  uint64_t batches = 0;   ///< groups this lane adopted
  uint64_t requests = 0;  ///< specs this lane executed
  uint64_t morsels = 0;   ///< morsels this lane executed
  uint64_t steals = 0;    ///< half-ranges this lane stole when idle
  /// Specs this lane evaluated against a shared world arena instead of
  /// sampling live (QueryOutcome::used_arena).
  uint64_t arena_hits = 0;
  /// Monte-Carlo worlds this lane actually drew or evaluated
  /// (QueryOutcome::worlds_used summed over its specs) — with adaptive
  /// precision this is the real sampling work, not the num_worlds caps.
  uint64_t worlds_sampled = 0;
  /// Microseconds this lane spent parked on the lane queue waiting for a
  /// claimable morsel (the idle complement of exec_micros: a loaded server
  /// with high idle_micros has a scheduling problem, not a load problem).
  uint64_t idle_micros = 0;
  /// Wall time of each executed morsel (whole group when steal = false),
  /// microseconds.
  LatencyHistogram exec_micros;
};

/// \brief Snapshot of one QueryServer's instruments (the registry's values
/// at Stats() time, plus the named fields tests and benches read
/// programmatically — both views of the same counters).
struct ServerStats {
  uint64_t submitted = 0;  ///< all Submit calls
  uint64_t admitted = 0;   ///< entered the queue
  uint64_t rejected = 0;   ///< bounced — always the sum of the split below
  /// The rejection reasons, split (DESIGN.md section 11): the admission
  /// bound, the overload controller's shed regime, and the drain window.
  uint64_t rejected_queue_full = 0;
  uint64_t rejected_shed = 0;
  uint64_t rejected_draining = 0;
  uint64_t completed = 0;  ///< outcomes delivered (deadline misses included)
  /// Admitted requests whose deadline expired while still queued: the
  /// dispatcher resolved them kDeadlineExceeded without staging a lane job.
  uint64_t expired_in_queue = 0;
  /// Staged specs whose deadline expired before their morsel ran: the lane
  /// resolved them kDeadlineExceeded at the morsel boundary, unexecuted.
  uint64_t expired_on_lane = 0;
  /// Specs the degrade regime switched from implicit fixed-worlds precision
  /// to the server-default epsilon target.
  uint64_t degraded_requests = 0;
  /// Gauge: OverloadRegime at the last admission (0 normal / 1 degrade /
  /// 2 shed).
  size_t overload_regime = 0;
  uint64_t batches = 0;    ///< micro-batches dispatched
  uint64_t flush_full = 0;      ///< flushed because the batch filled
  uint64_t flush_deadline = 0;  ///< flushed by the latency deadline
  uint64_t flush_drain = 0;     ///< flushed by shutdown drain
  size_t lane_queue_depth = 0;  ///< gauge: groups awaiting adoption right now
  size_t lane_queue_peak = 0;   ///< high-water mark of that queue
  /// Specs whose adaptive stopping rule fired before the num_worlds cap.
  uint64_t early_stops = 0;
  /// Worlds the early stops did not have to draw: sum of
  /// (num_worlds - worlds_used) over early-stopped Monte-Carlo outcomes.
  uint64_t worlds_saved = 0;
  /// Trace events overwritten by ring wrap since tracing was enabled
  /// (0 when tracing is off — see util/trace.h).
  uint64_t trace_dropped = 0;
  /// Base-tree rebuilds the compaction thread published.
  uint64_t compactions = 0;
  /// Rebuild attempts that failed (e.g. contradicting observations); the
  /// previous base stays published.
  uint64_t compaction_failures = 0;
  /// Gauge: rewritten objects not yet folded into the freshest base, as of
  /// the compactor's last look (0 with compaction off).
  size_t delta_depth = 0;
  SessionCacheStats cache;
  /// Every registered instrument in registration order — what ToJson
  /// enumerates, so an instrument added anywhere in the serving tier
  /// appears in the dump without touching serialization code.
  std::vector<MetricSample> metrics;
  /// Submit-to-completion latency per request, in microseconds.
  LatencyHistogram latency_micros;
  /// Submit-to-flush (admission window to lane handoff) per request, in
  /// microseconds. Independent of execution time by construction — the
  /// regression test for the pre-lane inline dispatcher pins this.
  LatencyHistogram queue_micros;
  /// One entry per execution lane.
  std::vector<LaneStats> lanes;

  /// Sum of LaneStats::steals — how often an idle lane took work off a
  /// loaded group instead of waiting for a whole one.
  uint64_t lane_steals() const;
  /// Sum of LaneStats::morsels.
  uint64_t morsels_executed() const;
  /// Sum of LaneStats::arena_hits — specs served off a shared world arena.
  uint64_t arena_hits() const;
  /// Sum of LaneStats::worlds_sampled — Monte-Carlo worlds actually drawn.
  uint64_t worlds_sampled() const;
  /// Sum of LaneStats::idle_micros — lane time parked waiting for morsels.
  uint64_t lane_idle_micros() const;

  /// Render as a JSON object: the registered instruments (self-enumerated
  /// from `metrics`, falling back to the named fields for detached
  /// snapshots), the derived aggregates, and a per-lane array. Built on
  /// ust::JsonWriter, so empty lane arrays and escaping are structurally
  /// correct.
  std::string ToJson() const;
};

/// \brief Micro-batching admission front-end over one live database.
///
/// Submit() is thread-safe and non-blocking. Write traffic goes directly to
/// the TrajectoryDatabase (its writers are internally synchronized); the
/// dispatcher pins the then-current epoch per batch, so a write becomes
/// visible at the next batch boundary and never torn mid-batch.
class QueryServer {
 public:
  explicit QueryServer(const TrajectoryDatabase& db,
                       const UstTree* index = nullptr,
                       ServerOptions options = {});
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Enqueue one query. The future resolves with the outcome — or resolves
  /// immediately with kResourceLimit when the request is bounced: in-flight
  /// bound hit, shed by the overload controller, or the server is draining
  /// after Stop(). A spec with deadline_ms > 0 may instead resolve
  /// kDeadlineExceeded when its budget expires before execution (checked
  /// only in the queue and at morsel boundaries — an executed spec is
  /// always bit-identical to the deadline-free run).
  std::future<QueryOutcome> Submit(QuerySpec spec);

  /// Hold dispatching (submits keep queueing up to the admission bound;
  /// lanes finish what they already hold). Lets operators drain write
  /// bursts — and tests fill the queue deterministically.
  void Pause();
  /// Resume dispatching.
  void Resume();

  /// Stop accepting, run every queued request to completion, join the
  /// dispatcher and every lane. Idempotent; called by the destructor.
  void Stop();

  /// Consistent copy of the counters and histograms.
  ServerStats Stats() const;

  /// Export the recorded trace as Chrome trace_event JSON (see
  /// util/trace.h). Call after Stop(): the exporter requires quiesced
  /// recorders, and Stop joins every lane and the dispatcher. False when
  /// the file cannot be written.
  bool DumpTrace(const std::string& path) const;

  const ServerOptions& options() const { return options_; }

 private:
  struct Request {
    QuerySpec spec;
    std::promise<QueryOutcome> promise;
    std::chrono::steady_clock::time_point submitted_at;
    /// Admission-ordered id carried by every span of this request's
    /// lifecycle (args {"req": id} — the join key across threads).
    uint64_t id = 0;
    /// Absolute expiry (admission time + spec.deadline_ms), valid only when
    /// has_deadline. Fixed at admission so queueing time counts against the
    /// budget — deadline propagation, not per-stage timeouts.
    std::chrono::steady_clock::time_point deadline_at;
    bool has_deadline = false;
  };

  /// One interval group of one flushed batch, published as a deque of
  /// spec-range morsels. The snapshot pins the batch's admission epoch all
  /// the way to execution; `outcomes` are the pre-sized per-spec result
  /// slots that make any morsel/steal schedule reassemble the serial
  /// RunAll bytes. `adopted`/`session_ready`/`completed` are guarded by the
  /// server mutex; the deque synchronizes itself.
  struct GroupTask {
    DbSnapshot snapshot;
    TimeInterval T{0, 0};
    std::vector<Request> requests;       ///< promise + submit time, in order
    std::vector<QuerySpec> specs;        ///< specs[i] from requests[i]
    std::vector<QueryOutcome> outcomes;  ///< slot i belongs to specs[i]
    MorselDeque deque;                   ///< unclaimed spec ranges
    SessionCache::SharedLease session;   ///< set by the adopting lane
    bool adopted = false;
    bool session_ready = false;  ///< checkout finished; thieves may steal
    size_t completed = 0;        ///< specs executed so far
  };

  void DispatcherLoop();
  void LaneLoop(int lane);
  /// Pin the epoch, group by interval, publish each group's morsel deque.
  void StageBatch(std::vector<Request>* batch);
  /// Group-granularity path (steal = false): exclusive lease, RunAll,
  /// finalize — the PR 4 scheduler, kept as the bench baseline.
  void ExecuteGroupExclusive(const std::shared_ptr<GroupTask>& group,
                             int lane);
  /// Run specs [begin, end) of `group` through its shared session; the lane
  /// finishing the group's last spec finalizes it.
  void ExecuteMorsel(const std::shared_ptr<GroupTask>& group, size_t begin,
                     size_t end, int lane, ThreadPool* world_pool,
                     QuerySession::ExecScratch* scratch);
  /// Deliver outcomes to the promises, record completion stats, release the
  /// shared session lease.
  void FinalizeGroup(GroupTask* group);
  /// Resolve every spec of `group` with `status` without executing any
  /// (session build failed), then finalize it — promises never leak.
  void FailGroup(const std::shared_ptr<GroupTask>& group, Status status);
  /// The expiry clock: now, plus any injected "deadline_skew" fault offset.
  /// Read once per decision point (queue shed pass, morsel boundary).
  static std::chrono::steady_clock::time_point DeadlineNow();
  /// True when the degrade regime may coarsen this spec: a non-continuous
  /// query on the implicit fixed-worlds default (an explicit precision ask
  /// is a client contract the server honors even under overload).
  static bool Degradable(const QuerySpec& spec);

  const TrajectoryDatabase* db_;
  const UstTree* index_;
  ServerOptions options_;
  SessionCache cache_;  ///< thread-safe; lanes check sessions in and out

  mutable std::mutex mu_;
  std::condition_variable cv_;       ///< admission queue -> dispatcher
  std::condition_variable lane_cv_;  ///< published morsels -> lanes
  std::deque<Request> queue_;
  /// Active groups in staging order: adoption scans for the oldest
  /// unadopted entry, stealing for the most-loaded ready one; a group is
  /// removed when its last spec completes.
  std::deque<std::shared_ptr<GroupTask>> groups_;
  bool stopping_ = false;        ///< no new admissions; dispatcher drains
  bool lanes_stopping_ = false;  ///< set after the dispatcher exits
  bool paused_ = false;
  uint64_t in_flight_ = 0;         ///< admitted, not yet completed
  uint64_t next_request_id_ = 0;   ///< guarded by mu_
  std::vector<LaneStats> lane_stats_;  ///< guarded by mu_
  /// Regime state machine (DESIGN.md section 11); guarded by mu_ — Submit
  /// feeds it utilization, the dispatcher feeds it queue delays.
  OverloadController overload_;

  /// The server's instruments (DESIGN.md section 9). Lifecycle counters and
  /// histograms live here instead of ad-hoc struct fields; the cache and
  /// arena tallies register into the same registry, so Stats()/ToJson
  /// enumerate every signal of the serving tier from one place.
  MetricRegistry metrics_;
  Counter* c_submitted_;
  Counter* c_admitted_;
  Counter* c_rejected_;
  Counter* c_rejected_queue_full_;
  Counter* c_rejected_shed_;
  Counter* c_rejected_draining_;
  Counter* c_completed_;
  Counter* c_expired_in_queue_;
  Counter* c_expired_on_lane_;
  Counter* c_degraded_;
  Counter* c_batches_;
  Counter* c_flush_full_;
  Counter* c_flush_deadline_;
  Counter* c_flush_drain_;
  Counter* c_early_stops_;
  Counter* c_worlds_saved_;
  Gauge* g_lane_queue_peak_;
  Gauge* g_overload_regime_;
  Gauge* g_trace_dropped_;
  Counter* c_compactions_;
  Counter* c_compaction_failures_;
  Gauge* g_delta_depth_;
  HistogramMetric* h_latency_;
  HistogramMetric* h_queue_;
  bool owns_trace_ = false;  ///< this server enabled the global tracer

  /// One compaction pass: rebuild the base tree at the current epoch and
  /// publish it, when the delta depth warrants it.
  void CompactOnce();
  void CompactionLoop();
  std::mutex compact_mu_;
  std::condition_variable compact_cv_;
  bool compact_stop_ = false;

  std::mutex join_mu_;  ///< serializes Stop()'s joins
  std::thread dispatcher_;
  std::thread compactor_;
  std::vector<std::thread> lanes_;
};

}  // namespace ust
