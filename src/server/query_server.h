// The serving tier's front-end (DESIGN.md section 5): many client threads
// submit single QuerySpecs; a dispatcher thread coalesces them into
// micro-batches under a latency deadline and runs each batch through the
// epoch-keyed SessionCache on the PR 2 session pipeline.
//
//   Submit(spec) -> future<QueryOutcome>
//     bounded admission queue; when full the request is rejected
//     immediately with kResourceLimit (backpressure, never blocking).
//   dispatcher
//     flushes a batch when it holds max_batch_size specs or
//     max_batch_delay_ms elapsed since the batch opened, pins the database
//     epoch for the whole batch (db->Snapshot()), groups specs by query
//     interval and RunAll()s each group on the cached session.
//
// Because a query's result is a pure function of (epoch, spec) — the PR 2
// determinism contract — batching, the cache, and the thread pool never
// change a bit of any outcome: Submit(spec).get() equals a serial
// QuerySession::Run(spec) over the same epoch.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <condition_variable>

#include "model/trajectory_database.h"
#include "server/session_cache.h"
#include "util/stats.h"

namespace ust {

/// \brief Serving-tier knobs.
struct ServerOptions {
  /// Worker threads of each executing session (RunAll sharding).
  int threads = 1;
  /// Flush a micro-batch at this many specs...
  size_t max_batch_size = 64;
  /// ...or this many milliseconds after it opened, whichever first.
  double max_batch_delay_ms = 1.0;
  /// Admission bound: submits beyond this many queued specs are rejected.
  size_t queue_capacity = 4096;
  /// LRU capacity of the (epoch, interval) session cache.
  size_t session_cache_capacity = 8;
  /// Planner knobs handed to every session.
  PlannerOptions planner;
};

/// \brief Counters + end-to-end latency histogram of one QueryServer.
struct ServerStats {
  uint64_t submitted = 0;  ///< all Submit calls
  uint64_t admitted = 0;   ///< entered the queue
  uint64_t rejected = 0;   ///< bounced (queue full / server stopped)
  uint64_t completed = 0;  ///< outcomes delivered
  uint64_t batches = 0;    ///< micro-batches dispatched
  uint64_t flush_full = 0;      ///< flushed because the batch filled
  uint64_t flush_deadline = 0;  ///< flushed by the latency deadline
  uint64_t flush_drain = 0;     ///< flushed by shutdown drain
  SessionCacheStats cache;
  /// Submit-to-completion latency per request, in microseconds.
  LatencyHistogram latency_micros;

  /// Render as a flat JSON object (counters, cache, p50/p90/p99/mean/max).
  std::string ToJson() const;
};

/// \brief Micro-batching admission front-end over one live database.
///
/// Submit() is thread-safe and non-blocking. Write traffic goes directly to
/// the TrajectoryDatabase (its writers are internally synchronized); the
/// dispatcher pins the then-current epoch per batch, so a write becomes
/// visible at the next batch boundary and never torn mid-batch.
class QueryServer {
 public:
  explicit QueryServer(const TrajectoryDatabase& db,
                       const UstTree* index = nullptr,
                       ServerOptions options = {});
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Enqueue one query. The future resolves with the outcome — or, when the
  /// admission queue is full (kResourceLimit) or the server is stopped
  /// (kInvalidArgument), resolves immediately with that rejection status.
  std::future<QueryOutcome> Submit(QuerySpec spec);

  /// Hold dispatching (submits keep queueing up to the admission bound).
  /// Lets operators drain write bursts — and tests fill the queue
  /// deterministically.
  void Pause();
  /// Resume dispatching.
  void Resume();

  /// Stop accepting, run every queued request to completion, join the
  /// dispatcher. Idempotent; called by the destructor.
  void Stop();

  /// Consistent copy of the counters and the latency histogram.
  ServerStats Stats() const;

  const ServerOptions& options() const { return options_; }

 private:
  struct Request {
    QuerySpec spec;
    std::promise<QueryOutcome> promise;
    std::chrono::steady_clock::time_point submitted_at;
  };

  void DispatcherLoop();
  /// Pin the epoch, group by interval, RunAll each group, fulfill promises.
  void ExecuteBatch(std::vector<Request>* batch);

  const TrajectoryDatabase* db_;
  const UstTree* index_;
  ServerOptions options_;
  SessionCache cache_;  ///< dispatcher-only

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  bool stopping_ = false;
  bool paused_ = false;
  ServerStats stats_;  ///< guarded by mu_

  std::mutex join_mu_;  ///< serializes Stop()'s join of the dispatcher
  std::thread dispatcher_;
};

}  // namespace ust
