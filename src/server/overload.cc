#include "server/overload.h"

namespace ust {

const char* OverloadRegimeName(OverloadRegime regime) {
  switch (regime) {
    case OverloadRegime::kNormal: return "normal";
    case OverloadRegime::kDegrade: return "degrade";
    case OverloadRegime::kShed: return "shed";
  }
  return "unknown";
}

OverloadController::OverloadController(OverloadOptions options)
    : options_(options) {}

void OverloadController::NoteQueueDelay(double micros) {
  const double ms = micros / 1000.0;
  const double alpha = options_.queue_ewma_alpha;
  if (queue_ewma_ms_ == 0.0) {
    queue_ewma_ms_ = ms;
  } else {
    queue_ewma_ms_ = alpha * ms + (1.0 - alpha) * queue_ewma_ms_;
  }
}

OverloadRegime OverloadController::Target(double utilization) const {
  if (utilization >= options_.shed_watermark ||
      queue_ewma_ms_ >= options_.shed_queue_ms) {
    return OverloadRegime::kShed;
  }
  if (utilization >= options_.degrade_watermark ||
      queue_ewma_ms_ >= options_.degrade_queue_ms) {
    return OverloadRegime::kDegrade;
  }
  return OverloadRegime::kNormal;
}

bool OverloadController::ClearedFor(double utilization, double watermark,
                                    double queue_ms) const {
  const double util_exit = watermark - options_.exit_hysteresis;
  const double queue_exit = queue_ms * (1.0 - options_.exit_hysteresis);
  return utilization < util_exit && queue_ewma_ms_ < queue_exit;
}

OverloadRegime OverloadController::Update(size_t in_flight, size_t capacity) {
  if (!options_.enabled) return OverloadRegime::kNormal;
  const double utilization =
      capacity == 0 ? 0.0
                    : static_cast<double>(in_flight) /
                          static_cast<double>(capacity);
  const OverloadRegime target = Target(utilization);
  if (target > regime_) {
    // Escalate immediately: overload signals must act on *this* request.
    escalations_ +=
        static_cast<uint64_t>(target) - static_cast<uint64_t>(regime_);
    regime_ = target;
    return regime_;
  }
  // De-escalate at most one regime per update, and only once the signals
  // cleared the entry bar of the *current* regime by the hysteresis margin.
  if (regime_ == OverloadRegime::kShed &&
      ClearedFor(utilization, options_.shed_watermark,
                 options_.shed_queue_ms)) {
    regime_ = OverloadRegime::kDegrade;
  } else if (regime_ == OverloadRegime::kDegrade &&
             ClearedFor(utilization, options_.degrade_watermark,
                        options_.degrade_queue_ms)) {
    regime_ = OverloadRegime::kNormal;
  }
  return regime_;
}

}  // namespace ust
