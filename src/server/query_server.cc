#include "server/query_server.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <utility>

namespace ust {

namespace {

QueryOutcome RejectedOutcome(Status status, QueryKind kind) {
  QueryOutcome out;
  out.status = std::move(status);
  out.kind = kind;
  return out;
}

void AppendCounter(std::string* out, const char* key, uint64_t value,
                   bool leading_comma = true) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s\"%s\":%" PRIu64,
                leading_comma ? "," : "", key, value);
  *out += buf;
}

SessionOptions MakeSessionOptions(const ServerOptions& options) {
  SessionOptions session_options;
  session_options.threads = options.threads;
  session_options.planner = options.planner;
  session_options.arena_min_uses = options.arena_min_uses;
  return session_options;
}

}  // namespace

uint64_t ServerStats::lane_steals() const {
  uint64_t total = 0;
  for (const LaneStats& lane : lanes) total += lane.steals;
  return total;
}

uint64_t ServerStats::morsels_executed() const {
  uint64_t total = 0;
  for (const LaneStats& lane : lanes) total += lane.morsels;
  return total;
}

uint64_t ServerStats::arena_hits() const {
  uint64_t total = 0;
  for (const LaneStats& lane : lanes) total += lane.arena_hits;
  return total;
}

uint64_t ServerStats::worlds_sampled() const {
  uint64_t total = 0;
  for (const LaneStats& lane : lanes) total += lane.worlds_sampled;
  return total;
}

std::string ServerStats::ToJson() const {
  std::string out = "{";
  AppendCounter(&out, "submitted", submitted, /*leading_comma=*/false);
  AppendCounter(&out, "admitted", admitted);
  AppendCounter(&out, "rejected", rejected);
  AppendCounter(&out, "completed", completed);
  AppendCounter(&out, "batches", batches);
  AppendCounter(&out, "flush_full", flush_full);
  AppendCounter(&out, "flush_deadline", flush_deadline);
  AppendCounter(&out, "flush_drain", flush_drain);
  char buf[96];
  std::snprintf(buf, sizeof(buf), ",\"avg_batch_size\":%.3f",
                batches == 0 ? 0.0
                             : static_cast<double>(completed) /
                                   static_cast<double>(batches));
  out += buf;
  AppendCounter(&out, "lane_queue_depth", lane_queue_depth);
  AppendCounter(&out, "lane_queue_peak", lane_queue_peak);
  AppendCounter(&out, "lane_steals", lane_steals());
  AppendCounter(&out, "morsels_executed", morsels_executed());
  AppendCounter(&out, "early_stops", early_stops);
  AppendCounter(&out, "worlds_saved", worlds_saved);
  AppendCounter(&out, "worlds_sampled", worlds_sampled());
  AppendCounter(&out, "cache_hits", cache.hits);
  AppendCounter(&out, "cache_misses", cache.misses);
  AppendCounter(&out, "cache_busy_misses", cache.busy_misses);
  AppendCounter(&out, "cache_shared_joins", cache.shared_joins);
  AppendCounter(&out, "cache_evictions_lru", cache.evictions_lru);
  AppendCounter(&out, "cache_evictions_stale", cache.evictions_stale);
  AppendCounter(&out, "arena_builds", cache.arena_builds);
  AppendCounter(&out, "arena_spec_reuses", cache.arena_spec_reuses);
  AppendCounter(&out, "arena_bytes", cache.arena_bytes);
  out += ",\"latency_us\":" + latency_micros.ToJson();
  out += ",\"queue_us\":" + queue_micros.ToJson();
  out += ",\"lanes\":[";
  for (size_t i = 0; i < lanes.size(); ++i) {
    if (i > 0) out += ",";
    out += "{";
    AppendCounter(&out, "batches", lanes[i].batches, /*leading_comma=*/false);
    AppendCounter(&out, "requests", lanes[i].requests);
    AppendCounter(&out, "morsels", lanes[i].morsels);
    AppendCounter(&out, "steals", lanes[i].steals);
    AppendCounter(&out, "arena_hits", lanes[i].arena_hits);
    AppendCounter(&out, "worlds_sampled", lanes[i].worlds_sampled);
    out += ",\"exec_us\":" + lanes[i].exec_micros.ToJson();
    out += "}";
  }
  out += "]}";
  return out;
}

QueryServer::QueryServer(const TrajectoryDatabase& db, const UstTree* index,
                         ServerOptions options)
    : db_(&db), index_(index), options_(options),
      cache_(options.session_cache_capacity, MakeSessionOptions(options)) {
  // A zero batch size would dispatch empty batches forever while admitted
  // requests starve, a zero queue capacity would bounce all traffic, and a
  // zero-lane pool would stage jobs nobody executes; a server always admits,
  // batches and executes at least one spec at a time.
  options_.lanes = std::max(1, options_.lanes);
  options_.max_batch_size = std::max<size_t>(1, options_.max_batch_size);
  options_.queue_capacity = std::max<size_t>(1, options_.queue_capacity);
  options_.morsel_specs = std::max<size_t>(1, options_.morsel_specs);
  stats_.lanes.resize(static_cast<size_t>(options_.lanes));
  lanes_.reserve(static_cast<size_t>(options_.lanes));
  for (int lane = 0; lane < options_.lanes; ++lane) {
    lanes_.emplace_back([this, lane] { LaneLoop(lane); });
  }
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

QueryServer::~QueryServer() { Stop(); }

std::future<QueryOutcome> QueryServer::Submit(QuerySpec spec) {
  std::promise<QueryOutcome> promise;
  std::future<QueryOutcome> future = promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
    if (stopping_) {
      ++stats_.rejected;
      promise.set_value(RejectedOutcome(
          Status::InvalidArgument("query server is stopped"), spec.kind));
      return future;
    }
    if (in_flight_ >= options_.queue_capacity) {
      // Backpressure: bounce immediately instead of blocking the client —
      // the caller sees kResourceLimit and can retry with its own policy.
      // Counting *in-flight* requests (not just the admission queue) keeps
      // the bound meaningful now that flushed batches wait in the lane
      // queue: execution backlog is still backlog.
      ++stats_.rejected;
      promise.set_value(RejectedOutcome(
          Status::ResourceLimit("admission queue full"), spec.kind));
      return future;
    }
    ++stats_.admitted;
    ++in_flight_;
    queue_.push_back(Request{std::move(spec), std::move(promise),
                             std::chrono::steady_clock::now()});
  }
  cv_.notify_all();
  return future;
}

void QueryServer::Pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void QueryServer::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

void QueryServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  // Serialize the joins: concurrent Stop() callers (say, an explicit Stop
  // racing the destructor) all block here until the pipeline has fully
  // drained, and exactly one of them performs each join.
  std::lock_guard<std::mutex> join_lock(join_mu_);
  // Dispatcher first: it drains the admission queue into lane jobs, so only
  // after it exits is the lane queue complete...
  if (dispatcher_.joinable()) dispatcher_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    lanes_stopping_ = true;
  }
  lane_cv_.notify_all();
  // ...then the lanes run the lane queue dry: every admitted request
  // resolves before Stop returns.
  for (std::thread& lane : lanes_) {
    if (lane.joinable()) lane.join();
  }
}

ServerStats QueryServer::Stats() const {
  ServerStats stats;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats = stats_;
    stats.lane_queue_depth = 0;
    for (const auto& group : groups_) {
      if (!group->adopted) ++stats.lane_queue_depth;
    }
  }
  stats.cache = cache_.stats();
  return stats;
}

void QueryServer::DispatcherLoop() {
  const auto delay = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(std::chrono::duration<double,
                                                                 std::milli>(
      std::max(0.0, options_.max_batch_delay_ms)));
  for (;;) {
    std::vector<Request> batch;
    uint64_t* flush_reason = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return stopping_ || (!queue_.empty() && !paused_);
      });
      if (queue_.empty() && stopping_) return;
      if (!stopping_) {
        // Micro-batching window: the batch opened when the first spec was
        // seen; hold it open until it fills or the deadline passes. Late
        // submits keep landing in queue_ and are picked up by the drain.
        const auto deadline = std::chrono::steady_clock::now() + delay;
        while (!stopping_ && queue_.size() < options_.max_batch_size) {
          if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
            break;
          }
        }
      }
      const size_t n = std::min(queue_.size(), options_.max_batch_size);
      batch.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      flush_reason = stopping_ ? &stats_.flush_drain
                     : n >= options_.max_batch_size ? &stats_.flush_full
                                                    : &stats_.flush_deadline;
      ++*flush_reason;
      ++stats_.batches;
    }
    if (!batch.empty()) StageBatch(&batch);
  }
}

void QueryServer::StageBatch(std::vector<Request>* batch) {
  // Admission point: the whole batch reads the epoch current at dispatch —
  // a concurrent writer's new epoch becomes visible only to later batches.
  // The snapshot rides inside each GroupTask, so the pin survives any
  // staging delay.
  DbSnapshot snapshot = db_->Snapshot();
  cache_.EvictStale(snapshot.version());

  // Group by query interval (the session cache key), preserving submit
  // order within each group. Outcomes are per-spec pure, so grouping never
  // changes results — only which session executes them. Each group is
  // published as a deque of spec-range morsels over pre-sized outcome
  // slots; distinct keys — and, with stealing, morsels of one key — may
  // execute concurrently.
  std::map<std::pair<Tic, Tic>, std::vector<size_t>> by_interval;
  for (size_t i = 0; i < batch->size(); ++i) {
    const TimeInterval& T = (*batch)[i].spec.T;
    by_interval[{T.start, T.end}].push_back(i);
  }

  std::vector<std::shared_ptr<GroupTask>> staged;
  staged.reserve(by_interval.size());
  for (auto& [key, indices] : by_interval) {
    auto group = std::make_shared<GroupTask>();
    group->snapshot = snapshot;
    group->T = TimeInterval{key.first, key.second};
    group->requests.reserve(indices.size());
    group->specs.reserve(indices.size());
    for (size_t i : indices) {
      group->requests.push_back(std::move((*batch)[i]));
      // Moved, not copied: nothing reads Request::spec after execution, and
      // a spec can carry a full query trajectory.
      group->specs.push_back(std::move(group->requests.back().spec));
    }
    group->outcomes.resize(group->specs.size());
    group->deque.Reset(0, group->specs.size(), options_.morsel_specs);
    staged.push_back(std::move(group));
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto now = std::chrono::steady_clock::now();
    size_t waiting = 0;
    for (auto& group : staged) {
      for (const Request& request : group->requests) {
        // Submit-to-flush latency: how long admission held the request.
        // Recorded at handoff, so it never includes execution time — the
        // whole point of the lane tier.
        stats_.queue_micros.Record(
            std::chrono::duration<double, std::micro>(now -
                                                      request.submitted_at)
                .count());
      }
      groups_.push_back(std::move(group));
    }
    for (const auto& group : groups_) {
      if (!group->adopted) ++waiting;
    }
    stats_.lane_queue_peak = std::max(stats_.lane_queue_peak, waiting);
  }
  lane_cv_.notify_all();
}

void QueryServer::LaneLoop(int lane) {
  // Per-lane execution resources, reused across every morsel, group and
  // session this lane ever runs: the sampling scratch and (threads > 1) a
  // private world pool — shared sessions are read-only under RunMorsel, so
  // world sharding must come from lane-owned workers, never the session's.
  QuerySession::ExecScratch scratch;
  std::unique_ptr<ThreadPool> world_pool;
  if (options_.steal && options_.threads > 1) {
    world_pool = std::make_unique<ThreadPool>(options_.threads);
  }
  // The group whose deque this lane currently drains (owner affinity: its
  // session stays hot in cache between morsels).
  std::shared_ptr<GroupTask> own;
  for (;;) {
    std::shared_ptr<GroupTask> group;
    size_t begin = 0;
    size_t end = 0;
    bool adopt = false;
    bool stolen = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (;;) {
        // 1. Pop the next morsel of the lane's own group.
        if (own != nullptr && own->deque.PopFront(&begin, &end)) {
          group = own;
          break;
        }
        own.reset();
        // 2. Adopt the oldest unadopted group (FIFO keeps queue latency
        //    fair across intervals).
        for (const auto& candidate : groups_) {
          if (!candidate->adopted) {
            candidate->adopted = true;
            group = candidate;
            adopt = true;
            break;
          }
        }
        if (group != nullptr) break;
        // 3. Idle: steal the back half of the most-loaded ready group.
        //    (Groups still checking their session out are skipped — their
        //    owner publishes session_ready and wakes us when joinable.)
        if (options_.steal) {
          std::shared_ptr<GroupTask> victim;
          size_t most_loaded = 0;
          for (const auto& candidate : groups_) {
            if (!candidate->session_ready) continue;
            const size_t remaining = candidate->deque.remaining();
            if (remaining > most_loaded) {
              most_loaded = remaining;
              victim = candidate;
            }
          }
          if (victim != nullptr && victim->deque.StealHalf(&begin, &end)) {
            ++stats_.lanes[static_cast<size_t>(lane)].steals;
            group = victim;
            stolen = true;
            break;
          }
        }
        if (lanes_stopping_) return;  // nothing claimable, drain complete
        lane_cv_.wait(lock);
      }
      if (adopt) ++stats_.lanes[static_cast<size_t>(lane)].batches;
    }
    if (adopt) {
      if (!options_.steal) {
        // Group granularity: the PR 4 scheduler, whole group on this lane.
        ExecuteGroupExclusive(group, lane);
        continue;
      }
      // Check the shared session out (build or join — possibly expensive,
      // so outside the server mutex), then open the deque to thieves.
      group->session = cache_.CheckoutShared(group->snapshot, group->T,
                                             index_);
      {
        std::lock_guard<std::mutex> lock(mu_);
        group->session_ready = true;
      }
      lane_cv_.notify_all();
      own = std::move(group);
      continue;
    }
    if (stolen) {
      // A stolen half-range is the thief's private deque: drain it morsel
      // by morsel (each commits + re-checks completion independently).
      for (size_t b = begin; b < end; b += options_.morsel_specs) {
        ExecuteMorsel(group, b, std::min(b + options_.morsel_specs, end),
                      lane, world_pool.get(), &scratch);
      }
      continue;
    }
    ExecuteMorsel(group, begin, end, lane, world_pool.get(), &scratch);
  }
}

void QueryServer::ExecuteMorsel(const std::shared_ptr<GroupTask>& group,
                                size_t begin, size_t end, int lane,
                                ThreadPool* world_pool,
                                QuerySession::ExecScratch* scratch) {
  const auto exec_start = std::chrono::steady_clock::now();
  group->session->RunMorsel(group->specs, begin, end,
                            group->outcomes.data(), world_pool, scratch);
  const double exec_micros = std::chrono::duration<double, std::micro>(
                                 std::chrono::steady_clock::now() - exec_start)
                                 .count();
  uint64_t arena_hits = 0;
  uint64_t early_stops = 0;
  uint64_t worlds_saved = 0;
  uint64_t worlds_sampled = 0;
  for (size_t i = begin; i < end; ++i) {
    const QueryOutcome& outcome = group->outcomes[i];
    if (outcome.used_arena) ++arena_hits;
    worlds_sampled += outcome.worlds_used;
    if (outcome.early_stopped) {
      ++early_stops;
      worlds_saved += group->specs[i].mc.num_worlds - outcome.worlds_used;
    }
  }
  bool last = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    LaneStats& lane_stats = stats_.lanes[static_cast<size_t>(lane)];
    ++lane_stats.morsels;
    lane_stats.requests += end - begin;
    lane_stats.arena_hits += arena_hits;
    lane_stats.worlds_sampled += worlds_sampled;
    lane_stats.exec_micros.Record(exec_micros);
    stats_.early_stops += early_stops;
    stats_.worlds_saved += worlds_saved;
    group->completed += end - begin;
    last = group->completed == group->specs.size();
    if (last) {
      for (auto it = groups_.begin(); it != groups_.end(); ++it) {
        if (it->get() == group.get()) {
          groups_.erase(it);
          break;
        }
      }
    }
  }
  // The lane committing the group's final morsel delivers the whole group:
  // every slot was written before `completed` reached the total (each
  // writer bumped it under the mutex after writing), so the reads below
  // are ordered after every write.
  if (last) FinalizeGroup(group.get());
}

void QueryServer::ExecuteGroupExclusive(
    const std::shared_ptr<GroupTask>& group, int lane) {
  const auto exec_start = std::chrono::steady_clock::now();
  {
    // Exclusive checkout: this lane owns the session (and its scratch)
    // until the lease dies at the end of this scope. A concurrent lane on
    // the same (epoch, interval) key builds its own duplicate — never
    // shares.
    SessionCache::Lease session =
        cache_.Checkout(group->snapshot, group->T, index_);
    group->outcomes = session->RunAll(group->specs);
  }
  const double exec_micros = std::chrono::duration<double, std::micro>(
                                 std::chrono::steady_clock::now() - exec_start)
                                 .count();
  uint64_t arena_hits = 0;
  uint64_t early_stops = 0;
  uint64_t worlds_saved = 0;
  uint64_t worlds_sampled = 0;
  for (size_t i = 0; i < group->outcomes.size(); ++i) {
    const QueryOutcome& outcome = group->outcomes[i];
    if (outcome.used_arena) ++arena_hits;
    worlds_sampled += outcome.worlds_used;
    if (outcome.early_stopped) {
      ++early_stops;
      worlds_saved += group->specs[i].mc.num_worlds - outcome.worlds_used;
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    LaneStats& lane_stats = stats_.lanes[static_cast<size_t>(lane)];
    ++lane_stats.morsels;  // the whole group, as one morsel
    lane_stats.requests += group->specs.size();
    lane_stats.arena_hits += arena_hits;
    lane_stats.worlds_sampled += worlds_sampled;
    lane_stats.exec_micros.Record(exec_micros);
    stats_.early_stops += early_stops;
    stats_.worlds_saved += worlds_saved;
    group->completed = group->specs.size();
    for (auto it = groups_.begin(); it != groups_.end(); ++it) {
      if (it->get() == group.get()) {
        groups_.erase(it);
        break;
      }
    }
  }
  FinalizeGroup(group.get());
}

void QueryServer::FinalizeGroup(GroupTask* group) {
  // Hand the session back before resolving futures: a waiting client's
  // next request should find it in the cache (or join it), not race it.
  group->session.Release();
  const auto done = std::chrono::steady_clock::now();
  {
    // Count before resolving the futures: a client that saw its outcome
    // must also see it reflected in Stats().
    std::lock_guard<std::mutex> lock(mu_);
    for (const Request& request : group->requests) {
      ++stats_.completed;
      stats_.latency_micros.Record(
          std::chrono::duration<double, std::micro>(done -
                                                    request.submitted_at)
              .count());
    }
    in_flight_ -= group->requests.size();
  }
  for (size_t i = 0; i < group->requests.size(); ++i) {
    group->requests[i].promise.set_value(std::move(group->outcomes[i]));
  }
}

}  // namespace ust
