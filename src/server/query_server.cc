#include "server/query_server.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <utility>

namespace ust {

namespace {

QueryOutcome RejectedOutcome(Status status, QueryKind kind) {
  QueryOutcome out;
  out.status = std::move(status);
  out.kind = kind;
  return out;
}

}  // namespace

std::string ServerStats::ToJson() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\"submitted\":%" PRIu64 ",\"admitted\":%" PRIu64
      ",\"rejected\":%" PRIu64 ",\"completed\":%" PRIu64
      ",\"batches\":%" PRIu64 ",\"flush_full\":%" PRIu64
      ",\"flush_deadline\":%" PRIu64 ",\"flush_drain\":%" PRIu64
      ",\"avg_batch_size\":%.3f,\"cache_hits\":%" PRIu64
      ",\"cache_misses\":%" PRIu64 ",\"cache_evictions_lru\":%" PRIu64
      ",\"cache_evictions_stale\":%" PRIu64
      ",\"latency_us\":{\"count\":%zu,\"mean\":%.3f,\"p50\":%.3f,"
      "\"p90\":%.3f,\"p99\":%.3f,\"max\":%.3f}}",
      submitted, admitted, rejected, completed, batches, flush_full,
      flush_deadline, flush_drain,
      batches == 0 ? 0.0
                   : static_cast<double>(completed) /
                         static_cast<double>(batches),
      cache.hits, cache.misses, cache.evictions_lru, cache.evictions_stale,
      latency_micros.count(), latency_micros.mean(),
      latency_micros.Quantile(0.50), latency_micros.Quantile(0.90),
      latency_micros.Quantile(0.99), latency_micros.max());
  return std::string(buf);
}

QueryServer::QueryServer(const TrajectoryDatabase& db, const UstTree* index,
                         ServerOptions options)
    : db_(&db), index_(index), options_(options),
      cache_(options.session_cache_capacity,
             SessionOptions{options.threads, options.planner}) {
  // A zero batch size would dispatch empty batches forever while admitted
  // requests starve, and a zero queue capacity would bounce all traffic; a
  // server always admits and batches at least one spec.
  options_.max_batch_size = std::max<size_t>(1, options_.max_batch_size);
  options_.queue_capacity = std::max<size_t>(1, options_.queue_capacity);
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

QueryServer::~QueryServer() { Stop(); }

std::future<QueryOutcome> QueryServer::Submit(QuerySpec spec) {
  std::promise<QueryOutcome> promise;
  std::future<QueryOutcome> future = promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
    if (stopping_) {
      ++stats_.rejected;
      promise.set_value(RejectedOutcome(
          Status::InvalidArgument("query server is stopped"), spec.kind));
      return future;
    }
    if (queue_.size() >= options_.queue_capacity) {
      // Backpressure: bounce immediately instead of blocking the client —
      // the caller sees kResourceLimit and can retry with its own policy.
      ++stats_.rejected;
      promise.set_value(RejectedOutcome(
          Status::ResourceLimit("admission queue full"), spec.kind));
      return future;
    }
    ++stats_.admitted;
    queue_.push_back(Request{std::move(spec), std::move(promise),
                             std::chrono::steady_clock::now()});
  }
  cv_.notify_all();
  return future;
}

void QueryServer::Pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void QueryServer::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

void QueryServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  // Serialize the join: concurrent Stop() callers (say, an explicit Stop
  // racing the destructor) all block here until the dispatcher has fully
  // drained, and exactly one of them performs the join.
  std::lock_guard<std::mutex> join_lock(join_mu_);
  if (dispatcher_.joinable()) dispatcher_.join();
}

ServerStats QueryServer::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void QueryServer::DispatcherLoop() {
  const auto delay = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(std::chrono::duration<double,
                                                                 std::milli>(
      std::max(0.0, options_.max_batch_delay_ms)));
  for (;;) {
    std::vector<Request> batch;
    uint64_t* flush_reason = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return stopping_ || (!queue_.empty() && !paused_);
      });
      if (queue_.empty() && stopping_) return;
      if (!stopping_) {
        // Micro-batching window: the batch opened when the first spec was
        // seen; hold it open until it fills or the deadline passes. Late
        // submits keep landing in queue_ and are picked up by the drain.
        const auto deadline = std::chrono::steady_clock::now() + delay;
        while (!stopping_ && queue_.size() < options_.max_batch_size) {
          if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
            break;
          }
        }
      }
      const size_t n = std::min(queue_.size(), options_.max_batch_size);
      batch.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      flush_reason = stopping_ ? &stats_.flush_drain
                     : n >= options_.max_batch_size ? &stats_.flush_full
                                                    : &stats_.flush_deadline;
      ++*flush_reason;
      ++stats_.batches;
    }
    if (!batch.empty()) ExecuteBatch(&batch);
  }
}

void QueryServer::ExecuteBatch(std::vector<Request>* batch) {
  // Admission point: the whole batch reads the epoch current at dispatch —
  // a concurrent writer's new epoch becomes visible only to later batches.
  DbSnapshot snapshot = db_->Snapshot();
  cache_.EvictStale(snapshot.version());

  // Group by query interval (the session cache key), preserving submit
  // order within each group. Outcomes are per-spec pure, so grouping never
  // changes results — only which session executes them.
  std::map<std::pair<Tic, Tic>, std::vector<size_t>> groups;
  for (size_t i = 0; i < batch->size(); ++i) {
    const TimeInterval& T = (*batch)[i].spec.T;
    groups[{T.start, T.end}].push_back(i);
  }

  const auto record = [&](Request& request, QueryOutcome outcome) {
    const double micros =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - request.submitted_at)
            .count();
    {
      // Count before resolving the future: a client that saw its outcome
      // must also see it reflected in Stats().
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.completed;
      stats_.latency_micros.Record(micros);
    }
    request.promise.set_value(std::move(outcome));
  };

  for (auto& [key, indices] : groups) {
    const TimeInterval T{key.first, key.second};
    std::shared_ptr<QuerySession> session = cache_.Get(snapshot, T, index_);
    std::vector<QuerySpec> specs;
    specs.reserve(indices.size());
    // Moved, not copied: nothing reads Request::spec after execution, and a
    // spec can carry a full query trajectory.
    for (size_t i : indices) specs.push_back(std::move((*batch)[i].spec));
    std::vector<QueryOutcome> outcomes = session->RunAll(specs);
    for (size_t j = 0; j < indices.size(); ++j) {
      record((*batch)[indices[j]], std::move(outcomes[j]));
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  stats_.cache = cache_.stats();
}

}  // namespace ust
