#include "server/query_server.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <utility>

namespace ust {

namespace {

QueryOutcome RejectedOutcome(Status status, QueryKind kind) {
  QueryOutcome out;
  out.status = std::move(status);
  out.kind = kind;
  return out;
}

void AppendCounter(std::string* out, const char* key, uint64_t value,
                   bool leading_comma = true) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s\"%s\":%" PRIu64,
                leading_comma ? "," : "", key, value);
  *out += buf;
}

}  // namespace

std::string ServerStats::ToJson() const {
  std::string out = "{";
  AppendCounter(&out, "submitted", submitted, /*leading_comma=*/false);
  AppendCounter(&out, "admitted", admitted);
  AppendCounter(&out, "rejected", rejected);
  AppendCounter(&out, "completed", completed);
  AppendCounter(&out, "batches", batches);
  AppendCounter(&out, "flush_full", flush_full);
  AppendCounter(&out, "flush_deadline", flush_deadline);
  AppendCounter(&out, "flush_drain", flush_drain);
  char buf[96];
  std::snprintf(buf, sizeof(buf), ",\"avg_batch_size\":%.3f",
                batches == 0 ? 0.0
                             : static_cast<double>(completed) /
                                   static_cast<double>(batches));
  out += buf;
  AppendCounter(&out, "lane_queue_depth", lane_queue_depth);
  AppendCounter(&out, "lane_queue_peak", lane_queue_peak);
  AppendCounter(&out, "cache_hits", cache.hits);
  AppendCounter(&out, "cache_misses", cache.misses);
  AppendCounter(&out, "cache_busy_misses", cache.busy_misses);
  AppendCounter(&out, "cache_evictions_lru", cache.evictions_lru);
  AppendCounter(&out, "cache_evictions_stale", cache.evictions_stale);
  out += ",\"latency_us\":" + latency_micros.ToJson();
  out += ",\"queue_us\":" + queue_micros.ToJson();
  out += ",\"lanes\":[";
  for (size_t i = 0; i < lanes.size(); ++i) {
    if (i > 0) out += ",";
    out += "{";
    AppendCounter(&out, "batches", lanes[i].batches, /*leading_comma=*/false);
    AppendCounter(&out, "requests", lanes[i].requests);
    out += ",\"exec_us\":" + lanes[i].exec_micros.ToJson();
    out += "}";
  }
  out += "]}";
  return out;
}

QueryServer::QueryServer(const TrajectoryDatabase& db, const UstTree* index,
                         ServerOptions options)
    : db_(&db), index_(index), options_(options),
      cache_(options.session_cache_capacity,
             SessionOptions{options.threads, options.planner}) {
  // A zero batch size would dispatch empty batches forever while admitted
  // requests starve, a zero queue capacity would bounce all traffic, and a
  // zero-lane pool would stage jobs nobody executes; a server always admits,
  // batches and executes at least one spec at a time.
  options_.lanes = std::max(1, options_.lanes);
  options_.max_batch_size = std::max<size_t>(1, options_.max_batch_size);
  options_.queue_capacity = std::max<size_t>(1, options_.queue_capacity);
  stats_.lanes.resize(static_cast<size_t>(options_.lanes));
  lanes_.reserve(static_cast<size_t>(options_.lanes));
  for (int lane = 0; lane < options_.lanes; ++lane) {
    lanes_.emplace_back([this, lane] { LaneLoop(lane); });
  }
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

QueryServer::~QueryServer() { Stop(); }

std::future<QueryOutcome> QueryServer::Submit(QuerySpec spec) {
  std::promise<QueryOutcome> promise;
  std::future<QueryOutcome> future = promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
    if (stopping_) {
      ++stats_.rejected;
      promise.set_value(RejectedOutcome(
          Status::InvalidArgument("query server is stopped"), spec.kind));
      return future;
    }
    if (in_flight_ >= options_.queue_capacity) {
      // Backpressure: bounce immediately instead of blocking the client —
      // the caller sees kResourceLimit and can retry with its own policy.
      // Counting *in-flight* requests (not just the admission queue) keeps
      // the bound meaningful now that flushed batches wait in the lane
      // queue: execution backlog is still backlog.
      ++stats_.rejected;
      promise.set_value(RejectedOutcome(
          Status::ResourceLimit("admission queue full"), spec.kind));
      return future;
    }
    ++stats_.admitted;
    ++in_flight_;
    queue_.push_back(Request{std::move(spec), std::move(promise),
                             std::chrono::steady_clock::now()});
  }
  cv_.notify_all();
  return future;
}

void QueryServer::Pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void QueryServer::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

void QueryServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  // Serialize the joins: concurrent Stop() callers (say, an explicit Stop
  // racing the destructor) all block here until the pipeline has fully
  // drained, and exactly one of them performs each join.
  std::lock_guard<std::mutex> join_lock(join_mu_);
  // Dispatcher first: it drains the admission queue into lane jobs, so only
  // after it exits is the lane queue complete...
  if (dispatcher_.joinable()) dispatcher_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    lanes_stopping_ = true;
  }
  lane_cv_.notify_all();
  // ...then the lanes run the lane queue dry: every admitted request
  // resolves before Stop returns.
  for (std::thread& lane : lanes_) {
    if (lane.joinable()) lane.join();
  }
}

ServerStats QueryServer::Stats() const {
  ServerStats stats;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats = stats_;
    stats.lane_queue_depth = lane_queue_.size();
  }
  stats.cache = cache_.stats();
  return stats;
}

void QueryServer::DispatcherLoop() {
  const auto delay = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(std::chrono::duration<double,
                                                                 std::milli>(
      std::max(0.0, options_.max_batch_delay_ms)));
  for (;;) {
    std::vector<Request> batch;
    uint64_t* flush_reason = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return stopping_ || (!queue_.empty() && !paused_);
      });
      if (queue_.empty() && stopping_) return;
      if (!stopping_) {
        // Micro-batching window: the batch opened when the first spec was
        // seen; hold it open until it fills or the deadline passes. Late
        // submits keep landing in queue_ and are picked up by the drain.
        const auto deadline = std::chrono::steady_clock::now() + delay;
        while (!stopping_ && queue_.size() < options_.max_batch_size) {
          if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
            break;
          }
        }
      }
      const size_t n = std::min(queue_.size(), options_.max_batch_size);
      batch.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      flush_reason = stopping_ ? &stats_.flush_drain
                     : n >= options_.max_batch_size ? &stats_.flush_full
                                                    : &stats_.flush_deadline;
      ++*flush_reason;
      ++stats_.batches;
    }
    if (!batch.empty()) StageBatch(&batch);
  }
}

void QueryServer::StageBatch(std::vector<Request>* batch) {
  // Admission point: the whole batch reads the epoch current at dispatch —
  // a concurrent writer's new epoch becomes visible only to later batches.
  // The snapshot rides inside each LaneJob, so the pin survives any lane
  // queueing delay.
  DbSnapshot snapshot = db_->Snapshot();
  cache_.EvictStale(snapshot.version());

  // Group by query interval (the session cache key), preserving submit
  // order within each group. Outcomes are per-spec pure, so grouping never
  // changes results — only which session executes them. Distinct keys become
  // distinct lane jobs and may execute concurrently.
  std::map<std::pair<Tic, Tic>, std::vector<size_t>> groups;
  for (size_t i = 0; i < batch->size(); ++i) {
    const TimeInterval& T = (*batch)[i].spec.T;
    groups[{T.start, T.end}].push_back(i);
  }

  std::vector<LaneJob> jobs;
  jobs.reserve(groups.size());
  for (auto& [key, indices] : groups) {
    LaneJob job;
    job.snapshot = snapshot;
    job.T = TimeInterval{key.first, key.second};
    job.requests.reserve(indices.size());
    for (size_t i : indices) job.requests.push_back(std::move((*batch)[i]));
    jobs.push_back(std::move(job));
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto now = std::chrono::steady_clock::now();
    for (LaneJob& job : jobs) {
      for (const Request& request : job.requests) {
        // Submit-to-flush latency: how long admission held the request.
        // Recorded at handoff, so it never includes execution time — the
        // whole point of the lane tier.
        stats_.queue_micros.Record(
            std::chrono::duration<double, std::micro>(now -
                                                      request.submitted_at)
                .count());
      }
      lane_queue_.push_back(std::move(job));
    }
    stats_.lane_queue_peak =
        std::max(stats_.lane_queue_peak, lane_queue_.size());
  }
  lane_cv_.notify_all();
}

void QueryServer::LaneLoop(int lane) {
  for (;;) {
    LaneJob job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      lane_cv_.wait(lock, [&] {
        return lanes_stopping_ || !lane_queue_.empty();
      });
      if (lane_queue_.empty()) return;  // lanes_stopping_ and drained
      job = std::move(lane_queue_.front());
      lane_queue_.pop_front();
    }
    ExecuteJob(&job, lane);
  }
}

void QueryServer::ExecuteJob(LaneJob* job, int lane) {
  const auto exec_start = std::chrono::steady_clock::now();
  std::vector<QueryOutcome> outcomes;
  {
    // Exclusive checkout: this lane owns the session (and its scratch) until
    // the lease dies at the end of this scope. A concurrent lane on the same
    // (epoch, interval) key builds its own duplicate — never shares.
    SessionCache::Lease session =
        cache_.Checkout(job->snapshot, job->T, index_);
    std::vector<QuerySpec> specs;
    specs.reserve(job->requests.size());
    // Moved, not copied: nothing reads Request::spec after execution, and a
    // spec can carry a full query trajectory.
    for (Request& request : job->requests) {
      specs.push_back(std::move(request.spec));
    }
    outcomes = session->RunAll(specs);
  }
  const auto done = std::chrono::steady_clock::now();
  const double exec_micros =
      std::chrono::duration<double, std::micro>(done - exec_start).count();
  {
    // Count before resolving the futures: a client that saw its outcome
    // must also see it reflected in Stats().
    std::lock_guard<std::mutex> lock(mu_);
    LaneStats& lane_stats = stats_.lanes[static_cast<size_t>(lane)];
    ++lane_stats.batches;
    lane_stats.requests += job->requests.size();
    lane_stats.exec_micros.Record(exec_micros);
    for (const Request& request : job->requests) {
      ++stats_.completed;
      stats_.latency_micros.Record(
          std::chrono::duration<double, std::micro>(done -
                                                    request.submitted_at)
              .count());
    }
    in_flight_ -= job->requests.size();
  }
  for (size_t i = 0; i < job->requests.size(); ++i) {
    job->requests[i].promise.set_value(std::move(outcomes[i]));
  }
}

}  // namespace ust
