#include "server/query_server.h"

#include <algorithm>
#include <map>
#include <utility>

#include "util/fault.h"
#include "util/trace.h"

namespace ust {

namespace {

QueryOutcome RejectedOutcome(Status status, QueryKind kind) {
  QueryOutcome out;
  out.status = std::move(status);
  out.kind = kind;
  return out;
}

SessionOptions MakeSessionOptions(const ServerOptions& options) {
  SessionOptions session_options;
  session_options.threads = options.threads;
  session_options.planner = options.planner;
  session_options.arena_min_uses = options.arena_min_uses;
  session_options.delta_index = options.delta_index;
  return session_options;
}

void AddCounterSample(std::vector<MetricSample>* samples, const char* name,
                      uint64_t value) {
  MetricSample sample;
  sample.name = name;
  sample.kind = MetricSample::Kind::kCounter;
  sample.counter = value;
  samples->push_back(std::move(sample));
}

void AddGaugeSample(std::vector<MetricSample>* samples, const char* name,
                    int64_t value) {
  MetricSample sample;
  sample.name = name;
  sample.kind = MetricSample::Kind::kGauge;
  sample.gauge = value;
  samples->push_back(std::move(sample));
}

void AddHistogramSample(std::vector<MetricSample>* samples, const char* name,
                        const LatencyHistogram& histogram) {
  MetricSample sample;
  sample.name = name;
  sample.kind = MetricSample::Kind::kHistogram;
  sample.histogram = histogram;
  samples->push_back(std::move(sample));
}

/// A detached ServerStats (default-constructed, or hand-filled by a test)
/// has no registry snapshot; rebuild one from the named fields so ToJson
/// renders the same document either way. Mirrors the registration order of
/// the QueryServer constructor.
std::vector<MetricSample> SamplesFromFields(const ServerStats& stats) {
  std::vector<MetricSample> samples;
  samples.reserve(36);
  AddCounterSample(&samples, "submitted", stats.submitted);
  AddCounterSample(&samples, "admitted", stats.admitted);
  AddCounterSample(&samples, "rejected", stats.rejected);
  AddCounterSample(&samples, "rejected_queue_full", stats.rejected_queue_full);
  AddCounterSample(&samples, "rejected_shed", stats.rejected_shed);
  AddCounterSample(&samples, "rejected_draining", stats.rejected_draining);
  AddCounterSample(&samples, "completed", stats.completed);
  AddCounterSample(&samples, "expired_in_queue", stats.expired_in_queue);
  AddCounterSample(&samples, "expired_on_lane", stats.expired_on_lane);
  AddCounterSample(&samples, "degraded_requests", stats.degraded_requests);
  AddCounterSample(&samples, "batches", stats.batches);
  AddCounterSample(&samples, "flush_full", stats.flush_full);
  AddCounterSample(&samples, "flush_deadline", stats.flush_deadline);
  AddCounterSample(&samples, "flush_drain", stats.flush_drain);
  AddCounterSample(&samples, "early_stops", stats.early_stops);
  AddCounterSample(&samples, "worlds_saved", stats.worlds_saved);
  AddGaugeSample(&samples, "lane_queue_peak",
                 static_cast<int64_t>(stats.lane_queue_peak));
  AddGaugeSample(&samples, "overload_regime",
                 static_cast<int64_t>(stats.overload_regime));
  AddGaugeSample(&samples, "trace_dropped",
                 static_cast<int64_t>(stats.trace_dropped));
  AddCounterSample(&samples, "compactions", stats.compactions);
  AddCounterSample(&samples, "compaction_failures", stats.compaction_failures);
  AddGaugeSample(&samples, "delta_depth",
                 static_cast<int64_t>(stats.delta_depth));
  AddCounterSample(&samples, "cache_hits", stats.cache.hits);
  AddCounterSample(&samples, "cache_misses", stats.cache.misses);
  AddCounterSample(&samples, "cache_busy_misses", stats.cache.busy_misses);
  AddCounterSample(&samples, "cache_shared_joins", stats.cache.shared_joins);
  AddCounterSample(&samples, "cache_evictions_lru", stats.cache.evictions_lru);
  AddCounterSample(&samples, "cache_evictions_stale",
                   stats.cache.evictions_stale);
  AddCounterSample(&samples, "arena_builds", stats.cache.arena_builds);
  AddCounterSample(&samples, "arena_spec_reuses",
                   stats.cache.arena_spec_reuses);
  AddCounterSample(&samples, "arena_bytes", stats.cache.arena_bytes);
  AddCounterSample(&samples, "stale_index_drops",
                   stats.cache.stale_index_drops);
  AddCounterSample(&samples, "session_build_failures",
                   stats.cache.build_failures);
  AddHistogramSample(&samples, "latency_us", stats.latency_micros);
  AddHistogramSample(&samples, "queue_us", stats.queue_micros);
  return samples;
}

}  // namespace

uint64_t ServerStats::lane_steals() const {
  uint64_t total = 0;
  for (const LaneStats& lane : lanes) total += lane.steals;
  return total;
}

uint64_t ServerStats::morsels_executed() const {
  uint64_t total = 0;
  for (const LaneStats& lane : lanes) total += lane.morsels;
  return total;
}

uint64_t ServerStats::arena_hits() const {
  uint64_t total = 0;
  for (const LaneStats& lane : lanes) total += lane.arena_hits;
  return total;
}

uint64_t ServerStats::worlds_sampled() const {
  uint64_t total = 0;
  for (const LaneStats& lane : lanes) total += lane.worlds_sampled;
  return total;
}

uint64_t ServerStats::lane_idle_micros() const {
  uint64_t total = 0;
  for (const LaneStats& lane : lanes) total += lane.idle_micros;
  return total;
}

std::string ServerStats::ToJson() const {
  JsonWriter w;
  // The instruments, self-enumerated: a counter registered anywhere in the
  // serving tier shows up here without this function changing.
  for (const MetricSample& sample :
       metrics.empty() ? SamplesFromFields(*this) : metrics) {
    switch (sample.kind) {
      case MetricSample::Kind::kCounter:
        w.Uint(sample.name, sample.counter);
        break;
      case MetricSample::Kind::kGauge:
        w.Int(sample.name, sample.gauge);
        break;
      case MetricSample::Kind::kHistogram:
        w.Raw(sample.name, sample.histogram.ToJson());
        break;
    }
  }
  // Derived aggregates (functions of the snapshot, not instruments).
  w.Double("avg_batch_size",
           batches == 0 ? 0.0
                        : static_cast<double>(completed) /
                              static_cast<double>(batches),
           "%.3f");
  w.Uint("lane_queue_depth", lane_queue_depth);
  w.Uint("lane_steals", lane_steals());
  w.Uint("morsels_executed", morsels_executed());
  w.Uint("lane_idle_us", lane_idle_micros());
  w.Uint("worlds_sampled", worlds_sampled());
  std::vector<std::string> lane_objects;
  lane_objects.reserve(lanes.size());
  for (const LaneStats& lane : lanes) {
    JsonWriter lw;
    lw.Uint("batches", lane.batches);
    lw.Uint("requests", lane.requests);
    lw.Uint("morsels", lane.morsels);
    lw.Uint("steals", lane.steals);
    lw.Uint("arena_hits", lane.arena_hits);
    lw.Uint("worlds_sampled", lane.worlds_sampled);
    lw.Uint("idle_us", lane.idle_micros);
    lw.Raw("exec_us", lane.exec_micros.ToJson());
    lane_objects.push_back(lw.Render());
  }
  w.Raw("lanes", JsonWriter::Array(lane_objects));
  return w.Render();
}

QueryServer::QueryServer(const TrajectoryDatabase& db, const UstTree* index,
                         ServerOptions options)
    : db_(&db), index_(index), options_(options),
      cache_(options.session_cache_capacity, MakeSessionOptions(options)),
      overload_(options.overload) {
  // A zero batch size would dispatch empty batches forever while admitted
  // requests starve, a zero queue capacity would bounce all traffic, and a
  // zero-lane pool would stage jobs nobody executes; a server always admits,
  // batches and executes at least one spec at a time.
  options_.lanes = std::max(1, options_.lanes);
  options_.max_batch_size = std::max<size_t>(1, options_.max_batch_size);
  options_.queue_capacity = std::max<size_t>(1, options_.queue_capacity);
  options_.morsel_specs = std::max<size_t>(1, options_.morsel_specs);
  lane_stats_.resize(static_cast<size_t>(options_.lanes));
  // Instrument registration order is JSON field order (ToJson enumerates
  // the registry); SamplesFromFields above mirrors it for detached stats.
  c_submitted_ = metrics_.NewCounter("submitted");
  c_admitted_ = metrics_.NewCounter("admitted");
  c_rejected_ = metrics_.NewCounter("rejected");
  c_rejected_queue_full_ = metrics_.NewCounter("rejected_queue_full");
  c_rejected_shed_ = metrics_.NewCounter("rejected_shed");
  c_rejected_draining_ = metrics_.NewCounter("rejected_draining");
  c_completed_ = metrics_.NewCounter("completed");
  c_expired_in_queue_ = metrics_.NewCounter("expired_in_queue");
  c_expired_on_lane_ = metrics_.NewCounter("expired_on_lane");
  c_degraded_ = metrics_.NewCounter("degraded_requests");
  c_batches_ = metrics_.NewCounter("batches");
  c_flush_full_ = metrics_.NewCounter("flush_full");
  c_flush_deadline_ = metrics_.NewCounter("flush_deadline");
  c_flush_drain_ = metrics_.NewCounter("flush_drain");
  c_early_stops_ = metrics_.NewCounter("early_stops");
  c_worlds_saved_ = metrics_.NewCounter("worlds_saved");
  g_lane_queue_peak_ = metrics_.NewGauge("lane_queue_peak");
  g_overload_regime_ = metrics_.NewGauge("overload_regime");
  g_trace_dropped_ = metrics_.NewGauge("trace_dropped");
  c_compactions_ = metrics_.NewCounter("compactions");
  c_compaction_failures_ = metrics_.NewCounter("compaction_failures");
  g_delta_depth_ = metrics_.NewGauge("delta_depth");
  cache_.RegisterMetrics(&metrics_);
  h_latency_ = metrics_.NewHistogram("latency_us");
  h_queue_ = metrics_.NewHistogram("queue_us");
  if (options_.trace) {
    trace::Enable(options_.trace_events_per_thread);
    owns_trace_ = true;
  }
  lanes_.reserve(static_cast<size_t>(options_.lanes));
  for (int lane = 0; lane < options_.lanes; ++lane) {
    lanes_.emplace_back([this, lane] { LaneLoop(lane); });
  }
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
  if (options_.compaction) {
    compactor_ = std::thread([this] { CompactionLoop(); });
  }
}

QueryServer::~QueryServer() { Stop(); }

std::future<QueryOutcome> QueryServer::Submit(QuerySpec spec) {
  trace::Span admit_span("admit");
  std::promise<QueryOutcome> promise;
  std::future<QueryOutcome> future = promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    c_submitted_->Increment();
    if (stopping_) {
      // Deterministic drain contract: every Submit racing (or following)
      // Stop() resolves immediately with the same tagged backpressure
      // status a full queue produces — retryable, never ambiguous.
      c_rejected_->Increment();
      c_rejected_draining_->Increment();
      admit_span.set_tag("rejected");
      promise.set_value(RejectedOutcome(
          Status::ResourceLimit("query server is draining"), spec.kind));
      return future;
    }
    if (in_flight_ >= options_.queue_capacity) {
      // Backpressure: bounce immediately instead of blocking the client —
      // the caller sees kResourceLimit and can retry with its own policy.
      // Counting *in-flight* requests (not just the admission queue) keeps
      // the bound meaningful now that flushed batches wait in the lane
      // queue: execution backlog is still backlog.
      c_rejected_->Increment();
      c_rejected_queue_full_->Increment();
      admit_span.set_tag("rejected");
      promise.set_value(RejectedOutcome(
          Status::ResourceLimit("admission queue full"), spec.kind));
      return future;
    }
    // Overload control (DESIGN.md section 11), well before the hard bound:
    // the regime is re-evaluated on every admission from the in-flight
    // utilization (the queue-delay EWMA side is fed by the dispatcher).
    const OverloadRegime regime =
        overload_.Update(in_flight_, options_.queue_capacity);
    g_overload_regime_->Set(static_cast<int64_t>(regime));
    if (regime == OverloadRegime::kShed &&
        spec.priority <= overload_.options().shed_max_priority) {
      // Shed the lowest class early: cheaper for everyone than letting it
      // queue up, expire, and still cost a dispatcher pass.
      c_rejected_->Increment();
      c_rejected_shed_->Increment();
      admit_span.set_tag("shed");
      promise.set_value(RejectedOutcome(
          Status::ResourceLimit("shed under overload"), spec.kind));
      return future;
    }
    if (regime != OverloadRegime::kNormal && Degradable(spec)) {
      // Graceful degradation: coarsen the *implicit* precision default to
      // the server's overload epsilon. Epsilon-mode early stopping is
      // deterministic per spec, so the degraded spec is itself a perfectly
      // reproducible query — just a cheaper one than the client's default.
      spec.precision.mode = PrecisionMode::kEpsilon;
      spec.precision.epsilon = overload_.options().degrade_epsilon;
      spec.precision.delta = overload_.options().degrade_delta;
      c_degraded_->Increment();
    }
    c_admitted_->Increment();
    ++in_flight_;
    const uint64_t id = ++next_request_id_;
    admit_span.set_arg(id);
    Request request;
    request.spec = std::move(spec);
    request.promise = std::move(promise);
    request.submitted_at = std::chrono::steady_clock::now();
    request.id = id;
    if (request.spec.deadline_ms > 0.0) {
      // The budget starts at admission and covers queueing + staging +
      // execution wait: propagation, not a per-stage timer.
      request.has_deadline = true;
      request.deadline_at =
          request.submitted_at +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double, std::milli>(
                  request.spec.deadline_ms));
    }
    queue_.push_back(std::move(request));
  }
  cv_.notify_all();
  return future;
}

void QueryServer::Pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void QueryServer::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

void QueryServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  // Serialize the joins: concurrent Stop() callers (say, an explicit Stop
  // racing the destructor) all block here until the pipeline has fully
  // drained, and exactly one of them performs each join.
  std::lock_guard<std::mutex> join_lock(join_mu_);
  // The compactor can go at any point (it only rebuilds a cache); stopping
  // it first keeps tree builds from competing with the drain.
  {
    std::lock_guard<std::mutex> lock(compact_mu_);
    compact_stop_ = true;
  }
  compact_cv_.notify_all();
  if (compactor_.joinable()) compactor_.join();
  // Dispatcher next: it drains the admission queue into lane jobs, so only
  // after it exits is the lane queue complete...
  if (dispatcher_.joinable()) dispatcher_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    lanes_stopping_ = true;
  }
  lane_cv_.notify_all();
  // ...then the lanes run the lane queue dry: every admitted request
  // resolves before Stop returns.
  for (std::thread& lane : lanes_) {
    if (lane.joinable()) lane.join();
  }
  if (owns_trace_) {
    // Recording stops with the pipeline; the rings keep their contents for
    // DumpTrace. (Submitters may outlive Stop, but their probes now take
    // the single-branch disabled path.)
    trace::Disable();
  }
}

ServerStats QueryServer::Stats() const {
  ServerStats stats;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.lanes = lane_stats_;
    stats.lane_queue_depth = 0;
    for (const auto& group : groups_) {
      if (!group->adopted) ++stats.lane_queue_depth;
    }
  }
  // Refresh the wrap tally before snapshotting so the dump is current.
  g_trace_dropped_->Set(static_cast<int64_t>(trace::DroppedCount()));
  stats.metrics = metrics_.Snapshot();
  stats.submitted = c_submitted_->value();
  stats.admitted = c_admitted_->value();
  stats.rejected = c_rejected_->value();
  stats.rejected_queue_full = c_rejected_queue_full_->value();
  stats.rejected_shed = c_rejected_shed_->value();
  stats.rejected_draining = c_rejected_draining_->value();
  stats.completed = c_completed_->value();
  stats.expired_in_queue = c_expired_in_queue_->value();
  stats.expired_on_lane = c_expired_on_lane_->value();
  stats.degraded_requests = c_degraded_->value();
  stats.overload_regime = static_cast<size_t>(g_overload_regime_->value());
  stats.batches = c_batches_->value();
  stats.flush_full = c_flush_full_->value();
  stats.flush_deadline = c_flush_deadline_->value();
  stats.flush_drain = c_flush_drain_->value();
  stats.early_stops = c_early_stops_->value();
  stats.worlds_saved = c_worlds_saved_->value();
  stats.lane_queue_peak = static_cast<size_t>(g_lane_queue_peak_->value());
  stats.trace_dropped = static_cast<uint64_t>(g_trace_dropped_->value());
  stats.compactions = c_compactions_->value();
  stats.compaction_failures = c_compaction_failures_->value();
  stats.delta_depth = static_cast<size_t>(g_delta_depth_->value());
  stats.latency_micros = h_latency_->Snapshot();
  stats.queue_micros = h_queue_->Snapshot();
  stats.cache = cache_.stats();
  return stats;
}

bool QueryServer::DumpTrace(const std::string& path) const {
  return trace::DumpJson(path);
}

void QueryServer::DispatcherLoop() {
  trace::PrepareThisThread();  // ring allocation off the request path
  const auto delay = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(std::chrono::duration<double,
                                                                 std::milli>(
      std::max(0.0, options_.max_batch_delay_ms)));
  for (;;) {
    std::vector<Request> batch;
    const char* flush_tag = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return stopping_ || (!queue_.empty() && !paused_);
      });
      if (queue_.empty() && stopping_) return;
      if (!stopping_) {
        // Micro-batching window: the batch opened when the first spec was
        // seen; hold it open until it fills or the deadline passes. Late
        // submits keep landing in queue_ and are picked up by the drain.
        const auto deadline = std::chrono::steady_clock::now() + delay;
        while (!stopping_ && queue_.size() < options_.max_batch_size) {
          if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
            break;
          }
        }
      }
      const size_t n = std::min(queue_.size(), options_.max_batch_size);
      batch.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      Counter* flush_counter;
      if (stopping_) {
        flush_counter = c_flush_drain_;
        flush_tag = "drain";
      } else if (n >= options_.max_batch_size) {
        flush_counter = c_flush_full_;
        flush_tag = "full";
      } else {
        flush_counter = c_flush_deadline_;
        flush_tag = "deadline";
      }
      flush_counter->Increment();
      c_batches_->Increment();
    }
    if (!batch.empty()) {
      trace::Span flush_span("flush", batch.front().id, trace::kReqArg,
                             flush_tag);
      StageBatch(&batch);
    }
  }
}

std::chrono::steady_clock::time_point QueryServer::DeadlineNow() {
  return std::chrono::steady_clock::now() +
         std::chrono::nanoseconds(fault::SkewNs("deadline_skew"));
}

bool QueryServer::Degradable(const QuerySpec& spec) {
  return spec.kind != QueryKind::kContinuous &&
         spec.precision.mode == PrecisionMode::kFixedWorlds;
}

void QueryServer::StageBatch(std::vector<Request>* batch) {
  // Queue-side deadline shed: a request already past its budget resolves
  // here, before it costs a snapshot pin, a group slot or any lane time.
  // One clock read governs the whole pass.
  std::vector<Request> expired;
  {
    const auto now = DeadlineNow();
    size_t kept = 0;
    for (size_t i = 0; i < batch->size(); ++i) {
      Request& request = (*batch)[i];
      if (request.has_deadline && now >= request.deadline_at) {
        expired.push_back(std::move(request));
      } else {
        if (kept != i) (*batch)[kept] = std::move(request);
        ++kept;
      }
    }
    batch->resize(kept);
  }
  if (!expired.empty()) {
    const auto done = std::chrono::steady_clock::now();
    {
      std::lock_guard<std::mutex> lock(mu_);
      in_flight_ -= expired.size();
      for (const Request& request : expired) {
        // Their queue phase ended here too — and an expiring queue is
        // exactly the delay signal the overload controller must see.
        const double queue_us =
            std::chrono::duration<double, std::micro>(done -
                                                      request.submitted_at)
                .count();
        h_queue_->Record(queue_us);
        overload_.NoteQueueDelay(queue_us);
      }
    }
    for (Request& request : expired) {
      // Expired requests still resolve and still count as completed: every
      // admitted request delivers exactly one outcome (the reconciliation
      // invariant the chaos test pins).
      c_expired_in_queue_->Increment();
      c_completed_->Increment();
      h_latency_->Record(std::chrono::duration<double, std::micro>(
                             done - request.submitted_at)
                             .count());
      trace::Instant("expire_queue", request.id);
      request.promise.set_value(RejectedOutcome(
          Status::DeadlineExceeded("deadline expired in admission queue"),
          request.spec.kind));
    }
    if (batch->empty()) return;
  }

  // Admission point: the whole batch reads the epoch current at dispatch —
  // a concurrent writer's new epoch becomes visible only to later batches.
  // The snapshot rides inside each GroupTask, so the pin survives any
  // staging delay.
  DbSnapshot snapshot = db_->Snapshot();
  cache_.EvictStale(snapshot.version());

  // Group by query interval (the session cache key), preserving submit
  // order within each group. Outcomes are per-spec pure, so grouping never
  // changes results — only which session executes them. Each group is
  // published as a deque of spec-range morsels over pre-sized outcome
  // slots; distinct keys — and, with stealing, morsels of one key — may
  // execute concurrently.
  std::map<std::pair<Tic, Tic>, std::vector<size_t>> by_interval;
  for (size_t i = 0; i < batch->size(); ++i) {
    const TimeInterval& T = (*batch)[i].spec.T;
    by_interval[{T.start, T.end}].push_back(i);
  }

  std::vector<std::shared_ptr<GroupTask>> staged;
  staged.reserve(by_interval.size());
  for (auto& [key, indices] : by_interval) {
    auto group = std::make_shared<GroupTask>();
    group->snapshot = snapshot;
    group->T = TimeInterval{key.first, key.second};
    group->requests.reserve(indices.size());
    group->specs.reserve(indices.size());
    for (size_t i : indices) {
      group->requests.push_back(std::move((*batch)[i]));
      // Moved, not copied: nothing reads Request::spec after execution, and
      // a spec can carry a full query trajectory.
      group->specs.push_back(std::move(group->requests.back().spec));
    }
    group->outcomes.resize(group->specs.size());
    group->deque.Reset(0, group->specs.size(), options_.morsel_specs);
    staged.push_back(std::move(group));
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto now = std::chrono::steady_clock::now();
    size_t waiting = 0;
    for (auto& group : staged) {
      for (const Request& request : group->requests) {
        // Submit-to-flush latency: how long admission held the request.
        // Recorded at handoff, so it never includes execution time — the
        // whole point of the lane tier.
        const double queue_us =
            std::chrono::duration<double, std::micro>(now -
                                                      request.submitted_at)
                .count();
        h_queue_->Record(queue_us);
        overload_.NoteQueueDelay(queue_us);
        trace::Complete("queue", request.submitted_at, now, request.id);
      }
      groups_.push_back(std::move(group));
    }
    for (const auto& group : groups_) {
      if (!group->adopted) ++waiting;
    }
    g_lane_queue_peak_->MaxWith(static_cast<int64_t>(waiting));
  }
  lane_cv_.notify_all();
}

void QueryServer::LaneLoop(int lane) {
  trace::PrepareThisThread();  // ring allocation off the request path
  // Per-lane execution resources, reused across every morsel, group and
  // session this lane ever runs: the sampling scratch and (threads > 1) a
  // private world pool — shared sessions are read-only under RunMorsel, so
  // world sharding must come from lane-owned workers, never the session's.
  QuerySession::ExecScratch scratch;
  std::unique_ptr<ThreadPool> world_pool;
  if (options_.steal && options_.threads > 1) {
    world_pool = std::make_unique<ThreadPool>(options_.threads);
  }
  // The group whose deque this lane currently drains (owner affinity: its
  // session stays hot in cache between morsels).
  std::shared_ptr<GroupTask> own;
  for (;;) {
    std::shared_ptr<GroupTask> group;
    size_t begin = 0;
    size_t end = 0;
    bool adopt = false;
    bool stolen = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (;;) {
        // 1. Pop the next morsel of the lane's own group.
        if (own != nullptr && own->deque.PopFront(&begin, &end)) {
          group = own;
          break;
        }
        own.reset();
        // 2. Adopt the oldest unadopted group (FIFO keeps queue latency
        //    fair across intervals).
        for (const auto& candidate : groups_) {
          if (!candidate->adopted) {
            candidate->adopted = true;
            group = candidate;
            adopt = true;
            break;
          }
        }
        if (group != nullptr) break;
        // 3. Idle: steal the back half of the most-loaded ready group.
        //    (Groups still checking their session out are skipped — their
        //    owner publishes session_ready and wakes us when joinable.)
        if (options_.steal) {
          std::shared_ptr<GroupTask> victim;
          size_t most_loaded = 0;
          for (const auto& candidate : groups_) {
            if (!candidate->session_ready) continue;
            const size_t remaining = candidate->deque.remaining();
            if (remaining > most_loaded) {
              most_loaded = remaining;
              victim = candidate;
            }
          }
          if (victim != nullptr && victim->deque.StealHalf(&begin, &end)) {
            ++lane_stats_[static_cast<size_t>(lane)].steals;
            trace::Instant("steal", victim->requests.front().id);
            group = victim;
            stolen = true;
            break;
          }
        }
        if (lanes_stopping_) return;  // nothing claimable, drain complete
        // Idle accounting: this lane has nothing claimable. The clock reads
        // bracket only the wait (both under mu_, so the tally is exact and
        // race-free).
        const auto idle_start = std::chrono::steady_clock::now();
        lane_cv_.wait(lock);
        lane_stats_[static_cast<size_t>(lane)].idle_micros +=
            static_cast<uint64_t>(
                std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - idle_start)
                    .count());
      }
      if (adopt) {
        ++lane_stats_[static_cast<size_t>(lane)].batches;
        trace::Instant("lane_adopt", group->requests.front().id);
      }
    }
    if (adopt) {
      if (!options_.steal) {
        // Group granularity: the PR 4 scheduler, whole group on this lane.
        ExecuteGroupExclusive(group, lane);
        continue;
      }
      // Check the shared session out (build or join — possibly expensive,
      // so outside the server mutex), then open the deque to thieves.
      {
        UST_TRACE_SCOPE("session_checkout", group->requests.front().id);
        group->session = cache_.CheckoutShared(group->snapshot, group->T,
                                               index_);
      }
      if (!group->session) {
        // Build failed (injected or real). The deque was never opened to
        // thieves (session_ready stays false), so this lane owns every
        // spec: resolve the whole group with the error — promises must
        // never leak on a failure path.
        FailGroup(group, Status::Internal(
                             "session build failed for interval group"));
        continue;
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        group->session_ready = true;
      }
      lane_cv_.notify_all();
      own = std::move(group);
      continue;
    }
    if (stolen) {
      // A stolen half-range is the thief's private deque: drain it morsel
      // by morsel (each commits + re-checks completion independently).
      for (size_t b = begin; b < end; b += options_.morsel_specs) {
        ExecuteMorsel(group, b, std::min(b + options_.morsel_specs, end),
                      lane, world_pool.get(), &scratch);
      }
      continue;
    }
    ExecuteMorsel(group, begin, end, lane, world_pool.get(), &scratch);
  }
}

void QueryServer::ExecuteMorsel(const std::shared_ptr<GroupTask>& group,
                                size_t begin, size_t end, int lane,
                                ThreadPool* world_pool,
                                QuerySession::ExecScratch* scratch) {
  fault::MaybeStall("lane_stall");
  const auto exec_start = std::chrono::steady_clock::now();
  // Morsel-boundary deadline check: ONE clock read governs every spec of
  // this morsel — expiry never interrupts a running spec, so any spec that
  // does execute is bit-identical to the deadline-free run at any schedule.
  // Expired slots get their outcome written directly; the survivors run as
  // contiguous sub-ranges (RunMorsel is per-spec pure, so splitting the
  // range changes nothing).
  uint64_t expired_here = 0;
  {
    const auto now = DeadlineNow();
    size_t run_start = begin;
    for (size_t i = begin; i <= end; ++i) {
      const bool expired = i < end && group->requests[i].has_deadline &&
                           now >= group->requests[i].deadline_at;
      if (i < end && !expired) continue;
      if (i > run_start) {
        group->session->RunMorsel(group->specs, run_start, i,
                                  group->outcomes.data(), world_pool,
                                  scratch);
      }
      if (i < end) {
        QueryOutcome& out = group->outcomes[i];
        out.status = Status::DeadlineExceeded(
            "deadline expired before lane execution");
        out.kind = group->specs[i].kind;
        trace::Instant("expire_lane", group->requests[i].id);
        ++expired_here;
      }
      run_start = i + 1;
    }
  }
  c_expired_on_lane_->Increment(expired_here);
  const auto exec_end = std::chrono::steady_clock::now();
  const double exec_micros =
      std::chrono::duration<double, std::micro>(exec_end - exec_start)
          .count();
  // The backend tag reflects the first spec of the morsel (morsels are
  // planner-homogeneous in practice; mixed ones still show where the bulk
  // of the time went).
  trace::Complete("morsel_exec", exec_start, exec_end,
                  group->requests[begin].id, trace::kReqArg,
                  ExecutorKindName(group->outcomes[begin].executor));
  uint64_t arena_hits = 0;
  uint64_t early_stops = 0;
  uint64_t worlds_saved = 0;
  uint64_t worlds_sampled = 0;
  for (size_t i = begin; i < end; ++i) {
    const QueryOutcome& outcome = group->outcomes[i];
    if (outcome.used_arena) ++arena_hits;
    worlds_sampled += outcome.worlds_used;
    if (outcome.early_stopped) {
      ++early_stops;
      worlds_saved += group->specs[i].mc.num_worlds - outcome.worlds_used;
    }
  }
  c_early_stops_->Increment(early_stops);
  c_worlds_saved_->Increment(worlds_saved);
  bool last = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    LaneStats& lane_stats = lane_stats_[static_cast<size_t>(lane)];
    ++lane_stats.morsels;
    lane_stats.requests += end - begin;
    lane_stats.arena_hits += arena_hits;
    lane_stats.worlds_sampled += worlds_sampled;
    lane_stats.exec_micros.Record(exec_micros);
    group->completed += end - begin;
    last = group->completed == group->specs.size();
    if (last) {
      for (auto it = groups_.begin(); it != groups_.end(); ++it) {
        if (it->get() == group.get()) {
          groups_.erase(it);
          break;
        }
      }
    }
  }
  // The lane committing the group's final morsel delivers the whole group:
  // every slot was written before `completed` reached the total (each
  // writer bumped it under the mutex after writing), so the reads below
  // are ordered after every write.
  if (last) FinalizeGroup(group.get());
}

void QueryServer::ExecuteGroupExclusive(
    const std::shared_ptr<GroupTask>& group, int lane) {
  fault::MaybeStall("lane_stall");
  const auto exec_start = std::chrono::steady_clock::now();
  uint64_t expired_here = 0;
  {
    // Exclusive checkout: this lane owns the session (and its scratch)
    // until the lease dies at the end of this scope. A concurrent lane on
    // the same (epoch, interval) key builds its own duplicate — never
    // shares.
    SessionCache::Lease session = [&] {
      UST_TRACE_SCOPE("session_checkout", group->requests.front().id);
      return cache_.Checkout(group->snapshot, group->T, index_);
    }();
    if (!session) {
      FailGroup(group, Status::Internal(
                           "session build failed for interval group"));
      return;
    }
    // Group-boundary deadline check (the whole group is this scheduler's
    // morsel): expired slots resolve directly, survivors run through
    // RunAll — outcome[i] is bit-identical to the full-batch run because
    // RunAll is per-spec pure.
    const auto now = DeadlineNow();
    std::vector<size_t> live;
    live.reserve(group->specs.size());
    for (size_t i = 0; i < group->specs.size(); ++i) {
      if (group->requests[i].has_deadline &&
          now >= group->requests[i].deadline_at) {
        QueryOutcome& out = group->outcomes[i];
        out.status = Status::DeadlineExceeded(
            "deadline expired before lane execution");
        out.kind = group->specs[i].kind;
        trace::Instant("expire_lane", group->requests[i].id);
        ++expired_here;
      } else {
        live.push_back(i);
      }
    }
    if (expired_here == 0) {
      group->outcomes = session->RunAll(group->specs);
    } else if (!live.empty()) {
      std::vector<QuerySpec> survivors;
      survivors.reserve(live.size());
      for (size_t i : live) survivors.push_back(group->specs[i]);
      std::vector<QueryOutcome> outcomes = session->RunAll(survivors);
      for (size_t j = 0; j < live.size(); ++j) {
        group->outcomes[live[j]] = std::move(outcomes[j]);
      }
    }
  }
  c_expired_on_lane_->Increment(expired_here);
  const auto exec_end = std::chrono::steady_clock::now();
  const double exec_micros =
      std::chrono::duration<double, std::micro>(exec_end - exec_start)
          .count();
  trace::Complete("morsel_exec", exec_start, exec_end,
                  group->requests.front().id, trace::kReqArg,
                  ExecutorKindName(group->outcomes.empty()
                                       ? ExecutorKind::kAuto
                                       : group->outcomes.front().executor));
  uint64_t arena_hits = 0;
  uint64_t early_stops = 0;
  uint64_t worlds_saved = 0;
  uint64_t worlds_sampled = 0;
  for (size_t i = 0; i < group->outcomes.size(); ++i) {
    const QueryOutcome& outcome = group->outcomes[i];
    if (outcome.used_arena) ++arena_hits;
    worlds_sampled += outcome.worlds_used;
    if (outcome.early_stopped) {
      ++early_stops;
      worlds_saved += group->specs[i].mc.num_worlds - outcome.worlds_used;
    }
  }
  c_early_stops_->Increment(early_stops);
  c_worlds_saved_->Increment(worlds_saved);
  {
    std::lock_guard<std::mutex> lock(mu_);
    LaneStats& lane_stats = lane_stats_[static_cast<size_t>(lane)];
    ++lane_stats.morsels;  // the whole group, as one morsel
    lane_stats.requests += group->specs.size();
    lane_stats.arena_hits += arena_hits;
    lane_stats.worlds_sampled += worlds_sampled;
    lane_stats.exec_micros.Record(exec_micros);
    group->completed = group->specs.size();
    for (auto it = groups_.begin(); it != groups_.end(); ++it) {
      if (it->get() == group.get()) {
        groups_.erase(it);
        break;
      }
    }
  }
  FinalizeGroup(group.get());
}

void QueryServer::CompactionLoop() {
  trace::PrepareThisThread();
  const auto period = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(std::chrono::duration<double,
                                                                 std::milli>(
      std::max(0.1, options_.compaction_interval_ms)));
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(compact_mu_);
      if (compact_cv_.wait_for(lock, period, [&] { return compact_stop_; })) {
        return;
      }
    }
    // Outside the lock: a rebuild can be long, and Stop() must not wait for
    // more than the pass in flight.
    CompactOnce();
  }
}

void QueryServer::CompactOnce() {
  DbSnapshot snapshot = db_->Snapshot();
  // The freshest base wins: a previously compacted tree published through
  // the snapshot supersedes the seed tree the server was constructed with.
  const UstTree* base = snapshot.base_index() != nullptr
                            ? snapshot.base_index().get()
                            : index_;
  const size_t depth = base == nullptr
                           ? snapshot.size()
                           : snapshot.DeltaDepth(base->built_version());
  g_delta_depth_->Set(static_cast<int64_t>(depth));
  if (depth < options_.compaction_min_depth) return;
  if (base != nullptr && base->built_version() == snapshot.version()) return;
  UST_TRACE_SCOPE("compact", depth, "objects");
  if (fault::ShouldFail("compaction")) {
    // Injected rebuild failure, taken exactly like a real one: the
    // previous base stays published and serving continues on deltas.
    c_compaction_failures_->Increment();
    return;
  }
  auto tree = UstTree::Build(snapshot);
  if (!tree.ok()) {
    // The previous base stays published; sessions keep patching it with
    // deltas (or fall back) exactly as before this attempt.
    c_compaction_failures_->Increment();
    return;
  }
  db_->PublishIndex(std::make_shared<const UstTree>(tree.MoveValue()));
  c_compactions_->Increment();
  g_delta_depth_->Set(
      static_cast<int64_t>(db_->Snapshot().DeltaDepth(snapshot.version())));
}

void QueryServer::FailGroup(const std::shared_ptr<GroupTask>& group,
                            Status status) {
  for (size_t i = 0; i < group->specs.size(); ++i) {
    QueryOutcome& out = group->outcomes[i];
    out.status = status;
    out.kind = group->specs[i].kind;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    group->completed = group->specs.size();
    for (auto it = groups_.begin(); it != groups_.end(); ++it) {
      if (it->get() == group.get()) {
        groups_.erase(it);
        break;
      }
    }
  }
  FinalizeGroup(group.get());
}

void QueryServer::FinalizeGroup(GroupTask* group) {
  UST_TRACE_SCOPE("finalize", group->requests.front().id);
  // Hand the session back before resolving futures: a waiting client's
  // next request should find it in the cache (or join it), not race it.
  group->session.Release();
  const auto done = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    in_flight_ -= group->requests.size();
  }
  // Count before resolving the futures: a client that saw its outcome must
  // also see it reflected in Stats(). The instruments are atomic, so the
  // server mutex is no longer needed for this.
  for (const Request& request : group->requests) {
    c_completed_->Increment();
    h_latency_->Record(std::chrono::duration<double, std::micro>(
                           done - request.submitted_at)
                           .count());
  }
  for (size_t i = 0; i < group->requests.size(); ++i) {
    group->requests[i].promise.set_value(std::move(group->outcomes[i]));
  }
}

}  // namespace ust
