// The overload controller of the serving tier (DESIGN.md section 11): a
// tiny regime state machine over the two congestion signals the server
// already maintains — the in-flight gauge (admitted, not yet completed,
// the quantity the admission bound caps) and the submit-to-flush queue
// delay (the queue_us histogram's input). It picks one of three regimes:
//
//   kNormal  — serve everything at requested precision.
//   kDegrade — graceful precision degradation: incoming Monte-Carlo specs
//              that did not ask for an explicit precision are given the
//              server-default epsilon target, so answers get *cheaper*
//              (adaptive early stopping, DESIGN.md section 8) instead of
//              requests getting dropped. Still-correct-within-epsilon by
//              the Wilson/Hoeffding bounds; counted as degraded_requests.
//   kShed    — adaptive load shedding: requests at or below the priority
//              floor are rejected at admission (kResourceLimit, counted as
//              rejected_shed) *before* they cost a queue slot or lane time,
//              so the work that is admitted still completes inside its
//              deadline — the difference between goodput staying flat past
//              saturation and collapsing.
//
// Escalation is immediate (a signal over a watermark raises the regime on
// the next update); de-escalation steps down one regime per update and only
// once the signal cleared the entry watermark by `exit_hysteresis`, so the
// regime does not flap at a watermark boundary. The controller is a plain
// object — the server calls it under its own mutex — and its decisions are
// a pure function of the observed signal sequence, so tests can drive it
// deterministically.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ust {

/// \brief Serving regime, ordered by severity.
enum class OverloadRegime { kNormal = 0, kDegrade = 1, kShed = 2 };

/// Stable lowercase name ("normal", "degrade", "shed").
const char* OverloadRegimeName(OverloadRegime regime);

/// \brief Controller thresholds and degradation policy.
struct OverloadOptions {
  /// Master switch: false pins kNormal (no degradation, no shedding; the
  /// hard admission bound still applies).
  bool enabled = true;
  /// Enter kDegrade when in_flight / capacity reaches this fraction.
  double degrade_watermark = 0.50;
  /// Enter kShed when in_flight / capacity reaches this fraction.
  double shed_watermark = 0.85;
  /// De-escalate only once the signal is this far *below* the entry
  /// watermark (fraction of capacity / of the queue-delay threshold).
  double exit_hysteresis = 0.10;
  /// Enter kDegrade / kShed when the queue-delay EWMA (submit-to-flush,
  /// milliseconds) reaches these. Generous defaults: a healthy server
  /// flushes in ~max_batch_delay_ms, so sustained 100x of that means the
  /// dispatcher cannot keep up regardless of the in-flight count.
  double degrade_queue_ms = 250.0;
  double shed_queue_ms = 1000.0;
  /// EWMA smoothing factor for the queue-delay signal (per batch flushed).
  double queue_ewma_alpha = 0.2;
  /// The server-default precision applied to degradable specs in kDegrade:
  /// stop sampling once the estimate is within +-epsilon at confidence
  /// 1 - delta (PrecisionMode::kEpsilon).
  double degrade_epsilon = 0.05;
  double degrade_delta = 0.05;
  /// kShed rejects requests with QuerySpec::priority at or below this.
  /// Default traffic (priority 0) sheds; clients mark latency-critical
  /// requests with a higher priority to ride out the overload.
  int shed_max_priority = 0;
};

/// \brief The regime state machine. Not internally synchronized: the owner
/// serializes Update/NoteQueueDelay/regime (the server holds its mutex).
class OverloadController {
 public:
  explicit OverloadController(OverloadOptions options = {});

  /// Observe the admission-time signal and return the regime to apply to
  /// the *current* request. `capacity` is the admission bound.
  OverloadRegime Update(size_t in_flight, size_t capacity);

  /// Observe one request's submit-to-flush delay (dispatcher, per request
  /// at flush time; microseconds — the queue_us histogram's unit).
  void NoteQueueDelay(double micros);

  OverloadRegime regime() const { return regime_; }
  /// Smoothed queue delay, milliseconds (0 until the first flush).
  double queue_delay_ewma_ms() const { return queue_ewma_ms_; }
  /// Regime escalations seen (normal->degrade counts 1, normal->shed 2).
  uint64_t escalations() const { return escalations_; }

  const OverloadOptions& options() const { return options_; }

 private:
  /// Severity the raw signals call for, ignoring hysteresis.
  OverloadRegime Target(double utilization) const;
  /// True when `utilization` cleared `watermark` by the exit hysteresis and
  /// the queue EWMA cleared `queue_ms` likewise.
  bool ClearedFor(double utilization, double watermark,
                  double queue_ms) const;

  OverloadOptions options_;
  OverloadRegime regime_ = OverloadRegime::kNormal;
  double queue_ewma_ms_ = 0.0;
  uint64_t escalations_ = 0;
};

}  // namespace ust
