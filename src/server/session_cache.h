// The serving tier's session cache (DESIGN.md section 5): an LRU map from
// (database epoch, query interval) to a warmed QuerySession, so traffic that
// repeats an interval amortizes posterior adaptation, sampler warm-up and
// TimeSlab construction across *requests* exactly like QuerySession::RunAll
// amortizes them across a batch.
//
// Keying on the epoch gives snapshot isolation for free: after a write, the
// next lookup carries the new version, misses, and builds a session over the
// new epoch; sessions pinned to older epochs can never be returned again and
// are dropped by EvictStale (or age out of the LRU). Because posterior
// caches live on the shared UncertainObjects, a new epoch's session re-adapts
// only the objects that actually changed — warming is incremental.
//
// Externally synchronized: the cache is owned by the QueryServer's dispatcher
// thread (sessions are single-lane by contract, so handing them to arbitrary
// threads would be wrong anyway).
#pragma once

#include <cstdint>
#include <list>
#include <memory>

#include "index/ust_tree.h"
#include "query/session.h"

namespace ust {

/// \brief Counters of SessionCache behavior (monotonic).
struct SessionCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;          ///< lookups that built a new session
  uint64_t evictions_lru = 0;   ///< dropped for capacity
  uint64_t evictions_stale = 0; ///< dropped because their epoch passed
};

/// \brief LRU cache of warmed QuerySessions keyed by (epoch, interval).
class SessionCache {
 public:
  /// `capacity` >= 1; `session_options` is applied to every built session.
  SessionCache(size_t capacity, SessionOptions session_options);

  /// The session for (snapshot.version(), T): the cached one, or a fresh one
  /// built over `snapshot`, prepared (posteriors + samplers warmed) and with
  /// the `T` slab pre-built. `index` is attached only when it was built over
  /// the same epoch (a stale index would prune wrongly; the session would
  /// drop it anyway). The returned session stays valid while the caller
  /// holds the shared_ptr, even if it is evicted meanwhile.
  std::shared_ptr<QuerySession> Get(const DbSnapshot& snapshot,
                                    const TimeInterval& T,
                                    const UstTree* index);

  /// Drop every session pinned to an epoch older than `live_version`.
  void EvictStale(uint64_t live_version);

  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }
  const SessionCacheStats& stats() const { return stats_; }

 private:
  struct Entry {
    uint64_t version;
    TimeInterval T;
    std::shared_ptr<QuerySession> session;
  };

  size_t capacity_;
  SessionOptions session_options_;
  std::list<Entry> entries_;  ///< MRU at front, LRU at back
  SessionCacheStats stats_;
};

}  // namespace ust
