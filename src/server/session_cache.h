// The serving tier's session cache (DESIGN.md section 5): an LRU map from
// (database epoch, query interval) to a warmed QuerySession, so traffic that
// repeats an interval amortizes posterior adaptation, sampler warm-up and
// TimeSlab construction across *requests* exactly like QuerySession::RunAll
// amortizes them across a batch.
//
// Keying on the epoch gives snapshot isolation for free: after a write, the
// next lookup carries the new version, misses, and builds a session over the
// new epoch; sessions pinned to older epochs can never be returned again and
// are dropped by EvictStale (or age out of the LRU). Because posterior
// caches live on the shared UncertainObjects, a new epoch's session re-adapts
// only the objects that actually changed — warming is incremental.
//
// Checkout protocol (the execution-lane contract, DESIGN.md section 5.5):
// a QuerySession is single-lane — its worker scratch and slab cache must
// never be shared by two concurrent callers. Checkout() therefore *removes*
// the entry from the cache and hands it out inside a Lease; exclusivity is
// structural, not flag-based. A second lane checking out the same
// (epoch, interval) while the first lease is live simply misses and builds a
// duplicate session (counted in `busy_misses`; duplicates are correct —
// outcomes are a pure function of (epoch, spec)). The Lease returns the
// session on destruction: reinserted at MRU unless its epoch has passed, in
// which case it is dropped as stale. All entry points are thread-safe.
//
// The morsel scheduler (DESIGN.md section 5.6) adds a *shared* flavor:
// CheckoutShared hands out a refcounted SharedLease that later shared
// callers on the same key JOIN instead of duplicating — several lanes
// executing morsels of one hot (epoch, interval), and back-to-back batches
// for it, all read one warmed session through the read-only
// QuerySession::RunMorsel path. The session rejoins the idle LRU when the
// last holder releases.
//
// Session construction runs outside the LRU lock, and only its Prepare()
// phase holds a dedicated *warm lock*: posterior and sampler caches are
// built lazily on the shared UncertainObjects (unsynchronized by design,
// see model/db_snapshot.h), so two lanes must never cold-warm overlapping
// object sets concurrently. Serializing Prepare() — completed object by
// object when it fails partway, so nothing is left cold — preserves that
// single-warmer contract with lanes in play: the second session over an
// epoch finds every object already warm and prepares in microseconds,
// while session construction, slab warming and *execution* (pure reads of
// warmed state) stay fully concurrent.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>

#include "index/ust_tree.h"
#include "query/session.h"
#include "util/metrics.h"

namespace ust {

/// \brief Counters of SessionCache behavior (monotonic).
struct SessionCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;          ///< lookups that built a new session
  uint64_t busy_misses = 0;     ///< of `misses`: the key existed but every
                                ///< matching session was leased to a lane
  uint64_t shared_joins = 0;    ///< of `hits`: joined a live shared lease
                                ///< instead of building a duplicate
  uint64_t evictions_lru = 0;   ///< dropped for capacity
  uint64_t evictions_stale = 0; ///< dropped because their epoch passed
  // World-arena activity across every session this cache built (the
  // injected ArenaCounters; see query/session.h).
  uint64_t arena_builds = 0;       ///< arenas materialized
  uint64_t arena_spec_reuses = 0;  ///< specs evaluated against an arena
  uint64_t arena_bytes = 0;        ///< slab bytes across built arenas
  uint64_t stale_index_drops = 0;  ///< sessions that had to drop a stale
                                   ///< index (no delta patch possible)
  uint64_t build_failures = 0;     ///< session builds that failed outright
                                   ///< (empty lease handed back)
};

/// \brief Thread-safe LRU cache of warmed QuerySessions keyed by
/// (epoch, interval), handed out one lane at a time via leases.
class SessionCache {
 public:
  /// Exclusive handle on one checked-out session. Movable, not copyable;
  /// returns the session to the cache on destruction.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept { *this = std::move(other); }
    Lease& operator=(Lease&& other) noexcept;
    ~Lease() { Release(); }

    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    QuerySession* operator->() const { return session_.get(); }
    QuerySession& operator*() const { return *session_; }
    QuerySession* get() const { return session_.get(); }
    explicit operator bool() const { return session_ != nullptr; }

    /// Return the session to the cache now (idempotent).
    void Release();

   private:
    friend class SessionCache;
    Lease(SessionCache* cache, std::shared_ptr<QuerySession> session,
          uint64_t version, TimeInterval T)
        : cache_(cache), session_(std::move(session)), version_(version),
          T_(T) {}

    SessionCache* cache_ = nullptr;
    std::shared_ptr<QuerySession> session_;
    uint64_t version_ = 0;
    TimeInterval T_{0, 0};
  };

  /// \brief Shared (read-only execute) handle on one session: several lanes
  /// running morsels of the same (epoch, interval) — or back-to-back groups
  /// for one hot key — hold it simultaneously, each restricted by contract
  /// to QuerySession::RunMorsel with its own scratch. Refcounted: the
  /// session returns to the idle LRU when the last holder releases. A live
  /// shared lease is *joinable* by later CheckoutShared calls, which is
  /// what spares hot groups the busy-miss duplicate builds the exclusive
  /// protocol paid.
  class SharedLease {
   public:
    SharedLease() = default;
    SharedLease(SharedLease&& other) noexcept { *this = std::move(other); }
    SharedLease& operator=(SharedLease&& other) noexcept;
    ~SharedLease() { Release(); }

    SharedLease(const SharedLease&) = delete;
    SharedLease& operator=(const SharedLease&) = delete;

    QuerySession* operator->() const { return session_.get(); }
    QuerySession& operator*() const { return *session_; }
    QuerySession* get() const { return session_.get(); }
    explicit operator bool() const { return session_ != nullptr; }

    /// Drop this holder's reference now (idempotent); the last release
    /// returns the session to the cache.
    void Release();

   private:
    friend class SessionCache;
    SharedLease(SessionCache* cache, void* entry,
                std::shared_ptr<QuerySession> session)
        : cache_(cache), entry_(entry), session_(std::move(session)) {}

    SessionCache* cache_ = nullptr;
    void* entry_ = nullptr;  ///< the cache's SharedEntry node
    std::shared_ptr<QuerySession> session_;
  };

  /// `capacity` >= 1; `session_options` is applied to every built session.
  SessionCache(size_t capacity, SessionOptions session_options);

  /// Exclusive lease on a session for (snapshot.version(), T): a cached idle
  /// one, or a fresh one built over `snapshot`, prepared (posteriors +
  /// samplers warmed) and with the `T` slab pre-built. The freshest base
  /// tree wins: a compacted base published through the snapshot supersedes
  /// `index`, and the session patches any remaining epoch gap with a delta
  /// (or drops the index, counted in stale_index_drops). No other lane can
  /// obtain this session until the lease dies.
  Lease Checkout(const DbSnapshot& snapshot, const TimeInterval& T,
                 const UstTree* index);

  /// Shared lease for (snapshot.version(), T): joins a live shared lease on
  /// the key when one exists (counted as a hit + shared_join — no build at
  /// all), else promotes a cached idle session, else builds one like
  /// Checkout. Holders may only execute through the read-only morsel path;
  /// Run/RunAll/WarmInterval on a shared session are the caller's bug.
  SharedLease CheckoutShared(const DbSnapshot& snapshot,
                             const TimeInterval& T, const UstTree* index);

  /// Drop every *idle* session pinned to an epoch older than `live_version`,
  /// and drop leased ones when their lease is returned.
  void EvictStale(uint64_t live_version);

  /// Idle sessions currently in the cache (leased-out ones are not counted).
  size_t size() const;
  size_t capacity() const { return capacity_; }
  SessionCacheStats stats() const;

  /// Register this cache's instruments (cache_* and the injected arena_*
  /// tallies) with `registry`; the cache must outlive it. How the serving
  /// tier folds cache activity into its self-enumerating stats dump.
  void RegisterMetrics(MetricRegistry* registry) const;

 private:
  friend class Lease;
  friend class SharedLease;

  struct Entry {
    uint64_t version;
    TimeInterval T;
    std::shared_ptr<QuerySession> session;
  };

  /// One shared-leased session: joinable while refs > 0; the node address
  /// is stable (std::list), so leases hold a pointer to it.
  struct SharedEntry {
    uint64_t version;
    TimeInterval T;
    std::shared_ptr<QuerySession> session;
    size_t refs;
  };

  /// Build + warm a fresh session for the key (the miss path shared by both
  /// checkout flavors); runs outside mu_, Prepare under warm_mu_.
  std::shared_ptr<QuerySession> BuildSession(const DbSnapshot& snapshot,
                                             const TimeInterval& T,
                                             const UstTree* index);

  /// Reinsert an idle session at MRU — or drop it as stale / over capacity.
  /// Caller must hold mu_.
  void InsertIdleLocked(std::shared_ptr<QuerySession> session,
                        uint64_t version, const TimeInterval& T);

  /// Lease return path: reinsert at MRU or drop as stale.
  void ReturnSession(std::shared_ptr<QuerySession> session, uint64_t version,
                     const TimeInterval& T);

  /// Shared-lease return path: unref; the last holder reinserts or drops.
  void ReleaseShared(SharedEntry* entry);

  /// Retire one busy marker for the key. Caller must hold mu_. Build
  /// failures must call this themselves: an empty lease never releases.
  void RemoveLeasedMarkerLocked(uint64_t version, const TimeInterval& T);

  const size_t capacity_;
  /// Not const: the constructor points its arena_counters at the cache's
  /// own tally below, so every session built here reports into it.
  SessionOptions session_options_;
  ArenaCounters arena_counters_;

  mutable std::mutex mu_;
  /// Serializes session warm-up (the single-warmer contract of
  /// model/db_snapshot.h); never held together with mu_.
  std::mutex warm_mu_;
  std::list<Entry> entries_;  ///< MRU at front, LRU at back; idle only
  std::list<SharedEntry> shared_;  ///< live shared leases (joinable)
  /// Keys of live exclusive leases and in-flight builds (duplicates
  /// allowed): the busy-miss detector. At most `lanes` entries in practice,
  /// so a flat list beats a map.
  std::list<std::pair<uint64_t, TimeInterval>> leased_;
  uint64_t min_live_version_ = 0;  ///< floor set by EvictStale
  // Instruments, not plain fields (DESIGN.md section 9): stats() snapshots
  // them into SessionCacheStats; RegisterMetrics plugs them into a registry.
  Counter c_hits_;
  Counter c_misses_;
  Counter c_busy_misses_;
  Counter c_shared_joins_;
  Counter c_evictions_lru_;
  Counter c_evictions_stale_;
  Counter c_stale_index_drops_;
  Counter c_build_failures_;
};

}  // namespace ust
