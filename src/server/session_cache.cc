#include "server/session_cache.h"

#include <algorithm>

#include "util/check.h"

namespace ust {

SessionCache::SessionCache(size_t capacity, SessionOptions session_options)
    : capacity_(std::max<size_t>(1, capacity)),
      session_options_(session_options) {}

std::shared_ptr<QuerySession> SessionCache::Get(const DbSnapshot& snapshot,
                                                const TimeInterval& T,
                                                const UstTree* index) {
  const uint64_t version = snapshot.version();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->version == version && it->T == T) {
      ++stats_.hits;
      entries_.splice(entries_.begin(), entries_, it);  // bump to MRU
      return entries_.front().session;
    }
  }
  ++stats_.misses;
  if (index != nullptr && index->built_version() != version) index = nullptr;
  auto session =
      std::make_shared<QuerySession>(snapshot, index, session_options_);
  // Warm everything a first request would otherwise pay for: posterior
  // adaptation + alias samplers (Prepare — a failure there is per-query
  // surfaced by RunAll, so it is deliberately not fatal here) and the
  // R*-tree slab of the keyed interval.
  (void)session->Prepare();
  session->WarmInterval(T);
  entries_.push_front(Entry{version, T, session});
  while (entries_.size() > capacity_) {
    entries_.pop_back();
    ++stats_.evictions_lru;
  }
  return entries_.front().session;
}

void SessionCache::EvictStale(uint64_t live_version) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->version < live_version) {
      it = entries_.erase(it);
      ++stats_.evictions_stale;
    } else {
      ++it;
    }
  }
}

}  // namespace ust
