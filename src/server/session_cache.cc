#include "server/session_cache.h"

#include <algorithm>
#include <utility>

#include "markov/propagate_workspace.h"
#include "model/posterior_model.h"
#include "util/fault.h"
#include "util/trace.h"

namespace ust {

SessionCache::Lease& SessionCache::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    Release();
    cache_ = other.cache_;
    session_ = std::move(other.session_);
    version_ = other.version_;
    T_ = other.T_;
    other.cache_ = nullptr;
    other.session_.reset();
  }
  return *this;
}

void SessionCache::Lease::Release() {
  if (cache_ != nullptr && session_ != nullptr) {
    cache_->ReturnSession(std::move(session_), version_, T_);
  }
  cache_ = nullptr;
  session_.reset();
}

SessionCache::SharedLease& SessionCache::SharedLease::operator=(
    SharedLease&& other) noexcept {
  if (this != &other) {
    Release();
    cache_ = other.cache_;
    entry_ = other.entry_;
    session_ = std::move(other.session_);
    other.cache_ = nullptr;
    other.entry_ = nullptr;
    other.session_.reset();
  }
  return *this;
}

void SessionCache::SharedLease::Release() {
  if (cache_ != nullptr && entry_ != nullptr) {
    cache_->ReleaseShared(static_cast<SharedEntry*>(entry_));
  }
  cache_ = nullptr;
  entry_ = nullptr;
  session_.reset();
}

SessionCache::SessionCache(size_t capacity, SessionOptions session_options)
    : capacity_(std::max<size_t>(1, capacity)),
      session_options_(session_options) {
  // Every session built by this cache tallies its arena activity here, so
  // stats() reports group sharing across session churn and eviction.
  session_options_.arena_counters = &arena_counters_;
  session_options_.stale_index_drops = &c_stale_index_drops_;
}

std::shared_ptr<QuerySession> SessionCache::BuildSession(
    const DbSnapshot& snapshot, const TimeInterval& T, const UstTree* index) {
  // Build outside the LRU lock (lookups stay fast). Only the warm-up below
  // needs the warm lock: session construction and the R*-tree slab build
  // touch nothing shared, so they proceed concurrently across lanes.
  UST_TRACE_SCOPE("session_build", snapshot.version(), "epoch");
  if (fault::ShouldFail("session_build")) {
    // Injected build failure: the caller gets an empty lease and must
    // resolve its whole group with an error instead of leaking promises.
    return nullptr;
  }
  // A compacted base published through the snapshot supersedes the caller's
  // (older) tree; the session pins the snapshot, which keeps the raw pointer
  // alive for its whole life. Whatever base is chosen, the session itself
  // patches any remaining epoch gap with a delta — or counts the drop.
  if (snapshot.base_index() != nullptr &&
      (index == nullptr ||
       snapshot.base_index()->built_version() > index->built_version())) {
    index = snapshot.base_index().get();
  }
  auto session =
      std::make_shared<QuerySession>(snapshot, index, session_options_);
  {
    UST_TRACE_SCOPE("session_warm", snapshot.version(), "epoch");
    // Adaptation mutates shared per-object caches, and exactly one thread
    // may cold-warm an object (model/db_snapshot.h). The first session over
    // an epoch pays the adaptation; later misses re-walk warm objects in
    // microseconds without queueing behind anything expensive.
    std::lock_guard<std::mutex> warm_lock(warm_mu_);
    // Warm what a first request would otherwise pay for: posterior
    // adaptation + alias samplers (a failure is per-query surfaced by
    // RunAll, so it is deliberately not fatal here).
    if (!session->Prepare().ok()) {
      // Prepare's serial path stops at the first failing object, which
      // would leave every later object cold — and lane-concurrent execution
      // would then lazily cold-adapt them *outside* this lock. Finish the
      // sweep object by object instead: afterwards each object is either
      // fully warm (posterior + samplers) or deterministically failing, and
      // failed adaptations write nothing shared, so execution never
      // cold-writes shared state no matter how many lanes touch it.
      PropagateWorkspace ws(snapshot.space().size());
      for (size_t i = 0; i < snapshot.size(); ++i) {
        auto posterior = snapshot.object(static_cast<ObjectId>(i)).Posterior(&ws);
        if (posterior.ok()) posterior.value()->EnsureSamplers();
      }
    }
  }
  // Pre-build the keyed interval's index slab (session-local, lock-free).
  session->WarmInterval(T);
  return session;
}

SessionCache::Lease SessionCache::Checkout(const DbSnapshot& snapshot,
                                           const TimeInterval& T,
                                           const UstTree* index) {
  const uint64_t version = snapshot.version();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->version == version && it->T == T) {
        // Pop the entry: exclusivity by removal — while this lease is live
        // the session simply is not in the cache for anyone else to find.
        c_hits_.Increment();
        std::shared_ptr<QuerySession> session = std::move(it->session);
        entries_.erase(it);
        leased_.emplace_back(version, T);
        return Lease(this, std::move(session), version, T);
      }
    }
    c_misses_.Increment();
    // A miss whose key is currently leased to another lane (exclusively or
    // shared — an exclusive caller can never join a shared lease) means we
    // are about to build a *duplicate* session for a hot (epoch, interval)
    // — correct (outcomes are per-spec pure) but worth counting: a high
    // busy-miss rate says the lane count outgrew the cache's usefulness.
    bool busy = false;
    for (const auto& key : leased_) {
      if (key.first == version && key.second == T) {
        busy = true;
        break;
      }
    }
    for (auto it = shared_.begin(); !busy && it != shared_.end(); ++it) {
      busy = it->version == version && it->T == T;
    }
    if (busy) c_busy_misses_.Increment();
    leased_.emplace_back(version, T);
  }
  std::shared_ptr<QuerySession> session = BuildSession(snapshot, T, index);
  if (session == nullptr) {
    // Build failed: retire the busy marker ourselves — a null lease's
    // Release() never calls back, so leaving it would pin the key busy
    // forever — and hand back an empty lease for the caller to surface.
    std::lock_guard<std::mutex> lock(mu_);
    RemoveLeasedMarkerLocked(version, T);
    c_build_failures_.Increment();
    return Lease();
  }
  return Lease(this, std::move(session), version, T);
}

SessionCache::SharedLease SessionCache::CheckoutShared(
    const DbSnapshot& snapshot, const TimeInterval& T, const UstTree* index) {
  const uint64_t version = snapshot.version();
  {
    std::lock_guard<std::mutex> lock(mu_);
    // A live shared lease on the key is simply joined: no build, no
    // duplicate — the whole point of the shared mode.
    for (SharedEntry& entry : shared_) {
      if (entry.version == version && entry.T == T) {
        c_hits_.Increment();
        c_shared_joins_.Increment();
        ++entry.refs;
        return SharedLease(this, &entry, entry.session);
      }
    }
    // An idle cached session is promoted to a shared lease (removed from
    // the LRU like the exclusive path — but joinable while out).
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->version == version && it->T == T) {
        c_hits_.Increment();
        shared_.push_back(SharedEntry{version, T, std::move(it->session), 1});
        entries_.erase(it);
        return SharedLease(this, &shared_.back(), shared_.back().session);
      }
    }
    c_misses_.Increment();
    bool busy = false;
    for (const auto& key : leased_) {
      if (key.first == version && key.second == T) {
        busy = true;
        break;
      }
    }
    if (busy) c_busy_misses_.Increment();
    leased_.emplace_back(version, T);  // in-flight build: busy marker
  }
  std::shared_ptr<QuerySession> session = BuildSession(snapshot, T, index);
  {
    std::lock_guard<std::mutex> lock(mu_);
    RemoveLeasedMarkerLocked(version, T);
    if (session == nullptr) {
      c_build_failures_.Increment();
      return SharedLease();  // caller surfaces the error; marker retired
    }
    shared_.push_back(SharedEntry{version, T, std::move(session), 1});
    return SharedLease(this, &shared_.back(), shared_.back().session);
  }
}

void SessionCache::RemoveLeasedMarkerLocked(uint64_t version,
                                            const TimeInterval& T) {
  for (auto it = leased_.begin(); it != leased_.end(); ++it) {
    if (it->first == version && it->second == T) {
      leased_.erase(it);
      return;
    }
  }
}

void SessionCache::InsertIdleLocked(std::shared_ptr<QuerySession> session,
                                    uint64_t version, const TimeInterval& T) {
  if (version < min_live_version_) {
    // Its epoch passed while it was out executing; never cache it.
    c_evictions_stale_.Increment();
    return;
  }
  entries_.push_front(Entry{version, T, std::move(session)});
  while (entries_.size() > capacity_) {
    entries_.pop_back();
    c_evictions_lru_.Increment();
  }
}

void SessionCache::ReturnSession(std::shared_ptr<QuerySession> session,
                                 uint64_t version, const TimeInterval& T) {
  std::lock_guard<std::mutex> lock(mu_);
  RemoveLeasedMarkerLocked(version, T);
  InsertIdleLocked(std::move(session), version, T);
}

void SessionCache::ReleaseShared(SharedEntry* entry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (--entry->refs > 0) return;
  for (auto it = shared_.begin(); it != shared_.end(); ++it) {
    if (&*it == entry) {
      InsertIdleLocked(std::move(it->session), it->version, it->T);
      shared_.erase(it);
      return;
    }
  }
}

void SessionCache::EvictStale(uint64_t live_version) {
  std::lock_guard<std::mutex> lock(mu_);
  min_live_version_ = std::max(min_live_version_, live_version);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->version < live_version) {
      it = entries_.erase(it);
      c_evictions_stale_.Increment();
    } else {
      ++it;
    }
  }
}

size_t SessionCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

SessionCacheStats SessionCache::stats() const {
  SessionCacheStats s;
  s.hits = c_hits_.value();
  s.misses = c_misses_.value();
  s.busy_misses = c_busy_misses_.value();
  s.shared_joins = c_shared_joins_.value();
  s.evictions_lru = c_evictions_lru_.value();
  s.evictions_stale = c_evictions_stale_.value();
  s.arena_builds = arena_counters_.builds.value();
  s.arena_spec_reuses = arena_counters_.spec_reuses.value();
  s.arena_bytes = arena_counters_.bytes.value();
  s.stale_index_drops = c_stale_index_drops_.value();
  s.build_failures = c_build_failures_.value();
  return s;
}

void SessionCache::RegisterMetrics(MetricRegistry* registry) const {
  registry->RegisterCounter("cache_hits", &c_hits_);
  registry->RegisterCounter("cache_misses", &c_misses_);
  registry->RegisterCounter("cache_busy_misses", &c_busy_misses_);
  registry->RegisterCounter("cache_shared_joins", &c_shared_joins_);
  registry->RegisterCounter("cache_evictions_lru", &c_evictions_lru_);
  registry->RegisterCounter("cache_evictions_stale", &c_evictions_stale_);
  registry->RegisterCounter("arena_builds", &arena_counters_.builds);
  registry->RegisterCounter("arena_spec_reuses", &arena_counters_.spec_reuses);
  registry->RegisterCounter("arena_bytes", &arena_counters_.bytes);
  registry->RegisterCounter("stale_index_drops", &c_stale_index_drops_);
  registry->RegisterCounter("session_build_failures", &c_build_failures_);
}

}  // namespace ust
