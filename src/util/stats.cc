#include "util/stats.h"

#include <cmath>

#include "util/check.h"

namespace ust {

size_t HoeffdingSampleCount(double epsilon, double delta) {
  UST_CHECK(epsilon > 0.0 && delta > 0.0 && delta < 1.0);
  double n = std::log(2.0 / delta) / (2.0 * epsilon * epsilon);
  return static_cast<size_t>(std::ceil(n));
}

double HoeffdingEpsilon(size_t n, double delta) {
  UST_CHECK(n > 0 && delta > 0.0 && delta < 1.0);
  return std::sqrt(std::log(2.0 / delta) / (2.0 * static_cast<double>(n)));
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double mu = Mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - mu) * (x - mu);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double Rmse(const std::vector<double>& a, const std::vector<double>& b) {
  UST_CHECK(a.size() == b.size());
  if (a.empty()) return 0.0;
  double ss = 0.0;
  for (size_t i = 0; i < a.size(); ++i) ss += (a[i] - b[i]) * (a[i] - b[i]);
  return std::sqrt(ss / static_cast<double>(a.size()));
}

double MeanSignedError(const std::vector<double>& a,
                       const std::vector<double>& b) {
  UST_CHECK(a.size() == b.size());
  if (a.empty()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] - b[i];
  return sum / static_cast<double>(a.size());
}

double NormalQuantile(double p) {
  UST_CHECK(p > 0.0 && p < 1.0);
  // Acklam's algorithm: rational approximations on three regions.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double x;
  if (p < p_low) {
    double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    double q = p - 0.5;
    double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
          c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley step against the normal CDF sharpens the tails.
  double e = 0.5 * std::erfc(-x / std::sqrt(2.0)) - p;
  double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

Interval WilsonInterval(size_t successes, size_t n, double delta) {
  UST_CHECK(n >= 1 && successes <= n);
  UST_CHECK(delta > 0.0 && delta < 1.0);
  const double z = NormalQuantile(1.0 - delta / 2.0);
  const double nn = static_cast<double>(n);
  const double phat = static_cast<double>(successes) / nn;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / nn;
  const double center = (phat + z2 / (2.0 * nn)) / denom;
  const double spread =
      z * std::sqrt(phat * (1.0 - phat) / nn + z2 / (4.0 * nn * nn)) / denom;
  return {std::max(0.0, center - spread), std::min(1.0, center + spread)};
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  UST_CHECK(a.size() == b.size());
  if (a.size() < 2) return 0.0;
  double ma = Mean(a), mb = Mean(b);
  double sab = 0.0, saa = 0.0, sbb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    sab += (a[i] - ma) * (b[i] - mb);
    saa += (a[i] - ma) * (a[i] - ma);
    sbb += (b[i] - mb) * (b[i] - mb);
  }
  if (saa == 0.0 || sbb == 0.0) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

}  // namespace ust
