#include "util/stats.h"

#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace ust {

size_t HoeffdingSampleCount(double epsilon, double delta) {
  UST_CHECK(epsilon > 0.0 && delta > 0.0 && delta < 1.0);
  double n = std::log(2.0 / delta) / (2.0 * epsilon * epsilon);
  return static_cast<size_t>(std::ceil(n));
}

double HoeffdingEpsilon(size_t n, double delta) {
  UST_CHECK(n > 0 && delta > 0.0 && delta < 1.0);
  return std::sqrt(std::log(2.0 / delta) / (2.0 * static_cast<double>(n)));
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double mu = Mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - mu) * (x - mu);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double Rmse(const std::vector<double>& a, const std::vector<double>& b) {
  UST_CHECK(a.size() == b.size());
  if (a.empty()) return 0.0;
  double ss = 0.0;
  for (size_t i = 0; i < a.size(); ++i) ss += (a[i] - b[i]) * (a[i] - b[i]);
  return std::sqrt(ss / static_cast<double>(a.size()));
}

double MeanSignedError(const std::vector<double>& a,
                       const std::vector<double>& b) {
  UST_CHECK(a.size() == b.size());
  if (a.empty()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] - b[i];
  return sum / static_cast<double>(a.size());
}

double NormalQuantile(double p) {
  UST_CHECK(p > 0.0 && p < 1.0);
  // Acklam's algorithm: rational approximations on three regions.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double x;
  if (p < p_low) {
    double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    double q = p - 0.5;
    double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
          c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley step against the normal CDF sharpens the tails.
  double e = 0.5 * std::erfc(-x / std::sqrt(2.0)) - p;
  double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

Interval WilsonInterval(size_t successes, size_t n, double delta) {
  UST_CHECK(n >= 1 && successes <= n);
  UST_CHECK(delta > 0.0 && delta < 1.0);
  const double z = NormalQuantile(1.0 - delta / 2.0);
  const double nn = static_cast<double>(n);
  const double phat = static_cast<double>(successes) / nn;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / nn;
  const double center = (phat + z2 / (2.0 * nn)) / denom;
  const double spread =
      z * std::sqrt(phat * (1.0 - phat) / nn + z2 / (4.0 * nn * nn)) / denom;
  return {std::max(0.0, center - spread), std::min(1.0, center + spread)};
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  UST_CHECK(a.size() == b.size());
  if (a.size() < 2) return 0.0;
  double ma = Mean(a), mb = Mean(b);
  double sab = 0.0, saa = 0.0, sbb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    sab += (a[i] - ma) * (b[i] - mb);
    saa += (a[i] - ma) * (a[i] - ma);
    sbb += (b[i] - mb) * (b[i] - mb);
  }
  if (saa == 0.0 || sbb == 0.0) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

void JsonWriter::Uint(const std::string& key, uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  fields_.push_back({key, buf});
}

void JsonWriter::Int(const std::string& key, int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  fields_.push_back({key, buf});
}

void JsonWriter::Double(const std::string& key, double value,
                        const char* fmt) {
  char buf[64];
  if (!std::isfinite(value)) {
    // JSON has no inf/nan literal; null keeps the document parseable.
    std::snprintf(buf, sizeof(buf), "null");
  } else {
    std::snprintf(buf, sizeof(buf), fmt, value);
  }
  fields_.push_back({key, buf});
}

void JsonWriter::String(const std::string& key, const std::string& value) {
  fields_.push_back({key, "\"" + Escape(value) + "\""});
}

void JsonWriter::Raw(const std::string& key, const std::string& rendered) {
  fields_.push_back({key, rendered});
}

std::string JsonWriter::Render(bool pretty) const {
  std::string out = "{";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ",";
    if (pretty) out += "\n  ";
    out += "\"" + Escape(fields_[i].first) + "\":";
    if (pretty) out += " ";
    out += fields_[i].second;
  }
  if (pretty) out += "\n";
  out += "}";
  if (pretty) out += "\n";
  return out;
}

std::string JsonWriter::Array(const std::vector<std::string>& rendered_items) {
  std::string out = "[";
  for (size_t i = 0; i < rendered_items.size(); ++i) {
    if (i > 0) out += ",";
    out += rendered_items[i];
  }
  out += "]";
  return out;
}

std::string JsonWriter::Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

double LatencyHistogram::BucketLow(size_t i) {
  return std::exp2(static_cast<double>(i) * 0.25);
}

size_t LatencyHistogram::BucketIndex(double value) const {
  if (!(value >= 1.0)) return 0;  // [0, 1) and non-finite garbage
  // value in [2^(i/4), 2^((i+1)/4)) => i = floor(4 * log2(value)).
  double idx = std::floor(4.0 * std::log2(value));
  if (idx >= static_cast<double>(kNumBuckets - 1)) return kNumBuckets - 1;
  return static_cast<size_t>(idx);
}

void LatencyHistogram::Record(double value) {
  if (!(value > 0.0)) value = 0.0;  // clamp negatives and NaN
  ++buckets_[BucketIndex(value)];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

double LatencyHistogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (q >= 1.0) return max_;
  q = std::max(0.0, q);
  // Rank of the q-th sample (0-based, nearest-rank with interpolation space).
  const double rank = q * static_cast<double>(count_ - 1);
  double cumulative = 0.0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const double next = cumulative + static_cast<double>(buckets_[i]);
    if (rank < next) {
      // Geometric interpolation inside the bucket: samples in a log-scale
      // bucket are best modeled log-uniform.
      const double frac =
          (rank - cumulative + 0.5) / static_cast<double>(buckets_[i]);
      const double lo = std::max(BucketLow(i), std::max(1e-12, min_));
      const double hi = std::min(BucketLow(i + 1), std::max(lo, max_));
      const double v = lo * std::pow(hi / lo, std::min(1.0, frac));
      return std::min(max_, std::max(min_, v));
    }
    cumulative = next;
  }
  return max_;
}

std::string LatencyHistogram::ToJson() const {
  JsonWriter w;
  w.Uint("count", count());
  w.Double("mean", mean(), "%.3f");
  w.Double("p50", Quantile(0.50), "%.3f");
  w.Double("p90", Quantile(0.90), "%.3f");
  w.Double("p99", Quantile(0.99), "%.3f");
  w.Double("max", max(), "%.3f");
  return w.Render();
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  for (size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
  max_ = count_ == 0 ? other.max_ : std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
}

}  // namespace ust
