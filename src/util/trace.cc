#include "util/trace.h"

#include <cstdio>

#if !defined(UST_TRACE_DISABLED)
#include <deque>
#include <memory>
#include <mutex>
#endif

namespace ust::trace {

#if !defined(UST_TRACE_DISABLED)

namespace internal {

std::atomic<bool> g_enabled{false};

namespace {

/// One thread's ring: written only by its owner, read by the exporter after
/// writers quiesce. `head` counts every emit ever; slot (head % capacity)
/// is overwritten on wrap, so the newest `capacity` events survive and
/// `head - capacity` is the dropped-oldest tally.
struct ThreadBuffer {
  std::vector<TraceEvent> slots;
  std::atomic<uint64_t> head{0};
  uint32_t tid = 0;
};

struct SessionState {
  std::mutex mu;
  /// Owned per-thread rings; never shrunk (thread-local pointers into it
  /// stay valid for the process lifetime, surviving thread exit).
  std::deque<std::unique_ptr<ThreadBuffer>> buffers;
  size_t capacity = 1 << 16;
  std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();
};

SessionState& State() {
  static SessionState* state = new SessionState();  // leaked: no exit-order
  return *state;
}

thread_local ThreadBuffer* tls_buffer = nullptr;

ThreadBuffer* BufferForThisThread() {
  if (tls_buffer != nullptr) return tls_buffer;
  SessionState& state = State();
  // Allocate (and first-touch) the ring outside the lock: zeroing the slots
  // is the expensive part of registration and must not serialize other
  // threads' first probes behind the registry mutex.
  auto buffer = std::make_unique<ThreadBuffer>();
  size_t capacity;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    capacity = state.capacity;
  }
  buffer->slots.resize(capacity);
  {
    std::lock_guard<std::mutex> lock(state.mu);
    if (state.capacity != buffer->slots.size()) {
      // Enable() changed the capacity between our two critical sections
      // (outside the documented contract, but cheap to stay correct about).
      buffer->slots.assign(state.capacity, TraceEvent{});
    }
    buffer->tid = static_cast<uint32_t>(state.buffers.size());
    tls_buffer = buffer.get();
    state.buffers.push_back(std::move(buffer));
  }
  return tls_buffer;
}

void Emit(const TraceEvent& event) {
  ThreadBuffer* buffer = BufferForThisThread();
  const uint64_t head = buffer->head.load(std::memory_order_relaxed);
  buffer->slots[head % buffer->slots.size()] = event;
  // Release: an exporter acquiring `head` sees the slot fully written.
  buffer->head.store(head + 1, std::memory_order_release);
}

void AppendJsonEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      *out += '\\';
      *out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      *out += c;
    }
  }
}

}  // namespace

uint64_t NowNs() { return ToNs(std::chrono::steady_clock::now()); }

uint64_t ToNs(std::chrono::steady_clock::time_point tp) {
  const auto delta = tp - State().origin;
  if (delta.count() <= 0) return 0;  // predates Enable(): clamp
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(delta).count());
}

void EmitComplete(const char* name, uint64_t ts_ns, uint64_t dur_ns,
                  uint64_t arg, const char* arg_name, const char* tag) {
  TraceEvent event;
  event.name = name;
  event.arg_name = arg_name;
  event.tag = tag;
  event.ts_ns = ts_ns;
  event.dur_ns = dur_ns;
  event.arg = arg;
  event.phase = 'X';
  Emit(event);
}

void EmitInstant(const char* name, uint64_t arg, const char* arg_name,
                 const char* tag) {
  TraceEvent event;
  event.name = name;
  event.arg_name = arg_name;
  event.tag = tag;
  event.ts_ns = NowNs();
  event.arg = arg;
  event.phase = 'i';
  Emit(event);
}

}  // namespace internal

void PrepareThisThread() {
  if (internal::g_enabled.load(std::memory_order_relaxed)) {
    internal::BufferForThisThread();
  }
}

void Enable(size_t events_per_thread) {
  using internal::State;
  auto& state = State();
  {
    std::lock_guard<std::mutex> lock(state.mu);
    state.capacity = events_per_thread < 16 ? 16 : events_per_thread;
    for (auto& buffer : state.buffers) {
      buffer->slots.assign(state.capacity, TraceEvent{});
      buffer->head.store(0, std::memory_order_relaxed);
    }
    state.origin = std::chrono::steady_clock::now();
  }
  internal::g_enabled.store(true, std::memory_order_release);
}

void Disable() {
  internal::g_enabled.store(false, std::memory_order_release);
}

void Reset() {
  auto& state = internal::State();
  std::lock_guard<std::mutex> lock(state.mu);
  for (auto& buffer : state.buffers) {
    buffer->head.store(0, std::memory_order_relaxed);
  }
}

uint64_t RecordedCount() {
  auto& state = internal::State();
  std::lock_guard<std::mutex> lock(state.mu);
  uint64_t total = 0;
  for (const auto& buffer : state.buffers) {
    const uint64_t head = buffer->head.load(std::memory_order_acquire);
    total += head < buffer->slots.size() ? head : buffer->slots.size();
  }
  return total;
}

uint64_t DroppedCount() {
  auto& state = internal::State();
  std::lock_guard<std::mutex> lock(state.mu);
  uint64_t total = 0;
  for (const auto& buffer : state.buffers) {
    const uint64_t head = buffer->head.load(std::memory_order_acquire);
    if (head > buffer->slots.size()) total += head - buffer->slots.size();
  }
  return total;
}

std::vector<TraceEvent> Snapshot() {
  auto& state = internal::State();
  std::lock_guard<std::mutex> lock(state.mu);
  std::vector<TraceEvent> events;
  for (const auto& buffer : state.buffers) {
    const uint64_t head = buffer->head.load(std::memory_order_acquire);
    const uint64_t capacity = buffer->slots.size();
    // Oldest surviving event first: wrap drops the front of the stream.
    const uint64_t first = head > capacity ? head - capacity : 0;
    for (uint64_t i = first; i < head; ++i) {
      TraceEvent event = buffer->slots[i % capacity];
      event.tid = buffer->tid;
      events.push_back(event);
    }
  }
  return events;
}

std::string ToJson() {
  const std::vector<TraceEvent> events = Snapshot();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[160];
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":\"";
    internal::AppendJsonEscaped(&out, event.name);
    // Chrome's ts/dur are microseconds; sub-µs resolution survives as the
    // fractional part.
    std::snprintf(buf, sizeof(buf),
                  "\",\"cat\":\"ust\",\"ph\":\"%c\",\"ts\":%.3f", event.phase,
                  static_cast<double>(event.ts_ns) / 1000.0);
    out += buf;
    if (event.phase == 'X') {
      std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f",
                    static_cast<double>(event.dur_ns) / 1000.0);
      out += buf;
    } else {
      out += ",\"s\":\"t\"";  // instant scope: thread
    }
    std::snprintf(buf, sizeof(buf), ",\"pid\":1,\"tid\":%u", event.tid);
    out += buf;
    out += ",\"args\":{";
    bool first_arg = true;
    if (event.arg_name != nullptr) {
      out += "\"";
      internal::AppendJsonEscaped(&out, event.arg_name);
      std::snprintf(buf, sizeof(buf), "\":%llu",
                    static_cast<unsigned long long>(event.arg));
      out += buf;
      first_arg = false;
    }
    if (event.tag != nullptr) {
      if (!first_arg) out += ",";
      out += "\"tag\":\"";
      internal::AppendJsonEscaped(&out, event.tag);
      out += "\"";
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

bool DumpJson(const std::string& path) {
  const std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  return std::fclose(f) == 0 && written == json.size();
}

#else  // UST_TRACE_DISABLED

bool DumpJson(const std::string& path) {
  const std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  return std::fclose(f) == 0 && written == json.size();
}

#endif  // UST_TRACE_DISABLED

}  // namespace ust::trace
