// Tiny table printer used by the figure-reproduction harnesses: emits a
// commented header plus comma-separated rows, the format EXPERIMENTS.md
// references.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ust {

/// \brief Accumulates rows of a results table and prints them as CSV.
class CsvTable {
 public:
  explicit CsvTable(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  /// Append one row; size must match the number of columns.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with 6 significant digits, integers as-is.
  void AddRow(const std::vector<double>& cells);

  /// Write `# <title>` then `column1,column2,...` then all rows to `os`.
  void Print(std::ostream& os, const std::string& title) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double compactly (trailing zero trimming, 6 significant digits).
std::string FormatDouble(double v);

}  // namespace ust
