// Deterministic random number generation. All randomized components take an
// explicit Rng (or seed) so experiments and tests are reproducible.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ust {

/// \brief Seedable xoshiro256++ generator.
///
/// The raw 64-bit step is ~4 instructions and fully inline: the Monte-Carlo
/// estimators draw one uniform per sampled state, so generator cost sits
/// directly in the hot path (mt19937_64 spent more time here than the alias
/// lookup it feeds). Satisfies UniformRandomBitGenerator, so std
/// distributions still compose. Pass by reference; copying is allowed
/// (forks the stream).
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seed (splitmix64 expansion of the 64-bit seed).
  void Seed(uint64_t seed);

  /// Raw 64-bit draw (xoshiro256++ step).
  uint64_t operator()() {
    const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }

  /// Uniform double in [0, 1): top 53 bits, one multiply.
  double Uniform() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n-1]. n must be > 0.
  uint64_t UniformInt(uint64_t n);

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return Uniform() < p;
  }

  /// Standard normal draw.
  double Normal();

  /// Index drawn from unnormalized weights (linear scan; weights.size() small).
  size_t Categorical(const std::vector<double>& weights);

  /// Derive an independent child RNG (for per-object streams).
  Rng Fork() { return Rng(operator()()); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace ust
