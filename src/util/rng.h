// Deterministic random number generation. All randomized components take an
// explicit Rng (or seed) so experiments and tests are reproducible.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace ust {

/// \brief Seedable RNG wrapper around xoshiro-quality std engine.
///
/// A thin layer over std::mt19937_64 providing the handful of draw shapes the
/// library needs. Pass by reference; copying is allowed (forks the stream).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n-1]. n must be > 0.
  uint64_t UniformInt(uint64_t n);

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  /// Standard normal draw.
  double Normal();

  /// Index drawn from unnormalized weights (linear scan; weights.size() small).
  size_t Categorical(const std::vector<double>& weights);

  /// Derive an independent child RNG (for per-object streams).
  Rng Fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace ust
