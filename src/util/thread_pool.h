// Fixed-size fork-join thread pool for the query layer.
//
// The pool exists to shard *independent* work items — queries of a batch,
// world chunks of one query, per-object posterior adaptations — whose
// outputs go to disjoint slots. Under that contract every schedule produces
// the same bytes, so results are bit-identical at any thread count (the
// determinism contract of DESIGN.md section 4). The pool therefore offers
// only ParallelFor, not a general task queue: all parallelism in this
// codebase is data parallelism over pre-sized output arrays.
//
// Workers are started once and parked on a condition variable between
// calls; the calling thread participates as worker 0, so a pool of size 1
// (or size 0) degenerates to an inline loop with zero synchronization.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ust {

/// \brief Morsel-driven scheduling primitive (DESIGN.md section 5.6): one
/// contiguous index range [next, end) published as fixed-size *morsels*.
/// The owning lane pops morsels off the front; an idle lane steals the back
/// half of the remaining range — morsel-aligned, at least one morsel — in a
/// single operation, then drains its stolen range privately.
///
/// Which lane claims which morsel depends on timing, but consumers of this
/// primitive commit results into per-index output slots, so every claim
/// schedule produces identical bytes (the same argument that makes
/// ParallelFor schedule-independent). Thread-safe; operations are O(1)
/// under a private mutex and never block on anything external.
class MorselDeque {
 public:
  MorselDeque() = default;

  /// Publish [begin, end) as morsels of `morsel` indices (clamped to >= 1).
  /// The morsel grid is anchored at `begin`; the final morsel may be short.
  void Reset(size_t begin, size_t end, size_t morsel);

  /// Owner path: claim the next morsel as [*begin, *end).
  /// Returns false when the deque is drained.
  bool PopFront(size_t* begin, size_t* end);

  /// Thief path: claim the back half of the remaining morsels (at least
  /// one), leaving the front half in the deque. The split is morsel-aligned
  /// so neither side ever shares a morsel. Returns false when drained.
  bool StealHalf(size_t* begin, size_t* end);

  /// Unclaimed indices still in the deque (stolen ranges are gone).
  size_t remaining() const;

 private:
  mutable std::mutex mu_;
  size_t next_ = 0;
  size_t end_ = 0;
  size_t morsel_ = 1;
};

/// \brief Fork-join pool: ParallelFor over [0, n) with worker-indexed scratch.
class ThreadPool {
 public:
  /// `num_threads` <= 1 creates no worker threads (inline execution).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers, including the calling thread. Always >= 1.
  int num_threads() const { return num_threads_; }

  /// Runs `fn(i, worker)` for every i in [0, n) and blocks until all calls
  /// returned. `worker` is in [0, num_threads()) and identifies the executing
  /// lane — use it to index per-worker scratch. Indices are claimed from a
  /// shared counter, so the i -> worker assignment is nondeterministic; `fn`
  /// must write only to output slots owned by `i` (plus worker-private
  /// scratch) for results to be schedule-independent.
  /// Not reentrant: do not call ParallelFor from inside `fn`.
  void ParallelFor(size_t n, const std::function<void(size_t, int)>& fn);

  /// ParallelFor over contiguous ranges: `fn(begin, end, worker)` with
  /// [begin, end) a chunk of [0, n). Chunks are fixed-size (`grain`), so the
  /// chunk boundaries — and thus any per-chunk derived state, e.g. RNG
  /// offsets — do not depend on the thread count.
  void ParallelForChunked(size_t n, size_t grain,
                          const std::function<void(size_t, size_t, int)>& fn);

 private:
  void WorkerLoop(int worker);
  void RunJob(int worker);

  int num_threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  uint64_t generation_ = 0;   // bumped per ParallelFor; wakes the workers
  bool shutdown_ = false;
  int active_ = 0;            // workers still inside the current job

  // Current job (valid while active_ > 0 or between start and completion).
  const std::function<void(size_t, int)>* fn_ = nullptr;
  size_t n_ = 0;
  std::atomic<size_t> next_{0};
};

}  // namespace ust
