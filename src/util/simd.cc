#include "util/simd.h"

#include <atomic>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define UST_SIMD_HAVE_AVX2_KERNELS 1
#include <immintrin.h>
#endif

#if defined(__aarch64__)
#define UST_SIMD_HAVE_NEON_KERNELS 1
#include <arm_neon.h>
#endif

// Build-time cap injected by CMake (-DUST_SIMD=...): 0 pins scalar, 2 caps
// at AVX2, 255 means "auto" — no cap beyond what the CPU supports.
#ifndef UST_SIMD_DEFAULT_LEVEL
#define UST_SIMD_DEFAULT_LEVEL 255
#endif

namespace ust {
namespace {

// ---------------------------------------------------------------------------
// Scalar reference kernels. Every other level must match these bit-for-bit
// (trivially: the results are integer popcount sums).
// ---------------------------------------------------------------------------

inline int PopCount64(uint64_t v) {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_popcountll(v);
#else
  int count = 0;
  while (v != 0) {
    v &= v - 1;
    ++count;
  }
  return count;
#endif
}

uint64_t AndPopcountScalar(const uint64_t* a, const uint64_t* b, size_t n) {
  uint64_t sum = 0;
  for (size_t i = 0; i < n; ++i) sum += PopCount64(a[i] & b[i]);
  return sum;
}

uint64_t OrPopcountScalar(const uint64_t* a, const uint64_t* b, size_t n) {
  uint64_t sum = 0;
  for (size_t i = 0; i < n; ++i) sum += PopCount64(a[i] | b[i]);
  return sum;
}

uint64_t PopcountScalar(const uint64_t* a, size_t n) {
  uint64_t sum = 0;
  for (size_t i = 0; i < n; ++i) sum += PopCount64(a[i]);
  return sum;
}

uint64_t AndRowsScalar(const uint64_t* const* rows, size_t num_rows,
                       size_t n) {
  uint64_t sum = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t acc = rows[0][i];
    for (size_t r = 1; r < num_rows; ++r) acc &= rows[r][i];
    sum += PopCount64(acc);
  }
  return sum;
}

uint64_t OrRowsScalar(const uint64_t* const* rows, size_t num_rows,
                      size_t n) {
  uint64_t sum = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t acc = rows[0][i];
    for (size_t r = 1; r < num_rows; ++r) acc |= rows[r][i];
    sum += PopCount64(acc);
  }
  return sum;
}

// ---------------------------------------------------------------------------
// AVX2 kernels (x86-64). Compiled with a per-function target attribute so
// the translation unit builds on any x86-64 toolchain; the functions are
// only *called* after __builtin_cpu_supports("avx2") says yes. Popcount is
// the classic vpshufb nibble-lookup + vpsadbw fold (integer-exact).
// ---------------------------------------------------------------------------

#if UST_SIMD_HAVE_AVX2_KERNELS

__attribute__((target("avx2"))) inline __m256i Popcount256(__m256i v) {
  const __m256i lookup =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                         _mm256_shuffle_epi8(lookup, hi));
  // Four lane-wise uint64 byte-sums; summed across calls by the caller.
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

__attribute__((target("avx2"))) inline uint64_t HorizontalSum256(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i s = _mm_add_epi64(lo, hi);
  return static_cast<uint64_t>(_mm_extract_epi64(s, 0)) +
         static_cast<uint64_t>(_mm_extract_epi64(s, 1));
}

__attribute__((target("avx2"))) uint64_t AndPopcountAvx2(const uint64_t* a,
                                                         const uint64_t* b,
                                                         size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi64(acc, Popcount256(_mm256_and_si256(va, vb)));
  }
  uint64_t sum = HorizontalSum256(acc);
  for (; i < n; ++i) sum += PopCount64(a[i] & b[i]);
  return sum;
}

__attribute__((target("avx2"))) uint64_t OrPopcountAvx2(const uint64_t* a,
                                                        const uint64_t* b,
                                                        size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi64(acc, Popcount256(_mm256_or_si256(va, vb)));
  }
  uint64_t sum = HorizontalSum256(acc);
  for (; i < n; ++i) sum += PopCount64(a[i] | b[i]);
  return sum;
}

__attribute__((target("avx2"))) uint64_t PopcountAvx2(const uint64_t* a,
                                                      size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    acc = _mm256_add_epi64(acc, Popcount256(va));
  }
  uint64_t sum = HorizontalSum256(acc);
  for (; i < n; ++i) sum += PopCount64(a[i]);
  return sum;
}

__attribute__((target("avx2"))) uint64_t AndRowsAvx2(
    const uint64_t* const* rows, size_t num_rows, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows[0] + i));
    for (size_t r = 1; r < num_rows; ++r) {
      v = _mm256_and_si256(
          v, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows[r] + i)));
    }
    acc = _mm256_add_epi64(acc, Popcount256(v));
  }
  uint64_t sum = HorizontalSum256(acc);
  for (; i < n; ++i) {
    uint64_t w = rows[0][i];
    for (size_t r = 1; r < num_rows; ++r) w &= rows[r][i];
    sum += PopCount64(w);
  }
  return sum;
}

__attribute__((target("avx2"))) uint64_t OrRowsAvx2(
    const uint64_t* const* rows, size_t num_rows, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows[0] + i));
    for (size_t r = 1; r < num_rows; ++r) {
      v = _mm256_or_si256(
          v, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows[r] + i)));
    }
    acc = _mm256_add_epi64(acc, Popcount256(v));
  }
  uint64_t sum = HorizontalSum256(acc);
  for (; i < n; ++i) {
    uint64_t w = rows[0][i];
    for (size_t r = 1; r < num_rows; ++r) w |= rows[r][i];
    sum += PopCount64(w);
  }
  return sum;
}

#endif  // UST_SIMD_HAVE_AVX2_KERNELS

// ---------------------------------------------------------------------------
// NEON kernels (aarch64 baseline — no runtime feature check needed).
// ---------------------------------------------------------------------------

#if UST_SIMD_HAVE_NEON_KERNELS

inline uint64_t PopcountNeon128(uint64x2_t v) {
  const uint8x16_t counts = vcntq_u8(vreinterpretq_u8_u64(v));
  return vaddvq_u8(counts);
}

uint64_t AndPopcountNeon(const uint64_t* a, const uint64_t* b, size_t n) {
  uint64_t sum = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    sum += PopcountNeon128(vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
  }
  for (; i < n; ++i) sum += PopCount64(a[i] & b[i]);
  return sum;
}

uint64_t OrPopcountNeon(const uint64_t* a, const uint64_t* b, size_t n) {
  uint64_t sum = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    sum += PopcountNeon128(vorrq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
  }
  for (; i < n; ++i) sum += PopCount64(a[i] | b[i]);
  return sum;
}

uint64_t PopcountNeon(const uint64_t* a, size_t n) {
  uint64_t sum = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) sum += PopcountNeon128(vld1q_u64(a + i));
  for (; i < n; ++i) sum += PopCount64(a[i]);
  return sum;
}

uint64_t AndRowsNeon(const uint64_t* const* rows, size_t num_rows, size_t n) {
  uint64_t sum = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    uint64x2_t v = vld1q_u64(rows[0] + i);
    for (size_t r = 1; r < num_rows; ++r) {
      v = vandq_u64(v, vld1q_u64(rows[r] + i));
    }
    sum += PopcountNeon128(v);
  }
  for (; i < n; ++i) {
    uint64_t w = rows[0][i];
    for (size_t r = 1; r < num_rows; ++r) w &= rows[r][i];
    sum += PopCount64(w);
  }
  return sum;
}

uint64_t OrRowsNeon(const uint64_t* const* rows, size_t num_rows, size_t n) {
  uint64_t sum = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    uint64x2_t v = vld1q_u64(rows[0] + i);
    for (size_t r = 1; r < num_rows; ++r) {
      v = vorrq_u64(v, vld1q_u64(rows[r] + i));
    }
    sum += PopcountNeon128(v);
  }
  for (; i < n; ++i) {
    uint64_t w = rows[0][i];
    for (size_t r = 1; r < num_rows; ++r) w |= rows[r][i];
    sum += PopCount64(w);
  }
  return sum;
}

#endif  // UST_SIMD_HAVE_NEON_KERNELS

// ---------------------------------------------------------------------------
// Dispatch table.
// ---------------------------------------------------------------------------

struct KernelTable {
  uint64_t (*and_popcount)(const uint64_t*, const uint64_t*, size_t);
  uint64_t (*or_popcount)(const uint64_t*, const uint64_t*, size_t);
  uint64_t (*popcount)(const uint64_t*, size_t);
  uint64_t (*and_rows)(const uint64_t* const*, size_t, size_t);
  uint64_t (*or_rows)(const uint64_t* const*, size_t, size_t);
  SimdLevel level;
};

constexpr KernelTable kScalarTable = {AndPopcountScalar, OrPopcountScalar,
                                      PopcountScalar,    AndRowsScalar,
                                      OrRowsScalar,      SimdLevel::kScalar};

#if UST_SIMD_HAVE_AVX2_KERNELS
constexpr KernelTable kAvx2Table = {AndPopcountAvx2, OrPopcountAvx2,
                                    PopcountAvx2,    AndRowsAvx2,
                                    OrRowsAvx2,      SimdLevel::kAvx2};
#endif
#if UST_SIMD_HAVE_NEON_KERNELS
constexpr KernelTable kNeonTable = {AndPopcountNeon, OrPopcountNeon,
                                    PopcountNeon,    AndRowsNeon,
                                    OrRowsNeon,      SimdLevel::kNeon};
#endif

const KernelTable* TableFor(SimdLevel level) {
  switch (level) {
#if UST_SIMD_HAVE_AVX2_KERNELS
    case SimdLevel::kAvx2:
      return &kAvx2Table;
#endif
#if UST_SIMD_HAVE_NEON_KERNELS
    case SimdLevel::kNeon:
      return &kNeonTable;
#endif
    default:
      return &kScalarTable;
  }
}

std::atomic<const KernelTable*>& ActiveTable() {
  static std::atomic<const KernelTable*> table{[] {
    SimdLevel level = DetectSimdLevel();
    const auto cap = static_cast<int>(UST_SIMD_DEFAULT_LEVEL);
    if (cap != 255 && static_cast<int>(level) > cap) {
      level = static_cast<SimdLevel>(cap);
    }
    return TableFor(level);
  }()};
  return table;
}

}  // namespace

SimdLevel DetectSimdLevel() {
#if UST_SIMD_HAVE_AVX2_KERNELS
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
#if UST_SIMD_HAVE_NEON_KERNELS
  return SimdLevel::kNeon;
#else
  return SimdLevel::kScalar;
#endif
}

SimdLevel ActiveSimdLevel() {
  return ActiveTable().load(std::memory_order_acquire)->level;
}

bool ForceSimdLevel(SimdLevel level) {
  if (level != SimdLevel::kScalar && level != DetectSimdLevel()) return false;
  const KernelTable* table = TableFor(level);
  if (table->level != level) return false;  // kernels not compiled in
  ActiveTable().store(table, std::memory_order_release);
  return true;
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kNeon:
      return "neon";
    default:
      return "scalar";
  }
}

uint64_t AndPopcountWords(const uint64_t* a, const uint64_t* b, size_t n) {
  return ActiveTable().load(std::memory_order_acquire)->and_popcount(a, b, n);
}

uint64_t OrPopcountWords(const uint64_t* a, const uint64_t* b, size_t n) {
  return ActiveTable().load(std::memory_order_acquire)->or_popcount(a, b, n);
}

uint64_t PopcountWords(const uint64_t* a, size_t n) {
  return ActiveTable().load(std::memory_order_acquire)->popcount(a, n);
}

uint64_t AndRowsPopcount(const uint64_t* const* rows, size_t num_rows,
                         size_t n) {
  if (num_rows == 0) return 64u * static_cast<uint64_t>(n);
  return ActiveTable().load(std::memory_order_acquire)
      ->and_rows(rows, num_rows, n);
}

uint64_t OrRowsPopcount(const uint64_t* const* rows, size_t num_rows,
                        size_t n) {
  if (num_rows == 0) return 0;
  return ActiveTable().load(std::memory_order_acquire)
      ->or_rows(rows, num_rows, n);
}

}  // namespace ust
