// Wall-clock stopwatch for the experiment harnesses.
#pragma once

#include <chrono>

namespace ust {

/// \brief Simple wall-clock timer; starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction/Reset.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction/Reset.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ust
