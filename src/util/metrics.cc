#include "util/metrics.h"

#include <utility>

#include "util/check.h"

namespace ust {

void MetricRegistry::AddEntry(Entry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Entry& existing : entries_) {
    UST_DCHECK(existing.name != entry.name);
    (void)existing;
  }
  entries_.push_back(std::move(entry));
}

Counter* MetricRegistry::NewCounter(std::string name) {
  Counter* counter;
  {
    std::lock_guard<std::mutex> lock(mu_);
    counters_.emplace_back();
    counter = &counters_.back();
  }
  AddEntry(Entry{std::move(name), MetricSample::Kind::kCounter, counter,
                 nullptr, nullptr});
  return counter;
}

Gauge* MetricRegistry::NewGauge(std::string name) {
  Gauge* gauge;
  {
    std::lock_guard<std::mutex> lock(mu_);
    gauges_.emplace_back();
    gauge = &gauges_.back();
  }
  AddEntry(Entry{std::move(name), MetricSample::Kind::kGauge, nullptr, gauge,
                 nullptr});
  return gauge;
}

HistogramMetric* MetricRegistry::NewHistogram(std::string name) {
  HistogramMetric* histogram;
  {
    std::lock_guard<std::mutex> lock(mu_);
    histograms_.emplace_back();
    histogram = &histograms_.back();
  }
  AddEntry(Entry{std::move(name), MetricSample::Kind::kHistogram, nullptr,
                 nullptr, histogram});
  return histogram;
}

void MetricRegistry::RegisterCounter(std::string name,
                                     const Counter* counter) {
  UST_DCHECK(counter != nullptr);
  AddEntry(Entry{std::move(name), MetricSample::Kind::kCounter, counter,
                 nullptr, nullptr});
}

void MetricRegistry::RegisterGauge(std::string name, const Gauge* gauge) {
  UST_DCHECK(gauge != nullptr);
  AddEntry(Entry{std::move(name), MetricSample::Kind::kGauge, nullptr, gauge,
                 nullptr});
}

void MetricRegistry::RegisterHistogram(std::string name,
                                       const HistogramMetric* histogram) {
  UST_DCHECK(histogram != nullptr);
  AddEntry(Entry{std::move(name), MetricSample::Kind::kHistogram, nullptr,
                 nullptr, histogram});
}

std::vector<MetricSample> MetricRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> samples;
  samples.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    MetricSample sample;
    sample.name = entry.name;
    sample.kind = entry.kind;
    switch (entry.kind) {
      case MetricSample::Kind::kCounter:
        sample.counter = entry.counter->value();
        break;
      case MetricSample::Kind::kGauge:
        sample.gauge = entry.gauge->value();
        break;
      case MetricSample::Kind::kHistogram:
        sample.histogram = entry.histogram->Snapshot();
        break;
    }
    samples.push_back(std::move(sample));
  }
  return samples;
}

std::string MetricRegistry::ToJson() const {
  JsonWriter w;
  for (const MetricSample& sample : Snapshot()) {
    switch (sample.kind) {
      case MetricSample::Kind::kCounter:
        w.Uint(sample.name, sample.counter);
        break;
      case MetricSample::Kind::kGauge:
        w.Int(sample.name, sample.gauge);
        break;
      case MetricSample::Kind::kHistogram:
        w.Raw(sample.name, sample.histogram.ToJson());
        break;
    }
  }
  return w.Render();
}

uint64_t MetricRegistry::CounterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Entry& entry : entries_) {
    if (entry.name == name &&
        entry.kind == MetricSample::Kind::kCounter) {
      return entry.counter->value();
    }
  }
  return 0;
}

size_t MetricRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace ust
