#include "util/rng.h"

#include "util/check.h"

namespace ust {

double Rng::Uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::Uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

uint64_t Rng::UniformInt(uint64_t n) {
  UST_DCHECK(n > 0);
  return std::uniform_int_distribution<uint64_t>(0, n - 1)(engine_);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return std::bernoulli_distribution(p)(engine_);
}

double Rng::Normal() {
  return std::normal_distribution<double>(0.0, 1.0)(engine_);
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  UST_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  UST_CHECK(total > 0.0);
  double u = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  return weights.size() - 1;  // numerical slack: return last nonzero slot
}

Rng Rng::Fork() {
  uint64_t child_seed = engine_();
  return Rng(child_seed);
}

}  // namespace ust
