#include "util/rng.h"

#include <random>

#include "util/check.h"

namespace ust {

void Rng::Seed(uint64_t seed) {
  // splitmix64 expansion; recommended initialization for xoshiro256++.
  uint64_t x = seed;
  for (uint64_t& s : s_) {
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    s = z ^ (z >> 31);
  }
}

uint64_t Rng::UniformInt(uint64_t n) {
  UST_DCHECK(n > 0);
  // Rejection to stay exactly uniform for any n.
  const uint64_t limit = max() - max() % n;
  uint64_t x;
  do {
    x = operator()();
  } while (x >= limit);
  return x % n;
}

double Rng::Normal() {
  return std::normal_distribution<double>(0.0, 1.0)(*this);
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  UST_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  UST_CHECK(total > 0.0);
  double u = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  return weights.size() - 1;  // numerical slack: return last nonzero slot
}

}  // namespace ust
