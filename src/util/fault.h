// Fault injection for the serving pipeline (DESIGN.md section 11): a small
// process-wide registry of *named injection points* compiled into the
// production binaries. A point that is not armed costs exactly one relaxed
// atomic load and a predictable branch — the same cost model as a disabled
// trace probe (util/trace.h) — so the probes stay in release builds and the
// chaos tests exercise the very code that serves traffic. Compiling with
// UST_FAULT_DISABLED removes the probes entirely (the inline fast paths
// collapse to constants).
//
// A test arms a point with a FaultSpec — how many probe hits to let pass
// (`skip_first`), how many times to fire (`max_fires`), and what firing
// means (fail the guarded operation, stall the calling thread, or skew a
// clock read). Firing is deterministic: the Nth probe of an armed point
// always behaves the same, so chaos tests can assert exact counts.
//
// Point taxonomy of the serving tier (each is the `point` literal at its
// probe site — grep for it):
//   "lane_stall"     — an execution lane sleeps `stall_ms` before running a
//                      morsel (QueryServer::ExecuteMorsel / the exclusive
//                      group path): simulates a descheduled/slow lane, so
//                      deadlines expire *on* lanes and stealing kicks in.
//   "session_build"  — SessionCache::BuildSession returns nullptr: the
//                      checkout fails and the server must resolve every
//                      promise of the group with an error instead of
//                      leaking them.
//   "compaction"     — QueryServer::CompactOnce fails before publishing:
//                      the previous base stays live, compaction_failures
//                      counts it, and serving is unaffected.
//   "alloc_limit"    — QuerySession::ArenaFor refuses to materialize a
//                      world arena (as if the slab allocation were denied):
//                      specs sample live — bit-identical, just slower.
//   "deadline_skew"  — deadline expiry checks read now + `skew_ns`:
//                      simulates clock skew, forcing requests to expire in
//                      the queue / at morsel boundaries on demand.
//
// Thread-safety: Arm/Disarm/counters take an internal mutex; probes of
// *armed* registries take it too (chaos-test-only cost). With nothing armed
// the probe never touches the mutex. A `point` must be a string literal
// (compared by content, stored by pointer lifetime of the call).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#if !defined(UST_FAULT_DISABLED)
#include <atomic>
#endif

namespace ust::fault {

/// \brief What an armed injection point does when probed.
struct FaultSpec {
  /// Let this many probe hits pass unharmed before the first fire.
  uint64_t skip_first = 0;
  /// Fire at most this many times; later probes pass again.
  uint64_t max_fires = UINT64_MAX;
  /// MaybeStall sleeps this long per fire (0 = no stall).
  double stall_ms = 0.0;
  /// SkewNs returns this per fire (deadline clock skew, nanoseconds).
  int64_t skew_ns = 0;
};

#if !defined(UST_FAULT_DISABLED)

namespace internal {
/// Number of armed points: the only thing an idle probe reads.
extern std::atomic<int> g_armed;
bool FireSlow(const char* point);
void StallSlow(const char* point);
int64_t SkewSlow(const char* point);
}  // namespace internal

/// True when any point is armed (one relaxed load).
inline bool Enabled() {
  return internal::g_armed.load(std::memory_order_relaxed) > 0;
}

/// Arm `point` (re-arming replaces the spec and resets its counters).
void Arm(const char* point, const FaultSpec& spec);

/// Disarm `point` (its counters survive until re-armed or ClearAll).
void Disarm(const char* point);

/// Disarm every point and drop all counters — test teardown.
void ClearAll();

/// Times `point` actually fired (fail/stall/skew applied) since (re)arming.
uint64_t FireCount(const char* point);

/// Times `point` was probed while armed since (re)arming.
uint64_t ProbeCount(const char* point);

/// Names of currently armed points.
std::vector<std::string> ArmedPoints();

/// Probe: should the guarded operation fail now? Counts a fire when true.
inline bool ShouldFail(const char* point) {
  if (!Enabled()) return false;
  return internal::FireSlow(point);
}

/// Probe: sleep `stall_ms` if `point` fires now.
inline void MaybeStall(const char* point) {
  if (Enabled()) internal::StallSlow(point);
}

/// Probe: clock-skew offset to add (0 unless `point` fires now).
inline int64_t SkewNs(const char* point) {
  if (!Enabled()) return 0;
  return internal::SkewSlow(point);
}

#else  // UST_FAULT_DISABLED: probes compile to nothing.

inline bool Enabled() { return false; }
inline void Arm(const char*, const FaultSpec&) {}
inline void Disarm(const char*) {}
inline void ClearAll() {}
inline uint64_t FireCount(const char*) { return 0; }
inline uint64_t ProbeCount(const char*) { return 0; }
inline std::vector<std::string> ArmedPoints() { return {}; }
inline bool ShouldFail(const char*) { return false; }
inline void MaybeStall(const char*) {}
inline int64_t SkewNs(const char*) { return 0; }

#endif

}  // namespace ust::fault
