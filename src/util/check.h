// Internal invariant checks. These abort on violation (programming errors),
// unlike Status which reports recoverable/user-input failures.
#pragma once

#include <cassert>
#include <cstdio>
#include <cstdlib>

#define UST_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "UST_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define UST_DCHECK(cond) assert(cond)
