// Over-aligned storage for the SIMD-swept data structures: the packed
// NnTable bitmap and the shared world arena slabs are reduced with 32-byte
// vector loads, so their base allocations are pinned to 32-byte boundaries —
// a vector load that starts inside the buffer can then never straddle the
// end of the allocation's last cache line into unmapped memory.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace ust {

/// \brief Minimal allocator pinning every allocation to `Alignment` bytes
/// (C++17 aligned operator new). Stateless: all instances are equal, so
/// vectors with this allocator move buffers instead of copying.
template <typename T, size_t Alignment = 32>
struct AlignedAllocator {
  static_assert((Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "alignment below the type's natural alignment");

  using value_type = T;
  // The non-type Alignment parameter defeats allocator_traits' default
  // rebind deduction; spell it out.
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Alignment>&) const {
    return true;
  }
  template <typename U>
  bool operator!=(const AlignedAllocator<U, Alignment>&) const {
    return false;
  }
};

/// 32-byte-aligned vector: one AVX2 lane (and two NEON lanes) per boundary.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T, 32>>;

}  // namespace ust
