// Runtime-dispatched vector kernels for the word-packed world-set
// reductions (NnTable / Pcnn). The kernels are pure popcount folds over
// uint64 words, so every implementation returns the exact same integer —
// dispatch is a performance decision, never a numerical one.
//
// Dispatch policy (DESIGN.md section 7.3): the best level supported by the
// running CPU is detected once, on first use, and cached in a function-table
// singleton. A build-time default can narrow the choice (-DUST_SIMD=scalar
// pins the reference path, e.g. for sanitizer jobs), and tests may force a
// level explicitly via ForceSimdLevel to cover the vector paths on machines
// where autodetection would pick scalar.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ust {

enum class SimdLevel {
  kScalar = 0,  // portable reference; always available
  kNeon = 1,    // aarch64 baseline (128-bit)
  kAvx2 = 2,    // x86-64 with AVX2 (256-bit)
};

/// Best level the running CPU supports (ignores the build-time default).
SimdLevel DetectSimdLevel();

/// Level the dispatched kernels currently run at. Resolved on first call:
/// min(DetectSimdLevel(), build-time UST_SIMD default), then cached.
SimdLevel ActiveSimdLevel();

/// Test hook: re-point the kernel table at `level`. Returns false (and
/// leaves the table unchanged) when the CPU does not support `level`.
/// Not thread-safe against concurrent kernel calls — call from test setup.
bool ForceSimdLevel(SimdLevel level);

const char* SimdLevelName(SimdLevel level);

/// sum over i of popcount(a[i] & b[i]) — the P(forall)-style reduction.
uint64_t AndPopcountWords(const uint64_t* a, const uint64_t* b, size_t n);

/// sum over i of popcount(a[i] | b[i]) — the P(exists)-style reduction.
uint64_t OrPopcountWords(const uint64_t* a, const uint64_t* b, size_t n);

/// sum over i of popcount(a[i]).
uint64_t PopcountWords(const uint64_t* a, size_t n);

/// Multi-row AND fold: acc[i] over rows, then popcount. `rows` holds
/// `num_rows` pointers, each to `n` words; equivalent to popcounting
/// rows[0][i] & rows[1][i] & ... per word. num_rows == 0 returns 64 * n
/// (the empty AND is all-ones over whole words) — callers mask partial
/// trailing words before packing, per NnTable's contract.
uint64_t AndRowsPopcount(const uint64_t* const* rows, size_t num_rows,
                         size_t n);

/// Multi-row OR fold, popcounted. num_rows == 0 returns 0.
uint64_t OrRowsPopcount(const uint64_t* const* rows, size_t num_rows,
                        size_t n);

}  // namespace ust
