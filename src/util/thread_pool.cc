#include "util/thread_pool.h"

#include <algorithm>

namespace ust {

void MorselDeque::Reset(size_t begin, size_t end, size_t morsel) {
  std::lock_guard<std::mutex> lock(mu_);
  next_ = begin;
  end_ = std::max(begin, end);
  morsel_ = std::max<size_t>(1, morsel);
}

bool MorselDeque::PopFront(size_t* begin, size_t* end) {
  std::lock_guard<std::mutex> lock(mu_);
  if (next_ >= end_) return false;
  *begin = next_;
  *end = std::min(next_ + morsel_, end_);
  next_ = *end;
  return true;
}

bool MorselDeque::StealHalf(size_t* begin, size_t* end) {
  std::lock_guard<std::mutex> lock(mu_);
  if (next_ >= end_) return false;
  // Count whole morsels (the last may be short) and hand the thief the back
  // ceil(half): with one morsel left the thief takes it outright. The split
  // lands on the morsel grid anchored at the published begin, so owner and
  // thief never share a morsel.
  const size_t morsels = (end_ - next_ + morsel_ - 1) / morsel_;
  const size_t keep = morsels / 2;
  *begin = next_ + keep * morsel_;
  *end = end_;
  end_ = *begin;
  return true;
}

size_t MorselDeque::remaining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return end_ - next_;
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int w = 1; w < num_threads_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::RunJob(int worker) {
  for (;;) {
    const size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n_) break;
    (*fn_)(i, worker);
  }
}

void ThreadPool::WorkerLoop(int worker) {
  uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
    }
    RunJob(worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t, int)>& fn) {
  if (n == 0) return;
  if (num_threads_ == 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    n_ = n;
    next_.store(0, std::memory_order_relaxed);
    active_ = num_threads_ - 1;
    ++generation_;
  }
  start_cv_.notify_all();
  RunJob(0);  // the caller is worker 0
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return active_ == 0; });
  fn_ = nullptr;
}

void ThreadPool::ParallelForChunked(
    size_t n, size_t grain, const std::function<void(size_t, size_t, int)>& fn) {
  if (n == 0) return;
  const size_t g = std::max<size_t>(1, grain);
  const size_t num_chunks = (n + g - 1) / g;
  ParallelFor(num_chunks, [&](size_t chunk, int worker) {
    const size_t begin = chunk * g;
    fn(begin, std::min(begin + g, n), worker);
  });
}

}  // namespace ust
