// Minimal command-line flag parsing for benchmark and example binaries.
// Supports --name=value and --name value forms plus typed getters.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace ust {

/// \brief Parsed --key=value command line flags.
///
/// Unknown flags are retained (benchmark binaries forward the rest to
/// google-benchmark); malformed arguments are reported via ok()/error().
class Flags {
 public:
  /// Parse argv. Positional (non `--`) arguments are ignored.
  static Flags Parse(int argc, char** argv);

  bool Has(const std::string& name) const;

  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  std::string GetString(const std::string& name, const std::string& def) const;
  bool GetBool(const std::string& name, bool def) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace ust
