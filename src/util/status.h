// Status / Result error model, in the spirit of RocksDB/Arrow: library code
// reports recoverable failures through return values instead of exceptions.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace ust {

/// \brief Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kContradiction,   ///< observations incompatible with the motion model
  kResourceLimit,   ///< explicit enumeration/size cap exceeded
  kDeadlineExceeded, ///< the request's latency budget expired before execution
  kInternal,
};

/// \brief Lightweight status object: either OK or a code plus message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Contradiction(std::string msg) {
    return Status(StatusCode::kContradiction, std::move(msg));
  }
  static Status ResourceLimit(std::string msg) {
    return Status(StatusCode::kResourceLimit, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human-readable "CODE: message" string.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief Value-or-Status, analogous to arrow::Result.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT implicit
  Result(Status status) : status_(std::move(status)) {  // NOLINT implicit
    assert(!status_.ok() && "OK status requires a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& MoveValue() {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` when this holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace ust

/// Propagate a non-OK Status from the current function.
#define UST_RETURN_NOT_OK(expr)            \
  do {                                     \
    ::ust::Status _st = (expr);            \
    if (!_st.ok()) return _st;             \
  } while (0)

/// Assign from a Result or propagate its error Status.
#define UST_ASSIGN_OR_RETURN(lhs, rexpr)   \
  auto UST_CONCAT_(_res_, __LINE__) = (rexpr);              \
  if (!UST_CONCAT_(_res_, __LINE__).ok())                   \
    return UST_CONCAT_(_res_, __LINE__).status();           \
  lhs = UST_CONCAT_(_res_, __LINE__).MoveValue()

#define UST_CONCAT_IMPL_(a, b) a##b
#define UST_CONCAT_(a, b) UST_CONCAT_IMPL_(a, b)
