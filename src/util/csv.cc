#include "util/csv.h"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "util/check.h"

namespace ust {

std::string FormatDouble(double v) {
  if (std::floor(v) == v && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void CsvTable::AddRow(std::vector<std::string> cells) {
  UST_CHECK(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

void CsvTable::AddRow(const std::vector<double>& cells) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (double c : cells) formatted.push_back(FormatDouble(c));
  AddRow(std::move(formatted));
}

void CsvTable::Print(std::ostream& os, const std::string& title) const {
  os << "# " << title << "\n";
  for (size_t i = 0; i < columns_.size(); ++i) {
    os << columns_[i] << (i + 1 < columns_.size() ? "," : "\n");
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      os << row[i] << (i + 1 < row.size() ? "," : "\n");
    }
  }
}

}  // namespace ust
