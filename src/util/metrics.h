// Unified metrics registry (DESIGN.md section 9): typed, named instruments
// — monotonic Counters, settable Gauges, thread-safe Histograms — that
// self-enumerate into JSON in registration order. The serving tier's rule:
// new subsystems register instruments here instead of growing hand-rolled
// atomic fields, so every new knob lands with a signal that appears in
// ServerStats::ToJson (and any other registry dump) without touching the
// serialization code.
//
// Instruments are standalone value types (an atomic plus convenience
// methods), so a component can own its counters and either register them
// with a caller's registry (SessionCache::RegisterMetrics) or stay
// registry-free (unit tests, library embedding). The registry stores
// non-owning pointers for those and owns the instruments it creates itself;
// either way the instrument must outlive the registry's last Snapshot.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/stats.h"

namespace ust {

/// \brief Monotonic counter (relaxed atomic: totals, not ordering).
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Last-write-wins gauge (queue depths, high-water marks).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  /// Raise to `v` if higher (CAS loop; peaks under concurrent writers).
  void MaxWith(int64_t v) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Thread-safe wrapper over the log-bucket LatencyHistogram: Record
/// takes a short lock (the histogram's bucket increment is a few cache
/// lines, far below the serving tier's per-request work).
class HistogramMetric {
 public:
  void Record(double value) {
    std::lock_guard<std::mutex> lock(mu_);
    hist_.Record(value);
  }
  LatencyHistogram Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hist_;
  }

 private:
  mutable std::mutex mu_;
  LatencyHistogram hist_;
};

/// \brief One instrument's value at Snapshot() time.
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  uint64_t counter = 0;       ///< kCounter
  int64_t gauge = 0;          ///< kGauge
  LatencyHistogram histogram; ///< kHistogram
};

/// \brief Ordered, thread-safe registry of named instruments.
///
/// Names must be unique (UST_DCHECKed); registration order is enumeration
/// order, so JSON output stays stable across snapshots.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Create and register an owned instrument. Pointers stay valid for the
  /// registry's lifetime.
  Counter* NewCounter(std::string name);
  Gauge* NewGauge(std::string name);
  HistogramMetric* NewHistogram(std::string name);

  /// Register an externally-owned instrument (must outlive the registry's
  /// last Snapshot) — how components that own their counters plug in.
  void RegisterCounter(std::string name, const Counter* counter);
  void RegisterGauge(std::string name, const Gauge* gauge);
  void RegisterHistogram(std::string name, const HistogramMetric* histogram);

  /// Values of every instrument, in registration order.
  std::vector<MetricSample> Snapshot() const;

  /// Flat JSON object: counters/gauges as integers, histograms as the
  /// LatencyHistogram summary object — the self-enumerating dump.
  std::string ToJson() const;

  /// Counter value by name; 0 when absent (test convenience).
  uint64_t CounterValue(const std::string& name) const;

  size_t size() const;

 private:
  struct Entry {
    std::string name;
    MetricSample::Kind kind;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const HistogramMetric* histogram = nullptr;
  };

  void AddEntry(Entry entry);

  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  // Owned instruments: deques never relocate elements, so handed-out
  // pointers survive any number of later registrations.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<HistogramMetric> histograms_;
};

}  // namespace ust
