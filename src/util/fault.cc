#include "util/fault.h"

#if !defined(UST_FAULT_DISABLED)

#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

namespace ust::fault {

namespace internal {
std::atomic<int> g_armed{0};
}  // namespace internal

namespace {

struct PointState {
  std::string name;
  FaultSpec spec;
  bool armed = false;
  uint64_t probes = 0;  ///< probe hits while armed
  uint64_t fires = 0;   ///< probes that actually fired
};

std::mutex& Mutex() {
  static std::mutex mu;
  return mu;
}

std::vector<PointState>& Points() {
  static std::vector<PointState> points;
  return points;
}

PointState* FindLocked(const char* point) {
  for (PointState& state : Points()) {
    if (state.name == point) return &state;
  }
  return nullptr;
}

/// Probe bookkeeping under the registry mutex: counts the hit and decides
/// whether this one fires (deterministic window: probes in
/// (skip_first, skip_first + max_fires] fire).
bool ProbeFires(const char* point, FaultSpec* spec_out) {
  std::lock_guard<std::mutex> lock(Mutex());
  PointState* state = FindLocked(point);
  if (state == nullptr || !state->armed) return false;
  ++state->probes;
  if (state->probes <= state->spec.skip_first) return false;
  if (state->fires >= state->spec.max_fires) return false;
  ++state->fires;
  if (spec_out != nullptr) *spec_out = state->spec;
  return true;
}

}  // namespace

namespace internal {

bool FireSlow(const char* point) { return ProbeFires(point, nullptr); }

void StallSlow(const char* point) {
  FaultSpec spec;
  if (!ProbeFires(point, &spec) || spec.stall_ms <= 0.0) return;
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(spec.stall_ms));
}

int64_t SkewSlow(const char* point) {
  FaultSpec spec;
  if (!ProbeFires(point, &spec)) return 0;
  return spec.skew_ns;
}

}  // namespace internal

void Arm(const char* point, const FaultSpec& spec) {
  std::lock_guard<std::mutex> lock(Mutex());
  PointState* state = FindLocked(point);
  if (state == nullptr) {
    Points().push_back(PointState{});
    state = &Points().back();
    state->name = point;
  }
  if (!state->armed) {
    internal::g_armed.fetch_add(1, std::memory_order_relaxed);
  }
  state->armed = true;
  state->spec = spec;
  state->probes = 0;
  state->fires = 0;
}

void Disarm(const char* point) {
  std::lock_guard<std::mutex> lock(Mutex());
  PointState* state = FindLocked(point);
  if (state == nullptr || !state->armed) return;
  state->armed = false;
  internal::g_armed.fetch_sub(1, std::memory_order_relaxed);
}

void ClearAll() {
  std::lock_guard<std::mutex> lock(Mutex());
  int armed = 0;
  for (const PointState& state : Points()) {
    if (state.armed) ++armed;
  }
  Points().clear();
  internal::g_armed.fetch_sub(armed, std::memory_order_relaxed);
}

uint64_t FireCount(const char* point) {
  std::lock_guard<std::mutex> lock(Mutex());
  const PointState* state = FindLocked(point);
  return state == nullptr ? 0 : state->fires;
}

uint64_t ProbeCount(const char* point) {
  std::lock_guard<std::mutex> lock(Mutex());
  const PointState* state = FindLocked(point);
  return state == nullptr ? 0 : state->probes;
}

std::vector<std::string> ArmedPoints() {
  std::lock_guard<std::mutex> lock(Mutex());
  std::vector<std::string> names;
  for (const PointState& state : Points()) {
    if (state.armed) names.push_back(state.name);
  }
  return names;
}

}  // namespace ust::fault

#endif  // !UST_FAULT_DISABLED
