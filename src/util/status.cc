#include "util/status.h"

namespace ust {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kContradiction: return "Contradiction";
    case StatusCode::kResourceLimit: return "ResourceLimit";
    case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
    case StatusCode::kInternal: return "Internal";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace ust
