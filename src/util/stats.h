// Statistical helpers: Hoeffding sample sizing for Monte-Carlo estimators and
// simple descriptive statistics used by the benchmark harnesses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ust {

/// \brief Number of Monte-Carlo samples so that a Binomial proportion
/// estimate deviates by more than `epsilon` with probability at most `delta`
/// (two-sided Hoeffding bound [Hoeffding 1963]): n >= ln(2/delta)/(2 eps^2).
size_t HoeffdingSampleCount(double epsilon, double delta);

/// \brief Two-sided Hoeffding error bound for `n` samples at confidence
/// 1 - delta: epsilon = sqrt(ln(2/delta) / (2 n)).
double HoeffdingEpsilon(size_t n, double delta);

/// \brief Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& xs);

/// \brief Unbiased sample standard deviation; 0 for n < 2.
double StdDev(const std::vector<double>& xs);

/// \brief Root mean squared error between paired series (sizes must match).
double Rmse(const std::vector<double>& a, const std::vector<double>& b);

/// \brief Mean signed error (a - b); positive means `a` overestimates `b`.
double MeanSignedError(const std::vector<double>& a,
                       const std::vector<double>& b);

/// \brief Pearson correlation coefficient; 0 when either side is constant.
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

/// \brief Closed interval [lo, hi] ⊆ [0, 1].
struct Interval {
  double lo;
  double hi;
};

/// \brief Quantile function (probit) of the standard normal distribution,
/// accurate to ~1e-9 (Acklam's rational approximation). p in (0, 1).
double NormalQuantile(double p);

/// \brief Wilson score interval for a Binomial proportion: covers the true
/// probability with confidence 1 - delta. Valid for all n >= 1 including
/// successes = 0 or n (where Wald intervals degenerate).
Interval WilsonInterval(size_t successes, size_t n, double delta);

/// \brief Minimal JSON object builder shared by every hand-rolled exporter
/// in the tree — ServerStats::ToJson, LatencyHistogram::ToJson, the metrics
/// registry, and (via bench/bench_json.h) the BENCH_*.json artifacts. One
/// code path means one place that gets escaping, empty arrays and trailing
/// commas right: an empty field list renders "{}", an empty Array() "[]",
/// never a malformed fragment.
class JsonWriter {
 public:
  void Uint(const std::string& key, uint64_t value);
  void Int(const std::string& key, int64_t value);
  /// `fmt` is the printf format for the value (default "%.9g").
  void Double(const std::string& key, double value, const char* fmt = "%.9g");
  /// String value, escaped.
  void String(const std::string& key, const std::string& value);
  /// Pre-rendered JSON value (nested object/array) emitted verbatim.
  void Raw(const std::string& key, const std::string& rendered);

  /// Render the object. `pretty` emits one field per line indented two
  /// spaces (the BENCH_*.json house style); compact emits a single line.
  std::string Render(bool pretty = false) const;

  /// JSON array of pre-rendered values; empty input renders "[]".
  static std::string Array(const std::vector<std::string>& rendered_items);

  /// Backslash-escape quotes/backslashes/control characters.
  static std::string Escape(const std::string& s);

  size_t size() const { return fields_.size(); }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// \brief Fixed-footprint log-scale histogram for latency tracking (the
/// serving tier's p50/p99 source). Buckets grow geometrically by ratio
/// 2^(1/4) from 1 unit upward (~19% relative resolution, 128 buckets cover
/// 1 µs to ~2 hours when fed microseconds); no allocation after
/// construction, O(buckets) quantiles.
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = 128;

  /// Record one sample (in the caller's unit, canonically microseconds).
  /// Negative/NaN samples are clamped to 0.
  void Record(double value);

  size_t count() const { return count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Quantile q in [0, 1] by geometric interpolation within the owning
  /// bucket, clamped to the observed [min, max]. 0 when empty.
  double Quantile(double q) const;

  /// Merge another histogram into this one (same bucket layout by type).
  void Merge(const LatencyHistogram& other);

  /// Render the summary as a JSON object:
  /// {"count":N,"mean":..,"p50":..,"p90":..,"p99":..,"max":..} — the shape
  /// ServerStats embeds for the end-to-end, queue and per-lane histograms.
  std::string ToJson() const;

 private:
  size_t BucketIndex(double value) const;
  /// Lower edge of bucket i: 2^(i/4); bucket 0 additionally covers [0, 1).
  static double BucketLow(size_t i);

  uint64_t buckets_[kNumBuckets] = {0};
  size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace ust
