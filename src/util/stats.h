// Statistical helpers: Hoeffding sample sizing for Monte-Carlo estimators and
// simple descriptive statistics used by the benchmark harnesses.
#pragma once

#include <cstddef>
#include <vector>

namespace ust {

/// \brief Number of Monte-Carlo samples so that a Binomial proportion
/// estimate deviates by more than `epsilon` with probability at most `delta`
/// (two-sided Hoeffding bound [Hoeffding 1963]): n >= ln(2/delta)/(2 eps^2).
size_t HoeffdingSampleCount(double epsilon, double delta);

/// \brief Two-sided Hoeffding error bound for `n` samples at confidence
/// 1 - delta: epsilon = sqrt(ln(2/delta) / (2 n)).
double HoeffdingEpsilon(size_t n, double delta);

/// \brief Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& xs);

/// \brief Unbiased sample standard deviation; 0 for n < 2.
double StdDev(const std::vector<double>& xs);

/// \brief Root mean squared error between paired series (sizes must match).
double Rmse(const std::vector<double>& a, const std::vector<double>& b);

/// \brief Mean signed error (a - b); positive means `a` overestimates `b`.
double MeanSignedError(const std::vector<double>& a,
                       const std::vector<double>& b);

/// \brief Pearson correlation coefficient; 0 when either side is constant.
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

/// \brief Closed interval [lo, hi] ⊆ [0, 1].
struct Interval {
  double lo;
  double hi;
};

/// \brief Quantile function (probit) of the standard normal distribution,
/// accurate to ~1e-9 (Acklam's rational approximation). p in (0, 1).
double NormalQuantile(double p);

/// \brief Wilson score interval for a Binomial proportion: covers the true
/// probability with confidence 1 - delta. Valid for all n >= 1 including
/// successes = 0 or n (where Wald intervals degenerate).
Interval WilsonInterval(size_t successes, size_t n, double delta);

}  // namespace ust
