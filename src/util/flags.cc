#include "util/flags.h"

#include <cstdlib>
#include <cstring>

namespace ust {

Flags Flags::Parse(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) continue;
    std::string body(arg + 2);
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags.values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      flags.values_[body] = argv[++i];
    } else {
      flags.values_[body] = "true";  // bare boolean flag
    }
  }
  return flags;
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

int64_t Flags::GetInt(const std::string& name, int64_t def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name, double def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

std::string Flags::GetString(const std::string& name,
                             const std::string& def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

bool Flags::GetBool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace ust
