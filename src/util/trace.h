// Low-overhead event tracing for the serving pipeline (DESIGN.md section 9):
// per-thread lock-free ring buffers of fixed-size event slots, registered
// with one process-wide TraceSession, exported as Chrome trace_event /
// Perfetto-compatible JSON (open a dump in chrome://tracing or ui.perfetto.dev).
//
// Cost model: when tracing is disabled every probe is a single relaxed
// atomic load and a predictable branch — no clock read, no store. When
// enabled, a probe is that branch plus one steady_clock read and one slot
// write into the calling thread's own ring (no sharing, no locks, no
// allocation after registration). Compiling with UST_TRACE_DISABLED removes
// the probes entirely (macros and inline bodies collapse to nothing), which
// is the belt-and-braces guarantee behind the trace_overhead bench gate.
//
// Concurrency contract: each ring is written only by its owning thread;
// readers (Snapshot/ToJson/DumpJson) must run after writers have quiesced —
// Disable() first, or join the traced threads — exactly how the serving
// tier uses it (QueryServer::Stop joins every lane before DumpTrace).
// The ring wraps by overwriting the oldest events; the overwritten count is
// surfaced as the `trace_dropped` metric so silent truncation is visible.
//
// Span taxonomy (the serving tier's request lifecycle): `admit`, `queue`,
// `flush`, `lane_adopt`, `session_checkout`, `session_build`, `arena_build`,
// `morsel_exec` (tagged with the refining backend), `steal`, `finalize`,
// plus per-backend `exec_mc` / `exec_markov` / `exec_exact` spans. Spans
// that belong to a request carry its id in args ("req"), so one request can
// be followed admission-to-finalize across threads.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#if !defined(UST_TRACE_DISABLED)
#include <atomic>
#endif

namespace ust::trace {

/// \brief One recorded event. `name`, `arg_name` and `tag` must be string
/// literals (or otherwise outlive the session): slots store the pointers.
struct TraceEvent {
  const char* name = nullptr;
  const char* arg_name = nullptr;  ///< args key for `arg`; nullptr = no arg
  const char* tag = nullptr;       ///< optional args {"tag": ...}
  uint64_t ts_ns = 0;              ///< since Enable(), nanoseconds
  uint64_t dur_ns = 0;             ///< complete ('X') events only
  uint64_t arg = 0;
  uint32_t tid = 0;                ///< registration-order thread id
  char phase = 'X';                ///< 'X' complete, 'i' instant
};

/// The default args key for request-scoped spans.
inline constexpr const char* kReqArg = "req";

#if !defined(UST_TRACE_DISABLED)

namespace internal {
/// The single global enable flag: the only thing a disabled probe touches.
extern std::atomic<bool> g_enabled;
void EmitComplete(const char* name, uint64_t ts_ns, uint64_t dur_ns,
                  uint64_t arg, const char* arg_name, const char* tag);
void EmitInstant(const char* name, uint64_t arg, const char* arg_name,
                 const char* tag);
/// Nanoseconds since the session clock origin (clamped to 0 before it).
uint64_t NowNs();
uint64_t ToNs(std::chrono::steady_clock::time_point tp);
}  // namespace internal

/// True when tracing is currently recording (one relaxed load).
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// Start recording. Resets every registered ring to `events_per_thread`
/// slots and re-origins the clock. Not safe concurrently with live probes —
/// call before the traced workload starts.
void Enable(size_t events_per_thread = 1 << 16);

/// Pre-register (allocate and first-touch) this thread's ring if tracing is
/// enabled — call at thread start for threads that will probe on a latency
/// path, so ring allocation happens at startup instead of on the first
/// traced request. No-op when disabled.
void PrepareThisThread();

/// Stop recording (probes go back to the single-branch fast path). The
/// buffers keep their contents for Snapshot/Dump.
void Disable();

/// Drop all recorded events and counters (tracing must be disabled).
void Reset();

/// Events currently held across all thread rings (post-wrap survivors).
uint64_t RecordedCount();

/// Events overwritten by ring wrap-around since Enable (the trace_dropped
/// metric).
uint64_t DroppedCount();

/// Flattened copy of every ring, per-thread write order, tids filled in.
/// Callers must have quiesced writers (see the concurrency contract above).
std::vector<TraceEvent> Snapshot();

/// Chrome trace_event JSON: {"displayTimeUnit":"ms","traceEvents":[...]}.
std::string ToJson();

/// Write ToJson() to `path`; false on IO failure.
bool DumpJson(const std::string& path);

/// Record an instant event ('i', thread scope).
inline void Instant(const char* name, uint64_t arg = 0,
                    const char* arg_name = kReqArg,
                    const char* tag = nullptr) {
  if (Enabled()) internal::EmitInstant(name, arg, arg_name, tag);
}

/// Record a complete span from explicit steady_clock endpoints — for spans
/// whose begin predates the probe site (e.g. `queue`: submit-to-flush,
/// emitted at flush time from the recorded submit timestamp).
inline void Complete(const char* name,
                     std::chrono::steady_clock::time_point begin,
                     std::chrono::steady_clock::time_point end,
                     uint64_t arg = 0, const char* arg_name = kReqArg,
                     const char* tag = nullptr) {
  if (!Enabled()) return;
  const uint64_t b = internal::ToNs(begin);
  const uint64_t e = internal::ToNs(end);
  internal::EmitComplete(name, b, e > b ? e - b : 0, arg, arg_name, tag);
}

/// \brief RAII span: records one complete ('X') event covering its scope.
/// Construction on the disabled path reads the flag and nothing else.
class Span {
 public:
  explicit Span(const char* name, uint64_t arg = 0,
                const char* arg_name = kReqArg, const char* tag = nullptr) {
    if (Enabled()) {
      name_ = name;
      arg_ = arg;
      arg_name_ = arg_name;
      tag_ = tag;
      start_ns_ = internal::NowNs();
    }
  }
  ~Span() {
    if (name_ != nullptr) {
      const uint64_t now = internal::NowNs();
      internal::EmitComplete(name_, start_ns_,
                             now > start_ns_ ? now - start_ns_ : 0, arg_,
                             arg_name_, tag_);
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach/replace the tag after construction (e.g. the backend that
  /// actually refined a morsel, known only after execution).
  void set_tag(const char* tag) { tag_ = tag; }

  /// Attach/replace the arg after construction (e.g. a request id assigned
  /// only once admission accepted the request).
  void set_arg(uint64_t arg) { arg_ = arg; }

 private:
  const char* name_ = nullptr;  ///< nullptr = tracing was off at entry
  const char* arg_name_ = kReqArg;
  const char* tag_ = nullptr;
  uint64_t arg_ = 0;
  uint64_t start_ns_ = 0;
};

#else  // UST_TRACE_DISABLED: every probe compiles to nothing.

inline bool Enabled() { return false; }
inline void Enable(size_t = 0) {}
inline void PrepareThisThread() {}
inline void Disable() {}
inline void Reset() {}
inline uint64_t RecordedCount() { return 0; }
inline uint64_t DroppedCount() { return 0; }
inline std::vector<TraceEvent> Snapshot() { return {}; }
inline std::string ToJson() {
  return "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}\n";
}
bool DumpJson(const std::string& path);  // still writes the empty trace
inline void Instant(const char*, uint64_t = 0, const char* = kReqArg,
                    const char* = nullptr) {}
inline void Complete(const char*, std::chrono::steady_clock::time_point,
                     std::chrono::steady_clock::time_point, uint64_t = 0,
                     const char* = kReqArg, const char* = nullptr) {}
class Span {
 public:
  explicit Span(const char*, uint64_t = 0, const char* = kReqArg,
                const char* = nullptr) {}
  void set_tag(const char*) {}
  void set_arg(uint64_t) {}
};

#endif  // UST_TRACE_DISABLED

}  // namespace ust::trace

// Scope macro: UST_TRACE_SCOPE("name"), UST_TRACE_SCOPE("name", req_id), or
// UST_TRACE_SCOPE("name", value, "key") for non-request args.
#define UST_TRACE_CONCAT_(a, b) a##b
#define UST_TRACE_CONCAT(a, b) UST_TRACE_CONCAT_(a, b)
#define UST_TRACE_SCOPE(...) \
  ::ust::trace::Span UST_TRACE_CONCAT(ust_trace_span_, __LINE__)(__VA_ARGS__)
