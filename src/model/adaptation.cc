#include "model/adaptation.h"

#include <algorithm>
#include <string>
#include <tuple>

#include "util/check.h"

namespace ust {

namespace {

// One time-reversed matrix R(t): rows keyed by the (pre-collapse) forward
// support at tic t; each row is a distribution over states at tic t-1.
struct ReverseSlice {
  std::vector<StateId> states;                       // sorted row keys
  std::vector<uint32_t> row_offsets;                 // size states.size()+1
  std::vector<std::pair<StateId, double>> entries;   // (state at t-1, prob)
};

using Triple = std::tuple<StateId, StateId, double>;  // (group key, member, value)

// Groups (key, member, value) triples by key: emits sorted unique keys, the
// per-key value sums, and normalized per-key member lists.
template <typename MemberT>
void GroupNormalize(std::vector<std::tuple<StateId, MemberT, double>>* triples,
                    std::vector<StateId>* keys, std::vector<double>* sums,
                    std::vector<uint32_t>* row_offsets,
                    std::vector<std::pair<MemberT, double>>* entries) {
  std::sort(triples->begin(), triples->end());
  keys->clear();
  sums->clear();
  row_offsets->clear();
  entries->clear();
  row_offsets->push_back(0);
  size_t i = 0;
  while (i < triples->size()) {
    StateId key = std::get<0>((*triples)[i]);
    double sum = 0.0;
    size_t begin = i;
    while (i < triples->size() && std::get<0>((*triples)[i]) == key) {
      sum += std::get<2>((*triples)[i]);
      ++i;
    }
    if (sum <= 0.0) continue;  // numerically extinct state: drop
    keys->push_back(key);
    sums->push_back(sum);
    // Merge duplicate members (same (key, member) can appear via multiple
    // paths only if the input had duplicates; keep defensive merging cheap).
    for (size_t j = begin; j < i; ++j) {
      double v = std::get<2>((*triples)[j]) / sum;
      if (!entries->empty() && row_offsets->back() < entries->size() &&
          entries->back().first == std::get<1>((*triples)[j])) {
        entries->back().second += v;
      } else {
        entries->push_back({std::get<1>((*triples)[j]), v});
      }
    }
    row_offsets->push_back(static_cast<uint32_t>(entries->size()));
  }
}

std::string ContradictionMessage(const Observation& o) {
  return "observation at tic " + std::to_string(o.time) + " (state " +
         std::to_string(o.state) + ") unreachable under a-priori model";
}

}  // namespace

namespace {

// Append `extra` slices past the last slice by plain a-priori propagation;
// transition rows are the matrix rows themselves (they already sum to 1 and
// every target is in the next support by construction). `last_tic` is the
// absolute tic of the current final slice (needed to pick M(t)).
void ExtendWithApriori(const TransitionModel& model, Tic last_tic,
                       size_t extra,
                       std::vector<PosteriorModel::Slice>* slices) {
  for (size_t step = 0; step < extra; ++step) {
    const TransitionMatrix& matrix = model.At(last_tic + static_cast<Tic>(step));
    PosteriorModel::Slice& prev = slices->back();
    // Gather successor states and marginals.
    std::vector<SparseDist::Entry> acc;
    for (size_t i = 0; i < prev.support.size(); ++i) {
      const StateId s = prev.support[i];
      for (const auto* e = matrix.begin(s); e != matrix.end(s); ++e) {
        acc.push_back({e->first, e->second * prev.marginal[i]});
      }
    }
    SparseDist next_dist(std::move(acc));
    next_dist.Normalize();
    PosteriorModel::Slice next;
    next.support = next_dist.Support();
    next.marginal.reserve(next.support.size());
    for (const auto& [s, p] : next_dist.entries()) next.marginal.push_back(p);
    // Fill prev's transition rows, mapping targets to next-slice indices.
    prev.row_offsets.clear();
    prev.transitions.clear();
    prev.row_offsets.push_back(0);
    for (StateId s : prev.support) {
      for (const auto* e = matrix.begin(s); e != matrix.end(s); ++e) {
        auto it = std::lower_bound(next.support.begin(), next.support.end(),
                                   e->first);
        UST_CHECK(it != next.support.end() && *it == e->first);
        prev.transitions.push_back(
            {static_cast<uint32_t>(it - next.support.begin()), e->second});
      }
      prev.row_offsets.push_back(static_cast<uint32_t>(prev.transitions.size()));
    }
    slices->push_back(std::move(next));
  }
}

}  // namespace

Result<PosteriorModel> AdaptTransitionMatrices(const TransitionMatrix& matrix,
                                               const ObservationSeq& obs) {
  return AdaptTransitionMatrices(matrix, obs, obs.last_tic());
}

Result<PosteriorModel> AdaptTransitionMatrices(const TransitionMatrix& matrix,
                                               const ObservationSeq& obs,
                                               Tic extend_until) {
  // Non-owning homogeneous view over the caller's matrix.
  HomogeneousModel model(
      std::shared_ptr<const TransitionMatrix>(&matrix, [](const auto*) {}));
  return AdaptTransitionMatrices(model, obs, extend_until);
}

Result<PosteriorModel> AdaptTransitionMatrices(const TransitionModel& model,
                                               const ObservationSeq& obs) {
  return AdaptTransitionMatrices(model, obs, obs.last_tic());
}

Result<PosteriorModel> AdaptTransitionMatrices(const TransitionModel& model,
                                               const ObservationSeq& obs,
                                               Tic extend_until) {
  const Tic t0 = obs.first_tic();
  const Tic t1 = obs.last_tic();
  const size_t num_tics = static_cast<size_t>(t1 - t0) + 1;
  if (obs.first().state >= model.num_states()) {
    return Status::InvalidArgument("observation state outside matrix domain");
  }
  if (extend_until < t1) {
    return Status::InvalidArgument(
        "extend_until before the last observation");
  }
  const size_t extra = static_cast<size_t>(extend_until - t1);

  if (num_tics == 1) {
    PosteriorModel::Slice slice;
    slice.support = {obs.first().state};
    slice.marginal = {1.0};
    std::vector<PosteriorModel::Slice> slices = {std::move(slice)};
    ExtendWithApriori(model, t1, extra, &slices);
    return PosteriorModel(t0, std::move(slices));
  }

  // ---- Forward phase: distribution filtering + reversed matrices R(t). ----
  std::vector<ReverseSlice> reverse(num_tics);  // reverse[k] = R(t0 + k), k>=1
  std::vector<SparseDist::Entry> cur = {{obs.first().state, 1.0}};
  std::vector<Triple> triples;
  for (size_t k = 1; k < num_tics; ++k) {
    const Tic t = t0 + static_cast<Tic>(k);
    const TransitionMatrix& matrix = model.At(t - 1);
    triples.clear();
    for (const auto& [from, p] : cur) {
      for (const auto* e = matrix.begin(from); e != matrix.end(from); ++e) {
        triples.emplace_back(e->first, from, e->second * p);
      }
    }
    ReverseSlice& r = reverse[k];
    std::vector<double> sums;
    GroupNormalize(&triples, &r.states, &sums, &r.row_offsets, &r.entries);
    if (r.states.empty()) {
      return Status::Contradiction("forward support died out at tic " +
                                   std::to_string(t));
    }
    // New filtered distribution (normalized to fight fp drift).
    double total = 0.0;
    for (double s : sums) total += s;
    cur.clear();
    cur.reserve(r.states.size());
    for (size_t i = 0; i < r.states.size(); ++i) {
      cur.push_back({r.states[i], sums[i] / total});
    }
    if (const Observation* o = obs.At(t)) {
      // Incorporate the observation: collapse to the observed state.
      auto it = std::lower_bound(r.states.begin(), r.states.end(), o->state);
      if (it == r.states.end() || *it != o->state) {
        return Status::Contradiction(ContradictionMessage(*o));
      }
      cur.clear();
      cur.push_back({o->state, 1.0});
    }
  }

  // ---- Backward phase: posterior slices + forward matrices F(t). ----
  std::vector<PosteriorModel::Slice> slices(num_tics);
  {
    PosteriorModel::Slice& last = slices[num_tics - 1];
    last.support = {obs.last().state};
    last.marginal = {1.0};
  }
  // Triples here: (state at t, local index into slice t+1, joint probability).
  std::vector<std::tuple<StateId, uint32_t, double>> btriples;
  for (size_t k = num_tics - 1; k >= 1; --k) {
    const PosteriorModel::Slice& next = slices[k];
    const ReverseSlice& r = reverse[k];
    btriples.clear();
    for (uint32_t i = 0; i < next.support.size(); ++i) {
      const StateId si = next.support[i];
      const double pi = next.marginal[i];
      auto it = std::lower_bound(r.states.begin(), r.states.end(), si);
      UST_CHECK(it != r.states.end() && *it == si);
      const auto row = static_cast<size_t>(it - r.states.begin());
      for (uint32_t e = r.row_offsets[row]; e < r.row_offsets[row + 1]; ++e) {
        btriples.emplace_back(r.entries[e].first, i, r.entries[e].second * pi);
      }
    }
    PosteriorModel::Slice& slice = slices[k - 1];
    std::vector<double> sums;
    GroupNormalize(&btriples, &slice.support, &sums, &slice.row_offsets,
                   &slice.transitions);
    UST_CHECK(!slice.support.empty());
    double total = 0.0;
    for (double s : sums) total += s;
    slice.marginal.reserve(sums.size());
    for (double s : sums) slice.marginal.push_back(s / total);
  }
  UST_DCHECK(slices.front().support.size() == 1 &&
             slices.front().support[0] == obs.first().state);
  ExtendWithApriori(model, t1, extra, &slices);
  return PosteriorModel(t0, std::move(slices));
}

Result<std::vector<SparseDist>> ForwardFilterMarginals(
    const TransitionMatrix& matrix, const ObservationSeq& obs) {
  const Tic t0 = obs.first_tic();
  const Tic t1 = obs.last_tic();
  const size_t num_tics = static_cast<size_t>(t1 - t0) + 1;
  std::vector<SparseDist> result;
  result.reserve(num_tics);
  SparseDist cur = SparseDist::Indicator(obs.first().state);
  result.push_back(cur);
  for (size_t k = 1; k < num_tics; ++k) {
    const Tic t = t0 + static_cast<Tic>(k);
    cur = matrix.Propagate(cur);
    cur.Normalize();
    if (const Observation* o = obs.At(t)) {
      if (cur.Prob(o->state) <= 0.0) {
        return Status::Contradiction(
            "observation at tic " + std::to_string(t) +
            " unreachable under forward filtering");
      }
      cur = SparseDist::Indicator(o->state);
    }
    result.push_back(cur);
  }
  return result;
}

std::vector<SparseDist> AprioriMarginals(const TransitionMatrix& matrix,
                                         const Observation& first,
                                         size_t num_tics) {
  std::vector<SparseDist> result;
  result.reserve(num_tics);
  SparseDist cur = SparseDist::Indicator(first.state);
  result.push_back(cur);
  for (size_t k = 1; k < num_tics; ++k) {
    cur = matrix.Propagate(cur);
    cur.Normalize();
    result.push_back(cur);
  }
  return result;
}

std::vector<SparseDist> UniformReachableMarginals(const PosteriorModel& model) {
  std::vector<SparseDist> result;
  result.reserve(model.num_slices());
  for (Tic t = model.first_tic(); t <= model.last_tic(); ++t) {
    result.push_back(SparseDist::Uniform(model.SliceAt(t).support));
  }
  return result;
}

}  // namespace ust
