#include "model/adaptation.h"

#include <algorithm>
#include <string>

#include "markov/propagate_workspace.h"
#include "util/check.h"

namespace ust {

namespace {

// One time-reversed matrix R(t): rows keyed by the (pre-collapse) forward
// support at tic t; each row is a distribution over states at tic t-1,
// stored structure-of-arrays.
struct ReverseSlice {
  std::vector<StateId> states;        // sorted row keys
  std::vector<uint32_t> row_offsets;  // size states.size()+1
  std::vector<StateId> members;       // state at t-1, CSR
  std::vector<double> probs;          // aligned with members
};

// Scratch triple arrays reused across tics: (group key, member, value)
// decomposed into parallel vectors so GroupNormalize streams each column.
template <typename MemberT>
struct TripleBuffer {
  std::vector<StateId> keys;
  std::vector<MemberT> members;
  std::vector<double> values;

  void Clear() {
    keys.clear();
    members.clear();
    values.clear();
  }
  void Push(StateId key, MemberT member, double value) {
    keys.push_back(key);
    members.push_back(member);
    values.push_back(value);
  }
};

std::string ContradictionMessage(const Observation& o) {
  return "observation at tic " + std::to_string(o.time) + " (state " +
         std::to_string(o.state) + ") unreachable under a-priori model";
}

// Append `extra` slices past the last slice by plain a-priori propagation;
// transition rows are the matrix rows themselves (they already sum to 1 and
// every target is in the next support by construction). `last_tic` is the
// absolute tic of the current final slice (needed to pick M(t)).
void ExtendWithApriori(const TransitionModel& model, Tic last_tic, size_t extra,
                       PropagateWorkspace* ws,
                       std::vector<PosteriorModel::Slice>* slices) {
  for (size_t step = 0; step < extra; ++step) {
    const TransitionMatrix& matrix = model.At(last_tic + static_cast<Tic>(step));
    PosteriorModel::Slice& prev = slices->back();
    // Scatter successor mass into the dense workspace.
    ws->BeginScatter(matrix.num_states());
    for (size_t i = 0; i < prev.support.size(); ++i) {
      const StateId s = prev.support[i];
      const double p = prev.marginal[i];
      for (const auto* e = matrix.begin(s); e != matrix.end(s); ++e) {
        ws->Add(e->first, e->second * p);
      }
    }
    // Keep only states with positive mass (matching BuildRanks, which
    // numbers exactly those): a touched state with zero mass can only have
    // been reached through explicit zero-probability matrix entries.
    const std::vector<StateId>& touched = ws->SortTouched();
    const uint32_t kept = ws->BuildRanks();
    PosteriorModel::Slice next;
    next.support.reserve(kept);
    double total = 0.0;
    for (StateId s : touched) {
      if (ws->rank(s) == PropagateWorkspace::kNoRank) continue;
      next.support.push_back(s);
      total += ws->sum(s);
    }
    UST_CHECK(total > 0.0);
    next.marginal.reserve(kept);
    for (StateId s : next.support) next.marginal.push_back(ws->sum(s) / total);
    // Fill prev's transition rows, mapping targets to next-slice indices via
    // the workspace rank table (O(1) per entry instead of a binary search).
    prev.row_offsets.clear();
    prev.targets.clear();
    prev.tprobs.clear();
    prev.row_offsets.push_back(0);
    for (StateId s : prev.support) {
      for (const auto* e = matrix.begin(s); e != matrix.end(s); ++e) {
        const uint32_t r = ws->rank(e->first);
        if (r == PropagateWorkspace::kNoRank) continue;  // zero-prob edge
        prev.targets.push_back(r);
        prev.tprobs.push_back(e->second);
      }
      prev.row_offsets.push_back(static_cast<uint32_t>(prev.targets.size()));
    }
    slices->push_back(std::move(next));
  }
}

}  // namespace

Result<PosteriorModel> AdaptTransitionMatrices(const TransitionMatrix& matrix,
                                               const ObservationSeq& obs) {
  return AdaptTransitionMatrices(matrix, obs, obs.last_tic());
}

Result<PosteriorModel> AdaptTransitionMatrices(const TransitionMatrix& matrix,
                                               const ObservationSeq& obs,
                                               Tic extend_until,
                                               PropagateWorkspace* ws) {
  // Non-owning homogeneous view over the caller's matrix.
  HomogeneousModel model(
      std::shared_ptr<const TransitionMatrix>(&matrix, [](const auto*) {}));
  return AdaptTransitionMatrices(model, obs, extend_until, ws);
}

Result<PosteriorModel> AdaptTransitionMatrices(const TransitionModel& model,
                                               const ObservationSeq& obs) {
  return AdaptTransitionMatrices(model, obs, obs.last_tic());
}

Result<PosteriorModel> AdaptTransitionMatrices(const TransitionModel& model,
                                               const ObservationSeq& obs,
                                               Tic extend_until,
                                               PropagateWorkspace* ws_in) {
  const Tic t0 = obs.first_tic();
  const Tic t1 = obs.last_tic();
  const size_t num_tics = static_cast<size_t>(t1 - t0) + 1;
  if (obs.first().state >= model.num_states()) {
    return Status::InvalidArgument("observation state outside matrix domain");
  }
  if (extend_until < t1) {
    return Status::InvalidArgument(
        "extend_until before the last observation");
  }
  const size_t extra = static_cast<size_t>(extend_until - t1);
  PropagateWorkspace local_ws;
  PropagateWorkspace& ws = ws_in != nullptr ? *ws_in : local_ws;
  ws.Reserve(model.num_states());

  if (num_tics == 1) {
    PosteriorModel::Slice slice;
    slice.support = {obs.first().state};
    slice.marginal = {1.0};
    std::vector<PosteriorModel::Slice> slices = {std::move(slice)};
    ExtendWithApriori(model, t1, extra, &ws, &slices);
    return PosteriorModel(t0, std::move(slices));
  }

  // ---- Forward phase: distribution filtering + reversed matrices R(t). ----
  std::vector<ReverseSlice> reverse(num_tics);  // reverse[k] = R(t0 + k), k>=1
  std::vector<StateId> cur_ids = {obs.first().state};
  std::vector<double> cur_probs = {1.0};
  TripleBuffer<StateId> triples;
  std::vector<double> sums;
  for (size_t k = 1; k < num_tics; ++k) {
    const Tic t = t0 + static_cast<Tic>(k);
    const TransitionMatrix& matrix = model.At(t - 1);
    triples.Clear();
    for (size_t i = 0; i < cur_ids.size(); ++i) {
      const StateId from = cur_ids[i];
      const double p = cur_probs[i];
      for (const auto* e = matrix.begin(from); e != matrix.end(from); ++e) {
        triples.Push(e->first, from, e->second * p);
      }
    }
    ReverseSlice& r = reverse[k];
    GroupNormalize(triples.keys, triples.members, triples.values, &ws,
                   &r.states, &sums, &r.row_offsets, &r.members, &r.probs);
    if (r.states.empty()) {
      return Status::Contradiction("forward support died out at tic " +
                                   std::to_string(t));
    }
    // New filtered distribution (normalized to fight fp drift).
    double total = 0.0;
    for (double s : sums) total += s;
    cur_ids = r.states;
    cur_probs.resize(sums.size());
    for (size_t i = 0; i < sums.size(); ++i) cur_probs[i] = sums[i] / total;
    if (const Observation* o = obs.At(t)) {
      // Incorporate the observation: collapse to the observed state.
      auto it = std::lower_bound(r.states.begin(), r.states.end(), o->state);
      if (it == r.states.end() || *it != o->state) {
        return Status::Contradiction(ContradictionMessage(*o));
      }
      cur_ids = {o->state};
      cur_probs = {1.0};
    }
  }

  // ---- Backward phase: posterior slices + forward matrices F(t). ----
  std::vector<PosteriorModel::Slice> slices(num_tics);
  {
    PosteriorModel::Slice& last = slices[num_tics - 1];
    last.support = {obs.last().state};
    last.marginal = {1.0};
  }
  // Triples here: (state at t, local index into slice t+1, joint probability).
  TripleBuffer<uint32_t> btriples;
  for (size_t k = num_tics - 1; k >= 1; --k) {
    const PosteriorModel::Slice& next = slices[k];
    const ReverseSlice& r = reverse[k];
    btriples.Clear();
    for (uint32_t i = 0; i < next.support.size(); ++i) {
      const StateId si = next.support[i];
      const double pi = next.marginal[i];
      auto it = std::lower_bound(r.states.begin(), r.states.end(), si);
      UST_CHECK(it != r.states.end() && *it == si);
      const auto row = static_cast<size_t>(it - r.states.begin());
      for (uint32_t e = r.row_offsets[row]; e < r.row_offsets[row + 1]; ++e) {
        btriples.Push(r.members[e], i, r.probs[e] * pi);
      }
    }
    PosteriorModel::Slice& slice = slices[k - 1];
    GroupNormalize(btriples.keys, btriples.members, btriples.values, &ws,
                   &slice.support, &sums, &slice.row_offsets, &slice.targets,
                   &slice.tprobs);
    UST_CHECK(!slice.support.empty());
    double total = 0.0;
    for (double s : sums) total += s;
    slice.marginal.reserve(sums.size());
    for (double s : sums) slice.marginal.push_back(s / total);
  }
  UST_DCHECK(slices.front().support.size() == 1 &&
             slices.front().support[0] == obs.first().state);
  ExtendWithApriori(model, t1, extra, &ws, &slices);
  return PosteriorModel(t0, std::move(slices));
}

Result<std::vector<SparseDist>> ForwardFilterMarginals(
    const TransitionMatrix& matrix, const ObservationSeq& obs) {
  const Tic t0 = obs.first_tic();
  const Tic t1 = obs.last_tic();
  const size_t num_tics = static_cast<size_t>(t1 - t0) + 1;
  std::vector<SparseDist> result;
  result.reserve(num_tics);
  PropagateWorkspace ws(matrix.num_states());
  SparseDist cur = SparseDist::Indicator(obs.first().state);
  result.push_back(cur);
  for (size_t k = 1; k < num_tics; ++k) {
    const Tic t = t0 + static_cast<Tic>(k);
    cur = matrix.Propagate(cur, &ws);
    cur.Normalize();
    if (const Observation* o = obs.At(t)) {
      if (cur.Prob(o->state) <= 0.0) {
        return Status::Contradiction(
            "observation at tic " + std::to_string(t) +
            " unreachable under forward filtering");
      }
      cur = SparseDist::Indicator(o->state);
    }
    result.push_back(cur);
  }
  return result;
}

std::vector<SparseDist> AprioriMarginals(const TransitionMatrix& matrix,
                                         const Observation& first,
                                         size_t num_tics) {
  std::vector<SparseDist> result;
  result.reserve(num_tics);
  PropagateWorkspace ws(matrix.num_states());
  SparseDist cur = SparseDist::Indicator(first.state);
  result.push_back(cur);
  for (size_t k = 1; k < num_tics; ++k) {
    cur = matrix.Propagate(cur, &ws);
    cur.Normalize();
    result.push_back(cur);
  }
  return result;
}

std::vector<SparseDist> UniformReachableMarginals(const PosteriorModel& model) {
  std::vector<SparseDist> result;
  result.reserve(model.num_slices());
  for (Tic t = model.first_tic(); t <= model.last_tic(); ++t) {
    result.push_back(SparseDist::Uniform(model.SliceAt(t).support));
  }
  return result;
}

}  // namespace ust
