#include "model/trajectory_database.h"

namespace ust {

ObjectId TrajectoryDatabase::AddObject(ObservationSeq observations,
                                       TransitionMatrixPtr matrix) {
  ObjectId id = static_cast<ObjectId>(objects_.size());
  objects_.emplace_back(id, std::move(observations), std::move(matrix));
  return id;
}

ObjectId TrajectoryDatabase::AddObject(ObservationSeq observations,
                                       TransitionMatrixPtr matrix,
                                       Tic end_tic) {
  ObjectId id = static_cast<ObjectId>(objects_.size());
  objects_.emplace_back(id, std::move(observations), std::move(matrix),
                        end_tic);
  return id;
}

std::vector<ObjectId> TrajectoryDatabase::AliveThroughout(Tic ts,
                                                          Tic te) const {
  std::vector<ObjectId> ids;
  for (const auto& o : objects_) {
    if (o.AliveThroughout(ts, te)) ids.push_back(o.id());
  }
  return ids;
}

std::vector<ObjectId> TrajectoryDatabase::AliveSometime(Tic ts, Tic te) const {
  std::vector<ObjectId> ids;
  for (const auto& o : objects_) {
    if (o.first_tic() <= te && o.last_tic() >= ts) ids.push_back(o.id());
  }
  return ids;
}

Status TrajectoryDatabase::EnsureAllPosteriors() const {
  for (const auto& o : objects_) {
    UST_RETURN_NOT_OK(o.EnsurePosterior());
  }
  return Status::OK();
}

void TrajectoryDatabase::InvalidatePosteriors() const {
  for (const auto& o : objects_) o.InvalidatePosterior();
}

}  // namespace ust
