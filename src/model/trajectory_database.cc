#include "model/trajectory_database.h"

#include "markov/propagate_workspace.h"
#include "util/thread_pool.h"

namespace ust {

ObjectId TrajectoryDatabase::AddObject(ObservationSeq observations,
                                       TransitionMatrixPtr matrix) {
  std::lock_guard<std::mutex> lock(mu_);
  ObjectId id = static_cast<ObjectId>(objects_.size());
  objects_.push_back(std::make_shared<UncertainObject>(
      id, std::move(observations), std::move(matrix)));
  ++version_;
  return id;
}

ObjectId TrajectoryDatabase::AddObject(ObservationSeq observations,
                                       TransitionMatrixPtr matrix,
                                       Tic end_tic) {
  std::lock_guard<std::mutex> lock(mu_);
  ObjectId id = static_cast<ObjectId>(objects_.size());
  objects_.push_back(std::make_shared<UncertainObject>(
      id, std::move(observations), std::move(matrix), end_tic));
  ++version_;
  return id;
}

Status TrajectoryDatabase::ExtendLifetime(ObjectId id, Tic end_tic) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= objects_.size()) {
    return Status::NotFound("ExtendLifetime: no object with id " +
                            std::to_string(id));
  }
  const UncertainObject& old = *objects_[id];
  if (end_tic < old.last_tic()) {
    return Status::InvalidArgument(
        "ExtendLifetime: lifetimes only extend (object ends at " +
        std::to_string(old.last_tic()) + ", requested " +
        std::to_string(end_tic) + ")");
  }
  if (end_tic == old.last_tic()) return Status::OK();  // no-op, no epoch bump
  // Copy-on-write: the fresh object starts with an empty posterior cache
  // (the posterior propagates up to last_tic, so the old one is stale for
  // this slot) while snapshots pinned to earlier epochs keep the old object.
  objects_[id] = std::make_shared<UncertainObject>(
      old.id(), old.observations(), old.matrix_ptr(), end_tic);
  ++version_;
  return Status::OK();
}

uint64_t TrajectoryDatabase::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return version_;
}

DbSnapshot TrajectoryDatabase::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (snapshot_table_ == nullptr || snapshot_version_ != version_) {
    snapshot_table_ =
        std::make_shared<const DbSnapshot::ObjectTable>(objects_);
    snapshot_version_ = version_;
  }
  return DbSnapshot(space_, snapshot_table_, version_);
}

std::vector<ObjectId> TrajectoryDatabase::AliveThroughout(Tic ts,
                                                          Tic te) const {
  std::vector<ObjectId> ids;
  for (const auto& o : objects_) {
    if (o->AliveThroughout(ts, te)) ids.push_back(o->id());
  }
  return ids;
}

std::vector<ObjectId> TrajectoryDatabase::AliveSometime(Tic ts, Tic te) const {
  std::vector<ObjectId> ids;
  for (const auto& o : objects_) {
    if (o->first_tic() <= te && o->last_tic() >= ts) ids.push_back(o->id());
  }
  return ids;
}

Status TrajectoryDatabase::EnsureAllPosteriors() const {
  return Snapshot().EnsureAllPosteriors(nullptr);
}

Status TrajectoryDatabase::EnsureAllPosteriors(ThreadPool* pool) const {
  // Via the snapshot of the current epoch: same objects, and the posterior
  // caches live on the shared objects, so the live database is warmed too.
  return Snapshot().EnsureAllPosteriors(pool);
}

void TrajectoryDatabase::InvalidatePosteriors() const {
  // Locked so the iteration cannot race a writer's push_back reallocation.
  // The per-object cache reset itself follows the caches' single-writer
  // contract: this is a timing-experiment API, not safe to interleave with
  // concurrent readers of the same objects (see header).
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& o : objects_) o->InvalidatePosterior();
}

DbSnapshot::DbSnapshot(const TrajectoryDatabase& db) : DbSnapshot(db.Snapshot()) {}

std::vector<ObjectId> DbSnapshot::AliveThroughout(Tic ts, Tic te) const {
  std::vector<ObjectId> ids;
  for (size_t i = 0; i < size(); ++i) {
    const UncertainObject& o = object(static_cast<ObjectId>(i));
    if (o.AliveThroughout(ts, te)) ids.push_back(o.id());
  }
  return ids;
}

std::vector<ObjectId> DbSnapshot::AliveSometime(Tic ts, Tic te) const {
  std::vector<ObjectId> ids;
  for (size_t i = 0; i < size(); ++i) {
    const UncertainObject& o = object(static_cast<ObjectId>(i));
    if (o.first_tic() <= te && o.last_tic() >= ts) ids.push_back(o.id());
  }
  return ids;
}

Status DbSnapshot::EnsureAllPosteriors(ThreadPool* pool) const {
  if (pool == nullptr || pool->num_threads() <= 1 || size() <= 1) {
    // One workspace threaded through every adaptation: the dense scatter
    // arrays are sized once for the whole TS phase.
    PropagateWorkspace ws(space_->size());
    for (size_t i = 0; i < size(); ++i) {
      UST_RETURN_NOT_OK(object(static_cast<ObjectId>(i)).EnsurePosterior(&ws));
    }
    return Status::OK();
  }
  // Per-object adaptations touch disjoint posterior caches, so they shard
  // cleanly; each worker owns one workspace for its share of the objects.
  std::vector<PropagateWorkspace> workspaces(pool->num_threads());
  std::vector<Status> statuses(size());
  pool->ParallelFor(size(), [&](size_t i, int worker) {
    statuses[i] =
        object(static_cast<ObjectId>(i)).EnsurePosterior(&workspaces[worker]);
  });
  for (const Status& s : statuses) {
    UST_RETURN_NOT_OK(s);
  }
  return Status::OK();
}

}  // namespace ust
