#include "model/trajectory_database.h"

#include <algorithm>

#include "index/ust_tree.h"
#include "markov/propagate_workspace.h"
#include "util/thread_pool.h"

namespace ust {

ObjectId TrajectoryDatabase::AddObject(ObservationSeq observations,
                                       TransitionMatrixPtr matrix) {
  std::lock_guard<std::mutex> lock(mu_);
  ObjectId id = static_cast<ObjectId>(objects_.size());
  objects_.push_back(std::make_shared<UncertainObject>(
      id, std::move(observations), std::move(matrix)));
  ++version_;
  change_log_.push_back({version_, id});
  return id;
}

ObjectId TrajectoryDatabase::AddObject(ObservationSeq observations,
                                       TransitionMatrixPtr matrix,
                                       Tic end_tic) {
  std::lock_guard<std::mutex> lock(mu_);
  ObjectId id = static_cast<ObjectId>(objects_.size());
  objects_.push_back(std::make_shared<UncertainObject>(
      id, std::move(observations), std::move(matrix), end_tic));
  ++version_;
  change_log_.push_back({version_, id});
  return id;
}

Status TrajectoryDatabase::ExtendLifetime(ObjectId id, Tic end_tic) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= objects_.size()) {
    return Status::NotFound("ExtendLifetime: no object with id " +
                            std::to_string(id));
  }
  const UncertainObject& old = *objects_[id];
  if (end_tic < old.last_tic()) {
    return Status::InvalidArgument(
        "ExtendLifetime: lifetimes only extend (object ends at " +
        std::to_string(old.last_tic()) + ", requested " +
        std::to_string(end_tic) + ")");
  }
  if (end_tic == old.last_tic()) return Status::OK();  // no-op, no epoch bump
  // Copy-on-write: the fresh object starts with an empty posterior cache
  // (the posterior propagates up to last_tic, so the old one is stale for
  // this slot) while snapshots pinned to earlier epochs keep the old object.
  objects_[id] = std::make_shared<UncertainObject>(
      old.id(), old.observations(), old.matrix_ptr(), end_tic);
  ++version_;
  change_log_.push_back({version_, id});
  return Status::OK();
}

uint64_t TrajectoryDatabase::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return version_;
}

DbSnapshot TrajectoryDatabase::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (snapshot_table_ == nullptr || snapshot_version_ != version_) {
    snapshot_table_ =
        std::make_shared<const DbSnapshot::ObjectTable>(objects_);
    snapshot_changes_ =
        std::make_shared<const DbSnapshot::ChangeLog>(change_log_);
    snapshot_version_ = version_;
  }
  return DbSnapshot(space_, snapshot_table_, version_, snapshot_changes_,
                    base_index_, delta_floor_);
}

void TrajectoryDatabase::PublishIndex(
    std::shared_ptr<const UstTree> base) const {
  if (base == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t built = base->built_version();
  if (base_index_ != nullptr && built <= base_index_->built_version()) return;
  base_index_ = std::move(base);
  delta_floor_ = built;
  change_log_.erase(
      std::remove_if(change_log_.begin(), change_log_.end(),
                     [built](const DbChange& c) { return c.epoch <= built; }),
      change_log_.end());
  // Publication does not bump the epoch, so refresh the cached snapshot log
  // here: the next Snapshot() at this same version must see the trimmed log
  // (and the new base) rather than the pre-publication cache.
  if (snapshot_version_ == version_ && snapshot_table_ != nullptr) {
    snapshot_changes_ =
        std::make_shared<const DbSnapshot::ChangeLog>(change_log_);
  }
}

std::vector<ObjectId> TrajectoryDatabase::AliveThroughout(Tic ts,
                                                          Tic te) const {
  std::vector<ObjectId> ids;
  for (const auto& o : objects_) {
    if (o->AliveThroughout(ts, te)) ids.push_back(o->id());
  }
  return ids;
}

std::vector<ObjectId> TrajectoryDatabase::AliveSometime(Tic ts, Tic te) const {
  std::vector<ObjectId> ids;
  for (const auto& o : objects_) {
    if (o->first_tic() <= te && o->last_tic() >= ts) ids.push_back(o->id());
  }
  return ids;
}

Status TrajectoryDatabase::EnsureAllPosteriors() const {
  return Snapshot().EnsureAllPosteriors(nullptr);
}

Status TrajectoryDatabase::EnsureAllPosteriors(ThreadPool* pool) const {
  // Via the snapshot of the current epoch: same objects, and the posterior
  // caches live on the shared objects, so the live database is warmed too.
  return Snapshot().EnsureAllPosteriors(pool);
}

void TrajectoryDatabase::InvalidatePosteriors() const {
  // Locked so the iteration cannot race a writer's push_back reallocation.
  // The per-object cache reset itself follows the caches' single-writer
  // contract: this is a timing-experiment API, not safe to interleave with
  // concurrent readers of the same objects (see header).
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& o : objects_) o->InvalidatePosterior();
}

DbSnapshot::DbSnapshot(const TrajectoryDatabase& db) : DbSnapshot(db.Snapshot()) {}

std::vector<ObjectId> DbSnapshot::ChangedSince(uint64_t base_version) const {
  UST_DCHECK(base_version >= delta_floor_);
  std::vector<ObjectId> ids;
  if (changes_ != nullptr) {
    for (const DbChange& c : *changes_) {
      if (c.epoch > base_version) ids.push_back(c.id);
    }
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

size_t DbSnapshot::DeltaDepth(uint64_t base_version) const {
  if (base_version < delta_floor_) return size();
  return ChangedSince(base_version).size();
}

DbSnapshot DbSnapshot::WithoutIndex() const {
  return DbSnapshot(space_, objects_, version_);
}

std::vector<ObjectId> DbSnapshot::AliveThroughout(Tic ts, Tic te) const {
  std::vector<ObjectId> ids;
  for (size_t i = 0; i < size(); ++i) {
    const UncertainObject& o = object(static_cast<ObjectId>(i));
    if (o.AliveThroughout(ts, te)) ids.push_back(o.id());
  }
  return ids;
}

std::vector<ObjectId> DbSnapshot::AliveSometime(Tic ts, Tic te) const {
  std::vector<ObjectId> ids;
  for (size_t i = 0; i < size(); ++i) {
    const UncertainObject& o = object(static_cast<ObjectId>(i));
    if (o.first_tic() <= te && o.last_tic() >= ts) ids.push_back(o.id());
  }
  return ids;
}

Status DbSnapshot::EnsureAllPosteriors(ThreadPool* pool) const {
  if (pool == nullptr || pool->num_threads() <= 1 || size() <= 1) {
    // One workspace threaded through every adaptation: the dense scatter
    // arrays are sized once for the whole TS phase.
    PropagateWorkspace ws(space_->size());
    for (size_t i = 0; i < size(); ++i) {
      UST_RETURN_NOT_OK(object(static_cast<ObjectId>(i)).EnsurePosterior(&ws));
    }
    return Status::OK();
  }
  // Per-object adaptations touch disjoint posterior caches, so they shard
  // cleanly; each worker owns one workspace for its share of the objects.
  std::vector<PropagateWorkspace> workspaces(pool->num_threads());
  std::vector<Status> statuses(size());
  pool->ParallelFor(size(), [&](size_t i, int worker) {
    statuses[i] =
        object(static_cast<ObjectId>(i)).EnsurePosterior(&workspaces[worker]);
  });
  for (const Status& s : statuses) {
    UST_RETURN_NOT_OK(s);
  }
  return Status::OK();
}

}  // namespace ust
