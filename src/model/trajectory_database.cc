#include "model/trajectory_database.h"

#include "markov/propagate_workspace.h"
#include "util/thread_pool.h"

namespace ust {

ObjectId TrajectoryDatabase::AddObject(ObservationSeq observations,
                                       TransitionMatrixPtr matrix) {
  ObjectId id = static_cast<ObjectId>(objects_.size());
  objects_.emplace_back(id, std::move(observations), std::move(matrix));
  return id;
}

ObjectId TrajectoryDatabase::AddObject(ObservationSeq observations,
                                       TransitionMatrixPtr matrix,
                                       Tic end_tic) {
  ObjectId id = static_cast<ObjectId>(objects_.size());
  objects_.emplace_back(id, std::move(observations), std::move(matrix),
                        end_tic);
  return id;
}

std::vector<ObjectId> TrajectoryDatabase::AliveThroughout(Tic ts,
                                                          Tic te) const {
  std::vector<ObjectId> ids;
  for (const auto& o : objects_) {
    if (o.AliveThroughout(ts, te)) ids.push_back(o.id());
  }
  return ids;
}

std::vector<ObjectId> TrajectoryDatabase::AliveSometime(Tic ts, Tic te) const {
  std::vector<ObjectId> ids;
  for (const auto& o : objects_) {
    if (o.first_tic() <= te && o.last_tic() >= ts) ids.push_back(o.id());
  }
  return ids;
}

Status TrajectoryDatabase::EnsureAllPosteriors() const {
  return EnsureAllPosteriors(nullptr);
}

Status TrajectoryDatabase::EnsureAllPosteriors(ThreadPool* pool) const {
  if (pool == nullptr || pool->num_threads() <= 1 || objects_.size() <= 1) {
    // One workspace threaded through every adaptation: the dense scatter
    // arrays are sized once for the whole TS phase.
    PropagateWorkspace ws(space_->size());
    for (const auto& o : objects_) {
      UST_RETURN_NOT_OK(o.EnsurePosterior(&ws));
    }
    return Status::OK();
  }
  // Per-object adaptations touch disjoint posterior caches, so they shard
  // cleanly; each worker owns one workspace for its share of the objects.
  std::vector<PropagateWorkspace> workspaces(pool->num_threads());
  std::vector<Status> statuses(objects_.size());
  pool->ParallelFor(objects_.size(), [&](size_t i, int worker) {
    statuses[i] = objects_[i].EnsurePosterior(&workspaces[worker]);
  });
  for (const Status& s : statuses) {
    UST_RETURN_NOT_OK(s);
  }
  return Status::OK();
}

void TrajectoryDatabase::InvalidatePosteriors() const {
  for (const auto& o : objects_) o.InvalidatePosterior();
}

}  // namespace ust
