#include "model/samplers.h"

#include "util/check.h"

namespace ust {

StateId SampleTransition(const TransitionMatrix& matrix, StateId from,
                         Rng& rng) {
  const auto* lo = matrix.begin(from);
  const auto* hi = matrix.end(from);
  UST_DCHECK(lo != hi);
  double u = rng.Uniform();
  double acc = 0.0;
  for (const auto* e = lo; e != hi; ++e) {
    acc += e->second;
    if (u < acc) return e->first;
  }
  return (hi - 1)->first;
}

Trajectory PosteriorSampler::Sample(Rng& rng) {
  ++stats_.attempts;
  ++stats_.accepted;
  return model_->SampleTrajectory(rng);
}

Result<Trajectory> NaiveRejectionSampler::Sample(Rng& rng) {
  const Tic t0 = obs_->first_tic();
  const Tic t1 = obs_->last_tic();
  const size_t num_tics = static_cast<size_t>(t1 - t0) + 1;
  for (uint64_t attempt = 0; attempt < max_attempts_; ++attempt) {
    ++stats_.attempts;
    Trajectory traj;
    traj.start = t0;
    traj.states.reserve(num_tics);
    traj.states.push_back(obs_->first().state);
    bool valid = true;
    StateId cur = obs_->first().state;
    for (Tic t = t0 + 1; t <= t1; ++t) {
      cur = SampleTransition(*matrix_, cur, rng);
      if (const Observation* o = obs_->At(t); o != nullptr && o->state != cur) {
        valid = false;
        break;
      }
      traj.states.push_back(cur);
    }
    if (valid) {
      ++stats_.accepted;
      return traj;
    }
  }
  return Status::ResourceLimit("TS1 exceeded max attempts");
}

Result<Trajectory> SegmentRejectionSampler::Sample(Rng& rng) {
  const auto& items = obs_->items();
  Trajectory traj;
  traj.start = obs_->first_tic();
  traj.states.push_back(items[0].state);
  std::vector<StateId> segment;
  for (size_t i = 0; i + 1 < items.size(); ++i) {
    const Observation& from = items[i];
    const Observation& to = items[i + 1];
    const size_t steps = static_cast<size_t>(to.time - from.time);
    bool matched = false;
    for (uint64_t attempt = 0; attempt < max_attempts_per_segment_;
         ++attempt) {
      ++stats_.attempts;
      segment.clear();
      StateId cur = from.state;
      for (size_t s = 0; s < steps; ++s) {
        cur = SampleTransition(*matrix_, cur, rng);
        segment.push_back(cur);
      }
      if (cur == to.state) {
        matched = true;
        break;
      }
    }
    if (!matched) {
      return Status::ResourceLimit("TS2 exceeded max attempts in segment");
    }
    traj.states.insert(traj.states.end(), segment.begin(), segment.end());
  }
  ++stats_.accepted;
  return traj;
}

}  // namespace ust
