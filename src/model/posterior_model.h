// The a-posteriori motion model produced by the forward-backward adaptation
// (Algorithm 2 of the paper): per-tic sparse transition matrices
// F^o(t)_ij = P(o(t+1) = s_j | o(t) = s_i, Θ^o) together with the posterior
// marginals P(o(t) = s_i | Θ^o). Sampling from this model yields trajectories
// that are consistent with *all* observations in a single attempt.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "markov/sparse_dist.h"
#include "state/state_space.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/status.h"

namespace ust {

/// \brief A certain trajectory: one state per tic starting at `start`.
struct Trajectory {
  Tic start = 0;
  std::vector<StateId> states;

  Tic end() const { return start + static_cast<Tic>(states.size()) - 1; }
  bool Covers(Tic t) const { return t >= start && t <= end(); }
  StateId At(Tic t) const { return states[static_cast<size_t>(t - start)]; }
};

/// \brief Posterior model over the object's alive span [first_tic, last_tic].
///
/// Internal layout: one Slice per tic. Slice `k` (tic = first_tic + k) holds
/// the sorted posterior support, the aligned marginal probabilities, and CSR
/// rows of transition probabilities into slice k+1 (targets are *indices into
/// the next slice's support*, which makes sampling a pair of array lookups).
/// Transition rows are stored structure-of-arrays (`targets` / `tprobs`) so
/// probability-only passes stream over contiguous doubles.
class PosteriorModel {
 public:
  /// \brief Per-tic slice of the adapted model.
  struct Slice {
    std::vector<StateId> support;       ///< sorted posterior support
    std::vector<double> marginal;       ///< aligned with support
    std::vector<uint32_t> row_offsets;  ///< size support.size()+1; empty in last slice
    std::vector<uint32_t> targets;      ///< CSR next-slice indices
    std::vector<double> tprobs;         ///< CSR probabilities, aligned with targets
  };

  PosteriorModel() = default;
  PosteriorModel(Tic first_tic, std::vector<Slice> slices)
      : first_tic_(first_tic), slices_(std::move(slices)) {}

  Tic first_tic() const { return first_tic_; }
  Tic last_tic() const {
    return first_tic_ + static_cast<Tic>(slices_.size()) - 1;
  }
  bool AliveAt(Tic t) const { return t >= first_tic() && t <= last_tic(); }
  bool CoversWindow(Tic ts, Tic te) const {
    return ts <= te && AliveAt(ts) && AliveAt(te);
  }

  size_t num_slices() const { return slices_.size(); }
  const Slice& SliceAt(Tic t) const {
    return slices_[static_cast<size_t>(t - first_tic_)];
  }

  /// Posterior marginal P(o(t) = · | Θ) as a sparse distribution.
  SparseDist MarginalAt(Tic t) const;

  /// Posterior transition probability P(o(t+1)=to | o(t)=from, Θ).
  double TransitionProb(Tic t, StateId from, StateId to) const;

  /// Draw a state from the posterior marginal at `t`.
  StateId SampleAt(Tic t, Rng& rng) const;

  /// Draw a full trajectory over the alive span; hits every observation by
  /// construction and needs exactly one attempt.
  Trajectory SampleTrajectory(Rng& rng) const;

  /// Draw a trajectory restricted to [ts, te] ⊆ alive span: the state at `ts`
  /// comes from the posterior marginal, the rest from the adapted chain.
  /// (Valid because the adapted process is Markov given all observations.)
  Result<Trajectory> SampleWindow(Tic ts, Tic te, Rng& rng) const;

  /// Allocation-free variant for the Monte-Carlo hot loop: the window must
  /// satisfy CoversWindow(ts, te) (validate once, then draw thousands of
  /// worlds); `out->states` is reused across calls.
  void SampleWindowInto(Tic ts, Tic te, Rng& rng, Trajectory* out) const;

  /// Batch sampling: visits every state of `count` independent windows
  /// without materializing them. `visit(w, r, local, state)` is called once
  /// per world w in [0, count) and tic offset r in [0, te - ts] — in
  /// unspecified order — where `local` indexes SliceAt(ts + r).support and
  /// `state` is the sampled state id. The visitor is inlined into the walk,
  /// so per-sample post-processing (distance lookup, aggregation) costs no
  /// extra pass, and the walks are interleaved in groups so their (serial)
  /// table-lookup chains overlap. Same window contract as SampleWindowInto.
  template <typename Visitor>
  void SampleWindowBatchVisit(Tic ts, Tic te, size_t count, Rng& rng,
                              Visitor&& visit) const {
    BatchWalk(ts, te, count, rng, visit);
  }

  /// Build the O(1) alias samplers (Walker/Vose) for every slice. Called
  /// lazily by the sampling entry points; call it eagerly before sharing the
  /// model across threads (same single-writer contract as the posterior
  /// cache in UncertainObject).
  void EnsureSamplers() const;

  /// Total number of (state, tic) pairs with nonzero posterior probability.
  size_t TotalSupportSize() const;

  /// Largest per-tic support (the widest point of the diamonds).
  size_t MaxSupportSize() const;

 private:
  // Fused alias slots: everything one sampling step reads lives in one
  // 16-byte record, flattened across all slices of the model, so a step is
  // one 64-bit draw plus one or two dependent loads (cf. the AoS-vs-SoA
  // discussion in DESIGN.md — the *walk* is latency-bound, so the sampler
  // interleaves, while the math-facing Slice stays SoA).

  /// One transition slot: alias threshold plus the precomputed successor
  /// (`local` / `state` describe the successor in the *next* slice).
  /// 16 bytes so two slots share a cache line and none straddles one. The
  /// acceptance threshold is quantized to 32 bits (granularity 2^-32, far
  /// below Monte-Carlo noise; thresholds are per-slot quantities, not
  /// normalized probabilities, so no mass is lost) — one 64-bit draw serves
  /// both the slot pick (high bits, Lemire reduction) and the
  /// accept-or-alias test (low bits), keeping the sampling chain free of
  /// int/float conversions.
  struct FusedSlot {
    uint32_t thresh;  ///< accept iff low 32 draw bits < thresh
    uint32_t alias;   ///< absolute index into flat_slots_ on rejection
    uint32_t local;   ///< successor's index in the next slice's support
    StateId state;    ///< successor's state id (next support resolved)
  };
  static_assert(sizeof(FusedSlot) == 16, "keep slots cache-line friendly");

  /// One marginal slot: alias threshold plus the resolved support entry.
  struct MarginalSlot {
    uint32_t thresh;  ///< accept iff low 32 draw bits < thresh
    uint32_t alias;   ///< absolute index into flat_marginal_ on rejection
    uint32_t local;   ///< index within the slice support
    StateId state;    ///< support[local]
  };
  static_assert(sizeof(MarginalSlot) == 16, "keep slots cache-line friendly");

  /// Quantize a [0, 1] alias threshold to 32 bits. Slots with p == 1 come
  /// out of Vose's leftover stacks with alias == self, so the (one in 2^32)
  /// spurious rejection aliases back to the same slot.
  static uint32_t QuantizeThreshold(double p) {
    const double scaled = p * 4294967296.0;  // 2^32
    return scaled >= 4294967295.0 ? 4294967295u
                                  : static_cast<uint32_t>(scaled);
  }

  /// Shared core of the batch samplers: advances groups of independent
  /// walks so their (serial) table-lookup chains overlap, calling
  /// `visit(w, rel, local, state)` per sampled state.
  /// Every window gets its own forked RNG (one parent draw per window, in
  /// world order), so the sampled worlds are identical no matter how the
  /// walks are grouped, chunked, or interleaved — batch-of-N and N calls of
  /// SampleWindowInto consume the parent stream identically.
  template <typename Visitor>
  void BatchWalk(Tic ts, Tic te, size_t count, Rng& rng,
                 Visitor&& visit) const {
    UST_DCHECK(CoversWindow(ts, te));
    EnsureSamplers();
    const size_t k0 = static_cast<size_t>(ts - first_tic_);
    constexpr size_t kGroup = 32;  // independent walks in flight
    uint32_t local[kGroup];
    Rng wrng[kGroup];
    for (size_t w0 = 0; w0 < count; w0 += kGroup) {
      const size_t g = std::min(kGroup, count - w0);
      for (size_t w = 0; w < g; ++w) {
        wrng[w] = rng.Fork();
        const MarginalSlot& s = SampleMarginalSlot(k0, wrng[w]);
        local[w] = s.local;
        visit(w0 + w, size_t{0}, s.local, s.state);
      }
      size_t k = k0;
      for (Tic t = ts; t < te; ++t, ++k) {
        const uint32_t* offs = flat_row_offsets_.data() + row_base_[k];
        const FusedSlot* slots = flat_slots_.data();
        const size_t rel = static_cast<size_t>(t - ts) + 1;
        for (size_t w = 0; w < g; ++w) {
          const uint32_t lo = offs[local[w]];
          const uint32_t len = offs[local[w] + 1] - lo;
          const uint64_t x = wrng[w]();
          const uint32_t j = static_cast<uint32_t>(((x >> 32) * len) >> 32);
          const FusedSlot* s = slots + lo + j;
          if (static_cast<uint32_t>(x) >= s->thresh) s = slots + s->alias;
          local[w] = s->local;
          visit(w0 + w, rel, s->local, s->state);
        }
      }
    }
  }

  /// Draw from the marginal of slice `k`; returns the chosen slot.
  const MarginalSlot& SampleMarginalSlot(size_t k, Rng& rng) const {
    const MarginalSlot* base = flat_marginal_.data() + marg_base_[k];
    const uint32_t n = static_cast<uint32_t>(slices_[k].support.size());
    const uint64_t x = rng();
    const uint32_t j = static_cast<uint32_t>(((x >> 32) * n) >> 32);
    const MarginalSlot* s = base + j;
    if (static_cast<uint32_t>(x) >= s->thresh) {
      s = flat_marginal_.data() + s->alias;
    }
    return *s;
  }

  /// Draw a successor slot of `local` within slice `k`.
  const FusedSlot& SampleSuccessorSlot(size_t k, uint32_t local,
                                       Rng& rng) const {
    const uint32_t* offs = flat_row_offsets_.data() + row_base_[k];
    const uint32_t lo = offs[local];
    const uint32_t len = offs[local + 1] - lo;
    const uint64_t x = rng();
    const uint32_t j = static_cast<uint32_t>(((x >> 32) * len) >> 32);
    const FusedSlot* s = flat_slots_.data() + lo + j;
    if (static_cast<uint32_t>(x) >= s->thresh) {
      s = flat_slots_.data() + s->alias;
    }
    return *s;
  }

  Tic first_tic_ = 0;
  std::vector<Slice> slices_;
  // Lazily built sampler arrays (EnsureSamplers); mutable like the posterior
  // cache in UncertainObject — single-writer, warm before sharing.
  mutable std::vector<FusedSlot> flat_slots_;        ///< all transition slots
  mutable std::vector<MarginalSlot> flat_marginal_;  ///< all marginal slots
  mutable std::vector<uint32_t> flat_row_offsets_;   ///< absolute CSR offsets
  mutable std::vector<uint32_t> row_base_;   ///< per slice: flat_row_offsets_ base
  mutable std::vector<uint32_t> marg_base_;  ///< per slice: flat_marginal_ base
  mutable bool samplers_built_ = false;
};

}  // namespace ust
