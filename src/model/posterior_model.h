// The a-posteriori motion model produced by the forward-backward adaptation
// (Algorithm 2 of the paper): per-tic sparse transition matrices
// F^o(t)_ij = P(o(t+1) = s_j | o(t) = s_i, Θ^o) together with the posterior
// marginals P(o(t) = s_i | Θ^o). Sampling from this model yields trajectories
// that are consistent with *all* observations in a single attempt.
#pragma once

#include <cstdint>
#include <vector>

#include "markov/sparse_dist.h"
#include "state/state_space.h"
#include "util/rng.h"
#include "util/status.h"

namespace ust {

/// \brief A certain trajectory: one state per tic starting at `start`.
struct Trajectory {
  Tic start = 0;
  std::vector<StateId> states;

  Tic end() const { return start + static_cast<Tic>(states.size()) - 1; }
  bool Covers(Tic t) const { return t >= start && t <= end(); }
  StateId At(Tic t) const { return states[static_cast<size_t>(t - start)]; }
};

/// \brief Posterior model over the object's alive span [first_tic, last_tic].
///
/// Internal layout: one Slice per tic. Slice `k` (tic = first_tic + k) holds
/// the sorted posterior support, the aligned marginal probabilities, and CSR
/// rows of transition probabilities into slice k+1 (targets are *indices into
/// the next slice's support*, which makes sampling a pair of array lookups).
class PosteriorModel {
 public:
  /// \brief Per-tic slice of the adapted model.
  struct Slice {
    std::vector<StateId> support;            ///< sorted posterior support
    std::vector<double> marginal;            ///< aligned with support
    std::vector<uint32_t> row_offsets;       ///< size support.size()+1; empty in last slice
    std::vector<std::pair<uint32_t, double>> transitions;  ///< (next-slice index, prob)
  };

  PosteriorModel() = default;
  PosteriorModel(Tic first_tic, std::vector<Slice> slices)
      : first_tic_(first_tic), slices_(std::move(slices)) {}

  Tic first_tic() const { return first_tic_; }
  Tic last_tic() const {
    return first_tic_ + static_cast<Tic>(slices_.size()) - 1;
  }
  bool AliveAt(Tic t) const { return t >= first_tic() && t <= last_tic(); }
  bool CoversWindow(Tic ts, Tic te) const {
    return ts <= te && AliveAt(ts) && AliveAt(te);
  }

  size_t num_slices() const { return slices_.size(); }
  const Slice& SliceAt(Tic t) const {
    return slices_[static_cast<size_t>(t - first_tic_)];
  }

  /// Posterior marginal P(o(t) = · | Θ) as a sparse distribution.
  SparseDist MarginalAt(Tic t) const;

  /// Posterior transition probability P(o(t+1)=to | o(t)=from, Θ).
  double TransitionProb(Tic t, StateId from, StateId to) const;

  /// Draw a state from the posterior marginal at `t`.
  StateId SampleAt(Tic t, Rng& rng) const;

  /// Draw a full trajectory over the alive span; hits every observation by
  /// construction and needs exactly one attempt.
  Trajectory SampleTrajectory(Rng& rng) const;

  /// Draw a trajectory restricted to [ts, te] ⊆ alive span: the state at `ts`
  /// comes from the posterior marginal, the rest from the adapted chain.
  /// (Valid because the adapted process is Markov given all observations.)
  Result<Trajectory> SampleWindow(Tic ts, Tic te, Rng& rng) const;

  /// Total number of (state, tic) pairs with nonzero posterior probability.
  size_t TotalSupportSize() const;

  /// Largest per-tic support (the widest point of the diamonds).
  size_t MaxSupportSize() const;

 private:
  /// Index into slice-at-t support of a sampled successor of `local` state.
  uint32_t SampleSuccessor(const Slice& slice, uint32_t local, Rng& rng) const;

  Tic first_tic_ = 0;
  std::vector<Slice> slices_;
};

}  // namespace ust
