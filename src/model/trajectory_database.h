// The uncertain trajectory database D (Section 3.1): a state space plus a
// collection of uncertain objects.
#pragma once

#include <memory>
#include <vector>

#include "model/uncertain_object.h"
#include "state/state_space.h"
#include "util/status.h"

namespace ust {

class ThreadPool;

/// \brief Database of uncertain moving objects over a shared state space.
class TrajectoryDatabase {
 public:
  explicit TrajectoryDatabase(std::shared_ptr<const StateSpace> space)
      : space_(std::move(space)) {}

  const StateSpace& space() const { return *space_; }
  std::shared_ptr<const StateSpace> space_ptr() const { return space_; }

  /// Add an object; returns its id. Observations must be valid for `matrix`.
  /// `end_tic` optionally extends the lifetime past the last observation.
  ObjectId AddObject(ObservationSeq observations, TransitionMatrixPtr matrix);
  ObjectId AddObject(ObservationSeq observations, TransitionMatrixPtr matrix,
                     Tic end_tic);

  size_t size() const { return objects_.size(); }
  bool empty() const { return objects_.empty(); }
  const UncertainObject& object(ObjectId id) const { return objects_[id]; }
  const std::vector<UncertainObject>& objects() const { return objects_; }

  /// Ids of objects alive at every tic of [ts, te].
  std::vector<ObjectId> AliveThroughout(Tic ts, Tic te) const;

  /// Ids of objects alive at at least one tic of [ts, te].
  std::vector<ObjectId> AliveSometime(Tic ts, Tic te) const;

  /// Build every object's posterior model (the "TS" phase of the paper's
  /// experiments), threading one PropagateWorkspace through all adaptations
  /// (serial) or one per worker (with a `pool`). Per-object adaptations are
  /// independent, so the parallel result is identical to serial; the
  /// reported status is the first failure in object order regardless of
  /// schedule. Returns OK only when every posterior built.
  Status EnsureAllPosteriors() const;
  Status EnsureAllPosteriors(ThreadPool* pool) const;

  /// Drop all cached posteriors (for timing experiments).
  void InvalidatePosteriors() const;

 private:
  std::shared_ptr<const StateSpace> space_;
  std::vector<UncertainObject> objects_;
};

}  // namespace ust
