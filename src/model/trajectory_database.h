// The uncertain trajectory database D (Section 3.1): a state space plus a
// collection of uncertain objects — now with epoch-based snapshot semantics
// (DESIGN.md section 5). Every write (AddObject, ExtendLifetime) bumps a
// version counter under a writer mutex; Snapshot() captures the current
// object table as an immutable DbSnapshot, so in-flight queries keep reading
// the epoch they admitted against while writers keep appending.
//
// Concurrency contract: writes and Snapshot() may be called from any thread.
// The direct read accessors (size, object, Alive*, EnsureAllPosteriors) see
// the live epoch and are NOT synchronized against concurrent writers — a
// reader that coexists with writers must pin a DbSnapshot instead.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "model/db_snapshot.h"
#include "model/uncertain_object.h"
#include "state/state_space.h"
#include "util/check.h"
#include "util/status.h"

namespace ust {

class ThreadPool;

/// \brief Database of uncertain moving objects over a shared state space.
class TrajectoryDatabase {
 public:
  explicit TrajectoryDatabase(std::shared_ptr<const StateSpace> space)
      : space_(std::move(space)) {}

  /// Movable (for Result/factory returns); must not race with any other use
  /// of `other`. Not copyable: a copy would fork the epoch history — take a
  /// Snapshot() instead.
  TrajectoryDatabase(TrajectoryDatabase&& other) noexcept
      : space_(std::move(other.space_)), objects_(std::move(other.objects_)),
        version_(other.version_), change_log_(std::move(other.change_log_)),
        base_index_(std::move(other.base_index_)),
        delta_floor_(other.delta_floor_),
        snapshot_table_(std::move(other.snapshot_table_)),
        snapshot_changes_(std::move(other.snapshot_changes_)),
        snapshot_version_(other.snapshot_version_) {}
  TrajectoryDatabase(const TrajectoryDatabase&) = delete;
  TrajectoryDatabase& operator=(const TrajectoryDatabase&) = delete;

  const StateSpace& space() const { return *space_; }
  std::shared_ptr<const StateSpace> space_ptr() const { return space_; }

  /// Add an object; returns its id. Observations must be valid for `matrix`.
  /// `end_tic` optionally extends the lifetime past the last observation.
  /// Bumps the epoch; snapshots taken earlier do not see the new object.
  ObjectId AddObject(ObservationSeq observations, TransitionMatrixPtr matrix);
  ObjectId AddObject(ObservationSeq observations, TransitionMatrixPtr matrix,
                     Tic end_tic);

  /// Extend object `id`'s lifetime to `end_tic` (>= its current last tic).
  /// Copy-on-write: the slot is replaced with a fresh object (the posterior
  /// depends on the lifetime, so its cache must drop), while snapshots taken
  /// earlier keep the old object — and its warmed posterior — untouched.
  /// Bumps the epoch unless the call is a no-op.
  Status ExtendLifetime(ObjectId id, Tic end_tic);

  /// Current epoch. 0 for an empty database; bumped by every write.
  uint64_t version() const;

  /// Immutable view of the current epoch. O(n) on the first call per epoch
  /// (the table is copied once and cached), O(1) afterwards. Thread-safe.
  DbSnapshot Snapshot() const;

  size_t size() const { return objects_.size(); }
  bool empty() const { return objects_.empty(); }

  /// Object by id; ids in [0, size()) (debug bounds-checked — ids obtained
  /// before an online insert can race past a stale bound otherwise).
  const UncertainObject& object(ObjectId id) const {
    UST_DCHECK(id < objects_.size());
    return *objects_[id];
  }

  /// Ids of objects alive at every tic of [ts, te].
  std::vector<ObjectId> AliveThroughout(Tic ts, Tic te) const;

  /// Ids of objects alive at at least one tic of [ts, te].
  std::vector<ObjectId> AliveSometime(Tic ts, Tic te) const;

  /// Build every object's posterior model (the "TS" phase of the paper's
  /// experiments), threading one PropagateWorkspace through all adaptations
  /// (serial) or one per worker (with a `pool`). Per-object adaptations are
  /// independent, so the parallel result is identical to serial; the
  /// reported status is the first failure in object order regardless of
  /// schedule. Returns OK only when every posterior built.
  Status EnsureAllPosteriors() const;
  Status EnsureAllPosteriors(ThreadPool* pool) const;

  /// Drop all cached posteriors (for timing experiments). Does not bump the
  /// epoch: posteriors are caches, not state — results never depend on them.
  /// Safe against concurrent writers, but must not interleave with readers
  /// resolving posteriors on this database's objects (or its snapshots).
  void InvalidatePosteriors() const;

  /// Publish `base` as the compacted base index for this database. Does NOT
  /// bump the epoch — the index is a cache, never state: queries at any epoch
  /// return the same bits with or without it. Trims change-log entries at or
  /// below base->built_version() (the new tree already covers those writes)
  /// and raises delta_floor() accordingly. A base older than the currently
  /// published one is ignored (concurrent compactors may finish out of
  /// order). Thread-safe; const because it only touches cache state.
  void PublishIndex(std::shared_ptr<const UstTree> base) const;

 private:
  std::shared_ptr<const StateSpace> space_;
  /// Live object table. Slots are shared with snapshots; a slot's pointee is
  /// never mutated after publication (ExtendLifetime swaps the pointer).
  std::vector<std::shared_ptr<const UncertainObject>> objects_;
  uint64_t version_ = 0;
  /// Write log since delta_floor_: one {epoch, id} record per write, appended
  /// under mu_ and trimmed by PublishIndex (mutable for that reason: index
  /// publication is cache maintenance, not a database mutation).
  mutable std::vector<DbChange> change_log_;
  /// Latest compacted base tree, carried by snapshots for sessions to adopt.
  mutable std::shared_ptr<const UstTree> base_index_;
  mutable uint64_t delta_floor_ = 0;

  /// Serializes writers and guards the snapshot cache.
  mutable std::mutex mu_;
  mutable std::shared_ptr<const DbSnapshot::ObjectTable> snapshot_table_;
  mutable std::shared_ptr<const DbSnapshot::ChangeLog> snapshot_changes_;
  mutable uint64_t snapshot_version_ = 0;
};

}  // namespace ust
