// An immutable epoch view over a TrajectoryDatabase (the storage half of the
// serving tier, DESIGN.md section 5): the object table as it existed when the
// snapshot was taken, pinned to that epoch's version counter. Writers keep
// appending to (and copy-on-write replacing in) the live database; every
// reader that admitted against epoch k keeps seeing exactly epoch k.
//
// A snapshot is a small value (two shared_ptrs plus the version): copying one
// is O(1), and the object table it points at is never mutated, so reading a
// snapshot is safe concurrently with live *writers* (AddObject /
// ExtendLifetime never touch published objects).
//
// Caveat — reader-vs-reader: posterior and sampler caches are built lazily
// on the shared UncertainObjects (unsynchronized, single-writer contract),
// so warming an object once serves every snapshot that contains it, but two
// threads must not *cold-read* overlapping objects concurrently. Serialize
// warming (EnsureAllPosteriors / QuerySession::Prepare) per object set —
// the QueryServer dispatcher does exactly that by owning all session
// construction — after which any number of threads may read.
#pragma once

#include <memory>
#include <vector>

#include "model/uncertain_object.h"
#include "state/state_space.h"
#include "util/check.h"
#include "util/status.h"

namespace ust {

class ThreadPool;
class TrajectoryDatabase;
class UstTree;

/// \brief One entry of the database's write log: object `id` was written
/// (added, or lifetime-extended) by the write that produced epoch `epoch`.
/// The delta index layer (index/ust_delta.h) replays these against a base
/// UstTree built at an earlier epoch instead of dropping the index.
struct DbChange {
  uint64_t epoch;
  ObjectId id;
};

/// \brief Immutable view of one database epoch.
class DbSnapshot {
 public:
  /// The shared, frozen object table of one epoch.
  using ObjectTable = std::vector<std::shared_ptr<const UncertainObject>>;
  using ChangeLog = std::vector<DbChange>;

  DbSnapshot() = default;

  /// Snapshot the database's current epoch (same as db.Snapshot()). Implicit
  /// on purpose: every query-layer entry point takes a `const DbSnapshot&`,
  /// and a caller holding a live database means "the current epoch".
  DbSnapshot(const TrajectoryDatabase& db);  // NOLINT implicit

  DbSnapshot(std::shared_ptr<const StateSpace> space,
             std::shared_ptr<const ObjectTable> objects, uint64_t version)
      : space_(std::move(space)), objects_(std::move(objects)),
        version_(version) {}

  DbSnapshot(std::shared_ptr<const StateSpace> space,
             std::shared_ptr<const ObjectTable> objects, uint64_t version,
             std::shared_ptr<const ChangeLog> changes,
             std::shared_ptr<const UstTree> base_index, uint64_t delta_floor)
      : space_(std::move(space)), objects_(std::move(objects)),
        version_(version), changes_(std::move(changes)),
        base_index_(std::move(base_index)), delta_floor_(delta_floor) {}

  /// Epoch this view is pinned to (bumped by every database write).
  uint64_t version() const { return version_; }

  const StateSpace& space() const { return *space_; }
  std::shared_ptr<const StateSpace> space_ptr() const { return space_; }

  size_t size() const { return objects_ == nullptr ? 0 : objects_->size(); }
  bool empty() const { return size() == 0; }

  /// Object by id; ids in [0, size()) (debug bounds-checked).
  const UncertainObject& object(ObjectId id) const {
    UST_DCHECK(objects_ != nullptr && id < objects_->size());
    return *(*objects_)[id];
  }

  /// Ids of objects alive at every tic of [ts, te].
  std::vector<ObjectId> AliveThroughout(Tic ts, Tic te) const;

  /// Ids of objects alive at at least one tic of [ts, te].
  std::vector<ObjectId> AliveSometime(Tic ts, Tic te) const;

  /// Build every object's posterior model, serially (one workspace threaded
  /// through all adaptations) or sharded over `pool` (one workspace per
  /// worker; identical result, first failure in object order reported).
  Status EnsureAllPosteriors(ThreadPool* pool = nullptr) const;

  /// Latest compacted base UstTree published for this database, or nullptr if
  /// none was published yet. Its built_version() is <= version(); the gap is
  /// covered by ChangedSince(built_version()).
  const std::shared_ptr<const UstTree>& base_index() const {
    return base_index_;
  }

  /// Oldest base epoch the carried change log can still bridge from. Index
  /// publication trims log entries at or below the published tree's epoch, so
  /// a base older than this floor cannot be patched with a delta anymore.
  uint64_t delta_floor() const { return delta_floor_; }

  /// Ids of objects written (added or lifetime-extended) after epoch
  /// `base_version`, ascending and deduplicated. Requires
  /// base_version >= delta_floor() (debug-checked): older bases predate the
  /// retained change log.
  std::vector<ObjectId> ChangedSince(uint64_t base_version) const;

  /// Number of distinct objects a delta over `base_version` would carry.
  /// Returns size() when the base predates delta_floor() (everything would
  /// have to be treated as changed).
  size_t DeltaDepth(uint64_t base_version) const;

  /// Copy of this snapshot without the change log / published base index.
  /// UstTree::Build pins its input snapshot; stripping the index state there
  /// keeps a compacted tree from transitively pinning its predecessor.
  DbSnapshot WithoutIndex() const;

 private:
  std::shared_ptr<const StateSpace> space_;
  std::shared_ptr<const ObjectTable> objects_;
  uint64_t version_ = 0;
  std::shared_ptr<const ChangeLog> changes_;
  std::shared_ptr<const UstTree> base_index_;
  uint64_t delta_floor_ = 0;
};

}  // namespace ust
