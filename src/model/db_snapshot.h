// An immutable epoch view over a TrajectoryDatabase (the storage half of the
// serving tier, DESIGN.md section 5): the object table as it existed when the
// snapshot was taken, pinned to that epoch's version counter. Writers keep
// appending to (and copy-on-write replacing in) the live database; every
// reader that admitted against epoch k keeps seeing exactly epoch k.
//
// A snapshot is a small value (two shared_ptrs plus the version): copying one
// is O(1), and the object table it points at is never mutated, so reading a
// snapshot is safe concurrently with live *writers* (AddObject /
// ExtendLifetime never touch published objects).
//
// Caveat — reader-vs-reader: posterior and sampler caches are built lazily
// on the shared UncertainObjects (unsynchronized, single-writer contract),
// so warming an object once serves every snapshot that contains it, but two
// threads must not *cold-read* overlapping objects concurrently. Serialize
// warming (EnsureAllPosteriors / QuerySession::Prepare) per object set —
// the QueryServer dispatcher does exactly that by owning all session
// construction — after which any number of threads may read.
#pragma once

#include <memory>
#include <vector>

#include "model/uncertain_object.h"
#include "state/state_space.h"
#include "util/check.h"
#include "util/status.h"

namespace ust {

class ThreadPool;
class TrajectoryDatabase;

/// \brief Immutable view of one database epoch.
class DbSnapshot {
 public:
  /// The shared, frozen object table of one epoch.
  using ObjectTable = std::vector<std::shared_ptr<const UncertainObject>>;

  DbSnapshot() = default;

  /// Snapshot the database's current epoch (same as db.Snapshot()). Implicit
  /// on purpose: every query-layer entry point takes a `const DbSnapshot&`,
  /// and a caller holding a live database means "the current epoch".
  DbSnapshot(const TrajectoryDatabase& db);  // NOLINT implicit

  DbSnapshot(std::shared_ptr<const StateSpace> space,
             std::shared_ptr<const ObjectTable> objects, uint64_t version)
      : space_(std::move(space)), objects_(std::move(objects)),
        version_(version) {}

  /// Epoch this view is pinned to (bumped by every database write).
  uint64_t version() const { return version_; }

  const StateSpace& space() const { return *space_; }
  std::shared_ptr<const StateSpace> space_ptr() const { return space_; }

  size_t size() const { return objects_ == nullptr ? 0 : objects_->size(); }
  bool empty() const { return size() == 0; }

  /// Object by id; ids in [0, size()) (debug bounds-checked).
  const UncertainObject& object(ObjectId id) const {
    UST_DCHECK(objects_ != nullptr && id < objects_->size());
    return *(*objects_)[id];
  }

  /// Ids of objects alive at every tic of [ts, te].
  std::vector<ObjectId> AliveThroughout(Tic ts, Tic te) const;

  /// Ids of objects alive at at least one tic of [ts, te].
  std::vector<ObjectId> AliveSometime(Tic ts, Tic te) const;

  /// Build every object's posterior model, serially (one workspace threaded
  /// through all adaptations) or sharded over `pool` (one workspace per
  /// worker; identical result, first failure in object order reported).
  Status EnsureAllPosteriors(ThreadPool* pool = nullptr) const;

 private:
  std::shared_ptr<const StateSpace> space_;
  std::shared_ptr<const ObjectTable> objects_;
  uint64_t version_ = 0;
};

}  // namespace ust
