// Trajectory samplers (Section 5):
//  * PosteriorSampler  — draws from the adapted model F^o(t); every draw is a
//    valid trajectory (exactly one attempt per sample).
//  * NaiveRejectionSampler (TS1, Section 5.1) — forward simulation with the
//    a-priori chain; rejects any trajectory missing an observation. Expected
//    attempts grow exponentially in the number of observations.
//  * SegmentRejectionSampler (TS2) — rejection per observation segment; by
//    the Markov property the pieced-together trajectory has the correct
//    posterior law, with attempts linear in the number of observations.
#pragma once

#include <cstdint>

#include "markov/transition_matrix.h"
#include "model/observation.h"
#include "model/posterior_model.h"
#include "util/rng.h"
#include "util/status.h"

namespace ust {

/// \brief Attempt accounting for rejection-style samplers.
struct SampleStats {
  uint64_t attempts = 0;   ///< trajectories (or segments) generated
  uint64_t accepted = 0;   ///< samples returned
  double AttemptsPerSample() const {
    return accepted == 0 ? 0.0 : static_cast<double>(attempts) / accepted;
  }
};

/// \brief Samples from the a-posteriori model; one attempt per sample.
class PosteriorSampler {
 public:
  explicit PosteriorSampler(const PosteriorModel& model) : model_(&model) {}

  Trajectory Sample(Rng& rng);

  const SampleStats& stats() const { return stats_; }

 private:
  const PosteriorModel* model_;
  SampleStats stats_;
};

/// \brief TS1: forward-simulate with the a-priori chain, reject on any
/// missed observation. `max_attempts` bounds one Sample call.
class NaiveRejectionSampler {
 public:
  NaiveRejectionSampler(const TransitionMatrix& matrix,
                        const ObservationSeq& obs, uint64_t max_attempts)
      : matrix_(&matrix), obs_(&obs), max_attempts_(max_attempts) {}

  /// One valid trajectory or kResourceLimit after `max_attempts` rejections.
  Result<Trajectory> Sample(Rng& rng);

  const SampleStats& stats() const { return stats_; }

 private:
  const TransitionMatrix* matrix_;
  const ObservationSeq* obs_;
  uint64_t max_attempts_;
  SampleStats stats_;
};

/// \brief TS2: segment-wise rejection between consecutive observations.
/// `attempts` counts generated segments (the unit the paper's Figure 10
/// compares: trajectories drawn to obtain one valid sample).
class SegmentRejectionSampler {
 public:
  SegmentRejectionSampler(const TransitionMatrix& matrix,
                          const ObservationSeq& obs,
                          uint64_t max_attempts_per_segment)
      : matrix_(&matrix), obs_(&obs),
        max_attempts_per_segment_(max_attempts_per_segment) {}

  Result<Trajectory> Sample(Rng& rng);

  const SampleStats& stats() const { return stats_; }

 private:
  const TransitionMatrix* matrix_;
  const ObservationSeq* obs_;
  uint64_t max_attempts_per_segment_;
  SampleStats stats_;
};

/// Draw a successor of `from` under matrix row (linear scan; rows are short).
StateId SampleTransition(const TransitionMatrix& matrix, StateId from,
                         Rng& rng);

}  // namespace ust
