#include "model/uncertain_object.h"

#include "model/adaptation.h"

namespace ust {

Result<std::shared_ptr<const PosteriorModel>> UncertainObject::Posterior(
    PropagateWorkspace* ws) const {
  if (!posterior_) {
    auto result = AdaptTransitionMatrices(*matrix_, observations_, end_tic_, ws);
    if (!result.ok()) return result.status();
    posterior_ = std::make_shared<const PosteriorModel>(result.MoveValue());
  }
  return posterior_;
}

Status UncertainObject::EnsurePosterior(PropagateWorkspace* ws) const {
  auto result = Posterior(ws);
  return result.ok() ? Status::OK() : result.status();
}

}  // namespace ust
