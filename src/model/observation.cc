#include "model/observation.h"

#include <algorithm>

#include "util/check.h"

namespace ust {

Result<ObservationSeq> ObservationSeq::Create(
    std::vector<Observation> observations) {
  if (observations.empty()) {
    return Status::InvalidArgument("observation sequence must be non-empty");
  }
  for (size_t i = 0; i < observations.size(); ++i) {
    if (observations[i].state == kInvalidState) {
      return Status::InvalidArgument("observation has invalid state");
    }
    if (i > 0 && observations[i].time <= observations[i - 1].time) {
      return Status::InvalidArgument(
          "observation times must be strictly increasing");
    }
  }
  ObservationSeq seq;
  seq.observations_ = std::move(observations);
  return seq;
}

const Observation* ObservationSeq::At(Tic t) const {
  auto it = std::lower_bound(
      observations_.begin(), observations_.end(), t,
      [](const Observation& o, Tic v) { return o.time < v; });
  if (it != observations_.end() && it->time == t) return &*it;
  return nullptr;
}

const Observation& ObservationSeq::Previous(Tic t) const {
  UST_CHECK(Covers(t));
  auto it = std::upper_bound(
      observations_.begin(), observations_.end(), t,
      [](Tic v, const Observation& o) { return v < o.time; });
  UST_DCHECK(it != observations_.begin());
  return *(it - 1);
}

const Observation& ObservationSeq::Next(Tic t) const {
  UST_CHECK(Covers(t));
  auto it = std::lower_bound(
      observations_.begin(), observations_.end(), t,
      [](const Observation& o, Tic v) { return o.time < v; });
  UST_DCHECK(it != observations_.end());
  return *it;
}

}  // namespace ust
