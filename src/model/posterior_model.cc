#include "model/posterior_model.h"

#include <algorithm>

#include "markov/alias_table.h"
#include "util/check.h"

namespace ust {

SparseDist PosteriorModel::MarginalAt(Tic t) const {
  UST_CHECK(AliveAt(t));
  const Slice& slice = SliceAt(t);
  return SparseDist::FromSorted(slice.support, slice.marginal);
}

double PosteriorModel::TransitionProb(Tic t, StateId from, StateId to) const {
  UST_CHECK(AliveAt(t) && AliveAt(t + 1));
  const Slice& slice = SliceAt(t);
  const Slice& next = SliceAt(t + 1);
  auto it = std::lower_bound(slice.support.begin(), slice.support.end(), from);
  if (it == slice.support.end() || *it != from) return 0.0;
  auto local = static_cast<uint32_t>(it - slice.support.begin());
  for (uint32_t e = slice.row_offsets[local]; e < slice.row_offsets[local + 1];
       ++e) {
    if (next.support[slice.targets[e]] == to) return slice.tprobs[e];
  }
  return 0.0;
}

void PosteriorModel::EnsureSamplers() const {
  if (samplers_built_ || slices_.empty()) return;
  size_t total_slots = 0, total_marginal = 0, total_offsets = 0;
  for (const Slice& s : slices_) {
    total_slots += s.targets.size();
    total_marginal += s.support.size();
    if (!s.row_offsets.empty()) total_offsets += s.row_offsets.size();
  }
  flat_slots_.resize(total_slots);
  flat_marginal_.resize(total_marginal);
  flat_row_offsets_.resize(total_offsets);
  row_base_.assign(slices_.size(), 0);
  marg_base_.assign(slices_.size(), 0);

  std::vector<uint32_t> small_scratch, large_scratch, alias_scratch;
  std::vector<double> scaled_scratch, prob_scratch;
  uint32_t slot_base = 0, marg_base = 0, off_base = 0;
  for (size_t k = 0; k < slices_.size(); ++k) {
    const Slice& slice = slices_[k];
    // Marginal slots.
    marg_base_[k] = marg_base;
    const size_t n = slice.support.size();
    prob_scratch.resize(n);
    alias_scratch.resize(n);
    internal::BuildAliasSpan(slice.marginal.data(), n, prob_scratch.data(),
                             alias_scratch.data(), &small_scratch,
                             &large_scratch, &scaled_scratch);
    for (size_t i = 0; i < n; ++i) {
      MarginalSlot& s = flat_marginal_[marg_base + i];
      s.thresh = QuantizeThreshold(prob_scratch[i]);
      s.alias = marg_base + alias_scratch[i];
      s.local = static_cast<uint32_t>(i);
      s.state = slice.support[i];
    }
    marg_base += static_cast<uint32_t>(n);
    // Transition slots (absent in the last slice).
    row_base_[k] = off_base;
    if (slice.row_offsets.empty()) continue;
    const Slice& next = slices_[k + 1];
    for (uint32_t off : slice.row_offsets) {
      flat_row_offsets_[off_base++] = slot_base + off;
    }
    for (size_t local = 0; local + 1 < slice.row_offsets.size(); ++local) {
      const uint32_t lo = slice.row_offsets[local];
      const uint32_t len = slice.row_offsets[local + 1] - lo;
      if (len == 0) continue;
      prob_scratch.resize(len);
      alias_scratch.resize(len);
      internal::BuildAliasSpan(slice.tprobs.data() + lo, len,
                               prob_scratch.data(), alias_scratch.data(),
                               &small_scratch, &large_scratch,
                               &scaled_scratch);
      for (uint32_t j = 0; j < len; ++j) {
        FusedSlot& s = flat_slots_[slot_base + lo + j];
        s.thresh = QuantizeThreshold(prob_scratch[j]);
        s.alias = slot_base + lo + alias_scratch[j];
        s.local = slice.targets[lo + j];
        s.state = next.support[s.local];
      }
    }
    slot_base += static_cast<uint32_t>(slice.targets.size());
  }
  samplers_built_ = true;
}

StateId PosteriorModel::SampleAt(Tic t, Rng& rng) const {
  UST_CHECK(AliveAt(t));
  EnsureSamplers();
  return SampleMarginalSlot(static_cast<size_t>(t - first_tic_), rng).state;
}

Trajectory PosteriorModel::SampleTrajectory(Rng& rng) const {
  Trajectory traj;
  SampleWindowInto(first_tic(), last_tic(), rng, &traj);
  return traj;
}

Result<Trajectory> PosteriorModel::SampleWindow(Tic ts, Tic te,
                                                Rng& rng) const {
  if (!CoversWindow(ts, te)) {
    return Status::OutOfRange("sampling window outside alive span");
  }
  Trajectory traj;
  SampleWindowInto(ts, te, rng, &traj);
  return traj;
}

void PosteriorModel::SampleWindowInto(Tic ts, Tic te, Rng& rng,
                                      Trajectory* out) const {
  UST_DCHECK(CoversWindow(ts, te));
  EnsureSamplers();
  out->start = ts;
  out->states.resize(static_cast<size_t>(te - ts) + 1);
  StateId* states = out->states.data();
  size_t k = static_cast<size_t>(ts - first_tic_);
  // One fork per window — matching BatchWalk, so batched and one-at-a-time
  // sampling draw identical worlds from the same parent stream.
  Rng wrng = rng.Fork();
  // Sample the window start from the posterior marginal, then walk the
  // adapted chain: one alias draw and one fused-slot read per step.
  const MarginalSlot& start = SampleMarginalSlot(k, wrng);
  uint32_t local = start.local;
  *states++ = start.state;
  for (Tic t = ts; t < te; ++t, ++k) {
    const FusedSlot& slot = SampleSuccessorSlot(k, local, wrng);
    local = slot.local;
    *states++ = slot.state;
  }
}

size_t PosteriorModel::TotalSupportSize() const {
  size_t total = 0;
  for (const Slice& s : slices_) total += s.support.size();
  return total;
}

size_t PosteriorModel::MaxSupportSize() const {
  size_t m = 0;
  for (const Slice& s : slices_) m = std::max(m, s.support.size());
  return m;
}

}  // namespace ust
