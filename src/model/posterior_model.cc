#include "model/posterior_model.h"

#include <algorithm>

#include "util/check.h"

namespace ust {

SparseDist PosteriorModel::MarginalAt(Tic t) const {
  UST_CHECK(AliveAt(t));
  const Slice& slice = SliceAt(t);
  std::vector<SparseDist::Entry> entries;
  entries.reserve(slice.support.size());
  for (size_t i = 0; i < slice.support.size(); ++i) {
    entries.push_back({slice.support[i], slice.marginal[i]});
  }
  return SparseDist(std::move(entries));
}

double PosteriorModel::TransitionProb(Tic t, StateId from, StateId to) const {
  UST_CHECK(AliveAt(t) && AliveAt(t + 1));
  const Slice& slice = SliceAt(t);
  const Slice& next = SliceAt(t + 1);
  auto it = std::lower_bound(slice.support.begin(), slice.support.end(), from);
  if (it == slice.support.end() || *it != from) return 0.0;
  auto local = static_cast<uint32_t>(it - slice.support.begin());
  for (uint32_t e = slice.row_offsets[local]; e < slice.row_offsets[local + 1];
       ++e) {
    if (next.support[slice.transitions[e].first] == to) {
      return slice.transitions[e].second;
    }
  }
  return 0.0;
}

StateId PosteriorModel::SampleAt(Tic t, Rng& rng) const {
  UST_CHECK(AliveAt(t));
  const Slice& slice = SliceAt(t);
  double u = rng.Uniform();
  double acc = 0.0;
  for (size_t i = 0; i < slice.support.size(); ++i) {
    acc += slice.marginal[i];
    if (u < acc) return slice.support[i];
  }
  return slice.support.back();
}

uint32_t PosteriorModel::SampleSuccessor(const Slice& slice, uint32_t local,
                                         Rng& rng) const {
  uint32_t lo = slice.row_offsets[local];
  uint32_t hi = slice.row_offsets[local + 1];
  UST_CHECK(hi > lo);
  double u = rng.Uniform();
  double acc = 0.0;
  for (uint32_t e = lo; e < hi; ++e) {
    acc += slice.transitions[e].second;
    if (u < acc) return slice.transitions[e].first;
  }
  return slice.transitions[hi - 1].first;
}

Trajectory PosteriorModel::SampleTrajectory(Rng& rng) const {
  Trajectory traj;
  traj.start = first_tic_;
  traj.states.reserve(slices_.size());
  // The first slice is the first observation: a point mass.
  uint32_t local = 0;
  {
    const Slice& first = slices_.front();
    double u = rng.Uniform();
    double acc = 0.0;
    for (size_t i = 0; i < first.support.size(); ++i) {
      acc += first.marginal[i];
      if (u < acc) {
        local = static_cast<uint32_t>(i);
        break;
      }
    }
  }
  traj.states.push_back(slices_.front().support[local]);
  for (size_t k = 0; k + 1 < slices_.size(); ++k) {
    local = SampleSuccessor(slices_[k], local, rng);
    traj.states.push_back(slices_[k + 1].support[local]);
  }
  return traj;
}

Result<Trajectory> PosteriorModel::SampleWindow(Tic ts, Tic te,
                                                Rng& rng) const {
  if (!CoversWindow(ts, te)) {
    return Status::OutOfRange("sampling window outside alive span");
  }
  Trajectory traj;
  traj.start = ts;
  traj.states.reserve(static_cast<size_t>(te - ts) + 1);
  const Slice& start_slice = SliceAt(ts);
  // Sample the window start from the posterior marginal.
  uint32_t local = 0;
  {
    double u = rng.Uniform();
    double acc = 0.0;
    for (size_t i = 0; i < start_slice.support.size(); ++i) {
      acc += start_slice.marginal[i];
      if (u < acc) {
        local = static_cast<uint32_t>(i);
        break;
      }
      local = static_cast<uint32_t>(i);  // fall back to last on fp slack
    }
  }
  traj.states.push_back(start_slice.support[local]);
  for (Tic t = ts; t < te; ++t) {
    local = SampleSuccessor(SliceAt(t), local, rng);
    traj.states.push_back(SliceAt(t + 1).support[local]);
  }
  return traj;
}

size_t PosteriorModel::TotalSupportSize() const {
  size_t total = 0;
  for (const Slice& s : slices_) total += s.support.size();
  return total;
}

size_t PosteriorModel::MaxSupportSize() const {
  size_t m = 0;
  for (const Slice& s : slices_) m = std::max(m, s.support.size());
  return m;
}

}  // namespace ust
