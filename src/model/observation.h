// Observations Θ^o = {(t_i, θ_i)}: certain (time, location) sightings of an
// object (Section 3.1). Between observations the position is uncertain.
#pragma once

#include <vector>

#include "state/state_space.h"
#include "util/status.h"

namespace ust {

/// \brief One certain sighting: object was at state `state` at tic `time`.
struct Observation {
  Tic time = 0;
  StateId state = kInvalidState;

  friend bool operator==(const Observation& a, const Observation& b) {
    return a.time == b.time && a.state == b.state;
  }
};

/// \brief Strictly time-increasing, non-empty sequence of observations.
class ObservationSeq {
 public:
  ObservationSeq() = default;

  /// Validates: non-empty, strictly increasing times, valid states.
  static Result<ObservationSeq> Create(std::vector<Observation> observations);

  size_t size() const { return observations_.size(); }
  const Observation& operator[](size_t i) const { return observations_[i]; }
  const std::vector<Observation>& items() const { return observations_; }

  const Observation& first() const { return observations_.front(); }
  const Observation& last() const { return observations_.back(); }

  /// First observation tic (the object's birth).
  Tic first_tic() const { return observations_.front().time; }
  /// Last observation tic (the object's death).
  Tic last_tic() const { return observations_.back().time; }

  /// True when `t` lies in [first_tic, last_tic].
  bool Covers(Tic t) const { return t >= first_tic() && t <= last_tic(); }

  /// Observation at exactly tic `t`, or nullptr.
  const Observation* At(Tic t) const;

  /// Most recent observation with time <= t. Requires Covers(t).
  const Observation& Previous(Tic t) const;

  /// Soonest observation with time >= t. Requires Covers(t).
  const Observation& Next(Tic t) const;

 private:
  std::vector<Observation> observations_;
};

}  // namespace ust
