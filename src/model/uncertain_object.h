// An uncertain moving object: its observations plus the a-priori Markov
// model, with a lazily built a-posteriori model (Algorithm 2).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>

#include "markov/transition_matrix.h"
#include "model/observation.h"
#include "model/posterior_model.h"
#include "util/status.h"

namespace ust {

class PropagateWorkspace;

/// Dense object identifier within a TrajectoryDatabase.
using ObjectId = uint32_t;

/// \brief One uncertain moving object o ∈ D.
///
/// The posterior model is built on first use and cached (single-threaded use;
/// call EnsurePosterior() up front from concurrent contexts).
class UncertainObject {
 public:
  /// `end_tic` extends the object's lifetime past its last observation (the
  /// a-posteriori model continues with a-priori propagation there); it
  /// defaults to the last observation tic.
  UncertainObject(ObjectId id, ObservationSeq observations,
                  TransitionMatrixPtr matrix)
      : UncertainObject(id, std::move(observations), std::move(matrix), -1) {}
  UncertainObject(ObjectId id, ObservationSeq observations,
                  TransitionMatrixPtr matrix, Tic end_tic)
      : id_(id), observations_(std::move(observations)),
        matrix_(std::move(matrix)),
        end_tic_(std::max(end_tic, observations_.last_tic())) {}

  ObjectId id() const { return id_; }
  const ObservationSeq& observations() const { return observations_; }
  const TransitionMatrix& matrix() const { return *matrix_; }
  TransitionMatrixPtr matrix_ptr() const { return matrix_; }

  Tic first_tic() const { return observations_.first_tic(); }
  /// Last tic the object exists at (>= last observation tic).
  Tic last_tic() const { return end_tic_; }
  bool AliveAt(Tic t) const { return t >= first_tic() && t <= end_tic_; }
  bool AliveThroughout(Tic ts, Tic te) const {
    return first_tic() <= ts && te <= end_tic_;
  }

  /// Build (or fetch the cached) a-posteriori model. `ws` optionally threads
  /// a reusable adaptation workspace (see AdaptTransitionMatrices).
  Result<std::shared_ptr<const PosteriorModel>> Posterior(
      PropagateWorkspace* ws = nullptr) const;

  /// Eagerly build the posterior; returns the adaptation status.
  Status EnsurePosterior(PropagateWorkspace* ws = nullptr) const;

  /// Drop the cached posterior (e.g. for timing experiments).
  void InvalidatePosterior() const { posterior_.reset(); }

 private:
  ObjectId id_;
  ObservationSeq observations_;
  TransitionMatrixPtr matrix_;
  Tic end_tic_;
  mutable std::shared_ptr<const PosteriorModel> posterior_;
};

}  // namespace ust
