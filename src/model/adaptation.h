// Forward-backward adaptation of an a-priori Markov chain to a set of
// observations (Algorithm 2, Section 5.2 of the paper):
//
//  * Forward phase — run the a-priori chain from the first observation,
//    collapsing the distribution at every observation, and use Bayes'
//    theorem to record the time-reversed matrices
//    R(t)_ij = P(o(t-1)=s_j | o(t)=s_i, past observations).
//  * Backward phase — traverse time backwards from the last observation via
//    R(t), which conditions on future observations too, yielding the
//    a-posteriori transition matrices
//    F(t)_ij = P(o(t+1)=s_j | o(t)=s_i, all observations Θ)
//    and the posterior marginals.
//
// All computations are sparse: complexity O(|T| * W * deg) where W is the
// diamond width (reachable states per tic), matching the paper's
// O(|T| * |S|^2) bound with W << |S| in practice.
#pragma once

#include <vector>

#include "markov/sparse_dist.h"
#include "markov/transition_matrix.h"
#include "markov/transition_model.h"
#include "model/observation.h"
#include "model/posterior_model.h"
#include "util/status.h"

namespace ust {

/// \brief Algorithm 2: build the a-posteriori model F^o(t) for one object.
///
/// When `extend_until` exceeds the last observation tic, the model is
/// continued past it with plain a-priori propagation (no future observation
/// exists to condition on) — e.g. the paper's Example 1, where objects move
/// on after their only observation.
///
/// Fails with StatusCode::kContradiction when an observation is unreachable
/// under the a-priori model (zero forward probability).
///
/// The `ws` parameter threads one reusable PropagateWorkspace through the
/// adaptation: a caller adapting many objects (TrajectoryDatabase::
/// EnsureAllPosteriors, the TS phase) passes the same workspace every time so
/// the dense scatter arrays are allocated once per worker, not once per
/// object. Pass nullptr for a private throwaway workspace.
Result<PosteriorModel> AdaptTransitionMatrices(const TransitionMatrix& matrix,
                                               const ObservationSeq& obs);
Result<PosteriorModel> AdaptTransitionMatrices(const TransitionMatrix& matrix,
                                               const ObservationSeq& obs,
                                               Tic extend_until,
                                               PropagateWorkspace* ws = nullptr);

/// Time-inhomogeneous variants: `model.At(t)` governs the step t -> t+1
/// (Section 3.1 allows a different matrix per tic; the Lemma-1 construction
/// requires it).
Result<PosteriorModel> AdaptTransitionMatrices(const TransitionModel& model,
                                               const ObservationSeq& obs);
Result<PosteriorModel> AdaptTransitionMatrices(const TransitionModel& model,
                                               const ObservationSeq& obs,
                                               Tic extend_until,
                                               PropagateWorkspace* ws = nullptr);

/// \brief Forward-only filtering (the paper's "F" ablation in Figure 12):
/// marginals P(o(t) | observations with time <= t) for every tic in the
/// alive span. Entry k corresponds to tic first_tic + k.
Result<std::vector<SparseDist>> ForwardFilterMarginals(
    const TransitionMatrix& matrix, const ObservationSeq& obs);

/// \brief A-priori propagation from the first observation only (the "NO"
/// ablation in Figure 12): marginals P(o(t) | first observation) for
/// `num_tics` tics starting at `first.time`.
std::vector<SparseDist> AprioriMarginals(const TransitionMatrix& matrix,
                                         const Observation& first,
                                         size_t num_tics);

/// \brief Uniform-over-reachable-states model (the "U" ablation in Figure 12,
/// standing in for the cylinder/bead approximations [13, 16]): uniform
/// distribution over each posterior support slice.
std::vector<SparseDist> UniformReachableMarginals(const PosteriorModel& model);

}  // namespace ust
