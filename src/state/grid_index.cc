#include "state/grid_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace ust {

GridIndex::GridIndex(const StateSpace& space, Rect2 bounds, int nx, int ny)
    : space_(&space), bounds_(bounds), nx_(nx), ny_(ny) {
  cell_w_ = (bounds_.hi[0] - bounds_.lo[0]) / nx_;
  cell_h_ = (bounds_.hi[1] - bounds_.lo[1]) / ny_;
  if (cell_w_ <= 0.0) cell_w_ = 1.0;
  if (cell_h_ <= 0.0) cell_h_ = 1.0;
  cells_.assign(static_cast<size_t>(nx_) * ny_, {});
  for (StateId s = 0; s < space.size(); ++s) {
    const Point2& p = space.coord(s);
    cells_[static_cast<size_t>(CellY(p.y)) * nx_ + CellX(p.x)].push_back(s);
  }
}

GridIndex GridIndex::Build(const StateSpace& space, double target_per_cell) {
  Rect2 bounds = space.BoundingBox();
  if (bounds.empty()) bounds = MakeRect2(0, 0, 1, 1);
  double n = std::max<double>(1.0, static_cast<double>(space.size()));
  int side = std::max(1, static_cast<int>(std::sqrt(n / target_per_cell)));
  return GridIndex(space, bounds, side, side);
}

int GridIndex::CellX(double x) const {
  int c = static_cast<int>((x - bounds_.lo[0]) / cell_w_);
  return std::clamp(c, 0, nx_ - 1);
}

int GridIndex::CellY(double y) const {
  int c = static_cast<int>((y - bounds_.lo[1]) / cell_h_);
  return std::clamp(c, 0, ny_ - 1);
}

std::vector<StateId> GridIndex::WithinRadius(const Point2& p,
                                             double radius) const {
  UST_DCHECK(radius >= 0.0);
  std::vector<StateId> result;
  int cx_lo = CellX(p.x - radius), cx_hi = CellX(p.x + radius);
  int cy_lo = CellY(p.y - radius), cy_hi = CellY(p.y + radius);
  double r2 = radius * radius;
  for (int cy = cy_lo; cy <= cy_hi; ++cy) {
    for (int cx = cx_lo; cx <= cx_hi; ++cx) {
      for (StateId s : Cell(cx, cy)) {
        if (SquaredDistance(p, space_->coord(s)) <= r2) result.push_back(s);
      }
    }
  }
  return result;
}

StateId GridIndex::Nearest(const Point2& p) const {
  if (space_->empty()) return kInvalidState;
  // Expand ring by ring around p's cell until a candidate is found, then one
  // extra ring to guarantee correctness near cell boundaries.
  StateId best = kInvalidState;
  double best_d2 = std::numeric_limits<double>::infinity();
  int cx = CellX(p.x), cy = CellY(p.y);
  int max_ring = std::max(nx_, ny_);
  bool found_ring = false;
  int stop_ring = max_ring;
  for (int ring = 0; ring <= stop_ring; ++ring) {
    bool any_cell = false;
    for (int dy = -ring; dy <= ring; ++dy) {
      for (int dx = -ring; dx <= ring; ++dx) {
        if (std::max(std::abs(dx), std::abs(dy)) != ring) continue;
        int x = cx + dx, y = cy + dy;
        if (x < 0 || x >= nx_ || y < 0 || y >= ny_) continue;
        any_cell = true;
        for (StateId s : Cell(x, y)) {
          double d2 = SquaredDistance(p, space_->coord(s));
          if (d2 < best_d2) {
            best_d2 = d2;
            best = s;
          }
        }
      }
    }
    if (best != kInvalidState && !found_ring) {
      found_ring = true;
      stop_ring = std::min(max_ring, ring + 2);
    }
    if (!any_cell && ring > 0 && found_ring) break;
  }
  return best;
}

}  // namespace ust
