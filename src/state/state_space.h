// Discrete spatial state space S = {s_1, ..., s_|S|} ⊂ R² (Section 3 of the
// paper). States are identified by dense 32-bit ids; coordinates are stored
// contiguously.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/point.h"
#include "geo/rect.h"
#include "util/status.h"

namespace ust {

/// Dense identifier of a state in the discretized space.
using StateId = uint32_t;

/// Sentinel for "no state".
inline constexpr StateId kInvalidState = static_cast<StateId>(-1);

/// Discrete time tic (the paper's T = {0, ..., n}).
using Tic = int32_t;

/// \brief The finite alphabet of possible locations.
///
/// How space is discretized is application dependent (road crossings, RFID
/// tracker positions, grid cells); this class only stores the embedding of
/// each state into R².
class StateSpace {
 public:
  StateSpace() = default;
  explicit StateSpace(std::vector<Point2> coords) : coords_(std::move(coords)) {}

  /// Append a state; returns its id.
  StateId Add(const Point2& p) {
    coords_.push_back(p);
    return static_cast<StateId>(coords_.size() - 1);
  }

  size_t size() const { return coords_.size(); }
  bool empty() const { return coords_.empty(); }

  const Point2& coord(StateId s) const { return coords_[s]; }
  const std::vector<Point2>& coords() const { return coords_; }

  /// Euclidean distance between two states.
  double Distance(StateId a, StateId b) const {
    return ust::Distance(coords_[a], coords_[b]);
  }

  /// Euclidean distance from a free point to a state.
  double Distance(const Point2& p, StateId s) const {
    return ust::Distance(p, coords_[s]);
  }

  /// Bounding box of all states (empty box for an empty space).
  Rect2 BoundingBox() const;

  /// Bounding box of a subset of states.
  Rect2 BoundingBoxOf(const std::vector<StateId>& states) const;

  /// Linear-scan nearest state to `p`; kInvalidState when empty.
  StateId NearestLinear(const Point2& p) const;

 private:
  std::vector<Point2> coords_;
};

}  // namespace ust
