#include "state/state_space.h"

#include <limits>

namespace ust {

Rect2 StateSpace::BoundingBox() const {
  Rect2 box;
  for (const Point2& p : coords_) box.Extend({p.x, p.y});
  return box;
}

Rect2 StateSpace::BoundingBoxOf(const std::vector<StateId>& states) const {
  Rect2 box;
  for (StateId s : states) {
    const Point2& p = coords_[s];
    box.Extend({p.x, p.y});
  }
  return box;
}

StateId StateSpace::NearestLinear(const Point2& p) const {
  StateId best = kInvalidState;
  double best_d = std::numeric_limits<double>::infinity();
  for (StateId s = 0; s < coords_.size(); ++s) {
    double d = SquaredDistance(p, coords_[s]);
    if (d < best_d) {
      best_d = d;
      best = s;
    }
  }
  return best;
}

}  // namespace ust
