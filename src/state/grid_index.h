// Uniform grid over a StateSpace for radius and nearest-state lookups. Used
// by the synthetic network generator (neighbor edges within radius r) and by
// map-matching in the road-network generator.
#pragma once

#include <vector>

#include "state/state_space.h"

namespace ust {

/// \brief Uniform bucket grid over the bounding box of a state space.
///
/// The grid keeps only ids; coordinates are read from the StateSpace, which
/// must outlive the index and must not change size after Build().
class GridIndex {
 public:
  /// Build over `space` with roughly `target_per_cell` states per cell.
  static GridIndex Build(const StateSpace& space, double target_per_cell = 4.0);

  /// All states within Euclidean distance `radius` of `p` (inclusive).
  std::vector<StateId> WithinRadius(const Point2& p, double radius) const;

  /// Nearest state to `p`; kInvalidState for an empty space.
  StateId Nearest(const Point2& p) const;

  int cells_x() const { return nx_; }
  int cells_y() const { return ny_; }

 private:
  GridIndex(const StateSpace& space, Rect2 bounds, int nx, int ny);

  int CellX(double x) const;
  int CellY(double y) const;
  const std::vector<StateId>& Cell(int cx, int cy) const {
    return cells_[static_cast<size_t>(cy) * nx_ + cx];
  }

  const StateSpace* space_;
  Rect2 bounds_;
  int nx_ = 1, ny_ = 1;
  double cell_w_ = 1.0, cell_h_ = 1.0;
  std::vector<std::vector<StateId>> cells_;
};

}  // namespace ust
