// Open-loop overload benchmark for the serving tier (DESIGN.md section 11):
// Poisson arrivals at a sweep of offered-load multiples of the server's
// measured saturation throughput, every request carrying a deadline. Unlike
// the closed-loop micro_server harness (clients wait for completions, so
// offered load self-throttles to capacity), an open-loop generator keeps
// submitting on schedule no matter how far behind the server falls — the
// regime where an unprotected server collapses: queues grow without bound,
// every request expires after consuming lane time, goodput goes to zero.
//
// The overload machinery under test keeps goodput flat instead:
//   - deadline propagation sheds already-expired work in the queue and at
//     morsel boundaries, before it wastes lane time;
//   - the overload controller degrades implicit-precision specs to the
//     server epsilon target (cheaper answers) and sheds the lowest priority
//     class at admission once utilization crosses the shed watermark;
//   - the hard admission bound backstops everything.
//
// The sweep emits a latency/goodput curve into BENCH_overload.json; the
// headline gate is goodput_saturated_ratio — goodput at the highest offered
// multiple (~2x saturation) over the peak across the sweep — which must stay
// >= --min_ratio (default 0.8: overload must cost at most 20% of peak
// goodput, not collapse it).
//
// --chaos=1 instead runs the fault-injection smoke (util/fault.h): arms all
// five serving-tier injection points (lane_stall, session_build, compaction,
// alloc_limit, deadline_skew), drives a concurrent burst + writes + Stop()
// through them, and asserts that every point fired, every future resolved,
// and the request ledger reconciles exactly:
//   submitted == admitted + rejected, rejected == sum of split reasons,
//   admitted == completed (every admitted request delivered one outcome).
// Writes the fire counts to --chaos_out for the CI artifact.
//
// Flags (defaults sized for a single CI core):
//   --states=8000 --objects=32 --lifetime=96 --obs_interval=12 --horizon=120
//   --interval=10 --intervals=2 --worlds=2000 --pool=48 --threads=1
//   --lanes=2 --batch=16 --delay_ms=1 --queue_capacity=64 --deadline_ms=80
//   --seconds_per_point=0.4 --multiples=0.5,1.0,1.5,2.0 --min_ratio=0.8
//   --chaos=0 --chaos_out=BENCH_overload_chaos.json
//   --json_out=BENCH_overload.json
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "gen/synthetic.h"
#include "gen/workload.h"
#include "index/ust_tree.h"
#include "query/session.h"
#include "server/query_server.h"
#include "util/check.h"
#include "util/fault.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace ust;
using namespace ust::bench;

namespace {

std::vector<double> ParseMultiples(const std::string& csv) {
  std::vector<double> multiples;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    multiples.push_back(std::stod(csv.substr(pos, comma - pos)));
    pos = comma + 1;
  }
  UST_CHECK(!multiples.empty());
  UST_CHECK(std::is_sorted(multiples.begin(), multiples.end()));
  return multiples;
}

/// One sweep point's observables.
struct PointResult {
  double offered_qps = 0.0;
  double goodput_qps = 0.0;   ///< OK outcomes per second of wall time
  double p99_ms = 0.0;        ///< server-side submit-to-completion p99
  uint64_t ok = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t rejected = 0;
  ServerStats stats;
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  SyntheticConfig config;
  config.num_states = flags.GetInt("states", 8000);
  config.num_objects = flags.GetInt("objects", 32);
  config.lifetime = static_cast<Tic>(flags.GetInt("lifetime", 96));
  config.obs_interval = static_cast<Tic>(flags.GetInt("obs_interval", 12));
  config.horizon = static_cast<Tic>(flags.GetInt("horizon", 120));
  config.seed = 11;
  const size_t interval_length = flags.GetInt("interval", 10);
  const size_t num_intervals =
      std::max<size_t>(1, flags.GetInt("intervals", 2));
  const size_t num_worlds = flags.GetInt("worlds", 2000);
  const size_t pool_size = std::max<size_t>(1, flags.GetInt("pool", 48));
  const int threads = flags.GetInt("threads", 1);
  const int lanes = std::max(1, static_cast<int>(flags.GetInt("lanes", 2)));
  const size_t max_batch = flags.GetInt("batch", 16);
  const double delay_ms = flags.GetDouble("delay_ms", 1.0);
  const size_t queue_capacity = flags.GetInt("queue_capacity", 64);
  const double deadline_ms = flags.GetDouble("deadline_ms", 80.0);
  const double seconds_per_point = flags.GetDouble("seconds_per_point", 0.4);
  const std::vector<double> multiples =
      ParseMultiples(flags.GetString("multiples", "0.5,1.0,1.5,2.0"));
  const double min_ratio = flags.GetDouble("min_ratio", 0.8);
  const bool chaos = flags.GetInt("chaos", 0) != 0;
  const std::string chaos_out =
      flags.GetString("chaos_out", "BENCH_overload_chaos.json");
  const std::string json_out =
      flags.GetString("json_out", "BENCH_overload.json");

  PrintConfig(chaos ? "micro_overload: fault-injection chaos smoke"
                    : "micro_overload: open-loop overload sweep",
              flags,
              "states=" + std::to_string(config.num_states) +
                  " objects=" + std::to_string(config.num_objects) +
                  " worlds=" + std::to_string(num_worlds) +
                  " lanes=" + std::to_string(lanes) +
                  " queue_capacity=" + std::to_string(queue_capacity) +
                  " deadline_ms=" + std::to_string(deadline_ms));

  auto world_result = GenerateSyntheticWorld(config);
  UST_CHECK(world_result.ok());
  SyntheticWorld world = world_result.MoveValue();
  TrajectoryDatabase& db = *world.db;
  auto tree = UstTree::Build(db);
  UST_CHECK(tree.ok());

  // The request pool: P∀NN Monte-Carlo specs over a few intervals, pinned
  // to the sampling backend, on the *implicit* fixed-worlds default — the
  // degradable class. Seeds repeat per pool slot, so hot (interval, seed)
  // arena groups form exactly as they would in steady-state serving.
  const TimeInterval T1 = BusiestInterval(db, interval_length);
  const Tic shift = std::max<Tic>(1, static_cast<Tic>(interval_length) / 2);
  std::vector<TimeInterval> intervals;
  intervals.reserve(num_intervals);
  for (size_t k = 0; k < num_intervals; ++k) {
    TimeInterval T = T1;
    const Tic offset = static_cast<Tic>(k) * shift;
    if (T.start >= offset) {
      T.start -= offset;
      T.end -= offset;
    } else {
      T.start += offset;
      T.end += offset;
    }
    intervals.push_back(T);
  }
  Rng qrng(7);
  std::vector<QuerySpec> pool;
  pool.reserve(pool_size);
  for (size_t i = 0; i < pool_size; ++i) {
    QuerySpec spec;
    spec.kind = QueryKind::kForall;
    spec.q = RandomQueryState(db.space(), qrng);
    spec.T = intervals[i % num_intervals];
    spec.tau = 0.5;
    spec.mc.num_worlds = num_worlds;
    spec.mc.seed = 9000 + (i % 8);  // repeated seeds: arena-able groups
    spec.backend = ExecutorKind::kMonteCarlo;
    pool.push_back(spec);
  }

  const auto make_options = [&](bool compaction) {
    ServerOptions options;
    options.lanes = lanes;
    options.threads = threads;
    options.max_batch_size = max_batch;
    options.max_batch_delay_ms = delay_ms;
    options.queue_capacity = queue_capacity;
    options.arena_min_uses = 1;
    options.compaction = compaction;
    options.compaction_interval_ms = 5.0;
    options.compaction_min_depth = 1;
    return options;
  };

  // ------------------------------------------------------------- chaos mode
  if (chaos) {
    fault::ClearAll();
    fault::FaultSpec stall;
    stall.skip_first = 2;
    stall.max_fires = 4;
    stall.stall_ms = 2.0;
    fault::Arm("lane_stall", stall);
    fault::FaultSpec build_fail;
    build_fail.max_fires = 2;
    fault::Arm("session_build", build_fail);
    fault::FaultSpec compact_fail;
    compact_fail.max_fires = 1;
    fault::Arm("compaction", compact_fail);
    fault::FaultSpec alloc;
    alloc.max_fires = 2;
    fault::Arm("alloc_limit", alloc);
    fault::FaultSpec skew;
    skew.skip_first = 6;
    skew.max_fires = 8;
    skew.skew_ns = 3600LL * 1000 * 1000 * 1000;  // +1h: anything expires
    fault::Arm("deadline_skew", skew);

    uint64_t resolved = 0;
    ServerStats stats;
    {
      QueryServer server(db, &tree.value(), make_options(true));
      // Writes ahead of the burst give the compactor a depth to chase (its
      // first rebuild attempt eats the injected failure).
      for (size_t i = 0; i < 4 && i < db.size(); ++i) {
        const ObjectId id = static_cast<ObjectId>(i);
        UST_CHECK(db.ExtendLifetime(id, db.object(id).last_tic() + 2).ok());
      }
      // Concurrent burst: every request carries a (huge) deadline, so every
      // deadline_skew fire that lands on a batch or morsel expires real
      // work; session_build fires fail whole groups; alloc_limit fires on
      // the arena path; lane_stall delays lanes under the burst.
      const int chaos_clients = 4;
      const size_t per_client = 40;
      std::vector<std::future<QueryOutcome>> futures(chaos_clients *
                                                     per_client);
      std::vector<std::thread> clients;
      clients.reserve(chaos_clients);
      for (int c = 0; c < chaos_clients; ++c) {
        clients.emplace_back([&, c] {
          for (size_t i = 0; i < per_client; ++i) {
            QuerySpec spec = pool[(c * per_client + i) % pool.size()];
            spec.deadline_ms = 3.6e6;  // 1h: only injected skew expires it
            futures[c * per_client + i] = server.Submit(std::move(spec));
          }
        });
      }
      for (auto& client : clients) client.join();
      // Give the compactor a few poll periods to take the injected failure.
      const auto compact_deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(10);
      while (fault::FireCount("compaction") == 0 &&
             std::chrono::steady_clock::now() < compact_deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      // Stop mid-stream and race a few submits against the drain: they must
      // all resolve deterministically as rejected_draining.
      std::thread stopper([&] { server.Stop(); });
      std::vector<std::future<QueryOutcome>> late(8);
      for (auto& f : late) {
        QuerySpec spec = pool[0];
        spec.deadline_ms = 3.6e6;
        f = server.Submit(std::move(spec));
      }
      stopper.join();
      for (auto& f : futures) {
        f.get();
        ++resolved;
      }
      for (auto& f : late) {
        f.get();
        ++resolved;
      }
      stats = server.Stats();
    }

    // Every armed point must have fired at least once...
    const char* points[] = {"lane_stall", "session_build", "compaction",
                            "alloc_limit", "deadline_skew"};
    for (const char* point : points) {
      std::printf("# fault %-14s probes=%llu fires=%llu\n", point,
                  static_cast<unsigned long long>(fault::ProbeCount(point)),
                  static_cast<unsigned long long>(fault::FireCount(point)));
      UST_CHECK(fault::FireCount(point) >= 1);
    }
    fault::ClearAll();
    // ...no promise may leak (every submitted future resolved above), and
    // the request ledger must reconcile exactly.
    UST_CHECK(resolved == stats.submitted);
    UST_CHECK(stats.submitted == stats.admitted + stats.rejected);
    UST_CHECK(stats.rejected == stats.rejected_queue_full +
                                    stats.rejected_shed +
                                    stats.rejected_draining);
    UST_CHECK(stats.admitted == stats.completed);
    UST_CHECK(stats.expired_in_queue + stats.expired_on_lane >= 1);
    UST_CHECK(stats.cache.build_failures >= 1);
    UST_CHECK(stats.compaction_failures >= 1);

    bench::JsonWriter json;
    json.Add("benchmark", std::string("micro_overload_chaos"));
    json.Add("submitted", static_cast<double>(stats.submitted));
    json.Add("admitted", static_cast<double>(stats.admitted));
    json.Add("completed", static_cast<double>(stats.completed));
    json.Add("rejected_draining", static_cast<double>(stats.rejected_draining));
    json.Add("expired_in_queue", static_cast<double>(stats.expired_in_queue));
    json.Add("expired_on_lane", static_cast<double>(stats.expired_on_lane));
    json.Add("session_build_failures",
             static_cast<double>(stats.cache.build_failures));
    json.Add("compaction_failures",
             static_cast<double>(stats.compaction_failures));
    if (!json.WriteFile(chaos_out)) {
      std::fprintf(stderr, "failed to write %s\n", chaos_out.c_str());
      return 1;
    }
    std::printf("# chaos smoke passed; wrote %s\n", chaos_out.c_str());
    return 0;
  }

  // ------------------------------------------------------- saturation probe
  // Closed-loop warm throughput of this exact server shape: the sweep's
  // offered rates are multiples of it, so "2x" means 2x *this machine's*
  // capacity regardless of how fast it is.
  // A bounded-outstanding closed loop: the window stays under the degrade
  // watermark, so the probe (and each point's cache warm-up) runs at full
  // precision and never trips backpressure or shedding.
  const auto run_closed_loop = [&](QueryServer& server, size_t count,
                                   size_t window) {
    std::deque<std::future<QueryOutcome>> outstanding;
    Timer t;
    size_t next = 0;
    while (next < count || !outstanding.empty()) {
      while (next < count && outstanding.size() < window) {
        outstanding.push_back(server.Submit(pool[next % pool.size()]));
        ++next;
      }
      UST_CHECK(outstanding.front().get().status.ok());
      outstanding.pop_front();
    }
    return t.Seconds();
  };
  const size_t window =
      std::max<size_t>(1, std::min<size_t>(16, queue_capacity / 4));

  double saturation_qps = 0.0;
  {
    QueryServer server(db, &tree.value(), make_options(false));
    run_closed_loop(server, pool.size(), window);  // warm, untimed
    const size_t probe_n = 2 * pool.size();
    saturation_qps = static_cast<double>(probe_n) /
                     run_closed_loop(server, probe_n, window);
  }
  std::printf("# saturation estimate: %.1f qps\n", saturation_qps);
  UST_CHECK(saturation_qps > 0.0);

  // --------------------------------------------------------- open-loop sweep
  std::vector<PointResult> points;
  points.reserve(multiples.size());
  for (size_t point_idx = 0; point_idx < multiples.size(); ++point_idx) {
    const double rate = multiples[point_idx] * saturation_qps;
    const size_t n =
        std::max<size_t>(16, static_cast<size_t>(rate * seconds_per_point));
    // Pre-drawn Poisson schedule (absolute offsets, so submitter lag never
    // compresses later arrivals).
    Rng arrival_rng(101 + point_idx);
    std::vector<double> due_s(n);
    double t_offset = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double u = arrival_rng.Uniform();
      t_offset += -std::log(1.0 - std::min(u, 0.999999)) / rate;
      due_s[i] = t_offset;
    }

    PointResult point;
    point.offered_qps = rate;
    {
      QueryServer server(db, &tree.value(), make_options(false));
      // Warm the cache outside the measured window (steady-state serving).
      run_closed_loop(server, pool.size(), window);

      std::vector<std::future<QueryOutcome>> futures(n);
      Timer t;
      const auto start = std::chrono::steady_clock::now();
      for (size_t i = 0; i < n; ++i) {
        std::this_thread::sleep_until(
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(due_s[i])));
        QuerySpec spec = pool[i % pool.size()];
        spec.deadline_ms = deadline_ms;
        futures[i] = server.Submit(std::move(spec));
      }
      for (auto& f : futures) {
        const QueryOutcome outcome = f.get();
        if (outcome.status.ok()) {
          ++point.ok;
        } else if (outcome.status.code() == StatusCode::kDeadlineExceeded) {
          ++point.deadline_exceeded;
        } else {
          ++point.rejected;
        }
      }
      const double elapsed = t.Seconds();
      point.goodput_qps = static_cast<double>(point.ok) / elapsed;
      server.Stop();
      point.stats = server.Stats();
      point.p99_ms = point.stats.latency_micros.Quantile(0.99) / 1000.0;
      // The warm-up rode through the same server: subtract it from nothing —
      // it completed before the window and only shifts counters, which the
      // ledger check below accounts for.
      UST_CHECK(point.stats.submitted ==
                point.stats.admitted + point.stats.rejected);
      UST_CHECK(point.stats.rejected == point.stats.rejected_queue_full +
                                            point.stats.rejected_shed +
                                            point.stats.rejected_draining);
      UST_CHECK(point.stats.admitted == point.stats.completed);
    }
    std::printf(
        "# x%.2f offered=%.1f qps -> goodput=%.1f qps ok=%llu expired=%llu "
        "rejected=%llu degraded=%llu p99=%.2fms regime=%zu\n",
        multiples[point_idx], point.offered_qps, point.goodput_qps,
        static_cast<unsigned long long>(point.ok),
        static_cast<unsigned long long>(point.deadline_exceeded),
        static_cast<unsigned long long>(point.rejected),
        static_cast<unsigned long long>(point.stats.degraded_requests),
        point.p99_ms, point.stats.overload_regime);
    points.push_back(std::move(point));
  }

  double peak_goodput = 0.0;
  for (const PointResult& point : points) {
    peak_goodput = std::max(peak_goodput, point.goodput_qps);
  }
  const PointResult& saturated = points.back();
  const double goodput_saturated_ratio =
      peak_goodput > 0.0 ? saturated.goodput_qps / peak_goodput : 0.0;

  CsvTable table({"multiple", "offered_qps", "goodput_qps", "ok", "expired",
                  "rejected", "degraded", "p99_ms"});
  for (size_t i = 0; i < points.size(); ++i) {
    const PointResult& point = points[i];
    table.AddRow({std::to_string(multiples[i]),
                  std::to_string(point.offered_qps),
                  std::to_string(point.goodput_qps), std::to_string(point.ok),
                  std::to_string(point.deadline_exceeded),
                  std::to_string(point.rejected),
                  std::to_string(point.stats.degraded_requests),
                  std::to_string(point.p99_ms)});
  }
  table.Print(std::cout, "micro_overload sweep");
  std::printf("# peak=%.1f qps saturated=%.1f qps ratio=%.3f\n", peak_goodput,
              saturated.goodput_qps, goodput_saturated_ratio);

  bench::JsonWriter json;
  json.Add("benchmark", std::string("micro_overload"));
  json.Add("num_states", static_cast<double>(config.num_states));
  json.Add("num_objects", static_cast<double>(config.num_objects));
  json.Add("num_worlds", static_cast<double>(num_worlds));
  json.Add("pool", static_cast<double>(pool_size));
  json.Add("num_intervals", static_cast<double>(num_intervals));
  json.Add("threads", static_cast<double>(threads));
  json.Add("lanes", static_cast<double>(lanes));
  json.Add("max_batch_size", static_cast<double>(max_batch));
  json.Add("max_batch_delay_ms", delay_ms);
  json.Add("queue_capacity", static_cast<double>(queue_capacity));
  json.Add("deadline_ms", deadline_ms);
  json.Add("seconds_per_point", seconds_per_point);
  json.Add("num_multiples", static_cast<double>(multiples.size()));
  json.Add("max_multiple", multiples.back());
  json.Add("saturation_qps", saturation_qps);
  json.Add("peak_goodput_qps", peak_goodput);
  json.Add("goodput_saturated_qps", saturated.goodput_qps);
  json.Add("goodput_saturated_ratio", goodput_saturated_ratio);
  json.Add("p99_overload_ms", saturated.p99_ms);
  json.Add("expired_total",
           static_cast<double>(saturated.stats.expired_in_queue +
                               saturated.stats.expired_on_lane));
  json.Add("shed_total", static_cast<double>(saturated.stats.rejected_shed));
  json.Add("degraded_total",
           static_cast<double>(saturated.stats.degraded_requests));
  if (!json.WriteFile(json_out)) {
    std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
    return 1;
  }
  std::printf("# wrote %s\n", json_out.c_str());

  // The headline robustness gate, in-binary so a collapse fails loudly even
  // without the check_bench band: goodput past saturation stays flat.
  UST_CHECK(goodput_saturated_ratio >= min_ratio);
  return 0;
}
