// Figure 7: varying the average branching factor b of the network.
// Paper setting: b in {6, 8, 10}; everything else default.
// Expected shape: all runtimes grow with b (denser matrices); |I(q)| grows.
#include "bench_common.h"

using namespace ust;
using namespace ust::bench;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const size_t states = flags.GetInt("states", 50000);
  const size_t objects = flags.GetInt("objects", 400);
  const size_t samples = flags.GetInt("samples", 1000);
  const size_t queries = flags.GetInt("queries", 5);
  const size_t interval = flags.GetInt("interval", 10);

  PrintConfig("Figure 7: varying the branching factor b", flags,
              "states=" + std::to_string(states) +
                  " objects=" + std::to_string(objects) +
                  " samples=" + std::to_string(samples) +
                  " queries=" + std::to_string(queries));
  CsvTable table({"branching", "ts_s", "forall_s", "exists_s", "candidates",
                  "influencers"});
  for (double b : {6.0, 8.0, 10.0}) {
    SyntheticConfig config;
    config.num_states = states;
    config.branching = b;
    config.num_objects = objects;
    config.lifetime = 100;
    config.obs_interval = 10;
    config.horizon = 1000;
    config.seed = 7;
    auto world = GenerateSyntheticWorld(config);
    UST_CHECK(world.ok());
    PnnCell cell =
        RunPnnExperiment(*world.value().db, queries, interval, samples, 43);
    table.AddRow({b, cell.ts_seconds, cell.forall_seconds, cell.exists_seconds,
                  cell.avg_candidates, cell.avg_influencers});
  }
  table.Print(std::cout, "Figure 7 series");
  return 0;
}
