// Microbenchmarks of the R*-tree substrate: insertion and window queries
// over (x, y, t) boxes shaped like UST-tree diamond MBRs.
#include <benchmark/benchmark.h>

#include "index/rstar_tree.h"
#include "util/check.h"
#include "util/rng.h"

namespace {

using namespace ust;

Rect3 DiamondLikeBox(Rng& rng) {
  double x = rng.Uniform(), y = rng.Uniform(), t = rng.Uniform(0, 1000);
  Rect3 r;
  r.lo = {x, y, t};
  r.hi = {x + rng.Uniform(0.005, 0.05), y + rng.Uniform(0.005, 0.05),
          t + 10.0};
  return r;
}

void BM_Insert(benchmark::State& state) {
  Rng rng(1);
  RStarTree tree;
  uint64_t payload = 0;
  for (auto _ : state) {
    tree.Insert(DiamondLikeBox(rng), payload++);
  }
  state.SetItemsProcessed(static_cast<int64_t>(payload));
}
BENCHMARK(BM_Insert);

void BM_TimeSlabQuery(benchmark::State& state) {
  Rng rng(2);
  RStarTree tree;
  for (int i = 0; i < state.range(0); ++i) {
    tree.Insert(DiamondLikeBox(rng), static_cast<uint64_t>(i));
  }
  Rect2 space = MakeRect2(0, 0, 1.1, 1.1);
  for (auto _ : state) {
    double t0 = rng.Uniform(0, 990);
    auto hits = tree.Query(WithTimeInterval(space, t0, t0 + 10));
    benchmark::DoNotOptimize(hits);
  }
  state.SetLabel(std::to_string(state.range(0)) + " entries");
}
BENCHMARK(BM_TimeSlabQuery)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void BM_SpatialWindowQuery(benchmark::State& state) {
  Rng rng(3);
  RStarTree tree;
  for (int i = 0; i < 50000; ++i) {
    tree.Insert(DiamondLikeBox(rng), static_cast<uint64_t>(i));
  }
  for (auto _ : state) {
    double x = rng.Uniform(), y = rng.Uniform();
    auto hits = tree.Query(
        WithTimeInterval(MakeRect2(x, y, x + 0.05, y + 0.05), 0, 1000));
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_SpatialWindowQuery)->Unit(benchmark::kMicrosecond);

void BM_InsertNoReinsert(benchmark::State& state) {
  Rng rng(4);
  RStarTree::Options options;
  options.forced_reinsert = false;
  RStarTree tree(options);
  uint64_t payload = 0;
  for (auto _ : state) {
    tree.Insert(DiamondLikeBox(rng), payload++);
  }
}
BENCHMARK(BM_InsertNoReinsert);

}  // namespace
