// Figure 9: varying |D| on real data (taxi trajectories).
// Paper setting: map-matched T-Drive taxis on a 68902-state Beijing graph,
// l = 8, |D| in {1k, 10k, 20k}. We substitute a center-dense road network
// with simulated taxi trips and a learned transition matrix (DESIGN.md §2).
// Expected shape: same growth as Figure 8 but with MORE candidates and
// influencers at equal |D| (smaller, denser state space).
#include "bench_common.h"
#include "gen/roadnet.h"

using namespace ust;
using namespace ust::bench;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const size_t states = flags.GetInt("states", 8000);
  const size_t samples = flags.GetInt("samples", 1000);
  const size_t queries = flags.GetInt("queries", 5);
  const size_t interval = flags.GetInt("interval", 10);
  std::vector<int64_t> sweep = {flags.GetInt("objects1", 100),
                                flags.GetInt("objects2", 1000),
                                flags.GetInt("objects3", 2000)};

  PrintConfig("Figure 9: real data (road-network substitute), varying |D|",
              flags,
              "states=" + std::to_string(states) + " l=8 samples=" +
                  std::to_string(samples) +
                  " queries=" + std::to_string(queries));
  CsvTable table({"objects", "ts_s", "forall_s", "exists_s", "candidates",
                  "influencers"});
  for (int64_t n : sweep) {
    RoadnetConfig config;
    config.num_states = states;
    config.num_objects = static_cast<size_t>(n);
    config.num_training_trips = 300;
    config.lifetime = 100;
    config.obs_interval = 8;
    config.horizon = 1000;
    config.seed = 11;
    auto world = GenerateRoadnetWorld(config);
    UST_CHECK(world.ok());
    PnnCell cell =
        RunPnnExperiment(*world.value().db, queries, interval, samples, 45);
    table.AddRow({static_cast<double>(n), cell.ts_seconds, cell.forall_seconds,
                  cell.exists_seconds, cell.avg_candidates,
                  cell.avg_influencers});
  }
  table.Print(std::cout, "Figure 9 series");
  return 0;
}
