// Figure 6: varying the number of states |S|.
// Paper series (left): CPU time of TS (model adaptation), FA (P∀NNQ
// sampling) and EX (P∃NNQ sampling); (right): |C(q)| and |I(q)|.
// Paper setting: |S| in {10k, 100k, 500k}, b=8, |D|=10k, |T|=10, 10k samples.
// Scaled default: |D|=400, 1000 samples, 5 queries; |S| sweep kept.
// Expected shape: TS grows sublinearly in |S|; |C|/|I| shrink; FA/EX shrink.
#include "bench_common.h"

using namespace ust;
using namespace ust::bench;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const size_t objects = flags.GetInt("objects", 400);
  const size_t samples = flags.GetInt("samples", 1000);
  const size_t queries = flags.GetInt("queries", 5);
  const size_t interval = flags.GetInt("interval", 10);
  std::vector<int64_t> sweep = {
      flags.GetInt("states1", 10000), flags.GetInt("states2", 100000),
      flags.GetInt("states3", 500000)};

  PrintConfig("Figure 6: varying the number of states N = |S|", flags,
              "objects=" + std::to_string(objects) +
                  " samples=" + std::to_string(samples) +
                  " queries=" + std::to_string(queries) + " b=8 |T|=" +
                  std::to_string(interval));
  CsvTable table({"states", "ts_s", "forall_s", "exists_s", "candidates",
                  "influencers"});
  for (int64_t n : sweep) {
    SyntheticConfig config;
    config.num_states = static_cast<size_t>(n);
    config.branching = 8.0;
    config.num_objects = objects;
    config.lifetime = 100;
    config.obs_interval = 10;
    config.horizon = 1000;
    config.seed = 7;
    auto world = GenerateSyntheticWorld(config);
    UST_CHECK(world.ok());
    PnnCell cell =
        RunPnnExperiment(*world.value().db, queries, interval, samples, 42);
    table.AddRow({static_cast<double>(n), cell.ts_seconds, cell.forall_seconds,
                  cell.exists_seconds, cell.avg_candidates,
                  cell.avg_influencers});
  }
  table.Print(std::cout, "Figure 6 series");
  return 0;
}
