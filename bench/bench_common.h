// Shared machinery of the figure-reproduction harnesses. Each fig* binary
// re-runs one experiment of Section 7 and prints the paper's series as CSV.
// Defaults are scaled for a laptop-class single core; flags restore paper
// scale (see DESIGN.md for the mapping).
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "gen/synthetic.h"
#include "gen/workload.h"
#include "index/ust_tree.h"
#include "query/engine.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/timer.h"

namespace ust::bench {

/// \brief Result of one P∀NNQ / P∃NNQ experiment cell (the TS / FA / EX
/// phases of Section 7.1 plus the pruning statistics of Figure 6-9).
struct PnnCell {
  double ts_seconds = 0;        ///< posterior-model construction (whole DB)
  double forall_seconds = 0;    ///< P∀NNQ sampling, summed over queries
  double exists_seconds = 0;    ///< P∃NNQ sampling, summed over queries
  double avg_candidates = 0;    ///< mean |C(q)| over queries
  double avg_influencers = 0;   ///< mean |I(q)| over queries
};

/// Run `num_queries` random-state queries against `db` and measure the
/// TS / FA / EX phases. The UST-tree is built outside the timings (it is the
/// paper's precomputed index).
inline PnnCell RunPnnExperiment(const TrajectoryDatabase& db,
                                size_t num_queries, size_t interval_length,
                                size_t num_worlds, uint64_t seed) {
  PnnCell cell;
  auto tree = UstTree::Build(db);
  UST_CHECK(tree.ok());
  QueryEngine engine(db, &tree.value());

  db.InvalidatePosteriors();
  Timer ts_timer;
  UST_CHECK(db.EnsureAllPosteriors().ok());
  cell.ts_seconds = ts_timer.Seconds();

  Rng rng(seed);
  TimeInterval T = BusiestInterval(db, interval_length);
  MonteCarloOptions options;
  options.num_worlds = num_worlds;
  for (size_t i = 0; i < num_queries; ++i) {
    QueryTrajectory q = RandomQueryState(db.space(), rng);
    options.seed = seed * 1000 + i;
    Timer fa_timer;
    auto forall = engine.Forall(q, T, 0.0, options);
    cell.forall_seconds += fa_timer.Seconds();
    UST_CHECK(forall.ok());
    Timer ex_timer;
    auto exists = engine.Exists(q, T, 0.0, options);
    cell.exists_seconds += ex_timer.Seconds();
    UST_CHECK(exists.ok());
    cell.avg_candidates += static_cast<double>(forall.value().num_candidates);
    cell.avg_influencers +=
        static_cast<double>(forall.value().num_influencers);
  }
  cell.avg_candidates /= static_cast<double>(num_queries);
  cell.avg_influencers /= static_cast<double>(num_queries);
  return cell;
}

/// Print the scaled-vs-paper configuration banner every harness emits.
inline void PrintConfig(const std::string& figure, const Flags& flags,
                        const std::string& details) {
  std::printf("# %s\n", figure.c_str());
  std::printf("# config: %s\n", details.c_str());
  std::printf("# (defaults are scaled for CI; see DESIGN.md section 2 for "
              "the paper-scale flags)\n");
  (void)flags;
}

}  // namespace ust::bench
