// Ablation: the Lemma-3 Markov-assumption pipeline (Section 4.2) vs the
// sampling approach. The paper shows the per-pair adapted model loses the
// Markov property, so re-imposing it yields an approximation; this harness
// measures that approximation error against exhaustive enumeration and
// compares it with the sampler at 10^4 worlds.
#include <cmath>

#include "bench_common.h"
#include "query/exact.h"
#include "query/markov_approx.h"
#include "util/stats.h"

using namespace ust;
using namespace ust::bench;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const size_t states = flags.GetInt("states", 800);
  const size_t objects = flags.GetInt("objects", 4);
  const size_t cases = flags.GetInt("cases", 20);
  const size_t sa_worlds = flags.GetInt("sa_worlds", 10000);

  PrintConfig("Ablation: Markov-assumption P-forall-NN vs sampling", flags,
              "states=" + std::to_string(states) + " objects=" +
                  std::to_string(objects) + " cases=" + std::to_string(cases));

  CsvTable table({"case", "exact", "markov_approx", "sampling"});
  std::vector<double> ma_err, sa_err;
  Rng rng(3);
  size_t produced = 0;
  for (uint64_t seed = 0; produced < cases && seed < cases * 20; ++seed) {
    SyntheticConfig config;
    config.num_states = states;
    config.num_objects = objects;
    config.lifetime = 8;
    config.obs_interval = 4;
    config.lag = 0.75;  // modest slack keeps per-object worlds enumerable
    config.horizon = 8;
    config.seed = 100 + seed;
    auto world = GenerateSyntheticWorld(config);
    UST_CHECK(world.ok());
    const TrajectoryDatabase& db = *world.value().db;
    // Short window so exhaustive enumeration stays feasible as the ground
    // truth (the per-object world count is exponential in |T|).
    TimeInterval T{3, 5};
    std::vector<ObjectId> ids = db.AliveThroughout(T.start, T.end);
    if (ids.size() < 3) continue;
    // Informative queries sit between objects: aim at the centroid of two
    // random objects' positions at the middle of T.
    auto posterior_a = db.object(ids[rng.UniformInt(ids.size())]).Posterior();
    auto posterior_b = db.object(ids[rng.UniformInt(ids.size())]).Posterior();
    UST_CHECK(posterior_a.ok() && posterior_b.ok());
    const Tic mid = (T.start + T.end) / 2;
    Rng qrng(seed);
    Point2 pa = db.space().coord(posterior_a.value()->SampleAt(mid, qrng));
    Point2 pb = db.space().coord(posterior_b.value()->SampleAt(mid, qrng));
    QueryTrajectory q =
        QueryTrajectory::FromPoint({(pa.x + pb.x) / 2, (pa.y + pb.y) / 2});
    auto exact = ExactPnnByEnumeration(db, ids, q, T, 1, 3000000);
    if (!exact.ok()) continue;  // too many worlds to enumerate: skip
    // Pick the object with the most informative exact probability.
    size_t best = 0;
    double best_gap = -1.0;
    for (size_t i = 0; i < ids.size(); ++i) {
      double p = exact.value()[i].forall_prob;
      double gap = std::min(p, 1.0 - p);
      if (gap > best_gap) {
        best_gap = gap;
        best = i;
      }
    }
    if (best_gap < 0.02) continue;  // degenerate case: nothing to compare
    std::vector<ObjectId> competitors;
    for (ObjectId id : ids) {
      if (id != ids[best]) competitors.push_back(id);
    }
    auto ma = ApproximateForallNnMarkov(db, ids[best], competitors, q, T);
    UST_CHECK(ma.ok());
    MonteCarloOptions options;
    options.num_worlds = sa_worlds;
    options.seed = seed;
    auto sa = EstimatePnn(db, ids, {ids[best]}, q, T, options);
    UST_CHECK(sa.ok());
    const double truth = exact.value()[best].forall_prob;
    table.AddRow({static_cast<double>(produced), truth, ma.value(),
                  sa.value()[0].forall_prob});
    ma_err.push_back(ma.value() - truth);
    sa_err.push_back(sa.value()[0].forall_prob - truth);
    ++produced;
  }
  table.Print(std::cout, "Markov-assumption ablation (exact by enumeration)");
  std::printf("# produced %zu informative cases\n", produced);
  if (!ma_err.empty()) {
    auto abs_stats = [](const std::vector<double>& errs) {
      double mean = 0.0, max = 0.0;
      for (double e : errs) {
        mean += std::abs(e);
        max = std::max(max, std::abs(e));
      }
      return std::make_pair(mean / static_cast<double>(errs.size()), max);
    };
    auto [ma_mean, ma_max] = abs_stats(ma_err);
    auto [sa_mean, sa_max] = abs_stats(sa_err);
    std::printf("# abs error: markov_approx mean %.2e max %.2e | sampling "
                "mean %.2e max %.2e\n",
                ma_mean, ma_max, sa_mean, sa_max);
    std::printf("# (the Markov-assumption error vanishes when an observation "
                "tic inside T collapses o's chain; adversarial instances "
                "reach ~5e-3, see markov_approx_test)\n");
  }
  std::printf("# note: with one competitor the pipeline is exact (Lemma 2); "
              "the error here is purely the re-imposed Markov assumption\n");
  return 0;
}
