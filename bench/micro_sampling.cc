// Microbenchmarks of trajectory sampling and the per-world NN kernel: the
// inner loops of the Monte-Carlo estimators.
#include <benchmark/benchmark.h>

#include "gen/synthetic.h"
#include "gen/workload.h"
#include "query/monte_carlo.h"
#include "util/check.h"
#include "util/rng.h"

namespace {

using namespace ust;

struct SamplingFixture {
  SyntheticWorld world;
  TimeInterval T{0, 0};
  SamplingFixture() {
    SyntheticConfig config;
    config.num_states = 20000;
    config.num_objects = 64;
    config.lifetime = 96;
    config.obs_interval = 12;
    config.horizon = 120;
    config.seed = 6;
    auto result = GenerateSyntheticWorld(config);
    UST_CHECK(result.ok());
    world = result.MoveValue();
    UST_CHECK(world.db->EnsureAllPosteriors().ok());
    T = BusiestInterval(*world.db, 10);
  }
};

SamplingFixture& Fixture() {
  static SamplingFixture fixture;
  return fixture;
}

void BM_SampleFullTrajectory(benchmark::State& state) {
  auto& fixture = Fixture();
  auto posterior = fixture.world.db->object(0).Posterior();
  UST_CHECK(posterior.ok());
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(posterior.value()->SampleTrajectory(rng));
  }
}
BENCHMARK(BM_SampleFullTrajectory);

void BM_SampleWindow(benchmark::State& state) {
  auto& fixture = Fixture();
  // Pick an object alive over T.
  auto alive = fixture.world.db->AliveThroughout(fixture.T.start,
                                                 fixture.T.end);
  UST_CHECK(!alive.empty());
  auto posterior = fixture.world.db->object(alive[0]).Posterior();
  UST_CHECK(posterior.ok());
  Rng rng(2);
  for (auto _ : state) {
    auto traj =
        posterior.value()->SampleWindow(fixture.T.start, fixture.T.end, rng);
    UST_CHECK(traj.ok());
    benchmark::DoNotOptimize(traj.value());
  }
}
BENCHMARK(BM_SampleWindow);

void BM_NnTable(benchmark::State& state) {
  auto& fixture = Fixture();
  const auto& db = *fixture.world.db;
  auto ids = db.AliveSometime(fixture.T.start, fixture.T.end);
  UST_CHECK(!ids.empty());
  Rng rng(3);
  QueryTrajectory q = RandomQueryState(db.space(), rng);
  MonteCarloOptions options;
  options.num_worlds = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto table = ComputeNnTable(db, ids, q, fixture.T, options);
    UST_CHECK(table.ok());
    benchmark::DoNotOptimize(table.value());
  }
  state.SetLabel(std::to_string(ids.size()) + " participants");
}
BENCHMARK(BM_NnTable)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_ForallProbFromTable(benchmark::State& state) {
  auto& fixture = Fixture();
  const auto& db = *fixture.world.db;
  auto ids = db.AliveSometime(fixture.T.start, fixture.T.end);
  Rng rng(4);
  QueryTrajectory q = RandomQueryState(db.space(), rng);
  MonteCarloOptions options;
  options.num_worlds = 1000;
  auto table = ComputeNnTable(db, ids, q, fixture.T, options);
  UST_CHECK(table.ok());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table.value().ForallProb(i++ % ids.size()));
  }
}
BENCHMARK(BM_ForallProbFromTable);

}  // namespace
