// Microbenchmark of the Monte-Carlo hot path: posterior adaptation,
// forward propagation, trajectory sampling and full possible-world drawing
// (the inner loops of ComputeNnTable / EstimatePnn).
//
// Standalone harness (no google-benchmark): prints a CSV summary and emits
// BENCH_sampling.json so the perf trajectory of this code is tracked
// machine-readably across PRs.
//
// Flags (defaults = the workload perf targets are quoted against):
//   --states=20000 --objects=64 --lifetime=96 --obs_interval=12
//   --horizon=120 --interval=10 --worlds=1000 --world_rounds=3
//   --threads=1 --json_out=BENCH_sampling.json
//
// --threads=N shards the adaptation over objects and the world loop over
// fixed 512-world chunks; results are bit-identical at any thread count
// (DESIGN.md section 4), so the metric stays comparable across N.
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "bench_json.h"
#include "gen/synthetic.h"
#include "gen/workload.h"
#include "model/adaptation.h"
#include "query/monte_carlo.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace ust;
using namespace ust::bench;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  SyntheticConfig config;
  config.num_states = flags.GetInt("states", 20000);
  config.num_objects = flags.GetInt("objects", 64);
  config.lifetime = static_cast<Tic>(flags.GetInt("lifetime", 96));
  config.obs_interval = static_cast<Tic>(flags.GetInt("obs_interval", 12));
  config.horizon = static_cast<Tic>(flags.GetInt("horizon", 120));
  config.seed = 6;
  const size_t interval_length = flags.GetInt("interval", 10);
  const size_t num_worlds = flags.GetInt("worlds", 1000);
  const size_t world_rounds = flags.GetInt("world_rounds", 3);
  const int threads = flags.GetInt("threads", 1);
  const std::string json_out =
      flags.GetString("json_out", "BENCH_sampling.json");
  ThreadPool pool(threads);

  PrintConfig("micro_sampling: Monte-Carlo hot path", flags,
              "states=" + std::to_string(config.num_states) +
                  " objects=" + std::to_string(config.num_objects) +
                  " worlds=" + std::to_string(num_worlds));

  auto world_result = GenerateSyntheticWorld(config);
  UST_CHECK(world_result.ok());
  SyntheticWorld world = world_result.MoveValue();
  TrajectoryDatabase& db = *world.db;

  // ---- Adaptation: posterior construction for the whole database. ----
  db.InvalidatePosteriors();
  Timer adapt_timer;
  UST_CHECK(db.EnsureAllPosteriors(&pool).ok());
  const double adapt_seconds = adapt_timer.Seconds();

  // ---- Propagation: forward-filter marginals (the per-tic propagate). ----
  double propagate_seconds = 0.0;
  {
    Timer t;
    for (ObjectId id = 0; id < db.size(); ++id) {
      const UncertainObject& obj = db.object(id);
      auto marginals = ForwardFilterMarginals(obj.matrix(), obj.observations());
      UST_CHECK(marginals.ok());
    }
    propagate_seconds = t.Seconds();
  }

  // ---- Trajectory sampling throughput (single object, full span). ----
  const TimeInterval T = BusiestInterval(db, interval_length);
  double trajectories_per_second = 0.0;
  {
    auto alive = db.AliveThroughout(T.start, T.end);
    UST_CHECK(!alive.empty());
    auto posterior = db.object(alive[0]).Posterior();
    UST_CHECK(posterior.ok());
    Rng rng(2);
    const size_t reps = 20000;
    Timer t;
    for (size_t i = 0; i < reps; ++i) {
      auto traj = posterior.value()->SampleWindow(T.start, T.end, rng);
      UST_CHECK(traj.ok());
    }
    trajectories_per_second = static_cast<double>(reps) / t.Seconds();
  }

  // ---- Worlds/sec: the ComputeNnTable inner loop. ----
  auto ids = db.AliveSometime(T.start, T.end);
  UST_CHECK(!ids.empty());
  Rng qrng(3);
  QueryTrajectory q = RandomQueryState(db.space(), qrng);
  MonteCarloOptions options;
  options.num_worlds = num_worlds;
  double worlds_per_second = 0.0;
  {
    // Warmup: builds the per-posterior alias tables (amortized across all
    // queries in real use, so kept outside the timed rounds).
    MonteCarloOptions warmup = options;
    warmup.num_worlds = 10;
    UST_CHECK(ComputeNnTable(db, ids, q, T, warmup).ok());
    Timer t;
    for (size_t round = 0; round < world_rounds; ++round) {
      options.seed = 42 + round;
      auto table = ComputeNnTable(db, ids, q, T, options, &pool);
      UST_CHECK(table.ok());
    }
    worlds_per_second =
        static_cast<double>(num_worlds * world_rounds) / t.Seconds();
  }

  CsvTable table({"metric", "value"});
  table.AddRow({"adapt_seconds", std::to_string(adapt_seconds)});
  table.AddRow({"propagate_seconds", std::to_string(propagate_seconds)});
  table.AddRow(
      {"trajectories_per_second", std::to_string(trajectories_per_second)});
  table.AddRow({"worlds_per_second", std::to_string(worlds_per_second)});
  table.Print(std::cout, "micro_sampling results");

  bench::JsonWriter json;
  json.Add("benchmark", std::string("micro_sampling"));
  json.Add("num_states", static_cast<double>(config.num_states));
  json.Add("num_objects", static_cast<double>(config.num_objects));
  json.Add("num_worlds", static_cast<double>(num_worlds));
  json.Add("num_participants", static_cast<double>(ids.size()));
  json.Add("interval_length", static_cast<double>(interval_length));
  json.Add("threads", static_cast<double>(threads));
  json.Add("adapt_seconds", adapt_seconds);
  json.Add("propagate_seconds", propagate_seconds);
  json.Add("trajectories_per_second", trajectories_per_second);
  json.Add("worlds_per_second", worlds_per_second);
  if (!json.WriteFile(json_out)) {
    std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
    return 1;
  }
  std::printf("# wrote %s\n", json_out.c_str());
  return 0;
}
