// Serving-tier microbenchmark: the same P∀NNQ request stream evaluated
// three ways —
//
//   cold_session : the no-server pattern for independent callers — every
//                  request builds its own QuerySession from a cold database
//                  (posteriors invalidated), paying adaptation, sampler
//                  warm-up and slab construction per request;
//   direct_runall: one prepared QuerySession evaluating the whole stream as
//                  a single RunAll batch — the PR 2 upper bound (no
//                  queueing, no batching window);
//   server       : QueryServer — client threads submit single specs, the
//                  dispatcher micro-batches them through the epoch-keyed
//                  session cache onto the execution-lane pool; per-request
//                  latency comes from the server's own histograms.
//
// The server mode runs twice: at 1 lane and at --lanes lanes, over a
// *mixed-interval* stream (specs round-robin --intervals distinct query
// intervals, so every micro-batch splits into that many lane jobs). At one
// lane those jobs serialize; at N lanes they execute concurrently — the
// lane_speedup column is the tentpole metric of PR 4 (≈1 on a single
// hardware core, ≥1.5 expected on multi-core).
//
// The *skewed* phase (PR 5) measures the morsel scheduler: interval
// popularity follows a Zipf-ish law (weight of interval k ∝ (k+1)^-skew),
// so one hot (epoch, interval) group dominates every batch. The stream runs
// at --lanes lanes twice — group-granularity scheduling (steal=off: the hot
// group serializes on one lane while the others idle) vs morsel scheduling
// with work stealing (steal=on: idle lanes steal half-ranges of the hot
// group) — and reports p99_skew_nosteal vs p99_skew_steal plus their ratio
// `steal_speedup` (the tentpole metric of PR 5: ≈1 on a single hardware
// core, ≥1.3 expected on multi-core).
//
// The *adaptive* phase (PR 7, --adaptive {on,off}) serves the mixed stream
// re-cast as tau = 0.5 threshold decisions under an oversized
// --adaptive_worlds cap, fixed sampling vs the sequential stopping rule
// (DESIGN.md section 8). Both runs must reproduce a prepared-session RunAll
// reference bit for bit — worlds_used and early_stopped included, pinning
// the stop decision across the queue, the lanes and any morsel/steal
// schedule — and the ServerStats early_stops / worlds_saved /
// worlds_sampled counters must account for exactly the observed savings.
// Emits qps_adaptive_on / qps_adaptive_off / adaptive_speedup /
// mean_worlds_used.
//
// All server outcomes are checked bit-identical to direct_runall (the PR 2
// determinism contract extended across the admission queue, the lane pool
// and any morsel/steal schedule). Emits BENCH_server.json (qps of each
// mode, speedups, p50/p99 latency per lane count and per skew scheduler) so
// serving throughput is tracked machine-readably across PRs.
//
// Flags (defaults sized for a single CI core):
//   --states=10000 --objects=48 --lifetime=96 --obs_interval=12
//   --horizon=120 --interval=10 --intervals=2 --worlds=500 --queries=50
//   --threads=1 --lanes=2 --clients=4 --batch=16 --delay_ms=2
//   --skew=1.5 --morsel=4 --adaptive=on --adaptive_worlds=8192
//   --json_out=BENCH_server.json --trace=<path>
//
// The *traced* phase (PR 8) re-runs the mixed stream at --lanes lanes with
// the event tracer recording (ServerOptions::trace): qps_trace_on and the
// ratio trace_overhead = qps_server / qps_trace_on gate the cost of a live
// probe (≤10%; tracing-off probes are a single branch and are covered by
// the qps_server band itself). --trace=<path> additionally exports the
// recorded events as Chrome trace_event JSON (chrome://tracing,
// ui.perfetto.dev).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "gen/synthetic.h"
#include "gen/workload.h"
#include "index/ust_tree.h"
#include "query/session.h"
#include "server/query_server.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/timer.h"
#include "util/trace.h"

using namespace ust;
using namespace ust::bench;

namespace {

// Outcomes must agree bit for bit across modes (same epoch, same specs) —
// including the adaptive stop decision: worlds_used and early_stopped are
// part of the determinism contract, not just the estimates.
void CheckSameOutcome(const QueryOutcome& a, const QueryOutcome& b) {
  UST_CHECK(a.status.ok() && b.status.ok());
  UST_CHECK(a.executor == b.executor);
  UST_CHECK(a.worlds_used == b.worlds_used);
  UST_CHECK(a.early_stopped == b.early_stopped);
  UST_CHECK(a.pnn.results.size() == b.pnn.results.size());
  for (size_t j = 0; j < a.pnn.results.size(); ++j) {
    UST_CHECK(a.pnn.results[j].object == b.pnn.results[j].object);
    UST_CHECK(a.pnn.results[j].prob == b.pnn.results[j].prob);
  }
}

struct ServerRun {
  double seconds = 0.0;
  ServerStats stats;
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  SyntheticConfig config;
  config.num_states = flags.GetInt("states", 10000);
  config.num_objects = flags.GetInt("objects", 48);
  config.lifetime = static_cast<Tic>(flags.GetInt("lifetime", 96));
  config.obs_interval = static_cast<Tic>(flags.GetInt("obs_interval", 12));
  config.horizon = static_cast<Tic>(flags.GetInt("horizon", 120));
  config.seed = 6;
  const size_t interval_length = flags.GetInt("interval", 10);
  const size_t num_intervals = std::max<size_t>(1, flags.GetInt("intervals", 2));
  const size_t num_worlds = flags.GetInt("worlds", 500);
  const size_t num_queries = flags.GetInt("queries", 50);
  const int threads = flags.GetInt("threads", 1);
  const int lanes = std::max(1, static_cast<int>(flags.GetInt("lanes", 2)));
  const int clients = static_cast<int>(flags.GetInt("clients", 4));
  const size_t max_batch = flags.GetInt("batch", 16);
  const double delay_ms = flags.GetDouble("delay_ms", 2.0);
  const double skew = flags.GetDouble("skew", 1.5);
  const size_t morsel_specs = std::max<size_t>(1, flags.GetInt("morsel", 4));
  const std::string adaptive_mode = flags.GetString("adaptive", "on");
  UST_CHECK(adaptive_mode == "on" || adaptive_mode == "off");
  const bool run_adaptive = adaptive_mode == "on";
  const size_t adaptive_worlds =
      static_cast<size_t>(flags.GetInt("adaptive_worlds", 8192));
  const std::string json_out = flags.GetString("json_out", "BENCH_server.json");
  const std::string trace_out = flags.GetString("trace", "");

  PrintConfig("micro_server: serving-tier throughput and latency", flags,
              "states=" + std::to_string(config.num_states) +
                  " objects=" + std::to_string(config.num_objects) +
                  " worlds=" + std::to_string(num_worlds) +
                  " queries=" + std::to_string(num_queries) +
                  " threads=" + std::to_string(threads) +
                  " lanes=" + std::to_string(lanes) +
                  " clients=" + std::to_string(clients));

  auto world_result = GenerateSyntheticWorld(config);
  UST_CHECK(world_result.ok());
  SyntheticWorld world = world_result.MoveValue();
  TrajectoryDatabase& db = *world.db;
  auto tree = UstTree::Build(db);
  UST_CHECK(tree.ok());

  // A mixed-interval request stream: specs round-robin `num_intervals`
  // shifted copies of the busiest interval, so every micro-batch splits into
  // that many (epoch, interval) groups — the workload that serializes at one
  // lane and spreads across the pool at N.
  const TimeInterval T1 = BusiestInterval(db, interval_length);
  const Tic shift = std::max<Tic>(1, static_cast<Tic>(interval_length) / 2);
  std::vector<TimeInterval> intervals;
  intervals.reserve(num_intervals);
  for (size_t k = 0; k < num_intervals; ++k) {
    TimeInterval T = T1;
    const Tic offset = static_cast<Tic>(k) * shift;
    if (T.start >= offset) {
      T.start -= offset;
      T.end -= offset;
    } else {
      T.start += offset;
      T.end += offset;
    }
    UST_CHECK(k == 0 || !(T == intervals.front()));
    intervals.push_back(T);
  }
  Rng qrng(3);
  std::vector<QuerySpec> specs;
  specs.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    QuerySpec spec;
    spec.kind = QueryKind::kForall;
    spec.q = RandomQueryState(db.space(), qrng);
    spec.T = intervals[i % num_intervals];
    spec.tau = 0.0;
    spec.mc.num_worlds = num_worlds;
    spec.mc.seed = 1000 + i;
    specs.push_back(spec);
  }

  SessionOptions session_options;
  session_options.threads = threads;

  // ---- Mode 1: per-request cold sessions (every caller on its own). ----
  double cold_seconds = 0.0;
  std::vector<QueryOutcome> cold_results(num_queries);
  {
    Timer t;
    for (size_t i = 0; i < num_queries; ++i) {
      db.InvalidatePosteriors();
      QuerySession session(db, &tree.value(), session_options);
      cold_results[i] = session.Run(specs[i]);
    }
    cold_seconds = t.Seconds();
  }

  // ---- Mode 2: one prepared session, the whole stream as one batch. ----
  double prepare_seconds = 0.0;
  double runall_seconds = 0.0;
  std::vector<QueryOutcome> runall_results;
  {
    db.InvalidatePosteriors();
    QuerySession session(db, &tree.value(), session_options);
    Timer prep;
    UST_CHECK(session.Prepare().ok());
    prepare_seconds = prep.Seconds();
    Timer t;
    runall_results = session.RunAll(specs);
    runall_seconds = t.Seconds();
  }

  // ---- Mode 3: QueryServer with concurrent clients, at 1 and N lanes. ----
  // Steady-state serving: posteriors stay warm (mode 2 keeps its Prepare
  // outside the timer for the same reason — the one-time warm-up cost is
  // reported as prepare_seconds, the per-request anti-pattern as
  // qps_cold_session).
  const auto run_server = [&](const std::vector<QuerySpec>& stream,
                              const std::vector<QueryOutcome>& reference,
                              int lane_count, bool steal,
                              int arena_min_uses, bool trace = false) {
    ServerRun run;
    ServerOptions options;
    options.lanes = lane_count;
    options.threads = threads;
    options.max_batch_size = max_batch;
    options.max_batch_delay_ms = delay_ms;
    options.steal = steal;
    options.morsel_specs = morsel_specs;
    options.arena_min_uses = arena_min_uses;
    options.trace = trace;
    // Smoke-scale rings (4096 slots ≈ 230 KB/thread vs 3.7 MB at the 1<<16
    // serving default): the workload emits a few hundred events, and the
    // client threads' first-probe ring allocation would otherwise dominate
    // a ~10 ms run and corrupt the trace_overhead ratio.
    options.trace_events_per_thread = 1 << 12;
    QueryServer server(db, &tree.value(), options);
    const size_t n_stream = stream.size();
    std::vector<std::future<QueryOutcome>> futures(n_stream);
    Timer t;
    std::vector<std::thread> client_threads;
    client_threads.reserve(clients);
    for (int c = 0; c < clients; ++c) {
      client_threads.emplace_back([&, c] {
        for (size_t i = static_cast<size_t>(c); i < n_stream;
             i += static_cast<size_t>(clients)) {
          futures[i] = server.Submit(stream[i]);
        }
      });
    }
    for (auto& thread : client_threads) thread.join();
    std::vector<QueryOutcome> results(n_stream);
    for (size_t i = 0; i < n_stream; ++i) results[i] = futures[i].get();
    run.seconds = t.Seconds();
    run.stats = server.Stats();

    // The serving tier is the batch pipeline behind a queue, a lane pool
    // and (steal mode) any morsel schedule: outcomes must agree bit for
    // bit with the direct RunAll reference.
    for (size_t i = 0; i < n_stream; ++i) {
      CheckSameOutcome(results[i], reference[i]);
    }
    UST_CHECK(run.stats.rejected == 0);
    UST_CHECK(run.stats.completed == n_stream);
    return run;
  };

  // The mixed and skewed phases use unique per-spec seeds, so no arena
  // group ever repeats: arena_min_uses=2 (the serving default) makes them
  // measure exactly what they measured pre-arena.
  const ServerRun lane1 = run_server(specs, runall_results, 1, true, 2);
  const ServerRun laneN =
      lanes > 1 ? run_server(specs, runall_results, lanes, true, 2) : lane1;
  // ---- The trace_overhead pair: tracing on vs off, identical config. ----
  // Outcomes must still match bit for bit (probes observe, never steer),
  // and the qps ratio is gated at 10% (tools/check_bench.py). A 10% band
  // needs a measurement tighter than the mixed stream alone can give: at
  // smoke scale a run is ~10 ms and one flush deadline (~delay_ms) landing
  // differently swings it by 20%. So the overhead pair runs the mixed
  // stream repeated 3x (one deadline is noise against ~30 ms), takes
  // best-of-two per side, and interleaves the runs (traced, plain, traced,
  // plain) so process-lifetime drift penalizes both sides equally.
  std::vector<QuerySpec> overhead_specs;
  std::vector<QueryOutcome> overhead_reference;
  overhead_specs.reserve(3 * specs.size());
  overhead_reference.reserve(3 * specs.size());
  for (int repeat = 0; repeat < 3; ++repeat) {
    for (size_t i = 0; i < specs.size(); ++i) {
      overhead_specs.push_back(specs[i]);
      overhead_reference.push_back(runall_results[i]);
    }
  }
  const ServerRun traced_a =
      run_server(overhead_specs, overhead_reference, lanes, true, 2, true);
  const ServerRun plain_a =
      run_server(overhead_specs, overhead_reference, lanes, true, 2);
  const ServerRun traced_b =
      run_server(overhead_specs, overhead_reference, lanes, true, 2, true);
  const ServerRun plain_b =
      run_server(overhead_specs, overhead_reference, lanes, true, 2);
  const double traced_seconds = std::min(traced_a.seconds, traced_b.seconds);
  const double plain_seconds = std::min(plain_a.seconds, plain_b.seconds);
  // The last traced run's rings survive the trailing untraced run (its
  // probes are disabled, never clearing), so --trace dumps traced_b.
  const ServerRun& lane_traced = traced_b;
  // Cross-check the mixed stream against the cold per-request mode too.
  for (size_t i = 0; i < num_queries; ++i) {
    CheckSameOutcome(runall_results[i], cold_results[i]);
  }

  // ---- Mode 4: the skewed stream — group scheduler vs morsel stealing. --
  // Interval popularity is Zipf-ish (weight of interval k ∝ (k+1)^-skew):
  // most specs land on interval 0, so every micro-batch is dominated by one
  // hot (epoch, interval) group. Without stealing that group serializes on
  // a single lane; with morsel stealing the idle lanes work its tail.
  std::vector<double> cumulative(num_intervals, 0.0);
  double weight_sum = 0.0;
  for (size_t k = 0; k < num_intervals; ++k) {
    weight_sum += std::pow(static_cast<double>(k + 1), -skew);
    cumulative[k] = weight_sum;
  }
  Rng skew_rng(17);
  // 3x the mixed stream's length: the comparison is a p99 ratio, and the
  // tail of a 25-request run is one batch's scheduling accident — a longer
  // stream keeps the gate's ratio band meaningful.
  const size_t num_skew_queries = 3 * num_queries;
  std::vector<QuerySpec> skew_specs;
  skew_specs.reserve(num_skew_queries);
  for (size_t i = 0; i < num_skew_queries; ++i) {
    const double u = skew_rng.Uniform() * weight_sum;
    size_t pick = 0;
    while (pick + 1 < num_intervals && cumulative[pick] < u) ++pick;
    QuerySpec spec;
    spec.kind = QueryKind::kForall;
    spec.q = RandomQueryState(db.space(), qrng);
    spec.T = intervals[pick];
    spec.tau = 0.0;
    spec.mc.num_worlds = num_worlds;
    spec.mc.seed = 5000 + i;
    skew_specs.push_back(spec);
  }
  std::vector<QueryOutcome> skew_reference;
  {
    QuerySession session(db, &tree.value(), session_options);
    UST_CHECK(session.Prepare().ok());
    skew_reference = session.RunAll(skew_specs);
  }
  const ServerRun skew_nosteal =
      run_server(skew_specs, skew_reference, lanes, false, 2);
  const ServerRun skew_steal =
      run_server(skew_specs, skew_reference, lanes, true, 2);

  // ---- Mode 5: the shared world arena on a hot-group skewed stream. ----
  // Same Zipf interval pick, but every spec shares one Monte-Carlo seed:
  // the dominant interval becomes one (interval, seed) arena group. The
  // stream runs twice — arenas disabled vs build-on-first-use — and both
  // must reproduce the arena-off RunAll reference bit for bit; the qps
  // ratio is the amortization of sampling a hot group's worlds once.
  Rng arena_rng(23);
  std::vector<QuerySpec> arena_specs;
  arena_specs.reserve(num_skew_queries);
  for (size_t i = 0; i < num_skew_queries; ++i) {
    const double u = arena_rng.Uniform() * weight_sum;
    size_t pick = 0;
    while (pick + 1 < num_intervals && cumulative[pick] < u) ++pick;
    QuerySpec spec;
    spec.kind = QueryKind::kForall;
    spec.q = RandomQueryState(db.space(), qrng);
    spec.T = intervals[pick];
    spec.tau = 0.0;
    spec.mc.num_worlds = num_worlds;
    // One shared seed: the whole stream keys `num_intervals` arena groups.
    spec.mc.seed = 4242;
    // Pinned backend: the arena serves only the sampling path, and the
    // planner must not route anything to enumeration at small scales.
    spec.backend = ExecutorKind::kMonteCarlo;
    arena_specs.push_back(spec);
  }
  std::vector<QueryOutcome> arena_reference;
  {
    SessionOptions reference_options = session_options;
    reference_options.arena_min_uses = 0;
    QuerySession session(db, &tree.value(), reference_options);
    UST_CHECK(session.Prepare().ok());
    arena_reference = session.RunAll(arena_specs);
  }
  const ServerRun arena_off =
      run_server(arena_specs, arena_reference, lanes, true, 0);
  const ServerRun arena_on =
      run_server(arena_specs, arena_reference, lanes, true, 1);
  UST_CHECK(arena_off.stats.cache.arena_builds == 0);
  UST_CHECK(arena_off.stats.arena_hits() == 0);
  UST_CHECK(arena_on.stats.cache.arena_builds >= 1);
  UST_CHECK(arena_on.stats.cache.arena_spec_reuses >= 1);
  UST_CHECK(arena_on.stats.cache.arena_bytes > 0);
  UST_CHECK(arena_on.stats.arena_hits() ==
            arena_on.stats.cache.arena_spec_reuses);

  // ---- Mode 6: adaptive precision through the serving tier. ----
  // The mixed-interval stream re-cast as tau = 0.5 threshold decisions under
  // an oversized world cap, served twice: fixed sampling (every spec draws
  // all --adaptive_worlds worlds) vs the sequential stopping rule. Both runs
  // reproduce a prepared-session RunAll reference bit for bit — including
  // worlds_used and early_stopped, so the stop decision is pinned across the
  // admission queue, the lane pool and the morsel/steal schedule. The
  // ServerStats early-stop counters must account for exactly the observed
  // savings.
  double qps_adaptive_off = 0.0;
  double qps_adaptive_on = 0.0;
  double mean_worlds_used = 0.0;
  uint64_t server_early_stops = 0;
  uint64_t server_worlds_saved = 0;
  if (run_adaptive) {
    std::vector<QuerySpec> adaptive_specs = specs;
    for (size_t i = 0; i < adaptive_specs.size(); ++i) {
      adaptive_specs[i].tau = 0.5;
      adaptive_specs[i].mc.num_worlds = adaptive_worlds;
      adaptive_specs[i].mc.seed = 86000 + i;
      adaptive_specs[i].precision.mode = PrecisionMode::kThreshold;
      adaptive_specs[i].precision.delta = 0.05;
      // Pinned backend: the stopping rule lives in the Monte-Carlo executor.
      adaptive_specs[i].backend = ExecutorKind::kMonteCarlo;
    }
    std::vector<QuerySpec> fixed_specs = adaptive_specs;
    for (QuerySpec& spec : fixed_specs) {
      spec.precision.mode = PrecisionMode::kFixedWorlds;
    }
    std::vector<QueryOutcome> fixed_reference, adaptive_reference;
    {
      QuerySession session(db, &tree.value(), session_options);
      UST_CHECK(session.Prepare().ok());
      fixed_reference = session.RunAll(fixed_specs);
      adaptive_reference = session.RunAll(adaptive_specs);
    }
    const ServerRun adaptive_off =
        run_server(fixed_specs, fixed_reference, lanes, true, 2);
    const ServerRun adaptive_on =
        run_server(adaptive_specs, adaptive_reference, lanes, true, 2);
    const double n_adaptive = static_cast<double>(adaptive_specs.size());
    qps_adaptive_off = n_adaptive / adaptive_off.seconds;
    qps_adaptive_on = n_adaptive / adaptive_on.seconds;

    // The counters must match the outcomes exactly.
    UST_CHECK(adaptive_off.stats.early_stops == 0);
    UST_CHECK(adaptive_off.stats.worlds_saved == 0);
    UST_CHECK(adaptive_off.stats.worlds_sampled() ==
              static_cast<uint64_t>(adaptive_specs.size()) * adaptive_worlds);
    uint64_t expected_stops = 0, expected_saved = 0, expected_sampled = 0;
    for (size_t i = 0; i < adaptive_reference.size(); ++i) {
      expected_sampled += adaptive_reference[i].worlds_used;
      if (adaptive_reference[i].early_stopped) {
        ++expected_stops;
        expected_saved += adaptive_worlds - adaptive_reference[i].worlds_used;
      }
    }
    server_early_stops = adaptive_on.stats.early_stops;
    server_worlds_saved = adaptive_on.stats.worlds_saved;
    UST_CHECK(server_early_stops == expected_stops);
    UST_CHECK(server_worlds_saved == expected_saved);
    UST_CHECK(adaptive_on.stats.worlds_sampled() == expected_sampled);
    // Most of the easy stream actually stops early — that's the phase.
    UST_CHECK(server_early_stops * 4 >= adaptive_specs.size() * 3);
    mean_worlds_used = static_cast<double>(expected_sampled) / n_adaptive;
  }

  const double n = static_cast<double>(num_queries);
  const double qps_cold = n / cold_seconds;
  const double qps_runall = n / runall_seconds;
  const double qps_server_1lane = n / lane1.seconds;
  const double qps_server = n / laneN.seconds;
  // >1 means tracing cost throughput; gated at 10% (tools/check_bench.py).
  // Both sides best-of-two on the tripled stream (see the overhead pair
  // comment above).
  const double qps_trace_on =
      static_cast<double>(overhead_specs.size()) / traced_seconds;
  const double trace_overhead =
      plain_seconds > 0.0 ? traced_seconds / plain_seconds : 1.0;
  const auto p_ms = [](const ServerRun& run, double q) {
    return run.stats.latency_micros.Quantile(q) / 1000.0;
  };

  const double n_arena = static_cast<double>(arena_specs.size());
  const double qps_arena_off = n_arena / arena_off.seconds;
  const double qps_arena_on = n_arena / arena_on.seconds;
  const double arena_speedup =
      qps_arena_off > 0.0 ? qps_arena_on / qps_arena_off : 1.0;

  const double p99_skew_nosteal = p_ms(skew_nosteal, 0.99);
  const double p99_skew_steal = p_ms(skew_steal, 0.99);
  // p99 ratio of the two schedulers on the skewed stream: > 1 means
  // stealing flattened the hot group's tail. Direction-aware gate: "down".
  const double steal_speedup = p99_skew_steal > 0.0
                                   ? p99_skew_nosteal / p99_skew_steal
                                   : 1.0;

  CsvTable table({"metric", "value"});
  table.AddRow({"qps_cold_session", std::to_string(qps_cold)});
  table.AddRow({"qps_direct_runall", std::to_string(qps_runall)});
  table.AddRow({"qps_server_1lane", std::to_string(qps_server_1lane)});
  table.AddRow({"qps_server", std::to_string(qps_server)});
  table.AddRow({"lane_speedup", std::to_string(qps_server / qps_server_1lane)});
  table.AddRow({"speedup_server_vs_cold", std::to_string(qps_server / qps_cold)});
  table.AddRow({"latency_p50_ms_1lane", std::to_string(p_ms(lane1, 0.50))});
  table.AddRow({"latency_p99_ms_1lane", std::to_string(p_ms(lane1, 0.99))});
  table.AddRow({"latency_p50_ms", std::to_string(p_ms(laneN, 0.50))});
  table.AddRow({"latency_p99_ms", std::to_string(p_ms(laneN, 0.99))});
  table.AddRow({"p99_skew_nosteal", std::to_string(p99_skew_nosteal)});
  table.AddRow({"p99_skew_steal", std::to_string(p99_skew_steal)});
  table.AddRow({"steal_speedup", std::to_string(steal_speedup)});
  table.AddRow({"qps_arena_off", std::to_string(qps_arena_off)});
  table.AddRow({"qps_arena_on", std::to_string(qps_arena_on)});
  table.AddRow({"arena_speedup", std::to_string(arena_speedup)});
  table.AddRow({"arena_builds",
                std::to_string(arena_on.stats.cache.arena_builds)});
  table.AddRow({"arena_spec_reuses",
                std::to_string(arena_on.stats.cache.arena_spec_reuses)});
  if (run_adaptive) {
    table.AddRow({"qps_adaptive_off", std::to_string(qps_adaptive_off)});
    table.AddRow({"qps_adaptive_on", std::to_string(qps_adaptive_on)});
    table.AddRow({"adaptive_speedup",
                  std::to_string(qps_adaptive_on / qps_adaptive_off)});
    table.AddRow({"mean_worlds_used", std::to_string(mean_worlds_used)});
    table.AddRow({"early_stops", std::to_string(server_early_stops)});
    table.AddRow({"worlds_saved", std::to_string(server_worlds_saved)});
  }
  table.AddRow({"lane_steals",
                std::to_string(skew_steal.stats.lane_steals())});
  table.AddRow({"morsels_executed",
                std::to_string(skew_steal.stats.morsels_executed())});
  table.AddRow({"batches", std::to_string(laneN.stats.batches)});
  table.AddRow({"qps_trace_on", std::to_string(qps_trace_on)});
  table.AddRow({"trace_overhead", std::to_string(trace_overhead)});
  table.Print(std::cout, "micro_server results");
  std::printf("# server stats (lanes=%d): %s\n", lanes,
              laneN.stats.ToJson().c_str());
  std::printf("# skew-steal stats (lanes=%d skew=%.2f morsel=%zu): %s\n",
              lanes, skew, morsel_specs, skew_steal.stats.ToJson().c_str());

  bench::JsonWriter json;
  json.Add("benchmark", std::string("micro_server"));
  json.Add("num_states", static_cast<double>(config.num_states));
  json.Add("num_objects", static_cast<double>(config.num_objects));
  json.Add("num_worlds", static_cast<double>(num_worlds));
  json.Add("num_queries", static_cast<double>(num_queries));
  json.Add("num_intervals", static_cast<double>(num_intervals));
  json.Add("threads", static_cast<double>(threads));
  json.Add("lanes", static_cast<double>(lanes));
  json.Add("clients", static_cast<double>(clients));
  json.Add("max_batch_size", static_cast<double>(max_batch));
  json.Add("max_batch_delay_ms", delay_ms);
  json.Add("skew", skew);
  json.Add("morsel_specs", static_cast<double>(morsel_specs));
  json.Add("adaptive", adaptive_mode);
  json.Add("adaptive_worlds", static_cast<double>(adaptive_worlds));
  json.Add("qps_cold_session", qps_cold);
  json.Add("qps_direct_runall", qps_runall);
  json.Add("qps_server_1lane", qps_server_1lane);
  json.Add("qps_server", qps_server);
  json.Add("lane_speedup", qps_server / qps_server_1lane);
  json.Add("speedup_server_vs_cold", qps_server / qps_cold);
  json.Add("speedup_server_vs_runall", qps_server / qps_runall);
  json.Add("prepare_seconds", prepare_seconds);
  json.Add("latency_p50_ms_1lane", p_ms(lane1, 0.50));
  json.Add("latency_p99_ms_1lane", p_ms(lane1, 0.99));
  json.Add("latency_p50_ms", p_ms(laneN, 0.50));
  json.Add("latency_p99_ms", p_ms(laneN, 0.99));
  json.Add("latency_mean_ms", laneN.stats.latency_micros.mean() / 1000.0);
  json.Add("p99_skew_nosteal", p99_skew_nosteal);
  json.Add("p99_skew_steal", p99_skew_steal);
  json.Add("steal_speedup", steal_speedup);
  json.Add("qps_arena_off", qps_arena_off);
  json.Add("qps_arena_on", qps_arena_on);
  json.Add("arena_speedup", arena_speedup);
  json.Add("arena_builds",
           static_cast<double>(arena_on.stats.cache.arena_builds));
  json.Add("arena_spec_reuses",
           static_cast<double>(arena_on.stats.cache.arena_spec_reuses));
  json.Add("arena_bytes",
           static_cast<double>(arena_on.stats.cache.arena_bytes));
  if (run_adaptive) {
    json.Add("qps_adaptive_off", qps_adaptive_off);
    json.Add("qps_adaptive_on", qps_adaptive_on);
    json.Add("adaptive_speedup", qps_adaptive_on / qps_adaptive_off);
    json.Add("mean_worlds_used", mean_worlds_used);
    json.Add("early_stops", static_cast<double>(server_early_stops));
    json.Add("worlds_saved", static_cast<double>(server_worlds_saved));
  }
  json.Add("lane_steals",
           static_cast<double>(skew_steal.stats.lane_steals()));
  json.Add("morsels_executed",
           static_cast<double>(skew_steal.stats.morsels_executed()));
  json.Add("batches", static_cast<double>(laneN.stats.batches));
  json.Add("lane_queue_peak", static_cast<double>(laneN.stats.lane_queue_peak));
  json.Add("cache_hits", static_cast<double>(laneN.stats.cache.hits));
  json.Add("cache_misses", static_cast<double>(laneN.stats.cache.misses));
  json.Add("cache_busy_misses",
           static_cast<double>(laneN.stats.cache.busy_misses));
  json.Add("qps_trace_on", qps_trace_on);
  json.Add("trace_overhead", trace_overhead);
  json.Add("trace_events", static_cast<double>(trace::RecordedCount()));
  json.Add("trace_dropped",
           static_cast<double>(lane_traced.stats.trace_dropped));
  if (!trace_out.empty()) {
    // The traced run's rings survive its server (Stop only disables
    // recording); later untraced runs never touch them.
    if (!trace::DumpJson(trace_out)) {
      std::fprintf(stderr, "failed to write %s\n", trace_out.c_str());
      return 1;
    }
    std::printf("# wrote %s (%llu events, %llu dropped)\n", trace_out.c_str(),
                static_cast<unsigned long long>(trace::RecordedCount()),
                static_cast<unsigned long long>(trace::DroppedCount()));
  }
  if (!json.WriteFile(json_out)) {
    std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
    return 1;
  }
  std::printf("# wrote %s\n", json_out.c_str());
  return 0;
}
