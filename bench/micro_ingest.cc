// Continuous-ingest microbenchmark: online index maintenance (PR 9).
//
// Phase A — *delta speedup* at a static post-write epoch. The base UstTree
// is built, then --writes writes land (appended single-observation objects
// plus lifetime extensions of indexed ones), so the tree is stale by a
// known delta. The same Monte-Carlo P∀NNQ stream is then evaluated three
// ways over one snapshot:
//
//   reference : index-free session (alive-filter fallback) — ground truth;
//   delta     : stale base tree + per-epoch delta patch (the PR 9 path);
//   fallback  : delta patching disabled, so the session *drops* the stale
//               tree and degrades to the alive filter — the pre-PR-9
//               behavior of every post-write epoch.
//
// Both timed modes must reproduce the reference bit for bit (probability
// bytes; candidate/influencer *counts* legitimately differ between the
// indexed and index-free plans). delta_speedup = qps_delta / qps_fallback
// is the tentpole metric: what probing base ∪ delta buys over losing the
// index on every write. Timed region includes session construction, so the
// delta path pays its own UstDelta build.
//
// Phase B — *open-loop churn* through the serving tier. A QueryServer runs
// with the background compactor on (--compact_ms cadence) while a writer
// thread lands --writes more writes paced --write_interval_us apart and
// client threads submit a 3x query stream. qps_ingest / p99_ingest_ms
// measure serving under continuous ingest; the run must complete with zero
// rejects and zero stale-index drops (every session either rides the
// freshest compacted base or patches the gap with a delta). After the
// writer quiesces the bench waits for the compactor to fold the tail, then
// replays a check stream against an index-free reference session at the
// final epoch — bit-identical, through whatever base the compactor
// published mid-stream.
//
// Emits BENCH_ingest.json (qps_delta, qps_fallback, delta_speedup,
// qps_ingest, p99_ingest_ms, delta depth, compaction counts) — gated by
// tools/check_bench.py like the other harnesses.
//
// Flags (defaults sized for a single CI core; the object count and
// observation density are chosen so pruning has teeth — the fallback's
// sampling bill grows with the alive set, the delta path's with the
// influencer set, and the ≥2x acceptance ratio needs that gap visible at
// smoke scale):
//   --states=5000 --objects=64 --lifetime=96 --obs_interval=6
//   --horizon=120 --interval=8 --intervals=2 --worlds=500 --queries=30
//   --threads=2 --lanes=2 --clients=2 --batch=16 --delay_ms=1
//   --writes=12 --write_interval_us=400 --compact_ms=2
//   --min_speedup=1.0 --json_out=BENCH_ingest.json
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "gen/synthetic.h"
#include "gen/workload.h"
#include "index/ust_tree.h"
#include "query/session.h"
#include "server/query_server.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace ust;
using namespace ust::bench;

namespace {

// Bitwise agreement on what the query *answers*: status, backend and the
// probability bytes. worlds_used is deliberately not compared here — the
// indexed and index-free plans see different candidate sets (that is the
// point of pruning), and a pruned-empty query skips sampling entirely.
void CheckSameResults(const QueryOutcome& a, const QueryOutcome& b) {
  UST_CHECK(a.status.ok() && b.status.ok());
  UST_CHECK(a.executor == b.executor);
  UST_CHECK(a.pnn.results.size() == b.pnn.results.size());
  for (size_t j = 0; j < a.pnn.results.size(); ++j) {
    UST_CHECK(a.pnn.results[j].object == b.pnn.results[j].object);
    UST_CHECK(a.pnn.results[j].prob == b.pnn.results[j].prob);
  }
}

// One pre-generated write: append a fresh single-observation object cloned
// from a donor (cheap, always contradiction-free), or extend the lifetime
// of an already-indexed object (exercises the delta's replace path).
struct PendingWrite {
  bool extend = false;
  ObjectId donor = 0;
  Observation obs;
  Tic end_tic = 0;
};

void ApplyWrite(TrajectoryDatabase& db, const PendingWrite& w) {
  if (w.extend) {
    UST_CHECK(db.ExtendLifetime(w.donor, w.end_tic).ok());
    return;
  }
  const TransitionMatrixPtr matrix = db.Snapshot().object(w.donor).matrix_ptr();
  auto obs = ObservationSeq::Create({w.obs});
  UST_CHECK(obs.ok());
  db.AddObject(obs.MoveValue(), matrix, w.end_tic);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  SyntheticConfig config;
  config.num_states = flags.GetInt("states", 5000);
  config.num_objects = flags.GetInt("objects", 64);
  config.lifetime = static_cast<Tic>(flags.GetInt("lifetime", 96));
  config.obs_interval = static_cast<Tic>(flags.GetInt("obs_interval", 6));
  config.horizon = static_cast<Tic>(flags.GetInt("horizon", 120));
  config.seed = 6;
  const size_t interval_length = flags.GetInt("interval", 8);
  const size_t num_intervals = std::max<size_t>(1, flags.GetInt("intervals", 2));
  const size_t num_worlds = flags.GetInt("worlds", 500);
  const size_t num_queries = flags.GetInt("queries", 30);
  const int threads = flags.GetInt("threads", 2);
  const int lanes = std::max(1, static_cast<int>(flags.GetInt("lanes", 2)));
  const int clients = std::max(1, static_cast<int>(flags.GetInt("clients", 2)));
  const size_t max_batch = flags.GetInt("batch", 16);
  const double delay_ms = flags.GetDouble("delay_ms", 1.0);
  const size_t num_writes = std::max<size_t>(1, flags.GetInt("writes", 12));
  const size_t write_interval_us = flags.GetInt("write_interval_us", 400);
  const double compact_ms = flags.GetDouble("compact_ms", 2.0);
  // In-binary floor on delta_speedup (sanity; the real >= 2x acceptance
  // gate is the committed baseline's ratio band in tools/check_bench.py).
  // Sanitizer smoke runs pass 0: instrumentation skews the ratio.
  const double min_speedup = flags.GetDouble("min_speedup", 1.0);
  const std::string json_out = flags.GetString("json_out", "BENCH_ingest.json");

  PrintConfig("micro_ingest: online index maintenance under ingest", flags,
              "states=" + std::to_string(config.num_states) +
                  " objects=" + std::to_string(config.num_objects) +
                  " worlds=" + std::to_string(num_worlds) +
                  " queries=" + std::to_string(num_queries) +
                  " writes=" + std::to_string(num_writes) +
                  " lanes=" + std::to_string(lanes) +
                  " clients=" + std::to_string(clients));

  auto world_result = GenerateSyntheticWorld(config);
  UST_CHECK(world_result.ok());
  SyntheticWorld world = world_result.MoveValue();
  TrajectoryDatabase& db = *world.db;
  const size_t seed_objects = db.Snapshot().size();
  // The base tree is built *before* any write lands: from here on it is
  // stale for every new epoch, and staying useful is the delta's job.
  auto tree = UstTree::Build(db);
  UST_CHECK(tree.ok());

  const TimeInterval T1 = BusiestInterval(db, interval_length);
  const Tic shift = std::max<Tic>(1, static_cast<Tic>(interval_length) / 2);
  std::vector<TimeInterval> intervals;
  intervals.reserve(num_intervals);
  for (size_t k = 0; k < num_intervals; ++k) {
    TimeInterval T = T1;
    const Tic offset = static_cast<Tic>(k) * shift;
    if (T.start >= offset) {
      T.start -= offset;
      T.end -= offset;
    } else {
      T.start += offset;
      T.end += offset;
    }
    intervals.push_back(T);
  }
  Tic union_start = intervals[0].start, union_end = intervals[0].end;
  for (const TimeInterval& T : intervals) {
    union_start = std::min(union_start, T.start);
    union_end = std::max(union_end, T.end);
  }

  // Pre-generate every write of both phases. Appended objects are observed
  // once at the query window's start and live past its end, so each one is
  // alive throughout every query interval — writes the queries cannot see
  // would make the delta look free. Every 4th write instead extends an
  // indexed object, forcing the delta to *replace* its base entries.
  const auto make_writes = [&](size_t count, size_t salt) {
    std::vector<PendingWrite> writes(count);
    for (size_t i = 0; i < count; ++i) {
      PendingWrite& w = writes[i];
      const size_t pick = (salt + i) % seed_objects;
      w.donor = static_cast<ObjectId>(pick);
      if (i % 4 == 3) {
        w.extend = true;
        // Target epoch-independent: strictly past both any seed lifetime
        // and any earlier extension of the same donor.
        w.end_tic = static_cast<Tic>(config.horizon) +
                    static_cast<Tic>(2 * (salt + i) + 2);
      } else {
        w.obs.time = union_start;
        w.obs.state = db.Snapshot().object(w.donor).observations().first().state;
        w.end_tic = union_end + 2;
      }
    }
    return writes;
  };
  const std::vector<PendingWrite> phase_a_writes = make_writes(num_writes, 0);
  const std::vector<PendingWrite> phase_b_writes =
      make_writes(num_writes, num_writes);

  const auto make_specs = [&](size_t count, size_t seed_base) {
    Rng qrng(3 + seed_base);
    std::vector<QuerySpec> specs;
    specs.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      QuerySpec spec;
      spec.kind = QueryKind::kForall;
      spec.q = RandomQueryState(db.space(), qrng);
      spec.T = intervals[i % num_intervals];
      // tau > 0 and a pinned backend: the indexed and index-free plans are
      // bit-identical only where pruning cannot change the reported set
      // (tau = 0 would surface zero-probability objects the index prunes)
      // and where the id-keyed Monte-Carlo streams are actually used.
      spec.tau = 0.05;
      spec.backend = ExecutorKind::kMonteCarlo;
      spec.mc.num_worlds = num_worlds;
      spec.mc.seed = seed_base + i;
      specs.push_back(spec);
    }
    return specs;
  };

  // ---- Phase A: delta vs stale-drop fallback at one post-write epoch. ----
  for (const PendingWrite& w : phase_a_writes) ApplyWrite(db, w);
  const DbSnapshot snapshot = db.Snapshot();
  const std::vector<QuerySpec> specs = make_specs(num_queries, 1000);

  SessionOptions session_options;
  session_options.threads = threads;

  // Ground truth + posterior warm-up (shared objects: the timed modes then
  // measure pruning + sampling, not one-time adaptation).
  std::vector<QueryOutcome> reference;
  {
    QuerySession session(snapshot, nullptr, session_options);
    UST_CHECK(session.Prepare().ok());
    reference = session.RunAll(specs);
  }

  size_t delta_depth_a = 0;
  const auto timed_run = [&](bool delta_enabled, bool expect_drop) {
    SessionOptions options = session_options;
    options.delta_index = delta_enabled;
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      Timer t;
      QuerySession session(snapshot, &tree.value(), options);
      UST_CHECK(session.Prepare().ok());
      const std::vector<QueryOutcome> results = session.RunAll(specs);
      const double seconds = t.Seconds();
      UST_CHECK(session.dropped_stale_index() == expect_drop);
      if (delta_enabled) {
        UST_CHECK(session.delta_depth() > 0);
        delta_depth_a = session.delta_depth();
      }
      for (size_t i = 0; i < results.size(); ++i) {
        CheckSameResults(results[i], reference[i]);
      }
      best = rep == 0 ? seconds : std::min(best, seconds);
    }
    return best;
  };
  const double delta_seconds = timed_run(true, false);
  const double fallback_seconds = timed_run(false, true);
  const double n = static_cast<double>(num_queries);
  const double qps_delta = n / delta_seconds;
  const double qps_fallback = n / fallback_seconds;
  const double delta_speedup =
      qps_fallback > 0.0 ? qps_delta / qps_fallback : 1.0;
  UST_CHECK(delta_speedup >= min_speedup);

  // ---- Phase B: open-loop churn through the serving tier. ----
  ServerOptions server_options;
  server_options.lanes = lanes;
  server_options.threads = threads;
  server_options.max_batch_size = max_batch;
  server_options.max_batch_delay_ms = delay_ms;
  server_options.delta_index = true;
  server_options.compaction = true;
  server_options.compaction_interval_ms = compact_ms;
  server_options.compaction_min_depth = 1;
  QueryServer server(db, &tree.value(), server_options);

  const size_t churn_queries = 3 * num_queries;
  const std::vector<QuerySpec> churn_specs = make_specs(churn_queries, 9000);
  std::vector<std::future<QueryOutcome>> futures(churn_queries);
  Timer churn_timer;
  std::thread writer([&] {
    for (const PendingWrite& w : phase_b_writes) {
      ApplyWrite(db, w);
      std::this_thread::sleep_for(std::chrono::microseconds(write_interval_us));
    }
  });
  std::vector<std::thread> client_threads;
  client_threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    client_threads.emplace_back([&, c] {
      for (size_t i = static_cast<size_t>(c); i < churn_queries;
           i += static_cast<size_t>(clients)) {
        futures[i] = server.Submit(churn_specs[i]);
      }
    });
  }
  for (auto& thread : client_threads) thread.join();
  for (size_t i = 0; i < churn_queries; ++i) {
    UST_CHECK(futures[i].get().status.ok());
  }
  writer.join();
  const double churn_seconds = churn_timer.Seconds();
  // Latency quantiles snapshotted *now*: the histogram holds exactly the
  // churn-phase requests, not the post-churn check stream below.
  const ServerStats churn_stats = server.Stats();
  UST_CHECK(churn_stats.rejected == 0);
  UST_CHECK(churn_stats.completed == churn_queries);
  // Every mid-churn session must have ridden a fresh base or a delta patch;
  // a single drop means the maintenance path failed under this schedule.
  UST_CHECK(churn_stats.cache.stale_index_drops == 0);

  // Let the compactor fold the writer's tail into a published base.
  for (int spin = 0; db.Snapshot().base_index() == nullptr ||
                     db.Snapshot().base_index()->built_version() < db.version();
       ++spin) {
    UST_CHECK(spin < 3000);  // ~15 s: the compactor is stuck
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const ServerStats settled_stats = server.Stats();
  UST_CHECK(settled_stats.compactions >= 1);
  UST_CHECK(settled_stats.compaction_failures == 0);

  // Post-churn determinism: at the (now static) final epoch the server —
  // serving through whatever base the compactor published mid-stream —
  // must reproduce an index-free reference bit for bit.
  const std::vector<QuerySpec> check_specs = make_specs(num_queries, 17000);
  std::vector<QueryOutcome> check_reference;
  {
    QuerySession session(db.Snapshot(), nullptr, session_options);
    UST_CHECK(session.Prepare().ok());
    check_reference = session.RunAll(check_specs);
  }
  std::vector<std::future<QueryOutcome>> check_futures(check_specs.size());
  for (size_t i = 0; i < check_specs.size(); ++i) {
    check_futures[i] = server.Submit(check_specs[i]);
  }
  for (size_t i = 0; i < check_specs.size(); ++i) {
    CheckSameResults(check_futures[i].get(), check_reference[i]);
  }
  server.Stop();

  const double qps_ingest = static_cast<double>(churn_queries) / churn_seconds;
  const double p50_ingest_ms =
      churn_stats.latency_micros.Quantile(0.50) / 1000.0;
  const double p99_ingest_ms =
      churn_stats.latency_micros.Quantile(0.99) / 1000.0;

  CsvTable table({"metric", "value"});
  table.AddRow({"qps_delta", std::to_string(qps_delta)});
  table.AddRow({"qps_fallback", std::to_string(qps_fallback)});
  table.AddRow({"delta_speedup", std::to_string(delta_speedup)});
  table.AddRow({"delta_depth_static", std::to_string(delta_depth_a)});
  table.AddRow({"qps_ingest", std::to_string(qps_ingest)});
  table.AddRow({"p50_ingest_ms", std::to_string(p50_ingest_ms)});
  table.AddRow({"p99_ingest_ms", std::to_string(p99_ingest_ms)});
  table.AddRow({"compactions", std::to_string(settled_stats.compactions)});
  table.AddRow(
      {"compaction_failures", std::to_string(settled_stats.compaction_failures)});
  table.AddRow({"delta_depth", std::to_string(settled_stats.delta_depth)});
  table.AddRow({"stale_index_drops",
                std::to_string(settled_stats.cache.stale_index_drops)});
  table.Print(std::cout, "micro_ingest results");
  std::printf("# server stats (lanes=%d clients=%d): %s\n", lanes, clients,
              settled_stats.ToJson().c_str());

  bench::JsonWriter json;
  json.Add("benchmark", std::string("micro_ingest"));
  json.Add("num_states", static_cast<double>(config.num_states));
  json.Add("num_objects", static_cast<double>(config.num_objects));
  json.Add("num_worlds", static_cast<double>(num_worlds));
  json.Add("num_queries", static_cast<double>(num_queries));
  json.Add("num_intervals", static_cast<double>(num_intervals));
  json.Add("threads", static_cast<double>(threads));
  json.Add("lanes", static_cast<double>(lanes));
  json.Add("clients", static_cast<double>(clients));
  json.Add("max_batch_size", static_cast<double>(max_batch));
  json.Add("max_batch_delay_ms", delay_ms);
  json.Add("writes", static_cast<double>(num_writes));
  json.Add("write_interval_us", static_cast<double>(write_interval_us));
  json.Add("compaction_interval_ms", compact_ms);
  json.Add("qps_delta", qps_delta);
  json.Add("qps_fallback", qps_fallback);
  json.Add("delta_speedup", delta_speedup);
  json.Add("delta_depth_static", static_cast<double>(delta_depth_a));
  json.Add("qps_ingest", qps_ingest);
  json.Add("p50_ingest_ms", p50_ingest_ms);
  json.Add("p99_ingest_ms", p99_ingest_ms);
  json.Add("compactions", static_cast<double>(settled_stats.compactions));
  json.Add("compaction_failures",
           static_cast<double>(settled_stats.compaction_failures));
  json.Add("delta_depth", static_cast<double>(settled_stats.delta_depth));
  json.Add("stale_index_drops",
           static_cast<double>(settled_stats.cache.stale_index_drops));
  if (!json.WriteFile(json_out)) {
    std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
    return 1;
  }
  std::printf("# wrote %s\n", json_out.c_str());
  return 0;
}
