// Query-throughput microbenchmark of the plan-based pipeline: the same
// 50-query P∀NNQ batch evaluated three ways —
//
//   single_shot : the pre-session pattern — every query constructs the full
//                 stack from scratch (posteriors invalidated, fresh
//                 QueryEngine), paying adaptation, sampler warm-up and
//                 scratch allocation per query;
//   warm_engine : one QueryEngine over a warm database — posterior caches
//                 amortize, but pruning state and sampling scratch are
//                 still rebuilt per call;
//   session     : QuerySession::Prepare + RunAll — shared immutable state,
//                 cached index slabs, per-worker scratch, planner on.
//
// Emits BENCH_engine.json (queries/sec for each mode plus the speedups) so
// engine throughput is tracked machine-readably across PRs, like
// BENCH_sampling.json for the sampling hot path.
//
// --executor selects the refinement backend under measurement:
//   mc     — the three-mode Monte-Carlo comparison above;
//   markov — the chain-rule backend on its own scaled-down workload (cost
//            is ~quadratic in the participant count), one session.Run per
//            query so the per-target sharding over the session pool is the
//            path measured; emits qps_markov_approx;
//   exact  — possible-world enumeration on a tiny workload (enumeration is
//            only ever planned for tiny filter outputs), block-sharded over
//            the pool; emits qps_exact;
//   all    — (default) every backend, one tracked qps line each.
// The markov/exact phases also pin parallel-vs-serial bitwise equality:
// the threaded session must reproduce the 1-thread bytes exactly.
//
// --arena {on,off} gates the shared-world-arena phase (on by default, mc
// executor only): a hot spec stream — every query sharing one
// (interval, seed) group — is evaluated twice, arenas disabled vs enabled,
// both warmed by an untimed pass. The arena run must reproduce the live
// sampling bytes exactly; emits qps_arena_on / qps_arena_off /
// arena_speedup (the skip-the-alias-walk amortization under measurement).
//
// --adaptive {on,off} gates the adaptive-precision phase (on by default, mc
// executor only): the query stream re-cast as tau = 0.5 threshold decisions
// under an oversized --adaptive_worlds cap, evaluated with fixed sampling vs
// the sequential stopping rule (DESIGN.md section 8). Emits qps_adaptive_on /
// qps_adaptive_off / adaptive_speedup / mean_worlds_used, and pins the
// revised determinism contract: identical stop decisions — and identical
// bytes — at any thread count.
//
// Flags (defaults sized for a single CI core):
//   --states=10000 --objects=48 --lifetime=96 --obs_interval=12
//   --horizon=120 --interval=10 --worlds=500 --queries=50 --threads=1
//   --executor=all --arena=on --adaptive=on --adaptive_worlds=8192
//   --markov_objects=8 --markov_interval=6
//   --markov_queries=6 --exact_objects=3 --exact_interval=3
//   --exact_queries=6 --json_out=BENCH_engine.json --trace=<path>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "gen/synthetic.h"
#include "gen/workload.h"
#include "index/ust_tree.h"
#include "query/engine.h"
#include "query/session.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/timer.h"
#include "util/trace.h"

using namespace ust;
using namespace ust::bench;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  SyntheticConfig config;
  config.num_states = flags.GetInt("states", 10000);
  config.num_objects = flags.GetInt("objects", 48);
  config.lifetime = static_cast<Tic>(flags.GetInt("lifetime", 96));
  config.obs_interval = static_cast<Tic>(flags.GetInt("obs_interval", 12));
  config.horizon = static_cast<Tic>(flags.GetInt("horizon", 120));
  config.seed = 6;
  const size_t interval_length = flags.GetInt("interval", 10);
  const size_t num_worlds = flags.GetInt("worlds", 500);
  const size_t num_queries = flags.GetInt("queries", 50);
  const int threads = flags.GetInt("threads", 1);
  const std::string executor = flags.GetString("executor", "all");
  const bool run_mc = executor == "all" || executor == "mc";
  const bool run_markov = executor == "all" || executor == "markov";
  const bool run_exact = executor == "all" || executor == "exact";
  UST_CHECK(run_mc || run_markov || run_exact);
  const std::string arena_mode = flags.GetString("arena", "on");
  UST_CHECK(arena_mode == "on" || arena_mode == "off");
  const bool run_arena = run_mc && arena_mode == "on";
  const std::string adaptive_mode = flags.GetString("adaptive", "on");
  UST_CHECK(adaptive_mode == "on" || adaptive_mode == "off");
  const bool run_adaptive = run_mc && adaptive_mode == "on";
  const size_t adaptive_worlds =
      static_cast<size_t>(flags.GetInt("adaptive_worlds", 8192));
  const std::string json_out = flags.GetString("json_out", "BENCH_engine.json");
  const std::string trace_out = flags.GetString("trace", "");
  // Record the whole engine run (session warm-up, arena builds, per-backend
  // exec spans) when a dump path is given; exported at exit as Chrome
  // trace_event JSON.
  if (!trace_out.empty()) ust::trace::Enable();

  PrintConfig("micro_engine: plan-based query pipeline throughput", flags,
              "states=" + std::to_string(config.num_states) +
                  " objects=" + std::to_string(config.num_objects) +
                  " worlds=" + std::to_string(num_worlds) +
                  " queries=" + std::to_string(num_queries) +
                  " threads=" + std::to_string(threads));

  auto world_result = GenerateSyntheticWorld(config);
  UST_CHECK(world_result.ok());
  SyntheticWorld world = world_result.MoveValue();
  TrajectoryDatabase& db = *world.db;
  auto tree = UstTree::Build(db);
  UST_CHECK(tree.ok());

  const TimeInterval T = BusiestInterval(db, interval_length);
  Rng qrng(3);
  std::vector<QuerySpec> specs;
  specs.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    QuerySpec spec;
    spec.kind = QueryKind::kForall;
    spec.q = RandomQueryState(db.space(), qrng);
    spec.T = T;
    spec.tau = 0.0;
    spec.mc.num_worlds = num_worlds;
    spec.mc.seed = 1000 + i;
    // Pin the backend: the harness asserts bitwise equality against the
    // Monte-Carlo-only QueryEngine modes, so a planner routing a small
    // --objects run to enumeration must not change the session's numbers.
    spec.backend = ExecutorKind::kMonteCarlo;
    specs.push_back(spec);
  }

  // ---- Mode 1: repeated single-shot QueryEngine construction. ----
  // Every query builds the stack cold: posteriors (and their samplers) are
  // dropped, a fresh engine is constructed, all scratch reallocates.
  double single_shot_seconds = 0.0;
  std::vector<PnnQueryResult> single_shot_results(num_queries);
  if (run_mc) {
    Timer t;
    for (size_t i = 0; i < num_queries; ++i) {
      db.InvalidatePosteriors();
      QueryEngine engine(db, &tree.value());
      auto r = engine.Forall(specs[i].q, specs[i].T, specs[i].tau, specs[i].mc);
      UST_CHECK(r.ok());
      single_shot_results[i] = r.MoveValue();
    }
    single_shot_seconds = t.Seconds();
  }

  // ---- Mode 2: one QueryEngine over a warm database. ----
  double warm_engine_seconds = 0.0;
  std::vector<PnnQueryResult> warm_results(num_queries);
  if (run_mc) {
    UST_CHECK(db.EnsureAllPosteriors().ok());
    QueryEngine engine(db, &tree.value());
    Timer t;
    for (size_t i = 0; i < num_queries; ++i) {
      auto r = engine.Forall(specs[i].q, specs[i].T, specs[i].tau, specs[i].mc);
      UST_CHECK(r.ok());
      warm_results[i] = r.MoveValue();
    }
    warm_engine_seconds = t.Seconds();
  }

  // ---- Mode 3: QuerySession batch. Prepare (the one-time warm-up) is
  // timed separately — the warm-engine mode gets its posteriors for free
  // outside its timer, so the symmetric comparison is RunAll vs the warm
  // query loop; prepare_seconds quantifies the amortized one-time cost.
  double session_prepare_seconds = 0.0;
  double session_seconds = 0.0;
  std::vector<QueryOutcome> session_results;
  if (run_mc) {
    db.InvalidatePosteriors();  // the session rebuilds its own shared state
    SessionOptions options;
    options.threads = threads;
    QuerySession session(db, &tree.value(), options);
    Timer prep;
    UST_CHECK(session.Prepare().ok());
    session_prepare_seconds = prep.Seconds();
    Timer t;
    session_results = session.RunAll(specs);
    session_seconds = t.Seconds();
  }

  // The three modes must agree bit for bit (same seeds, same backend):
  // the session batch is the serial engine, just cheaper.
  for (size_t i = 0; run_mc && i < num_queries; ++i) {
    UST_CHECK(session_results[i].status.ok());
    const auto& a = session_results[i].pnn.results;
    const auto& b = single_shot_results[i].results;
    const auto& c = warm_results[i].results;
    UST_CHECK(a.size() == b.size() && a.size() == c.size());
    for (size_t j = 0; j < a.size(); ++j) {
      UST_CHECK(a[j].object == b[j].object && a[j].prob == b[j].prob);
      UST_CHECK(a[j].object == c[j].object && a[j].prob == c[j].prob);
    }
  }

  // ---- Modes 4/5: the intra-query-parallel backends, each on its own
  // scaled-down workload (the chain rule is ~quadratic in participants;
  // enumeration is exponential — both are only ever planned for small
  // filter outputs, and the workload mirrors that). Queries run one at a
  // time through session.Run: the lone-query path hands the session pool to
  // the executor, which is exactly the per-target / per-block sharding
  // under measurement. The threaded pass must reproduce the 1-thread bytes.
  const auto run_backend = [&](SyntheticConfig mini_config,
                               ExecutorKind backend, size_t mini_interval,
                               size_t mini_queries, size_t mini_worlds) {
    auto mini_world = GenerateSyntheticWorld(mini_config);
    UST_CHECK(mini_world.ok());
    SyntheticWorld mini = mini_world.MoveValue();
    TrajectoryDatabase& mdb = *mini.db;
    // No index: P∀NN candidates then come from alive-time filtering
    // (alive throughout T), which is what the markov backend supports.
    const TimeInterval T = BusiestInterval(mdb, mini_interval);
    Rng mini_rng(9);
    std::vector<QuerySpec> mini_specs;
    mini_specs.reserve(mini_queries);
    for (size_t i = 0; i < mini_queries; ++i) {
      QuerySpec spec;
      spec.kind = QueryKind::kForall;
      spec.q = RandomQueryState(mdb.space(), mini_rng);
      spec.T = T;
      spec.tau = 0.0;
      spec.mc.num_worlds = mini_worlds;
      spec.mc.seed = 7000 + i;
      spec.backend = backend;
      mini_specs.push_back(spec);
    }
    std::vector<QueryOutcome> reference(mini_queries);
    {
      SessionOptions serial;
      serial.threads = 1;
      QuerySession session(mdb, nullptr, serial);
      UST_CHECK(session.Prepare().ok());
      for (size_t i = 0; i < mini_queries; ++i) {
        reference[i] = session.Run(mini_specs[i]);
      }
    }
    SessionOptions options;
    options.threads = threads;
    QuerySession session(mdb, nullptr, options);
    UST_CHECK(session.Prepare().ok());
    Timer t;
    std::vector<QueryOutcome> outcomes(mini_queries);
    for (size_t i = 0; i < mini_queries; ++i) {
      outcomes[i] = session.Run(mini_specs[i]);
    }
    const double seconds = t.Seconds();
    for (size_t i = 0; i < mini_queries; ++i) {
      UST_CHECK(outcomes[i].status.ok());
      const auto& a = outcomes[i].pnn.results;
      const auto& b = reference[i].pnn.results;
      UST_CHECK(a.size() == b.size());
      for (size_t j = 0; j < a.size(); ++j) {
        UST_CHECK(a[j].object == b[j].object);
        UST_CHECK(a[j].prob == b[j].prob);  // bitwise: parallel == serial
      }
    }
    return static_cast<double>(mini_queries) / seconds;
  };

  // ---- Arena phase: one hot (interval, seed) group, arenas off vs on. ----
  // The hot stream reuses the query points above but shares a single seed,
  // so every spec keys the same arena group — the serving tier's hot-group
  // shape. Both sessions are warmed by an untimed RunAll (the off pass gets
  // warm samplers, the on pass gets its arena built), so the timed passes
  // compare steady-state throughput: alias-walk sampling vs arena lookup.
  double qps_arena_on = 0.0;
  double qps_arena_off = 0.0;
  if (run_arena) {
    std::vector<QuerySpec> hot = specs;
    for (QuerySpec& spec : hot) spec.mc.seed = 4242;
    std::vector<QueryOutcome> off_results, on_results;
    {
      SessionOptions options;
      options.threads = threads;
      options.arena_min_uses = 0;  // arenas disabled: live sampling
      QuerySession session(db, &tree.value(), options);
      UST_CHECK(session.Prepare().ok());
      session.RunAll(hot);  // warm-up, untimed
      Timer t;
      off_results = session.RunAll(hot);
      qps_arena_off = static_cast<double>(hot.size()) / t.Seconds();
      UST_CHECK(session.arena_stats().builds == 0);
    }
    {
      SessionOptions options;
      options.threads = threads;
      options.arena_min_uses = 1;  // build on first use
      QuerySession session(db, &tree.value(), options);
      UST_CHECK(session.Prepare().ok());
      session.RunAll(hot);  // warm-up: builds the arena, untimed
      Timer t;
      on_results = session.RunAll(hot);
      qps_arena_on = static_cast<double>(hot.size()) / t.Seconds();
      const ArenaStats stats = session.arena_stats();
      UST_CHECK(stats.builds == 1);
      // The timed pass ran entirely against the built arena.
      UST_CHECK(stats.spec_reuses >= hot.size());
      UST_CHECK(stats.bytes > 0);
      for (const QueryOutcome& out : on_results) UST_CHECK(out.used_arena);
    }
    // The arena determinism contract: evaluate-against-arena reproduces
    // live sampling bit for bit.
    for (size_t i = 0; i < hot.size(); ++i) {
      UST_CHECK(off_results[i].status.ok() && on_results[i].status.ok());
      const auto& a = off_results[i].pnn.results;
      const auto& b = on_results[i].pnn.results;
      UST_CHECK(a.size() == b.size());
      for (size_t j = 0; j < a.size(); ++j) {
        UST_CHECK(a[j].object == b[j].object && a[j].prob == b[j].prob);
      }
    }
  }

  // ---- Adaptive phase: threshold precision vs fixed sampling. ----
  // The same query points, re-cast as easy decision queries ("is P∀NN >= 0.5
  // with 95% confidence?") under a deliberately oversized world cap: the
  // fixed pass draws every one of the --adaptive_worlds worlds, the adaptive
  // pass stops at the first 512-world chunk boundary where every target's
  // Wilson interval clears tau. Per-spec seeds stay unique so no arena group
  // goes hot — the phase measures the stopping rule, not arena reuse. A
  // 1-thread re-run pins the determinism contract: identical stop decisions
  // and bits at any pool size.
  double qps_adaptive_on = 0.0;
  double qps_adaptive_off = 0.0;
  double mean_worlds_used = 0.0;
  if (run_adaptive) {
    UST_CHECK(adaptive_worlds >= WorldSampler::kWorldChunk);
    std::vector<QuerySpec> easy = specs;
    for (size_t i = 0; i < easy.size(); ++i) {
      easy[i].tau = 0.5;
      easy[i].mc.num_worlds = adaptive_worlds;
      easy[i].mc.seed = 86000 + i;
      easy[i].precision.mode = PrecisionMode::kThreshold;
      easy[i].precision.delta = 0.05;
    }
    std::vector<QuerySpec> fixed = easy;
    for (QuerySpec& spec : fixed) {
      spec.precision.mode = PrecisionMode::kFixedWorlds;
    }
    std::vector<QueryOutcome> off_results, on_results;
    {
      SessionOptions options;
      options.threads = threads;
      QuerySession session(db, &tree.value(), options);
      UST_CHECK(session.Prepare().ok());
      session.RunAll(fixed);  // warm-up, untimed
      Timer t;
      off_results = session.RunAll(fixed);
      qps_adaptive_off = static_cast<double>(fixed.size()) / t.Seconds();
      for (const QueryOutcome& out : off_results) {
        UST_CHECK(out.status.ok());
        UST_CHECK(out.worlds_used == adaptive_worlds && !out.early_stopped);
      }
    }
    {
      SessionOptions options;
      options.threads = threads;
      QuerySession session(db, &tree.value(), options);
      UST_CHECK(session.Prepare().ok());
      session.RunAll(easy);  // warm-up, untimed
      Timer t;
      on_results = session.RunAll(easy);
      qps_adaptive_on = static_cast<double>(easy.size()) / t.Seconds();
      size_t early_stops = 0, worlds_total = 0;
      for (const QueryOutcome& out : on_results) {
        UST_CHECK(out.status.ok());
        UST_CHECK(out.worlds_used <= adaptive_worlds);
        worlds_total += out.worlds_used;
        if (out.early_stopped) ++early_stops;
      }
      // An easy workload must mostly stop early — that's the phase. (A few
      // queries can land a target genuinely near tau and run to the cap;
      // that fallback is correct, not a failure.)
      UST_CHECK(early_stops * 4 >= easy.size() * 3);
      mean_worlds_used =
          static_cast<double>(worlds_total) / static_cast<double>(easy.size());
    }
    // Determinism: the stop decision is taken at the same chunk boundary at
    // any thread count, so a 1-thread session reproduces worlds_used and
    // every estimate bit for bit.
    {
      SessionOptions serial;
      serial.threads = 1;
      QuerySession session(db, &tree.value(), serial);
      UST_CHECK(session.Prepare().ok());
      std::vector<QueryOutcome> serial_results = session.RunAll(easy);
      for (size_t i = 0; i < easy.size(); ++i) {
        UST_CHECK(serial_results[i].status.ok());
        UST_CHECK(serial_results[i].worlds_used == on_results[i].worlds_used);
        UST_CHECK(serial_results[i].early_stopped ==
                  on_results[i].early_stopped);
        const auto& a = serial_results[i].pnn.results;
        const auto& b = on_results[i].pnn.results;
        UST_CHECK(a.size() == b.size());
        for (size_t j = 0; j < a.size(); ++j) {
          UST_CHECK(a[j].object == b[j].object && a[j].prob == b[j].prob);
        }
      }
    }
    // Decision agreement: the adaptive qualifying set (frozen CI-backed
    // estimates) matches the fixed-cap qualifying set on this workload.
    for (size_t i = 0; i < easy.size(); ++i) {
      const auto& a = on_results[i].pnn.results;
      const auto& b = off_results[i].pnn.results;
      UST_CHECK(a.size() == b.size());
      for (size_t j = 0; j < a.size(); ++j) {
        UST_CHECK(a[j].object == b[j].object);
      }
    }
  }

  double qps_markov = 0.0;
  size_t markov_objects = 0, markov_queries = 0;
  if (run_markov) {
    SyntheticConfig mini_config = config;
    markov_objects =
        static_cast<size_t>(flags.GetInt("markov_objects", 8));
    markov_queries =
        static_cast<size_t>(flags.GetInt("markov_queries", 6));
    mini_config.num_objects = static_cast<int>(markov_objects);
    qps_markov = run_backend(
        mini_config, ExecutorKind::kMarkovApprox,
        static_cast<size_t>(flags.GetInt("markov_interval", 6)),
        markov_queries, num_worlds);
  }
  double qps_exact = 0.0;
  size_t exact_objects = 0, exact_queries = 0;
  if (run_exact) {
    SyntheticConfig mini_config = config;
    exact_objects = static_cast<size_t>(flags.GetInt("exact_objects", 3));
    exact_queries = static_cast<size_t>(flags.GetInt("exact_queries", 6));
    mini_config.num_objects = static_cast<int>(exact_objects);
    // Denser observations keep the posterior diamonds — and with them the
    // enumeration cross product — inside the executor's world cap.
    mini_config.obs_interval = static_cast<Tic>(
        flags.GetInt("exact_obs_interval", 4));
    qps_exact = run_backend(
        mini_config, ExecutorKind::kExact,
        static_cast<size_t>(flags.GetInt("exact_interval", 3)),
        exact_queries, num_worlds);
  }

  const double n = static_cast<double>(num_queries);
  const double qps_single_shot = run_mc ? n / single_shot_seconds : 0.0;
  const double qps_warm_engine = run_mc ? n / warm_engine_seconds : 0.0;
  const double qps_session = run_mc ? n / session_seconds : 0.0;

  CsvTable table({"metric", "value"});
  if (run_mc) {
    table.AddRow({"qps_single_shot", std::to_string(qps_single_shot)});
    table.AddRow({"qps_warm_engine", std::to_string(qps_warm_engine)});
    table.AddRow({"qps_session_batch", std::to_string(qps_session)});
    table.AddRow(
        {"session_prepare_seconds", std::to_string(session_prepare_seconds)});
    table.AddRow({"speedup_vs_single_shot",
                  std::to_string(qps_session / qps_single_shot)});
    table.AddRow({"speedup_vs_warm_engine",
                  std::to_string(qps_session / qps_warm_engine)});
  }
  if (run_arena) {
    table.AddRow({"qps_arena_off", std::to_string(qps_arena_off)});
    table.AddRow({"qps_arena_on", std::to_string(qps_arena_on)});
    table.AddRow(
        {"arena_speedup", std::to_string(qps_arena_on / qps_arena_off)});
  }
  if (run_adaptive) {
    table.AddRow({"qps_adaptive_off", std::to_string(qps_adaptive_off)});
    table.AddRow({"qps_adaptive_on", std::to_string(qps_adaptive_on)});
    table.AddRow({"adaptive_speedup",
                  std::to_string(qps_adaptive_on / qps_adaptive_off)});
    table.AddRow({"mean_worlds_used", std::to_string(mean_worlds_used)});
  }
  if (run_markov) {
    table.AddRow({"qps_markov_approx", std::to_string(qps_markov)});
  }
  if (run_exact) {
    table.AddRow({"qps_exact", std::to_string(qps_exact)});
  }
  table.Print(std::cout, "micro_engine results");

  bench::JsonWriter json;
  json.Add("benchmark", std::string("micro_engine"));
  json.Add("executor", executor);
  json.Add("arena", arena_mode);
  json.Add("adaptive", adaptive_mode);
  json.Add("adaptive_worlds", static_cast<double>(adaptive_worlds));
  json.Add("num_states", static_cast<double>(config.num_states));
  json.Add("num_objects", static_cast<double>(config.num_objects));
  json.Add("num_worlds", static_cast<double>(num_worlds));
  json.Add("num_queries", static_cast<double>(num_queries));
  json.Add("interval_length", static_cast<double>(interval_length));
  json.Add("threads", static_cast<double>(threads));
  if (run_mc) {
    json.Add("qps_single_shot", qps_single_shot);
    json.Add("qps_warm_engine", qps_warm_engine);
    json.Add("qps_session_batch", qps_session);
    json.Add("session_prepare_seconds", session_prepare_seconds);
    json.Add("speedup_vs_single_shot", qps_session / qps_single_shot);
    json.Add("speedup_vs_warm_engine", qps_session / qps_warm_engine);
  }
  if (run_arena) {
    json.Add("qps_arena_off", qps_arena_off);
    json.Add("qps_arena_on", qps_arena_on);
    json.Add("arena_speedup", qps_arena_on / qps_arena_off);
  }
  if (run_adaptive) {
    json.Add("qps_adaptive_off", qps_adaptive_off);
    json.Add("qps_adaptive_on", qps_adaptive_on);
    json.Add("adaptive_speedup", qps_adaptive_on / qps_adaptive_off);
    json.Add("mean_worlds_used", mean_worlds_used);
  }
  if (run_markov) {
    json.Add("markov_objects", static_cast<double>(markov_objects));
    json.Add("markov_queries", static_cast<double>(markov_queries));
    json.Add("qps_markov_approx", qps_markov);
  }
  if (run_exact) {
    json.Add("exact_objects", static_cast<double>(exact_objects));
    json.Add("exact_queries", static_cast<double>(exact_queries));
    json.Add("qps_exact", qps_exact);
  }
  if (!trace_out.empty()) {
    ust::trace::Disable();
    if (!ust::trace::DumpJson(trace_out)) {
      std::fprintf(stderr, "failed to write %s\n", trace_out.c_str());
      return 1;
    }
    std::printf("# wrote %s (%llu events)\n", trace_out.c_str(),
                static_cast<unsigned long long>(ust::trace::RecordedCount()));
  }
  if (!json.WriteFile(json_out)) {
    std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
    return 1;
  }
  std::printf("# wrote %s\n", json_out.c_str());
  return 0;
}
