// Query-throughput microbenchmark of the plan-based pipeline: the same
// 50-query P∀NNQ batch evaluated three ways —
//
//   single_shot : the pre-session pattern — every query constructs the full
//                 stack from scratch (posteriors invalidated, fresh
//                 QueryEngine), paying adaptation, sampler warm-up and
//                 scratch allocation per query;
//   warm_engine : one QueryEngine over a warm database — posterior caches
//                 amortize, but pruning state and sampling scratch are
//                 still rebuilt per call;
//   session     : QuerySession::Prepare + RunAll — shared immutable state,
//                 cached index slabs, per-worker scratch, planner on.
//
// Emits BENCH_engine.json (queries/sec for each mode plus the speedups) so
// engine throughput is tracked machine-readably across PRs, like
// BENCH_sampling.json for the sampling hot path.
//
// Flags (defaults sized for a single CI core):
//   --states=10000 --objects=48 --lifetime=96 --obs_interval=12
//   --horizon=120 --interval=10 --worlds=500 --queries=50 --threads=1
//   --json_out=BENCH_engine.json
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "gen/synthetic.h"
#include "gen/workload.h"
#include "index/ust_tree.h"
#include "query/engine.h"
#include "query/session.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace ust;
using namespace ust::bench;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  SyntheticConfig config;
  config.num_states = flags.GetInt("states", 10000);
  config.num_objects = flags.GetInt("objects", 48);
  config.lifetime = static_cast<Tic>(flags.GetInt("lifetime", 96));
  config.obs_interval = static_cast<Tic>(flags.GetInt("obs_interval", 12));
  config.horizon = static_cast<Tic>(flags.GetInt("horizon", 120));
  config.seed = 6;
  const size_t interval_length = flags.GetInt("interval", 10);
  const size_t num_worlds = flags.GetInt("worlds", 500);
  const size_t num_queries = flags.GetInt("queries", 50);
  const int threads = flags.GetInt("threads", 1);
  const std::string json_out = flags.GetString("json_out", "BENCH_engine.json");

  PrintConfig("micro_engine: plan-based query pipeline throughput", flags,
              "states=" + std::to_string(config.num_states) +
                  " objects=" + std::to_string(config.num_objects) +
                  " worlds=" + std::to_string(num_worlds) +
                  " queries=" + std::to_string(num_queries) +
                  " threads=" + std::to_string(threads));

  auto world_result = GenerateSyntheticWorld(config);
  UST_CHECK(world_result.ok());
  SyntheticWorld world = world_result.MoveValue();
  TrajectoryDatabase& db = *world.db;
  auto tree = UstTree::Build(db);
  UST_CHECK(tree.ok());

  const TimeInterval T = BusiestInterval(db, interval_length);
  Rng qrng(3);
  std::vector<QuerySpec> specs;
  specs.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    QuerySpec spec;
    spec.kind = QueryKind::kForall;
    spec.q = RandomQueryState(db.space(), qrng);
    spec.T = T;
    spec.tau = 0.0;
    spec.mc.num_worlds = num_worlds;
    spec.mc.seed = 1000 + i;
    // Pin the backend: the harness asserts bitwise equality against the
    // Monte-Carlo-only QueryEngine modes, so a planner routing a small
    // --objects run to enumeration must not change the session's numbers.
    spec.backend = ExecutorKind::kMonteCarlo;
    specs.push_back(spec);
  }

  // ---- Mode 1: repeated single-shot QueryEngine construction. ----
  // Every query builds the stack cold: posteriors (and their samplers) are
  // dropped, a fresh engine is constructed, all scratch reallocates.
  double single_shot_seconds = 0.0;
  std::vector<PnnQueryResult> single_shot_results(num_queries);
  {
    Timer t;
    for (size_t i = 0; i < num_queries; ++i) {
      db.InvalidatePosteriors();
      QueryEngine engine(db, &tree.value());
      auto r = engine.Forall(specs[i].q, specs[i].T, specs[i].tau, specs[i].mc);
      UST_CHECK(r.ok());
      single_shot_results[i] = r.MoveValue();
    }
    single_shot_seconds = t.Seconds();
  }

  // ---- Mode 2: one QueryEngine over a warm database. ----
  double warm_engine_seconds = 0.0;
  std::vector<PnnQueryResult> warm_results(num_queries);
  {
    UST_CHECK(db.EnsureAllPosteriors().ok());
    QueryEngine engine(db, &tree.value());
    Timer t;
    for (size_t i = 0; i < num_queries; ++i) {
      auto r = engine.Forall(specs[i].q, specs[i].T, specs[i].tau, specs[i].mc);
      UST_CHECK(r.ok());
      warm_results[i] = r.MoveValue();
    }
    warm_engine_seconds = t.Seconds();
  }

  // ---- Mode 3: QuerySession batch. Prepare (the one-time warm-up) is
  // timed separately — the warm-engine mode gets its posteriors for free
  // outside its timer, so the symmetric comparison is RunAll vs the warm
  // query loop; prepare_seconds quantifies the amortized one-time cost.
  double session_prepare_seconds = 0.0;
  double session_seconds = 0.0;
  std::vector<QueryOutcome> session_results;
  {
    db.InvalidatePosteriors();  // the session rebuilds its own shared state
    SessionOptions options;
    options.threads = threads;
    QuerySession session(db, &tree.value(), options);
    Timer prep;
    UST_CHECK(session.Prepare().ok());
    session_prepare_seconds = prep.Seconds();
    Timer t;
    session_results = session.RunAll(specs);
    session_seconds = t.Seconds();
  }

  // The three modes must agree bit for bit (same seeds, same backend):
  // the session batch is the serial engine, just cheaper.
  for (size_t i = 0; i < num_queries; ++i) {
    UST_CHECK(session_results[i].status.ok());
    const auto& a = session_results[i].pnn.results;
    const auto& b = single_shot_results[i].results;
    const auto& c = warm_results[i].results;
    UST_CHECK(a.size() == b.size() && a.size() == c.size());
    for (size_t j = 0; j < a.size(); ++j) {
      UST_CHECK(a[j].object == b[j].object && a[j].prob == b[j].prob);
      UST_CHECK(a[j].object == c[j].object && a[j].prob == c[j].prob);
    }
  }

  const double n = static_cast<double>(num_queries);
  const double qps_single_shot = n / single_shot_seconds;
  const double qps_warm_engine = n / warm_engine_seconds;
  const double qps_session = n / session_seconds;

  CsvTable table({"metric", "value"});
  table.AddRow({"qps_single_shot", std::to_string(qps_single_shot)});
  table.AddRow({"qps_warm_engine", std::to_string(qps_warm_engine)});
  table.AddRow({"qps_session_batch", std::to_string(qps_session)});
  table.AddRow(
      {"session_prepare_seconds", std::to_string(session_prepare_seconds)});
  table.AddRow({"speedup_vs_single_shot",
                std::to_string(qps_session / qps_single_shot)});
  table.AddRow({"speedup_vs_warm_engine",
                std::to_string(qps_session / qps_warm_engine)});
  table.Print(std::cout, "micro_engine results");

  JsonWriter json;
  json.Add("benchmark", std::string("micro_engine"));
  json.Add("num_states", static_cast<double>(config.num_states));
  json.Add("num_objects", static_cast<double>(config.num_objects));
  json.Add("num_worlds", static_cast<double>(num_worlds));
  json.Add("num_queries", static_cast<double>(num_queries));
  json.Add("interval_length", static_cast<double>(interval_length));
  json.Add("threads", static_cast<double>(threads));
  json.Add("qps_single_shot", qps_single_shot);
  json.Add("qps_warm_engine", qps_warm_engine);
  json.Add("qps_session_batch", qps_session);
  json.Add("session_prepare_seconds", session_prepare_seconds);
  json.Add("speedup_vs_single_shot", qps_session / qps_single_shot);
  json.Add("speedup_vs_warm_engine", qps_session / qps_warm_engine);
  if (!json.WriteFile(json_out)) {
    std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
    return 1;
  }
  std::printf("# wrote %s\n", json_out.c_str());
  return 0;
}
