// Ablation: how many sampled worlds do the estimators actually need?
//  (a) RMSE of fixed-size sampling against a high-accuracy reference, versus
//      the number of worlds — the empirical counterpart of the Hoeffding
//      bound the paper cites [29].
//  (b) Worlds consumed by the sequential threshold decision (Wilson
//      intervals) versus the a-priori Hoeffding count — adaptive stopping
//      decides clear cases orders of magnitude earlier.
#include "bench_common.h"
#include "query/adaptive.h"
#include "util/stats.h"

using namespace ust;
using namespace ust::bench;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const size_t states = flags.GetInt("states", 3000);
  const size_t objects = flags.GetInt("objects", 8);
  const size_t ref_worlds = flags.GetInt("ref_worlds", 200000);

  PrintConfig("Ablation: sample-count requirements", flags,
              "states=" + std::to_string(states) +
                  " objects=" + std::to_string(objects));

  SyntheticConfig config;
  config.num_states = states;
  config.num_objects = objects;
  config.lifetime = 20;
  config.obs_interval = 10;
  config.lag = 0.3;
  config.horizon = 20;
  config.seed = 21;
  auto world = GenerateSyntheticWorld(config);
  UST_CHECK(world.ok());
  const TrajectoryDatabase& db = *world.value().db;
  TimeInterval T{5, 12};
  std::vector<ObjectId> ids = db.AliveThroughout(T.start, T.end);
  UST_CHECK(ids.size() >= 2);
  Rng rng(5);

  // Scan for an informative query: one where some object's P∀NN is genuinely
  // uncertain (otherwise every estimator is trivially exact).
  QueryTrajectory q = RandomQueryState(db.space(), rng);
  Result<std::vector<PnnEstimate>> ref = Status::Internal("unset");
  for (int attempt = 0; attempt < 64; ++attempt) {
    QueryTrajectory candidate = RandomQueryState(db.space(), rng);
    MonteCarloOptions probe_opts;
    probe_opts.num_worlds = 2000;
    probe_opts.seed = 999;
    auto probe = EstimatePnn(db, ids, ids, candidate, T, probe_opts);
    UST_CHECK(probe.ok());
    bool informative = false;
    for (const auto& e : probe.value()) {
      if (e.forall_prob > 0.1 && e.forall_prob < 0.9) informative = true;
    }
    if (informative || attempt == 63) {
      q = candidate;
      MonteCarloOptions ref_opts;
      ref_opts.num_worlds = ref_worlds;
      ref_opts.seed = 999;
      ref = EstimatePnn(db, ids, ids, q, T, ref_opts);
      break;
    }
  }
  UST_CHECK(ref.ok());

  // (a) RMSE vs number of worlds, averaged over repetitions.
  CsvTable rmse_table({"worlds", "rmse_forall", "hoeffding_eps_99"});
  for (size_t worlds : {100u, 400u, 1600u, 6400u, 25600u}) {
    std::vector<double> est, truth;
    for (uint64_t rep = 0; rep < 5; ++rep) {
      MonteCarloOptions opts;
      opts.num_worlds = worlds;
      opts.seed = 1000 + rep;
      auto sa = EstimatePnn(db, ids, ids, q, T, opts);
      UST_CHECK(sa.ok());
      for (size_t i = 0; i < ids.size(); ++i) {
        est.push_back(sa.value()[i].forall_prob);
        truth.push_back(ref.value()[i].forall_prob);
      }
    }
    rmse_table.AddRow({static_cast<double>(worlds), Rmse(est, truth),
                       HoeffdingEpsilon(worlds, 0.01)});
  }
  rmse_table.Print(std::cout, "Sampling error vs world count");
  std::printf("# expected: RMSE ~ 1/sqrt(worlds), well below the Hoeffding "
              "worst case\n\n");

  // (b) Sequential decision cost vs the fixed Hoeffding sizing.
  CsvTable seq_table({"tau", "sequential_worlds", "hoeffding_worlds"});
  for (double tau : {0.1, 0.3, 0.5, 0.9}) {
    SequentialOptions opts;
    opts.delta = 0.05;
    opts.max_worlds = 1 << 20;
    opts.seed = 77;
    auto decision = DecideThresholdSequential(db, ids, ids, q, T, tau,
                                              PnnSemantics::kForall, opts);
    UST_CHECK(decision.ok());
    seq_table.AddRow({tau,
                      static_cast<double>(decision.value().worlds_used),
                      static_cast<double>(HoeffdingSampleCount(0.01, 0.05))});
  }
  seq_table.Print(std::cout, "Sequential threshold decisions");
  std::printf("# expected: sequential worlds far below the 18k Hoeffding "
              "sizing whenever probabilities are far from tau\n");
  return 0;
}
