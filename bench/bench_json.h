// JSON emitter for the machine-readable benchmark artifacts
// (BENCH_*.json): a thin pretty-printing adapter over ust::JsonWriter
// (util/stats.h), so every JSON producer in the tree shares one code path
// for escaping, empty arrays and comma placement. Flat object of
// string/number fields plus one level of nested objects — enough for perf
// tracking across PRs, no dependency.
#pragma once

#include <cstdio>
#include <string>

#include "util/stats.h"

namespace ust::bench {

/// \brief Accumulates key/value pairs and writes them as a JSON object.
class JsonWriter {
 public:
  void Add(const std::string& key, double value) { writer_.Double(key, value); }
  void Add(const std::string& key, const std::string& value) {
    writer_.String(key, value);
  }
  /// Nested object: emitted verbatim (caller renders it with another writer).
  void AddObject(const std::string& key, const std::string& rendered) {
    writer_.Raw(key, rendered);
  }

  /// One "key": value per line, two-space indent — the BENCH house style.
  std::string Render() const { return writer_.Render(/*pretty=*/true); }

  /// Write to `path`; returns false on IO failure.
  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string out = Render();
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    return true;
  }

 private:
  ust::JsonWriter writer_;
};

}  // namespace ust::bench
