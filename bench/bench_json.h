// Minimal JSON emitter for the machine-readable benchmark artifacts
// (BENCH_*.json). Flat object of string/number fields plus one level of
// nested objects — enough for perf tracking across PRs, no dependency.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace ust::bench {

/// \brief Accumulates key/value pairs and writes them as a JSON object.
class JsonWriter {
 public:
  void Add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    fields_.push_back({key, buf});
  }
  void Add(const std::string& key, const std::string& value) {
    fields_.push_back({key, "\"" + value + "\""});
  }
  /// Nested object: emitted verbatim (caller renders it with another writer).
  void AddObject(const std::string& key, const std::string& rendered) {
    fields_.push_back({key, rendered});
  }

  std::string Render() const {
    std::string out = "{";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ",";
      out += "\n  \"" + fields_[i].first + "\": " + fields_[i].second;
    }
    out += "\n}\n";
    return out;
  }

  /// Write to `path`; returns false on IO failure.
  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::string out = Render();
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    return true;
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace ust::bench
