// Microbenchmarks of the forward-backward model adaptation (Algorithm 2):
// cost per object as a function of observation spacing, slack and network
// density. The paper's complexity bound is O(|T| * |S|^2); with sparse
// diamonds the effective cost is O(|T| * W * deg) for diamond width W.
#include <benchmark/benchmark.h>

#include "gen/synthetic.h"
#include "model/adaptation.h"
#include "util/check.h"
#include "util/rng.h"

namespace {

using namespace ust;

struct AdaptationFixture {
  SyntheticWorld world;
  explicit AdaptationFixture(int obs_interval, double lag = 0.5,
                             double branching = 8.0) {
    SyntheticConfig config;
    config.num_states = 20000;
    config.branching = branching;
    config.num_objects = 16;
    config.lifetime = 96;
    config.obs_interval = obs_interval;
    config.lag = lag;
    config.horizon = 96;
    config.seed = 5;
    auto result = GenerateSyntheticWorld(config);
    UST_CHECK(result.ok());
    world = result.MoveValue();
  }
};

void BM_AdaptObsInterval(benchmark::State& state) {
  AdaptationFixture fixture(static_cast<int>(state.range(0)));
  const auto& db = *fixture.world.db;
  size_t i = 0;
  for (auto _ : state) {
    const UncertainObject& obj = db.object(i++ % db.size());
    auto model = AdaptTransitionMatrices(obj.matrix(), obj.observations());
    UST_CHECK(model.ok());
    benchmark::DoNotOptimize(model.value());
  }
  state.SetLabel("obs_interval=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_AdaptObsInterval)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_AdaptSlack(benchmark::State& state) {
  // lag v: smaller v = more slack = wider diamonds = more work.
  AdaptationFixture fixture(12, state.range(0) / 100.0);
  const auto& db = *fixture.world.db;
  size_t i = 0;
  for (auto _ : state) {
    const UncertainObject& obj = db.object(i++ % db.size());
    auto model = AdaptTransitionMatrices(obj.matrix(), obj.observations());
    UST_CHECK(model.ok());
    benchmark::DoNotOptimize(model.value());
  }
  state.SetLabel("v=0." + std::to_string(state.range(0)));
}
BENCHMARK(BM_AdaptSlack)->Arg(25)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_ForwardFilterOnly(benchmark::State& state) {
  AdaptationFixture fixture(12);
  const auto& db = *fixture.world.db;
  size_t i = 0;
  for (auto _ : state) {
    const UncertainObject& obj = db.object(i++ % db.size());
    auto marginals = ForwardFilterMarginals(obj.matrix(), obj.observations());
    UST_CHECK(marginals.ok());
    benchmark::DoNotOptimize(marginals.value());
  }
}
BENCHMARK(BM_ForwardFilterOnly)->Unit(benchmark::kMillisecond);

void BM_AdaptBranching(benchmark::State& state) {
  AdaptationFixture fixture(12, 0.5, static_cast<double>(state.range(0)));
  const auto& db = *fixture.world.db;
  size_t i = 0;
  for (auto _ : state) {
    const UncertainObject& obj = db.object(i++ % db.size());
    auto model = AdaptTransitionMatrices(obj.matrix(), obj.observations());
    UST_CHECK(model.ok());
    benchmark::DoNotOptimize(model.value());
  }
  state.SetLabel("b=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_AdaptBranching)->Arg(6)->Arg(8)->Arg(10)
    ->Unit(benchmark::kMillisecond);

}  // namespace
