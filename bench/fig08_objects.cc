// Figure 8: varying the number of objects |D| (synthetic data).
// Paper setting: |D| in {1k, 10k, 20k}. Scaled default: {100, 1000, 2000}.
// Expected shape: TS, FA, EX and |C|/|I| all grow with |D|.
#include "bench_common.h"

using namespace ust;
using namespace ust::bench;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const size_t states = flags.GetInt("states", 50000);
  const size_t samples = flags.GetInt("samples", 1000);
  const size_t queries = flags.GetInt("queries", 5);
  const size_t interval = flags.GetInt("interval", 10);
  std::vector<int64_t> sweep = {flags.GetInt("objects1", 100),
                                flags.GetInt("objects2", 1000),
                                flags.GetInt("objects3", 2000)};

  PrintConfig("Figure 8: varying the number of objects |D|", flags,
              "states=" + std::to_string(states) +
                  " samples=" + std::to_string(samples) +
                  " queries=" + std::to_string(queries));
  CsvTable table({"objects", "ts_s", "forall_s", "exists_s", "candidates",
                  "influencers"});
  for (int64_t n : sweep) {
    SyntheticConfig config;
    config.num_states = states;
    config.branching = 8.0;
    config.num_objects = static_cast<size_t>(n);
    config.lifetime = 100;
    config.obs_interval = 10;
    config.horizon = 1000;
    config.seed = 7;
    auto world = GenerateSyntheticWorld(config);
    UST_CHECK(world.ok());
    PnnCell cell =
        RunPnnExperiment(*world.value().db, queries, interval, samples, 44);
    table.AddRow({static_cast<double>(n), cell.ts_seconds, cell.forall_seconds,
                  cell.exists_seconds, cell.avg_candidates,
                  cell.avg_influencers});
  }
  table.Print(std::cout, "Figure 8 series");
  return 0;
}
