// Figure 11: effectiveness of sampling — scatterplot of estimated vs
// reference probability for P∀NN (left) and P∃NN (right).
// Series: SA — our sampling approach (10^4 worlds);
//         SS — the snapshot competitor adapted from Xu et al. [19];
//         REF — a 10^6-world approximation of the exact probability
//               (scaled default 10^5).
// Expected shape: SA hugs the diagonal; SS underestimates P∀NN and
// overestimates P∃NN (it ignores temporal correlation).
#include "bench_common.h"
#include "query/snapshot.h"
#include "util/stats.h"

using namespace ust;
using namespace ust::bench;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const size_t states = flags.GetInt("states", 3000);
  const size_t objects = flags.GetInt("objects", 8);
  const size_t sa_worlds = flags.GetInt("sa_worlds", 10000);
  const size_t ref_worlds = flags.GetInt("ref_worlds", 100000);
  const size_t num_queries = flags.GetInt("queries", 12);

  PrintConfig("Figure 11: effectiveness of sampling (SA) vs snapshot (SS)",
              flags,
              "v=0.2 |T|=5 sa_worlds=" + std::to_string(sa_worlds) +
                  " ref_worlds=" + std::to_string(ref_worlds));

  SyntheticConfig config;
  config.num_states = states;
  config.branching = 8.0;
  config.num_objects = objects;
  config.lifetime = 20;
  config.obs_interval = 10;
  config.lag = 0.2;  // the paper's v = 0.2: wide diamonds
  config.horizon = 20;
  config.seed = 12;
  auto world = GenerateSyntheticWorld(config);
  UST_CHECK(world.ok());
  const TrajectoryDatabase& db = *world.value().db;
  TimeInterval T{5, 9};  // |T| = 5
  std::vector<ObjectId> ids = db.AliveThroughout(T.start, T.end);
  UST_CHECK(!ids.empty());

  CsvTable table({"kind", "ref", "sa", "ss"});
  std::vector<double> sa_err_fa, ss_err_fa, sa_err_ex, ss_err_ex;
  Rng rng(77);
  for (size_t qi = 0; qi < num_queries; ++qi) {
    QueryTrajectory q = RandomQueryState(db.space(), rng);
    MonteCarloOptions ref_opts{ref_worlds, 1, 9000 + qi};
    MonteCarloOptions sa_opts{sa_worlds, 1, 100 + qi};
    auto ref = EstimatePnn(db, ids, ids, q, T, ref_opts);
    auto sa = EstimatePnn(db, ids, ids, q, T, sa_opts);
    auto ss = SnapshotEstimatePnn(db, ids, q, T);
    UST_CHECK(ref.ok() && sa.ok() && ss.ok());
    for (size_t i = 0; i < ids.size(); ++i) {
      const double ref_fa = ref.value()[i].forall_prob;
      const double ref_ex = ref.value()[i].exists_prob;
      // Skip degenerate points (0 or 1 exactly) like the paper's scatter.
      if (ref_fa > 0.005 && ref_fa < 0.995) {
        table.AddRow({0.0, ref_fa, sa.value()[i].forall_prob,
                      ss.value()[i].forall_prob});
        sa_err_fa.push_back(sa.value()[i].forall_prob - ref_fa);
        ss_err_fa.push_back(ss.value()[i].forall_prob - ref_fa);
      }
      if (ref_ex > 0.005 && ref_ex < 0.995) {
        table.AddRow({1.0, ref_ex, sa.value()[i].exists_prob,
                      ss.value()[i].exists_prob});
        sa_err_ex.push_back(sa.value()[i].exists_prob - ref_ex);
        ss_err_ex.push_back(ss.value()[i].exists_prob - ref_ex);
      }
    }
  }
  table.Print(std::cout,
              "Figure 11 scatter (kind: 0 = P-forall-NN, 1 = P-exists-NN)");
  std::printf("# summary: mean signed error vs REF\n");
  std::printf("# forall: SA %+.4f  SS %+.4f (expected: SS strongly negative)\n",
              Mean(sa_err_fa), Mean(ss_err_fa));
  std::printf("# exists: SA %+.4f  SS %+.4f (expected: SS strongly positive)\n",
              Mean(sa_err_ex), Mean(ss_err_ex));
  return 0;
}
