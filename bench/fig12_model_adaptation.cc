// Figure 12: effectiveness of the forward-backward model adaptation on
// (substituted) real data. For held-out taxi trajectories we compare, per
// tic, the expected distance between each model's marginal distribution and
// the taxi's true position:
//   NO  — a-priori propagation from the first observation only,
//   F   — forward-only filtering,
//   FB  — the full forward-backward adaptation (this paper),
//   U   — uniform distribution over the reachable states (cylinders/beads
//         stand-in [13, 16]),
//   FBU — forward-backward over a uniformized transition matrix (unlearned
//         turning probabilities).
// Expected shape: NO >> F >> FB; U > FBU > FB; F spikes right before an
// observation while FB stays flat.
#include "bench_common.h"
#include "gen/roadnet.h"
#include "model/adaptation.h"

using namespace ust;
using namespace ust::bench;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const size_t states = flags.GetInt("states", 6000);
  const size_t objects = flags.GetInt("objects", 40);
  const size_t trips = flags.GetInt("training_trips", 300);
  const int interval = static_cast<int>(flags.GetInt("interval", 10));
  const int window = static_cast<int>(flags.GetInt("window", 30));

  PrintConfig("Figure 12: effectiveness of the model adaptation", flags,
              "states=" + std::to_string(states) + " objects=" +
                  std::to_string(objects) + " obs_interval=" +
                  std::to_string(interval) + " window=" +
                  std::to_string(window) + " tics");

  RoadnetConfig config;
  config.num_states = states;
  config.num_objects = objects;
  config.num_training_trips = trips;
  config.lifetime = window + interval;  // at least `window` evaluable tics
  config.obs_interval = interval;
  config.horizon = config.lifetime;
  config.seed = 19;
  auto world = GenerateRoadnetWorld(config);
  UST_CHECK(world.ok());
  const TrajectoryDatabase& db = *world.value().db;
  const StateSpace& space = db.space();
  TransitionMatrix uniformized = world.value().matrix->Uniformized();

  std::vector<double> err_no(window, 0), err_f(window, 0), err_fb(window, 0),
      err_u(window, 0), err_fbu(window, 0);
  std::vector<double> counts(window, 0);
  for (size_t i = 0; i < db.size(); ++i) {
    const UncertainObject& obj = db.object(static_cast<ObjectId>(i));
    const Trajectory& truth = world.value().ground_truth[i];
    auto fb = obj.Posterior();
    UST_CHECK(fb.ok());
    auto f = ForwardFilterMarginals(obj.matrix(), obj.observations());
    UST_CHECK(f.ok());
    auto no = AprioriMarginals(obj.matrix(), obj.observations().first(),
                               fb.value()->num_slices());
    auto u = UniformReachableMarginals(*fb.value());
    auto fbu = AdaptTransitionMatrices(uniformized, obj.observations());
    UST_CHECK(fbu.ok());
    for (int rel = 0; rel < window; ++rel) {
      Tic t = truth.start + rel;
      if (t > truth.end()) break;
      const Point2& pos = space.coord(truth.At(t));
      err_no[rel] += no[rel].ExpectedDistanceTo(space, pos);
      err_f[rel] += f.value()[rel].ExpectedDistanceTo(space, pos);
      err_fb[rel] += fb.value()->MarginalAt(t).ExpectedDistanceTo(space, pos);
      err_u[rel] += u[rel].ExpectedDistanceTo(space, pos);
      err_fbu[rel] +=
          fbu.value().MarginalAt(t).ExpectedDistanceTo(space, pos);
      counts[rel] += 1.0;
    }
  }
  CsvTable table({"tic", "NO", "F", "FB", "U", "FBU"});
  double sum_no = 0, sum_f = 0, sum_fb = 0, sum_u = 0, sum_fbu = 0;
  for (int rel = 0; rel < window; ++rel) {
    if (counts[rel] == 0) break;
    table.AddRow({static_cast<double>(rel), err_no[rel] / counts[rel],
                  err_f[rel] / counts[rel], err_fb[rel] / counts[rel],
                  err_u[rel] / counts[rel], err_fbu[rel] / counts[rel]});
    sum_no += err_no[rel] / counts[rel];
    sum_f += err_f[rel] / counts[rel];
    sum_fb += err_fb[rel] / counts[rel];
    sum_u += err_u[rel] / counts[rel];
    sum_fbu += err_fbu[rel] / counts[rel];
  }
  table.Print(std::cout, "Figure 12 series (mean error per tic)");
  std::printf("# totals: NO %.4f  F %.4f  FB %.4f  U %.4f  FBU %.4f\n",
              sum_no, sum_f, sum_fb, sum_u, sum_fbu);
  std::printf("# expected ordering: FB < FBU < U and FB < F < NO\n");
  return 0;
}
