// Figure 13: PCNN queries, varying the number of objects |D|.
// Paper series (left): CPU time of TS (model adaptation) and NNA (the
// Apriori + sampling evaluation); (right): number of (unprocessed) result
// timestamp sets. Paper: |D| in {1k, 10k, 20k}, tau = 0.5.
// Scaled default: {100, 500, 1000}.
// Expected shape: TS grows with |D|; #timestamp sets DECREASES with |D|
// (more pruners lower each candidate's probabilities).
#include "bench_common.h"
#include "query/pcnn.h"

using namespace ust;
using namespace ust::bench;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const size_t states = flags.GetInt("states", 20000);
  const size_t samples = flags.GetInt("samples", 1000);
  const size_t queries = flags.GetInt("queries", 5);
  const size_t interval = flags.GetInt("interval", 10);
  const double tau = flags.GetDouble("tau", 0.5);
  std::vector<int64_t> sweep = {flags.GetInt("objects1", 100),
                                flags.GetInt("objects2", 500),
                                flags.GetInt("objects3", 1000)};

  PrintConfig("Figure 13: PCNN, varying the number of objects |D|", flags,
              "states=" + std::to_string(states) + " tau=" +
                  std::to_string(tau) + " samples=" + std::to_string(samples));
  CsvTable table({"objects", "ts_s", "nna_s", "timestamp_sets"});
  for (int64_t n : sweep) {
    SyntheticConfig config;
    config.num_states = states;
    config.branching = 8.0;
    config.num_objects = static_cast<size_t>(n);
    config.lifetime = 100;
    config.obs_interval = 10;
    config.horizon = 1000;
    config.seed = 7;
    auto world = GenerateSyntheticWorld(config);
    UST_CHECK(world.ok());
    const TrajectoryDatabase& db = *world.value().db;
    auto tree = UstTree::Build(db);
    UST_CHECK(tree.ok());
    QueryEngine engine(db, &tree.value());

    db.InvalidatePosteriors();
    Timer ts_timer;
    UST_CHECK(db.EnsureAllPosteriors().ok());
    double ts_seconds = ts_timer.Seconds();

    Rng rng(46);
    TimeInterval T = BusiestInterval(db, interval);
    MonteCarloOptions options;
    options.num_worlds = samples;
    double nna_seconds = 0;
    double sets = 0;
    for (size_t i = 0; i < queries; ++i) {
      QueryTrajectory q = RandomQueryState(db.space(), rng);
      options.seed = 300 + i;
      Timer nna_timer;
      auto result = engine.Continuous(q, T, tau, options);
      nna_seconds += nna_timer.Seconds();
      UST_CHECK(result.ok());
      sets += static_cast<double>(result.value().pcnn.entries.size());
    }
    table.AddRow({static_cast<double>(n), ts_seconds, nna_seconds,
                  sets / static_cast<double>(queries)});
  }
  table.Print(std::cout, "Figure 13 series");
  return 0;
}
