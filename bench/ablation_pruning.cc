// Ablation: what does the UST-tree pruning actually buy?
// Compares, per database size: query latency and the number of objects that
// enter the sampling phase, with the index versus the no-index fallback
// (every alive object participates). Also reports index build time.
#include "bench_common.h"

using namespace ust;
using namespace ust::bench;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const size_t states = flags.GetInt("states", 20000);
  const size_t samples = flags.GetInt("samples", 1000);
  const size_t queries = flags.GetInt("queries", 5);
  const size_t interval = flags.GetInt("interval", 10);
  std::vector<int64_t> sweep = {flags.GetInt("objects1", 200),
                                flags.GetInt("objects2", 1000)};

  PrintConfig("Ablation: UST-tree pruning on vs off", flags,
              "states=" + std::to_string(states) +
                  " samples=" + std::to_string(samples));
  CsvTable table({"objects", "build_s", "query_indexed_s", "query_full_s",
                  "participants_indexed", "participants_full"});
  for (int64_t n : sweep) {
    SyntheticConfig config;
    config.num_states = states;
    config.num_objects = static_cast<size_t>(n);
    config.lifetime = 100;
    config.obs_interval = 10;
    config.horizon = 1000;
    config.seed = 7;
    auto world = GenerateSyntheticWorld(config);
    UST_CHECK(world.ok());
    const TrajectoryDatabase& db = *world.value().db;
    UST_CHECK(db.EnsureAllPosteriors().ok());

    Timer build_timer;
    auto tree = UstTree::Build(db);
    UST_CHECK(tree.ok());
    const double build_s = build_timer.Seconds();

    QueryEngine indexed(db, &tree.value());
    QueryEngine full(db);
    Rng rng(8);
    TimeInterval T = BusiestInterval(db, interval);
    MonteCarloOptions options;
    options.num_worlds = samples;
    double indexed_s = 0, full_s = 0, parts_indexed = 0, parts_full = 0;
    for (size_t i = 0; i < queries; ++i) {
      QueryTrajectory q = RandomQueryState(db.space(), rng);
      options.seed = 500 + i;
      Timer t1;
      auto a = indexed.Forall(q, T, 0.0, options);
      indexed_s += t1.Seconds();
      UST_CHECK(a.ok());
      Timer t2;
      auto b = full.Forall(q, T, 0.0, options);
      full_s += t2.Seconds();
      UST_CHECK(b.ok());
      parts_indexed += static_cast<double>(a.value().num_influencers);
      parts_full += static_cast<double>(b.value().num_influencers);
    }
    table.AddRow({static_cast<double>(n), build_s, indexed_s, full_s,
                  parts_indexed / queries, parts_full / queries});
  }
  table.Print(std::cout, "Pruning ablation");
  std::printf("# expected: indexed query time and participants orders of "
              "magnitude below the full scan\n");
  return 0;
}
