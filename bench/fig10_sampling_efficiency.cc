// Figure 10: efficiency of sampling WITHOUT the model adaptation.
// Paper series: expected number of trajectories drawn to obtain one valid
// sample, versus the number of observations, for
//   TS1 — naive forward sampling, reject on any missed observation
//         (exponential growth),
//   TS2 — segment-wise rejection (linear growth),
//   FB  — the forward-backward adapted model (always exactly 1).
// TS1 is measured directly while feasible and extrapolated from per-segment
// acceptance rates beyond that (the paper reports expectations as well).
#include <cmath>

#include "bench_common.h"
#include "bench_json.h"
#include "model/samplers.h"

using namespace ust;
using namespace ust::bench;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const size_t states = flags.GetInt("states", 20000);
  const int interval = static_cast<int>(flags.GetInt("interval", 10));
  const int max_obs = static_cast<int>(flags.GetInt("max_obs", 6));
  const size_t ts2_samples = flags.GetInt("ts2_samples", 50);
  const uint64_t ts1_budget = flags.GetInt("ts1_budget", 2000000);
  const std::string json_out =
      flags.GetString("json_out", "BENCH_sampling_efficiency.json");

  PrintConfig(
      "Figure 10: sampling efficiency without model adaptation", flags,
      "states=" + std::to_string(states) + " obs_interval=" +
          std::to_string(interval) + " ts1_budget=" +
          std::to_string(ts1_budget));

  CsvTable table({"num_observations", "ts1_attempts_per_sample",
                  "ts1_measured", "ts2_attempts_per_sample", "fb"});
  bench::JsonWriter json;
  json.Add("benchmark", std::string("fig10_sampling_efficiency"));
  json.Add("num_states", static_cast<double>(states));
  json.Add("obs_interval", static_cast<double>(interval));
  for (int num_obs = 2; num_obs <= max_obs; ++num_obs) {
    SyntheticConfig config;
    config.num_states = states;
    config.branching = 8.0;
    config.num_objects = 1;
    config.lifetime = (num_obs - 1) * interval;
    config.obs_interval = interval;
    config.horizon = config.lifetime;
    config.seed = 100 + num_obs;
    auto world = GenerateSyntheticWorld(config);
    UST_CHECK(world.ok());
    const UncertainObject& obj = world.value().db->object(0);
    Rng rng(31 + num_obs);

    // TS2: measure attempts per sample directly.
    SegmentRejectionSampler ts2(obj.matrix(), obj.observations(), 100000000);
    for (size_t i = 0; i < ts2_samples; ++i) {
      UST_CHECK(ts2.Sample(rng).ok());
    }
    const double ts2_attempts = ts2.stats().AttemptsPerSample();

    // Per-segment acceptance rates give the analytic TS1 expectation:
    // E[attempts] = prod_i 1/p_i (all segments must succeed in one run).
    double expected_ts1 = 1.0;
    const auto& items = obj.observations().items();
    for (size_t i = 0; i + 1 < items.size(); ++i) {
      auto seg = ObservationSeq::Create({items[i], items[i + 1]});
      UST_CHECK(seg.ok());
      SegmentRejectionSampler seg_sampler(obj.matrix(), seg.value(),
                                          100000000);
      for (int s = 0; s < 30; ++s) UST_CHECK(seg_sampler.Sample(rng).ok());
      expected_ts1 *= seg_sampler.stats().AttemptsPerSample();
    }

    // TS1: measure while the expectation fits the attempt budget.
    double ts1_measured = std::nan("");
    if (expected_ts1 * 5 < static_cast<double>(ts1_budget)) {
      NaiveRejectionSampler ts1(obj.matrix(), obj.observations(), ts1_budget);
      size_t got = 0;
      for (int s = 0; s < 5; ++s) {
        if (ts1.Sample(rng).ok()) ++got;
      }
      if (got > 0) ts1_measured = ts1.stats().AttemptsPerSample();
    }

    table.AddRow({static_cast<double>(num_obs), expected_ts1,
                  std::isnan(ts1_measured) ? -1.0 : ts1_measured,
                  ts2_attempts, 1.0});
    const std::string prefix = "obs" + std::to_string(num_obs) + "_";
    json.Add(prefix + "ts1_attempts_per_sample", expected_ts1);
    json.Add(prefix + "ts2_attempts_per_sample", ts2_attempts);
    json.Add(prefix + "fb_attempts_per_sample", 1.0);
  }
  table.Print(std::cout, "Figure 10 series (ts1_measured = -1: beyond budget)");
  if (!json.WriteFile(json_out)) {
    std::fprintf(stderr, "failed to write %s\n", json_out.c_str());
    return 1;
  }
  std::printf("# wrote %s\n", json_out.c_str());
  return 0;
}
