// Figure 14: PCNN queries, varying the probability threshold tau.
// Paper series: CPU time of TS and SA, and the number of result timestamp
// sets, for tau in {0.1, 0.5, 0.9}.
// Expected shape: runtime and #timestamp sets explode as tau -> 0.1 (the
// candidate lattice grows exponentially), shrink towards tau = 0.9.
#include "bench_common.h"
#include "query/pcnn.h"

using namespace ust;
using namespace ust::bench;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  const size_t states = flags.GetInt("states", 20000);
  const size_t objects = flags.GetInt("objects", 500);
  const size_t samples = flags.GetInt("samples", 1000);
  const size_t queries = flags.GetInt("queries", 5);
  const size_t interval = flags.GetInt("interval", 10);

  PrintConfig("Figure 14: PCNN, varying the probability threshold tau", flags,
              "states=" + std::to_string(states) + " objects=" +
                  std::to_string(objects) + " samples=" +
                  std::to_string(samples));

  SyntheticConfig config;
  config.num_states = states;
  config.branching = 8.0;
  config.num_objects = objects;
  config.lifetime = 100;
  config.obs_interval = 10;
  config.horizon = 1000;
  config.seed = 7;
  auto world = GenerateSyntheticWorld(config);
  UST_CHECK(world.ok());
  const TrajectoryDatabase& db = *world.value().db;
  auto tree = UstTree::Build(db);
  UST_CHECK(tree.ok());
  QueryEngine engine(db, &tree.value());

  db.InvalidatePosteriors();
  Timer ts_timer;
  UST_CHECK(db.EnsureAllPosteriors().ok());
  const double ts_seconds = ts_timer.Seconds();

  TimeInterval T = BusiestInterval(db, interval);
  CsvTable table({"tau", "ts_s", "sa_s", "timestamp_sets", "validations"});
  for (double tau : {0.1, 0.5, 0.9}) {
    Rng rng(47);
    MonteCarloOptions options;
    options.num_worlds = samples;
    double sa_seconds = 0, sets = 0, validations = 0;
    for (size_t i = 0; i < queries; ++i) {
      QueryTrajectory q = RandomQueryState(db.space(), rng);
      options.seed = 400 + i;
      Timer sa_timer;
      auto result = engine.Continuous(q, T, tau, options);
      sa_seconds += sa_timer.Seconds();
      UST_CHECK(result.ok());
      sets += static_cast<double>(result.value().pcnn.entries.size());
      validations += static_cast<double>(result.value().pcnn.validations);
    }
    table.AddRow({tau, ts_seconds, sa_seconds,
                  sets / static_cast<double>(queries),
                  validations / static_cast<double>(queries)});
  }
  table.Print(std::cout, "Figure 14 series");
  return 0;
}
