#!/usr/bin/env python3
"""Bench-regression gate: compare a freshly produced BENCH_*.json against the
committed baseline and fail on regression.

Usage:
    tools/check_bench.py --fresh build/BENCH_server.json \
                         --baseline BENCH_server.json

Design (DESIGN.md section 6.3):

* The gate is *direction-aware*: throughput/speedup metrics fail only when
  they drop, latency metrics only when they rise. A faster runner or a perf
  win never trips it.
* Ratio metrics (speedups measured within one run, e.g.
  speedup_server_vs_cold) are machine-portable, so they get the tight
  +-40% noise band the workload's run-to-run jitter comfortably fits in.
* Absolute metrics (worlds/sec, qps, p99 ms) shift with runner hardware —
  baselines are produced on the dev container, checked on CI runners — so
  they get a generous 60% band: they only catch catastrophic (>2.5x)
  collapses, which is exactly what an absolute number can still prove
  across machines.
* Workload-identity keys (states, objects, worlds, queries, threads, ...)
  must match exactly: comparing different workloads is a config bug, not a
  perf result, and fails loudly.

Exit status: 0 all checks pass, 1 regression or config mismatch, 2 usage.
"""

import argparse
import json
import math
import os
import sys

# Direction of badness: "down" fails when fresh < baseline * (1 - band),
# "up" fails when fresh > baseline / (1 - band) — multiplicatively
# symmetric, so a 60% band tolerates the same 2.5x factor in either
# direction (a "+band" up-limit would trip at just 1.6x, far short of the
# catastrophic-collapse contract the absolute metrics promise).
RATIO_BAND = 0.40     # machine-portable within-run ratios
ABSOLUTE_BAND = 0.60  # absolute throughput/latency across machines

# key -> (direction, band). Keys absent from either file are skipped with a
# note (older baselines predate some metrics), so adding a metric to a bench
# does not break the gate until the baseline is refreshed.
CHECKS = {
    "micro_sampling": {
        "worlds_per_second": ("down", ABSOLUTE_BAND),
        "trajectories_per_second": ("down", ABSOLUTE_BAND),
    },
    "micro_engine": {
        "speedup_vs_single_shot": ("down", RATIO_BAND),
        "speedup_vs_warm_engine": ("down", RATIO_BAND),
        "qps_session_batch": ("down", ABSOLUTE_BAND),
        # The intra-query-parallel backends' own tracked lines (PR 5).
        "qps_markov_approx": ("down", ABSOLUTE_BAND),
        "qps_exact": ("down", ABSOLUTE_BAND),
        # The shared world arena on a hot (interval, seed) group (PR 6):
        # the on/off qps lines are absolute, the within-run ratio is
        # machine-portable. Arena evaluation skips the alias-sampling walk,
        # so the ratio sits >1 even single-core; the band only rejects the
        # amortization genuinely regressing.
        "qps_arena_on": ("down", ABSOLUTE_BAND),
        "qps_arena_off": ("down", ABSOLUTE_BAND),
        "arena_speedup": ("down", RATIO_BAND),
        # Adaptive precision vs fixed sampling (PR 7): the on/off qps lines
        # are absolute; the within-run speedup ratio is machine-portable.
        # mean_worlds_used is deterministic (identical stop decisions at any
        # thread count), so an *increase* means the stopping rule got less
        # effective — direction "up".
        "qps_adaptive_on": ("down", ABSOLUTE_BAND),
        "qps_adaptive_off": ("down", ABSOLUTE_BAND),
        "adaptive_speedup": ("down", RATIO_BAND),
        "mean_worlds_used": ("up", RATIO_BAND),
    },
    "micro_server": {
        "speedup_server_vs_cold": ("down", RATIO_BAND),
        "speedup_server_vs_runall": ("down", RATIO_BAND),
        "qps_server": ("down", ABSOLUTE_BAND),
        "qps_server_1lane": ("down", ABSOLUTE_BAND),
        "latency_p99_ms": ("up", ABSOLUTE_BAND),
        # Morsel stealing vs the group scheduler on the skewed stream: a
        # within-run p99 ratio, so it gets the machine-portable band. On a
        # 1-core runner it hovers near 1.0 (no idle lane to steal with);
        # the band then only rejects a genuine regression, while a
        # multi-core runner's >=1.3x win can only push it further up.
        "steal_speedup": ("down", RATIO_BAND),
        "p99_skew_steal": ("up", ABSOLUTE_BAND),
        # The arena on/off comparison on the hot-group skewed stream (PR 6).
        "qps_arena_on": ("down", ABSOLUTE_BAND),
        "qps_arena_off": ("down", ABSOLUTE_BAND),
        "arena_speedup": ("down", RATIO_BAND),
        # Adaptive precision served through the lane/morsel tier (PR 7).
        "qps_adaptive_on": ("down", ABSOLUTE_BAND),
        "qps_adaptive_off": ("down", ABSOLUTE_BAND),
        "adaptive_speedup": ("down", RATIO_BAND),
        "mean_worlds_used": ("up", RATIO_BAND),
        # Request tracing (PR 8): trace_overhead = qps tracing-off /
        # qps tracing-on on the same stream — a within-run ratio that must
        # stay near 1.0, so it gets a tight 10% rise band (tracing must be
        # cheap enough to turn on against a live serving problem). The
        # traced run's absolute qps keeps the catastrophic-collapse check.
        "qps_trace_on": ("down", ABSOLUTE_BAND),
        "trace_overhead": ("up", 0.10),
    },
    "micro_overload": {
        # Overload robustness (PR 10). goodput_saturated_ratio — goodput at
        # the highest offered multiple (~2x saturation) over the sweep's
        # peak — is the headline flatness claim: deadline shedding plus
        # graceful degradation keep it near 1.0, while an unprotected
        # server collapses toward 0. A within-run ratio, so it gets the
        # machine-portable band (the binary additionally gates it at
        # --min_ratio). The throughput/latency curve points are absolute.
        "goodput_saturated_ratio": ("down", RATIO_BAND),
        "saturation_qps": ("down", ABSOLUTE_BAND),
        "peak_goodput_qps": ("down", ABSOLUTE_BAND),
        "goodput_saturated_qps": ("down", ABSOLUTE_BAND),
        "p99_overload_ms": ("up", ABSOLUTE_BAND),
    },
    "micro_ingest": {
        # Online index maintenance (PR 9). delta_speedup — the qps ratio of
        # the base ∪ delta probe over the stale-index drop fallback at the
        # same post-write epoch — is a within-run ratio, so it gets the
        # machine-portable band; with the committed baseline >= 2x the band
        # floor keeps the tentpole claim (delta beats rebuild-or-drop)
        # gated on every run. The open-loop churn numbers (queries served
        # while a writer and the background compactor run) are absolute.
        "delta_speedup": ("down", RATIO_BAND),
        "qps_delta": ("down", ABSOLUTE_BAND),
        "qps_fallback": ("down", ABSOLUTE_BAND),
        "qps_ingest": ("down", ABSOLUTE_BAND),
        "p99_ingest_ms": ("up", ABSOLUTE_BAND),
    },
}

# Workload identity: these must be byte-equal or the comparison is void.
CONFIG_KEYS = [
    "benchmark", "num_states", "num_objects", "num_worlds", "num_queries",
    "num_participants", "num_intervals", "interval_length", "threads",
    "lanes", "clients", "max_batch_size", "executor", "arena", "skew",
    "morsel_specs", "adaptive", "adaptive_worlds",
    "markov_objects", "markov_queries", "exact_objects", "exact_queries",
    "writes", "write_interval_us", "compaction_interval_ms",
    "pool", "queue_capacity", "deadline_ms", "seconds_per_point",
    "num_multiples", "max_multiple", "max_batch_delay_ms",
]


def write_step_summary(name, fresh_path, rows, failures):
    """Mirror the verdict into $GITHUB_STEP_SUMMARY (when set) so a failing
    gate is actionable from the run page: the offending key, committed vs
    measured value, and the allowed band — without digging through logs."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    lines = [f"### check_bench: `{name}` ({fresh_path})", ""]
    if rows:
        lines += ["| key | committed | measured | allowed | verdict |",
                  "|---|---|---|---|---|"]
        for key, base, now, allowed, ok in rows:
            verdict = "ok" if ok else "**FAIL**"
            lines.append(f"| `{key}` | {base:.4g} | {now:.4g} "
                         f"| {allowed} | {verdict} |")
        lines.append("")
    config_failures = [f for f in failures if f.startswith("config mismatch")]
    for failure in config_failures:
        lines.append(f"- {failure}")
    lines.append("")
    lines.append(f"**{len(failures)} failure(s)**" if failures
                 else "All checks passed.")
    lines.append("")
    try:
        with open(path, "a", encoding="utf-8") as f:
            f.write("\n".join(lines))
    except OSError as e:
        print(f"check_bench: cannot write step summary: {e}", file=sys.stderr)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", required=True,
                        help="JSON produced by this CI run")
    parser.add_argument("--baseline", required=True,
                        help="committed baseline JSON")
    parser.add_argument("--band-scale", type=float, default=1.0,
                        help="multiply every band (sanitizer jobs etc.)")
    args = parser.parse_args()

    fresh = load(args.fresh)
    baseline = load(args.baseline)

    name = baseline.get("benchmark")
    if name not in CHECKS:
        print(f"check_bench: no checks defined for benchmark {name!r}",
              file=sys.stderr)
        sys.exit(2)

    failures = []
    rows = []  # (key, committed, measured, allowed, ok) for the summary

    for key in CONFIG_KEYS:
        if key in baseline and key in fresh and baseline[key] != fresh[key]:
            failures.append(
                f"config mismatch on {key!r}: baseline={baseline[key]} "
                f"fresh={fresh[key]} — regenerate the baseline or fix the "
                f"CI flags; comparing different workloads proves nothing")

    print(f"== {name}: {args.fresh} vs baseline {args.baseline} ==")
    for key, (direction, band) in CHECKS[name].items():
        if key not in baseline or key not in fresh:
            print(f"  skip  {key:<28} (missing from "
                  f"{'baseline' if key not in baseline else 'fresh'})")
            continue
        base, now = float(baseline[key]), float(fresh[key])
        if not (math.isfinite(base) and math.isfinite(now)) or base <= 0:
            failures.append(f"{key}: non-finite or non-positive values "
                            f"(baseline={base}, fresh={now})")
            continue
        eff_band = band * args.band_scale
        if direction == "down":
            limit = base * (1.0 - eff_band)
            ok = now >= limit
            verdict = f">= {limit:.4g}"
        else:
            limit = base / (1.0 - eff_band) if eff_band < 1.0 else math.inf
            ok = now <= limit
            verdict = f"<= {limit:.4g}"
        status = "ok   " if ok else "FAIL "
        print(f"  {status} {key:<28} baseline={base:<12.4g} "
              f"fresh={now:<12.4g} (need {verdict})")
        rows.append((key, base, now, verdict, ok))
        if not ok:
            failures.append(
                f"{key}: {now:.4g} vs baseline {base:.4g} breaches the "
                f"{eff_band:.0%} {'drop' if direction == 'down' else 'rise'} "
                f"band")

    write_step_summary(name, args.fresh, rows, failures)
    if failures:
        print(f"\ncheck_bench: {len(failures)} failure(s):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        sys.exit(1)
    print("check_bench: all checks passed")


if __name__ == "__main__":
    main()
