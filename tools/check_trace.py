#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON dump from util/trace (DESIGN.md §9).

Usage:
    tools/check_trace.py trace_server.json [--min-span-names N]

Checks, in order:

1. The file parses as JSON and has the Chrome trace shape:
   {"displayTimeUnit": "ms", "traceEvents": [...]} with well-formed events
   (name/ph/ts/pid/tid; complete 'X' events carry dur).
2. At least one request is followable admission-to-finalize: some
   args.req id appears on >= N distinct span names (default 6), including
   both `admit` and `finalize` — the serving tier's lifecycle contract.

Exit status: 0 ok, 1 validation failure, 2 usage/IO error.
"""

import argparse
import json
import sys
from collections import defaultdict


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="Chrome trace_event JSON file")
    parser.add_argument("--min-span-names", type=int, default=6,
                        help="distinct span names one request id must span")
    args = parser.parse_args()

    try:
        with open(args.trace, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_trace: cannot read {args.trace}: {e}", file=sys.stderr)
        sys.exit(2)

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("not a Chrome trace object (missing traceEvents)")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail("traceEvents is empty — was tracing enabled?")

    names_by_req = defaultdict(set)
    all_names = set()
    for i, event in enumerate(events):
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                fail(f"event {i} missing {key!r}: {event}")
        if event["ph"] not in ("X", "i"):
            fail(f"event {i} has unexpected phase {event['ph']!r}")
        if event["ph"] == "X" and "dur" not in event:
            fail(f"complete event {i} missing dur: {event}")
        all_names.add(event["name"])
        req = event.get("args", {}).get("req")
        if req is not None:
            names_by_req[req].add(event["name"])

    best_req, best_names = None, set()
    for req, names in names_by_req.items():
        if len(names) > len(best_names):
            best_req, best_names = req, names
    if len(best_names) < args.min_span_names:
        fail(f"no request id spans >= {args.min_span_names} distinct span "
             f"names (best: req={best_req} with {sorted(best_names)})")
    for required in ("admit", "finalize"):
        if required not in best_names:
            fail(f"request {best_req} has no {required!r} span "
                 f"(got {sorted(best_names)}) — lifecycle not covered "
                 f"admission-to-finalize")

    print(f"check_trace: ok — {len(events)} events, "
          f"{len(all_names)} span names, request {best_req} spans "
          f"{len(best_names)}: {sorted(best_names)}")


if __name__ == "__main__":
    main()
