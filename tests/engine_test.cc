#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "gen/synthetic.h"
#include "gen/workload.h"
#include "index/ust_tree.h"
#include "query/engine.h"
#include "util/rng.h"

namespace ust {
namespace {

MonteCarloOptions Opts(size_t worlds, uint64_t seed = 21) {
  MonteCarloOptions o;
  o.num_worlds = worlds;
  o.seed = seed;
  return o;
}

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticConfig config;
    config.num_states = 600;
    config.num_objects = 25;
    config.lifetime = 24;
    config.obs_interval = 6;
    config.horizon = 40;
    config.seed = 77;
    auto world = GenerateSyntheticWorld(config);
    ASSERT_TRUE(world.ok());
    world_ = std::make_unique<SyntheticWorld>(world.MoveValue());
    auto tree = UstTree::Build(*world_->db);
    ASSERT_TRUE(tree.ok());
    index_ = std::make_unique<UstTree>(tree.MoveValue());
    T_ = BusiestInterval(*world_->db, 6);
    Rng rng(5);
    q_ = RandomQueryState(*world_->space, rng);
  }

  std::unique_ptr<SyntheticWorld> world_;
  std::unique_ptr<UstTree> index_;
  TimeInterval T_{0, 0};
  QueryTrajectory q_ = QueryTrajectory::FromPoint({0, 0});
};

TEST_F(EngineTest, IndexedAndUnindexedForallAgree) {
  QueryEngine with_index(*world_->db, index_.get());
  QueryEngine without_index(*world_->db);
  auto a = with_index.Forall(q_, T_, 0.05, Opts(3000));
  auto b = without_index.Forall(q_, T_, 0.05, Opts(3000));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Same qualifying objects; probabilities agree within MC noise.
  std::map<ObjectId, double> probs_a, probs_b;
  for (const auto& r : a.value().results) probs_a[r.object] = r.prob;
  for (const auto& r : b.value().results) probs_b[r.object] = r.prob;
  for (const auto& [o, p] : probs_b) {
    ASSERT_TRUE(probs_a.count(o)) << "object " << o << " lost by pruning";
    EXPECT_NEAR(probs_a[o], p, 0.06);
  }
  for (const auto& [o, p] : probs_a) EXPECT_TRUE(probs_b.count(o));
  // Pruning reduces the work.
  EXPECT_LE(a.value().num_candidates, b.value().num_candidates);
  EXPECT_LE(a.value().num_influencers, b.value().num_influencers);
  EXPECT_GT(a.value().num_candidates, 0u);
}

TEST_F(EngineTest, IndexedAndUnindexedExistsAgree) {
  QueryEngine with_index(*world_->db, index_.get());
  QueryEngine without_index(*world_->db);
  auto a = with_index.Exists(q_, T_, 0.05, Opts(3000));
  auto b = without_index.Exists(q_, T_, 0.05, Opts(3000));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  std::map<ObjectId, double> probs_a, probs_b;
  for (const auto& r : a.value().results) probs_a[r.object] = r.prob;
  for (const auto& r : b.value().results) probs_b[r.object] = r.prob;
  for (const auto& [o, p] : probs_b) {
    ASSERT_TRUE(probs_a.count(o)) << "object " << o << " lost by pruning";
    EXPECT_NEAR(probs_a[o], p, 0.06);
  }
}

TEST_F(EngineTest, TauFiltersResults) {
  QueryEngine engine(*world_->db, index_.get());
  auto low = engine.Forall(q_, T_, 0.0, Opts(1000));
  auto high = engine.Forall(q_, T_, 0.6, Opts(1000));
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());
  EXPECT_GE(low.value().results.size(), high.value().results.size());
  for (const auto& r : high.value().results) EXPECT_GE(r.prob, 0.6);
}

TEST_F(EngineTest, ForallResultsAreSubsetOfExists) {
  QueryEngine engine(*world_->db, index_.get());
  auto forall = engine.Forall(q_, T_, 0.2, Opts(2000));
  auto exists = engine.Exists(q_, T_, 0.2, Opts(2000));
  ASSERT_TRUE(forall.ok());
  ASSERT_TRUE(exists.ok());
  std::map<ObjectId, double> exists_probs;
  for (const auto& r : exists.value().results) exists_probs[r.object] = r.prob;
  for (const auto& r : forall.value().results) {
    ASSERT_TRUE(exists_probs.count(r.object));
    EXPECT_LE(r.prob, exists_probs[r.object] + 0.05);
  }
}

TEST_F(EngineTest, ContinuousQueryEntriesRespectTau) {
  QueryEngine engine(*world_->db, index_.get());
  auto result = engine.Continuous(q_, T_, 0.4, Opts(1000));
  ASSERT_TRUE(result.ok());
  for (const auto& e : result.value().pcnn.entries) {
    EXPECT_GE(e.prob, 0.4);
    EXPECT_FALSE(e.tics.empty());
    for (Tic t : e.tics) EXPECT_TRUE(T_.Contains(t));
  }
}

TEST_F(EngineTest, ContinuousConsistentWithForall) {
  // If o qualifies for the full interval in PCNN, its P∀NN over T must also
  // pass tau (they are the same probability).
  QueryEngine engine(*world_->db, index_.get());
  auto pcnn = engine.Continuous(q_, T_, 0.3, Opts(3000, 9));
  auto forall = engine.Forall(q_, T_, 0.3, Opts(3000, 9));
  ASSERT_TRUE(pcnn.ok());
  ASSERT_TRUE(forall.ok());
  std::vector<Tic> full = T_.Tics();
  std::map<ObjectId, double> forall_probs;
  for (const auto& r : forall.value().results) forall_probs[r.object] = r.prob;
  for (const auto& e : pcnn.value().pcnn.entries) {
    if (e.tics == full) {
      EXPECT_TRUE(forall_probs.count(e.object));
      EXPECT_NEAR(forall_probs[e.object], e.prob, 1e-9);  // same table & seed
    }
  }
}

TEST_F(EngineTest, EmptyCandidateSetShortCircuits) {
  QueryEngine engine(*world_->db, index_.get());
  // Query far in the future: nobody is alive.
  auto result = engine.Forall(q_, {5000, 5010}, 0.0, Opts(100));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().results.empty());
  EXPECT_EQ(result.value().num_candidates, 0u);
}

TEST_F(EngineTest, TimingCountersPopulated) {
  QueryEngine engine(*world_->db, index_.get());
  auto result = engine.Forall(q_, T_, 0.0, Opts(500));
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result.value().prune_millis, 0.0);
  EXPECT_GT(result.value().sampling_millis, 0.0);
}

}  // namespace
}  // namespace ust
