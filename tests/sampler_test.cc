#include <gtest/gtest.h>

#include <map>

#include "model/adaptation.h"
#include "model/samplers.h"
#include "test_world.h"
#include "util/rng.h"

namespace ust {
namespace {

using testing::MakeLineWorld;

ObservationSeq Obs(std::vector<Observation> v) {
  auto r = ObservationSeq::Create(std::move(v));
  UST_CHECK(r.ok());
  return r.MoveValue();
}

bool HitsAllObservations(const Trajectory& traj, const ObservationSeq& obs) {
  for (const Observation& o : obs.items()) {
    if (!traj.Covers(o.time) || traj.At(o.time) != o.state) return false;
  }
  return true;
}

bool UsesOnlyAprioriTransitions(const Trajectory& traj,
                                const TransitionMatrix& m) {
  for (size_t i = 0; i + 1 < traj.states.size(); ++i) {
    if (m.Prob(traj.states[i], traj.states[i + 1]) <= 0.0) return false;
  }
  return true;
}

TEST(PosteriorSamplerTest, EverySampleHitsEveryObservation) {
  auto world = MakeLineWorld(12, 0.25, 0.5);
  ObservationSeq obs = Obs({{0, 3}, {4, 6}, {9, 2}, {12, 4}});
  auto model = AdaptTransitionMatrices(*world.matrix, obs);
  ASSERT_TRUE(model.ok());
  PosteriorSampler sampler(model.value());
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    Trajectory traj = sampler.Sample(rng);
    EXPECT_EQ(traj.start, 0);
    EXPECT_EQ(traj.end(), 12);
    EXPECT_TRUE(HitsAllObservations(traj, obs));
    EXPECT_TRUE(UsesOnlyAprioriTransitions(traj, *world.matrix));
  }
  EXPECT_EQ(sampler.stats().attempts, 500u);
  EXPECT_EQ(sampler.stats().accepted, 500u);
  EXPECT_DOUBLE_EQ(sampler.stats().AttemptsPerSample(), 1.0);
}

TEST(NaiveRejectionSamplerTest, AcceptedSamplesAreValid) {
  auto world = MakeLineWorld(8, 0.25, 0.5);
  ObservationSeq obs = Obs({{0, 3}, {3, 5}, {6, 3}});
  NaiveRejectionSampler sampler(*world.matrix, obs, /*max_attempts=*/100000);
  Rng rng(2);
  for (int i = 0; i < 30; ++i) {
    auto traj = sampler.Sample(rng);
    ASSERT_TRUE(traj.ok());
    EXPECT_TRUE(HitsAllObservations(traj.value(), obs));
  }
  // Rejections happened: attempts strictly exceed accepted.
  EXPECT_GT(sampler.stats().attempts, sampler.stats().accepted);
}

TEST(NaiveRejectionSamplerTest, ReportsResourceLimit) {
  auto world = MakeLineWorld(30, 0.25, 0.5);
  // Valid but extremely unlikely under forward simulation: a long chain of
  // exact waypoints. Cap attempts low to trigger the limit.
  ObservationSeq obs =
      Obs({{0, 1}, {4, 5}, {8, 1}, {12, 5}, {16, 1}, {20, 5}, {24, 1}});
  NaiveRejectionSampler sampler(*world.matrix, obs, /*max_attempts=*/10);
  Rng rng(3);
  auto traj = sampler.Sample(rng);
  ASSERT_FALSE(traj.ok());
  EXPECT_EQ(traj.status().code(), StatusCode::kResourceLimit);
}

TEST(SegmentRejectionSamplerTest, AcceptedSamplesAreValid) {
  auto world = MakeLineWorld(8, 0.25, 0.5);
  ObservationSeq obs = Obs({{0, 3}, {3, 5}, {6, 3}, {9, 4}});
  SegmentRejectionSampler sampler(*world.matrix, obs,
                                  /*max_attempts_per_segment=*/100000);
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    auto traj = sampler.Sample(rng);
    ASSERT_TRUE(traj.ok());
    EXPECT_EQ(traj.value().start, 0);
    EXPECT_EQ(traj.value().end(), 9);
    EXPECT_TRUE(HitsAllObservations(traj.value(), obs));
    EXPECT_TRUE(UsesOnlyAprioriTransitions(traj.value(), *world.matrix));
  }
}

TEST(SamplersTest, SegmentSamplerNeedsFarFewerAttemptsThanNaive) {
  // The paper's Figure 10 claim, in miniature: attempts per sample for TS1
  // grow multiplicatively with observation count, TS2 roughly additively.
  auto world = MakeLineWorld(10, 0.25, 0.5);
  ObservationSeq obs = Obs({{0, 4}, {3, 6}, {6, 4}, {9, 6}, {12, 4}});
  Rng rng(5);
  NaiveRejectionSampler ts1(*world.matrix, obs, 10000000);
  SegmentRejectionSampler ts2(*world.matrix, obs, 10000000);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(ts1.Sample(rng).ok());
    ASSERT_TRUE(ts2.Sample(rng).ok());
  }
  EXPECT_GT(ts1.stats().AttemptsPerSample(),
            2.0 * ts2.stats().AttemptsPerSample());
}

TEST(SamplersTest, AllThreeSamplersAgreeInDistribution) {
  // Empirical mid-tic marginals of TS1, TS2 and the posterior sampler must
  // agree (they all sample the same conditional law).
  auto world = MakeLineWorld(7, 0.3, 0.4);
  ObservationSeq obs = Obs({{0, 3}, {4, 5}});
  auto model = AdaptTransitionMatrices(*world.matrix, obs);
  ASSERT_TRUE(model.ok());

  const int n = 20000;
  const Tic probe = 2;
  auto empirical = [&](auto&& draw) {
    std::map<StateId, double> hist;
    for (int i = 0; i < n; ++i) hist[draw()] += 1.0 / n;
    return hist;
  };
  Rng rng(6);
  PosteriorSampler fb(model.value());
  auto h_fb = empirical([&] { return fb.Sample(rng).At(probe); });
  NaiveRejectionSampler ts1(*world.matrix, obs, 1000000);
  auto h_ts1 = empirical([&] {
    auto t = ts1.Sample(rng);
    UST_CHECK(t.ok());
    return t.value().At(probe);
  });
  SegmentRejectionSampler ts2(*world.matrix, obs, 1000000);
  auto h_ts2 = empirical([&] {
    auto t = ts2.Sample(rng);
    UST_CHECK(t.ok());
    return t.value().At(probe);
  });
  // Reference: exact posterior marginal.
  SparseDist marginal = model.value().MarginalAt(probe);
  for (size_t i = 0; i < marginal.size(); ++i) {
    const StateId s = marginal.ids()[i];
    const double p = marginal.probs()[i];
    EXPECT_NEAR(h_fb[s], p, 0.02) << "FB state " << s;
    EXPECT_NEAR(h_ts1[s], p, 0.02) << "TS1 state " << s;
    EXPECT_NEAR(h_ts2[s], p, 0.02) << "TS2 state " << s;
  }
}

TEST(PosteriorModelTest, SampleWindowStartsFromMarginal) {
  auto world = MakeLineWorld(9, 0.25, 0.5);
  ObservationSeq obs = Obs({{0, 4}, {8, 4}});
  auto model = AdaptTransitionMatrices(*world.matrix, obs);
  ASSERT_TRUE(model.ok());
  Rng rng(7);
  // Empirical distribution of the window start state matches the marginal.
  std::map<StateId, double> hist;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    auto traj = model.value().SampleWindow(3, 5, rng);
    ASSERT_TRUE(traj.ok());
    ASSERT_EQ(traj.value().states.size(), 3u);
    hist[traj.value().states[0]] += 1.0 / n;
  }
  SparseDist marginal = model.value().MarginalAt(3);
  for (size_t i = 0; i < marginal.size(); ++i) {
    EXPECT_NEAR(hist[marginal.ids()[i]], marginal.probs()[i], 0.02);
  }
}

TEST(PosteriorModelTest, SampleWindowOutsideSpanFails) {
  auto world = MakeLineWorld(5);
  auto model = AdaptTransitionMatrices(*world.matrix, Obs({{2, 1}, {5, 2}}));
  ASSERT_TRUE(model.ok());
  Rng rng(8);
  EXPECT_FALSE(model.value().SampleWindow(0, 3, rng).ok());
  EXPECT_FALSE(model.value().SampleWindow(4, 7, rng).ok());
  EXPECT_TRUE(model.value().SampleWindow(2, 5, rng).ok());
  EXPECT_TRUE(model.value().SampleWindow(3, 3, rng).ok());
}

TEST(PosteriorModelTest, TransitionProbAccessor) {
  auto world = MakeLineWorld(5, 0.25, 0.5);
  auto model = AdaptTransitionMatrices(*world.matrix, Obs({{0, 2}, {2, 2}}));
  ASSERT_TRUE(model.ok());
  // All one-step transitions out of state 2 that return to 2 in 2 tics.
  double sum = 0.0;
  for (StateId to : {1u, 2u, 3u}) {
    sum += model.value().TransitionProb(0, 2, to);
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_EQ(model.value().TransitionProb(0, 4, 2), 0.0);  // not in support
}

TEST(PosteriorModelTest, SupportSizeAccessors) {
  auto world = MakeLineWorld(11, 0.25, 0.5);
  auto model = AdaptTransitionMatrices(*world.matrix, Obs({{0, 5}, {6, 5}}));
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model.value().TotalSupportSize(), 7u);
  EXPECT_GE(model.value().MaxSupportSize(), 3u);
  EXPECT_LE(model.value().MaxSupportSize(), 11u);
}

}  // namespace
}  // namespace ust
