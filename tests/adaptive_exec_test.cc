// Tests of adaptive precision in the production pipeline (DESIGN.md
// section 8): per-spec epsilon/threshold targets flowing through
// QuerySession and QueryServer, the revised determinism contract (identical
// stop decisions — and identical bytes — at any thread count, lane count or
// morsel/steal schedule), arena-prefix serving of early-stopped specs, the
// undecided-near-tau fallback, and the planner's expected-worlds crossover.
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <vector>

#include "gen/synthetic.h"
#include "gen/workload.h"
#include "index/ust_tree.h"
#include "query/monte_carlo.h"
#include "query/session.h"
#include "server/query_server.h"
#include "test_world.h"
#include "util/rng.h"

namespace ust {
namespace {

using testing::Figure1World;
using testing::MakeFigure1World;

// The full adaptive determinism contract: stop decision and bytes.
void ExpectSameOutcome(const QueryOutcome& a, const QueryOutcome& b,
                       size_t i) {
  ASSERT_TRUE(a.status.ok() && b.status.ok()) << "spec " << i;
  EXPECT_EQ(a.executor, b.executor) << "spec " << i;
  EXPECT_EQ(a.worlds_used, b.worlds_used) << "spec " << i;
  EXPECT_EQ(a.early_stopped, b.early_stopped) << "spec " << i;
  ASSERT_EQ(a.pnn.results.size(), b.pnn.results.size()) << "spec " << i;
  for (size_t j = 0; j < a.pnn.results.size(); ++j) {
    EXPECT_EQ(a.pnn.results[j].object, b.pnn.results[j].object);
    EXPECT_EQ(a.pnn.results[j].prob, b.pnn.results[j].prob);  // bitwise
  }
}

class AdaptiveExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticConfig config;
    config.num_states = 600;
    config.num_objects = 20;
    config.lifetime = 24;
    config.obs_interval = 6;
    config.horizon = 40;
    config.seed = 77;
    auto world = GenerateSyntheticWorld(config);
    ASSERT_TRUE(world.ok());
    world_ = std::make_unique<SyntheticWorld>(world.MoveValue());
    auto tree = UstTree::Build(*world_->db);
    ASSERT_TRUE(tree.ok());
    index_ = std::make_unique<UstTree>(tree.MoveValue());
    T_ = BusiestInterval(*world_->db, 6);
  }

  TrajectoryDatabase& db() { return *world_->db; }

  /// Easy threshold-decision specs under an oversized cap: every target's
  /// probability sits far from tau = 0.5, so the stopping rule fires at an
  /// early chunk boundary. Unique seeds keep arena groups cold; the pinned
  /// backend keeps the planner out of the determinism comparisons.
  std::vector<QuerySpec> MakeAdaptiveSpecs(size_t n,
                                           size_t cap = 4096) const {
    Rng rng(5);
    std::vector<QuerySpec> specs;
    for (size_t i = 0; i < n; ++i) {
      QuerySpec spec;
      spec.kind = i % 3 == 2 ? QueryKind::kExists : QueryKind::kForall;
      spec.q = RandomQueryState(*world_->space, rng);
      spec.T = T_;
      spec.tau = 0.5;
      spec.mc.num_worlds = cap;
      spec.mc.seed = 8600 + i;
      spec.precision.mode = PrecisionMode::kThreshold;
      spec.precision.delta = 0.05;
      spec.backend = ExecutorKind::kMonteCarlo;
      specs.push_back(spec);
    }
    return specs;
  }

  std::unique_ptr<SyntheticWorld> world_;
  std::unique_ptr<UstTree> index_;
  TimeInterval T_{0, 0};
};

TEST_F(AdaptiveExecTest, EpsilonModeAgreesWithFixedSampling) {
  // An absolute-precision target: the adaptive estimates must land within
  // the requested epsilon of the full-cap fixed estimates (both are within
  // epsilon of the truth with probability >= 1 - delta, and the fixed pass
  // at 8x the worlds contributes far less than epsilon itself).
  QuerySpec adaptive;
  adaptive.kind = QueryKind::kForall;
  Rng rng(5);
  adaptive.q = RandomQueryState(*world_->space, rng);
  adaptive.T = T_;
  adaptive.tau = 0.0;  // keep every target in the result list
  adaptive.mc.num_worlds = 8192;
  adaptive.mc.seed = 123;
  adaptive.precision.mode = PrecisionMode::kEpsilon;
  adaptive.precision.epsilon = 0.05;
  adaptive.precision.delta = 0.05;
  adaptive.backend = ExecutorKind::kMonteCarlo;
  QuerySpec fixed = adaptive;
  fixed.precision.mode = PrecisionMode::kFixedWorlds;

  QuerySession session(db(), index_.get());
  const QueryOutcome a = session.Run(adaptive);
  const QueryOutcome f = session.Run(fixed);
  ASSERT_TRUE(a.status.ok() && f.status.ok());
  EXPECT_TRUE(a.early_stopped);
  EXPECT_LT(a.worlds_used, 8192u);
  EXPECT_EQ(a.worlds_used % WorldSampler::kWorldChunk, 0u);
  EXPECT_FALSE(f.early_stopped);
  EXPECT_EQ(f.worlds_used, 8192u);
  ASSERT_EQ(a.pnn.results.size(), f.pnn.results.size());
  for (size_t j = 0; j < a.pnn.results.size(); ++j) {
    EXPECT_EQ(a.pnn.results[j].object, f.pnn.results[j].object);
    EXPECT_NEAR(a.pnn.results[j].prob, f.pnn.results[j].prob,
                2 * adaptive.precision.epsilon);
  }
}

TEST_F(AdaptiveExecTest, IdenticalStopDecisionsAtAnyThreadCount) {
  const std::vector<QuerySpec> specs = MakeAdaptiveSpecs(9);
  std::vector<QueryOutcome> reference;
  {
    SessionOptions serial;
    serial.threads = 1;
    QuerySession session(db(), index_.get(), serial);
    ASSERT_TRUE(session.Prepare().ok());
    reference = session.RunAll(specs);
  }
  size_t early = 0;
  for (const QueryOutcome& out : reference) {
    ASSERT_TRUE(out.status.ok());
    if (out.early_stopped) ++early;
  }
  // The workload is easy by construction: the phase under test must fire.
  EXPECT_GE(early * 2, specs.size());

  for (int threads : {2, 4}) {
    SessionOptions options;
    options.threads = threads;
    QuerySession session(db(), index_.get(), options);
    ASSERT_TRUE(session.Prepare().ok());
    // Batch path: queries shard across workers, each evaluated serially.
    const std::vector<QueryOutcome> batch = session.RunAll(specs);
    for (size_t i = 0; i < specs.size(); ++i) {
      ExpectSameOutcome(batch[i], reference[i], i);
    }
    // Lone-query path: the session pool shards world chunks inside one
    // adaptive estimate — the speculative-wave path — and must take the
    // stop decision at the exact same chunk boundary as the serial scan.
    for (size_t i = 0; i < specs.size(); ++i) {
      ExpectSameOutcome(session.Run(specs[i]), reference[i], i);
    }
  }
}

TEST_F(AdaptiveExecTest, ServerScheduleMatrixPreservesStopDecisions) {
  const std::vector<QuerySpec> specs = MakeAdaptiveSpecs(12);
  QuerySession reference(db().Snapshot(), index_.get());
  const std::vector<QueryOutcome> expected = reference.RunAll(specs);
  uint64_t expected_stops = 0, expected_saved = 0;
  for (size_t i = 0; i < specs.size(); ++i) {
    ASSERT_TRUE(expected[i].status.ok());
    if (expected[i].early_stopped) {
      ++expected_stops;
      expected_saved += specs[i].mc.num_worlds - expected[i].worlds_used;
    }
  }
  ASSERT_GT(expected_stops, 0u);

  for (int lanes : {1, 2}) {
    for (size_t morsel_specs : {size_t{1}, size_t{4}}) {
      for (bool steal : {false, true}) {
        ServerOptions options;
        options.lanes = lanes;
        options.morsel_specs = morsel_specs;
        options.steal = steal;
        options.max_batch_size = 6;
        options.max_batch_delay_ms = 0.5;
        QueryServer server(db(), index_.get(), options);
        server.Pause();
        std::vector<std::future<QueryOutcome>> futures;
        for (const QuerySpec& spec : specs) {
          futures.push_back(server.Submit(spec));
        }
        server.Resume();
        for (size_t i = 0; i < specs.size(); ++i) {
          ExpectSameOutcome(futures[i].get(), expected[i], i);
        }
        server.Stop();
        // The savings counters are schedule-invariant too: stop decisions
        // are pinned, so every schedule accounts the same worlds.
        const ServerStats stats = server.Stats();
        EXPECT_EQ(stats.early_stops, expected_stops);
        EXPECT_EQ(stats.worlds_saved, expected_saved);
      }
    }
  }
}

TEST_F(AdaptiveExecTest, ArenaPrefixServesEarlyStoppedSpecs) {
  // A hot (interval, seed) group of adaptive specs: the arena materializes
  // the full num_worlds cap once, and early-stopped specs evaluate only its
  // prefix — bit-identically to live sampling, stop decisions included.
  std::vector<QuerySpec> hot = MakeAdaptiveSpecs(8);
  for (QuerySpec& spec : hot) spec.mc.seed = 4242;  // one arena group

  std::vector<QueryOutcome> live, arena;
  {
    SessionOptions off;
    off.arena_min_uses = 0;
    QuerySession session(db(), index_.get(), off);
    live = session.RunAll(hot);
  }
  {
    SessionOptions on;
    on.arena_min_uses = 1;  // build on first use
    QuerySession session(db(), index_.get(), on);
    arena = session.RunAll(hot);
    const ArenaStats stats = session.arena_stats();
    EXPECT_EQ(stats.builds, 1u);
    EXPECT_GT(stats.spec_reuses, 0u);
  }
  size_t arena_served_early_stops = 0;
  for (size_t i = 0; i < hot.size(); ++i) {
    ExpectSameOutcome(arena[i], live[i], i);
    EXPECT_FALSE(live[i].used_arena);
    if (arena[i].used_arena && arena[i].early_stopped) {
      ++arena_served_early_stops;
    }
  }
  // At least one early-stopped spec was actually served off the arena's
  // prefix (the first spec samples live while the arena builds).
  EXPECT_GT(arena_served_early_stops, 0u);
}

TEST_F(AdaptiveExecTest, UndecidedNearTauFallsBackToCap) {
  // Figure 1: P∀NN(o1) = 0.75 exactly. A threshold query at tau = 0.75
  // straddles forever — the rule must run to the cap, report no early stop,
  // and hand back the honest full-cap estimate (identical to fixed
  // sampling at the same seed, by the prefix property).
  Figure1World world = MakeFigure1World();
  QuerySpec adaptive;
  adaptive.kind = QueryKind::kForall;
  adaptive.q = world.q;
  adaptive.T = world.T;
  adaptive.tau = 0.75;
  adaptive.mc.num_worlds = 2048;
  adaptive.mc.seed = 11;
  adaptive.precision.mode = PrecisionMode::kThreshold;
  adaptive.precision.delta = 0.05;
  adaptive.backend = ExecutorKind::kMonteCarlo;
  QuerySpec fixed = adaptive;
  fixed.precision.mode = PrecisionMode::kFixedWorlds;

  QuerySession session(*world.db);
  const QueryOutcome a = session.Run(adaptive);
  const QueryOutcome f = session.Run(fixed);
  ASSERT_TRUE(a.status.ok() && f.status.ok());
  EXPECT_EQ(a.worlds_used, 2048u);
  EXPECT_FALSE(a.early_stopped);
  ExpectSameOutcome(a, f, 0);
}

TEST_F(AdaptiveExecTest, PlannerCrossoverShiftsWithExpectedWorlds) {
  // The planner costs an adaptive spec at its *expected* world count, not
  // its cap. Figure 1 is enumeration-friendly (2 candidates, |T| = 3), and
  // with exact_min_precision = 2048 a 4096-cap spec initially plans exact
  // (expected = cap while the difficulty EWMA sits at its worst-case 1.0).
  // A run of easy adaptive Monte-Carlo queries that stop at the first chunk
  // drags the EWMA down until the expected count drops below the bar — the
  // same spec then crosses over to sampling.
  Figure1World world = MakeFigure1World();
  SessionOptions options;
  options.planner.exact_min_precision = 2048;
  QuerySession session(*world.db, nullptr, options);

  QuerySpec spec;
  spec.kind = QueryKind::kForall;
  spec.q = world.q;
  spec.T = world.T;
  spec.tau = 0.4;  // easy: P∀NN(o1) = 0.75, P∀NN(o2) = 0
  spec.mc.num_worlds = 4096;
  spec.mc.seed = 11;
  spec.precision.mode = PrecisionMode::kThreshold;
  spec.precision.delta = 0.05;

  const QueryOutcome before = session.Run(spec);
  ASSERT_TRUE(before.status.ok());
  EXPECT_EQ(before.executor, ExecutorKind::kExact);

  // Warm the difficulty EWMA: pinned-backend runs (the planner stays out of
  // the loop) that each stop at the first 512-world boundary.
  QuerySpec easy = spec;
  easy.backend = ExecutorKind::kMonteCarlo;
  for (int i = 0; i < 6; ++i) {
    const QueryOutcome out = session.Run(easy);
    ASSERT_TRUE(out.status.ok());
    EXPECT_TRUE(out.early_stopped);
    EXPECT_EQ(out.worlds_used, WorldSampler::kWorldChunk);
  }

  const QueryOutcome after = session.Run(spec);
  ASSERT_TRUE(after.status.ok());
  EXPECT_EQ(after.executor, ExecutorKind::kMonteCarlo);
  EXPECT_TRUE(after.early_stopped);
}

}  // namespace
}  // namespace ust
