#include <gtest/gtest.h>

#include "query/exact.h"
#include "query/monte_carlo.h"
#include "query/snapshot.h"
#include "test_world.h"
#include "util/stats.h"

namespace ust {
namespace {

using testing::Figure1World;
using testing::MakeFigure1World;
using testing::MakeLineWorld;

ObservationSeq Obs(std::vector<Observation> v) {
  auto r = ObservationSeq::Create(std::move(v));
  UST_CHECK(r.ok());
  return r.MoveValue();
}

TEST(SnapshotTest, SingleTicMatchesExact) {
  // At |T| = 1 there is no temporal correlation to ignore: the snapshot
  // probability is exact.
  Figure1World world = MakeFigure1World();
  for (Tic t = 1; t <= 3; ++t) {
    auto win =
        SnapshotNnProbabilities(*world.db, {world.o1, world.o2}, world.q, t);
    ASSERT_TRUE(win.ok());
    auto exact = ExactPnnByEnumeration(*world.db, {world.o1, world.o2},
                                       world.q, {t, t});
    ASSERT_TRUE(exact.ok());
    EXPECT_NEAR(win.value()[0], exact.value()[0].forall_prob, 1e-9)
        << "t=" << t;
    EXPECT_NEAR(win.value()[1], exact.value()[1].forall_prob, 1e-9)
        << "t=" << t;
  }
}

TEST(SnapshotTest, SnapshotWinProbsSumToOneWithoutTies) {
  Figure1World world = MakeFigure1World();
  for (Tic t = 1; t <= 3; ++t) {
    auto win =
        SnapshotNnProbabilities(*world.db, {world.o1, world.o2}, world.q, t);
    ASSERT_TRUE(win.ok());
    EXPECT_NEAR(win.value()[0] + win.value()[1], 1.0, 1e-9);
  }
}

TEST(SnapshotTest, UnderestimatesForallOverestimatesExists) {
  // The paper's Figure 11 finding: ignoring temporal correlation biases the
  // snapshot approach downward for P∀NN and upward for P∃NN.
  Figure1World world = MakeFigure1World();
  auto ss = SnapshotEstimatePnn(*world.db, {world.o1, world.o2}, world.q,
                                world.T);
  ASSERT_TRUE(ss.ok());
  auto exact = ExactPnnByEnumeration(*world.db, {world.o1, world.o2},
                                     world.q, world.T);
  ASSERT_TRUE(exact.ok());
  // o1: positive NN correlation across tics.
  EXPECT_LT(ss.value()[0].forall_prob, exact.value()[0].forall_prob);
  EXPECT_GT(ss.value()[1].exists_prob, exact.value()[1].exists_prob);
}

TEST(SnapshotTest, BiasPersistsOnRandomWorlds) {
  Rng rng(64);
  int forall_under = 0, exists_over = 0, cases = 0;
  for (int iter = 0; iter < 8; ++iter) {
    auto line = MakeLineWorld(7, 0.3, 0.4);
    TrajectoryDatabase db(line.space);
    std::vector<ObjectId> ids;
    for (int i = 0; i < 2; ++i) {
      StateId s = static_cast<StateId>(rng.UniformInt(7));
      ids.push_back(db.AddObject(Obs({{0, s}}), line.matrix, 4));
    }
    QueryTrajectory q =
        QueryTrajectory::FromPoint({rng.Uniform(0, 6), rng.Uniform(-1, 1)});
    TimeInterval T{0, 4};
    auto ss = SnapshotEstimatePnn(db, ids, q, T);
    auto exact = ExactPnnByEnumeration(db, ids, q, T);
    ASSERT_TRUE(ss.ok() && exact.ok());
    for (size_t i = 0; i < ids.size(); ++i) {
      if (exact.value()[i].forall_prob > 0.01 &&
          exact.value()[i].forall_prob < 0.99) {
        ++cases;
        forall_under +=
            ss.value()[i].forall_prob <= exact.value()[i].forall_prob + 1e-9;
        exists_over +=
            ss.value()[i].exists_prob >= exact.value()[i].exists_prob - 1e-9;
      }
    }
  }
  ASSERT_GT(cases, 0);
  // Positive NN autocorrelation dominates: the bias direction holds in the
  // (vast) majority of non-degenerate cases.
  EXPECT_GE(forall_under, cases * 3 / 4);
  EXPECT_GE(exists_over, cases * 3 / 4);
}

TEST(SnapshotTest, DeadObjectsScoreZero) {
  auto space = std::make_shared<const StateSpace>(
      std::vector<Point2>{{0, 1}, {0, 2}});
  auto matrix = testing::MakeMatrix(2, {{{0, 1.0}}, {{1, 1.0}}});
  TrajectoryDatabase db(space);
  ObjectId dead = db.AddObject(Obs({{9, 0}}), matrix);
  ObjectId live = db.AddObject(Obs({{0, 1}}), matrix, 5);
  QueryTrajectory q = QueryTrajectory::FromPoint({0, 0});
  auto win = SnapshotNnProbabilities(db, {dead, live}, q, 2);
  ASSERT_TRUE(win.ok());
  EXPECT_DOUBLE_EQ(win.value()[0], 0.0);
  EXPECT_DOUBLE_EQ(win.value()[1], 1.0);
  auto estimates = SnapshotEstimatePnn(db, {dead, live}, q, {0, 5});
  ASSERT_TRUE(estimates.ok());
  EXPECT_DOUBLE_EQ(estimates.value()[0].forall_prob, 0.0);
  EXPECT_DOUBLE_EQ(estimates.value()[0].exists_prob, 0.0);
  EXPECT_DOUBLE_EQ(estimates.value()[1].forall_prob, 1.0);
}

TEST(SnapshotTest, TiesAwardedToAllTiedObjects) {
  auto space =
      std::make_shared<const StateSpace>(std::vector<Point2>{{0, 1}});
  auto matrix = testing::MakeMatrix(1, {{{0, 1.0}}});
  TrajectoryDatabase db(space);
  ObjectId a = db.AddObject(Obs({{0, 0}}), matrix, 2);
  ObjectId b = db.AddObject(Obs({{0, 0}}), matrix, 2);
  QueryTrajectory q = QueryTrajectory::FromPoint({0, 0});
  auto win = SnapshotNnProbabilities(db, {a, b}, q, 1);
  ASSERT_TRUE(win.ok());
  EXPECT_DOUBLE_EQ(win.value()[0], 1.0);
  EXPECT_DOUBLE_EQ(win.value()[1], 1.0);
}

TEST(SnapshotTest, InvalidTicRejected) {
  Figure1World world = MakeFigure1World();
  QueryTrajectory moving = QueryTrajectory::FromPoints(1, {{0, 0}});
  auto win = SnapshotNnProbabilities(*world.db, {world.o1}, moving, 5);
  EXPECT_FALSE(win.ok());
}

}  // namespace
}  // namespace ust
