#include <gtest/gtest.h>

#include "gen/synthetic.h"
#include "markov/builders.h"
#include "markov/sparse_dist.h"
#include "markov/transition_matrix.h"
#include "test_world.h"
#include "util/rng.h"

namespace ust {
namespace {

using testing::MakeLineWorld;
using testing::MakeMatrix;

// ------------------------------------------------------------ SparseDist ---

TEST(SparseDistTest, ConstructorSortsAndMerges) {
  SparseDist d({{5, 0.2}, {1, 0.3}, {5, 0.1}});
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d.ids()[0], 1u);
  EXPECT_DOUBLE_EQ(d.Prob(5), 0.3);
  EXPECT_DOUBLE_EQ(d.Prob(2), 0.0);
}

TEST(SparseDistTest, IndicatorAndUniform) {
  SparseDist ind = SparseDist::Indicator(7);
  EXPECT_DOUBLE_EQ(ind.Prob(7), 1.0);
  EXPECT_EQ(ind.size(), 1u);
  SparseDist uni = SparseDist::Uniform({2, 4, 6, 8});
  EXPECT_DOUBLE_EQ(uni.Prob(4), 0.25);
  EXPECT_DOUBLE_EQ(uni.Mass(), 1.0);
  EXPECT_TRUE(SparseDist::Uniform({}).empty());
}

TEST(SparseDistTest, NormalizeAndCompact) {
  SparseDist d({{0, 2.0}, {1, 6.0}, {2, 0.0}});
  d.Normalize();
  EXPECT_DOUBLE_EQ(d.Prob(0), 0.25);
  EXPECT_DOUBLE_EQ(d.Prob(1), 0.75);
  d.Compact();
  EXPECT_EQ(d.size(), 2u);  // the zero entry is gone
  EXPECT_EQ(d.Support(), (std::vector<StateId>{0, 1}));
}

TEST(SparseDistTest, SampleMatchesProbabilities) {
  SparseDist d({{3, 0.2}, {9, 0.8}});
  Rng rng(4);
  int count9 = 0;
  for (int i = 0; i < 10000; ++i) count9 += d.Sample(rng) == 9 ? 1 : 0;
  EXPECT_NEAR(count9 / 10000.0, 0.8, 0.02);
}

TEST(SparseDistTest, L1Distance) {
  SparseDist a({{0, 0.5}, {1, 0.5}});
  SparseDist b({{1, 0.5}, {2, 0.5}});
  EXPECT_DOUBLE_EQ(SparseDist::L1Distance(a, b), 1.0);
  EXPECT_DOUBLE_EQ(SparseDist::L1Distance(a, a), 0.0);
}

TEST(SparseDistTest, ExpectedDistance) {
  StateSpace space({{0, 0}, {0, 2}});
  SparseDist d({{0, 0.5}, {1, 0.5}});
  EXPECT_DOUBLE_EQ(d.ExpectedDistanceTo(space, {0, 0}), 1.0);
}

// ------------------------------------------------------ TransitionMatrix ---

TEST(TransitionMatrixTest, FromRowsValidatesStochasticity) {
  auto bad = TransitionMatrix::FromRows(2, {{{0, 0.5}, {1, 0.2}}, {{1, 1.0}}});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(TransitionMatrixTest, FromRowsRejectsBadTargets) {
  auto bad = TransitionMatrix::FromRows(2, {{{5, 1.0}}, {{1, 1.0}}});
  EXPECT_FALSE(bad.ok());
  auto negative = TransitionMatrix::FromRows(1, {{{0, -1.0}}});
  EXPECT_FALSE(negative.ok());
  auto duplicate = TransitionMatrix::FromRows(1, {{{0, 0.5}, {0, 0.5}}});
  EXPECT_FALSE(duplicate.ok());
}

TEST(TransitionMatrixTest, EmptyRowBecomesAbsorbing) {
  auto m = TransitionMatrix::FromRows(2, {{}, {{0, 1.0}}});
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m.value().Prob(0, 0), 1.0);
  EXPECT_EQ(m.value().row_size(0), 1u);
}

TEST(TransitionMatrixTest, ProbLookup) {
  auto m = MakeMatrix(3, {{{1, 0.3}, {2, 0.7}}, {{1, 1.0}}, {{0, 1.0}}});
  EXPECT_DOUBLE_EQ(m->Prob(0, 1), 0.3);
  EXPECT_DOUBLE_EQ(m->Prob(0, 2), 0.7);
  EXPECT_DOUBLE_EQ(m->Prob(0, 0), 0.0);
  EXPECT_EQ(m->num_nonzeros(), 4u);
}

TEST(TransitionMatrixTest, PropagatePerformsOneTransition) {
  auto m = MakeMatrix(3, {{{1, 0.5}, {2, 0.5}}, {{2, 1.0}}, {{2, 1.0}}});
  SparseDist d = SparseDist::Indicator(0);
  SparseDist next = m->Propagate(d);
  EXPECT_DOUBLE_EQ(next.Prob(1), 0.5);
  EXPECT_DOUBLE_EQ(next.Prob(2), 0.5);
  SparseDist two = m->Propagate(next);
  EXPECT_DOUBLE_EQ(two.Prob(2), 1.0);
}

TEST(TransitionMatrixTest, PropagatePreservesMass) {
  auto world = MakeLineWorld(20);
  SparseDist d({{5, 0.25}, {10, 0.75}});
  for (int step = 0; step < 15; ++step) {
    d = world.matrix->Propagate(d);
    EXPECT_NEAR(d.Mass(), 1.0, 1e-9);
  }
}

TEST(TransitionMatrixTest, SupportGraphMirrorsNonzeros) {
  auto m = MakeMatrix(3, {{{1, 0.5}, {2, 0.5}}, {{0, 1.0}}, {{2, 1.0}}});
  CsrGraph g = m->SupportGraph();
  EXPECT_EQ(g.num_edges(), m->num_nonzeros());
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(2, 2));
  EXPECT_FALSE(g.HasEdge(1, 2));
}

TEST(TransitionMatrixTest, UniformizedKeepsSupportFlattensProbs) {
  auto m = MakeMatrix(2, {{{0, 0.9}, {1, 0.1}}, {{1, 1.0}}});
  TransitionMatrix u = m->Uniformized();
  EXPECT_DOUBLE_EQ(u.Prob(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(u.Prob(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(u.Prob(1, 1), 1.0);
  EXPECT_EQ(u.num_nonzeros(), m->num_nonzeros());
}

// ---------------------------------------------------------------- Builders --

TEST(BuildersTest, DistanceInverseMatrixIsStochastic) {
  Rng rng(3);
  auto space = GenerateStates(300, rng);
  CsrGraph graph = ConnectByRadius(*space, 8.0);
  auto m = DistanceInverseMatrix(*space, graph, 0.1);
  ASSERT_TRUE(m.ok());
  const TransitionMatrix& matrix = m.value();
  for (StateId s = 0; s < matrix.num_states(); ++s) {
    double sum = 0.0;
    for (const auto* e = matrix.begin(s); e != matrix.end(s); ++e) {
      sum += e->second;
      EXPECT_GT(e->second, 0.0);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(BuildersTest, DistanceInverseSelfLoopFraction) {
  Rng rng(3);
  auto space = GenerateStates(200, rng);
  CsrGraph graph = ConnectByRadius(*space, 8.0);
  auto m = DistanceInverseMatrix(*space, graph, 0.25);
  ASSERT_TRUE(m.ok());
  size_t connected = 0;
  for (StateId s = 0; s < m.value().num_states(); ++s) {
    if (graph.degree(s) == 0) continue;
    ++connected;
    EXPECT_NEAR(m.value().Prob(s, s), 0.25, 1e-9);
  }
  EXPECT_GT(connected, 150u);  // most nodes are connected at b=8
}

TEST(BuildersTest, DistanceInverseFavorsCloserNeighbors) {
  // Three collinear states: 1 is near 0, 2 is far from 0.
  StateSpace space({{0, 0}, {0.1, 0}, {1.0, 0}});
  std::vector<std::vector<Edge>> adj(3);
  adj[0] = {{1, 0.1}, {2, 1.0}};
  adj[1] = {{0, 0.1}};
  adj[2] = {{0, 1.0}};
  CsrGraph graph = CsrGraph::FromAdjacency(adj);
  auto m = DistanceInverseMatrix(space, graph, 0.0);
  ASSERT_TRUE(m.ok());
  EXPECT_GT(m.value().Prob(0, 1), m.value().Prob(0, 2));
  // Weights 1/0.1 : 1/1.0 = 10 : 1.
  EXPECT_NEAR(m.value().Prob(0, 1), 10.0 / 11.0, 1e-9);
}

TEST(BuildersTest, DistanceInverseRejectsBadArgs) {
  StateSpace space({{0, 0}});
  CsrGraph graph = CsrGraph::FromAdjacency({{}});
  EXPECT_FALSE(DistanceInverseMatrix(space, graph, 1.0).ok());
  CsrGraph mismatch = CsrGraph::FromAdjacency({{}, {}});
  EXPECT_FALSE(DistanceInverseMatrix(space, mismatch, 0.1).ok());
}

TEST(BuildersTest, IsolatedNodeGetsSelfLoop) {
  StateSpace space({{0, 0}, {5, 5}});
  std::vector<std::vector<Edge>> adj(2);
  adj[0] = {};  // isolated
  adj[1] = {{1, 1.0}};
  auto m = DistanceInverseMatrix(space, CsrGraph::FromAdjacency(adj), 0.1);
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m.value().Prob(0, 0), 1.0);
}

TEST(BuildersTest, LearnedMatrixRecoversFrequencies) {
  // Path graph 0-1-2 with self loops; training walks strongly prefer 0->1.
  StateSpace space({{0, 0}, {1, 0}, {2, 0}});
  std::vector<std::vector<Edge>> adj(3);
  adj[0] = {{1, 1.0}};
  adj[1] = {{0, 1.0}, {2, 1.0}};
  adj[2] = {{1, 1.0}};
  CsrGraph graph = CsrGraph::FromAdjacency(adj);
  std::vector<std::vector<StateId>> trips;
  for (int i = 0; i < 90; ++i) trips.push_back({0, 1, 2});
  for (int i = 0; i < 10; ++i) trips.push_back({0, 1, 0});
  auto m = LearnTransitionMatrix(space, graph, trips, /*alpha=*/0.0);
  ASSERT_TRUE(m.ok());
  // From 1: 90 transitions to 2, 10 to 0.
  EXPECT_NEAR(m.value().Prob(1, 2), 0.9, 1e-9);
  EXPECT_NEAR(m.value().Prob(1, 0), 0.1, 1e-9);
}

TEST(BuildersTest, LearnedMatrixSmoothingKeepsSupport) {
  StateSpace space({{0, 0}, {1, 0}});
  std::vector<std::vector<Edge>> adj(2);
  adj[0] = {{1, 1.0}};
  adj[1] = {{0, 1.0}};
  CsrGraph graph = CsrGraph::FromAdjacency(adj);
  // Training never uses edge 1->0, but smoothing keeps it possible.
  std::vector<std::vector<StateId>> trips = {{0, 1, 1, 1}};
  auto m = LearnTransitionMatrix(space, graph, trips, /*alpha=*/0.5);
  ASSERT_TRUE(m.ok());
  EXPECT_GT(m.value().Prob(1, 0), 0.0);
  EXPECT_GT(m.value().Prob(1, 1), m.value().Prob(1, 0));
}

TEST(BuildersTest, LearnedMatrixUnvisitedStateUniform) {
  StateSpace space({{0, 0}, {1, 0}, {2, 0}});
  std::vector<std::vector<Edge>> adj(3);
  adj[0] = {{1, 1.0}, {2, 1.0}};
  adj[1] = {};
  adj[2] = {};
  CsrGraph graph = CsrGraph::FromAdjacency(adj);
  auto m = LearnTransitionMatrix(space, graph, {}, /*alpha=*/1.0);
  ASSERT_TRUE(m.ok());
  // State 0 has neighbors {1, 2} plus self-loop; all alpha-smoothed equal.
  EXPECT_NEAR(m.value().Prob(0, 1), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(m.value().Prob(0, 0), 1.0 / 3.0, 1e-9);
}

}  // namespace
}  // namespace ust
