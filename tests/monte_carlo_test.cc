#include <gtest/gtest.h>

#include "query/exact.h"
#include "query/monte_carlo.h"
#include "test_world.h"
#include "util/stats.h"

namespace ust {
namespace {

using testing::Figure1World;
using testing::MakeFigure1World;
using testing::MakeLineWorld;

ObservationSeq Obs(std::vector<Observation> v) {
  auto r = ObservationSeq::Create(std::move(v));
  UST_CHECK(r.ok());
  return r.MoveValue();
}

MonteCarloOptions Opts(size_t worlds, uint64_t seed = 42, int k = 1) {
  MonteCarloOptions o;
  o.num_worlds = worlds;
  o.seed = seed;
  o.k = k;
  return o;
}

TEST(MonteCarloTest, MatchesExactOnFigure1) {
  Figure1World world = MakeFigure1World();
  auto estimates = EstimatePnn(*world.db, {world.o1, world.o2},
                               {world.o1, world.o2}, world.q, world.T,
                               Opts(20000));
  ASSERT_TRUE(estimates.ok());
  // Hoeffding bound at 20000 samples, 99% confidence: eps ~ 0.0115.
  const double eps = HoeffdingEpsilon(20000, 0.01);
  EXPECT_NEAR(estimates.value()[0].forall_prob, 0.75, eps);
  EXPECT_NEAR(estimates.value()[1].exists_prob, 0.25, eps);
  EXPECT_NEAR(estimates.value()[0].exists_prob, 1.0, eps);
  EXPECT_NEAR(estimates.value()[1].forall_prob, 0.0, eps);
}

TEST(MonteCarloTest, DeterministicForSameSeed) {
  Figure1World world = MakeFigure1World();
  auto a = EstimatePnn(*world.db, {world.o1, world.o2}, {world.o1}, world.q,
                       world.T, Opts(500, 7));
  auto b = EstimatePnn(*world.db, {world.o1, world.o2}, {world.o1}, world.q,
                       world.T, Opts(500, 7));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a.value()[0].forall_prob, b.value()[0].forall_prob);
  EXPECT_DOUBLE_EQ(a.value()[0].exists_prob, b.value()[0].exists_prob);
}

TEST(MonteCarloTest, ForallNeverExceedsExists) {
  Figure1World world = MakeFigure1World();
  auto estimates = EstimatePnn(*world.db, {world.o1, world.o2},
                               {world.o1, world.o2}, world.q, world.T,
                               Opts(2000));
  ASSERT_TRUE(estimates.ok());
  for (const auto& e : estimates.value()) {
    EXPECT_LE(e.forall_prob, e.exists_prob);
  }
}

TEST(MonteCarloTest, IntervalShrinkingRaisesForallProb) {
  Figure1World world = MakeFigure1World();
  double prev = 0.0;
  for (Tic end = 3; end >= 1; --end) {
    auto estimates = EstimatePnn(*world.db, {world.o1, world.o2}, {world.o1},
                                 world.q, {1, end}, Opts(5000));
    ASSERT_TRUE(estimates.ok());
    EXPECT_GE(estimates.value()[0].forall_prob + 0.02, prev);
    prev = estimates.value()[0].forall_prob;
  }
}

TEST(MonteCarloTest, MatchesExactOnRandomLineWorlds) {
  // Cross-validation on 3-object worlds: MC vs exhaustive enumeration.
  for (uint64_t seed = 0; seed < 3; ++seed) {
    Rng rng(900 + seed);
    auto world = MakeLineWorld(6, 0.3, 0.4);
    TrajectoryDatabase db(world.space);
    std::vector<ObjectId> ids;
    for (int i = 0; i < 3; ++i) {
      StateId s = static_cast<StateId>(rng.UniformInt(6));
      ids.push_back(db.AddObject(Obs({{0, s}}), world.matrix, 3));
    }
    QueryTrajectory q =
        QueryTrajectory::FromPoint({rng.Uniform(0, 5), rng.Uniform(-1, 1)});
    TimeInterval T{0, 3};
    auto exact = ExactPnnByEnumeration(db, ids, q, T);
    ASSERT_TRUE(exact.ok());
    auto mc = EstimatePnn(db, ids, ids, q, T, Opts(20000, seed + 1));
    ASSERT_TRUE(mc.ok());
    const double eps = HoeffdingEpsilon(20000, 0.01);
    for (size_t i = 0; i < ids.size(); ++i) {
      EXPECT_NEAR(mc.value()[i].forall_prob, exact.value()[i].forall_prob, eps)
          << "seed " << seed << " object " << i;
      EXPECT_NEAR(mc.value()[i].exists_prob, exact.value()[i].exists_prob, eps)
          << "seed " << seed << " object " << i;
    }
  }
}

TEST(MonteCarloTest, PartiallyAliveObjectCompetesOnlyWhenAlive) {
  // Object b exists only in the second half of T; object a must win the
  // first half unconditionally.
  auto space = std::make_shared<const StateSpace>(
      std::vector<Point2>{{0, 2}, {0, 1}});
  auto matrix = testing::MakeMatrix(2, {{{0, 1.0}}, {{1, 1.0}}});
  TrajectoryDatabase db(space);
  ObjectId a = db.AddObject(Obs({{0, 0}}), matrix, 3);      // far, alive 0..3
  ObjectId b = db.AddObject(Obs({{2, 1}}), matrix, 3);      // near, alive 2..3
  QueryTrajectory q = QueryTrajectory::FromPoint({0, 0});
  auto estimates = EstimatePnn(db, {a, b}, {a, b}, q, {0, 3}, Opts(200));
  ASSERT_TRUE(estimates.ok());
  // a is NN at t=0,1 (alone) but loses t=2,3 to b => exists 1, forall 0.
  EXPECT_DOUBLE_EQ(estimates.value()[0].exists_prob, 1.0);
  EXPECT_DOUBLE_EQ(estimates.value()[0].forall_prob, 0.0);
  // b is NN whenever alive but not alive at t=0 => forall 0, exists 1.
  EXPECT_DOUBLE_EQ(estimates.value()[1].forall_prob, 0.0);
  EXPECT_DOUBLE_EQ(estimates.value()[1].exists_prob, 1.0);
}

TEST(MonteCarloTest, DeadObjectNeverWins) {
  auto space = std::make_shared<const StateSpace>(
      std::vector<Point2>{{0, 1}, {0, 2}});
  auto matrix = testing::MakeMatrix(2, {{{0, 1.0}}, {{1, 1.0}}});
  TrajectoryDatabase db(space);
  ObjectId dead = db.AddObject(Obs({{10, 0}}), matrix);  // alive only at 10
  ObjectId live = db.AddObject(Obs({{0, 1}}), matrix, 5);
  QueryTrajectory q = QueryTrajectory::FromPoint({0, 0});
  auto estimates =
      EstimatePnn(db, {dead, live}, {dead, live}, q, {0, 5}, Opts(100));
  ASSERT_TRUE(estimates.ok());
  EXPECT_DOUBLE_EQ(estimates.value()[0].exists_prob, 0.0);
  EXPECT_DOUBLE_EQ(estimates.value()[1].forall_prob, 1.0);
}

TEST(MonteCarloTest, TiesCountForAllTiedObjects) {
  // Both objects pinned to the same state: each is a (tied) NN always.
  auto space = std::make_shared<const StateSpace>(
      std::vector<Point2>{{0, 1}});
  auto matrix = testing::MakeMatrix(1, {{{0, 1.0}}});
  TrajectoryDatabase db(space);
  ObjectId a = db.AddObject(Obs({{0, 0}}), matrix, 2);
  ObjectId b = db.AddObject(Obs({{0, 0}}), matrix, 2);
  QueryTrajectory q = QueryTrajectory::FromPoint({0, 0});
  auto estimates = EstimatePnn(db, {a, b}, {a, b}, q, {0, 2}, Opts(100));
  ASSERT_TRUE(estimates.ok());
  EXPECT_DOUBLE_EQ(estimates.value()[0].forall_prob, 1.0);
  EXPECT_DOUBLE_EQ(estimates.value()[1].forall_prob, 1.0);
}

TEST(MonteCarloTest, InvalidInputsRejected) {
  Figure1World world = MakeFigure1World();
  // Empty interval.
  auto bad_interval = EstimatePnn(*world.db, {world.o1}, {world.o1}, world.q,
                                  {3, 1}, Opts(10));
  EXPECT_FALSE(bad_interval.ok());
  // Target outside participants.
  auto bad_target = EstimatePnn(*world.db, {world.o1}, {world.o2}, world.q,
                                world.T, Opts(10));
  EXPECT_FALSE(bad_target.ok());
  // Moving query trajectory not covering T.
  QueryTrajectory moving = QueryTrajectory::FromPoints(1, {{0, 0}, {0, 1}});
  auto bad_coverage = EstimatePnn(*world.db, {world.o1}, {world.o1}, moving,
                                  world.T, Opts(10));
  EXPECT_FALSE(bad_coverage.ok());
}

TEST(NnTableTest, AccessorsAndSubsetProbabilities) {
  Figure1World world = MakeFigure1World();
  auto table = ComputeNnTable(*world.db, {world.o1, world.o2}, world.q,
                              world.T, Opts(5000));
  ASSERT_TRUE(table.ok());
  const NnTable& t = table.value();
  EXPECT_EQ(t.num_worlds(), 5000u);
  EXPECT_EQ(t.objects().size(), 2u);
  EXPECT_EQ(t.IndexOf(world.o2), 1u);
  EXPECT_EQ(t.IndexOf(9999), NnTable::npos);
  // o1 is certain at t=1 (distance 2 vs 3).
  EXPECT_DOUBLE_EQ(t.ForallProb(0, {1}), 1.0);
  EXPECT_DOUBLE_EQ(t.ForallProb(1, {1}), 0.0);
  // Subset monotonicity.
  EXPECT_GE(t.ForallProb(0, {2}), t.ForallProb(0, {2, 3}));
  EXPECT_LE(t.ExistsProb(1, {2}), t.ExistsProb(1, {2, 3}));
  // P∀NN(o2, {2,3}) = 0.125 from the worked example.
  EXPECT_NEAR(t.ForallProb(1, {2, 3}), 0.125, HoeffdingEpsilon(5000, 0.01));
}

TEST(MonteCarloTest, MovingQueryTrajectory) {
  // Query follows o2's certain start then moves away; probabilities shift
  // towards the object that tracks the query.
  Figure1World world = MakeFigure1World();
  QueryTrajectory moving = QueryTrajectory::FromPoints(
      1, {{0, 3}, {0, 4}, {0, 4}});  // on top of s3 then s4
  auto estimates = EstimatePnn(*world.db, {world.o1, world.o2},
                               {world.o1, world.o2}, moving, world.T,
                               Opts(5000));
  ASSERT_TRUE(estimates.ok());
  // o2 starts at s3 = q(1): certain NN at t=1, and follows s4 with p=.5.
  EXPECT_GT(estimates.value()[1].exists_prob, 0.99);
  EXPECT_GT(estimates.value()[1].forall_prob, 0.4);
}

}  // namespace
}  // namespace ust
