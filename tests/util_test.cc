#include <gtest/gtest.h>

#include <cmath>

#include <cstring>
#include <limits>
#include <sstream>

#include "util/aligned.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/timer.h"

namespace ust {
namespace {

// ---------------------------------------------------------------- Status ---

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Contradiction("x").code(), StatusCode::kContradiction);
  EXPECT_EQ(Status::ResourceLimit("x").code(), StatusCode::kResourceLimit);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, MoveValueTransfersOwnership) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = r.MoveValue();
  EXPECT_EQ(v.size(), 3u);
}

Status FailingHelper() { return Status::OutOfRange("nope"); }
Status PropagatingHelper() {
  UST_RETURN_NOT_OK(FailingHelper());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_EQ(PropagatingHelper().code(), StatusCode::kOutOfRange);
}

Result<int> GiveFive() { return 5; }
Status UseAssignOrReturn(int* out) {
  UST_ASSIGN_OR_RETURN(*out, GiveFive());
  return Status::OK();
}

TEST(StatusTest, AssignOrReturnMacroAssigns) {
  int x = 0;
  ASSERT_TRUE(UseAssignOrReturn(&x).ok());
  EXPECT_EQ(x, 5);
}

// ------------------------------------------------------------------- Rng ---

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Uniform(), b.Uniform());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.Uniform() == b.Uniform() ? 1 : 0;
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    double v = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(5);
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 6000; ++i) ++counts[rng.UniformInt(6)];
  for (int c : counts) EXPECT_GT(c, 700);  // each ~1000 expected
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(6);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(7);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / 20000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 20000.0, 0.3, 0.02);
  EXPECT_NEAR(counts[3] / 20000.0, 0.6, 0.02);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(11);
  Rng child = parent.Fork();
  // Child stream differs from the parent continuation.
  int equal = 0;
  for (int i = 0; i < 50; ++i) equal += parent.Uniform() == child.Uniform();
  EXPECT_LT(equal, 3);
}

// ----------------------------------------------------------------- Stats ---

TEST(StatsTest, HoeffdingSampleCountMatchesFormula) {
  // n >= ln(2/delta) / (2 eps^2); for eps=0.01, delta=0.05: ~18445.
  EXPECT_EQ(HoeffdingSampleCount(0.01, 0.05), 18445u);
  // Bigger tolerance needs fewer samples.
  EXPECT_LT(HoeffdingSampleCount(0.05, 0.05), HoeffdingSampleCount(0.01, 0.05));
}

TEST(StatsTest, HoeffdingEpsilonInvertsSampleCount) {
  size_t n = HoeffdingSampleCount(0.02, 0.1);
  double eps = HoeffdingEpsilon(n, 0.1);
  EXPECT_LE(eps, 0.02 + 1e-4);
  EXPECT_GE(eps, 0.015);
}

TEST(StatsTest, MeanAndStdDev) {
  std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_NEAR(StdDev(xs), 2.138, 1e-3);  // unbiased (n-1)
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(StdDev({1.0}), 0.0);
}

TEST(StatsTest, RmseAndSignedError) {
  std::vector<double> a = {1, 2, 3}, b = {1, 1, 5};
  EXPECT_NEAR(Rmse(a, b), std::sqrt((0.0 + 1.0 + 4.0) / 3.0), 1e-12);
  EXPECT_NEAR(MeanSignedError(a, b), (0.0 + 1.0 - 2.0) / 3.0, 1e-12);
}

TEST(StatsTest, PearsonCorrelation) {
  std::vector<double> a = {1, 2, 3, 4};
  std::vector<double> b = {2, 4, 6, 8};
  EXPECT_NEAR(PearsonCorrelation(a, b), 1.0, 1e-12);
  std::vector<double> c = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(a, c), -1.0, 1e-12);
  std::vector<double> flat = {5, 5, 5, 5};
  EXPECT_EQ(PearsonCorrelation(a, flat), 0.0);
}

// ----------------------------------------------------------------- Flags ---

TEST(FlagsTest, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--states=100", "--objects", "25", "--verbose"};
  Flags flags = Flags::Parse(5, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("states", 0), 100);
  EXPECT_EQ(flags.GetInt("objects", 0), 25);
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_EQ(flags.GetInt("missing", -1), -1);
}

TEST(FlagsTest, TypedGetters) {
  const char* argv[] = {"prog", "--tau=0.5", "--name=hello", "--flag=false"};
  Flags flags = Flags::Parse(4, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(flags.GetDouble("tau", 0.0), 0.5);
  EXPECT_EQ(flags.GetString("name", ""), "hello");
  EXPECT_FALSE(flags.GetBool("flag", true));
  EXPECT_TRUE(flags.Has("tau"));
  EXPECT_FALSE(flags.Has("other"));
}

// ------------------------------------------------------------------- Csv ---

TEST(CsvTest, PrintsHeaderAndRows) {
  CsvTable table({"a", "b"});
  table.AddRow({1.0, 2.5});
  table.AddRow({3.0, 4.0});
  std::ostringstream os;
  table.Print(os, "Title");
  EXPECT_EQ(os.str(), "# Title\na,b\n1,2.5\n3,4\n");
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(CsvTest, FormatDoubleTrimsIntegers) {
  EXPECT_EQ(FormatDouble(42.0), "42");
  EXPECT_EQ(FormatDouble(0.125), "0.125");
  EXPECT_EQ(FormatDouble(1e6), "1000000");
}

TEST(LatencyHistogramTest, EmptyAndSingleSample) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  h.Record(250.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 250.0);
  EXPECT_EQ(h.max(), 250.0);
  EXPECT_EQ(h.mean(), 250.0);
  // One sample: every quantile is clamped into [min, max] = {250}.
  EXPECT_EQ(h.Quantile(0.0), 250.0);
  EXPECT_EQ(h.Quantile(0.99), 250.0);
}

TEST(LatencyHistogramTest, QuantilesOfUniformSamples) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 1000.0);
  EXPECT_NEAR(h.mean(), 500.5, 1e-9);
  // Log-scale buckets have ~19% relative resolution; quantiles must land in
  // the right neighborhood, monotonically.
  EXPECT_NEAR(h.Quantile(0.5), 500.0, 120.0);
  EXPECT_NEAR(h.Quantile(0.99), 990.0, 120.0);
  EXPECT_LE(h.Quantile(0.1), h.Quantile(0.5));
  EXPECT_LE(h.Quantile(0.5), h.Quantile(0.9));
  EXPECT_LE(h.Quantile(0.9), h.Quantile(1.0));
  EXPECT_EQ(h.Quantile(1.0), 1000.0);
}

TEST(LatencyHistogramTest, ClampsGarbageAndMerges) {
  LatencyHistogram a;
  a.Record(-5.0);  // clamped to 0
  a.Record(std::numeric_limits<double>::quiet_NaN());  // clamped to 0
  EXPECT_EQ(a.min(), 0.0);
  EXPECT_EQ(a.max(), 0.0);
  LatencyHistogram b;
  b.Record(100.0);
  b.Record(200.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.max(), 200.0);
  EXPECT_EQ(a.min(), 0.0);
  EXPECT_NEAR(a.mean(), 75.0, 1e-9);
}

// --------------------------------------------------------------- Aligned ---

TEST(AlignedTest, VectorDataIs32ByteAligned) {
  // The SIMD kernels assume nothing (unaligned loads), but the arena and
  // NnTable storage promise 32-byte slabs anyway — pin the promise.
  for (size_t n : {1u, 7u, 64u, 1000u}) {
    AlignedVector<uint64_t> words(n, 0);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(words.data()) % 32, 0u) << n;
    AlignedVector<uint32_t> locals(n, 0);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(locals.data()) % 32, 0u) << n;
  }
  // Growth reallocations keep the alignment.
  AlignedVector<uint64_t> grow;
  for (int i = 0; i < 100; ++i) {
    grow.push_back(static_cast<uint64_t>(i));
    EXPECT_EQ(reinterpret_cast<uintptr_t>(grow.data()) % 32, 0u);
  }
}

// ------------------------------------------------------------------ Simd ---

TEST(SimdTest, DetectedLevelIsActiveByDefault) {
  // UST_SIMD=scalar builds cap the default below the detected level; either
  // way the active level never exceeds what the CPU supports.
  EXPECT_LE(static_cast<int>(ActiveSimdLevel()),
            static_cast<int>(DetectSimdLevel()));
  EXPECT_NE(SimdLevelName(ActiveSimdLevel()), nullptr);
}

TEST(SimdTest, ForceRejectsUnsupportedLevels) {
  // Forcing scalar always works; forcing the detected level always works;
  // forcing anything above detection must fail and leave the table usable.
  EXPECT_TRUE(ForceSimdLevel(SimdLevel::kScalar));
  EXPECT_TRUE(ForceSimdLevel(DetectSimdLevel()));
  if (DetectSimdLevel() != SimdLevel::kAvx2) {
    EXPECT_FALSE(ForceSimdLevel(SimdLevel::kAvx2));
  }
  EXPECT_TRUE(ForceSimdLevel(DetectSimdLevel()));
}

TEST(SimdTest, KernelsBitwiseEqualAcrossLevels) {
  // Popcount sums are integers, so every dispatch level must agree exactly
  // — including ragged tails that exercise the vector/scalar seam.
  Rng rng(1234);
  for (size_t n : {0u, 1u, 3u, 4u, 5u, 8u, 13u, 31u, 64u, 100u}) {
    AlignedVector<uint64_t> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = rng() | (rng() << 1);
      b[i] = rng() ^ (rng() >> 3);
    }
    std::vector<const uint64_t*> rows = {a.data(), b.data()};
    ASSERT_TRUE(ForceSimdLevel(SimdLevel::kScalar));
    const uint64_t pop_s = PopcountWords(a.data(), n);
    const uint64_t and_s = AndPopcountWords(a.data(), b.data(), n);
    const uint64_t or_s = OrPopcountWords(a.data(), b.data(), n);
    const uint64_t andr_s = AndRowsPopcount(rows.data(), rows.size(), n);
    const uint64_t orr_s = OrRowsPopcount(rows.data(), rows.size(), n);
    ASSERT_TRUE(ForceSimdLevel(DetectSimdLevel()));
    EXPECT_EQ(PopcountWords(a.data(), n), pop_s) << n;
    EXPECT_EQ(AndPopcountWords(a.data(), b.data(), n), and_s) << n;
    EXPECT_EQ(OrPopcountWords(a.data(), b.data(), n), or_s) << n;
    EXPECT_EQ(AndRowsPopcount(rows.data(), rows.size(), n), andr_s) << n;
    EXPECT_EQ(OrRowsPopcount(rows.data(), rows.size(), n), orr_s) << n;
  }
}

TEST(SimdTest, RowReductionEdgeCases) {
  AlignedVector<uint64_t> ones(4, ~uint64_t{0});
  const uint64_t* row = ones.data();
  // Zero rows: AND over nothing is all-ones (64 bits per word), OR is empty.
  EXPECT_EQ(AndRowsPopcount(nullptr, 0, 4), 256u);
  EXPECT_EQ(OrRowsPopcount(nullptr, 0, 4), 0u);
  EXPECT_EQ(AndRowsPopcount(&row, 1, 4), 256u);
  EXPECT_EQ(OrRowsPopcount(&row, 1, 4), 256u);
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  double t0 = timer.Seconds();
  EXPECT_GE(t0, 0.0);
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(timer.Seconds(), t0);
  timer.Reset();
  EXPECT_LT(timer.Millis(), 1000.0);
}

}  // namespace
}  // namespace ust
