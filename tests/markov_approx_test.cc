#include <gtest/gtest.h>

#include "query/exact.h"
#include "query/markov_approx.h"
#include "query/monte_carlo.h"
#include "test_world.h"
#include "util/rng.h"

namespace ust {
namespace {

using testing::Figure1World;
using testing::MakeFigure1World;
using testing::MakeLineWorld;

ObservationSeq Obs(std::vector<Observation> v) {
  auto r = ObservationSeq::Create(std::move(v));
  UST_CHECK(r.ok());
  return r.MoveValue();
}

TEST(StripTest, FromPosteriorCopiesWindow) {
  Figure1World world = MakeFigure1World();
  auto posterior = world.db->object(world.o1).Posterior();
  ASSERT_TRUE(posterior.ok());
  auto strip = StripFromPosterior(*posterior.value(), 2, 3);
  ASSERT_TRUE(strip.ok());
  EXPECT_EQ(strip.value().start, 2);
  EXPECT_EQ(strip.value().slices.size(), 2u);
  EXPECT_TRUE(strip.value().slices.back().targets.empty());
  EXPECT_FALSE(StripFromPosterior(*posterior.value(), 0, 3).ok());
}

TEST(MarkovApproxTest, SingleCompetitorIsExactLemma2) {
  // With one competitor there is nothing to approximate: the pipeline is
  // exactly the Lemma-2 pairwise domination.
  Figure1World world = MakeFigure1World();
  auto approx = ApproximateForallNnMarkov(*world.db, world.o1, {world.o2},
                                          world.q, world.T);
  ASSERT_TRUE(approx.ok());
  EXPECT_NEAR(approx.value(), 0.75, 1e-12);
  auto approx2 = ApproximateForallNnMarkov(*world.db, world.o2, {world.o1},
                                           world.q, world.T);
  ASSERT_TRUE(approx2.ok());
  EXPECT_NEAR(approx2.value(), 0.0, 1e-12);
}

TEST(MarkovApproxTest, SingleCompetitorMatchesEnumerationOnRandomWorlds) {
  Rng rng(55);
  for (int iter = 0; iter < 6; ++iter) {
    auto line = MakeLineWorld(6, 0.3, 0.4);
    TrajectoryDatabase db(line.space);
    StateId sa = static_cast<StateId>(rng.UniformInt(6));
    StateId sb = static_cast<StateId>(rng.UniformInt(6));
    ObjectId a = db.AddObject(Obs({{0, sa}}), line.matrix, 4);
    ObjectId b = db.AddObject(Obs({{0, sb}}), line.matrix, 4);
    QueryTrajectory q = QueryTrajectory::FromPoint(
        {rng.Uniform(0, 5), rng.Uniform(-1, 1)});
    TimeInterval T{0, 4};
    auto exact = ExactPnnByEnumeration(db, {a, b}, q, T);
    auto approx = ApproximateForallNnMarkov(db, a, {b}, q, T);
    ASSERT_TRUE(exact.ok() && approx.ok());
    EXPECT_NEAR(approx.value(), exact.value()[0].forall_prob, 1e-9)
        << "iter " << iter;
  }
}

TEST(MarkovApproxTest, MultiCompetitorStaysInUnitInterval) {
  Rng rng(56);
  for (int iter = 0; iter < 6; ++iter) {
    auto line = MakeLineWorld(7, 0.3, 0.4);
    TrajectoryDatabase db(line.space);
    std::vector<ObjectId> ids;
    for (int i = 0; i < 4; ++i) {
      StateId s = static_cast<StateId>(rng.UniformInt(7));
      ids.push_back(db.AddObject(Obs({{0, s}}), line.matrix, 3));
    }
    QueryTrajectory q = QueryTrajectory::FromPoint(
        {rng.Uniform(0, 6), rng.Uniform(-1, 1)});
    auto approx = ApproximateForallNnMarkov(db, ids[0],
                                            {ids[1], ids[2], ids[3]}, q,
                                            {0, 3});
    ASSERT_TRUE(approx.ok());
    EXPECT_GE(approx.value(), -1e-12);
    EXPECT_LE(approx.value(), 1.0 + 1e-12);
  }
}

TEST(MarkovApproxTest, MultiCompetitorCloseToExactButNotAlwaysEqual) {
  // The Markov-reimposed reduction is an approximation (Section 4.2 shows
  // the adapted chain is NOT Markov); compare against enumeration on random
  // 3-object worlds and record the deviation. It must be small but the test
  // documents that it is an approximation, not an exact method.
  Rng rng(57);
  double max_error = 0.0;
  int informative = 0;
  for (int iter = 0; iter < 10; ++iter) {
    auto line = MakeLineWorld(6, 0.3, 0.4);
    TrajectoryDatabase db(line.space);
    std::vector<ObjectId> ids;
    for (int i = 0; i < 3; ++i) {
      StateId s = static_cast<StateId>(rng.UniformInt(6));
      ids.push_back(db.AddObject(Obs({{0, s}}), line.matrix, 3));
    }
    QueryTrajectory q = QueryTrajectory::FromPoint(
        {rng.Uniform(0, 5), rng.Uniform(-1, 1)});
    TimeInterval T{0, 3};
    auto exact = ExactPnnByEnumeration(db, ids, q, T);
    auto approx =
        ApproximateForallNnMarkov(db, ids[0], {ids[1], ids[2]}, q, T);
    ASSERT_TRUE(exact.ok() && approx.ok());
    double truth = exact.value()[0].forall_prob;
    if (truth > 0.01 && truth < 0.99) ++informative;
    max_error = std::max(max_error, std::abs(approx.value() - truth));
  }
  ASSERT_GT(informative, 0);
  // Close (it reuses exact pairwise machinery) but allowed to deviate.
  EXPECT_LT(max_error, 0.1);
}

TEST(MarkovApproxTest, MarkovAssumptionIsGenuinelyAnApproximation) {
  // Section 4.2's point, demonstrated: there exist instances where the
  // Markov-reimposed pipeline deviates from the exact probability (the
  // adapted chain is not Markov), even though the deviation is small.
  Rng rng(1);
  double max_err = 0.0;
  for (int iter = 0; iter < 400 && max_err < 1e-4; ++iter) {
    std::vector<Point2> pts;
    for (int i = 0; i < 5; ++i) pts.push_back({rng.Uniform(0, 4), 0});
    auto space = std::make_shared<const StateSpace>(pts);
    std::vector<std::vector<TransitionMatrix::Entry>> rows(5);
    for (StateId s = 0; s < 5; ++s) {
      double w1 = rng.Uniform(0.1, 1), w2 = rng.Uniform(0.1, 1);
      StateId a = static_cast<StateId>(rng.UniformInt(5));
      StateId b = static_cast<StateId>(rng.UniformInt(5));
      if (a == b) {
        rows[s] = {{a, 1.0}};
      } else {
        rows[s] = {{a, w1 / (w1 + w2)}, {b, w2 / (w1 + w2)}};
      }
    }
    auto m = testing::MakeMatrix(5, std::move(rows));
    TrajectoryDatabase db(space);
    ObjectId o = db.AddObject(
        Obs({{0, static_cast<StateId>(rng.UniformInt(5))}}), m, 3);
    ObjectId c1 = db.AddObject(
        Obs({{0, static_cast<StateId>(rng.UniformInt(5))}}), m, 3);
    ObjectId c2 = db.AddObject(
        Obs({{0, static_cast<StateId>(rng.UniformInt(5))}}), m, 3);
    QueryTrajectory q = QueryTrajectory::FromPoint({rng.Uniform(0, 4), 0});
    TimeInterval T{0, 3};
    auto exact = ExactPnnByEnumeration(db, {o, c1, c2}, q, T);
    auto ma = ApproximateForallNnMarkov(db, o, {c1, c2}, q, T);
    ASSERT_TRUE(exact.ok() && ma.ok());
    max_err = std::max(max_err,
                       std::abs(exact.value()[0].forall_prob - ma.value()));
  }
  EXPECT_GT(max_err, 1e-4);  // not exact...
  EXPECT_LT(max_err, 0.05);  // ...but close
}

TEST(MarkovApproxTest, DeadTargetScoresZero) {
  Figure1World world = MakeFigure1World();
  auto approx = ApproximateForallNnMarkov(*world.db, world.o1, {world.o2},
                                          world.q, {0, 3});
  ASSERT_TRUE(approx.ok());
  EXPECT_DOUBLE_EQ(approx.value(), 0.0);  // o1 is born at t=1
}

TEST(MarkovApproxTest, PartiallyAliveCompetitorHandled) {
  // Competitor exists only in the second half of T; the augmented chain
  // must leave o unconstrained while the competitor is dead.
  auto space = std::make_shared<const StateSpace>(
      std::vector<Point2>{{0, 2}, {0, 1}});
  auto matrix = testing::MakeMatrix(2, {{{0, 1.0}}, {{1, 1.0}}});
  TrajectoryDatabase db(space);
  ObjectId far_obj = db.AddObject(Obs({{0, 0}}), matrix, 3);   // alive 0..3
  ObjectId near_obj = db.AddObject(Obs({{2, 1}}), matrix, 3);  // alive 2..3
  QueryTrajectory q = QueryTrajectory::FromPoint({0, 0});
  // Over [0,1] the competitor is dead: far_obj dominates vacuously.
  auto early = ApproximateForallNnMarkov(db, far_obj, {near_obj}, q, {0, 1});
  ASSERT_TRUE(early.ok());
  EXPECT_DOUBLE_EQ(early.value(), 1.0);
  // Over [0,3] the competitor undercuts far_obj at t=2,3: probability 0.
  auto full = ApproximateForallNnMarkov(db, far_obj, {near_obj}, q, {0, 3});
  ASSERT_TRUE(full.ok());
  EXPECT_DOUBLE_EQ(full.value(), 0.0);
}

TEST(MarkovApproxTest, NeverAliveCompetitorIsVacuous) {
  auto space = std::make_shared<const StateSpace>(
      std::vector<Point2>{{0, 1}, {0, 2}});
  auto matrix = testing::MakeMatrix(2, {{{0, 1.0}}, {{1, 1.0}}});
  TrajectoryDatabase db(space);
  ObjectId a = db.AddObject(Obs({{0, 0}}), matrix, 2);
  ObjectId ghost = db.AddObject(Obs({{50, 1}}), matrix);
  QueryTrajectory q = QueryTrajectory::FromPoint({0, 0});
  auto approx = ApproximateForallNnMarkov(db, a, {ghost}, q, {0, 2});
  ASSERT_TRUE(approx.ok());
  EXPECT_DOUBLE_EQ(approx.value(), 1.0);
}

TEST(MarkovApproxTest, AgreesWithMonteCarloOnFigure1Pair) {
  Figure1World world = MakeFigure1World();
  MonteCarloOptions options;
  options.num_worlds = 20000;
  auto mc = EstimatePnn(*world.db, {world.o1, world.o2}, {world.o1}, world.q,
                        world.T, options);
  auto ma = ApproximateForallNnMarkov(*world.db, world.o1, {world.o2},
                                      world.q, world.T);
  ASSERT_TRUE(mc.ok() && ma.ok());
  EXPECT_NEAR(mc.value()[0].forall_prob, ma.value(), 0.02);
}

}  // namespace
}  // namespace ust
