#include <gtest/gtest.h>

#include <limits>

#include "graph/csr_graph.h"
#include "graph/dijkstra.h"
#include "graph/reachability.h"
#include "util/rng.h"

namespace ust {
namespace {

// A 4-node diamond:  0 -> 1 -> 3, 0 -> 2 -> 3, plus a long edge 0 -> 3.
CsrGraph MakeDiamondGraph() {
  std::vector<std::vector<Edge>> adj(4);
  adj[0] = {{1, 1.0}, {2, 2.0}, {3, 10.0}};
  adj[1] = {{3, 1.0}};
  adj[2] = {{3, 1.0}};
  return CsrGraph::FromAdjacency(adj);
}

TEST(CsrGraphTest, BasicAccessors) {
  CsrGraph g = MakeDiamondGraph();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(3), 0u);
  EXPECT_TRUE(g.HasEdge(0, 3));
  EXPECT_FALSE(g.HasEdge(3, 0));
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 5.0 / 4.0);
}

TEST(CsrGraphTest, EdgeIterationOrderPreserved) {
  CsrGraph g = MakeDiamondGraph();
  std::vector<StateId> targets;
  for (const Edge* e = g.begin(0); e != g.end(0); ++e) targets.push_back(e->to);
  EXPECT_EQ(targets, (std::vector<StateId>{1, 2, 3}));
}

TEST(CsrGraphTest, ReversedFlipsEdges) {
  CsrGraph g = MakeDiamondGraph();
  CsrGraph r = g.Reversed();
  EXPECT_EQ(r.num_edges(), g.num_edges());
  EXPECT_TRUE(r.HasEdge(3, 0));
  EXPECT_TRUE(r.HasEdge(1, 0));
  EXPECT_FALSE(r.HasEdge(0, 1));
  // Double reversal restores adjacency.
  CsrGraph rr = r.Reversed();
  for (StateId v = 0; v < g.num_nodes(); ++v) {
    for (const Edge* e = g.begin(v); e != g.end(v); ++e) {
      EXPECT_TRUE(rr.HasEdge(v, e->to));
    }
  }
}

TEST(CsrGraphTest, EmptyGraph) {
  CsrGraph g = CsrGraph::FromAdjacency({});
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.AverageDegree(), 0.0);
}

TEST(DijkstraTest, ShortestPathPrefersCheapRoute) {
  CsrGraph g = MakeDiamondGraph();
  auto path = ShortestPath(g, 0, 3);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path.value(), (std::vector<StateId>{0, 1, 3}));  // cost 2 < 3 < 10
}

TEST(DijkstraTest, PathToSelfIsSingleton) {
  CsrGraph g = MakeDiamondGraph();
  auto path = ShortestPath(g, 2, 2);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path.value(), (std::vector<StateId>{2}));
}

TEST(DijkstraTest, UnreachableTargetReportsNotFound) {
  CsrGraph g = MakeDiamondGraph();
  auto path = ShortestPath(g, 3, 0);
  ASSERT_FALSE(path.ok());
  EXPECT_EQ(path.status().code(), StatusCode::kNotFound);
}

TEST(DijkstraTest, DistancesMatchManualValues) {
  CsrGraph g = MakeDiamondGraph();
  auto dist = ShortestDistances(g, 0);
  EXPECT_DOUBLE_EQ(dist[0], 0.0);
  EXPECT_DOUBLE_EQ(dist[1], 1.0);
  EXPECT_DOUBLE_EQ(dist[2], 2.0);
  EXPECT_DOUBLE_EQ(dist[3], 2.0);
  auto dist3 = ShortestDistances(g, 3);
  EXPECT_EQ(dist3[0], std::numeric_limits<double>::infinity());
}

TEST(DijkstraTest, RandomGraphPathCostsMatchDistances) {
  Rng rng(17);
  const size_t n = 60;
  std::vector<std::vector<Edge>> adj(n);
  for (StateId v = 0; v < n; ++v) {
    for (int e = 0; e < 4; ++e) {
      StateId u = static_cast<StateId>(rng.UniformInt(n));
      if (u != v) adj[v].push_back({u, rng.Uniform(0.1, 2.0)});
    }
  }
  CsrGraph g = CsrGraph::FromAdjacency(adj);
  auto dist = ShortestDistances(g, 0);
  for (StateId t = 0; t < n; ++t) {
    auto path = ShortestPath(g, 0, t);
    if (dist[t] == std::numeric_limits<double>::infinity()) {
      EXPECT_FALSE(path.ok());
      continue;
    }
    ASSERT_TRUE(path.ok());
    // Path cost equals the Dijkstra distance.
    double cost = 0.0;
    const auto& nodes = path.value();
    for (size_t i = 0; i + 1 < nodes.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (const Edge* e = g.begin(nodes[i]); e != g.end(nodes[i]); ++e) {
        if (e->to == nodes[i + 1]) best = std::min(best, e->weight);
      }
      cost += best;
    }
    EXPECT_NEAR(cost, dist[t], 1e-9);
  }
}

// Path graph 0 - 1 - 2 - 3 - 4 (bidirectional unit edges + self loops).
CsrGraph MakePathGraph(size_t n, bool self_loops) {
  std::vector<std::vector<Edge>> adj(n);
  for (StateId v = 0; v < n; ++v) {
    if (v > 0) adj[v].push_back({v - 1, 1.0});
    if (v + 1 < n) adj[v].push_back({v + 1, 1.0});
    if (self_loops) adj[v].push_back({v, 1.0});
  }
  return CsrGraph::FromAdjacency(adj);
}

TEST(ReachabilityTest, ForwardSetsGrowOneHopPerStep) {
  CsrGraph g = MakePathGraph(7, /*self_loops=*/false);
  auto reach = ForwardReachability(g, 3, 2);
  ASSERT_EQ(reach.size(), 3u);
  EXPECT_EQ(reach[0], (std::vector<StateId>{3}));
  EXPECT_EQ(reach[1], (std::vector<StateId>{2, 4}));
  // Without self loops parity alternates: exactly-2-step set skips odd.
  EXPECT_EQ(reach[2], (std::vector<StateId>{1, 3, 5}));
}

TEST(ReachabilityTest, SelfLoopsMakeSetsMonotone) {
  CsrGraph g = MakePathGraph(7, /*self_loops=*/true);
  auto reach = ForwardReachability(g, 3, 3);
  EXPECT_EQ(reach[1], (std::vector<StateId>{2, 3, 4}));
  EXPECT_EQ(reach[2], (std::vector<StateId>{1, 2, 3, 4, 5}));
  EXPECT_EQ(reach[3], (std::vector<StateId>{0, 1, 2, 3, 4, 5, 6}));
}

TEST(ReachabilityTest, DiamondIntersectsForwardAndBackward) {
  CsrGraph g = MakePathGraph(9, /*self_loops=*/true);
  CsrGraph r = g.Reversed();
  // From state 2 to state 6 in 4 steps: exactly the states between.
  auto diamond = DiamondReachability(g, r, 2, 6, 4);
  ASSERT_EQ(diamond.size(), 5u);
  EXPECT_EQ(diamond[0], (std::vector<StateId>{2}));
  EXPECT_EQ(diamond[4], (std::vector<StateId>{6}));
  // Middle tic: states reachable from 2 in 2 hops AND within 2 hops of 6.
  EXPECT_EQ(diamond[2], (std::vector<StateId>{4}));
  // One step in: must head towards 6 fast enough.
  EXPECT_EQ(diamond[1], (std::vector<StateId>{3}));
}

TEST(ReachabilityTest, ImpossibleEndpointGivesEmptySlices) {
  CsrGraph g = MakePathGraph(9, /*self_loops=*/true);
  CsrGraph r = g.Reversed();
  // 2 -> 8 needs 6 hops; only 3 steps available.
  auto diamond = DiamondReachability(g, r, 2, 8, 3);
  EXPECT_TRUE(diamond[1].empty());
  EXPECT_TRUE(diamond[2].empty());
}

TEST(ReachabilityTest, SlackAllowsWiderDiamond) {
  CsrGraph g = MakePathGraph(9, /*self_loops=*/true);
  CsrGraph r = g.Reversed();
  // 6 steps for a 4-hop trip: 2 tics of slack widen middle slices.
  auto tight = DiamondReachability(g, r, 2, 6, 4);
  auto loose = DiamondReachability(g, r, 2, 6, 6);
  EXPECT_GE(loose[2].size(), tight[2].size());
  EXPECT_GE(loose[3].size(), 2u);
}

TEST(ReachabilityTest, ZeroStepsDiamond) {
  CsrGraph g = MakePathGraph(3, true);
  CsrGraph r = g.Reversed();
  auto diamond = DiamondReachability(g, r, 1, 1, 0);
  ASSERT_EQ(diamond.size(), 1u);
  EXPECT_EQ(diamond[0], (std::vector<StateId>{1}));
  auto contradictory = DiamondReachability(g, r, 0, 2, 0);
  EXPECT_TRUE(contradictory[0].empty());
}

}  // namespace
}  // namespace ust
