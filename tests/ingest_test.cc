// Tests of online index maintenance (DESIGN.md section 10): the per-epoch
// UstDelta patched alongside a stale base UstTree, the stale-drop fallback
// it replaces, and background compaction publishing a fresh base through
// the snapshot machinery *without* bumping the epoch.
//
// The contract under test everywhere: query outcomes are a pure function
// of (epoch, spec). Base-only, base ∪ delta, dropped-index fallback, and
// any interleaving of writers and compactors must reproduce the index-free
// reference bit for bit (probability bytes; candidate/influencer *counts*
// legitimately differ between indexed and index-free plans, so they are
// deliberately not compared here — unlike server_test's SameOutcome).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "gen/synthetic.h"
#include "gen/workload.h"
#include "index/ust_delta.h"
#include "index/ust_tree.h"
#include "query/session.h"
#include "server/query_server.h"
#include "util/rng.h"

namespace ust {
namespace {

// Bitwise agreement on the *answers* (not the plan-shape counters).
::testing::AssertionResult SameResults(const QueryOutcome& a,
                                       const QueryOutcome& b) {
  if (!a.status.ok() || !b.status.ok()) {
    return ::testing::AssertionFailure()
           << "status a=" << a.status.ToString()
           << " b=" << b.status.ToString();
  }
  if (a.kind != b.kind || a.executor != b.executor) {
    return ::testing::AssertionFailure() << "kind/executor mismatch";
  }
  if (a.pnn.results.size() != b.pnn.results.size()) {
    return ::testing::AssertionFailure()
           << "pnn sizes " << a.pnn.results.size() << " vs "
           << b.pnn.results.size();
  }
  for (size_t i = 0; i < a.pnn.results.size(); ++i) {
    if (a.pnn.results[i].object != b.pnn.results[i].object ||
        a.pnn.results[i].prob != b.pnn.results[i].prob) {  // bitwise
      return ::testing::AssertionFailure() << "pnn result " << i;
    }
  }
  if (a.pcnn.pcnn.entries.size() != b.pcnn.pcnn.entries.size()) {
    return ::testing::AssertionFailure() << "pcnn sizes";
  }
  for (size_t i = 0; i < a.pcnn.pcnn.entries.size(); ++i) {
    const PcnnEntry& x = a.pcnn.pcnn.entries[i];
    const PcnnEntry& y = b.pcnn.pcnn.entries[i];
    if (x.object != y.object || x.tics != y.tics || x.prob != y.prob) {
      return ::testing::AssertionFailure() << "pcnn entry " << i;
    }
  }
  return ::testing::AssertionSuccess();
}

class IngestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticConfig config;
    config.num_states = 600;
    config.num_objects = 18;
    config.lifetime = 24;
    config.obs_interval = 6;
    config.horizon = 40;
    config.seed = 91;
    auto world = GenerateSyntheticWorld(config);
    ASSERT_TRUE(world.ok());
    world_ = std::make_unique<SyntheticWorld>(world.MoveValue());
    auto tree = UstTree::Build(*world_->db);
    ASSERT_TRUE(tree.ok());
    index_ = std::make_unique<UstTree>(tree.MoveValue());
    T_ = BusiestInterval(*world_->db, 6);
  }

  TrajectoryDatabase& db() { return *world_->db; }

  /// Monte-Carlo-pinned specs with tau > 0: the regime where indexed and
  /// index-free plans are bit-identical (tau = 0 would surface the
  /// zero-probability objects pruning removes; kAuto could route the two
  /// plans — whose candidate counts differ — to different backends).
  std::vector<QuerySpec> MakeSpecs(size_t n) const {
    Rng rng(5);
    std::vector<QuerySpec> specs;
    for (size_t i = 0; i < n; ++i) {
      QuerySpec spec;
      spec.kind = i % 3 == 0   ? QueryKind::kForall
                  : i % 3 == 1 ? QueryKind::kExists
                               : QueryKind::kContinuous;
      spec.q = RandomQueryState(*world_->space, rng);
      spec.T = i % 2 == 0 ? T_ : TimeInterval{T_.start, T_.end - 2};
      spec.tau = spec.kind == QueryKind::kContinuous ? 0.3 : 0.05;
      spec.backend = ExecutorKind::kMonteCarlo;
      spec.mc.num_worlds = 200;
      spec.mc.seed = 31 + i;
      specs.push_back(spec);
    }
    return specs;
  }

  ObjectId AddObjectAt(Tic tic, Tic end_tic) {
    const UncertainObject& donor = db().object(0);
    auto obs = ObservationSeq::Create(
        {{tic, donor.observations().items()[0].state}});
    EXPECT_TRUE(obs.ok());
    return db().AddObject(obs.MoveValue(), donor.matrix_ptr(), end_tic);
  }

  /// Some writes the queries can see: appended objects alive throughout T_
  /// plus a lifetime extension of an indexed object (the delta's replace
  /// path — its base entries go stale, not just missing).
  void ApplyWrites() {
    AddObjectAt(T_.start, T_.end);
    AddObjectAt(T_.start > 0 ? T_.start - 1 : T_.start, T_.end + 2);
    const Tic end = db().object(1).last_tic();
    ASSERT_TRUE(db().ExtendLifetime(1, end + 4).ok());
  }

  std::unique_ptr<SyntheticWorld> world_;
  std::unique_ptr<UstTree> index_;
  TimeInterval T_{0, 0};
};

TEST_F(IngestTest, DeltaProbeMatchesIndexFreeFallbackBitwise) {
  ApplyWrites();
  const DbSnapshot snapshot = db().Snapshot();
  const std::vector<QuerySpec> specs = MakeSpecs(12);

  QuerySession reference(snapshot, nullptr);
  const std::vector<QueryOutcome> expected = reference.RunAll(specs);

  // The delta path: stale base + per-epoch patch, no drop.
  QuerySession patched(snapshot, index_.get());
  EXPECT_FALSE(patched.dropped_stale_index());
  EXPECT_EQ(patched.delta_depth(), 3u);  // two inserts + one extension
  const std::vector<QueryOutcome> via_delta = patched.RunAll(specs);

  // The pre-delta behavior, now opt-out: drop the stale index entirely.
  SessionOptions no_delta;
  no_delta.delta_index = false;
  Counter drops;
  no_delta.stale_index_drops = &drops;
  QuerySession dropped(snapshot, index_.get(), no_delta);
  EXPECT_TRUE(dropped.dropped_stale_index());
  EXPECT_EQ(drops.value(), 1u);
  EXPECT_EQ(dropped.delta_depth(), 0u);
  const std::vector<QueryOutcome> via_drop = dropped.RunAll(specs);

  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_TRUE(SameResults(via_delta[i], expected[i])) << "delta spec " << i;
    EXPECT_TRUE(SameResults(via_drop[i], expected[i])) << "drop spec " << i;
  }
}

TEST_F(IngestTest, FreshIndexNeedsNoDeltaAndOldIndexIsDroppedPastFloor) {
  // A fresh tree at the current epoch: no patch, no drop.
  QuerySession fresh(db().Snapshot(), index_.get());
  EXPECT_FALSE(fresh.dropped_stale_index());
  EXPECT_EQ(fresh.delta_depth(), 0u);

  ApplyWrites();
  auto rebuilt = UstTree::Build(db());
  ASSERT_TRUE(rebuilt.ok());
  db().PublishIndex(std::make_shared<const UstTree>(rebuilt.MoveValue()));

  // PublishIndex trimmed the change log up to the new base: the records the
  // old pre-write tree would need are gone, so it must be dropped — a
  // half-patched probe would silently miss the trimmed writes.
  Counter drops;
  SessionOptions options;
  options.stale_index_drops = &drops;
  QuerySession old_base(db().Snapshot(), index_.get(), options);
  EXPECT_TRUE(old_base.dropped_stale_index());
  EXPECT_EQ(drops.value(), 1u);

  // The published base itself rides for free at its own epoch.
  const DbSnapshot snapshot = db().Snapshot();
  ASSERT_NE(snapshot.base_index(), nullptr);
  QuerySession published(snapshot, snapshot.base_index().get());
  EXPECT_FALSE(published.dropped_stale_index());
  EXPECT_EQ(published.delta_depth(), 0u);

  const std::vector<QuerySpec> specs = MakeSpecs(9);
  QuerySession reference(snapshot, nullptr);
  const std::vector<QueryOutcome> expected = reference.RunAll(specs);
  const std::vector<QueryOutcome> results = published.RunAll(specs);
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_TRUE(SameResults(results[i], expected[i])) << "spec " << i;
  }
}

TEST_F(IngestTest, PublishIndexIsEpochInvisibleAndIgnoresOlderBases) {
  const DbSnapshot seed_snapshot = db().Snapshot();
  ApplyWrites();
  const uint64_t version = db().version();
  const DbSnapshot before = db().Snapshot();

  auto rebuilt = UstTree::Build(db());
  ASSERT_TRUE(rebuilt.ok());
  auto base = std::make_shared<const UstTree>(rebuilt.MoveValue());
  db().PublishIndex(base);

  // The index is a cache, not state: publication must not move the epoch,
  // and a snapshot pinned before publication stays valid.
  EXPECT_EQ(db().version(), version);
  EXPECT_EQ(db().Snapshot().version(), version);
  EXPECT_EQ(db().Snapshot().base_index().get(), base.get());

  // Same epoch, before vs after publication: bit-identical answers — the
  // atomicity claim, observable through the query path.
  const std::vector<QuerySpec> specs = MakeSpecs(6);
  QuerySession pre(before, index_.get());
  QuerySession post(db().Snapshot(), db().Snapshot().base_index().get());
  const std::vector<QueryOutcome> a = pre.RunAll(specs);
  const std::vector<QueryOutcome> b = post.RunAll(specs);
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_TRUE(SameResults(a[i], b[i])) << "spec " << i;
  }

  // Re-publishing an older base is a no-op: freshest wins (a slow
  // compactor finishing after a fast one must not roll the cache back).
  auto stale_rebuild = UstTree::Build(seed_snapshot);
  ASSERT_TRUE(stale_rebuild.ok());
  db().PublishIndex(
      std::make_shared<const UstTree>(stale_rebuild.MoveValue()));
  EXPECT_EQ(db().Snapshot().base_index().get(), base.get());
}

TEST_F(IngestTest, DeltaDepthCountsDistinctObjectsAndDrainsOnPublish) {
  const uint64_t v0 = db().version();
  const ObjectId extended = 2;
  const Tic end = db().object(extended).last_tic();
  ASSERT_TRUE(db().ExtendLifetime(extended, end + 2).ok());
  ASSERT_TRUE(db().ExtendLifetime(extended, end + 4).ok());
  const ObjectId added = AddObjectAt(T_.start, T_.end);

  // Two distinct rewritten objects, not three log records.
  DbSnapshot snapshot = db().Snapshot();
  EXPECT_EQ(snapshot.DeltaDepth(v0), 2u);
  const std::vector<ObjectId> changed = snapshot.ChangedSince(v0);
  ASSERT_EQ(changed.size(), 2u);
  EXPECT_EQ(changed[0], extended);
  EXPECT_EQ(changed[1], added);

  auto rebuilt = UstTree::Build(db());
  ASSERT_TRUE(rebuilt.ok());
  db().PublishIndex(std::make_shared<const UstTree>(rebuilt.MoveValue()));

  // Drained: nothing is stale relative to the published base...
  snapshot = db().Snapshot();
  ASSERT_NE(snapshot.base_index(), nullptr);
  const uint64_t built = snapshot.base_index()->built_version();
  EXPECT_EQ(built, db().version());
  EXPECT_EQ(snapshot.DeltaDepth(built), 0u);
  EXPECT_TRUE(snapshot.ChangedSince(built).empty());
  // ...and a base from *before* the trimmed log reads as "rebuild
  // everything" rather than pretending the gap is empty.
  EXPECT_EQ(snapshot.DeltaDepth(v0), snapshot.size());
}

TEST_F(IngestTest, ConcurrentWriterAndCompactorKeepEveryEpochBitIdentical) {
  // A writer lands objects while a compactor loop rebuilds and publishes as
  // fast as it can. After each write the main thread pins that epoch and
  // checks: whatever base ∪ delta combination the session picks up at that
  // instant must match the index-free fallback bit for bit.
  const std::vector<QuerySpec> specs = MakeSpecs(4);
  std::atomic<bool> stop{false};
  std::thread compactor([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      DbSnapshot snapshot = db().Snapshot();
      const UstTree* base = snapshot.base_index() != nullptr
                                ? snapshot.base_index().get()
                                : index_.get();
      if (base->built_version() == snapshot.version()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      auto tree = UstTree::Build(snapshot);
      ASSERT_TRUE(tree.ok());
      db().PublishIndex(std::make_shared<const UstTree>(tree.MoveValue()));
    }
  });

  for (int round = 0; round < 6; ++round) {
    AddObjectAt(T_.start, T_.end + round);
    const DbSnapshot snapshot = db().Snapshot();
    const UstTree* base = snapshot.base_index() != nullptr
                              ? snapshot.base_index().get()
                              : index_.get();
    Counter drops;
    SessionOptions options;
    options.stale_index_drops = &drops;
    QuerySession indexed(snapshot, base, options);
    QuerySession reference(snapshot, nullptr);
    // The base was read from this very snapshot (or is the seed tree over
    // an untrimmed log), so the delta patch can never be blocked by the
    // floor: no drops, whatever the compactor did in between.
    EXPECT_FALSE(indexed.dropped_stale_index());
    EXPECT_EQ(drops.value(), 0u);
    const std::vector<QueryOutcome> a = indexed.RunAll(specs);
    const std::vector<QueryOutcome> b = reference.RunAll(specs);
    for (size_t i = 0; i < specs.size(); ++i) {
      EXPECT_TRUE(SameResults(a[i], b[i]))
          << "round " << round << " spec " << i;
    }
  }
  stop.store(true, std::memory_order_relaxed);
  compactor.join();
}

TEST_F(IngestTest, ServerCompactsInBackgroundAndMatchesSerialReference) {
  ApplyWrites();
  const std::vector<QuerySpec> specs = MakeSpecs(12);
  QuerySession reference(db().Snapshot(), nullptr);
  ASSERT_TRUE(reference.Prepare().ok());
  const std::vector<QueryOutcome> expected = reference.RunAll(specs);

  ServerOptions options;
  options.lanes = 2;
  options.max_batch_size = 4;
  options.max_batch_delay_ms = 1.0;
  options.compaction = true;
  options.compaction_interval_ms = 1.0;
  options.compaction_min_depth = 1;
  QueryServer server(db(), index_.get(), options);

  // Queries racing the compactor on the stale post-write epoch: every
  // outcome must match the serial index-free reference regardless of
  // whether its session rode the seed tree + delta or an already-published
  // compacted base.
  std::vector<std::future<QueryOutcome>> futures(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    futures[i] = server.Submit(specs[i]);
  }
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_TRUE(SameResults(futures[i].get(), expected[i])) << "spec " << i;
  }

  // The compactor folds the writes into a published base...
  for (int spin = 0; db().Snapshot().base_index() == nullptr ||
                     db().Snapshot().base_index()->built_version() <
                         db().version();
       ++spin) {
    ASSERT_LT(spin, 2000) << "compactor never caught up";
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // ...after which the same stream still returns the same bits.
  for (size_t i = 0; i < specs.size(); ++i) {
    futures[i] = server.Submit(specs[i]);
  }
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_TRUE(SameResults(futures[i].get(), expected[i]))
        << "post-compaction spec " << i;
  }
  server.Stop();

  const ServerStats stats = server.Stats();
  EXPECT_GE(stats.compactions, 1u);
  EXPECT_EQ(stats.compaction_failures, 0u);
  EXPECT_EQ(stats.delta_depth, 0u);
  EXPECT_EQ(stats.cache.stale_index_drops, 0u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.completed, 2 * specs.size());

  // The maintenance instruments ride the self-enumerating metrics dump.
  const std::string json = stats.ToJson();
  EXPECT_NE(json.find("\"compactions\""), std::string::npos);
  EXPECT_NE(json.find("\"compaction_failures\""), std::string::npos);
  EXPECT_NE(json.find("\"delta_depth\""), std::string::npos);
  EXPECT_NE(json.find("\"stale_index_drops\""), std::string::npos);
}

TEST_F(IngestTest, UstDeltaBuildRecordsChangedObjectsInIdOrder) {
  const uint64_t v0 = db().version();
  const ObjectId added = AddObjectAt(T_.start, T_.end);
  const Tic end = db().object(0).last_tic();
  ASSERT_TRUE(db().ExtendLifetime(0, end + 3).ok());

  auto delta = UstDelta::Build(db().Snapshot(), v0);
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(delta.value().depth(), 2u);
  EXPECT_FALSE(delta.value().empty());
  EXPECT_TRUE(delta.value().Contains(0));
  EXPECT_TRUE(delta.value().Contains(added));
  EXPECT_FALSE(delta.value().Contains(1));
  ASSERT_EQ(delta.value().objects().size(), 2u);
  // Ascending by id — the merge in BuildProfiles depends on it.
  EXPECT_EQ(delta.value().objects()[0].object, 0u);
  EXPECT_EQ(delta.value().objects()[1].object, added);
  // The extension's delta entries tile the object's *entire* (extended)
  // lifetime, replacing its stale base entries outright.
  EXPECT_EQ(delta.value().objects()[0].first_tic,
            db().object(0).first_tic());
  EXPECT_EQ(delta.value().objects()[0].last_tic, end + 3);
  EXPECT_FALSE(delta.value().objects()[0].entries.empty());
}

}  // namespace
}  // namespace ust
