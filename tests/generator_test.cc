#include <gtest/gtest.h>

#include <cmath>

#include "gen/roadnet.h"
#include "gen/synthetic.h"
#include "gen/workload.h"
#include "markov/builders.h"
#include "util/rng.h"

namespace ust {
namespace {

TEST(SyntheticTest, StatesUniformInUnitSquare) {
  Rng rng(1);
  auto space = GenerateStates(2000, rng);
  ASSERT_EQ(space->size(), 2000u);
  Rect2 box = space->BoundingBox();
  EXPECT_GE(box.lo[0], 0.0);
  EXPECT_LE(box.hi[1], 1.0);
  // Quadrant counts are roughly balanced.
  int q1 = 0;
  for (const Point2& p : space->coords()) q1 += (p.x < 0.5 && p.y < 0.5);
  EXPECT_NEAR(q1 / 2000.0, 0.25, 0.05);
}

TEST(SyntheticTest, BranchingFactorCloseToTarget) {
  Rng rng(2);
  for (double b : {6.0, 8.0, 10.0}) {
    auto space = GenerateStates(3000, rng);
    CsrGraph graph = ConnectByRadius(*space, b);
    // Boundary effects reduce the average degree slightly below b.
    EXPECT_NEAR(graph.AverageDegree(), b, b * 0.25) << "b=" << b;
  }
}

TEST(SyntheticTest, WorldObservationsAreModelConsistent) {
  SyntheticConfig config;
  config.num_states = 500;
  config.num_objects = 20;
  config.lifetime = 30;
  config.obs_interval = 6;
  config.seed = 5;
  auto world = GenerateSyntheticWorld(config);
  ASSERT_TRUE(world.ok());
  EXPECT_EQ(world.value().db->size(), 20u);
  // Adaptation succeeds for every object: no contradicting observations.
  EXPECT_TRUE(world.value().db->EnsureAllPosteriors().ok());
}

TEST(SyntheticTest, ObservationSpacingMatchesConfig) {
  SyntheticConfig config;
  config.num_states = 500;
  config.num_objects = 5;
  config.lifetime = 40;
  config.obs_interval = 10;
  config.seed = 6;
  auto world = GenerateSyntheticWorld(config);
  ASSERT_TRUE(world.ok());
  const TrajectoryDatabase& gen_db = *world.value().db;
  for (size_t oi = 0; oi < gen_db.size(); ++oi) {
    const auto& obj = gen_db.object(static_cast<ObjectId>(oi));
    const auto& items = obj.observations().items();
    ASSERT_EQ(items.size(), 5u);  // lifetime/interval + 1
    for (size_t i = 0; i + 1 < items.size(); ++i) {
      EXPECT_EQ(items[i + 1].time - items[i].time, 10);
    }
    EXPECT_LE(obj.first_tic() + config.lifetime,
              config.horizon + config.lifetime);
  }
}

TEST(SyntheticTest, LagControlsSlack) {
  // v = 1: observations exactly along the shortest path (l = i).
  // v = 0.5: only half the path nodes consumed per interval, more slack.
  SyntheticConfig tight;
  tight.num_states = 500;
  tight.num_objects = 10;
  tight.lifetime = 20;
  tight.obs_interval = 4;
  tight.lag = 1.0;
  tight.seed = 7;
  SyntheticConfig loose = tight;
  loose.lag = 0.5;
  auto world_tight = GenerateSyntheticWorld(tight);
  auto world_loose = GenerateSyntheticWorld(loose);
  ASSERT_TRUE(world_tight.ok());
  ASSERT_TRUE(world_loose.ok());
  auto total_support = [](const TrajectoryDatabase& db) {
    size_t total = 0;
    for (size_t i = 0; i < db.size(); ++i) {
      auto p = db.object(static_cast<ObjectId>(i)).Posterior();
      UST_CHECK(p.ok());
      total += p.value()->TotalSupportSize();
    }
    return total;
  };
  // More slack (smaller v) => wider diamonds.
  EXPECT_GT(total_support(*world_loose.value().db),
            total_support(*world_tight.value().db));
}

TEST(SyntheticTest, InvalidConfigsRejected) {
  SyntheticConfig config;
  config.num_states = 0;
  EXPECT_FALSE(GenerateSyntheticWorld(config).ok());
  config = SyntheticConfig();
  config.lag = 0.0;
  EXPECT_FALSE(GenerateSyntheticWorld(config).ok());
  config = SyntheticConfig();
  config.lifetime = 2;
  config.obs_interval = 10;
  EXPECT_FALSE(GenerateSyntheticWorld(config).ok());
}

TEST(RoadnetTest, CenterIsDenserThanPeriphery) {
  Rng rng(8);
  auto space = GenerateRoadStates(3000, 0.3, rng);
  int center = 0, edge = 0;
  for (const Point2& p : space->coords()) {
    double r = Distance(p, {0.5, 0.5});
    if (r < 0.15) ++center;
    if (r > 0.45) ++edge;
  }
  // Compare densities (counts per unit area): the central disk has area
  // pi*0.15^2 ~ 0.0707, the outer region ~ 1 - pi*0.45^2 ~ 0.364.
  double center_density = center / 0.0707;
  double edge_density = edge / 0.364;
  EXPECT_GT(center_density, 2.0 * edge_density);
}

TEST(RoadnetTest, TripsFollowRoadEdges) {
  Rng rng(9);
  auto space = GenerateRoadStates(800, 0.3, rng);
  CsrGraph graph = ConnectKnn(*space, 4);
  auto trip = SimulateTrip(*space, graph, 50, 0.25, 0, rng);
  ASSERT_TRUE(trip.ok());
  ASSERT_EQ(trip.value().states.size(), 50u);
  for (size_t i = 0; i + 1 < trip.value().states.size(); ++i) {
    StateId a = trip.value().states[i], b = trip.value().states[i + 1];
    EXPECT_TRUE(a == b || graph.HasEdge(a, b))
        << "illegal hop " << a << "->" << b;
  }
}

TEST(RoadnetTest, PausesOccurAtRequestedRate) {
  Rng rng(10);
  auto space = GenerateRoadStates(800, 0.3, rng);
  CsrGraph graph = ConnectKnn(*space, 4);
  int pauses = 0, steps = 0;
  for (int i = 0; i < 20; ++i) {
    auto trip = SimulateTrip(*space, graph, 60, 0.3, 0, rng);
    ASSERT_TRUE(trip.ok());
    for (size_t j = 0; j + 1 < trip.value().states.size(); ++j) {
      ++steps;
      pauses += trip.value().states[j] == trip.value().states[j + 1];
    }
  }
  EXPECT_NEAR(static_cast<double>(pauses) / steps, 0.3, 0.05);
}

TEST(RoadnetTest, WorldGroundTruthConsistentWithLearnedModel) {
  RoadnetConfig config;
  config.num_states = 600;
  config.num_objects = 10;
  config.num_training_trips = 50;
  config.lifetime = 40;
  config.obs_interval = 8;
  config.seed = 11;
  auto world = GenerateRoadnetWorld(config);
  ASSERT_TRUE(world.ok());
  ASSERT_EQ(world.value().ground_truth.size(), 10u);
  // Observations are thinned ground truth.
  for (size_t i = 0; i < world.value().db->size(); ++i) {
    const auto& obj = world.value().db->object(static_cast<ObjectId>(i));
    const Trajectory& truth = world.value().ground_truth[i];
    for (const Observation& o : obj.observations().items()) {
      EXPECT_EQ(truth.At(o.time), o.state);
    }
    EXPECT_EQ(obj.first_tic(), truth.start);
    EXPECT_EQ(obj.observations().last_tic(), truth.end());
  }
  // The learned (smoothed) model never contradicts held-out trajectories.
  EXPECT_TRUE(world.value().db->EnsureAllPosteriors().ok());
  // Ground truth states have nonzero posterior probability at each tic.
  for (size_t i = 0; i < world.value().db->size(); ++i) {
    const auto& obj = world.value().db->object(static_cast<ObjectId>(i));
    const Trajectory& truth = world.value().ground_truth[i];
    auto posterior = obj.Posterior();
    ASSERT_TRUE(posterior.ok());
    for (Tic t = truth.start; t <= truth.end(); ++t) {
      EXPECT_GT(posterior.value()->MarginalAt(t).Prob(truth.At(t)), 0.0)
          << "object " << i << " t=" << t;
    }
  }
}

TEST(RoadnetTest, InvalidConfigsRejected) {
  RoadnetConfig config;
  config.num_states = 0;
  EXPECT_FALSE(GenerateRoadnetWorld(config).ok());
  config = RoadnetConfig();
  config.lifetime = 5;
  config.obs_interval = 8;
  EXPECT_FALSE(GenerateRoadnetWorld(config).ok());
}

TEST(WorkloadTest, RandomQueryStateInsideSpace) {
  Rng rng(12);
  auto space = GenerateStates(100, rng);
  for (int i = 0; i < 20; ++i) {
    QueryTrajectory q = RandomQueryState(*space, rng);
    EXPECT_TRUE(q.constant());
    const Point2& p = q.At(0);
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.y, 1.0);
  }
}

TEST(WorkloadTest, RandomIntervalWithinHorizon) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    TimeInterval T = RandomInterval(100, 10, rng);
    EXPECT_GE(T.start, 0);
    EXPECT_LE(T.end, 100);
    EXPECT_EQ(T.length(), 10u);
  }
}

TEST(WorkloadTest, BusiestIntervalMaximizesAliveCount) {
  SyntheticConfig config;
  config.num_states = 300;
  config.num_objects = 15;
  config.lifetime = 20;
  config.obs_interval = 5;
  config.horizon = 60;
  config.seed = 14;
  auto world = GenerateSyntheticWorld(config);
  ASSERT_TRUE(world.ok());
  const TrajectoryDatabase& db = *world.value().db;
  TimeInterval best = BusiestInterval(db, 5);
  size_t best_count = db.AliveThroughout(best.start, best.end).size();
  Rng rng(15);
  for (int i = 0; i < 30; ++i) {
    TimeInterval T = RandomInterval(55, 5, rng);
    EXPECT_LE(db.AliveThroughout(T.start, T.end).size(), best_count);
  }
}

TEST(WorkloadTest, RandomQueryTrajectoryFollowsModel) {
  Rng rng(16);
  auto space = GenerateStates(300, rng);
  CsrGraph graph = ConnectByRadius(*space, 8.0);
  auto matrix = DistanceInverseMatrix(*space, graph, 0.1);
  ASSERT_TRUE(matrix.ok());
  QueryTrajectory q =
      RandomQueryTrajectory(*space, matrix.value(), 5, 8, rng);
  EXPECT_FALSE(q.constant());
  EXPECT_TRUE(q.Covers(5));
  EXPECT_TRUE(q.Covers(12));
  EXPECT_FALSE(q.Covers(13));
}

}  // namespace
}  // namespace ust
