#include <gtest/gtest.h>

#include "geo/point.h"
#include "geo/rect.h"
#include "util/rng.h"

namespace ust {
namespace {

TEST(PointTest, Distance) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance({1, 1}, {2, 2}), 2.0);
  EXPECT_DOUBLE_EQ(Distance({1, 1}, {1, 1}), 0.0);
}

TEST(RectTest, EmptyRectBehaviour) {
  Rect2 r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.Area(), 0.0);
  EXPECT_EQ(r.Margin(), 0.0);
  r.Extend({1.0, 2.0});
  EXPECT_FALSE(r.empty());
  EXPECT_EQ(r.Area(), 0.0);  // degenerate point box
  EXPECT_TRUE(r.Contains({1.0, 2.0}));
}

TEST(RectTest, ExtendAndUnion) {
  Rect2 a = MakeRect2(0, 0, 1, 1);
  Rect2 b = MakeRect2(2, 2, 3, 4);
  Rect2 u = Rect2::Union(a, b);
  EXPECT_EQ(u.lo[0], 0.0);
  EXPECT_EQ(u.hi[1], 4.0);
  EXPECT_TRUE(u.Contains(a));
  EXPECT_TRUE(u.Contains(b));
}

TEST(RectTest, IntersectsAndContains) {
  Rect2 a = MakeRect2(0, 0, 2, 2);
  Rect2 b = MakeRect2(1, 1, 3, 3);
  Rect2 c = MakeRect2(5, 5, 6, 6);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(a.Intersects(a));
  // Touching boxes intersect (closed intervals).
  Rect2 d = MakeRect2(2, 0, 3, 2);
  EXPECT_TRUE(a.Intersects(d));
  EXPECT_FALSE(a.Contains(b));
  EXPECT_TRUE(MakeRect2(-1, -1, 4, 4).Contains(a));
}

TEST(RectTest, AreaMarginOverlap) {
  Rect2 a = MakeRect2(0, 0, 2, 3);
  EXPECT_DOUBLE_EQ(a.Area(), 6.0);
  EXPECT_DOUBLE_EQ(a.Margin(), 5.0);
  Rect2 b = MakeRect2(1, 1, 3, 2);
  EXPECT_DOUBLE_EQ(a.OverlapArea(b), 1.0);
  EXPECT_DOUBLE_EQ(a.OverlapArea(MakeRect2(10, 10, 11, 11)), 0.0);
  EXPECT_DOUBLE_EQ(a.Enlargement(b), 9.0 - 6.0);
}

TEST(RectTest, Center) {
  Rect2 a = MakeRect2(0, 2, 4, 6);
  auto c = a.Center();
  EXPECT_DOUBLE_EQ(c[0], 2.0);
  EXPECT_DOUBLE_EQ(c[1], 4.0);
}

TEST(Rect3Test, TimeIntervalComposition) {
  Rect2 space = MakeRect2(0, 0, 1, 1);
  Rect3 r = WithTimeInterval(space, 5, 9);
  EXPECT_EQ(r.lo[2], 5.0);
  EXPECT_EQ(r.hi[2], 9.0);
  Rect2 back = SpatialPart(r);
  EXPECT_EQ(back.lo[0], 0.0);
  EXPECT_EQ(back.hi[1], 1.0);
  EXPECT_TRUE(r.Intersects(WithTimeInterval(space, 9, 12)));
  EXPECT_FALSE(r.Intersects(WithTimeInterval(space, 10, 12)));
}

TEST(DistanceTest, PointToRectKnownValues) {
  Rect2 r = MakeRect2(1, 1, 3, 3);
  // Inside: dmin 0.
  EXPECT_DOUBLE_EQ(MinDistance(Point2{2, 2}, r), 0.0);
  // Left of box.
  EXPECT_DOUBLE_EQ(MinDistance(Point2{0, 2}, r), 1.0);
  // Diagonal corner.
  EXPECT_DOUBLE_EQ(MinDistance(Point2{0, 0}, r), std::sqrt(2.0));
  // Max distance from origin is the far corner (3,3).
  EXPECT_DOUBLE_EQ(MaxDistance(Point2{0, 0}, r), std::sqrt(18.0));
  // Max from center is any corner.
  EXPECT_DOUBLE_EQ(MaxDistance(Point2{2, 2}, r), std::sqrt(2.0));
}

TEST(DistanceTest, RectToRectKnownValues) {
  Rect2 a = MakeRect2(0, 0, 1, 1);
  Rect2 b = MakeRect2(3, 0, 4, 1);
  EXPECT_DOUBLE_EQ(MinDistance(a, b), 2.0);
  EXPECT_DOUBLE_EQ(MaxDistance(a, b), std::sqrt(16.0 + 1.0));
  // Overlapping rects: dmin 0.
  EXPECT_DOUBLE_EQ(MinDistance(a, MakeRect2(0.5, 0.5, 2, 2)), 0.0);
}

// Property sweep: dmin <= d(p, x) <= dmax for any x inside the rectangle.
class PointRectDistanceProperty : public ::testing::TestWithParam<int> {};

TEST_P(PointRectDistanceProperty, BoundsHoldForRandomInteriorPoints) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    double x0 = rng.Uniform(-5, 5), y0 = rng.Uniform(-5, 5);
    Rect2 r = MakeRect2(x0, y0, x0 + rng.Uniform(0, 3), y0 + rng.Uniform(0, 3));
    Point2 p{rng.Uniform(-8, 8), rng.Uniform(-8, 8)};
    double dmin = MinDistance(p, r);
    double dmax = MaxDistance(p, r);
    EXPECT_LE(dmin, dmax + 1e-12);
    for (int k = 0; k < 20; ++k) {
      Point2 inside{rng.Uniform(r.lo[0], r.hi[0]),
                    rng.Uniform(r.lo[1], r.hi[1])};
      double d = Distance(p, inside);
      EXPECT_LE(dmin, d + 1e-9);
      EXPECT_GE(dmax, d - 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PointRectDistanceProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// Property sweep: rect-rect bounds sandwich distances of contained points.
class RectRectDistanceProperty : public ::testing::TestWithParam<int> {};

TEST_P(RectRectDistanceProperty, BoundsHoldForRandomPointPairs) {
  Rng rng(GetParam() * 77);
  for (int iter = 0; iter < 100; ++iter) {
    auto random_rect = [&rng]() {
      double x0 = rng.Uniform(-5, 5), y0 = rng.Uniform(-5, 5);
      return MakeRect2(x0, y0, x0 + rng.Uniform(0, 4), y0 + rng.Uniform(0, 4));
    };
    Rect2 a = random_rect(), b = random_rect();
    double dmin = MinDistance(a, b);
    double dmax = MaxDistance(a, b);
    for (int k = 0; k < 20; ++k) {
      Point2 pa{rng.Uniform(a.lo[0], a.hi[0]), rng.Uniform(a.lo[1], a.hi[1])};
      Point2 pb{rng.Uniform(b.lo[0], b.hi[0]), rng.Uniform(b.lo[1], b.hi[1])};
      double d = Distance(pa, pb);
      EXPECT_LE(dmin, d + 1e-9);
      EXPECT_GE(dmax, d - 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RectRectDistanceProperty,
                         ::testing::Values(1, 2, 3));

TEST(DistanceTest, SymmetricRectToRect) {
  Rng rng(99);
  for (int iter = 0; iter < 100; ++iter) {
    double x0 = rng.Uniform(-5, 5), y0 = rng.Uniform(-5, 5);
    Rect2 a = MakeRect2(x0, y0, x0 + 1, y0 + 2);
    double x1 = rng.Uniform(-5, 5), y1 = rng.Uniform(-5, 5);
    Rect2 b = MakeRect2(x1, y1, x1 + 2, y1 + 1);
    EXPECT_DOUBLE_EQ(MinDistance(a, b), MinDistance(b, a));
    EXPECT_DOUBLE_EQ(MaxDistance(a, b), MaxDistance(b, a));
  }
}

}  // namespace
}  // namespace ust
