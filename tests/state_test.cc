#include <gtest/gtest.h>

#include <limits>

#include "state/grid_index.h"
#include "state/state_space.h"
#include "util/rng.h"

namespace ust {
namespace {

StateSpace MakeRandomSpace(size_t n, Rng& rng) {
  std::vector<Point2> coords;
  coords.reserve(n);
  for (size_t i = 0; i < n; ++i) coords.push_back({rng.Uniform(), rng.Uniform()});
  return StateSpace(std::move(coords));
}

TEST(StateSpaceTest, AddAndAccess) {
  StateSpace space;
  EXPECT_TRUE(space.empty());
  StateId a = space.Add({1, 2});
  StateId b = space.Add({4, 6});
  EXPECT_EQ(space.size(), 2u);
  EXPECT_EQ(space.coord(a).x, 1.0);
  EXPECT_DOUBLE_EQ(space.Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(space.Distance(Point2{1, 2}, b), 5.0);
}

TEST(StateSpaceTest, BoundingBox) {
  StateSpace space({{0, 0}, {2, 5}, {-1, 3}});
  Rect2 box = space.BoundingBox();
  EXPECT_EQ(box.lo[0], -1.0);
  EXPECT_EQ(box.hi[0], 2.0);
  EXPECT_EQ(box.hi[1], 5.0);
  Rect2 sub = space.BoundingBoxOf({0, 1});
  EXPECT_EQ(sub.lo[0], 0.0);
  EXPECT_EQ(sub.hi[1], 5.0);
}

TEST(StateSpaceTest, BoundingBoxOfEmptySubsetIsEmpty) {
  StateSpace space({{0, 0}});
  EXPECT_TRUE(space.BoundingBoxOf({}).empty());
}

TEST(StateSpaceTest, NearestLinear) {
  StateSpace space({{0, 0}, {1, 0}, {5, 5}});
  EXPECT_EQ(space.NearestLinear({0.9, 0.1}), 1u);
  EXPECT_EQ(space.NearestLinear({4, 4}), 2u);
  StateSpace empty;
  EXPECT_EQ(empty.NearestLinear({0, 0}), kInvalidState);
}

TEST(GridIndexTest, WithinRadiusMatchesBruteForce) {
  Rng rng(31);
  StateSpace space = MakeRandomSpace(500, rng);
  GridIndex grid = GridIndex::Build(space);
  for (int iter = 0; iter < 50; ++iter) {
    Point2 p{rng.Uniform(), rng.Uniform()};
    double radius = rng.Uniform(0.01, 0.3);
    auto got = grid.WithinRadius(p, radius);
    std::sort(got.begin(), got.end());
    std::vector<StateId> expected;
    for (StateId s = 0; s < space.size(); ++s) {
      if (Distance(p, space.coord(s)) <= radius) expected.push_back(s);
    }
    EXPECT_EQ(got, expected) << "iter " << iter;
  }
}

TEST(GridIndexTest, NearestMatchesBruteForce) {
  Rng rng(32);
  StateSpace space = MakeRandomSpace(400, rng);
  GridIndex grid = GridIndex::Build(space);
  for (int iter = 0; iter < 200; ++iter) {
    Point2 p{rng.Uniform(-0.2, 1.2), rng.Uniform(-0.2, 1.2)};
    StateId got = grid.Nearest(p);
    StateId expected = space.NearestLinear(p);
    // Equal distance ties may resolve differently; compare distances.
    ASSERT_NE(got, kInvalidState);
    EXPECT_DOUBLE_EQ(Distance(p, space.coord(got)),
                     Distance(p, space.coord(expected)));
  }
}

TEST(GridIndexTest, SingleStateSpace) {
  StateSpace space({{0.5, 0.5}});
  GridIndex grid = GridIndex::Build(space);
  EXPECT_EQ(grid.Nearest({0.1, 0.9}), 0u);
  EXPECT_EQ(grid.WithinRadius({0.5, 0.5}, 0.0).size(), 1u);
  EXPECT_TRUE(grid.WithinRadius({2, 2}, 0.1).empty());
}

TEST(GridIndexTest, RadiusZeroFindsExactHits) {
  StateSpace space({{0.25, 0.25}, {0.75, 0.75}});
  GridIndex grid = GridIndex::Build(space);
  auto hits = grid.WithinRadius({0.25, 0.25}, 0.0);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 0u);
}

// Parameterized sweep over space sizes: grid results must equal brute force.
class GridIndexSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(GridIndexSweep, RadiusQueriesAgreeWithBruteForce) {
  Rng rng(1000 + GetParam());
  StateSpace space = MakeRandomSpace(GetParam(), rng);
  GridIndex grid = GridIndex::Build(space);
  for (int iter = 0; iter < 20; ++iter) {
    Point2 p{rng.Uniform(), rng.Uniform()};
    double radius = rng.Uniform(0.02, 0.2);
    auto got = grid.WithinRadius(p, radius);
    size_t expected = 0;
    for (StateId s = 0; s < space.size(); ++s) {
      expected += Distance(p, space.coord(s)) <= radius ? 1 : 0;
    }
    EXPECT_EQ(got.size(), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GridIndexSweep,
                         ::testing::Values(1, 10, 100, 1000, 5000));

}  // namespace
}  // namespace ust
