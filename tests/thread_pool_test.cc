#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

namespace ust {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  const size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, [&](size_t i, int) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, WorkerIndicesStayInRange) {
  ThreadPool pool(3);
  std::atomic<bool> bad{false};
  pool.ParallelFor(5000, [&](size_t, int worker) {
    if (worker < 0 || worker >= 3) bad.store(true);
  });
  EXPECT_FALSE(bad.load());
}

TEST(ThreadPoolTest, SingleThreadRunsInlineInOrder) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<size_t> order;
  pool.ParallelFor(100, [&](size_t i, int worker) {
    EXPECT_EQ(worker, 0);
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), 100u);
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, ZeroAndNonPositiveSizes) {
  ThreadPool pool(0);  // clamps to 1
  EXPECT_EQ(pool.num_threads(), 1);
  bool ran = false;
  pool.ParallelFor(0, [&](size_t, int) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossJobs) {
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(round + 1, [&](size_t i, int) { sum.fetch_add(i + 1); });
    const size_t n = static_cast<size_t>(round) + 1;
    EXPECT_EQ(sum.load(), n * (n + 1) / 2);
  }
}

TEST(ThreadPoolTest, ChunkBoundariesIndependentOfThreadCount) {
  // The chunked variant must produce the same [begin, end) decomposition at
  // any pool size — per-chunk derived state (e.g. RNG offsets) depends on it.
  auto chunks_at = [](int threads) {
    ThreadPool pool(threads);
    std::mutex mu;
    std::set<std::pair<size_t, size_t>> chunks;
    pool.ParallelForChunked(1000, 128, [&](size_t b, size_t e, int) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.insert({b, e});
    });
    return chunks;
  };
  const auto serial = chunks_at(1);
  EXPECT_EQ(serial, chunks_at(2));
  EXPECT_EQ(serial, chunks_at(4));
  // And the decomposition tiles [0, 1000) exactly.
  size_t expected_begin = 0;
  for (const auto& [b, e] : serial) {
    EXPECT_EQ(b, expected_begin);
    expected_begin = e;
  }
  EXPECT_EQ(expected_begin, 1000u);
}

}  // namespace
}  // namespace ust
